#include "comm/handle.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "util/thread_pool.hpp"

namespace plexus::comm {

CommEngine::CommEngine() : worker_([this] { loop(); }) {}

CommEngine::~CommEngine() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void CommEngine::post(std::shared_ptr<detail::CommOp> op) {
  {
    std::lock_guard<std::mutex> lock(m_);
    queue_.push_back(std::move(op));
  }
  cv_.notify_one();
}

void CommEngine::run_inline(detail::CommOp& op) {
  try {
    op.execute(op);
  } catch (...) {
    op.error = std::current_exception();
  }
  op.execute = nullptr;  // drop captured buffers/closure state promptly
  op.mark_finished();
}

void CommEngine::loop() {
  // The comm thread moves bytes; it must never recursively build a kernel
  // pool, so it keeps the serial budget for its whole lifetime.
  util::set_intra_rank_threads(1);
  for (;;) {
    std::shared_ptr<detail::CommOp> op;
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and fully drained
      op = std::move(queue_.front());
      queue_.pop_front();
    }
    run_inline(*op);
  }
}

namespace {

/// -1 = "use the environment", >= 0 = explicit override.
std::atomic<int> g_comm_threads{-1};

int env_comm_threads() {
  const char* s = std::getenv("PLEXUS_COMM_THREADS");
  if (s == nullptr || *s == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == nullptr || *end != '\0' || v < 0) return 1;  // malformed: default
  return static_cast<int>(std::min(v, 8L));  // clamp like set_comm_thread_budget
}

}  // namespace

int comm_thread_budget() {
  const int v = g_comm_threads.load(std::memory_order_relaxed);
  return v >= 0 ? v : env_comm_threads();
}

int comm_thread_override() { return g_comm_threads.load(std::memory_order_relaxed); }

void set_comm_thread_budget(int n) {
  g_comm_threads.store(n < 0 ? -1 : std::min(n, 8), std::memory_order_relaxed);
}

}  // namespace plexus::comm
