#pragma once
/// \file topology.hpp
/// Mapping of the 3D virtual GPU grid onto physical nodes, and the effective
/// per-dimension link parameters of paper eq. 4.6.
///
/// Ranks are packed onto nodes in Y-fastest order ("the model considers GPU
/// topology, prioritizing Y, X, and then Z parallelism within a node",
/// section 4.2): rank = y + Gy * x + Gy * Gx * z... — the communicator rank
/// layout used by core::Grid3D matches this convention.

#include "comm/cost.hpp"
#include "sim/machine.hpp"

namespace plexus::sim {

struct GridShape {
  int x = 1;
  int y = 1;
  int z = 1;
  int size() const { return x * y * z; }
  bool valid_for(int gpus) const { return size() == gpus && x >= 1 && y >= 1 && z >= 1; }
};

enum class Dim { X, Y, Z };

/// Effective ring link for the process groups along `dim` (eq. 4.6): the group
/// is intra-node iff it (together with all faster-packed dimensions) fits in a
/// node; otherwise inter-node bandwidth divided by the NIC contention factor
/// min(G_node, product of faster-packed dims).
comm::LinkParams link_for_dim(const Machine& m, const GridShape& g, Dim dim);

/// All-to-all distance penalty for a group of `group_size` ranks (>= 1): grows
/// with the number of nodes spanned — all-to-all sends most messages to
/// non-neighbours (section 7.1's explanation of BNS-GCN's scaling cliff).
double a2a_distance_penalty(const Machine& m, int group_size);

/// Link parameters for a *flat* group of `group_size` ranks packed linearly
/// onto nodes (used by the partition-parallel and CAGNET baselines).
comm::LinkParams link_for_flat_group(const Machine& m, int group_size);

}  // namespace plexus::sim
