#include "serve/served_model.hpp"

#include <algorithm>
#include <utility>

#include "core/checkpoint.hpp"
#include "dense/gemm.hpp"
#include "dense/ops.hpp"
#include "sparse/spmm.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace plexus::serve {

ServedModel::ServedModel(const std::string& checkpoint_dir)
    : state_(core::load_model_state(checkpoint_dir)),
      ds_(core::load_checkpoint_dataset(checkpoint_dir)) {
  PLEXUS_CHECK(state_.feat_rows == ds_.padded_nodes && state_.feat_cols == ds_.padded_feature_dim,
               "checkpoint model/dataset shape mismatch in " + checkpoint_dir);
  PLEXUS_CHECK(static_cast<std::int32_t>(ds_.scheme) == state_.scheme,
               "checkpoint model/dataset permutation scheme mismatch in " + checkpoint_dir);

  // One-time full-graph forward, serially over the global matrices:
  // H_{l+1} = act(A_l H_l W_l). The trained features are the checkpoint's
  // feature blocks, already permuted into the layer-0 input order.
  const int L = state_.num_layers();
  dense::Matrix h = ds_.features;
  acts_.reserve(static_cast<std::size_t>(L));
  for (int l = 0; l < L; ++l) {
    const io::LayerState& ls = state_.layers[static_cast<std::size_t>(l)];
    PLEXUS_CHECK(ls.rows == h.cols(), "checkpoint layer dims do not chain");
    dense::Matrix w(ls.rows, ls.cols);
    std::copy(ls.w.begin(), ls.w.end(), w.data());
    h = sparse::spmm(ds_.adjacency_for_layer(l), h);
    h = dense::matmul(h, w);
    if (l + 1 < L) h = dense::relu(h);
    acts_.push_back(h);  // cache; h flows on as the next layer's input
  }

  // Original id -> output row: the final layer's outputs are ordered by P_r
  // when (L-1) is even, else by P_c (core::preprocess_graph's labelling rule),
  // and both permutations regenerate from the checkpointed seed.
  const auto scheme = static_cast<core::PermutationScheme>(state_.scheme);
  switch (scheme) {
    case core::PermutationScheme::None:
      p_out_ = util::identity_permutation(ds_.padded_nodes);
      break;
    case core::PermutationScheme::Single:
      p_out_ = util::random_permutation(ds_.padded_nodes,
                                        util::hash_combine(state_.preprocess_seed, 1));
      break;
    case core::PermutationScheme::Double:
      p_out_ = (L - 1) % 2 == 0
                   ? util::random_permutation(ds_.padded_nodes,
                                              util::hash_combine(state_.preprocess_seed, 1))
                   : util::random_permutation(ds_.padded_nodes,
                                              util::hash_combine(state_.preprocess_seed, 2));
      break;
  }
}

std::int64_t ServedModel::logits_row(std::int64_t node) const {
  PLEXUS_CHECK(node >= 0 && node < ds_.num_nodes, "predict: node id out of range");
  return p_out_[static_cast<std::size_t>(node)];
}

Prediction ServedModel::predict(std::int64_t node) const {
  const dense::Matrix& lg = logits();
  const float* row = lg.row(logits_row(node));
  // Argmax over the VALID classes only: padded weight columns are zero, so a
  // padded class's logit (0) could shadow all-negative real logits.
  Prediction p;
  p.label = 0;
  p.score = row[0];
  for (std::int64_t c = 1; c < ds_.num_classes; ++c) {
    if (row[c] > p.score) {
      p.score = row[c];
      p.label = static_cast<std::int32_t>(c);
    }
  }
  return p;
}

std::int32_t ServedModel::label(std::int64_t node) const {
  return ds_.labels[static_cast<std::size_t>(logits_row(node))];
}

bool ServedModel::in_split(std::int64_t node, core::Split split) const {
  const auto row = static_cast<std::size_t>(logits_row(node));
  switch (split) {
    case core::Split::Train: return ds_.train_mask[row] != 0;
    case core::Split::Val: return ds_.val_mask[row] != 0;
    case core::Split::Test: return ds_.test_mask[row] != 0;
  }
  return false;
}

const dense::Matrix& ServedModel::activations(int l) const {
  PLEXUS_CHECK(l >= 0 && l < num_layers(), "activations: bad layer index");
  return acts_[static_cast<std::size_t>(l)];
}

const dense::Matrix& ServedModel::logits() const { return acts_.back(); }

}  // namespace plexus::serve
