// Transport conformance: the byte-movement backends must be interchangeable.
// The same randomized collective schedules run under the Sim (shared-slot)
// and Local (in-process ring/staged) transports and every payload must match
// bit for bit — reductions included, because all in-process backends apply
// contributions in canonical member order. Plus the topology-aware channel
// routing (line-family keys) and the backend registry.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/transport.hpp"
#include "comm/world.hpp"
#include "core/grid.hpp"
#include "sim/cluster.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"

namespace pc = plexus::comm;
namespace pcore = plexus::core;
namespace psim = plexus::sim;

namespace {

/// Group shapes exercised by the conformance schedule, as member lists over a
/// world of 8: full world, halves, strided combs, a non-contiguous triple, a
/// pair and a singleton.
std::vector<std::vector<int>> conformance_groups() {
  return {
      {0, 1, 2, 3, 4, 5, 6, 7}, {0, 1, 2, 3}, {4, 5, 6, 7}, {0, 2, 4, 6},
      {1, 3, 5, 7},             {0, 5, 6},    {2, 7},       {3},
  };
}

/// Deterministic per-(group, collective, member) payload so every backend
/// sees identical inputs. Values carry rank, group and index so misrouted
/// chunks can never collide.
float payload_value(int gid, int kind, int rank, std::size_t i) {
  return static_cast<float>(gid * 1000 + kind * 100 + rank) +
         0.125f * static_cast<float>(i % 32);
}

/// Run the full conformance schedule under `backend`; returns each rank's
/// concatenated result stream (every output buffer of every collective, in
/// schedule order).
std::vector<std::vector<float>> run_schedule(pc::Backend backend) {
  pc::ScopedBackend scoped(backend);
  pc::World world(8);
  std::vector<pc::GroupId> gids;
  for (const auto& members : conformance_groups()) {
    gids.push_back(world.create_group(members));
  }
  std::vector<std::vector<float>> out(8);
  psim::run_cluster(world, psim::Machine::test_machine(), [&](psim::RankContext& ctx) {
    auto& sink = out[static_cast<std::size_t>(ctx.rank())];
    for (const pc::GroupId gid : gids) {
      auto& g = ctx.comm.world().group(gid);
      bool member = false;
      for (const int m : g.members) member |= (m == ctx.rank());
      if (!member) continue;
      const int G = g.size();
      // Per-member chunk length differs per group (including 0) but is equal
      // across the group's members.
      const std::size_t n = static_cast<std::size_t>((gid * 7) % 5) + (gid % 2 == 0 ? 3 : 0);

      std::vector<float> gather_in(n), gather_out(n * static_cast<std::size_t>(G));
      for (std::size_t i = 0; i < n; ++i) gather_in[i] = payload_value(gid, 0, ctx.rank(), i);
      ctx.comm.all_gather<float>(gid, gather_in, gather_out);
      sink.insert(sink.end(), gather_out.begin(), gather_out.end());

      std::vector<float> rs_in(n * static_cast<std::size_t>(G)), rs_out(n);
      for (std::size_t i = 0; i < rs_in.size(); ++i) {
        rs_in[i] = payload_value(gid, 1, ctx.rank(), i) * 0.01f;
      }
      ctx.comm.reduce_scatter_sum<float>(gid, rs_in, rs_out);
      sink.insert(sink.end(), rs_out.begin(), rs_out.end());

      std::vector<float> ar(n * 2 + 1);
      for (std::size_t i = 0; i < ar.size(); ++i) {
        ar[i] = payload_value(gid, 2, ctx.rank(), i) * 0.003f;
      }
      ctx.comm.all_reduce_sum<float>(gid, ar);
      sink.insert(sink.end(), ar.begin(), ar.end());

      for (int root = 0; root < G; ++root) {
        std::vector<float> bc(n + 1);
        for (std::size_t i = 0; i < bc.size(); ++i) {
          bc[i] = payload_value(gid, 3, g.position_of(ctx.rank()) == root ? 999 : ctx.rank(), i);
        }
        ctx.comm.broadcast<float>(gid, bc, root);
        sink.insert(sink.end(), bc.begin(), bc.end());
      }

      std::vector<float> a2a_in(n * static_cast<std::size_t>(G)),
          a2a_out(n * static_cast<std::size_t>(G));
      for (std::size_t i = 0; i < a2a_in.size(); ++i) {
        a2a_in[i] = payload_value(gid, 4, ctx.rank(), i);
      }
      ctx.comm.all_to_all<float>(gid, a2a_in, a2a_out);
      sink.insert(sink.end(), a2a_out.begin(), a2a_out.end());

      // Flat variable all-to-all (the sparse-aggregation exchange): counts
      // come from a src/dst formula both sides can evaluate, including zeros.
      const int pos = g.position_of(ctx.rank());
      const auto pair_count = [gid](int src, int dst) {
        return static_cast<std::int64_t>((src * 31 + dst * 17 + gid) % 4) * 2;
      };
      std::vector<std::int64_t> scnt(static_cast<std::size_t>(G)),
          rcnt(static_cast<std::size_t>(G));
      std::int64_t stot = 0, rtot = 0;
      for (int m = 0; m < G; ++m) {
        scnt[static_cast<std::size_t>(m)] = pair_count(pos, m);
        rcnt[static_cast<std::size_t>(m)] = pair_count(m, pos);
        stot += scnt[static_cast<std::size_t>(m)];
        rtot += rcnt[static_cast<std::size_t>(m)];
      }
      std::vector<float> v_in(static_cast<std::size_t>(stot)),
          v_out(static_cast<std::size_t>(rtot));
      for (std::size_t i = 0; i < v_in.size(); ++i) {
        v_in[i] = payload_value(gid, 5, ctx.rank(), i);
      }
      ctx.comm.iall_to_all_v<float>(gid, v_in, scnt.data(), v_out, rcnt.data()).wait();
      sink.insert(sink.end(), v_out.begin(), v_out.end());
    }
  });
  return out;
}

}  // namespace

TEST(TransportConformance, SimAndLocalPayloadsBitwiseEqual) {
  const auto sim = run_schedule(pc::Backend::Sim);
  const auto local = run_schedule(pc::Backend::Local);
  ASSERT_EQ(sim.size(), local.size());
  for (std::size_t r = 0; r < sim.size(); ++r) {
    ASSERT_EQ(sim[r].size(), local[r].size()) << "rank " << r;
    ASSERT_GT(sim[r].size(), 0u) << "rank " << r << " exercised no collective";
    for (std::size_t i = 0; i < sim[r].size(); ++i) {
      // Bitwise: reductions must use canonical member order on every backend.
      EXPECT_EQ(std::memcmp(&sim[r][i], &local[r][i], sizeof(float)), 0)
          << "rank " << r << " element " << i << " sim=" << sim[r][i]
          << " local=" << local[r][i];
    }
  }
}

TEST(TransportConformance, LocalMatchesSimUnderEveryChannelBudget) {
  // The ring schedules synchronise with extra barrier rounds; they must stay
  // correct inline (budget 0), on one FIFO channel, and on per-group channels.
  const auto sim = run_schedule(pc::Backend::Sim);
  for (const int budget : {0, 1, 2, 4}) {
    pc::ScopedCommThreads scoped(budget);
    const auto local = run_schedule(pc::Backend::Local);
    ASSERT_EQ(sim.size(), local.size());
    for (std::size_t r = 0; r < sim.size(); ++r) {
      EXPECT_EQ(sim[r], local[r]) << "budget " << budget << " rank " << r;
    }
  }
}

TEST(TransportConformance, RandomizedTrainingPayloadsAcrossGridShapes) {
  // Randomized all-reduce / reduce-scatter round trips on real 3D-grid line
  // groups (the shapes the trainer posts on), Sim vs Local.
  for (const auto shape : {psim::GridShape{2, 2, 2}, psim::GridShape{4, 2, 1},
                           psim::GridShape{1, 4, 2}}) {
    auto run = [&](pc::Backend b) {
      pc::ScopedBackend scoped(b);
      pc::World world(shape.size());
      pcore::Grid3D grid(world, shape, psim::Machine::test_machine());
      std::vector<std::vector<float>> out(static_cast<std::size_t>(shape.size()));
      psim::run_cluster(world, psim::Machine::test_machine(), [&](psim::RankContext& ctx) {
        plexus::util::SplitMix64 rng(0xC0FFEEu + static_cast<std::uint64_t>(ctx.rank()));
        auto& sink = out[static_cast<std::size_t>(ctx.rank())];
        for (const auto axis : {pcore::Axis::X, pcore::Axis::Y, pcore::Axis::Z}) {
          const auto gid = grid.group_along(axis, ctx.rank());
          const int G = ctx.comm.world().group(gid).size();
          std::vector<float> buf(24);
          for (auto& v : buf) v = 2.0f * rng.next_float() - 1.0f;
          ctx.comm.all_reduce_sum<float>(gid, buf);
          sink.insert(sink.end(), buf.begin(), buf.end());
          std::vector<float> in(static_cast<std::size_t>(G) * 6), chunk(6);
          for (auto& v : in) v = 2.0f * rng.next_float() - 1.0f;
          ctx.comm.reduce_scatter_sum<float>(gid, in, chunk);
          sink.insert(sink.end(), chunk.begin(), chunk.end());
        }
      });
      return out;
    };
    const auto sim = run(pc::Backend::Sim);
    const auto local = run(pc::Backend::Local);
    for (std::size_t r = 0; r < sim.size(); ++r) {
      EXPECT_EQ(sim[r], local[r]) << "grid " << shape.x << "x" << shape.y << "x" << shape.z
                                  << " rank " << r;
    }
  }
}

TEST(TransportConformance, ZeroSizedPayloadsAreSafeOnEveryBackend) {
  // Regression: zero-length collectives and all-zero-count flat exchanges
  // must not touch any buffer pointer (they may be null) on any backend or
  // ring stage. Runs the degenerate ops between real payloads so a corrupted
  // slot/barrier sequence would desynchronise the group and fail loudly.
  for (const auto backend : {pc::Backend::Sim, pc::Backend::Local}) {
    pc::ScopedBackend scoped(backend);
    pc::World world(4);
    const auto gid = world.create_group({0, 1, 2, 3});
    std::vector<std::vector<float>> out(4);
    psim::run_cluster(world, psim::Machine::test_machine(), [&](psim::RankContext& ctx) {
      ctx.comm.all_gather<float>(gid, {}, {});
      ctx.comm.all_reduce_sum<float>(gid, {});
      ctx.comm.reduce_scatter_sum<float>(gid, {}, {});
      ctx.comm.broadcast<float>(gid, {}, /*root=*/2);
      ctx.comm.all_to_all<float>(gid, {}, {});
      const std::int64_t zeros[4] = {0, 0, 0, 0};
      ctx.comm.iall_to_all_v<float>(gid, {}, zeros, {}, zeros).wait();
      // A live round after the degenerate ones proves the group survived.
      std::vector<float> buf{static_cast<float>(ctx.rank() + 1)};
      ctx.comm.all_reduce_sum<float>(gid, buf);
      out[static_cast<std::size_t>(ctx.rank())] = buf;
    });
    for (int r = 0; r < 4; ++r) {
      ASSERT_EQ(out[static_cast<std::size_t>(r)].size(), 1u) << "rank " << r;
      EXPECT_EQ(out[static_cast<std::size_t>(r)][0], 10.0f)
          << pc::backend_name(backend) << " rank " << r;
    }
  }
}

TEST(TransportConformance, FlatAllToAllVOneSidedEmptiness) {
  // Mixed case: some member pairs exchange nothing while others move real
  // rows — the exact shape the sparse aggregation produces on skewed shards.
  for (const auto backend : {pc::Backend::Sim, pc::Backend::Local}) {
    pc::ScopedBackend scoped(backend);
    pc::World world(3);
    const auto gid = world.create_group({0, 1, 2});
    std::vector<std::vector<float>> out(3);
    psim::run_cluster(world, psim::Machine::test_machine(), [&](psim::RankContext& ctx) {
      // Member 0 sends 2 floats to member 2 only; member 1 sends 1 float to
      // member 0; member 2 sends nothing at all (null send span).
      const int pos = ctx.rank();
      std::vector<std::int64_t> scnt(3, 0), rcnt(3, 0);
      std::vector<float> send;
      if (pos == 0) {
        scnt = {0, 0, 2};
        send = {10.0f, 11.0f};
        rcnt = {0, 1, 0};
      } else if (pos == 1) {
        scnt = {1, 0, 0};
        send = {20.0f};
      } else {
        rcnt = {2, 0, 0};
      }
      std::int64_t rtot = 0;
      for (const auto c : rcnt) rtot += c;
      std::vector<float> recv(static_cast<std::size_t>(rtot));
      ctx.comm.iall_to_all_v<float>(gid, send, scnt.data(), recv, rcnt.data()).wait();
      out[static_cast<std::size_t>(ctx.rank())] = recv;
    });
    EXPECT_EQ(out[0], (std::vector<float>{20.0f})) << pc::backend_name(backend);
    EXPECT_TRUE(out[1].empty()) << pc::backend_name(backend);
    EXPECT_EQ(out[2], (std::vector<float>{10.0f, 11.0f})) << pc::backend_name(backend);
  }
}

TEST(ChannelRouting, LineFamiliesMapToDistinctChannels) {
  // Topology-aware routing: each rank's X/Y/Z line groups carry their family
  // (0/1/2) as the routing key, so with a channel budget >= 3 a rank's own
  // line groups can never collide on one channel.
  pc::World world(8);
  pcore::Grid3D grid(world, {2, 2, 2}, psim::Machine::test_machine());
  for (int r = 0; r < 8; ++r) {
    const auto gx = grid.group_along(pcore::Axis::X, r);
    const auto gy = grid.group_along(pcore::Axis::Y, r);
    const auto gz = grid.group_along(pcore::Axis::Z, r);
    EXPECT_EQ(pc::channel_route(world.group(gx), gx), 0);
    EXPECT_EQ(pc::channel_route(world.group(gy), gy), 1);
    EXPECT_EQ(pc::channel_route(world.group(gz), gz), 2);
  }
}

TEST(ChannelRouting, FamiliesShareKeysAcrossLinesOfOneDimension) {
  // Different lines of the same family share the key by design: per rank
  // they are different *ranks'* groups, and a rank posts on only one line
  // per family, so the family key still guarantees no self-collision.
  pc::World world(8);
  pcore::Grid3D grid(world, {2, 2, 2}, psim::Machine::test_machine());
  const auto g0 = grid.group_along(pcore::Axis::X, 0);
  const auto g1 = grid.group_along(pcore::Axis::X, 1);
  EXPECT_NE(g0, g1);  // distinct line groups...
  EXPECT_EQ(pc::channel_route(world.group(g0), g0),
            pc::channel_route(world.group(g1), g1));  // ...same family key
}

TEST(ChannelRouting, UntaggedGroupsKeepGroupIdRouting) {
  pc::World world(4);
  const auto ga = world.create_group({0, 1});
  const auto gb = world.create_group({2, 3});
  EXPECT_EQ(pc::channel_route(world.group(ga), ga), ga);
  EXPECT_EQ(pc::channel_route(world.group(gb), gb), gb);
  EXPECT_EQ(pc::channel_route(world.group(0), 0), 0);  // world group
}

TEST(BackendRegistry, NamesParseRoundTrip) {
  for (const auto b : {pc::Backend::Sim, pc::Backend::Local, pc::Backend::Mpi}) {
    pc::Backend parsed{};
    ASSERT_TRUE(pc::backend_from_string(pc::backend_name(b), parsed));
    EXPECT_EQ(parsed, b);
  }
  pc::Backend parsed{};
  EXPECT_TRUE(pc::backend_from_string("LOCAL", parsed));
  EXPECT_EQ(parsed, pc::Backend::Local);
  EXPECT_FALSE(pc::backend_from_string("nccl", parsed));
  EXPECT_FALSE(pc::backend_from_string("", parsed));
}

TEST(BackendRegistry, ScopedOverrideRestores) {
  const pc::Backend before = pc::default_backend();
  {
    pc::ScopedBackend scoped(pc::Backend::Local);
    EXPECT_EQ(pc::default_backend(), pc::Backend::Local);
    {
      pc::ScopedBackend inner(pc::Backend::Sim);
      EXPECT_EQ(pc::default_backend(), pc::Backend::Sim);
    }
    EXPECT_EQ(pc::default_backend(), pc::Backend::Local);
  }
  EXPECT_EQ(pc::default_backend(), before);
}

TEST(BackendRegistry, TransportProperties) {
  auto& sim = pc::transport_for(pc::Backend::Sim);
  auto& local = pc::transport_for(pc::Backend::Local);
  EXPECT_STREQ(sim.name(), "sim");
  EXPECT_STREQ(local.name(), "local");
  EXPECT_TRUE(sim.uses_group_protocol());
  EXPECT_TRUE(local.uses_group_protocol());
  EXPECT_EQ(sim.backend(), pc::Backend::Sim);
  EXPECT_EQ(local.backend(), pc::Backend::Local);
  if (!pc::mpi_transport_available()) {
    EXPECT_THROW(pc::transport_for(pc::Backend::Mpi), std::runtime_error);
  } else {
    EXPECT_FALSE(pc::transport_for(pc::Backend::Mpi).uses_group_protocol());
  }
}

TEST(BackendRegistry, CommunicatorExposesItsTransport) {
  pc::World world(1);
  pc::Communicator comm(world, 0, nullptr, &pc::transport_for(pc::Backend::Local));
  EXPECT_EQ(comm.backend(), pc::Backend::Local);
  EXPECT_STREQ(comm.transport().name(), "local");
}
