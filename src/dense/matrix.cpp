#include "dense/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace plexus::dense {

Matrix::Matrix(std::int64_t rows, std::int64_t cols, float fill)
    : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), fill) {
  PLEXUS_CHECK(rows >= 0 && cols >= 0, "negative matrix dims");
}

void Matrix::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Matrix Matrix::block(std::int64_t r0, std::int64_t r1, std::int64_t c0, std::int64_t c1) const {
  PLEXUS_CHECK(0 <= r0 && r0 <= r1 && r1 <= rows_, "bad row range");
  PLEXUS_CHECK(0 <= c0 && c0 <= c1 && c1 <= cols_, "bad col range");
  Matrix out(r1 - r0, c1 - c0);
  for (std::int64_t r = r0; r < r1; ++r) {
    std::copy(row(r) + c0, row(r) + c1, out.row(r - r0));
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

void Matrix::set_block(std::int64_t r0, std::int64_t c0, const Matrix& src) {
  PLEXUS_CHECK(r0 + src.rows() <= rows_ && c0 + src.cols() <= cols_, "set_block out of range");
  for (std::int64_t r = 0; r < src.rows(); ++r) {
    std::copy(src.row(r), src.row(r) + src.cols(), row(r0 + r) + c0);
  }
}

float Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  PLEXUS_CHECK(a.same_shape(b), "max_abs_diff shape mismatch");
  float m = 0.0f;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  }
  return m;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (const float v : data_) s += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(s);
}

Matrix Matrix::glorot(std::int64_t rows, std::int64_t cols, std::uint64_t seed,
                      std::int64_t fan_in, std::int64_t fan_out,
                      std::int64_t global_row_offset, std::int64_t global_col_offset,
                      std::int64_t global_cols) {
  if (global_cols < 0) global_cols = cols;
  const float limit =
      std::sqrt(6.0f / static_cast<float>(std::max<std::int64_t>(1, fan_in + fan_out)));
  util::CounterRng rng(seed);
  Matrix out(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      const auto counter = static_cast<std::uint64_t>((global_row_offset + r) * global_cols +
                                                      (global_col_offset + c));
      out.at(r, c) = rng.uniform_at(counter, -limit, limit);
    }
  }
  return out;
}

}  // namespace plexus::dense
