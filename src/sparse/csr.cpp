#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace plexus::sparse {

Csr::Csr(std::int64_t rows, std::int64_t cols)
    : num_rows_(rows), num_cols_(cols), row_ptr_(static_cast<std::size_t>(rows) + 1, 0) {}

Csr Csr::from_parts(std::int64_t rows, std::int64_t cols, std::vector<std::int64_t> row_ptr,
                    std::vector<std::int32_t> col_idx, std::vector<float> vals) {
  PLEXUS_CHECK(row_ptr.size() == static_cast<std::size_t>(rows) + 1, "row_ptr size");
  PLEXUS_CHECK(col_idx.size() == vals.size(), "col/val size mismatch");
  PLEXUS_CHECK(row_ptr.back() == static_cast<std::int64_t>(col_idx.size()), "row_ptr/nnz");
  Csr out;
  out.num_rows_ = rows;
  out.num_cols_ = cols;
  out.row_ptr_ = std::move(row_ptr);
  out.col_idx_ = std::move(col_idx);
  out.vals_ = std::move(vals);
  return out;
}

Csr Csr::from_coo(const Coo& coo, bool sum_duplicates) {
  const std::int64_t n = coo.nnz();
  Csr out(coo.num_rows, coo.num_cols);

  // Counting pass.
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t r = coo.rows[static_cast<std::size_t>(i)];
    PLEXUS_CHECK(r >= 0 && r < coo.num_rows, "coo row out of range");
    out.row_ptr_[static_cast<std::size_t>(r) + 1]++;
  }
  std::partial_sum(out.row_ptr_.begin(), out.row_ptr_.end(), out.row_ptr_.begin());
  out.col_idx_.resize(static_cast<std::size_t>(n));
  out.vals_.resize(static_cast<std::size_t>(n));

  // Scatter pass.
  std::vector<std::int64_t> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t r = coo.rows[static_cast<std::size_t>(i)];
    const std::int64_t pos = cursor[static_cast<std::size_t>(r)]++;
    out.col_idx_[static_cast<std::size_t>(pos)] = coo.cols[static_cast<std::size_t>(i)];
    out.vals_[static_cast<std::size_t>(pos)] = coo.vals[static_cast<std::size_t>(i)];
  }

  // Sort each row by column; merge duplicates.
  std::vector<std::int64_t> order;
  std::vector<std::int32_t> tmp_cols;
  std::vector<float> tmp_vals;
  std::vector<std::int64_t> new_ptr(out.row_ptr_.size(), 0);
  tmp_cols.reserve(static_cast<std::size_t>(n));
  tmp_vals.reserve(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < out.num_rows_; ++r) {
    const std::int64_t b = out.row_ptr_[static_cast<std::size_t>(r)];
    const std::int64_t e = out.row_ptr_[static_cast<std::size_t>(r) + 1];
    order.resize(static_cast<std::size_t>(e - b));
    std::iota(order.begin(), order.end(), b);
    std::sort(order.begin(), order.end(), [&](std::int64_t x, std::int64_t y) {
      return out.col_idx_[static_cast<std::size_t>(x)] < out.col_idx_[static_cast<std::size_t>(y)];
    });
    for (const std::int64_t idx : order) {
      const std::int32_t c = out.col_idx_[static_cast<std::size_t>(idx)];
      PLEXUS_CHECK(c >= 0 && c < out.num_cols_, "coo col out of range");
      const float v = out.vals_[static_cast<std::size_t>(idx)];
      if (!tmp_cols.empty() &&
          static_cast<std::int64_t>(tmp_cols.size()) > new_ptr[static_cast<std::size_t>(r)] &&
          tmp_cols.back() == c) {
        if (sum_duplicates) {
          tmp_vals.back() += v;
        }
        // else: keep first occurrence (pattern dedup)
      } else {
        tmp_cols.push_back(c);
        tmp_vals.push_back(v);
      }
    }
    new_ptr[static_cast<std::size_t>(r) + 1] = static_cast<std::int64_t>(tmp_cols.size());
  }
  out.col_idx_ = std::move(tmp_cols);
  out.vals_ = std::move(tmp_vals);
  out.row_ptr_ = std::move(new_ptr);
  return out;
}

Csr Csr::permuted(std::span<const std::int64_t> row_map,
                  std::span<const std::int64_t> col_map) const {
  PLEXUS_CHECK(static_cast<std::int64_t>(row_map.size()) == num_rows_, "row_map size");
  PLEXUS_CHECK(static_cast<std::int64_t>(col_map.size()) == num_cols_, "col_map size");
  Csr out(num_rows_, num_cols_);
  // Count new row sizes.
  for (std::int64_t r = 0; r < num_rows_; ++r) {
    out.row_ptr_[static_cast<std::size_t>(row_map[static_cast<std::size_t>(r)]) + 1] +=
        row_nnz(r);
  }
  std::partial_sum(out.row_ptr_.begin(), out.row_ptr_.end(), out.row_ptr_.begin());
  out.col_idx_.resize(static_cast<std::size_t>(nnz()));
  out.vals_.resize(static_cast<std::size_t>(nnz()));
  std::vector<std::int64_t> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (std::int64_t r = 0; r < num_rows_; ++r) {
    const std::int64_t nr = row_map[static_cast<std::size_t>(r)];
    for (std::int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      const std::int64_t pos = cursor[static_cast<std::size_t>(nr)]++;
      out.col_idx_[static_cast<std::size_t>(pos)] = static_cast<std::int32_t>(
          col_map[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])]);
      out.vals_[static_cast<std::size_t>(pos)] = vals_[static_cast<std::size_t>(k)];
    }
  }
  // Restore sorted columns within each row.
  std::vector<std::pair<std::int32_t, float>> rowbuf;
  for (std::int64_t r = 0; r < num_rows_; ++r) {
    const std::int64_t b = out.row_ptr_[static_cast<std::size_t>(r)];
    const std::int64_t e = out.row_ptr_[static_cast<std::size_t>(r) + 1];
    rowbuf.clear();
    for (std::int64_t k = b; k < e; ++k) {
      rowbuf.emplace_back(out.col_idx_[static_cast<std::size_t>(k)],
                          out.vals_[static_cast<std::size_t>(k)]);
    }
    std::sort(rowbuf.begin(), rowbuf.end());
    for (std::int64_t k = b; k < e; ++k) {
      out.col_idx_[static_cast<std::size_t>(k)] = rowbuf[static_cast<std::size_t>(k - b)].first;
      out.vals_[static_cast<std::size_t>(k)] = rowbuf[static_cast<std::size_t>(k - b)].second;
    }
  }
  return out;
}

Csr Csr::transposed() const {
  Csr out(num_cols_, num_rows_);
  for (const std::int32_t c : col_idx_) out.row_ptr_[static_cast<std::size_t>(c) + 1]++;
  std::partial_sum(out.row_ptr_.begin(), out.row_ptr_.end(), out.row_ptr_.begin());
  out.col_idx_.resize(static_cast<std::size_t>(nnz()));
  out.vals_.resize(static_cast<std::size_t>(nnz()));
  std::vector<std::int64_t> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (std::int64_t r = 0; r < num_rows_; ++r) {
    for (std::int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      const std::int32_t c = col_idx_[static_cast<std::size_t>(k)];
      const std::int64_t pos = cursor[static_cast<std::size_t>(c)]++;
      out.col_idx_[static_cast<std::size_t>(pos)] = static_cast<std::int32_t>(r);
      out.vals_[static_cast<std::size_t>(pos)] = vals_[static_cast<std::size_t>(k)];
    }
  }
  return out;  // columns are sorted because we scan rows in order
}

Csr Csr::block(std::int64_t r0, std::int64_t r1, std::int64_t c0, std::int64_t c1) const {
  PLEXUS_CHECK(0 <= r0 && r0 <= r1 && r1 <= num_rows_, "block row range");
  PLEXUS_CHECK(0 <= c0 && c0 <= c1 && c1 <= num_cols_, "block col range");
  Csr out(r1 - r0, c1 - c0);
  for (std::int64_t r = r0; r < r1; ++r) {
    const auto b = row_ptr_[static_cast<std::size_t>(r)];
    const auto e = row_ptr_[static_cast<std::size_t>(r) + 1];
    // Columns sorted: binary search the [c0, c1) window.
    const auto* cb = col_idx_.data() + b;
    const auto* ce = col_idx_.data() + e;
    const auto* lo = std::lower_bound(cb, ce, static_cast<std::int32_t>(c0));
    const auto* hi = std::lower_bound(cb, ce, static_cast<std::int32_t>(c1));
    for (const auto* p = lo; p != hi; ++p) {
      out.col_idx_.push_back(static_cast<std::int32_t>(*p - c0));
      out.vals_.push_back(vals_[static_cast<std::size_t>(b + (p - cb))]);
    }
    out.row_ptr_[static_cast<std::size_t>(r - r0) + 1] =
        static_cast<std::int64_t>(out.col_idx_.size());
  }
  return out;
}

Csr Csr::row_slice(std::int64_t r0, std::int64_t r1) const {
  return block(r0, r1, 0, num_cols_);
}

std::int64_t Csr::block_nnz(std::int64_t r0, std::int64_t r1, std::int64_t c0,
                            std::int64_t c1) const {
  std::int64_t total = 0;
  for (std::int64_t r = r0; r < r1; ++r) {
    const auto b = row_ptr_[static_cast<std::size_t>(r)];
    const auto e = row_ptr_[static_cast<std::size_t>(r) + 1];
    const auto* cb = col_idx_.data() + b;
    const auto* ce = col_idx_.data() + e;
    total += std::lower_bound(cb, ce, static_cast<std::int32_t>(c1)) -
             std::lower_bound(cb, ce, static_cast<std::int32_t>(c0));
  }
  return total;
}

std::vector<std::int32_t> Csr::referenced_cols(std::int64_t c0, std::int64_t c1) const {
  std::vector<bool> seen(static_cast<std::size_t>(c1 - c0), false);
  for (const std::int32_t c : col_idx_) {
    if (c >= c0 && c < c1) seen[static_cast<std::size_t>(c - c0)] = true;
  }
  std::vector<std::int32_t> out;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (seen[i]) out.push_back(static_cast<std::int32_t>(c0 + static_cast<std::int64_t>(i)));
  }
  return out;
}

std::vector<float> Csr::to_dense() const {
  std::vector<float> dense(static_cast<std::size_t>(num_rows_ * num_cols_), 0.0f);
  for (std::int64_t r = 0; r < num_rows_; ++r) {
    for (std::int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      dense[static_cast<std::size_t>(r * num_cols_ + col_idx_[static_cast<std::size_t>(k)])] +=
          vals_[static_cast<std::size_t>(k)];
    }
  }
  return dense;
}

bool Csr::equal(const Csr& a, const Csr& b, float tol) {
  if (a.num_rows_ != b.num_rows_ || a.num_cols_ != b.num_cols_) return false;
  if (a.row_ptr_ != b.row_ptr_ || a.col_idx_ != b.col_idx_) return false;
  for (std::size_t i = 0; i < a.vals_.size(); ++i) {
    if (std::abs(a.vals_[i] - b.vals_[i]) > tol) return false;
  }
  return true;
}

Csr normalize_adjacency(const Csr& a, std::int64_t active_nodes) {
  PLEXUS_CHECK(a.rows() == a.cols(), "normalize_adjacency: square matrix required");
  PLEXUS_CHECK(active_nodes <= a.rows(), "active_nodes exceeds matrix size");

  // Degrees of (A + I) over active nodes.
  std::vector<double> degree(static_cast<std::size_t>(a.rows()), 0.0);
  for (std::int64_t r = 0; r < active_nodes; ++r) degree[static_cast<std::size_t>(r)] = 1.0;
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    for (std::int64_t k = rp[static_cast<std::size_t>(r)]; k < rp[static_cast<std::size_t>(r) + 1];
         ++k) {
      if (ci[static_cast<std::size_t>(k)] != r) degree[static_cast<std::size_t>(r)] += 1.0;
    }
  }

  std::vector<double> inv_sqrt(degree.size(), 0.0);
  for (std::size_t i = 0; i < degree.size(); ++i) {
    inv_sqrt[i] = degree[i] > 0.0 ? 1.0 / std::sqrt(degree[i]) : 0.0;
  }

  // Build (A + I) with normalised values.
  Coo coo;
  coo.num_rows = a.rows();
  coo.num_cols = a.cols();
  const auto va = a.vals();
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    bool has_self = false;
    for (std::int64_t k = rp[static_cast<std::size_t>(r)]; k < rp[static_cast<std::size_t>(r) + 1];
         ++k) {
      const std::int32_t c = ci[static_cast<std::size_t>(k)];
      if (c == r) has_self = true;
      const double w = static_cast<double>(va[static_cast<std::size_t>(k)]) *
                       inv_sqrt[static_cast<std::size_t>(r)] * inv_sqrt[static_cast<std::size_t>(c)];
      coo.push(r, c, static_cast<float>(w));
    }
    if (!has_self && r < active_nodes) {
      coo.push(r, r,
               static_cast<float>(inv_sqrt[static_cast<std::size_t>(r)] *
                                  inv_sqrt[static_cast<std::size_t>(r)]));
    }
  }
  return Csr::from_coo(coo);
}

Coo symmetrize_edges(const Coo& directed, bool include_reverse) {
  Coo out;
  out.num_rows = directed.num_rows;
  out.num_cols = directed.num_cols;
  for (std::int64_t i = 0; i < directed.nnz(); ++i) {
    const std::int64_t r = directed.rows[static_cast<std::size_t>(i)];
    const std::int64_t c = directed.cols[static_cast<std::size_t>(i)];
    out.push(r, c, 1.0f);
    if (include_reverse && r != c) out.push(c, r, 1.0f);
  }
  return out;
}

}  // namespace plexus::sparse
