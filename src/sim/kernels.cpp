#include "sim/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace plexus::sim {

double spmm_working_set_bytes(const SpmmShape& s) {
  return 4.0 * static_cast<double>(s.common) * static_cast<double>(std::max<std::int64_t>(1, s.cols));
}

double spmm_time(const Machine& m, const SpmmShape& s) {
  if (s.nnz == 0 || s.cols == 0) return 0.0;
  const double nnz = static_cast<double>(s.nnz);
  const double cols = static_cast<double>(s.cols);
  const double rows = static_cast<double>(s.rows);

  const double flops = 2.0 * nnz * cols;
  const double t_compute = flops / (m.peak_flops * m.spmm_efficiency);

  // HBM traffic: CSR structure (4B col idx + 4B value per nnz), output write,
  // and dense-operand reads. If the dense operand fits in L2 it streams once;
  // otherwise each nonzero fetches its row with a 128B-transaction floor.
  const double ws = spmm_working_set_bytes(s);
  const double row_bytes = 4.0 * cols;
  double b_traffic;
  if (ws <= m.l2_bytes) {
    b_traffic = ws;
  } else {
    const double miss = 1.0 - m.l2_bytes / ws;
    b_traffic = ws + miss * nnz * std::max(row_bytes * 0.25, std::min(row_bytes, 128.0));
  }
  const double bytes = nnz * 8.0 + rows * cols * 4.0 + b_traffic;
  const double t_mem = bytes / m.mem_bw;

  // Tall-skinny penalty (Table 2): many small blocks, uncoalesced requests.
  // Linear in common/cols — the same functional form as the paper's eq. 4.4
  // fwd/bwd penalties; the coefficient is calibrated so config V of Table 2
  // is ~8x slower than config U at full ogbn-products scale.
  const double shape_ratio = static_cast<double>(s.common) / std::max(1.0, cols);
  const double penalty = shape_ratio / m.spmm_shape_k;

  return std::max(t_compute, t_mem) * (1.0 + penalty);
}

double spmm_noise_factor(const Machine& m, const SpmmShape& s, std::uint64_t seed) {
  if (m.spmm_noise <= 0.0) return 1.0;
  const double ws = spmm_working_set_bytes(s) + 8.0 * static_cast<double>(s.nnz);
  // Amplitude ramps up once the working set spills L2 by >= 4x; small shards
  // (small datasets / many GPUs) show little variability, matching the paper's
  // observation that only larger datasets at modest GPU counts were affected.
  const double spill = std::clamp((ws - m.l2_bytes) / (4.0 * m.l2_bytes), 0.0, 1.0);
  const double amplitude = m.spmm_noise * spill;
  util::CounterRng rng(0x5eed);
  const double u = rng.uniform_at(seed);  // U(0,1), deterministic per seed
  return 1.0 + amplitude * u;
}

double gemm_time(const Machine& m, std::int64_t rows, std::int64_t cols, std::int64_t inner,
                 dense::Trans ta, dense::Trans tb) {
  if (rows == 0 || cols == 0 || inner == 0) return 0.0;
  const double flops = 2.0 * static_cast<double>(rows) * static_cast<double>(cols) *
                       static_cast<double>(inner);
  const double eff = m.gemm_eff(ta == dense::Trans::T, tb == dense::Trans::T);
  const double t_compute = flops / (m.peak_flops * eff);
  const double bytes = 4.0 * (static_cast<double>(rows) * static_cast<double>(inner) +
                              static_cast<double>(inner) * static_cast<double>(cols) +
                              2.0 * static_cast<double>(rows) * static_cast<double>(cols));
  const double t_mem = bytes / m.mem_bw;
  return std::max(t_compute, t_mem);
}

double elementwise_time(const Machine& m, std::int64_t elems, double touches) {
  return touches * 4.0 * static_cast<double>(elems) / m.mem_bw;
}

}  // namespace plexus::sim
