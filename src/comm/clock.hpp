#pragma once
/// \file clock.hpp
/// Per-rank logical clock for performance simulation.
///
/// Local kernels advance a rank's clock by modelled kernel time; collectives
/// synchronise all participants to `max(member clocks) + T_collective`. Load
/// imbalance is therefore emergent: a straggler (e.g. a rank holding a dense
/// adjacency shard) delays every collective it participates in, exactly the
/// ripple effect section 1 of the paper describes.

namespace plexus::comm {

class SimClock {
 public:
  double time() const { return t_; }
  void advance(double seconds) { t_ += seconds; }
  void set(double seconds) { t_ = seconds; }
  void reset() { t_ = 0.0; }

 private:
  double t_ = 0.0;
};

}  // namespace plexus::comm
