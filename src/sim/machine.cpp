#include "sim/machine.hpp"

namespace plexus::sim {

const Machine& Machine::perlmutter_a100() {
  static const Machine m = [] {
    Machine x;
    x.name = "Perlmutter-A100";
    x.gpus_per_node = 4;
    x.peak_flops = 19.5e12;
    x.gemm_eff_nn = 0.80;
    x.gemm_eff_nt = 0.72;
    x.gemm_eff_tn = 0.60;
    x.spmm_efficiency = 0.022;
    x.spmm_shape_k = 171e3;
    x.spmm_noise = 0.35;
    x.mem_bw = 1.5e12;
    x.l2_bytes = 40e6;
    x.beta_intra = 200e9;
    x.beta_inter = 100e9;  // 4 NICs x 25 GB/s per node
    x.alpha = 5e-6;
    x.a2a_node_penalty = 0.5;
    x.a2a_peer_overhead = 5e-4;
    return x;
  }();
  return m;
}

const Machine& Machine::frontier_mi250x_gcd() {
  static const Machine m = [] {
    Machine x;
    x.name = "Frontier-MI250X-GCD";
    x.gpus_per_node = 8;  // 4 MI250X, 2 GCDs each; each GCD is a device
    x.peak_flops = 23.9e12;
    x.gemm_eff_nn = 0.75;
    x.gemm_eff_nt = 0.60;
    // rocBLAS TN mode on these shapes was pathologically slow (section 5.3:
    // ~50 ms for the dW GEMM until the multiplication order was reversed).
    x.gemm_eff_tn = 0.002;
    // "SpMM times on AMD GPUs were an order of magnitude higher than on
    // NVIDIA GPUs" (section 7.2).
    x.spmm_efficiency = 0.0020;
    x.spmm_shape_k = 150e3;
    x.spmm_noise = 0.30;
    x.mem_bw = 1.6e12;
    x.l2_bytes = 8e6;
    x.beta_intra = 150e9;
    x.beta_inter = 100e9;  // 4 NICs x 25 GB/s per node
    x.alpha = 6e-6;
    x.a2a_node_penalty = 0.5;
    x.a2a_peer_overhead = 5e-4;
    return x;
  }();
  return m;
}

const Machine& Machine::test_machine() {
  static const Machine m = [] {
    Machine x;
    x.name = "test-box";
    x.gpus_per_node = 1024;  // everything intra-node: deterministic tests
    x.peak_flops = 10e12;
    x.spmm_noise = 0.0;
    return x;
  }();
  return m;
}

}  // namespace plexus::sim
