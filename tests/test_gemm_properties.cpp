// Randomized property tests for the dense GEMM (dense/gemm.hpp), mirroring
// test_spmm_properties.cpp:
//   - gemm agrees with a naive double-precision triple-loop reference in all
//     four transpose modes, for random shapes / alpha / beta
//   - transpose-mode algebra: op(A)*op(B) == materialised-transpose products
//   - the threaded kernel is bitwise-identical to the serial one (each output
//     row is owned by one chunk and keeps the serial k-order)
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "dense/gemm.hpp"
#include "dense/matrix.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace pd = plexus::dense;
namespace pu = plexus::util;

namespace {

pd::Matrix random_dense(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  pu::CounterRng rng(seed);
  pd::Matrix m(r, c);
  for (std::int64_t i = 0; i < r * c; ++i) {
    m.flat()[static_cast<std::size_t>(i)] = rng.uniform_at(static_cast<std::uint64_t>(i), -1, 1);
  }
  return m;
}

/// Naive triple-loop reference for C = alpha * op(A) * op(B) + beta * C,
/// accumulated in double precision.
pd::Matrix naive_gemm(pd::Trans ta, pd::Trans tb, float alpha, const pd::Matrix& a,
                      const pd::Matrix& b, float beta, const pd::Matrix& c_in) {
  const std::int64_t m = pd::op_rows(a, ta);
  const std::int64_t k = pd::op_cols(a, ta);
  const std::int64_t n = pd::op_cols(b, tb);
  pd::Matrix c(m, n);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = ta == pd::Trans::N ? a.at(i, kk) : a.at(kk, i);
        const float bv = tb == pd::Trans::N ? b.at(kk, j) : b.at(j, kk);
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      c.at(i, j) = static_cast<float>(static_cast<double>(alpha) * acc +
                                      static_cast<double>(beta) * static_cast<double>(c_in.at(i, j)));
    }
  }
  return c;
}

}  // namespace

TEST(GemmProperties, MatchesNaiveReferenceAllModesRandomized) {
  const pd::Trans modes[] = {pd::Trans::N, pd::Trans::T};
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    const std::int64_t m = 9 + static_cast<std::int64_t>(trial) * 11;
    const std::int64_t k = 13 + static_cast<std::int64_t>(trial) * 5;
    const std::int64_t n = 4 + static_cast<std::int64_t>(trial) * 7;
    const float alpha = 0.5f + 0.25f * static_cast<float>(trial);
    const float beta = trial % 3 == 0 ? 0.0f : (trial % 3 == 1 ? 1.0f : -0.75f);
    for (const pd::Trans ta : modes) {
      for (const pd::Trans tb : modes) {
        const pd::Matrix a = ta == pd::Trans::N ? random_dense(m, k, 100 + trial)
                                                : random_dense(k, m, 100 + trial);
        const pd::Matrix b = tb == pd::Trans::N ? random_dense(k, n, 200 + trial)
                                                : random_dense(n, k, 200 + trial);
        pd::Matrix c = random_dense(m, n, 300 + trial);
        const pd::Matrix ref = naive_gemm(ta, tb, alpha, a, b, beta, c);
        pd::gemm(ta, tb, alpha, a, b, beta, c);
        EXPECT_LT(pd::Matrix::max_abs_diff(c, ref), 1e-4f)
            << "trial " << trial << " ta=" << (ta == pd::Trans::T) << " tb="
            << (tb == pd::Trans::T);
      }
    }
  }
}

TEST(GemmProperties, TransposeModesAgreeWithMaterialisedTransposes) {
  const pd::Matrix a = random_dense(21, 17, 1);
  const pd::Matrix b = random_dense(21, 12, 2);
  // A^T * B via mode flags vs explicit transposed copies: identical kernels
  // after operand materialisation, so results must match bitwise.
  const pd::Matrix via_modes = pd::matmul(a, b, pd::Trans::T, pd::Trans::N);
  const pd::Matrix via_copies = pd::matmul(a.transposed(), b);
  EXPECT_EQ(pd::Matrix::max_abs_diff(via_modes, via_copies), 0.0f);
}

TEST(GemmProperties, BetaZeroOverwritesGarbage) {
  // beta == 0 must overwrite C even when it holds non-finite values.
  const pd::Matrix a = random_dense(8, 6, 3);
  const pd::Matrix b = random_dense(6, 5, 4);
  pd::Matrix c(8, 5, std::numeric_limits<float>::quiet_NaN());
  pd::gemm(pd::Trans::N, pd::Trans::N, 1.0f, a, b, 0.0f, c);
  for (float v : c.flat()) EXPECT_TRUE(std::isfinite(v));
  EXPECT_LT(pd::Matrix::max_abs_diff(c, naive_gemm(pd::Trans::N, pd::Trans::N, 1.0f, a, b, 0.0f,
                                                   pd::Matrix(8, 5))),
            1e-4f);
}

TEST(GemmProperties, ThreadedMatchesSerialBitwise) {
  const pd::Matrix a = random_dense(130, 70, 5);
  const pd::Matrix b = random_dense(70, 33, 6);
  const pd::Matrix c0 = random_dense(130, 33, 7);

  pd::Matrix serial = c0;
  {
    pu::ScopedIntraRankThreads scope(1);
    pd::gemm(pd::Trans::N, pd::Trans::N, 1.25f, a, b, 0.5f, serial);
  }
  for (const int threads : {2, 4, 8}) {
    pd::Matrix c = c0;
    pu::ScopedIntraRankThreads scope(threads);
    pd::gemm(pd::Trans::N, pd::Trans::N, 1.25f, a, b, 0.5f, c);
    EXPECT_EQ(pd::Matrix::max_abs_diff(c, serial), 0.0f) << "threads=" << threads;
  }
}

TEST(GemmProperties, ThreadedTransposeModesMatchSerialBitwise) {
  const pd::Matrix a = random_dense(96, 41, 8);
  const pd::Matrix b = random_dense(96, 27, 9);
  pd::Matrix serial;
  {
    pu::ScopedIntraRankThreads scope(1);
    serial = pd::matmul(a, b, pd::Trans::T, pd::Trans::N);
  }
  pu::ScopedIntraRankThreads scope(4);
  const pd::Matrix threaded = pd::matmul(a, b, pd::Trans::T, pd::Trans::N);
  EXPECT_EQ(pd::Matrix::max_abs_diff(threaded, serial), 0.0f);
}
