#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/error.hpp"

namespace plexus::util {

ThreadPool::ThreadPool(int num_threads) {
  PLEXUS_CHECK(num_threads >= 1, "ThreadPool: need at least one thread");
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

namespace {

/// Number of chunks in the (n, grain) grid; `threads` is the grain-0
/// fallback (one chunk per executor). The single source of truth — callers
/// size per-chunk arrays from this count and index them from chunk_span, so
/// every execution path must agree with it.
std::int64_t grid_chunks(std::int64_t n, std::int64_t grain, std::int64_t threads) {
  return grain > 0 ? (n + grain - 1) / grain : threads;
}

/// Boundaries of chunk `c` of the (begin, end, grain, chunks) grid.
void chunk_span(std::int64_t begin, std::int64_t end, std::int64_t grain, std::int64_t chunks,
                std::int64_t c, std::int64_t* c0, std::int64_t* c1) {
  if (grain > 0) {
    *c0 = begin + c * grain;
    *c1 = std::min(end, *c0 + grain);
  } else {
    const std::int64_t n = end - begin;
    *c0 = begin + c * n / chunks;
    *c1 = begin + (c + 1) * n / chunks;
  }
}

/// Serial walk of the whole chunk grid, in index order. The one
/// implementation behind every inline/serial execution path — the bitwise
/// guarantee of grain-fixed reductions depends on all paths sharing it.
void run_grid_inline(std::int64_t begin, std::int64_t end, std::int64_t grain,
                     std::int64_t chunks, const ChunkBody& body) {
  for (std::int64_t c = 0; c < chunks; ++c) {
    std::int64_t c0 = 0;
    std::int64_t c1 = 0;
    chunk_span(begin, end, grain, chunks, c, &c0, &c1);
    if (c0 < c1) body(c, c0, c1);
  }
}

/// True on threads owned by a ThreadPool; they must keep their serial budget.
thread_local bool tl_in_worker = false;

}  // namespace

void ThreadPool::run_chunks(int executor) {
  const std::int64_t stride = num_threads();
  try {
    for (std::int64_t c = executor; c < num_chunks_; c += stride) {
      std::int64_t c0 = 0;
      std::int64_t c1 = 0;
      chunk_span(begin_, end_, grain_, num_chunks_, c, &c0, &c1);
      if (c0 >= c1) continue;
      (*body_)(c, c0, c1);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!error_) error_ = std::current_exception();
  }
}

void ThreadPool::worker_loop(int executor) {
  // Workers run with a serial budget so kernels invoked from a body nest
  // inline instead of spawning pools-of-pools; the flag makes the budget
  // unchangeable for the thread's lifetime.
  set_intra_rank_threads(1);
  tl_in_worker = true;
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || job_epoch_ != seen; });
      if (stop_) return;
      seen = job_epoch_;
    }
    run_chunks(executor);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                              const ChunkBody& body) {
  if (end <= begin) return;
  const std::int64_t chunks = grid_chunks(end - begin, grain, num_threads());

  if (chunks == 1 || running_ || workers_.empty()) {
    // One-chunk grid (nothing to parallelise), nested call from a body on
    // the owner thread, or a single-thread pool: run the chunk grid inline,
    // in index order. Uses only locals — workers of an outer job may still
    // be reading the shared job fields. running_ stays set so a body cannot
    // tear the pool down from under this frame (see set_intra_rank_threads).
    const bool was_running = running_;
    running_ = true;
    try {
      run_grid_inline(begin, end, grain, chunks, body);
    } catch (...) {
      running_ = was_running;
      throw;
    }
    running_ = was_running;
    return;
  }

  running_ = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    begin_ = begin;
    end_ = end;
    grain_ = grain;
    num_chunks_ = chunks;
    error_ = nullptr;
    active_ = static_cast<int>(workers_.size());
    ++job_epoch_;
  }
  start_cv_.notify_all();
  run_chunks(0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return active_ == 0; });
  }
  running_ = false;
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

namespace {

/// Per-thread engine: the budget plus the lazily constructed pool. Destroyed
/// (workers joined) when the owning thread — e.g. a simulated rank — exits.
struct Engine {
  int budget = 0;  ///< 0 = not yet resolved
  std::unique_ptr<ThreadPool> pool;
};

thread_local Engine tl_engine;

}  // namespace

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int env_thread_override() {
  const char* s = std::getenv("PLEXUS_THREADS");
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == nullptr || *end != '\0' || v < 1 || v > 4096) return 0;
  return static_cast<int>(v);
}

int intra_rank_threads() {
  if (tl_engine.budget == 0) {
    const int env = env_thread_override();
    tl_engine.budget = env > 0 ? env : 1;
  }
  return tl_engine.budget;
}

void set_intra_rank_threads(int n) {
  n = std::max(1, n);
  // Pool workers must stay serial: a raised budget would build a
  // pool-inside-a-pool and oversubscribe the host.
  PLEXUS_CHECK(!tl_in_worker || n == 1,
               "set_intra_rank_threads: pool workers cannot raise their budget");
  if (tl_engine.pool && tl_engine.pool->num_threads() != n) {
    // Resizing tears down the pool; doing that from inside a running body
    // would join workers of the job we are executing (use-after-free).
    PLEXUS_CHECK(!tl_engine.pool->busy(),
                 "set_intra_rank_threads: cannot resize the engine from inside a parallel body");
    tl_engine.pool.reset();
  }
  tl_engine.budget = n;
}

std::int64_t parallel_chunk_count(std::int64_t n, std::int64_t grain) {
  if (n <= 0) return 0;
  return grid_chunks(n, grain, intra_rank_threads());
}

void parallel_for_grain(std::int64_t begin, std::int64_t end, std::int64_t grain,
                        const ChunkBody& body) {
  if (end <= begin) return;
  const int t = intra_rank_threads();
  if (t <= 1) {
    // Serial execution of the same chunk grid, in chunk order (grain == 0
    // degenerates to a single chunk, matching a pool of one).
    run_grid_inline(begin, end, grain, grid_chunks(end - begin, grain, 1), body);
    return;
  }
  if (!tl_engine.pool) tl_engine.pool = std::make_unique<ThreadPool>(t);
  tl_engine.pool->parallel_for(begin, end, grain, body);
}

void parallel_for(std::int64_t begin, std::int64_t end, const RangeBody& body,
                  std::int64_t work_estimate) {
  if (end <= begin) return;
  if (work_estimate >= 0 && work_estimate < kSerialWorkCutoff) {
    body(begin, end);
    return;
  }
  parallel_for_grain(begin, end, 0,
                     [&body](std::int64_t, std::int64_t c0, std::int64_t c1) { body(c0, c1); });
}

}  // namespace plexus::util
