#pragma once
/// \file aligned.hpp
/// Minimal over-aligned allocator for std::vector-backed numeric storage.
///
/// `AlignedAllocator<float, 64>` gives `dense::Matrix` a 64-byte-aligned base
/// pointer (one cache line, the AVX-512 vector width) so SIMD kernels may use
/// aligned loads whenever the row stride cooperates, without changing the
/// container type seen by any caller. Alignment is a property of the *base*
/// allocation only — element layout stays exactly std::vector's.

#include <cstddef>
#include <new>

namespace plexus::util {

template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be a power of two");
  static_assert(Alignment >= alignof(T), "alignment must not weaken the type's own");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) { return false; }
};

}  // namespace plexus::util
