// Tests for the partitioners (Fennel/METIS surrogate, nnz-balanced/GVB
// surrogate), boundary statistics and halo exchange plans.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/datasets.hpp"
#include "partition/halo.hpp"
#include "partition/partitioner.hpp"
#include "sparse/csr.hpp"

namespace pp = plexus::part;
namespace pg = plexus::graph;
namespace ps = plexus::sparse;

namespace {

pg::Graph community_test_graph() {
  return pg::make_proxy(pg::dataset_info("Isolate-3-8M"), 2000, 3);
}

}  // namespace

class PartCounts : public ::testing::TestWithParam<int> {};

TEST_P(PartCounts, FennelProducesValidBalancedPartition) {
  const int parts = GetParam();
  const auto g = community_test_graph();
  const auto p = pp::fennel_partition(g.adjacency(), parts, 5);
  ASSERT_EQ(static_cast<std::int64_t>(p.assignment.size()), g.num_nodes);
  const auto sizes = p.part_sizes();
  ASSERT_EQ(sizes.size(), static_cast<std::size_t>(parts));
  const auto total = std::accumulate(sizes.begin(), sizes.end(), std::int64_t{0});
  EXPECT_EQ(total, g.num_nodes);
  const double target = static_cast<double>(g.num_nodes) / parts;
  for (const auto s : sizes) {
    EXPECT_LE(static_cast<double>(s), 1.15 * target + 2);  // balance slack
    EXPECT_GT(s, 0);
  }
}

TEST_P(PartCounts, FennelBeatsRandomOnEdgeCut) {
  const int parts = GetParam();
  if (parts < 2) return;
  const auto g = community_test_graph();
  const auto adj = g.adjacency();
  const auto fennel_cut = pp::edge_cut(adj, pp::fennel_partition(adj, parts, 5));
  const auto random_cut = pp::edge_cut(adj, pp::random_partition(g.num_nodes, parts, 5));
  EXPECT_LT(static_cast<double>(fennel_cut), 0.8 * static_cast<double>(random_cut));
}

INSTANTIATE_TEST_SUITE_P(Counts, PartCounts, ::testing::Values(2, 4, 8, 16));

TEST(Partition, NnzBalanced) {
  const auto g = pg::make_proxy(pg::dataset_info("ogbn-products"), 3000, 4);
  const auto adj = g.adjacency();
  const auto p = pp::nnz_balanced_partition(adj, 8);
  // Contiguous and nnz-balanced: per-part nnz within 2x of each other even on
  // a power-law graph (uniform row blocks would be far worse).
  std::vector<std::int64_t> nnz(8, 0);
  for (std::int64_t v = 0; v < adj.rows(); ++v) {
    nnz[static_cast<std::size_t>(p.assignment[static_cast<std::size_t>(v)])] += adj.row_nnz(v);
    if (v > 0) {
      EXPECT_GE(p.assignment[static_cast<std::size_t>(v)],
                p.assignment[static_cast<std::size_t>(v - 1)]);  // contiguous
    }
  }
  const auto mx = *std::max_element(nnz.begin(), nnz.end());
  const auto mn = *std::min_element(nnz.begin(), nnz.end());
  EXPECT_LT(static_cast<double>(mx), 2.5 * static_cast<double>(std::max<std::int64_t>(mn, 1)));
}

TEST(Partition, EdgeCutOfTrivialPartitionIsZero) {
  const auto g = community_test_graph();
  EXPECT_EQ(pp::edge_cut(g.adjacency(), pp::fennel_partition(g.adjacency(), 1, 5)), 0);
}

TEST(Partition, BoundaryStatsGrowWithParts) {
  // The mechanism behind BNS-GCN's scaling cliff (section 7.1): total nodes
  // including boundary grows with partition count.
  const auto g = community_test_graph();
  const auto adj = g.adjacency();
  const auto s4 = pp::boundary_stats(adj, pp::fennel_partition(adj, 4, 5));
  const auto s16 = pp::boundary_stats(adj, pp::fennel_partition(adj, 16, 5));
  EXPECT_GT(s4.total_with_boundary, g.num_nodes);
  EXPECT_GT(s16.total_with_boundary, s4.total_with_boundary);
  EXPECT_GT(s16.expansion_factor(g.num_nodes), 1.05);
}

TEST(Partition, BoundaryStatsExactOnPath) {
  // Path 0-1-2-3 split {0,1} | {2,3}: each part has exactly one halo node.
  ps::Coo coo;
  coo.num_rows = 4;
  coo.num_cols = 4;
  for (std::int64_t v = 0; v + 1 < 4; ++v) {
    coo.push(v, v + 1, 1.0f);
    coo.push(v + 1, v, 1.0f);
  }
  const auto adj = ps::Csr::from_coo(coo, false);
  pp::Partitioning p;
  p.num_parts = 2;
  p.assignment = {0, 0, 1, 1};
  const auto s = pp::boundary_stats(adj, p);
  EXPECT_EQ(s.boundary[0], 1);  // part 0 needs node 2
  EXPECT_EQ(s.boundary[1], 1);  // part 1 needs node 1
  EXPECT_EQ(s.total_with_boundary, 6);
  EXPECT_EQ(pp::edge_cut(adj, p), 1);
}

TEST(Halo, PlansAreConsistent) {
  const auto g = community_test_graph();
  const auto a_norm = ps::normalize_adjacency(g.adjacency(), g.num_nodes);
  const auto partn = pp::fennel_partition(g.adjacency(), 4, 7);
  const auto plans = pp::build_halo_plans(a_norm, partn);
  ASSERT_EQ(plans.size(), 4u);

  std::int64_t owned_total = 0;
  std::int64_t nnz_total = 0;
  for (int i = 0; i < 4; ++i) {
    const auto& plan = plans[static_cast<std::size_t>(i)];
    owned_total += plan.num_owned();
    nnz_total += plan.local_adj.nnz();
    // Send/recv lists are aligned pairwise.
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(plan.recv_halo[static_cast<std::size_t>(j)].size(),
                plans[static_cast<std::size_t>(j)].send_rows[static_cast<std::size_t>(i)].size());
    }
    // No self halo.
    EXPECT_TRUE(plan.recv_halo[static_cast<std::size_t>(i)].empty());
    // Local adjacency has the right shape.
    EXPECT_EQ(plan.local_adj.rows(), plan.num_owned());
    EXPECT_EQ(plan.local_adj.cols(), plan.num_owned() + plan.num_halo());
  }
  EXPECT_EQ(owned_total, g.num_nodes);
  EXPECT_EQ(nnz_total, a_norm.nnz());  // row partition preserves all entries
}

TEST(Halo, SendRecvListsAreElementAligned) {
  // The invariant every halo exchange relies on: plans[i].send_rows[j][k] and
  // plans[j].recv_halo[i][k] name the *same node* for every k — part i packs
  // owned[send_rows[j][k]] and part j unpacks it at halo[recv_halo[i][k]].
  // Size equality alone (Halo.PlansAreConsistent) would pass with permuted
  // lists, which silently scrambles features across nodes; this pins the
  // element-level pairing on randomized partitions, including ones with
  // empty and singleton parts.
  const auto g = community_test_graph();
  const auto a_norm = ps::normalize_adjacency(g.adjacency(), g.num_nodes);
  for (const std::uint64_t seed : {3u, 17u, 91u}) {
    for (const int parts : {2, 3, 5, 8}) {
      auto partn = pp::random_partition(g.num_nodes, parts, seed);
      if (seed == 91u && parts >= 3) {
        // Force an empty part (all its nodes reassigned to part 0) — empty
        // send/recv lists must stay aligned too.
        for (auto& a : partn.assignment) {
          if (a == parts - 1) a = 0;
        }
      }
      const auto plans = pp::build_halo_plans(a_norm, partn);
      ASSERT_EQ(plans.size(), static_cast<std::size_t>(parts));
      for (int i = 0; i < parts; ++i) {
        const auto& sender = plans[static_cast<std::size_t>(i)];
        for (int j = 0; j < parts; ++j) {
          const auto& receiver = plans[static_cast<std::size_t>(j)];
          const auto& send = sender.send_rows[static_cast<std::size_t>(j)];
          const auto& recv = receiver.recv_halo[static_cast<std::size_t>(i)];
          ASSERT_EQ(send.size(), recv.size()) << "i=" << i << " j=" << j;
          for (std::size_t k = 0; k < send.size(); ++k) {
            EXPECT_EQ(sender.owned[static_cast<std::size_t>(send[k])],
                      receiver.halo[static_cast<std::size_t>(recv[k])])
                << "seed " << seed << " parts " << parts << " i=" << i << " j=" << j
                << " k=" << k;
          }
        }
      }
    }
  }
}

TEST(Halo, LocalAdjacencyReindexingIsCorrect) {
  // Verify a few entries: local_adj[r, c] must equal a_norm[owned[r], global(c)].
  const auto g = pg::make_test_graph(60, 5.0, 4, 3, 21);
  const auto a_norm = ps::normalize_adjacency(g.adjacency(), g.num_nodes);
  const auto partn = pp::random_partition(g.num_nodes, 3, 9);
  const auto plans = pp::build_halo_plans(a_norm, partn);
  const auto dense = a_norm.to_dense();
  for (const auto& plan : plans) {
    const auto local_dense = plan.local_adj.to_dense();
    const auto cols = plan.local_adj.cols();
    for (std::int64_t r = 0; r < plan.num_owned(); ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        const auto gr = plan.owned[static_cast<std::size_t>(r)];
        const auto gc = c < plan.num_owned() ? plan.owned[static_cast<std::size_t>(c)]
                                             : plan.halo[static_cast<std::size_t>(c - plan.num_owned())];
        EXPECT_EQ(local_dense[static_cast<std::size_t>(r * cols + c)],
                  dense[static_cast<std::size_t>(gr * g.num_nodes + gc)]);
      }
    }
  }
}
