#pragma once
/// \file generators.hpp
/// Deterministic synthetic graph generators, one per structural class of the
/// paper's six evaluation datasets (Table 4):
///
///  * `rmat`            — power-law Kronecker graphs: social networks (Reddit),
///                        co-purchasing (ogbn-products, products-14M) and
///                        citation graphs (ogbn-papers100M).
///  * `community_graph` — dense overlapping clusters: protein-similarity
///                        networks (Isolate-3-8M from HipMCL).
///  * `road_network`    — partial 2D lattice with shortcuts: OpenStreetMap road
///                        graphs (europe_osm). Row-major node numbering gives
///                        the near-diagonal adjacency whose block imbalance
///                        Table 3 measures.
///  * `erdos_renyi`     — uniform random graphs for unit tests.
///
/// All generators return symmetrised, deduplicated edge lists without self
/// loops, with node ids in their *natural* (community/locality-correlated)
/// order — permutation experiments rely on that.

#include <cstdint>

#include "sparse/coo.hpp"

namespace plexus::graph {

/// R-MAT / stochastic-Kronecker generator. `scale` = log2(#nodes); emits
/// ~`target_edges` unique undirected edges with partition probabilities
/// (a, b, c, d), a + b + c + d = 1. Natural ordering concentrates hubs at low
/// indices (power-law head).
sparse::Coo rmat(int scale, std::int64_t target_edges, double a, double b, double c, double d,
                 std::uint64_t seed);

/// Overlapping dense-community graph: `num_nodes` nodes in contiguous
/// communities of mean size `community_size`; each node draws ~`avg_degree`
/// neighbours, a fraction `p_in` inside its community, the rest global with
/// mild preferential attachment.
sparse::Coo community_graph(std::int64_t num_nodes, std::int64_t community_size,
                            double avg_degree, double p_in, std::uint64_t seed);

/// Road-network surrogate: `width * height` lattice in row-major order; each
/// lattice edge kept with probability `keep_prob` (road graphs average degree
/// ~2.1, a full lattice is 4); `shortcut_frac * num_nodes` long-range highway
/// edges.
sparse::Coo road_network(std::int64_t width, std::int64_t height, double keep_prob,
                         double shortcut_frac, std::uint64_t seed);

/// Uniform random graph with ~`target_edges` unique undirected edges.
sparse::Coo erdos_renyi(std::int64_t num_nodes, std::int64_t target_edges, std::uint64_t seed);

}  // namespace plexus::graph
