// Figure 9: communication/computation breakdown of BNS-GCN vs Plexus on
// products-14M, 32-256 GPUs (Perlmutter) — the inflection analysis.
// Also reproduces the paper's boundary-growth observation: total nodes across
// partitions (incl. boundary) grew from 18M to 22M between 32 and 256 parts.
#include "baselines/costmodels.hpp"
#include "bench_common.hpp"
#include "sim/machine.hpp"
#include "util/table.hpp"

int main() {
  using plexus::util::Table;
  namespace pb = plexus::base;
  namespace pg = plexus::graph;

  plexus::bench::banner("Figure 9: BNS-GCN vs Plexus epoch breakdown, products-14M",
                        "Figure 9 (section 7.1), 32-256 GPUs of Perlmutter");
  const auto& m = plexus::sim::Machine::perlmutter_a100();
  const auto& info = pg::dataset_info("products-14M");
  const auto curves = pb::calibrated_curves(info, 5);

  Table t({"#GPUs", "Framework", "Comm (ms)", "Comp (ms)", "Total (ms)"});
  for (const int gpus : {32, 64, 128, 256}) {
    const auto bns = pb::bnsgcn_epoch(m, info, gpus, curves);
    const auto plx = pb::plexus_epoch(m, info, gpus);
    t.add_row({std::to_string(gpus), "BNS-GCN", plexus::bench::ms(bns.comm_seconds, 1),
               plexus::bench::ms(bns.compute_seconds, 1), plexus::bench::ms(bns.total(), 1)});
    t.add_row({"", "Plexus", plexus::bench::ms(plx.comm_seconds, 1),
               plexus::bench::ms(plx.compute_seconds, 1), plexus::bench::ms(plx.total(), 1)});
  }
  t.print();

  const double nodes32 = curves.expansion(32) * static_cast<double>(info.num_nodes);
  const double nodes256 = curves.expansion(256) * static_cast<double>(info.num_nodes);
  std::printf("\ntotal nodes across partitions incl. boundary:\n");
  std::printf("  32 parts:  %.1fM (paper: 18M)\n", nodes32 / 1e6);
  std::printf("  256 parts: %.1fM (paper: 22M)\n", nodes256 / 1e6);
  std::printf("=> the boundary set grows with partition count, so BNS-GCN's aggregate work\n"
              "   grows while its all-to-all scales worse than Plexus's ring collectives;\n"
              "   the epoch-time inflection lands at 64 GPUs as in the paper (section 7.1).\n");
  return 0;
}
