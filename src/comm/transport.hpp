#pragma once
/// \file transport.hpp
/// Pluggable byte-transport backends behind the Communicator.
///
/// The comm stack is split into two layers:
///
///  * **cost / accounting** (communicator.hpp) — post-time clocks, the ring
///    cost model, link-busy horizons, exposed-vs-hidden attribution,
///    CommStats and the timeline. This layer is backend-invariant: simulated
///    clocks, stats and losses are bitwise-identical for every in-process
///    transport.
///  * **byte movement** (this file) — how the payload of a collective
///    actually travels between ranks. Selected per Communicator via a
///    `Transport`.
///
/// Three backends:
///
///  * `Backend::Sim` — the shared-slot simulator movement: every member
///    publishes its buffer pointer and peers read it directly. This is the
///    historic behaviour, preserved bit for bit (same copies, same float
///    summation order).
///  * `Backend::Local` — really moves bytes between the in-process rank
///    threads the way a network transport would: ring all-gather and ring
///    broadcast relay hop neighbour-to-neighbour with a group-barrier per
///    step, all-to-all uses a rotated exchange schedule, and reductions stage
///    every peer contribution into a receive buffer before combining. The
///    combination order is canonical (member 0, 1, …, G-1 — the same
///    left-fold the Sim backend uses), so results stay bitwise-identical to
///    Sim: determinism is part of the transport conformance contract, the
///    reason a true ring *reduction* (whose partial sums nest in ring order)
///    is deliberately not used.
///  * `Backend::Mpi` — optional, compiled behind the `PLEXUS_WITH_MPI` CMake
///    option: maps each CommHandle onto MPI collectives on a per-group
///    sub-communicator (`MPI_Comm_create_group` over the group's member
///    list). One process per rank. Reductions gather every contribution and
///    fold locally in canonical member order (never `MPI_SUM`, whose order
///    is implementation-defined), so float results are bitwise-identical to
///    the in-process backends. Supports the SimClock: each op piggybacks one
///    fused max-allreduce of {posted clock, payload bytes} on the collective,
///    which is all the completion math needs (see docs/COMM.md).
///
/// In-process transports implement `move()` (+ optional `finalize()`), which
/// the Communicator runs inside the group's barrier protocol. Distributed
/// transports set `uses_group_protocol() == false` and implement `execute()`,
/// owning the whole collective.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "comm/handle.hpp"
#include "comm/world.hpp"
#include "util/enum_names.hpp"

namespace plexus::comm {

/// Byte-transport backend selector. Resolution: explicit API argument, else
/// `set_default_backend()`, else the `PLEXUS_BACKEND` environment variable
/// (`sim` | `local` | `mpi`), else Sim.
enum class Backend {
  Sim,    ///< shared-slot simulator movement (historic behaviour)
  Local,  ///< in-process ring/staged movement between rank threads
  Mpi,    ///< real MPI nonblocking collectives (requires PLEXUS_WITH_MPI)
};

/// Element type of a collective payload, for backends (MPI) that need a real
/// datatype for reductions. Byte-copy collectives may use `Bytes`.
enum class DType { Bytes, F32, F64, I32, I64 };

/// Number format of fp32 collective payloads *on the wire*. `Fp32` ships the
/// buffers verbatim (bitwise-identical training, the default); `Bf16` packs
/// fp32 → bf16 at the transport boundary — the Communicator converts on post
/// and widens / accumulates in fp32 on completion, so the compression is an
/// explicitly opted-in numeric change (docs/COMM.md), never silent. Only
/// fp32 payloads compress; int / double / metadata exchanges always travel
/// at full width. Resolution mirrors Backend: explicit
/// `Communicator::set_wire_precision`, else `set_default_wire_precision()`,
/// else the `PLEXUS_WIRE` environment variable (`fp32` | `bf16`), else Fp32.
enum class WirePrecision {
  Fp32,  ///< verbatim fp32 payloads (bitwise-deterministic)
  Bf16,  ///< bf16 wire payloads, fp32 accumulation (half the wire volume)
};

/// Wire-format name ("fp32", "bf16") for logs and CLI flags.
const char* wire_precision_name(WirePrecision w);

/// Parse a wire-format name (case-insensitive). Returns false on unknown.
bool wire_precision_from_string(std::string_view s, WirePrecision& out);

/// The process-wide default wire format: `set_default_wire_precision`
/// override, else `PLEXUS_WIRE`, else Fp32.
WirePrecision default_wire_precision();
void set_default_wire_precision(WirePrecision w);

/// Restore "follow the PLEXUS_WIRE environment variable".
void reset_default_wire_precision();

/// Bytes one fp32 payload element occupies on the wire under `w`.
constexpr std::size_t wire_elem_size(WirePrecision w) {
  return w == WirePrecision::Bf16 ? 2 : 4;
}

template <typename T>
constexpr DType dtype_of() {
  if constexpr (std::is_same_v<T, float>) return DType::F32;
  else if constexpr (std::is_same_v<T, double>) return DType::F64;
  else if constexpr (std::is_same_v<T, std::int32_t>) return DType::I32;
  else if constexpr (std::is_same_v<T, std::int64_t>) return DType::I64;
  else return DType::Bytes;
}

/// Type-erased description of one collective, built by the Communicator's
/// templated entry points. Field meaning by kind:
///
/// | kind          | send        | recv          | count (elements)        |
/// |---------------|-------------|---------------|-------------------------|
/// | AllGather     | own chunk   | gathered out  | per-member chunk        |
/// | ReduceScatter | full input  | own chunk out | per-member chunk (out)  |
/// | AllReduce     | nullptr     | in-place buf  | buffer elements         |
/// | Broadcast     | nullptr     | in-place buf  | buffer elements         |
/// | AllToAll      | full input  | full output   | per-member chunk        |
/// | Barrier       | nullptr     | nullptr       | 0                       |
///
/// A flat variable all-to-all (`iall_to_all_v`) is an AllToAll with
/// `send_counts != nullptr`: `send` holds the payload packed by destination
/// member (destination chunks in member order, `send_counts[m]` elements
/// each), `recv` receives chunks packed by source member
/// (`recv_counts[m]` elements from member m), and `count` is unused (the
/// counts arrays govern). The counts must be globally consistent:
/// `recv_counts[m]` here equals member m's `send_counts[my pos]`.
struct CollArgs {
  Collective kind = Collective::Barrier;
  GroupId gid = 0;  ///< the op's group (sub-communicator key for MPI)
  int pos = 0;      ///< caller's position within the group
  const void* send = nullptr;
  void* recv = nullptr;
  std::size_t elem = 0;   ///< element size in bytes
  std::size_t count = 0;  ///< element count (see table above)
  int root = 0;           ///< broadcast root (group position)
  DType dtype = DType::Bytes;
  /// Flat variable all-to-all (see table note above): per-destination /
  /// per-source element counts, each `group size` entries. Null for every
  /// other collective shape.
  const std::int64_t* send_counts = nullptr;
  const std::int64_t* recv_counts = nullptr;
  /// Typed accumulation `acc[i] += src[i]` over `n` elements; null for
  /// non-reducing collectives. Every backend must apply contributions with
  /// this exact function in canonical member order for bitwise conformance.
  /// Under a compressed wire format `src` points at *wire-typed* elements
  /// (`elem` bytes each) while `acc` stays a fp32 accumulator — the function
  /// widens as it folds, so precision is lost only once per contribution.
  void (*accumulate)(void* acc, const void* src, std::size_t n) = nullptr;
  /// Reduction-accumulator initialisation `acc[i] = widen(src[i])` over
  /// `count` elements, for wire formats narrower than the accumulator. Null
  /// means the wire and accumulator types agree: plain `memcpy` of
  /// `count * elem` bytes (the historic behaviour, bit-for-bit).
  void (*assign)(void* acc, const void* src, std::size_t n) = nullptr;
  /// Element size of the reduction accumulator (and of `recv` for reducing
  /// collectives). 0 means `elem` — wire and accumulator types agree.
  std::size_t acc_elem = 0;

  /// Effective accumulator element size (see `acc_elem`).
  std::size_t accumulator_elem() const { return acc_elem != 0 ? acc_elem : elem; }
  /// Scalar reductions (all_reduce_{max,sum}_scalar) for non-protocol
  /// backends; in-process backends exchange scalars through the group's
  /// clock-slot aux values instead.
  bool scalar_op = false;
  bool scalar_is_max = false;
  double scalar_value = 0.0;
};

/// A byte-movement backend. Stateless (Sim/Local) or process-global (MPI)
/// singletons returned by `transport_for`; shared by every Communicator that
/// selects them, so implementations must be thread-safe across concurrent
/// rank and channel threads.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual Backend backend() const = 0;
  virtual const char* name() const = 0;

  /// True when the transport moves bytes inside the shared-memory group
  /// protocol (publish / barrier / read phase / barrier) — the in-process
  /// backends. False for distributed backends (MPI), which own the whole op
  /// via execute() and never touch group barriers or clock slots.
  virtual bool uses_group_protocol() const { return true; }

  /// True when Communicators over this transport may carry a SimClock.
  /// In-process transports exchange post clocks through the group's clock
  /// slots; a distributed transport must override this (and piggyback the
  /// clock exchange on its own wire, see MpiTransport) to opt in. The
  /// Communicator rejects a clock when this is false.
  virtual bool supports_clock() const { return uses_group_protocol(); }

  /// In-process data movement. Runs on the op's executing thread between the
  /// group's protocol barriers; `g.slots[m]` holds member m's published
  /// buffer (CollArgs::send if set, else recv). Implementations may run
  /// extra `g.barrier` rounds (every member executes the same schedule) and
  /// may publish additional pointers through `g.xfer_slots`.
  virtual void move(GroupShared& g, const CollArgs& a);

  /// Trailing writes to the member's *own* buffers, run after the protocol's
  /// completion barrier (e.g. the all-reduce copy-back from scratch). The
  /// next op's first barrier orders these writes before any peer reads.
  virtual void finalize(GroupShared& g, const CollArgs& a);

  /// Whole-op execution for non-protocol backends: perform the collective,
  /// fill `op.full_seconds` / `op.done_clock` (cost-model time) and, for
  /// scalar ops, `op.scalar`.
  virtual void execute(GroupShared& g, const CollArgs& a, detail::CommOp& op);

  /// Variable all-to-all for non-protocol backends: `send[m]` goes to member
  /// m, `recv[m]` is resized and filled with member m's bytes. Must set
  /// `op.bytes` to the maximum per-member total send volume (the straggler
  /// defines the exchange). In-process backends exchange the nested vectors
  /// through the slot protocol instead (communicator.hpp).
  virtual void alltoallv(GroupShared& g, const CollArgs& a,
                         const std::vector<std::span<const unsigned char>>& send,
                         std::vector<std::vector<unsigned char>>& recv,
                         detail::CommOp& op);
};

/// Backend name ("sim", "local", "mpi") for logs and CLI flags. Thin wrapper
/// over the util::EnumNames registry below.
const char* backend_name(Backend b);

/// Parse a backend name (case-insensitive). Returns false on unknown names.
bool backend_from_string(std::string_view s, Backend& out);

/// The backends this *build* can actually run: "sim | local", plus "mpi"
/// when compiled with PLEXUS_WITH_MPI. Pass to util::enum_error<Backend> so
/// error messages never advertise an unavailable backend.
std::string backend_choices();

/// The process-wide default backend: `set_default_backend` override, else
/// `PLEXUS_BACKEND`, else Sim.
Backend default_backend();

/// Process-wide override; pass `reset_default_backend()` semantics by calling
/// with the environment-resolved value, or use ScopedBackend in tests.
void set_default_backend(Backend b);

/// Restore "follow the PLEXUS_BACKEND environment variable".
void reset_default_backend();

/// The singleton transport for a backend. Aborts for Backend::Mpi when the
/// tree was configured without PLEXUS_WITH_MPI.
Transport& transport_for(Backend b);

/// True when this build carries the MPI transport (PLEXUS_WITH_MPI=ON).
bool mpi_transport_available();

/// The MPI process identity established by `mpi_runtime_init`.
struct MpiRuntime {
  int rank = 0;  ///< this process's rank in MPI_COMM_WORLD
  int size = 1;  ///< number of launched processes
};

/// Initialise MPI for a one-process-per-rank driver (examples, tests) without
/// exposing mpi.h to the caller: `MPI_Init_thread(MPI_THREAD_MULTIPLE)`, then
/// downgrade the per-process comm-thread budget to match the granted thread
/// level (SERIALIZED → one channel, less → inline). Idempotent per process.
/// Aborts in builds without PLEXUS_WITH_MPI.
MpiRuntime mpi_runtime_init(int* argc, char*** argv);

/// `MPI_Barrier(MPI_COMM_WORLD)` — e.g. "rank 0 finished writing shards".
void mpi_runtime_barrier();

/// `MPI_Finalize` (no-op if never initialised or already finalised).
void mpi_runtime_finalize();

/// RAII default-backend override for tests and benches.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend b);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  bool had_override_;
  Backend prev_;
};

/// RAII default-wire-format override for tests and benches.
class ScopedWirePrecision {
 public:
  explicit ScopedWirePrecision(WirePrecision w);
  ~ScopedWirePrecision();
  ScopedWirePrecision(const ScopedWirePrecision&) = delete;
  ScopedWirePrecision& operator=(const ScopedWirePrecision&) = delete;

 private:
  bool had_override_;
  WirePrecision prev_;
};

namespace detail {

/// Initialise a reduction accumulator from the first contribution: the
/// wire-format `assign` hook when set, else the historic memcpy of the raw
/// chunk. Every backend seeds its canonical left-fold through this.
inline void assign_chunk(const CollArgs& a, void* acc, const void* src) {
  if (a.assign != nullptr) {
    a.assign(acc, src, a.count);
    return;
  }
  const std::size_t nb = a.count * a.elem;
  if (nb > 0) std::memcpy(acc, src, nb);
}

/// Flat variable all-to-all movement shared by the in-process transports
/// (CollArgs::send_counts != nullptr). Each member publishes its send_counts
/// through `g.xfer_slots` (one extra barrier), then copies its chunk out of
/// every source's packed send buffer — in canonical member order (Sim) or the
/// rotated all-to-all order (Local); the destinations are disjoint, so both
/// orders produce identical bytes. Zero-length chunks are skipped, never
/// dereferenced, so empty send lists are safe.
void flat_alltoallv_move(GroupShared& g, const CollArgs& a, bool rotated);

/// Accessors used by the Local transport ring schedules; exposed for the
/// conformance tests.
Transport& sim_transport();
Transport& local_transport();
#ifdef PLEXUS_WITH_MPI
Transport& mpi_transport();
#endif
}  // namespace detail

}  // namespace plexus::comm

/// Registry entry (util/enum_names.hpp): the one source of truth for backend
/// names. backend_name / backend_from_string are wrappers over this table.
template <>
struct plexus::util::EnumNames<plexus::comm::Backend> {
  static constexpr const char* kind = "backend";
  static constexpr EnumEntry<plexus::comm::Backend> table[] = {
      {plexus::comm::Backend::Sim, "sim"},
      {plexus::comm::Backend::Local, "local"},
      {plexus::comm::Backend::Mpi, "mpi"},
  };
};

/// Registry entry: the one source of truth for wire-format names.
template <>
struct plexus::util::EnumNames<plexus::comm::WirePrecision> {
  static constexpr const char* kind = "wire format";
  static constexpr EnumEntry<plexus::comm::WirePrecision> table[] = {
      {plexus::comm::WirePrecision::Fp32, "fp32"},
      {plexus::comm::WirePrecision::Bf16, "bf16"},
  };
};
