// Section 4.1: fitting and cross-validating the 3-term computational model.
// The paper fits a linear regression on 67 measured runs and reports, over
// 1000 random 70/30 splits, train R^2 = 0.89 / RMSE = 16.8 ms and test
// R^2 = 0.79 / RMSE = 20.1 ms, with coefficients ~7.8e-4, 7.8e-10, -2.6e-10.
//
// Our "measured runs" are the detailed kernel model (roofline + cache
// residency + shape penalty + noise) evaluated across datasets x GPU counts x
// configurations — a strictly richer model than the 3-term regression, so the
// regression's fit quality is a meaningful number, not a tautology.
#include "bench_common.hpp"
#include "comm/transport.hpp"
#include "core/roles.hpp"
#include "perfmodel/host_fit.hpp"
#include "perfmodel/perfmodel.hpp"
#include "sim/kernels.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using plexus::util::Table;
  namespace pp = plexus::perf;
  namespace pg = plexus::graph;
  namespace psim = plexus::sim;

  plexus::bench::banner("Section 4.1: computational model fit and cross-validation",
                        "section 4.1 regression (R^2 / RMSE over 1000 splits)");
  const auto& m = psim::Machine::perlmutter_a100();

  std::vector<std::vector<double>> feats;
  std::vector<double> observed;
  plexus::util::SplitMix64 noise_rng(17);
  // The paper's 67 runs span medium datasets and GPU counts where epoch times
  // sit in the tens-to-hundreds of ms; mixing papers100M@8 (seconds) with
  // Reddit@512 (sub-ms) would ask one linear model to span 3 orders of
  // magnitude. We sample the same regime.
  for (const char* name : {"Reddit", "ogbn-products", "Isolate-3-8M", "products-14M"}) {
    const auto& info = pg::dataset_info(name);
    const auto w = pp::WorkloadStats::from_dataset(info);
    for (const int gpus : {32, 64, 128}) {
      for (const auto& grid : pp::enumerate_grids(gpus)) {
        // Y-extreme configurations shard feature columns below one element
        // per GPU; the paper's runs keep D/Gy >= 1 (D >= 100, Gy <= 64).
        if (grid.y > 64) continue;
        feats.push_back(pp::comp_model_features(w, grid));
        // Detailed per-layer SpMM times (fwd + bwd) with run-to-run noise.
        double t = 0.0;
        for (int l = 0; l < w.num_layers(); ++l) {
          const auto roles = plexus::core::roles_for_layer(l);
          auto ext = [&](plexus::core::Axis a) {
            switch (a) {
              case plexus::core::Axis::X: return grid.x;
              case plexus::core::Axis::Y: return grid.y;
              case plexus::core::Axis::Z: return grid.z;
            }
            return 1;
          };
          const auto din = std::max<std::int64_t>(
              1, w.layer_dims[static_cast<std::size_t>(l)] / ext(roles.q));
          const auto nnz = w.num_nonzeros / (ext(roles.r) * ext(roles.p));
          const psim::SpmmShape fwd{nnz, w.num_nodes / ext(roles.r),
                                    w.num_nodes / ext(roles.p), din};
          const psim::SpmmShape bwd{nnz, w.num_nodes / ext(roles.p),
                                    w.num_nodes / ext(roles.r), din};
          t += psim::spmm_time(m, fwd) + psim::spmm_time(m, bwd);
        }
        observed.push_back(t * (1.0 + 0.08 * (noise_rng.next_double() - 0.5)));
      }
    }
  }
  std::printf("data points: %zu (paper: 67 measured runs)\n", feats.size());

  const auto fitted = pp::fit_comp_model(feats, observed);
  std::printf("fitted coefficients: %.3e, %.3e, %.3e (paper: 7.8e-4, 7.8e-10, -2.6e-10)\n",
              fitted.coefficients[0], fitted.coefficients[1], fitted.coefficients[2]);

  const auto cv = pp::cross_validate_comp_model(feats, observed, 1000, 99);
  Table t({"Split", "R^2 (measured)", "R^2 (paper)", "RMSE ms (measured)", "RMSE ms (paper)"});
  t.add_row({"train (70%)", Table::fmt(cv.train_r2, 3), "0.89",
             Table::fmt(cv.train_rmse * 1e3, 1), "16.8"});
  t.add_row({"test (30%)", Table::fmt(cv.test_r2, 3), "0.79", Table::fmt(cv.test_rmse * 1e3, 1),
             "20.1"});
  t.print();

  // One-shot host recalibration: measure the vectorized kernels and refit the
  // machine constants, so the planning heuristics (pipeline depth, sparse
  // aggregation) can be priced against this host's real rates instead of the
  // scalar-era ones. The default training machine stays perlmutter_a100 —
  // this section only reports what the fit would change.
  plexus::bench::banner("Host kernel calibration (one-shot perfmodel fit)",
                        "measured single-thread rates on the active SIMD target");
  const auto cal = pp::measure_host_kernels();
  const auto host = pp::fit_host_machine(cal);
  Table h({"Constant", host.name.c_str(), "perlmutter_a100 (reference)"});
  h.add_row({"peak fp32 Gflop/s", Table::fmt(host.peak_flops / 1e9, 2),
             Table::fmt(m.peak_flops / 1e9, 0)});
  h.add_row({"gemm_eff NN/NT/TN",
             Table::fmt(host.gemm_eff_nn, 2) + "/" + Table::fmt(host.gemm_eff_nt, 2) + "/" +
                 Table::fmt(host.gemm_eff_tn, 2),
             Table::fmt(m.gemm_eff_nn, 2) + "/" + Table::fmt(m.gemm_eff_nt, 2) + "/" +
                 Table::fmt(m.gemm_eff_tn, 2)});
  h.add_row({"spmm_efficiency", Table::fmt(host.spmm_efficiency, 4),
             Table::fmt(m.spmm_efficiency, 4)});
  h.add_row({"mem_bw GB/s", Table::fmt(host.mem_bw / 1e9, 1), Table::fmt(m.mem_bw / 1e9, 0)});
  h.print();

  // What the refit changes downstream: the adaptive pipeline depth for
  // ogbn-products' layer 0 on a 2x2x2 grid, priced at both wire formats
  // (fp32 = 4 bytes/float, bf16 = 2 — comm::wire_elem_size).
  const auto wp = pp::WorkloadStats::from_dataset(pg::dataset_info("ogbn-products"));
  const psim::GridShape grid{2, 2, 2};
  const auto eb_fp32 = static_cast<int>(plexus::comm::wire_elem_size(
      plexus::comm::WirePrecision::Fp32));
  const auto eb_bf16 = static_cast<int>(plexus::comm::wire_elem_size(
      plexus::comm::WirePrecision::Bf16));
  std::printf("adaptive depth, products layer 0, X2Y2Z2, 8 blocks: "
              "reference %d (fp32) / %d (bf16); host-fit %d (fp32) / %d (bf16)\n",
              pp::choose_pipeline_depth(m, wp, grid, 0, 8, eb_fp32),
              pp::choose_pipeline_depth(m, wp, grid, 0, 8, eb_bf16),
              pp::choose_pipeline_depth(host, wp, grid, 0, 8, eb_fp32),
              pp::choose_pipeline_depth(host, wp, grid, 0, 8, eb_bf16));
  return 0;
}
