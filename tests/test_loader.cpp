// Tests for the sharded dataset format and the parallel loader (section 5.4).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/datasets.hpp"
#include "loader/shard_io.hpp"
#include "sparse/csr.hpp"

namespace pio = plexus::io;
namespace pg = plexus::graph;
namespace ps = plexus::sparse;

namespace {

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("plexus_loader_test_" + std::to_string(::getpid()));
    g_ = pg::make_test_graph(256, 6.0, 8, 4, 3);
    adj_ = ps::normalize_adjacency(g_.adjacency(), g_.num_nodes);
    pio::write_sharded_dataset(dir_.string(), adj_, g_.features, g_.labels, g_.num_classes,
                               /*grid_rows=*/4, /*grid_cols=*/4);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  pg::Graph g_;
  ps::Csr adj_;
};

}  // namespace

TEST_F(LoaderTest, MetaRoundTrip) {
  const auto meta = pio::read_meta(dir_.string());
  EXPECT_EQ(meta.num_nodes, 256);
  EXPECT_EQ(meta.feature_dim, 8);
  EXPECT_EQ(meta.num_classes, 4);
  EXPECT_EQ(meta.grid_rows, 4);
  EXPECT_EQ(meta.grid_cols, 4);
  EXPECT_EQ(meta.adjacency_nnz, adj_.nnz());
}

TEST_F(LoaderTest, AdjacencyWindowMatchesDirectExtraction) {
  // Windows aligned and unaligned with the shard grid.
  for (const auto& [r0, r1, c0, c1] :
       std::vector<std::tuple<int, int, int, int>>{{0, 64, 0, 64},
                                                   {64, 192, 128, 256},
                                                   {10, 100, 33, 200},
                                                   {0, 256, 0, 256}}) {
    pio::LoadStats stats;
    const auto got = pio::load_adjacency_block(dir_.string(), r0, r1, c0, c1, &stats);
    const auto want = adj_.block(r0, r1, c0, c1);
    EXPECT_TRUE(ps::Csr::equal(got, want)) << "window " << r0 << ":" << r1 << "," << c0 << ":"
                                           << c1;
    EXPECT_GT(stats.bytes_read, 0);
    EXPECT_GT(stats.files_opened, 0);
  }
}

TEST_F(LoaderTest, NaiveLoaderMatchesButReadsEverything) {
  pio::LoadStats par;
  pio::LoadStats naive;
  const auto a = pio::load_adjacency_block(dir_.string(), 0, 64, 0, 64, &par);
  const auto b = pio::load_adjacency_block_naive(dir_.string(), 0, 64, 0, 64, &naive);
  EXPECT_TRUE(ps::Csr::equal(a, b));
  // The parallel loader touches ~1/16 of the data and far fewer bytes.
  EXPECT_LT(par.bytes_read * 4, naive.bytes_read);
  EXPECT_LT(par.peak_host_bytes, naive.peak_host_bytes);
  EXPECT_LT(par.files_opened, naive.files_opened);
}

TEST_F(LoaderTest, FeatureWindow) {
  pio::LoadStats stats;
  const auto block = pio::load_feature_block(dir_.string(), 100, 200, 2, 7, &stats);
  EXPECT_EQ(block.rows(), 100);
  EXPECT_EQ(block.cols(), 5);
  for (std::int64_t r = 0; r < 100; ++r) {
    for (std::int64_t c = 0; c < 5; ++c) {
      EXPECT_EQ(block.at(r, c), g_.features.at(100 + r, 2 + c));
    }
  }
  // Only the 2 intersecting row-block files (rows 64..128, 128..192, 192..256
  // -> 3 files for rows 100..200).
  EXPECT_LE(stats.files_opened, 3);
}

TEST_F(LoaderTest, LabelsRoundTrip) {
  const auto labels = pio::load_labels(dir_.string());
  ASSERT_EQ(labels.size(), static_cast<std::size_t>(g_.num_nodes));
  for (std::size_t i = 0; i < labels.size(); ++i) EXPECT_EQ(labels[i], g_.labels[i]);
}

TEST_F(LoaderTest, MissingDirectoryThrows) {
  EXPECT_THROW(pio::read_meta("/nonexistent/plexus"), std::runtime_error);
}
