// Command-line training driver — the "plexus run" entry point a downstream
// user would script:
//
//   ./build/examples/plexus_train [dataset] [nodes] [gx] [gy] [gz] [epochs] [backend] [agg]
//   ./build/examples/plexus_train ogbn-products 8000 4 2 2 10 local sparse
//
// dataset: any Table 4 name (a scaled proxy is generated at `nodes` scale).
// Pass gx=0 to let the performance model choose the grid for gx*gy*gz... i.e.
// `plexus_train ogbn-products 8000 0 16` asks the model for the best 16-GPU
// configuration. `backend` picks the byte transport (sim | local, plus mpi in
// PLEXUS_WITH_MPI builds; default: PLEXUS_BACKEND, else sim) — losses are
// bitwise-identical across all of them. The mpi backend runs one process per
// rank: launch under `mpirun -np <gx*gy*gz>`; rank 0 preprocesses and writes
// a sharded dataset directory (PLEXUS_SHARD_DIR, default under /tmp), every
// rank then streams only its own shard's block files (see docs/COMM.md).
// `agg` picks the aggregation strategy (dense | sparse | auto; default:
// PLEXUS_AGG, else dense) — losses are bitwise-identical, wire bytes differ.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/dataset_view.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "perfmodel/perfmodel.hpp"
#include "sim/machine.hpp"
#include "util/parse.hpp"

namespace {

int usage(const char* argv0, const char* what, const char* got) {
  std::fprintf(stderr, "plexus_train: %s '%s'\n", what, got);
  std::fprintf(stderr,
               "usage: %s [dataset] [nodes>=1] [gx>=0] [gy>=1] [gz>=1] [epochs>=1] "
               "[backend] [agg]\n       gx=0 asks the performance model for the best "
               "gy-GPU grid\n",
               argv0);
  return 1;
}

/// The backends this binary can actually run, for error messages.
const char* backend_choices() {
  return plexus::comm::mpi_transport_available() ? "sim | local | mpi" : "sim | local";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "ogbn-products";
  std::int64_t nodes = 4000;
  int gx = 2, gy = 2, gz = 2, epochs = 10;
  if (argc > 2 && (!plexus::util::parse_int64(argv[2], nodes) || nodes < 1)) {
    return usage(argv[0], "bad node count", argv[2]);
  }
  if (argc > 3 && (!plexus::util::parse_int(argv[3], gx) || gx < 0)) {
    return usage(argv[0], "bad grid dimension gx", argv[3]);
  }
  if (argc > 4 && (!plexus::util::parse_int(argv[4], gy) || gy < 1)) {
    return usage(argv[0], "bad grid dimension gy", argv[4]);
  }
  if (argc > 5 && (!plexus::util::parse_int(argv[5], gz) || gz < 1)) {
    return usage(argv[0], "bad grid dimension gz", argv[5]);
  }
  if (argc > 6 && (!plexus::util::parse_int(argv[6], epochs) || epochs < 1)) {
    return usage(argv[0], "bad epoch count", argv[6]);
  }
  auto backend = plexus::comm::default_backend();
  if (argc > 7 && !plexus::comm::backend_from_string(argv[7], backend)) {
    std::fprintf(stderr, "unknown backend '%s' (expected %s)\n", argv[7], backend_choices());
    return 1;
  }
  auto agg = plexus::core::default_aggregation();
  if (argc > 8 && !plexus::core::aggregation_from_string(argv[8], agg)) {
    std::fprintf(stderr, "unknown aggregation '%s' (expected dense | sparse | auto)\n", argv[8]);
    return 1;
  }
  const bool distributed = backend == plexus::comm::Backend::Mpi;
  if (distributed && !plexus::comm::mpi_transport_available()) {
    std::fprintf(stderr, "this build has no mpi backend (expected %s); rebuild with "
                         "-DPLEXUS_WITH_MPI=ON\n",
                 backend_choices());
    return 1;
  }

  plexus::comm::MpiRuntime rt;  // rank 0 / size 1 unless the mpi backend is up
  if (distributed) rt = plexus::comm::mpi_runtime_init(&argc, &argv);

  const auto& info = plexus::graph::dataset_info(dataset);
  const auto& machine = plexus::sim::Machine::perlmutter_a100();

  if (gx == 0) {
    // Model-selected configuration for a `gy`-GPU budget (section 4.3). The
    // choice is deterministic, so under mpirun every rank selects the same
    // grid without communicating.
    const auto w = plexus::perf::WorkloadStats::from_dataset(info);
    const auto best = plexus::perf::best_configuration(machine, w, gy);
    gx = best.x;
    gz = best.z;
    gy = best.y;
    if (rt.rank == 0) {
      std::printf("performance model selected %s\n",
                  plexus::perf::grid_to_string(best).c_str());
    }
  }
  const int volume = gx * gy * gz;
  if (distributed && rt.size != volume) {
    if (rt.rank == 0) {
      std::fprintf(stderr,
                   "mpi backend needs one process per rank: launched %d processes for a "
                   "%dx%dx%d grid (%d ranks)\n",
                   rt.size, gx, gy, gz, volume);
    }
    plexus::comm::mpi_runtime_finalize();
    return 1;
  }

  plexus::core::TrainOptions opt;
  opt.grid = {gx, gy, gz};
  opt.machine = &machine;
  opt.model.hidden_dims = {128, 128};
  opt.model.options.agg_row_blocks = 8;
  opt.epochs = epochs;
  opt.evaluate_validation = true;
  opt.backend = backend;
  opt.aggregation = agg;

  plexus::core::TrainResult result;
  long long num_edges = -1;
  if (!distributed) {
    const auto g = plexus::graph::make_proxy(info, nodes, /*seed=*/1);
    num_edges = static_cast<long long>(g.num_edges());
    std::printf(
        "training %s proxy (%lld nodes, %lld edges) on a %dx%dx%d grid, %d epochs, "
        "%s transport, %s aggregation\n",
        dataset.c_str(), static_cast<long long>(g.num_nodes), num_edges, gx, gy, gz, epochs,
        plexus::comm::backend_name(backend), plexus::core::aggregation_name(agg));
    result = plexus::core::train_plexus(g, opt);
  } else {
    // Rank 0 preprocesses once and writes the sharded block-file layout; the
    // barrier publishes it, then every rank (rank 0 included) streams only
    // the block files its own shard windows intersect.
    const char* env_dir = std::getenv("PLEXUS_SHARD_DIR");
    const std::string dir =
        env_dir != nullptr && *env_dir != '\0'
            ? std::string(env_dir)
            : (std::filesystem::temp_directory_path() /
               ("plexus_shards_" + dataset + "_" + std::to_string(nodes) + "_" +
                std::to_string(gx) + "x" + std::to_string(gy) + "x" + std::to_string(gz)))
                  .string();
    if (rt.rank == 0) {
      const auto g = plexus::graph::make_proxy(info, nodes, /*seed=*/1);
      num_edges = static_cast<long long>(g.num_edges());
      std::printf(
          "training %s proxy (%lld nodes, %lld edges) on a %dx%dx%d grid, %d epochs, "
          "%s transport, %s aggregation\n",
          dataset.c_str(), static_cast<long long>(g.num_nodes), num_edges, gx, gy, gz, epochs,
          plexus::comm::backend_name(backend), plexus::core::aggregation_name(agg));
      const auto ds = plexus::core::preprocess_graph(g, opt.scheme, opt.model.num_layers(),
                                                     /*pad_multiple=*/volume,
                                                     opt.preprocess_seed);
      plexus::core::write_sharded_plexus_dataset(dir, ds, volume);
      std::printf("rank 0 wrote sharded dataset to %s\n", dir.c_str());
    }
    plexus::comm::mpi_runtime_barrier();
    plexus::core::ShardedDatasetView view(dir);
    result = plexus::core::train_plexus_rank(view, opt, rt.rank);
    if (rt.rank == 0) {
      const auto& st = view.load_stats();
      std::printf("rank 0 streamed %lld bytes from %lld block files (shard-local IO)\n",
                  static_cast<long long>(st.bytes_read), static_cast<long long>(st.files_opened));
    }
  }

  if (rt.rank == 0) {
    for (std::size_t e = 0; e < result.epochs.size(); ++e) {
      const auto& s = result.epochs[e];
      std::printf(
          "epoch %2zu  loss %.4f  acc %.3f  sim %.2f ms (spmm %.2f, gemm %.2f, comm %.2f)  "
          "wire %.2f MB\n",
          e + 1, s.loss, s.train_accuracy, s.epoch_seconds * 1e3, s.spmm_seconds * 1e3,
          s.gemm_seconds * 1e3, s.wait_seconds() * 1e3, s.comm_wire_bytes / 1e6);
    }
    std::printf("validation accuracy %.3f | avg epoch %.2f ms on %s\n", result.val_accuracy,
                result.avg_epoch_seconds(2) * 1e3, machine.name.c_str());
  }
  if (distributed) {
    plexus::comm::mpi_runtime_barrier();  // keep rank 0's output ahead of teardown
    plexus::comm::mpi_runtime_finalize();
  }
  return 0;
}
