#include "comm/cost.hpp"

#include <algorithm>
#include <cmath>

namespace plexus::comm {

double collective_time(Collective op, std::int64_t bytes, int group_size, const LinkParams& link,
                       double a2a_distance_penalty) {
  if (group_size <= 1) return 0.0;
  const double m = static_cast<double>(bytes);
  const double g = static_cast<double>(group_size);
  const double ring_frac = (g - 1.0) / g;
  switch (op) {
    case Collective::Barrier:
      return link.latency * std::log2(g);
    case Collective::Broadcast:
      // Scatter + all-gather (Thakur): ~2 * (G-1)/G * M / beta.
      return 2.0 * ring_frac * m / link.bandwidth + 2.0 * (g - 1.0) * link.latency;
    case Collective::AllGather:
    case Collective::ReduceScatter:
      // One ring pass over the full buffer: (G-1)/G * M / beta.
      return ring_frac * m / link.bandwidth + (g - 1.0) * link.latency;
    case Collective::AllReduce:
      // Reduce-scatter + all-gather: 2 * (G-1)/G * M / beta (paper eq. 4.5).
      return 2.0 * ring_frac * m / link.bandwidth + 2.0 * (g - 1.0) * link.latency;
    case Collective::AllToAll:
      // Pairwise exchange: each rank sends M bytes total split across G-1
      // peers, most of them non-neighbours => distance penalty on the volume
      // term plus a sublinear per-peer software overhead (the dominant cost
      // at scale, where per-peer messages shrink into the latency regime —
      // section 7.1's explanation of the all-to-all scaling cliff).
      return a2a_distance_penalty * (ring_frac * m / link.bandwidth) +
             (g - 1.0) * link.latency +
             link.a2a_peer_overhead * std::pow(g - 1.0, 0.8);
    case Collective::Send:
      return m / link.bandwidth + link.latency;
  }
  return 0.0;
}

const char* collective_name(Collective op) {
  switch (op) {
    case Collective::Barrier: return "Barrier";
    case Collective::Broadcast: return "Broadcast";
    case Collective::AllGather: return "AllGather";
    case Collective::AllReduce: return "AllReduce";
    case Collective::ReduceScatter: return "ReduceScatter";
    case Collective::AllToAll: return "AllToAll";
    case Collective::Send: return "Send";
  }
  return "?";
}

std::int64_t wire_bytes(Collective op, std::int64_t bytes, int group_size) {
  if (group_size <= 1) return 0;
  const double m = static_cast<double>(bytes);
  const double g = static_cast<double>(group_size);
  const double ring_frac = (g - 1.0) / g;
  switch (op) {
    case Collective::Barrier:
      return 0;
    case Collective::Broadcast:
    case Collective::AllReduce:
      return static_cast<std::int64_t>(2.0 * ring_frac * m);
    case Collective::AllGather:
    case Collective::ReduceScatter:
    case Collective::AllToAll:
      return static_cast<std::int64_t>(ring_frac * m);
    case Collective::Send:
      return bytes;
  }
  return 0;
}

double dense_aggregation_time(std::int64_t block_bytes, bool scatter, int group_size,
                              const LinkParams& link, double a2a_distance_penalty) {
  return collective_time(scatter ? Collective::ReduceScatter : Collective::AllReduce,
                         block_bytes, group_size, link, a2a_distance_penalty);
}

double sparse_aggregation_time(std::int64_t block_bytes, std::int64_t max_support_bytes,
                               bool scatter, int group_size, const LinkParams& link,
                               double a2a_distance_penalty) {
  double t = collective_time(Collective::AllToAll, max_support_bytes, group_size, link,
                             a2a_distance_penalty);
  if (!scatter) {
    t += collective_time(Collective::AllGather, block_bytes, group_size, link,
                         a2a_distance_penalty);
  }
  return t;
}

int choose_pipeline_depth(double block_compute_seconds, double block_ring_seconds,
                          int num_blocks, int max_depth) {
  if (num_blocks <= 1 || block_ring_seconds <= 0.0) return 1;
  const int cap = std::max(2, std::min(num_blocks, max_depth));
  if (block_compute_seconds <= 0.0) return cap;  // nothing to hide behind: max lookahead
  const double ratio = block_ring_seconds / block_compute_seconds;
  const int depth = 2 + static_cast<int>(std::ceil(ratio));
  return std::max(2, std::min(depth, cap));
}

}  // namespace plexus::comm
