#include "dense/ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace plexus::dense {

void relu(const Matrix& x, Matrix& out) {
  PLEXUS_CHECK(x.same_shape(out), "relu shape mismatch");
  const auto in = x.flat();
  auto o = out.flat();
  const auto n = static_cast<std::int64_t>(in.size());
  const auto& kernels = simd::active_kernels();
  util::parallel_for(
      0, n,
      [&](std::int64_t i0, std::int64_t i1) {
        kernels.relu(in.data() + i0, o.data() + i0, i1 - i0);
      },
      /*work_estimate=*/n);
}

Matrix relu(const Matrix& x) {
  Matrix out(x.rows(), x.cols());
  relu(x, out);
  return out;
}

void relu_backward(const Matrix& pre_activation, const Matrix& dy, Matrix& dx) {
  PLEXUS_CHECK(pre_activation.same_shape(dy), "relu_backward shape mismatch");
  PLEXUS_CHECK(pre_activation.same_shape(dx), "relu_backward shape mismatch");
  const auto q = pre_activation.flat();
  const auto g = dy.flat();
  auto o = dx.flat();
  const auto n = static_cast<std::int64_t>(q.size());
  const auto& kernels = simd::active_kernels();
  util::parallel_for(
      0, n,
      [&](std::int64_t i0, std::int64_t i1) {
        kernels.relu_backward(q.data() + i0, g.data() + i0, o.data() + i0, i1 - i0);
      },
      /*work_estimate=*/n);
}

CrossEntropyResult softmax_cross_entropy(const Matrix& logits,
                                         const std::vector<std::int32_t>& labels,
                                         const std::vector<std::uint8_t>& mask, double norm,
                                         Matrix* grad) {
  const std::int64_t n = logits.rows();
  const std::int64_t c = logits.cols();
  PLEXUS_CHECK(static_cast<std::int64_t>(labels.size()) == n, "labels size");
  PLEXUS_CHECK(static_cast<std::int64_t>(mask.size()) == n, "mask size");
  PLEXUS_CHECK(norm > 0.0, "softmax_cross_entropy: norm must be positive");
  if (grad != nullptr) {
    PLEXUS_CHECK(grad->rows() == n && grad->cols() == c, "grad shape");
    grad->zero();
  }

  // Rows are processed in fixed-size chunks (grain independent of the thread
  // count) and the per-chunk loss partials are combined in chunk order, so
  // the double-precision sum is bitwise-identical for any thread budget.
  constexpr std::int64_t kRowChunk = 256;
  CrossEntropyResult res;
  if (n == 0) return res;
  std::vector<CrossEntropyResult> partials(
      static_cast<std::size_t>(util::parallel_chunk_count(n, kRowChunk)));
  util::parallel_for_grain(0, n, kRowChunk, [&](std::int64_t chunk, std::int64_t i0,
                                                std::int64_t i1) {
    CrossEntropyResult local;
    std::vector<float> probs(static_cast<std::size_t>(c));
    for (std::int64_t i = i0; i < i1; ++i) {
      if (mask[static_cast<std::size_t>(i)] == 0) continue;
      const std::int32_t label = labels[static_cast<std::size_t>(i)];
      PLEXUS_CHECK(label >= 0 && label < c, "label out of range");
      const float* row = logits.row(i);
      float mx = row[0];
      for (std::int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
      double denom = 0.0;
      for (std::int64_t j = 0; j < c; ++j) {
        probs[static_cast<std::size_t>(j)] = std::exp(row[j] - mx);
        denom += probs[static_cast<std::size_t>(j)];
      }
      const double log_denom = std::log(denom);
      local.loss_sum += -(static_cast<double>(row[label]) - mx - log_denom);
      local.count += 1;

      std::int64_t argmax = 0;
      for (std::int64_t j = 1; j < c; ++j) {
        if (row[j] > row[argmax]) argmax = j;
      }
      if (argmax == label) local.correct += 1;

      if (grad != nullptr) {
        float* grow = grad->row(i);
        const auto inv = static_cast<float>(1.0 / (denom * norm));
        for (std::int64_t j = 0; j < c; ++j) {
          grow[j] = probs[static_cast<std::size_t>(j)] * inv;
        }
        grow[label] -= static_cast<float>(1.0 / norm);
      }
    }
    partials[static_cast<std::size_t>(chunk)] = local;
  });
  for (const auto& p : partials) {
    res.loss_sum += p.loss_sum;
    res.count += p.count;
    res.correct += p.correct;
  }
  return res;
}

}  // namespace plexus::dense
