#pragma once
/// \file trainer.hpp
/// Top-level training API: give it a graph, a 3D grid shape and a machine
/// model; it preprocesses the dataset, spins up the simulated cluster, trains
/// for the requested epochs and returns losses plus per-epoch simulated
/// timing breakdowns (max over ranks — the straggler defines the epoch).
///
/// This is the public entry point the examples and benches use:
///
///   plexus::core::TrainOptions opt;
///   opt.grid = {2, 2, 2};
///   auto result = plexus::core::train_plexus(graph, opt);

#include <optional>
#include <string>
#include <vector>

#include "comm/timeline.hpp"
#include "comm/transport.hpp"
#include "core/checkpoint.hpp"
#include "core/model.hpp"
#include "core/preprocess.hpp"
#include "graph/graph.hpp"
#include "sim/machine.hpp"
#include "sim/topology.hpp"

namespace plexus::core {

struct TrainOptions {
  sim::GridShape grid{1, 1, 1};
  const sim::Machine* machine = &sim::Machine::perlmutter_a100();
  PermutationScheme scheme = PermutationScheme::Double;
  GcnSpec model;
  int epochs = 10;
  std::uint64_t preprocess_seed = 7;
  bool evaluate_validation = false;  ///< adds a val-accuracy pass after training
  /// Host compute threads per simulated rank for the SpMM/GEMM/elementwise
  /// kernels. 0 = auto: PLEXUS_THREADS (or the hardware concurrency) divided
  /// by the number of ranks. Losses are bitwise-identical for any value.
  int intra_rank_threads = 0;
  /// Software-pipeline depth of blocked aggregation (see
  /// PlexusOptions::pipeline_depth). < 0 = keep model.options.pipeline_depth
  /// (whose default, 0, is adaptive per-layer depth from the perf model);
  /// > 0 overrides with a fixed depth (1 is fully blocking). Losses are
  /// bitwise-identical for any depth; only the exposed communication time
  /// changes, and the adaptive choice exposes no more than any fixed depth.
  int pipeline_depth = -1;
  /// Prefetch depth of the streaming-epoch IO pipeline (see
  /// PlexusOptions::prefetch_depth): how many adjacency block loads the layer
  /// keeps posted to the ShardStream ahead of compute. Same contract as
  /// pipeline_depth: < 0 (default) inherits model.options.prefetch_depth
  /// (whose default, 0, is adaptive from the perf model's disk bandwidth);
  /// > 0 overrides with a fixed depth. Pure scheduling knob — losses are
  /// bitwise-identical for any depth; only exposed IO time and peak cache
  /// residency change. Ignored by resident (non-streaming) runs.
  int prefetch_depth = -1;
  /// RSS budget in bytes for the streaming block cache (see
  /// PlexusOptions::rss_budget_bytes and loader::BlockCache). < 0 (default)
  /// defers to the PLEXUS_RSS_MB environment variable (unset = unbounded
  /// cache); >= 0 overrides. Only consulted by train_plexus_streaming (it
  /// sizes the budgeted ShardedDatasetView) and by the layers' adaptive
  /// prefetch-depth clamp. Pure memory knob: losses are bitwise-identical
  /// for any budget.
  std::int64_t rss_budget_bytes = -1;
  /// Aggregation strategy for the blocked collectives (see
  /// core::Aggregation): Dense ring collectives, Sparse selective row
  /// exchange, or Auto (per layer/direction cost-model choice). Follows the
  /// same inherit-unless-set contract as pipeline_depth (see
  /// resolve_options): std::nullopt keeps model.options.aggregation, a value
  /// overrides it. Defaults to the PLEXUS_AGG environment variable when set,
  /// else nullopt (inherit). Losses are bitwise-identical across strategies;
  /// only bytes-on-the-wire and the simulated comm time change.
  std::optional<Aggregation> aggregation = env_aggregation();
  /// Record rank 0's simulated timeline (compute / in-flight / exposed comm
  /// spans) into TrainResult::rank0_timeline. Off by default (unbounded span
  /// storage); breakdown harnesses (fig9) turn it on.
  bool trace_timeline = false;
  /// Byte-transport backend for the collectives (comm/transport.hpp):
  /// Backend::Sim (shared-slot simulator movement) or Backend::Local (real
  /// in-process ring/staged movement between the rank threads). Losses,
  /// clocks and stats are bitwise-identical across the two — only the
  /// mechanics of the byte movement differ. Defaults to the process default
  /// (the PLEXUS_BACKEND environment variable, else Sim). Backend::Mpi is a
  /// one-process-per-rank backend and cannot run under the threaded cluster —
  /// it is driven through train_plexus_rank instead.
  comm::Backend backend = comm::default_backend();
  /// Wire format for fp32 collective payloads (comm/transport.hpp):
  /// WirePrecision::Fp32 ships the buffers verbatim — the bitwise-
  /// deterministic default — while WirePrecision::Bf16 packs fp32 → bf16 at
  /// the transport boundary, halving the float wire volume (and the modelled
  /// comm time, which the adaptive pipeline-depth / aggregation planning
  /// re-prices accordingly) at the cost of one bf16 rounding per sent value;
  /// accumulation stays in fp32 (docs/COMM.md). Unlike every knob above,
  /// bf16 is an explicit numeric change: losses are close to, but not
  /// bitwise-identical with, fp32 runs. Defaults to the process default (the
  /// PLEXUS_WIRE environment variable, else Fp32).
  comm::WirePrecision wire = comm::default_wire_precision();
  /// Checkpoint directory (core/checkpoint.hpp). Empty = no checkpointing.
  /// When set, a checkpoint is always written after the final epoch; set
  /// checkpoint_every > 0 to also write one every k-th epoch (absolute epoch
  /// numbering). Rank 0 writes; the gather collectives run on every rank and
  /// do not perturb training state or the recorded epoch stats.
  std::string checkpoint_dir;
  int checkpoint_every = 0;
};

/// Resolve the effective per-layer options from TrainOptions — THE one place
/// trainer-level overrides meet GcnSpec, shared by every driver (threaded,
/// one-process-per-rank, resume) and by serve/, so all of them configure the
/// model identically. Contract, uniform across knobs:
///   * pipeline_depth:  opt.pipeline_depth >= 0 overrides, < 0 (default)
///     inherits model.options.pipeline_depth;
///   * aggregation:     opt.aggregation engaged overrides, nullopt (default,
///     unless PLEXUS_AGG is set) inherits model.options.aggregation.
/// Everything else passes through opt.model untouched.
GcnSpec resolve_options(const TrainOptions& opt);

/// PLEXUS_RSS_MB parsed to bytes (megabytes << 20), or -1 when the variable
/// is unset, malformed or negative. The environment-level default behind
/// TrainOptions::rss_budget_bytes.
std::int64_t env_rss_budget_bytes();

/// Rebuild the GcnSpec a checkpoint was trained with (exactly what
/// gather_state flattened into the ModelState spec fields).
GcnSpec spec_from_model_state(const io::ModelState& s);

struct TrainResult {
  std::vector<EpochStats> epochs;  ///< max-over-ranks timings, rank-0 loss
  double val_accuracy = 0.0;
  comm::Timeline rank0_timeline;   ///< populated when TrainOptions::trace_timeline
  /// Absolute index of epochs[0] (non-zero for resumed runs: a resume that
  /// continues at epoch k records epochs [k, opt.epochs) only).
  int first_epoch = 0;

  /// Mean epoch time skipping the first `skip` epochs ("average performance of
  /// the last eight epochs to account for initial fluctuations", section 6.2).
  double avg_epoch_seconds(int skip = 2) const;
  /// Mean EpochStats::wait_seconds(): exposed collectives + load-imbalance
  /// stall (the paper's fig. 9 "comm" bars fold both in too).
  double avg_comm_seconds(int skip = 2) const;
  double avg_compute_seconds(int skip = 2) const;
  std::vector<double> losses() const;
};

/// Fold one rank's EpochStats into the cluster-wide epoch line: every field
/// is max-reduced over `wg` in deterministic canonical member order, so all
/// ranks return identical values. Loss and accuracy are already identical on
/// every rank by construction (distributed_softmax_ce reduces them); the
/// timing fields are genuinely rank-local maxima — the straggler defines the
/// epoch. Used by the threaded cluster and the one-process-per-rank MPI
/// driver alike, which is what makes their epoch lines comparable.
EpochStats reduce_epoch_stats(comm::Communicator& comm, comm::GroupId wg, EpochStats s);

/// Train against any DatasetView on the threaded in-process cluster. The one
/// view is shared by every rank thread, so it must be thread-safe for reads
/// (InMemoryDatasetView is; ShardedDatasetView is per-rank and is not — use
/// train_plexus_rank for sharded views).
TrainResult train_plexus(const DatasetView& view, const TrainOptions& opt);

/// Train on an already-preprocessed dataset (shared across configurations to
/// amortise preprocessing in sweeps). `ds` must have been padded to a multiple
/// of opt.grid volume.
TrainResult train_plexus(const PlexusDataset& ds, const TrainOptions& opt);

/// Convenience: preprocess `g` (padding to the grid volume) and train.
TrainResult train_plexus(const graph::Graph& g, const TrainOptions& opt);

/// Out-of-core streaming epochs on the threaded in-process cluster: opens
/// `shard_dir` (a graph::rmat_to_shards / save_checkpoint-layout directory)
/// through ONE budgeted ShardedDatasetView shared by every rank thread, so
/// adjacency blocks are memory-mapped/read on demand through an LRU
/// BlockCache whose resident bytes never exceed the resolved RSS budget
/// (opt.rss_budget_bytes, else PLEXUS_RSS_MB, else unbounded). Forces dense
/// aggregation (the sparse planner needs resident shards). Losses and
/// simulated clocks are bitwise-identical to an in-memory train_plexus run
/// over the same directory — streaming is a pure memory/scheduling knob.
TrainResult train_plexus_streaming(const std::string& shard_dir, const TrainOptions& opt);

/// One-process-per-rank driver: runs rank `my_rank`'s share of the training
/// over the distributed transport selected by opt.backend (Backend::Mpi —
/// in-process backends belong in train_plexus). The caller launches one
/// process per rank (mpirun), initialises the runtime
/// (comm::mpi_runtime_init), and passes each process its own view — typically
/// a ShardedDatasetView so no process touches block files outside its shard.
/// Every process returns the same reduced TrainResult (epoch stats are
/// reduced across ranks exactly as in train_plexus), so rank 0 can print the
/// same epoch lines the threaded cluster would.
TrainResult train_plexus_rank(const DatasetView& view, const TrainOptions& opt, int my_rank);

/// Resume training from a checkpoint directory on the threaded in-process
/// cluster: loads the checkpoint's dataset (trained features) and model
/// state, restores weights/optimizer moments, and trains epochs
/// [epochs_completed, opt.epochs). Epoch seeds key on the absolute epoch
/// index, so the resumed losses are bitwise-identical to an uninterrupted
/// run's (tests/test_checkpoint.cpp). The checkpoint is authoritative for
/// the model spec, permutation scheme and preprocess seed — those TrainOptions
/// fields are ignored; grid/epochs/backend/override knobs still apply, and
/// opt.grid's volume must equal the checkpoint's pad_multiple.
TrainResult resume_plexus(const std::string& checkpoint_dir, const TrainOptions& opt);

/// One-process-per-rank resume (see train_plexus_rank): each process streams
/// its own shard of the checkpoint directory through a private
/// ShardedDatasetView and restores its local state slices.
TrainResult resume_plexus_rank(const std::string& checkpoint_dir, const TrainOptions& opt,
                               int my_rank);

}  // namespace plexus::core
