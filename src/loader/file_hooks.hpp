#pragma once
/// \file file_hooks.hpp
/// Fault-injection seam for the loader's read path. Tests install a
/// FileHooks to stand in for std::fread and inject short reads, EINTR-style
/// interruptions, or arbitrary byte corruption; every loader read — the
/// pod/array helpers in file_io.hpp and the MappedBlock portable fallback —
/// funnels through checked_fread, so an injected fault reaches the mmap +
/// prefetch streaming path exactly like it reaches the blocking one. While
/// any hook is installed MappedBlock refuses to mmap and uses the stdio
/// fallback instead (a fault cannot be injected into a page fault).
///
/// The seam is process-global and thread-safe: the prefetch worker threads
/// of a streaming epoch observe the same hook the test installed.

#include <cstdio>
#include <functional>
#include <utility>

namespace plexus::io {

struct FileHooks {
  /// Replacement for std::fread with the identical contract (returns the
  /// number of complete items read; a short count with the stream error
  /// flag set and errno == EINTR is retried by checked_fread).
  std::function<std::size_t(void*, std::size_t, std::size_t, std::FILE*)> fread;
};

void set_file_hooks(FileHooks hooks);
void clear_file_hooks();
bool file_hooks_active();

/// RAII installer for tests; clears the hook even when the test throws.
class ScopedFileHooks {
 public:
  explicit ScopedFileHooks(FileHooks hooks) { set_file_hooks(std::move(hooks)); }
  ~ScopedFileHooks() { clear_file_hooks(); }
  ScopedFileHooks(const ScopedFileHooks&) = delete;
  ScopedFileHooks& operator=(const ScopedFileHooks&) = delete;
};

/// std::fread through the hook seam. Transient EINTR short reads (error
/// flag + errno == EINTR) are retried transparently after clearing the
/// stream state; any other short read is returned as-is so the caller's
/// "read failed" check surfaces a clean diagnostic instead of a crash.
std::size_t checked_fread(void* dst, std::size_t size, std::size_t count, std::FILE* f);

}  // namespace plexus::io
