// Serving stack (serve/): ServedModel cached-logits inference over a real
// checkpoint, the InferenceServer admission queue + batcher under concurrent
// load, and the Zipfian request sampler.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "serve/inference_server.hpp"
#include "serve/served_model.hpp"
#include "serve/zipf.hpp"

namespace pc = plexus::core;
namespace pg = plexus::graph;
namespace psv = plexus::serve;

namespace {

// One shared checkpoint + model for the whole suite: training even a tiny
// model dominates the runtime, and every test only reads.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::filesystem::path(std::filesystem::temp_directory_path() /
                                     ("plexus_serve_test_" + std::to_string(::getpid())));
    const auto g = pg::make_test_graph(192, 6.0, 8, 4, 3);
    pc::TrainOptions opt;
    opt.grid = {2, 1, 2};
    opt.model.hidden_dims = {16, 16};
    opt.epochs = 3;
    opt.checkpoint_dir = dir_->string();
    pc::train_plexus(g, opt);
    model_ = new psv::ServedModel(dir_->string());
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    std::filesystem::remove_all(*dir_);
    delete dir_;
    dir_ = nullptr;
  }

  static std::filesystem::path* dir_;
  static psv::ServedModel* model_;
};

std::filesystem::path* ServeTest::dir_ = nullptr;
psv::ServedModel* ServeTest::model_ = nullptr;

}  // namespace

TEST_F(ServeTest, LoadsCheckpointShape) {
  EXPECT_EQ(model_->num_nodes(), 192);
  EXPECT_EQ(model_->num_classes(), 4);
  EXPECT_EQ(model_->num_layers(), 3);
  EXPECT_EQ(model_->logits().cols(), model_->state().layers.back().cols);
}

TEST_F(ServeTest, PredictIsArgmaxOverValidClassesOnly) {
  for (std::int64_t u = 0; u < model_->num_nodes(); ++u) {
    const auto p = model_->predict(u);
    ASSERT_GE(p.label, 0);
    ASSERT_LT(p.label, model_->num_classes());
    const auto row = model_->logits_row(u);
    EXPECT_EQ(p.score, model_->logits().at(row, p.label));
    // No valid class beats the returned one (padded columns must not win
    // even though their zero logits can exceed negative real logits).
    for (std::int32_t c = 0; c < model_->num_classes(); ++c) {
      EXPECT_LE(model_->logits().at(row, c), p.score);
    }
  }
}

TEST_F(ServeTest, LabelsAndSplitsFollowTheOutputPermutation) {
  // Every original node resolves to some label in range, and the three
  // splits partition the valid nodes (same invariant preprocessing set up).
  std::int64_t in_any = 0;
  for (std::int64_t u = 0; u < model_->num_nodes(); ++u) {
    const auto l = model_->label(u);
    EXPECT_GE(l, 0);
    EXPECT_LT(l, model_->num_classes());
    const int n = static_cast<int>(model_->in_split(u, pc::Split::Train)) +
                  static_cast<int>(model_->in_split(u, pc::Split::Val)) +
                  static_cast<int>(model_->in_split(u, pc::Split::Test));
    EXPECT_LE(n, 1);
    in_any += n;
  }
  EXPECT_EQ(in_any, model_->num_nodes());
}

TEST_F(ServeTest, ServerAnswersMatchDirectPredict) {
  psv::InferenceServer server(*model_);
  std::vector<std::future<psv::Prediction>> futures;
  for (std::int64_t u = 0; u < model_->num_nodes(); ++u) {
    auto fut = server.submit(u);
    ASSERT_TRUE(fut.has_value());
    futures.push_back(std::move(*fut));
  }
  for (std::int64_t u = 0; u < model_->num_nodes(); ++u) {
    const auto got = futures[static_cast<std::size_t>(u)].get();
    const auto want = model_->predict(u);
    EXPECT_EQ(got.label, want.label);
    EXPECT_EQ(got.score, want.score);
  }
  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.served, model_->num_nodes());
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_GE(stats.batches, 1);
  EXPECT_LE(stats.max_batch_size, 64);
  EXPECT_GE(stats.p99_latency_us, stats.p50_latency_us);
}

TEST_F(ServeTest, ConcurrentSubmittersAllGetAnswers) {
  psv::InferenceServer server(*model_);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  std::vector<int> correct(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::int64_t u = (t * kPerThread + i) % model_->num_nodes();
        auto fut = server.submit(u);
        ASSERT_TRUE(fut.has_value());
        if (fut->get().label == model_->predict(u).label) ++correct[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  server.stop();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(correct[t], kPerThread);
  EXPECT_EQ(server.stats().served, kThreads * kPerThread);
}

TEST_F(ServeTest, AdmissionBoundRejectsOverload) {
  // Tiny queue + long linger: the submit loop floods far faster than the
  // batcher drains, so most requests must be rejected — and every admitted
  // one must still be answered.
  psv::ServeOptions opt;
  opt.max_queue = 4;
  opt.max_batch = 1024;
  opt.max_wait_us = 100000;
  psv::InferenceServer server(*model_, opt);
  constexpr int kFlood = 200;
  std::vector<std::future<psv::Prediction>> admitted;
  for (int i = 0; i < kFlood; ++i) {
    auto fut = server.submit(i % model_->num_nodes());
    if (fut.has_value()) admitted.push_back(std::move(*fut));
  }
  EXPECT_LT(admitted.size(), static_cast<std::size_t>(kFlood));
  for (auto& f : admitted) f.get();
  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.served, static_cast<std::int64_t>(admitted.size()));
  EXPECT_EQ(stats.served + stats.rejected, kFlood);
  EXPECT_LE(stats.max_queue_depth, 4);
}

TEST_F(ServeTest, StopDrainsPendingRequests) {
  psv::ServeOptions opt;
  opt.max_wait_us = 50000;  // long linger so requests are pending at stop()
  psv::InferenceServer server(*model_, opt);
  std::vector<std::future<psv::Prediction>> futures;
  for (std::int64_t u = 0; u < 32; ++u) {
    auto fut = server.submit(u);
    ASSERT_TRUE(fut.has_value());
    futures.push_back(std::move(*fut));
  }
  server.stop();  // must answer everything already admitted, then join
  for (std::int64_t u = 0; u < 32; ++u) {
    EXPECT_EQ(futures[static_cast<std::size_t>(u)].get().label, model_->predict(u).label);
  }
  EXPECT_EQ(server.stats().served, 32);
  // After stop, new submissions are refused, not queued forever.
  EXPECT_FALSE(server.submit(0).has_value());
}

TEST_F(ServeTest, StatsTableListsEveryCounter) {
  psv::InferenceServer server(*model_);
  server.submit(0)->get();
  server.stop();
  const auto rendered = server.stats_table().to_string();
  for (const char* key : {"served", "rejected", "batches", "p50", "p99"}) {
    EXPECT_NE(rendered.find(key), std::string::npos) << rendered;
  }
}

TEST(Zipf, SamplesInRangeAndDeterministic) {
  psv::ZipfSampler a(100, 0.99, 7);
  psv::ZipfSampler b(100, 0.99, 7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = a.next();
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
    EXPECT_EQ(v, b.next());
  }
}

TEST(Zipf, SkewPrefersSmallIds) {
  // With exponent ~1 the head of the distribution dominates; uniform (s=0)
  // does not.
  const auto mass_in_head = [](double s) {
    psv::ZipfSampler z(1000, s, 11);
    int head = 0;
    for (int i = 0; i < 10000; ++i) head += z.next() < 10;
    return head;
  };
  EXPECT_GT(mass_in_head(1.1), 2000);  // >20% of mass on the top-1% ids
  EXPECT_LT(mass_in_head(0.0), 500);   // uniform: ~1%
}
