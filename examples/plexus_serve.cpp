// Serve a trained model from a checkpoint directory: load it, precompute the
// full-graph logits once, then answer node-classification queries through the
// concurrent admission queue + batcher (serve/inference_server.hpp).
//
//   ./build/examples/plexus_serve --checkpoint=/tmp/ckpt --queries=1000
//   ./build/examples/plexus_serve --checkpoint=/tmp/ckpt --node=42
//
// With --node, answers that single node and exits. Otherwise fires --queries
// requests with a Zipfian popularity mix (--zipf exponent), reports accuracy
// against the checkpoint's ground-truth labels, sustained QPS and the
// latency/queue counters. The positional form `plexus_serve [checkpoint]
// [queries]` still works but is deprecated.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "comm/transport.hpp"
#include "serve/inference_server.hpp"
#include "serve/served_model.hpp"
#include "serve/zipf.hpp"
#include "util/arg_parser.hpp"
#include "util/enum_names.hpp"
#include "util/parse.hpp"
#include "util/simd.hpp"

int main(int argc, char** argv) {
  using plexus::util::ArgParser;
  ArgParser args("plexus_serve",
                 "Serve node-classification queries from a Plexus checkpoint directory.",
                 "[checkpoint] [queries]");
  args.add_flag("checkpoint", "dir", "checkpoint directory written by plexus_train");
  args.add_flag("queries", "n", "Zipfian queries to fire", "1000");
  args.add_flag("zipf", "s", "Zipf exponent of the request mix (0 = uniform)", "0.99");
  args.add_flag("seed", "n", "request-stream seed", "1");
  args.add_flag("node", "id", "answer one node (original graph id) and exit");
  args.add_flag("max-batch", "n", "requests the batcher answers at once", "64");
  args.add_flag("max-wait-us", "us", "batcher linger for a fuller batch", "200");
  args.add_flag("max-queue", "n", "admission bound; beyond it requests are rejected", "4096");
  args.add_flag("wire", "name",
                "fp32 wire format for any collectives this process opens: " +
                    plexus::util::enum_choices<plexus::comm::WirePrecision>() +
                    " (default: PLEXUS_WIRE, else fp32)");

  switch (args.parse(argc, argv)) {
    case ArgParser::Status::Help: std::fputs(args.usage().c_str(), stdout); return 0;
    case ArgParser::Status::Error:
      std::fprintf(stderr, "plexus_serve: %s\n%s", args.error().c_str(), args.usage().c_str());
      return 1;
    case ArgParser::Status::Ok: break;
  }
  const auto& pos = args.positionals();
  if (!pos.empty()) {
    std::fprintf(stderr,
                 "plexus_serve: note: positional arguments are deprecated; use --key=value "
                 "flags (--help)\n");
  }
  const std::string dir =
      !pos.empty() && !args.is_set("checkpoint") ? pos[0] : args.value("checkpoint");
  if (dir.empty()) {
    std::fprintf(stderr, "plexus_serve: --checkpoint is required\n%s", args.usage().c_str());
    return 1;
  }
  std::int64_t queries = 0;
  const std::string queries_arg =
      pos.size() > 1 && !args.is_set("queries") ? pos[1] : args.value("queries");
  if (!plexus::util::parse_int64(queries_arg, queries) || queries < 1) {
    std::fprintf(stderr, "plexus_serve: bad query count '%s'\n%s", queries_arg.c_str(),
                 args.usage().c_str());
    return 1;
  }
  double zipf = 0.0;
  try {
    zipf = std::stod(args.value("zipf"));
  } catch (...) {
    std::fprintf(stderr, "plexus_serve: bad --zipf '%s'\n", args.value("zipf").c_str());
    return 1;
  }
  std::int64_t seed = 1;
  plexus::serve::ServeOptions sopt;
  int max_batch = 0, max_queue = 0;
  std::int64_t max_wait_us = 0;
  if (!args.value_int64("seed", seed) || !args.value_int("max-batch", max_batch) ||
      max_batch < 1 || !args.value_int64("max-wait-us", max_wait_us) || max_wait_us < 0 ||
      !args.value_int("max-queue", max_queue) || max_queue < 1) {
    std::fprintf(stderr, "plexus_serve: bad serve option\n%s", args.usage().c_str());
    return 1;
  }
  sopt.max_batch = max_batch;
  sopt.max_wait_us = max_wait_us;
  sopt.max_queue = max_queue;
  auto wire = plexus::comm::default_wire_precision();
  if (args.is_set("wire") &&
      !plexus::comm::wire_precision_from_string(args.value("wire"), wire)) {
    std::fprintf(stderr, "plexus_serve: %s\n%s",
                 plexus::util::enum_error<plexus::comm::WirePrecision>(args.value("wire")).c_str(),
                 args.usage().c_str());
    return 1;
  }
  plexus::comm::set_default_wire_precision(wire);

  const plexus::serve::ServedModel model(dir);
  std::printf("serving %s: %lld nodes, %lld classes, %d layers (logits cached), %s simd, "
              "%s wire\n",
              dir.c_str(), static_cast<long long>(model.num_nodes()),
              static_cast<long long>(model.num_classes()), model.num_layers(),
              plexus::simd::target_name(plexus::simd::active_target()),
              plexus::comm::wire_precision_name(wire));

  if (args.is_set("node")) {
    std::int64_t node = 0;
    if (!args.value_int64("node", node) || node < 0 || node >= model.num_nodes()) {
      std::fprintf(stderr, "plexus_serve: bad --node '%s' (valid: 0..%lld)\n",
                   args.value("node").c_str(), static_cast<long long>(model.num_nodes() - 1));
      return 1;
    }
    const auto p = model.predict(node);
    std::printf("node %lld -> class %d (logit %.4f, ground truth %d)\n",
                static_cast<long long>(node), p.label, p.score, model.label(node));
    return 0;
  }

  plexus::serve::InferenceServer server(model, sopt);
  plexus::serve::ZipfSampler sampler(model.num_nodes(), zipf,
                                     static_cast<std::uint64_t>(seed));
  std::vector<std::int64_t> nodes;
  std::vector<std::future<plexus::serve::Prediction>> futures;
  nodes.reserve(static_cast<std::size_t>(queries));
  futures.reserve(static_cast<std::size_t>(queries));
  const auto t0 = std::chrono::steady_clock::now();
  std::int64_t rejected = 0;
  for (std::int64_t i = 0; i < queries; ++i) {
    const std::int64_t node = sampler.next();
    auto fut = server.submit(node);
    if (!fut.has_value()) {
      ++rejected;
      continue;
    }
    nodes.push_back(node);
    futures.push_back(std::move(*fut));
  }
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto p = futures[i].get();
    if (p.label == model.label(nodes[i])) ++correct;
  }
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  server.stop();

  const auto answered = static_cast<std::int64_t>(futures.size());
  std::printf("answered %lld/%lld queries in %.2f ms (%.0f QPS), accuracy %.3f\n",
              static_cast<long long>(answered), static_cast<long long>(queries), secs * 1e3,
              secs > 0 ? static_cast<double>(answered) / secs : 0.0,
              answered > 0 ? static_cast<double>(correct) / static_cast<double>(answered) : 0.0);
  if (rejected > 0) {
    std::printf("rejected %lld requests at admission (queue bound %d)\n",
                static_cast<long long>(rejected), sopt.max_queue);
  }
  server.stats_table().print();
  return 0;
}
