// Tests for the sharded dataset format and the parallel loader (section 5.4).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/datasets.hpp"
#include "loader/shard_io.hpp"
#include "sparse/csr.hpp"

namespace pio = plexus::io;
namespace pg = plexus::graph;
namespace ps = plexus::sparse;

namespace {

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("plexus_loader_test_" + std::to_string(::getpid()));
    g_ = pg::make_test_graph(256, 6.0, 8, 4, 3);
    adj_ = ps::normalize_adjacency(g_.adjacency(), g_.num_nodes);
    pio::write_sharded_dataset(dir_.string(), adj_, g_.features, g_.labels, g_.num_classes,
                               /*grid_rows=*/4, /*grid_cols=*/4);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  pg::Graph g_;
  ps::Csr adj_;
};

}  // namespace

TEST_F(LoaderTest, MetaRoundTrip) {
  const auto meta = pio::read_meta(dir_.string());
  EXPECT_EQ(meta.num_nodes, 256);
  EXPECT_EQ(meta.feature_dim, 8);
  EXPECT_EQ(meta.num_classes, 4);
  EXPECT_EQ(meta.grid_rows, 4);
  EXPECT_EQ(meta.grid_cols, 4);
  EXPECT_EQ(meta.adjacency_nnz, adj_.nnz());
}

TEST_F(LoaderTest, AdjacencyWindowMatchesDirectExtraction) {
  // Windows aligned and unaligned with the shard grid.
  for (const auto& [r0, r1, c0, c1] :
       std::vector<std::tuple<int, int, int, int>>{{0, 64, 0, 64},
                                                   {64, 192, 128, 256},
                                                   {10, 100, 33, 200},
                                                   {0, 256, 0, 256}}) {
    pio::LoadStats stats;
    const auto got = pio::load_adjacency_block(dir_.string(), r0, r1, c0, c1, &stats);
    const auto want = adj_.block(r0, r1, c0, c1);
    EXPECT_TRUE(ps::Csr::equal(got, want)) << "window " << r0 << ":" << r1 << "," << c0 << ":"
                                           << c1;
    EXPECT_GT(stats.bytes_read, 0);
    EXPECT_GT(stats.files_opened, 0);
  }
}

TEST_F(LoaderTest, NaiveLoaderMatchesButReadsEverything) {
  pio::LoadStats par;
  pio::LoadStats naive;
  const auto a = pio::load_adjacency_block(dir_.string(), 0, 64, 0, 64, &par);
  const auto b = pio::load_adjacency_block_naive(dir_.string(), 0, 64, 0, 64, &naive);
  EXPECT_TRUE(ps::Csr::equal(a, b));
  // The parallel loader touches ~1/16 of the data and far fewer bytes.
  EXPECT_LT(par.bytes_read * 4, naive.bytes_read);
  EXPECT_LT(par.peak_host_bytes, naive.peak_host_bytes);
  EXPECT_LT(par.files_opened, naive.files_opened);
}

TEST_F(LoaderTest, FeatureWindow) {
  pio::LoadStats stats;
  const auto block = pio::load_feature_block(dir_.string(), 100, 200, 2, 7, &stats);
  EXPECT_EQ(block.rows(), 100);
  EXPECT_EQ(block.cols(), 5);
  for (std::int64_t r = 0; r < 100; ++r) {
    for (std::int64_t c = 0; c < 5; ++c) {
      EXPECT_EQ(block.at(r, c), g_.features.at(100 + r, 2 + c));
    }
  }
  // Only the 2 intersecting row-block files (rows 64..128, 128..192, 192..256
  // -> 3 files for rows 100..200).
  EXPECT_LE(stats.files_opened, 3);
}

TEST_F(LoaderTest, LabelsRoundTrip) {
  const auto labels = pio::load_labels(dir_.string());
  ASSERT_EQ(labels.size(), static_cast<std::size_t>(g_.num_nodes));
  for (std::size_t i = 0; i < labels.size(); ++i) EXPECT_EQ(labels[i], g_.labels[i]);
}

TEST_F(LoaderTest, MissingDirectoryThrows) {
  EXPECT_THROW(pio::read_meta("/nonexistent/plexus"), std::runtime_error);
}

TEST_F(LoaderTest, TruncatedBlockThrows) {
  // Chop an adjacency block in half: the loader must fail loudly, not return
  // a silently short CSR.
  const auto path = dir_ / "adj_0_0.plx";
  const auto size = std::filesystem::file_size(path);
  ASSERT_GT(size, 16u);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(pio::load_adjacency_block(dir_.string(), 0, 64, 0, 64), std::runtime_error);
}

TEST_F(LoaderTest, CorruptMagicThrows) {
  const auto path = dir_ / "adj_0_0.plx";
  std::FILE* f = std::fopen(path.string().c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const std::uint64_t garbage = 0xdeadbeefdeadbeefULL;
  ASSERT_EQ(std::fwrite(&garbage, sizeof(garbage), 1, f), 1u);
  std::fclose(f);
  try {
    pio::load_adjacency_block(dir_.string(), 0, 64, 0, 64);
    FAIL() << "corrupt magic accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos) << e.what();
  }
}

TEST_F(LoaderTest, ShortWriteSurfacesAtClose) {
  // Buffered writes to a full device succeed into the stdio buffer; the
  // failure only surfaces when fclose flushes. Point a block path at
  // /dev/full to prove the writer's checked close turns that into an error
  // instead of reporting a clean write.
  if (!std::filesystem::exists("/dev/full")) GTEST_SKIP() << "no /dev/full on this platform";
  const auto wdir = dir_ / "full_disk";
  std::filesystem::create_directories(wdir);
  std::filesystem::create_symlink("/dev/full", wdir / "adj_0_0.plx");
  EXPECT_THROW(pio::write_adjacency_blocks(wdir.string(), "adj", adj_, 1, 1),
               std::runtime_error);
}

TEST_F(LoaderTest, MasksAndPlexusMetaRoundTrip) {
  pio::ShardedMasks masks;
  const std::size_t n = 256;
  masks.train.assign(n, 0);
  masks.val.assign(n, 0);
  masks.test.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) masks.train[i] = i % 3 == 0;
  for (std::size_t i = 0; i < n; ++i) masks.val[i] = i % 3 == 1;
  for (std::size_t i = 0; i < n; ++i) masks.test[i] = i % 3 == 2;
  pio::write_masks(dir_.string(), masks);
  const auto got = pio::load_masks(dir_.string());
  EXPECT_EQ(got.train, masks.train);
  EXPECT_EQ(got.val, masks.val);
  EXPECT_EQ(got.test, masks.test);

  pio::PlexusShardMeta m;
  m.valid_nodes = 250;
  m.valid_feature_dim = 8;
  m.train_total = 86;
  m.scheme = 2;
  m.adjacency_versions = 2;
  pio::write_plexus_meta(dir_.string(), m);
  const auto gm = pio::read_plexus_meta(dir_.string());
  EXPECT_EQ(gm.valid_nodes, m.valid_nodes);
  EXPECT_EQ(gm.valid_feature_dim, m.valid_feature_dim);
  EXPECT_EQ(gm.train_total, m.train_total);
  EXPECT_EQ(gm.scheme, m.scheme);
  EXPECT_EQ(gm.adjacency_versions, m.adjacency_versions);
}
