#pragma once
/// \file cluster.hpp
/// SPMD launcher: runs one std::thread per simulated GPU rank.
///
/// Each rank receives a `RankContext` bundling its communicator, its simulated
/// clock and the machine model. The body executes the *real* distributed
/// algorithm; clocks accumulate modelled kernel/collective time. Exceptions
/// thrown by any rank are captured and rethrown on the launching thread
/// (other ranks would deadlock on their barriers otherwise — a thrown rank
/// aborts the whole cluster run, matching an MPI job abort).

#include <functional>

#include "comm/clock.hpp"
#include "comm/communicator.hpp"
#include "comm/world.hpp"
#include "sim/machine.hpp"

namespace plexus::sim {

struct RankContext {
  comm::Communicator comm;
  comm::SimClock clock;
  const Machine* machine = nullptr;

  int rank() const { return comm.rank(); }
};

using RankFn = std::function<void(RankContext&)>;

/// Per-rank compute-thread budget for a cluster of `num_ranks` simulated
/// ranks. `requested > 0` wins verbatim (callers may deliberately
/// oversubscribe); otherwise the process budget — PLEXUS_THREADS when set,
/// else the hardware concurrency — is divided across ranks so an 8-rank run
/// does not oversubscribe the host. When dedicated comm channels are enabled
/// (comm::comm_thread_budget() > 0, the default) each rank's share additionally
/// reserves one slot for its mostly-blocked channel threads, so compute + comm
/// stay within the host budget. Always >= 1.
int resolve_intra_rank_threads(int requested, int num_ranks);

/// Run `fn` SPMD over all ranks of `world`. When `enable_clock` is false the
/// context's clock pointer inside the communicator is null (functional-only).
/// Each rank thread's kernel engine is set to
/// resolve_intra_rank_threads(intra_rank_threads, world.size()) threads.
/// `transport` selects the byte-movement backend for every rank's
/// communicator (null = transport_for(default_backend())); it must be an
/// in-process transport — ranks here are threads of one process, so a
/// distributed backend (MPI) needs its own one-process-per-rank launcher.
/// Throws the first rank exception encountered.
void run_cluster(comm::World& world, const Machine& machine, const RankFn& fn,
                 bool enable_clock = true, int intra_rank_threads = 0,
                 comm::Transport* transport = nullptr);

/// Run `fn` as *this process's* single rank of a multi-process cluster: the
/// one-process-per-rank counterpart of run_cluster for distributed
/// (non-protocol) transports such as MPI. Every launched process must call
/// this with an identically-shaped `world` and its own `my_rank` (= MPI
/// rank). `enable_clock` requires `transport.supports_clock()` (the MPI
/// backend piggybacks the clock exchange on its collectives). The kernel
/// engine still divides the host budget by `world.size()` — mpirun places all
/// ranks on one host in the CI/dev setups this targets; pass an explicit
/// `intra_rank_threads` for true multi-node launches. Rank exceptions
/// propagate to the caller (an unmatched collective aborts the MPI job, as a
/// real MPI error would).
void run_distributed_rank(comm::World& world, const Machine& machine, int my_rank,
                          const RankFn& fn, comm::Transport& transport,
                          bool enable_clock = true, int intra_rank_threads = 0);

}  // namespace plexus::sim
