#include "comm/handle.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "util/thread_pool.hpp"

namespace plexus::comm {

namespace detail {

std::vector<unsigned char>& op_scratch() {
  static thread_local std::vector<unsigned char> buf;
  return buf;
}

}  // namespace detail

CommEngine::CommEngine(int channels) {
  channels_.resize(static_cast<std::size_t>(std::max(1, channels)));
  for (auto& ch : channels_) ch = std::make_unique<Channel>();
}

CommEngine::~CommEngine() {
  for (auto& ch : channels_) {
    {
      std::lock_guard<std::mutex> lock(ch->m);
      ch->stop = true;
    }
    ch->cv.notify_all();
  }
  for (auto& ch : channels_) {
    if (ch->worker.joinable()) ch->worker.join();
  }
}

void CommEngine::post(std::shared_ptr<detail::CommOp> op) {
  const auto idx = static_cast<std::size_t>(op->channel) % channels_.size();
  Channel& ch = *channels_[idx];
  {
    std::lock_guard<std::mutex> lock(ch.m);
    ch.queue.push_back(std::move(op));
    if (!ch.worker.joinable()) ch.worker = std::thread([this, &ch] { loop(ch); });
  }
  ch.cv.notify_one();
}

void CommEngine::run_inline(detail::CommOp& op) {
  try {
    op.execute(op);
  } catch (...) {
    op.error = std::current_exception();
  }
  op.execute = nullptr;  // drop captured buffers/closure state promptly
  op.mark_finished();
}

void CommEngine::loop(Channel& ch) {
  // Channel threads move bytes; they must never recursively build a kernel
  // pool, so each keeps the serial budget for its whole lifetime.
  util::set_intra_rank_threads(1);
  for (;;) {
    std::shared_ptr<detail::CommOp> op;
    {
      std::unique_lock<std::mutex> lock(ch.m);
      ch.cv.wait(lock, [&] { return ch.stop || !ch.queue.empty(); });
      if (ch.queue.empty()) return;  // stop set and fully drained
      op = std::move(ch.queue.front());
      ch.queue.pop_front();
    }
    run_inline(*op);
  }
}

namespace {

/// -1 = "use the environment", >= 0 = explicit override.
std::atomic<int> g_comm_threads{-1};

int env_comm_threads() {
  const char* s = std::getenv("PLEXUS_COMM_THREADS");
  if (s == nullptr || *s == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == nullptr || *end != '\0' || v < 0) return 1;  // malformed: default
  return static_cast<int>(std::min(v, 8L));  // clamp like set_comm_thread_budget
}

}  // namespace

int comm_thread_budget() {
  const int v = g_comm_threads.load(std::memory_order_relaxed);
  return v >= 0 ? v : env_comm_threads();
}

int comm_thread_override() { return g_comm_threads.load(std::memory_order_relaxed); }

void set_comm_thread_budget(int n) {
  g_comm_threads.store(n < 0 ? -1 : std::min(n, 8), std::memory_order_relaxed);
}

}  // namespace plexus::comm
