#pragma once
/// \file timer.hpp
/// Wall-clock stopwatch for measuring host-side work (data loading, kernels).
/// Simulated *cluster* time lives in sim::Clock, not here.

#include <chrono>

namespace plexus::util {

class WallTimer {
 public:
  WallTimer() : start_(clock_type::now()) {}

  void reset() { start_ = clock_type::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock_type::now() - start_).count();
  }
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock_type = std::chrono::steady_clock;
  clock_type::time_point start_;
};

}  // namespace plexus::util
