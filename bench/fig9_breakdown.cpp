// Figure 9: communication/computation breakdown of BNS-GCN vs Plexus on
// products-14M, 32-256 GPUs (Perlmutter) — the inflection analysis.
// Also reproduces the paper's boundary-growth observation: total nodes across
// partitions (incl. boundary) grew from 18M to 22M between 32 and 256 parts.
#include <string>

#include "baselines/costmodels.hpp"
#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"
#include "util/table.hpp"

namespace {

/// Measured (simulated-clock) breakdown of the pipelined aggregation path:
/// the same training run at pipeline depths 1/2/4 plus the perf-model
/// adaptive choice (depth 0), reported from the per-rank timeline trace and
/// the exposed/hidden CommStats split — the in-repo counterpart of the
/// paper's fig. 9 comm/comp bars. When `trace_out` is non-empty the adaptive
/// run's rank-0 timeline is exported as Chrome-trace JSON for
/// chrome://tracing / Perfetto.
void measured_pipeline_breakdown(const std::string& trace_out) {
  using plexus::util::Table;
  namespace pc = plexus::core;
  namespace pg = plexus::graph;

  plexus::bench::banner("Measured: pipelined aggregation breakdown (simulated clock)",
                        "train_plexus on a 2x2x2 grid; exposed vs hidden comm per depth");
  // Sized so per-block SpMM time is comparable to the per-block ring time
  // (the regime where pipelining pays; tiny graphs are latency-bound and
  // nothing can hide).
  const pg::Graph g = pg::make_test_graph(16384, 12.0, 64, 8, /*seed=*/11);

  Table t({"Depth", "Epoch (ms)", "Compute (ms)", "Exposed comm (ms)", "Hidden comm (ms)",
           "Hidden %"});
  for (const int depth : {1, 2, 4, 0}) {
    pc::TrainOptions opt;
    opt.grid = {2, 2, 2};
    opt.machine = &plexus::sim::Machine::test_machine();
    opt.model.hidden_dims = {64};
    opt.model.options.agg_row_blocks = 8;
    opt.epochs = 5;
    opt.pipeline_depth = depth;
    opt.trace_timeline = depth == 0;  // span trace for the adaptive pipeline
    const auto r = pc::train_plexus(g, opt);
    // Exposed and hidden both from CommStats (charged collective time), so
    // the Hidden % column compares like with like; avg_comm_seconds() would
    // fold load-imbalance wait into the exposed column.
    double comm = 0.0;
    double hidden = 0.0;
    for (std::size_t e = 1; e < r.epochs.size(); ++e) {
      comm += r.epochs[e].comm_seconds;
      hidden += r.epochs[e].hidden_comm_seconds;
    }
    comm /= static_cast<double>(r.epochs.size() - 1);
    hidden /= static_cast<double>(r.epochs.size() - 1);
    const double in_flight = comm + hidden;
    t.add_row({depth == 0 ? "adaptive" : std::to_string(depth),
               plexus::bench::ms(r.avg_epoch_seconds(1), 2),
               plexus::bench::ms(r.avg_compute_seconds(1), 2), plexus::bench::ms(comm, 2),
               plexus::bench::ms(hidden, 2),
               plexus::bench::pct(in_flight > 0.0 ? hidden / in_flight : 0.0)});
    if (opt.trace_timeline) {
      using Kind = plexus::comm::TimelineSpan::Kind;
      const auto& tl = r.rank0_timeline;
      std::printf("  rank-0 timeline (adaptive depth): %zu spans, compute %.2f ms, "
                  "in-flight comm %.2f ms, exposed comm %.2f ms\n",
                  tl.spans().size(), 1e3 * tl.total(Kind::Compute),
                  1e3 * tl.total(Kind::CommInFlight), 1e3 * tl.total(Kind::CommExposed));
      if (!trace_out.empty()) {
        plexus::comm::write_chrome_trace_file(tl, trace_out);
        std::printf("  rank-0 Chrome-trace JSON written to %s (open in chrome://tracing)\n",
                    trace_out.c_str());
      }
    }
  }
  t.print();
  std::printf("=> deeper software pipelines move P-group all-reduce time from the exposed\n"
              "   to the hidden column while losses stay bitwise-identical; the adaptive\n"
              "   per-layer depth exposes no more than the best fixed depth (section 5.2).\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--trace-out=";
    if (arg.rfind(prefix, 0) == 0) {
      trace_out = arg.substr(prefix.size());
    } else {
      std::fprintf(stderr, "usage: %s [--trace-out=PATH]\n", argv[0]);
      return 2;
    }
  }
  measured_pipeline_breakdown(trace_out);
  using plexus::util::Table;
  namespace pb = plexus::base;
  namespace pg = plexus::graph;

  plexus::bench::banner("Figure 9: BNS-GCN vs Plexus epoch breakdown, products-14M",
                        "Figure 9 (section 7.1), 32-256 GPUs of Perlmutter");
  const auto& m = plexus::sim::Machine::perlmutter_a100();
  const auto& info = pg::dataset_info("products-14M");
  const auto curves = pb::calibrated_curves(info, 5);

  Table t({"#GPUs", "Framework", "Comm (ms)", "Comp (ms)", "Total (ms)"});
  for (const int gpus : {32, 64, 128, 256}) {
    const auto bns = pb::bnsgcn_epoch(m, info, gpus, curves);
    const auto plx = pb::plexus_epoch(m, info, gpus);
    t.add_row({std::to_string(gpus), "BNS-GCN", plexus::bench::ms(bns.comm_seconds, 1),
               plexus::bench::ms(bns.compute_seconds, 1), plexus::bench::ms(bns.total(), 1)});
    t.add_row({"", "Plexus", plexus::bench::ms(plx.comm_seconds, 1),
               plexus::bench::ms(plx.compute_seconds, 1), plexus::bench::ms(plx.total(), 1)});
  }
  t.print();

  const double nodes32 = curves.expansion(32) * static_cast<double>(info.num_nodes);
  const double nodes256 = curves.expansion(256) * static_cast<double>(info.num_nodes);
  std::printf("\ntotal nodes across partitions incl. boundary:\n");
  std::printf("  32 parts:  %.1fM (paper: 18M)\n", nodes32 / 1e6);
  std::printf("  256 parts: %.1fM (paper: 22M)\n", nodes256 / 1e6);
  std::printf("=> the boundary set grows with partition count, so BNS-GCN's aggregate work\n"
              "   grows while its all-to-all scales worse than Plexus's ring collectives;\n"
              "   the epoch-time inflection lands at 64 GPUs as in the paper (section 7.1).\n");
  return 0;
}
