// Integration tests: the 3D-parallel GCN must reproduce the serial reference
// exactly (up to float reduction order) for every grid factorisation, every
// permutation scheme, and with every optimisation toggled — the in-repo
// equivalent of the paper's Figure 7 validation against PyTorch Geometric.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>

#include "comm/world.hpp"
#include "core/dataset_view.hpp"
#include "core/grid.hpp"
#include "core/model.hpp"
#include "core/preprocess.hpp"
#include "core/shard.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "model/serial_gcn.hpp"
#include "sim/cluster.hpp"
#include "sim/machine.hpp"

namespace pc = plexus::core;
namespace pg = plexus::graph;
namespace pd = plexus::dense;
namespace psim = plexus::sim;

namespace {

pg::Graph small_graph() { return pg::make_test_graph(120, 6.0, 12, 4, 1234); }

pc::GcnSpec small_spec() {
  pc::GcnSpec spec;
  spec.hidden_dims = {12, 8};
  spec.options.adam.lr = 0.02f;
  spec.seed = 99;
  return spec;
}

/// Losses must track the serial reference; fp reduction-order differences are
/// amplified by Adam, so the tolerance grows modestly per epoch.
void expect_losses_close(const std::vector<double>& got, const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  double tol = 2e-3;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], tol) << "epoch " << i;
    tol *= 1.8;
  }
}

/// Run a forward pass on the given grid and assemble the global logits matrix.
pd::Matrix distributed_logits(const pg::Graph& g, psim::GridShape shape,
                              pc::PermutationScheme scheme, const pc::GcnSpec& spec) {
  const auto ds = pc::preprocess_graph(g, scheme, spec.num_layers(), shape.size(), 7);
  plexus::comm::World world(shape.size());
  pc::Grid3D grid(world, shape, psim::Machine::test_machine());
  const auto roles = pc::roles_for_layer(spec.num_layers() - 1);
  const std::int64_t volume = shape.size();
  const std::int64_t padded_classes = (g.num_classes + volume - 1) / volume * volume;

  pd::Matrix out(ds.padded_nodes, padded_classes);
  psim::run_cluster(world, psim::Machine::test_machine(), [&](psim::RankContext& ctx) {
    pc::DistGcn model(ctx, ds, grid, spec);
    const pd::Matrix block = model.forward_logits(ctx);
    const auto c = grid.coords_of(ctx.rank());
    if (pc::Grid3D::coord(c, roles.q) != 0) return;  // skip replicas
    const auto rows = pc::uniform_slice(ds.padded_nodes, grid.extent(roles.r),
                                        pc::Grid3D::coord(c, roles.r));
    const auto cols = pc::uniform_slice(padded_classes, grid.extent(roles.p),
                                        pc::Grid3D::coord(c, roles.p));
    out.set_block(rows.begin, cols.begin, block);  // disjoint writers
  });
  return out;
}

}  // namespace

class GridShapes : public ::testing::TestWithParam<psim::GridShape> {};

TEST_P(GridShapes, ForwardMatchesSerial) {
  const auto shape = GetParam();
  const auto g = small_graph();
  const auto spec = small_spec();
  // Scheme None keeps node order, so blocks map directly onto serial rows.
  const auto dist = distributed_logits(g, shape, pc::PermutationScheme::None, spec);
  const auto serial = plexus::ref::serial_forward(g, spec);
  for (std::int64_t i = 0; i < g.num_nodes; ++i) {
    for (std::int64_t j = 0; j < g.num_classes; ++j) {
      EXPECT_NEAR(dist.at(i, j), serial.at(i, j), 5e-4f)
          << "node " << i << " class " << j << " grid " << shape.x << "x" << shape.y << "x"
          << shape.z;
    }
  }
}

TEST_P(GridShapes, TrainingMatchesSerialAllSchemes) {
  const auto shape = GetParam();
  const auto g = small_graph();
  const auto spec = small_spec();
  const auto serial = plexus::ref::train_serial_gcn(g, spec, 6);

  for (const auto scheme : {pc::PermutationScheme::None, pc::PermutationScheme::Single,
                            pc::PermutationScheme::Double}) {
    pc::TrainOptions opt;
    opt.grid = shape;
    opt.machine = &psim::Machine::test_machine();
    opt.scheme = scheme;
    opt.model = spec;
    opt.epochs = 6;
    const auto result = pc::train_plexus(g, opt);
    expect_losses_close(result.losses(), serial.losses());
  }
}

INSTANTIATE_TEST_SUITE_P(Volume8, GridShapes,
                         ::testing::Values(psim::GridShape{1, 1, 1}, psim::GridShape{8, 1, 1},
                                           psim::GridShape{1, 8, 1}, psim::GridShape{1, 1, 8},
                                           psim::GridShape{2, 2, 2}, psim::GridShape{4, 2, 1},
                                           psim::GridShape{2, 1, 4}, psim::GridShape{1, 4, 2}));

TEST(Distributed, SixteenRankGrid) {
  // One larger configuration exercising uneven axis extents.
  const auto g = small_graph();
  const auto spec = small_spec();
  const auto serial = plexus::ref::train_serial_gcn(g, spec, 4);
  pc::TrainOptions opt;
  opt.grid = {4, 2, 2};
  opt.machine = &psim::Machine::test_machine();
  opt.model = spec;
  opt.epochs = 4;
  const auto result = pc::train_plexus(g, opt);
  expect_losses_close(result.losses(), serial.losses());
}

TEST(Distributed, DeepNetworkCyclesPlanes) {
  // Five layers exercise the full (version, plane) cycle of section 3.2 + 5.1.
  const auto g = small_graph();
  auto spec = small_spec();
  spec.hidden_dims = {12, 8, 8, 8};
  const auto serial = plexus::ref::train_serial_gcn(g, spec, 3);
  pc::TrainOptions opt;
  opt.grid = {2, 2, 2};
  opt.machine = &psim::Machine::test_machine();
  opt.model = spec;
  opt.epochs = 3;
  const auto result = pc::train_plexus(g, opt);
  expect_losses_close(result.losses(), serial.losses());
}

TEST(Distributed, BlockedAggregationIsExact) {
  // Blocking only changes the schedule, not the math: per-element sums are
  // performed in the same order, so losses must match to double precision.
  const auto g = small_graph();
  pc::TrainOptions opt;
  opt.grid = {2, 2, 2};
  opt.machine = &psim::Machine::test_machine();
  opt.model = small_spec();
  opt.epochs = 5;
  const auto base = pc::train_plexus(g, opt);
  opt.model.options.agg_row_blocks = 4;
  const auto blocked = pc::train_plexus(g, opt);
  for (std::size_t i = 0; i < base.epochs.size(); ++i) {
    EXPECT_DOUBLE_EQ(base.epochs[i].loss, blocked.epochs[i].loss);
  }
}

TEST(Distributed, PipelinedAggregationIsExactAndHidesComm) {
  // The software pipeline (blocked aggregation with in-flight per-block
  // all-reduces) changes the schedule, never the math: losses match the
  // blocking path to the bit, while the exposed comm time can only shrink
  // and the hidden share can only grow.
  const auto g = small_graph();
  pc::TrainOptions opt;
  opt.grid = {2, 2, 2};
  opt.machine = &psim::Machine::perlmutter_a100();
  opt.model = small_spec();
  opt.model.options.agg_row_blocks = 4;
  opt.epochs = 5;
  opt.pipeline_depth = 1;  // fully blocking baseline
  const auto blocking = pc::train_plexus(g, opt);
  opt.pipeline_depth = 4;
  const auto piped = pc::train_plexus(g, opt);
  ASSERT_EQ(blocking.epochs.size(), piped.epochs.size());
  double blocking_comm = 0.0;
  double piped_comm = 0.0;
  double piped_hidden = 0.0;
  for (std::size_t i = 0; i < blocking.epochs.size(); ++i) {
    EXPECT_DOUBLE_EQ(blocking.epochs[i].loss, piped.epochs[i].loss) << "epoch " << i;
    blocking_comm += blocking.epochs[i].comm_seconds;
    piped_comm += piped.epochs[i].comm_seconds;
    piped_hidden += piped.epochs[i].hidden_comm_seconds;
  }
  EXPECT_LT(piped_comm, blocking_comm);  // pipelining strictly hides comm
  EXPECT_GT(piped_hidden, 0.0);
  EXPECT_LE(piped.avg_epoch_seconds(1), blocking.avg_epoch_seconds(1) + 1e-12);
}

TEST(Distributed, AdaptiveDepthIsExactAndExposesNoMoreThanAnyFixedDepth) {
  // pipeline_depth = 0: each layer picks its depth from the perf model
  // (per-block SpMM vs ring time). The choice changes only the schedule —
  // losses bitwise-match every fixed depth — and the exposed communication
  // must be <= every fixed depth in {1, 2, 4} (exposed time is monotone
  // non-increasing in lookahead, and the adaptive rule errs deep).
  const pg::Graph g = pg::make_test_graph(4096, 10.0, 48, 6, /*seed=*/21);
  pc::TrainOptions opt;
  opt.grid = {2, 2, 2};
  opt.machine = &psim::Machine::test_machine();
  opt.model = small_spec();
  opt.model.hidden_dims = {48};
  opt.model.options.agg_row_blocks = 8;
  opt.epochs = 4;

  opt.pipeline_depth = 0;  // adaptive
  const auto adaptive = pc::train_plexus(g, opt);
  double adaptive_comm = 0.0;
  for (const auto& e : adaptive.epochs) adaptive_comm += e.comm_seconds;

  for (const int depth : {1, 2, 4}) {
    opt.pipeline_depth = depth;
    const auto fixed = pc::train_plexus(g, opt);
    ASSERT_EQ(fixed.epochs.size(), adaptive.epochs.size());
    double fixed_comm = 0.0;
    for (std::size_t i = 0; i < fixed.epochs.size(); ++i) {
      EXPECT_DOUBLE_EQ(adaptive.epochs[i].loss, fixed.epochs[i].loss)
          << "depth " << depth << " epoch " << i;
      fixed_comm += fixed.epochs[i].comm_seconds;
    }
    EXPECT_LE(adaptive_comm, fixed_comm * (1.0 + 1e-12)) << "depth " << depth;
  }
}

TEST(Distributed, LocalBackendLossesBitwiseEqualSim) {
  // Backend conformance at training scale: the Local transport really moves
  // bytes over ring/staged schedules instead of the Sim shared-slot reads,
  // but applies reductions in the same canonical member order — so losses
  // AND simulated clocks must match the Sim backend bit for bit.
  const auto g = small_graph();
  pc::TrainOptions opt;
  opt.grid = {2, 2, 2};
  opt.machine = &psim::Machine::test_machine();
  opt.model = small_spec();
  opt.model.options.agg_row_blocks = 4;  // exercise the pipelined path too
  opt.epochs = 5;
  opt.backend = plexus::comm::Backend::Sim;
  const auto sim = pc::train_plexus(g, opt);
  opt.backend = plexus::comm::Backend::Local;
  const auto local = pc::train_plexus(g, opt);
  ASSERT_EQ(sim.epochs.size(), local.epochs.size());
  const auto bitwise_eq = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  };
  for (std::size_t i = 0; i < sim.epochs.size(); ++i) {
    // memcmp, not EXPECT_DOUBLE_EQ: the contract is bit-for-bit, and the
    // gtest macro tolerates 4-ULP drift that would hide a reduction-order
    // regression in the Local transport.
    EXPECT_TRUE(bitwise_eq(sim.epochs[i].loss, local.epochs[i].loss))
        << "epoch " << i << " loss " << sim.epochs[i].loss << " vs " << local.epochs[i].loss;
    EXPECT_TRUE(bitwise_eq(sim.epochs[i].epoch_seconds, local.epochs[i].epoch_seconds))
        << "epoch " << i;
    EXPECT_TRUE(bitwise_eq(sim.epochs[i].comm_seconds, local.epochs[i].comm_seconds))
        << "epoch " << i;
  }
}

TEST(Distributed, SparseAggregationLossesBitwiseEqualDense) {
  // The selective row exchange reorders nothing: chunks fold contributions in
  // canonical member order and skipped members contribute exactly-zero rows,
  // so losses must match the dense ring path bit for bit — across grids
  // (sparse forward only, backward only, both) and pipeline depths (adaptive
  // and fixed; the sparse pipeline interleaves two collective stages).
  const auto g = small_graph();
  const auto bitwise_eq = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  };
  for (const auto shape : {psim::GridShape{2, 2, 2}, psim::GridShape{4, 1, 1},
                           psim::GridShape{1, 1, 4}}) {
    for (const int depth : {-1, 1, 3}) {  // -1 = keep the adaptive default
      pc::TrainOptions opt;
      opt.grid = shape;
      opt.machine = &psim::Machine::test_machine();
      opt.model = small_spec();
      opt.model.options.agg_row_blocks = 4;
      opt.epochs = 5;
      opt.pipeline_depth = depth;
      opt.aggregation = pc::Aggregation::Dense;
      const auto dense = pc::train_plexus(g, opt);
      opt.aggregation = pc::Aggregation::Sparse;
      const auto sparse = pc::train_plexus(g, opt);
      ASSERT_EQ(dense.epochs.size(), sparse.epochs.size());
      for (std::size_t i = 0; i < dense.epochs.size(); ++i) {
        EXPECT_TRUE(bitwise_eq(dense.epochs[i].loss, sparse.epochs[i].loss))
            << "grid " << shape.x << "x" << shape.y << "x" << shape.z << " depth " << depth
            << " epoch " << i << " dense " << dense.epochs[i].loss << " sparse "
            << sparse.epochs[i].loss;
      }
    }
  }
}

TEST(Distributed, SparseAggregationLocalBackendBitwiseEqualSim) {
  // Backend conformance for the sparse path: the flat all-to-all-v and the
  // re-gather run over real Local byte movement (rotated reads) vs the Sim
  // shared-slot reads — payloads, losses and simulated clocks must match bit
  // for bit.
  const auto g = small_graph();
  pc::TrainOptions opt;
  opt.grid = {2, 2, 2};
  opt.machine = &psim::Machine::test_machine();
  opt.model = small_spec();
  opt.model.options.agg_row_blocks = 4;
  opt.epochs = 5;
  opt.aggregation = pc::Aggregation::Sparse;
  opt.backend = plexus::comm::Backend::Sim;
  const auto sim = pc::train_plexus(g, opt);
  opt.backend = plexus::comm::Backend::Local;
  const auto local = pc::train_plexus(g, opt);
  ASSERT_EQ(sim.epochs.size(), local.epochs.size());
  const auto bitwise_eq = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  };
  for (std::size_t i = 0; i < sim.epochs.size(); ++i) {
    EXPECT_TRUE(bitwise_eq(sim.epochs[i].loss, local.epochs[i].loss)) << "epoch " << i;
    EXPECT_TRUE(bitwise_eq(sim.epochs[i].epoch_seconds, local.epochs[i].epoch_seconds))
        << "epoch " << i;
    EXPECT_TRUE(bitwise_eq(sim.epochs[i].comm_seconds, local.epochs[i].comm_seconds))
        << "epoch " << i;
    EXPECT_EQ(sim.epochs[i].comm_wire_bytes, local.epochs[i].comm_wire_bytes) << "epoch " << i;
  }
}

TEST(Distributed, SparseAggregationMovesFewerWireBytes) {
  // On a low-density graph most aggregation rows have no local nonzeros, so
  // the selective exchange must put measurably fewer bytes on the simulated
  // links than the dense rings. Epoch 0 is excluded: it pays the one-time
  // plan-build collectives (support-count gather, row-list exchange).
  const pg::Graph g = pg::make_test_graph(1200, 1.5, 16, 4, /*seed=*/31);
  pc::TrainOptions opt;
  opt.grid = {4, 1, 1};
  opt.machine = &psim::Machine::test_machine();
  opt.model = small_spec();
  opt.model.options.agg_row_blocks = 4;
  opt.epochs = 4;
  opt.aggregation = pc::Aggregation::Dense;
  const auto dense = pc::train_plexus(g, opt);
  opt.aggregation = pc::Aggregation::Sparse;
  const auto sparse = pc::train_plexus(g, opt);
  double dense_bytes = 0.0;
  double sparse_bytes = 0.0;
  for (std::size_t i = 1; i < dense.epochs.size(); ++i) {
    EXPECT_DOUBLE_EQ(dense.epochs[i].loss, sparse.epochs[i].loss) << "epoch " << i;
    dense_bytes += dense.epochs[i].comm_wire_bytes;
    sparse_bytes += sparse.epochs[i].comm_wire_bytes;
  }
  ASSERT_GT(dense_bytes, 0.0);
  EXPECT_LT(sparse_bytes, 0.9 * dense_bytes);
  // Steady state is byte-stable: the plan is built once.
  EXPECT_EQ(sparse.epochs[1].comm_wire_bytes, sparse.epochs.back().comm_wire_bytes);
}

TEST(Distributed, AutoAggregationIsExactAndNeverMovesMoreBytes) {
  // Auto decides per layer/direction from the measured support counts; any
  // mix of decisions must stay bitwise-exact, and its steady-state wire
  // bytes can never exceed the dense path's (it only switches when the cost
  // model predicts a win).
  const pg::Graph g = pg::make_test_graph(1200, 1.5, 16, 4, /*seed=*/31);
  pc::TrainOptions opt;
  opt.grid = {2, 2, 1};
  opt.machine = &psim::Machine::test_machine();
  opt.model = small_spec();
  opt.model.options.agg_row_blocks = 4;
  opt.epochs = 4;
  opt.aggregation = pc::Aggregation::Dense;
  const auto dense = pc::train_plexus(g, opt);
  opt.aggregation = pc::Aggregation::Auto;
  const auto autod = pc::train_plexus(g, opt);
  for (std::size_t i = 0; i < dense.epochs.size(); ++i) {
    EXPECT_DOUBLE_EQ(dense.epochs[i].loss, autod.epochs[i].loss) << "epoch " << i;
  }
  EXPECT_LE(autod.epochs.back().comm_wire_bytes, dense.epochs.back().comm_wire_bytes);
}

TEST(Distributed, GemmTuningIsExact) {
  const auto g = small_graph();
  pc::TrainOptions opt;
  opt.grid = {2, 2, 2};
  opt.machine = &psim::Machine::test_machine();
  opt.model = small_spec();
  opt.epochs = 5;
  const auto base = pc::train_plexus(g, opt);
  opt.model.options.gemm_dw_tuning = true;
  const auto tuned = pc::train_plexus(g, opt);
  for (std::size_t i = 0; i < base.epochs.size(); ++i) {
    EXPECT_NEAR(base.epochs[i].loss, tuned.epochs[i].loss, 1e-6);
  }
}

TEST(Distributed, LossDecreasesOverTraining) {
  const auto g = small_graph();
  pc::TrainOptions opt;
  opt.grid = {2, 2, 1};
  opt.machine = &psim::Machine::test_machine();
  opt.model = small_spec();
  opt.epochs = 30;
  opt.evaluate_validation = true;
  const auto result = pc::train_plexus(g, opt);
  EXPECT_LT(result.epochs.back().loss, 0.6 * result.epochs.front().loss);
  EXPECT_GT(result.val_accuracy, 0.3);  // label signal makes the task learnable
}

TEST(Distributed, EpochStatsArePopulated) {
  const auto g = small_graph();
  pc::TrainOptions opt;
  opt.grid = {2, 2, 2};
  opt.machine = &psim::Machine::perlmutter_a100();
  opt.model = small_spec();
  opt.epochs = 3;
  const auto result = pc::train_plexus(g, opt);
  for (const auto& e : result.epochs) {
    EXPECT_GT(e.epoch_seconds, 0.0);
    EXPECT_GT(e.spmm_seconds, 0.0);
    EXPECT_GT(e.gemm_seconds, 0.0);
    EXPECT_GT(e.comm_seconds, 0.0);
    EXPECT_LE(e.compute_seconds(), e.epoch_seconds + 1e-12);
  }
  EXPECT_GT(result.avg_epoch_seconds(1), 0.0);
}

TEST(Distributed, SingleRankHasNoComm) {
  const auto g = small_graph();
  pc::TrainOptions opt;
  opt.grid = {1, 1, 1};
  opt.machine = &psim::Machine::perlmutter_a100();
  opt.model = small_spec();
  opt.epochs = 2;
  const auto result = pc::train_plexus(g, opt);
  EXPECT_EQ(result.epochs[0].comm_seconds, 0.0);
}

TEST(Distributed, ReduceEpochStatsTakesCrossRankMaxima) {
  // The trainer's cross-rank epoch line: every field is max-reduced, every
  // rank returns the same values (the distributed driver records them on all
  // processes). Loss/accuracy are identical inputs, mirroring the real run.
  const int n = 4;
  plexus::comm::World world(n);
  std::vector<pc::EpochStats> out(static_cast<std::size_t>(n));
  psim::run_cluster(world, psim::Machine::test_machine(), [&](psim::RankContext& ctx) {
    const double r = 1.0 + ctx.rank();
    pc::EpochStats s;
    s.loss = 3.5;
    s.train_accuracy = 0.25;
    s.epoch_seconds = 10.0 * r;
    s.spmm_seconds = r;
    s.gemm_seconds = 100.0 - r;  // max at rank 0: order must not matter
    s.elementwise_seconds = r * r;
    s.comm_seconds = 5.0 + r;
    s.hidden_comm_seconds = 0.5 * r;
    s.comm_wire_bytes = 1000.0 * r;
    out[static_cast<std::size_t>(ctx.rank())] =
        pc::reduce_epoch_stats(ctx.comm, ctx.comm.world().world_group(), s);
  });
  for (int i = 0; i < n; ++i) {
    const auto& s = out[static_cast<std::size_t>(i)];
    EXPECT_EQ(s.loss, 3.5) << "rank " << i;
    EXPECT_EQ(s.train_accuracy, 0.25) << "rank " << i;
    EXPECT_EQ(s.epoch_seconds, 40.0) << "rank " << i;
    EXPECT_EQ(s.spmm_seconds, 4.0) << "rank " << i;
    EXPECT_EQ(s.gemm_seconds, 99.0) << "rank " << i;
    EXPECT_EQ(s.elementwise_seconds, 16.0) << "rank " << i;
    EXPECT_EQ(s.comm_seconds, 9.0) << "rank " << i;
    EXPECT_EQ(s.hidden_comm_seconds, 2.0) << "rank " << i;
    EXPECT_EQ(s.comm_wire_bytes, 4000.0) << "rank " << i;
  }
}

TEST(Distributed, ShardedViewTrainingBitwiseEqualsInMemory) {
  // The one-process-per-rank data path: rank-private ShardedDatasetViews must
  // train bitwise-identically to the shared in-memory dataset (the block-file
  // round trip is exact binary IO), and each rank must stream strictly fewer
  // block files than the directory holds — the shard-local-IO guarantee.
  const auto g = small_graph();
  const auto spec = small_spec();
  const psim::GridShape shape{2, 2, 1};
  const int volume = shape.size();
  const auto ds =
      pc::preprocess_graph(g, pc::PermutationScheme::Double, spec.num_layers(), volume, 7);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("plexus_shard_view_" + std::to_string(::getpid()));
  pc::write_sharded_plexus_dataset(dir.string(), ds, volume);

  const int epochs = 3;
  auto run = [&](bool sharded) {
    std::vector<double> losses(static_cast<std::size_t>(epochs), 0.0);
    std::vector<std::int64_t> files(static_cast<std::size_t>(volume), 0);
    plexus::comm::World world(volume);
    pc::Grid3D grid(world, shape, psim::Machine::test_machine());
    psim::run_cluster(world, psim::Machine::test_machine(), [&](psim::RankContext& ctx) {
      std::unique_ptr<pc::DatasetView> view;
      if (sharded) {
        view = std::make_unique<pc::ShardedDatasetView>(dir.string());
      } else {
        view = std::make_unique<pc::InMemoryDatasetView>(ds);
      }
      pc::DistGcn model(ctx, *view, grid, spec);
      for (int e = 0; e < epochs; ++e) {
        const auto s =
            pc::reduce_epoch_stats(ctx.comm, grid.world_group(), model.train_epoch(ctx, e));
        if (ctx.rank() == 0) losses[static_cast<std::size_t>(e)] = s.loss;
      }
      if (sharded) {
        files[static_cast<std::size_t>(ctx.rank())] =
            static_cast<const pc::ShardedDatasetView&>(*view).load_stats().files_opened;
      }
    });
    return std::make_pair(losses, files);
  };
  const auto [mem_losses, mem_files] = run(false);
  const auto [shard_losses, shard_files] = run(true);
  for (int e = 0; e < epochs; ++e) {
    EXPECT_EQ(std::memcmp(&mem_losses[static_cast<std::size_t>(e)],
                          &shard_losses[static_cast<std::size_t>(e)], sizeof(double)),
              0)
        << "epoch " << e << " in-memory " << mem_losses[static_cast<std::size_t>(e)]
        << " sharded " << shard_losses[static_cast<std::size_t>(e)];
  }
  std::int64_t block_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const auto name = entry.path().filename().string();
    if (name.rfind("adj", 0) == 0 || name.rfind("feat", 0) == 0) ++block_files;
  }
  ASSERT_GT(block_files, 0);
  for (int r = 0; r < volume; ++r) {
    EXPECT_GT(shard_files[static_cast<std::size_t>(r)], 0) << "rank " << r;
    EXPECT_LT(shard_files[static_cast<std::size_t>(r)], block_files)
        << "rank " << r << " opened every block file — not shard-local IO";
  }
  std::filesystem::remove_all(dir);
}

TEST(Serial, GradientsMatchFiniteDifferences) {
  // Independent correctness anchor for the whole chain (aggregation,
  // combination, ReLU, loss): analytic dW vs central differences.
  auto g = pg::make_test_graph(40, 4.0, 6, 3, 55);
  auto spec = small_spec();
  spec.hidden_dims = {6};
  const auto grads = plexus::ref::serial_loss_and_grads(g, spec);

  // Check dF (input-feature gradient) at a few positions.
  const double eps = 1e-3;
  for (const auto& [r, c] : std::vector<std::pair<int, int>>{{0, 0}, {5, 3}, {17, 2}}) {
    auto gp = g;
    gp.features.at(r, c) += static_cast<float>(eps);
    const double up = plexus::ref::serial_loss_and_grads(gp, spec).loss;
    gp.features.at(r, c) -= static_cast<float>(2 * eps);
    const double dn = plexus::ref::serial_loss_and_grads(gp, spec).loss;
    const double fd = (up - dn) / (2 * eps);
    EXPECT_NEAR(grads.df.at(r, c), fd, 5e-3) << "feature (" << r << "," << c << ")";
  }
}

TEST(Serial, TrainingReachesHighTrainAccuracy) {
  const auto g = pg::make_test_graph(150, 6.0, 12, 4, 77);
  auto spec = small_spec();
  const auto res = plexus::ref::train_serial_gcn(g, spec, 60, /*evaluate_splits=*/true);
  EXPECT_GT(res.epochs.back().train_accuracy, 0.8);
  EXPECT_LT(res.epochs.back().loss, res.epochs.front().loss * 0.5);
}
