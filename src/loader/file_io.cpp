#include "loader/file_hooks.hpp"

#include <atomic>
#include <cerrno>
#include <memory>
#include <mutex>

namespace plexus::io {
namespace {

// Fast path: a relaxed-ish atomic flag so the common no-hooks case costs one
// load. The shared_ptr behind it lets prefetch worker threads keep using a
// hook object that the test thread swaps or clears concurrently.
std::atomic<bool> g_hooks_active{false};
std::mutex g_hooks_mutex;
std::shared_ptr<const FileHooks> g_hooks;  // guarded by g_hooks_mutex

std::shared_ptr<const FileHooks> current_hooks() {
  std::lock_guard<std::mutex> lock(g_hooks_mutex);
  return g_hooks;
}

}  // namespace

void set_file_hooks(FileHooks hooks) {
  std::lock_guard<std::mutex> lock(g_hooks_mutex);
  g_hooks = std::make_shared<const FileHooks>(std::move(hooks));
  g_hooks_active.store(true, std::memory_order_release);
}

void clear_file_hooks() {
  std::lock_guard<std::mutex> lock(g_hooks_mutex);
  g_hooks.reset();
  g_hooks_active.store(false, std::memory_order_release);
}

bool file_hooks_active() { return g_hooks_active.load(std::memory_order_acquire); }

std::size_t checked_fread(void* dst, std::size_t size, std::size_t count, std::FILE* f) {
  if (size == 0 || count == 0) return 0;
  std::size_t done = 0;
  while (done < count) {
    errno = 0;
    std::size_t got = 0;
    if (g_hooks_active.load(std::memory_order_acquire)) {
      if (const auto hooks = current_hooks(); hooks != nullptr && hooks->fread) {
        got = hooks->fread(static_cast<char*>(dst) + done * size, size, count - done, f);
      } else {
        got = std::fread(static_cast<char*>(dst) + done * size, size, count - done, f);
      }
    } else {
      got = std::fread(static_cast<char*>(dst) + done * size, size, count - done, f);
    }
    done += got;
    if (done == count) break;
    if (std::ferror(f) != 0 && errno == EINTR) {
      // A signal interrupted the underlying read. Clear the sticky stream
      // error and resume where the partial read stopped.
      std::clearerr(f);
      continue;
    }
    break;  // genuine EOF or error: return the short count, caller diagnoses
  }
  return done;
}

}  // namespace plexus::io
