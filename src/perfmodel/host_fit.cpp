#include "perfmodel/host_fit.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <vector>

#include "dense/gemm.hpp"
#include "dense/matrix.hpp"
#include "graph/generators.hpp"
#include "sparse/csr.hpp"
#include "sparse/spmm.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace plexus::perf {

namespace {

// Probe sizes: big enough that per-call overhead is noise, small enough that
// the whole calibration stays well under a second on a laptop core.
constexpr std::int64_t kGemmN = 256;
constexpr std::int64_t kSpmmNodes = 4096;
constexpr double kSpmmDegree = 16.0;
constexpr std::int64_t kSpmmCols = 64;
constexpr std::size_t kStreamFloats = std::size_t{8} << 20;  // 32 MB src, 32 MB dst

dense::Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  util::CounterRng rng(seed);
  dense::Matrix m(r, c);
  for (std::int64_t i = 0; i < m.size(); ++i) {
    m.flat()[static_cast<std::size_t>(i)] = rng.uniform_at(static_cast<std::uint64_t>(i), -1, 1);
  }
  return m;
}

/// Warm-up call plus min-of-three timed repetitions — the same protocol the
/// micro-bench serial baselines use, so the fit and the bench agree.
template <typename Fn>
double min_seconds(Fn&& fn) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(best,
                    std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
  return best;
}

double gemm_rate(dense::Trans ta, dense::Trans tb) {
  const auto a = random_matrix(kGemmN, kGemmN, 3);
  const auto b = random_matrix(kGemmN, kGemmN, 5);
  dense::Matrix c(kGemmN, kGemmN);
  const double secs =
      min_seconds([&] { dense::gemm(ta, tb, 1.0f, a, b, 0.0f, c); });
  return 2.0 * static_cast<double>(kGemmN * kGemmN * kGemmN) / secs;
}

}  // namespace

HostCalibration measure_host_kernels() {
  // Single-threaded: the machine model's peak is per device, and the thread
  // sweeps already characterise scaling separately (bench/micro_kernels).
  util::ScopedIntraRankThreads single(1);

  HostCalibration c;
  c.simd = simd::target_name(simd::active_target());
  c.gemm_nn_flops = gemm_rate(dense::Trans::N, dense::Trans::N);
  c.gemm_nt_flops = gemm_rate(dense::Trans::N, dense::Trans::T);
  c.gemm_tn_flops = gemm_rate(dense::Trans::T, dense::Trans::N);

  const auto adj = sparse::Csr::from_coo(
      graph::erdos_renyi(kSpmmNodes,
                         static_cast<std::int64_t>(static_cast<double>(kSpmmNodes) * kSpmmDegree /
                                                   2.0),
                         /*seed=*/7),
      false);
  const auto b = random_matrix(kSpmmNodes, kSpmmCols, 9);
  dense::Matrix h(adj.rows(), kSpmmCols);
  const double spmm_secs = min_seconds([&] { sparse::spmm(adj, b, h); });
  c.spmm_flops = static_cast<double>(sparse::spmm_flops(adj, kSpmmCols)) / spmm_secs;

  std::vector<float> src(kStreamFloats, 1.0f);
  std::vector<float> dst(kStreamFloats, 0.0f);
  const double stream_secs =
      min_seconds([&] { std::memcpy(dst.data(), src.data(), kStreamFloats * sizeof(float)); });
  c.stream_bytes = 2.0 * static_cast<double>(kStreamFloats * sizeof(float)) / stream_secs;
  return c;
}

sim::Machine fit_host_machine(const HostCalibration& c, const sim::Machine& reference) {
  PLEXUS_CHECK(c.gemm_nn_flops > 0.0 && c.spmm_flops > 0.0 && c.stream_bytes > 0.0,
               "fit_host_machine: calibration has unmeasured rates");
  sim::Machine m = reference;  // network constants carry over (no NICs to probe)
  m.name = "host-" + c.simd;
  m.gpus_per_node = 1;
  m.peak_flops = c.gemm_nn_flops;
  m.gemm_eff_nn = 1.0;
  m.gemm_eff_nt = std::clamp(c.gemm_nt_flops / c.gemm_nn_flops, 0.01, 1.0);
  m.gemm_eff_tn = std::clamp(c.gemm_tn_flops / c.gemm_nn_flops, 0.01, 1.0);
  m.spmm_efficiency = std::clamp(c.spmm_flops / c.gemm_nn_flops, 1e-4, 1.0);
  m.mem_bw = c.stream_bytes;
  m.spmm_noise = 0.0;
  return m;
}

}  // namespace plexus::perf
