# Resolve GoogleTest without requiring network access.
#
# Order of preference:
#   1. An installed GTest (Debian libgtest-dev ships GTestConfig.cmake plus
#      static libs; conda and brew do too).
#   2. The Debian-style source tree at /usr/src/googletest (libgtest-dev on
#      systems without prebuilt libs) — built as part of this project.
#   3. FetchContent from GitHub (only reached on networked machines with no
#      local copy).
#
# Defines GTest::gtest and GTest::gtest_main whichever path is taken.

include_guard(GLOBAL)

# Sanitizer builds (e.g. the CI ThreadSanitizer job) must compile GoogleTest
# with the same -fsanitize flags; force the from-source path for those.
option(PLEXUS_GTEST_FROM_SOURCE
       "Ignore installed GoogleTest binaries and build from a local source tree" OFF)

if(NOT PLEXUS_GTEST_FROM_SOURCE)
  find_package(GTest CONFIG QUIET)
  if(GTest_FOUND)
    message(STATUS "Plexus: using installed GoogleTest (${GTest_DIR})")
    return()
  endif()

  # Classic FindGTest module (library + header search) as a second chance.
  find_package(GTest MODULE QUIET)
  if(GTEST_FOUND AND TARGET GTest::gtest)
    message(STATUS "Plexus: using GoogleTest found via FindGTest module")
    return()
  endif()
endif()

set(_plexus_gtest_src "")
foreach(candidate /usr/src/googletest /usr/src/gtest)
  if(EXISTS "${candidate}/CMakeLists.txt")
    set(_plexus_gtest_src "${candidate}")
    break()
  endif()
endforeach()

if(_plexus_gtest_src)
  message(STATUS "Plexus: building vendored GoogleTest from ${_plexus_gtest_src}")
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  add_subdirectory("${_plexus_gtest_src}" "${CMAKE_BINARY_DIR}/_deps/googletest" EXCLUDE_FROM_ALL)
  if(NOT TARGET GTest::gtest)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
  return()
endif()

message(STATUS "Plexus: no local GoogleTest; falling back to FetchContent (needs network)")
include(FetchContent)
FetchContent_Declare(
  googletest
  URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
  URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
)
set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
FetchContent_MakeAvailable(googletest)
