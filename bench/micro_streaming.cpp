// Streaming-epoch micro-benchmark: bytes streamed, exposed IO time and peak
// block-cache residency of the out-of-core training path (ROADMAP item 2).
//
//   ./build/bench/micro_streaming                       # scale-16 proxy, 8 MB budget
//   ./build/bench/micro_streaming --scale=18 --rss-budget=32
//   ./build/bench/micro_streaming --out=micro_streaming.json  # perf-smoke gate input
//
// The harness generates an RMAT proxy straight to sharded block files
// (graph::rmat_to_shards — the graph never lives in memory), then trains the
// same streaming epochs three times: prefetch_depth=1 (every block load
// waited on immediately: the blocking-IO baseline), a fixed deep prefetch
// (loads posted ahead of the SpMM through the software-pipeline deque — the
// gated configuration), and the perf-model adaptive depth (informational:
// the model prices IO at raw disk bandwidth, so on a page-cached tmpdir it
// legitimately picks a shallow depth). Losses are bitwise-identical by
// contract; what changes is the IO stall (EpochStats::io_exposed_seconds).
// Like micro_serve this needs no Google Benchmark — the counters come from
// the trainer and the block cache, and the driver writes a
// google-benchmark-shaped JSON that tools/perf_smoke_check.py gates with
// --streaming-report.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/dataset_view.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "graph/rmat_shards.hpp"
#include "loader/block_cache.hpp"
#include "util/arg_parser.hpp"

namespace {

struct StreamRun {
  double wall_s = 0.0;         ///< wall-clock time of the whole training run
  double io_exposed_s = 0.0;   ///< summed EpochStats::io_exposed_seconds
  double bytes_streamed = 0.0; ///< summed EpochStats::io_bytes_streamed
  plexus::io::BlockCache::Stats cache;
  std::vector<double> losses;
};

StreamRun run_streaming(const std::string& dir, const plexus::core::TrainOptions& base,
                        int prefetch_depth, std::int64_t budget_bytes) {
  // A named budgeted view (rather than train_plexus_streaming) keeps the
  // cache stats readable after the run.
  const plexus::core::ShardedDatasetView view(dir, budget_bytes);
  plexus::core::TrainOptions opt = base;
  opt.aggregation = plexus::core::Aggregation::Dense;
  opt.prefetch_depth = prefetch_depth;
  opt.rss_budget_bytes = budget_bytes;
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = plexus::core::train_plexus(view, opt);
  StreamRun run;
  run.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (const auto& e : result.epochs) {
    run.io_exposed_s += e.io_exposed_seconds;
    run.bytes_streamed += e.io_bytes_streamed;
    run.losses.push_back(e.loss);
  }
  run.cache = view.cache_stats();
  return run;
}

void write_report(const std::string& path, int scale, std::int64_t budget_mb, int depth,
                  const StreamRun& blocking, const StreamRun& pipelined,
                  const StreamRun& adaptive, bool losses_equal) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_streaming: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n    {\n");
  std::fprintf(f, "      \"name\": \"BM_StreamingEpochs\",\n");
  std::fprintf(f, "      \"run_type\": \"iteration\",\n");
  std::fprintf(f, "      \"scale\": %d,\n", scale);
  std::fprintf(f, "      \"budget_mb\": %lld,\n", static_cast<long long>(budget_mb));
  std::fprintf(f, "      \"prefetch_depth\": %d,\n", depth);
  std::fprintf(f, "      \"bytes_streamed_mb\": %.3f,\n", pipelined.bytes_streamed / 1e6);
  // peak_cache_mb and budget_mb are both MiB (the budget is budget_mb << 20
  // bytes), so the gate's peak <= budget compare is unit-consistent.
  std::fprintf(f, "      \"peak_cache_mb\": %.3f,\n",
               static_cast<double>(pipelined.cache.peak_resident_bytes) / (1 << 20));
  std::fprintf(f, "      \"evictions\": %lld,\n",
               static_cast<long long>(pipelined.cache.evictions));
  std::fprintf(f, "      \"io_exposed_s_blocking\": %.6f,\n", blocking.io_exposed_s);
  std::fprintf(f, "      \"io_exposed_s_pipelined\": %.6f,\n", pipelined.io_exposed_s);
  std::fprintf(f, "      \"io_exposed_s_adaptive\": %.6f,\n", adaptive.io_exposed_s);
  std::fprintf(f, "      \"wall_s_blocking\": %.6f,\n", blocking.wall_s);
  std::fprintf(f, "      \"wall_s_pipelined\": %.6f,\n", pipelined.wall_s);
  std::fprintf(f, "      \"wall_s_adaptive\": %.6f,\n", adaptive.wall_s);
  std::fprintf(f, "      \"losses_bitwise_equal\": %d\n", losses_equal ? 1 : 0);
  std::fprintf(f, "    }\n  ]\n}\n");
  std::fclose(f);
  std::printf("report written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using plexus::util::ArgParser;
  ArgParser args("micro_streaming",
                 "Measure streamed bytes, exposed IO and cache residency of out-of-core epochs.");
  args.add_flag("scale", "n", "proxy scale: log2(#nodes); PLEXUS_BENCH_RMAT_SCALE overrides",
                "16");
  // The budget must cover the ranks' concurrently pinned in-flight blocks
  // (pins are never evictable): 4 ranks x the largest skewed RMAT block. 16 MB
  // clears that with room while still forcing constant eviction against the
  // ~47 MB a scale-16 proxy puts on disk.
  args.add_flag("rss-budget", "MB", "streaming block-cache budget in MB", "16");
  args.add_flag("prefetch-depth", "n", "fixed prefetch depth for the pipelined run", "4");
  args.add_flag("repeats", "n", "measured runs per configuration (best exposed IO kept)", "2");
  args.add_flag("epochs", "n", "epochs per measured run", "2");
  args.add_flag("out", "path", "write a google-benchmark JSON report here");

  switch (args.parse(argc, argv)) {
    case ArgParser::Status::Help: std::fputs(args.usage().c_str(), stdout); return 0;
    case ArgParser::Status::Error:
      std::fprintf(stderr, "micro_streaming: %s\n%s", args.error().c_str(),
                   args.usage().c_str());
      return 1;
    case ArgParser::Status::Ok: break;
  }
  int flag_scale = 0, epochs = 0, depth = 0, repeats = 0;
  std::int64_t budget_mb = 0;
  if (!args.value_int("scale", flag_scale) || flag_scale < 10 || flag_scale > 26 ||
      !args.value_int64("rss-budget", budget_mb) || budget_mb < 1 ||
      !args.value_int("prefetch-depth", depth) || depth < 2 ||
      !args.value_int("repeats", repeats) || repeats < 1 ||
      !args.value_int("epochs", epochs) || epochs < 1) {
    std::fprintf(stderr, "micro_streaming: bad numeric option\n%s", args.usage().c_str());
    return 1;
  }
  const int scale = plexus::bench::rmat_scale(flag_scale);
  const std::int64_t budget = budget_mb << 20;

  plexus::bench::banner("micro_streaming: out-of-core epochs under an RSS budget",
                        "section 5.4 / ROADMAP item 2 (streaming extension, not a paper figure)");

  plexus::core::TrainOptions opt;
  opt.grid = {2, 2, 1};
  opt.model.hidden_dims = {64};
  opt.model.options.agg_row_blocks = 8;
  opt.epochs = epochs;

  auto spec = plexus::graph::proxy_shards_spec(
      plexus::graph::dataset_info("ogbn-papers100M"), std::int64_t{1} << scale, /*seed=*/1);
  spec.scheme = static_cast<int>(opt.scheme);
  spec.num_layers = opt.model.num_layers();
  spec.pad_multiple = opt.grid.size();
  spec.preprocess_seed = opt.preprocess_seed;
  spec.parts = opt.grid.size();

  const auto dir = (std::filesystem::temp_directory_path() /
                    ("plexus_micro_streaming_scale" + std::to_string(scale)))
                       .string();
  std::filesystem::remove_all(dir);
  std::printf("generating scale-%d proxy straight to shards in %s ...\n", scale, dir.c_str());
  const auto gen = plexus::graph::rmat_to_shards(dir, spec);
  std::printf("  %lld edges, %lld nnz per version, %.1f MB on disk\n",
              static_cast<long long>(gen.num_edges), static_cast<long long>(gen.adjacency_nnz),
              static_cast<double>(gen.bytes_written) / 1e6);

  // Warm-up (page cache, thread pools), then the measured runs. All runs see
  // identical file-system state, so the only difference is the prefetch
  // schedule. Exposed IO is wall-clock and scheduler-noisy, so each
  // configuration runs `repeats` times and the best (least exposed IO) run is
  // kept — the standard benchmarking move for a lower-bound-style metric.
  run_streaming(dir, opt, /*prefetch_depth=*/1, budget);
  auto best_of = [&](int pf) {
    StreamRun best = run_streaming(dir, opt, pf, budget);
    for (int r = 1; r < repeats; ++r) {
      StreamRun next = run_streaming(dir, opt, pf, budget);
      if (next.io_exposed_s < best.io_exposed_s) best = next;
    }
    return best;
  };
  const StreamRun blocking = best_of(/*prefetch_depth=*/1);
  const StreamRun pipelined = best_of(depth);
  const StreamRun adaptive = best_of(/*prefetch_depth=*/0);
  const bool losses_equal =
      blocking.losses == pipelined.losses && blocking.losses == adaptive.losses;

  std::printf("\n%d epochs under a %lld MB budget (adjacency %.1f MB on disk):\n", epochs,
              static_cast<long long>(budget_mb), static_cast<double>(gen.bytes_written) / 1e6);
  std::printf("  blocking IO (depth 1): %.1f ms wall, %.1f ms exposed IO, %.1f MB streamed\n",
              blocking.wall_s * 1e3, blocking.io_exposed_s * 1e3, blocking.bytes_streamed / 1e6);
  std::printf("  pipelined (depth %d):   %.1f ms wall, %.1f ms exposed IO, %.1f MB streamed\n",
              depth, pipelined.wall_s * 1e3, pipelined.io_exposed_s * 1e3,
              pipelined.bytes_streamed / 1e6);
  std::printf("  adaptive prefetch:     %.1f ms wall, %.1f ms exposed IO, %.1f MB streamed\n",
              adaptive.wall_s * 1e3, adaptive.io_exposed_s * 1e3, adaptive.bytes_streamed / 1e6);
  std::printf("  cache peak %.2f MiB / budget %lld MiB, %lld evictions; losses %s\n",
              static_cast<double>(pipelined.cache.peak_resident_bytes) / (1 << 20),
              static_cast<long long>(budget_mb),
              static_cast<long long>(pipelined.cache.evictions),
              losses_equal ? "bitwise-equal" : "DIVERGED");

  if (args.is_set("out")) {
    write_report(args.value("out"), scale, budget_mb, depth, blocking, pipelined, adaptive,
                 losses_equal);
  }
  return losses_equal ? 0 : 1;
}
