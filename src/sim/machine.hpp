#pragma once
/// \file machine.hpp
/// GPU-cluster machine models (the paper's two platforms, section 6.1).
///
/// Substitution note (DESIGN.md): we do not have Perlmutter or Frontier, so
/// epoch *times* come from these calibrated analytic models. Parameters follow
/// the published hardware numbers: A100 = 19.5 fp32 Tflop/s, 1.5 TB/s HBM,
/// 40 MB L2, 4 GPUs/node; MI250X GCD = 23.9 fp32 Tflop/s, 1.6 TB/s, 8 MB L2,
/// 8 GCDs/node; both systems have 4x 25 GB/s Slingshot-11 NICs per node.
/// SpMM on ROCm is an order of magnitude slower than on CUDA (paper section
/// 7.2) — captured by `spmm_efficiency`.

#include <string>

namespace plexus::sim {

struct Machine {
  std::string name;
  int gpus_per_node = 4;

  // Compute.
  double peak_flops = 19.5e12;     ///< fp32 peak per device
  double gemm_eff_nn = 0.80;       ///< achievable fraction of peak, NN GEMM
  double gemm_eff_nt = 0.70;       ///< ... A * B^T
  double gemm_eff_tn = 0.55;       ///< ... A^T * B (slowest mode; section 5.3)
  double spmm_efficiency = 0.02;   ///< achievable fraction of peak for SpMM
  double spmm_shape_k = 171e3;     ///< tall-skinny penalty scale (section 4.1)
  double spmm_noise = 0.35;        ///< relative run-to-run variability amplitude
                                   ///< for working sets far beyond L2 (section 5.2)

  // Memory.
  double mem_bw = 1.5e12;          ///< HBM bytes/s
  double l2_bytes = 40e6;          ///< L2 capacity
  double disk_bw = 2.0e9;          ///< sustained sequential read bytes/s of the
                                   ///< node-local storage the streaming epoch
                                   ///< pulls shard blocks from (NVMe-class)

  // Network (paper eq. 4.6 parameters).
  double beta_intra = 200e9;       ///< intra-node ring bandwidth, bytes/s
  double beta_inter = 25e9;        ///< per-NIC injection bandwidth, bytes/s
  double alpha = 5e-6;             ///< per-hop latency, s
  double a2a_node_penalty = 0.5;   ///< all-to-all long-distance factor per log2(nodes)
  double a2a_peer_overhead = 5e-4; ///< per-peer all-to-all software overhead, seconds

  /// NERSC Perlmutter GPU partition (4x NVIDIA A100-40GB per node).
  static const Machine& perlmutter_a100();
  /// OLCF Frontier (4x MI250X per node = 8 GCDs, each GCD one device).
  static const Machine& frontier_mi250x_gcd();
  /// Generic single-node box for unit tests (no inter-node effects).
  static const Machine& test_machine();

  double gemm_eff(bool trans_a, bool trans_b) const {
    if (trans_a) return gemm_eff_tn;
    if (trans_b) return gemm_eff_nt;
    return gemm_eff_nn;
  }
};

}  // namespace plexus::sim
