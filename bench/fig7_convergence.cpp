// Figure 7: validation of Plexus against a serial baseline — training-loss
// curves of seven 16-GPU 3D configurations must coincide with the serial
// reference (the paper validates against PyTorch Geometric on ogbn-products).
#include <cmath>

#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "model/serial_gcn.hpp"
#include "perfmodel/perfmodel.hpp"
#include "sim/machine.hpp"
#include "util/table.hpp"

int main() {
  using plexus::util::Table;
  namespace pc = plexus::core;
  namespace psim = plexus::sim;

  plexus::bench::banner("Figure 7: Plexus vs serial reference, loss curves on 16 GPUs",
                        "Figure 7 (section 6.2), ogbn-products");
  const auto g = plexus::bench::bench_proxy("ogbn-products", 4000);
  const int epochs = 20;

  pc::GcnSpec spec;
  spec.hidden_dims = {32, 32};
  spec.options.adam.lr = 0.01f;
  spec.seed = 7;

  const auto serial = plexus::ref::train_serial_gcn(g, spec, epochs);

  // The seven configurations shown in the paper's legend.
  const psim::GridShape configs[] = {{1, 2, 8}, {1, 16, 1}, {2, 8, 1}, {2, 4, 2},
                                     {4, 1, 4}, {1, 1, 16}, {8, 1, 2}};

  Table t({"Config", "loss@1", "loss@10", "loss@15", "loss@20", "max |dev| vs serial"});
  auto fmt_loss = [](double v) { return Table::fmt(v, 4); };
  t.add_row({"serial (PyG role)", fmt_loss(serial.losses()[0]), fmt_loss(serial.losses()[9]),
             fmt_loss(serial.losses()[14]), fmt_loss(serial.losses()[19]), "-"});

  for (const auto& shape : configs) {
    pc::TrainOptions opt;
    opt.grid = shape;
    opt.machine = &psim::Machine::perlmutter_a100();
    opt.model = spec;
    opt.epochs = epochs;
    const auto res = pc::train_plexus(g, opt);
    const auto losses = res.losses();
    double max_dev = 0.0;
    for (int e = 0; e < epochs; ++e) {
      max_dev = std::max(max_dev, std::abs(losses[static_cast<std::size_t>(e)] -
                                           serial.losses()[static_cast<std::size_t>(e)]));
    }
    char dev[32];
    std::snprintf(dev, sizeof(dev), "%.2e", max_dev);
    t.add_row({plexus::perf::grid_to_string(shape), fmt_loss(losses[0]), fmt_loss(losses[9]),
               fmt_loss(losses[14]), fmt_loss(losses[19]), dev});
  }
  t.print();
  plexus::bench::note(
      "all configurations track the serial curve (deviations are fp reduction order "
      "amplified by Adam) — the Figure 7 result that Plexus makes no approximations.");
  return 0;
}
