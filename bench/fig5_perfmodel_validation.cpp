// Figure 5: validating the unified performance model — predicted vs observed
// epoch time for *every* 3D configuration of 64 GPUs on ogbn-products.
// "Observed" comes from the functional cluster simulation (real shards, real
// collectives, simulated clocks); "predicted" from the section-4 analytic
// model. The paper's claims: strong predicted/observed correlation, 3D
// configurations beat 2D/1D, and the top configurations are identified.
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "perfmodel/perfmodel.hpp"
#include "sim/machine.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using plexus::util::Table;
  namespace pc = plexus::core;
  namespace pp = plexus::perf;
  namespace psim = plexus::sim;

  plexus::bench::banner(
      "Figure 5: predicted vs observed epoch time, all 64-GPU configs",
      "Figure 5 (section 4.3), ogbn-products on 64 GPUs of Perlmutter");
  const auto& machine = psim::Machine::perlmutter_a100();
  const auto g = plexus::bench::bench_proxy("ogbn-products", 4000);

  pc::GcnSpec spec;
  spec.hidden_dims = {64, 64};
  spec.seed = 7;

  pp::WorkloadStats w;
  w.num_nodes = g.num_nodes;
  // nnz of the preprocessed adjacency ~ symmetric edges + self loops.
  w.num_nonzeros = g.num_edges() + g.num_nodes;
  w.layer_dims = {g.feature_dim(), 64, 64, g.num_classes};

  const auto ds = pc::preprocess_graph(g, pc::PermutationScheme::Double, spec.num_layers(),
                                       /*pad_multiple=*/64, /*seed=*/5);

  struct Row {
    psim::GridShape grid;
    double predicted;
    double observed;
  };
  std::vector<Row> rows;
  for (const auto& shape : pp::enumerate_grids(64)) {
    pc::TrainOptions opt;
    opt.grid = shape;
    opt.machine = &machine;
    opt.model = spec;
    opt.epochs = 2;
    const auto res = pc::train_plexus(ds, opt);
    rows.push_back({shape, pp::predict_epoch(machine, w, shape).total(),
                    res.avg_epoch_seconds(/*skip=*/1)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.observed < b.observed; });

  Table t({"Config", "Dim", "Predicted (ms)", "Observed (ms)"});
  for (const auto& r : rows) {
    t.add_row({pp::grid_to_string(r.grid),
               std::to_string(pp::grid_dimensionality(r.grid)) + "D",
               plexus::bench::ms(r.predicted, 2), plexus::bench::ms(r.observed, 2)});
  }
  t.print();

  // Correlation + best-config identification, the figure's two claims.
  std::vector<double> pred;
  std::vector<double> obs;
  double best_3d = 1e300;
  double best_1d = 1e300;
  for (const auto& r : rows) {
    pred.push_back(r.predicted);
    obs.push_back(r.observed);
    if (pp::grid_dimensionality(r.grid) == 3) best_3d = std::min(best_3d, r.observed);
    if (pp::grid_dimensionality(r.grid) == 1) best_1d = std::min(best_1d, r.observed);
  }
  const double r2 = plexus::util::r_squared(obs, pred);
  const auto predicted_best =
      std::min_element(rows.begin(), rows.end(),
                       [](const Row& a, const Row& b) { return a.predicted < b.predicted; });
  const std::size_t rank_of_predicted_best =
      static_cast<std::size_t>(predicted_best - rows.begin());

  std::printf("\npredicted-vs-observed R^2: %.3f (paper: 'strong correlation')\n", r2);
  std::printf("predicted-best config %s is observed rank %zu of %zu\n",
              pp::grid_to_string(predicted_best->grid).c_str(), rank_of_predicted_best + 1,
              rows.size());
  std::printf("best 3D observed %.2f ms vs best 1D observed %.2f ms (paper: 3D > 2D > 1D)\n",
              best_3d * 1e3, best_1d * 1e3);
  return 0;
}
