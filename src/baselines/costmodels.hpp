#pragma once
/// \file costmodels.hpp
/// Analytic epoch-time models of Plexus and the baseline frameworks at
/// arbitrary GPU counts (the full-size points of Figures 8-10).
///
/// Scale protocol (DESIGN.md): structural curves that drive the models —
/// boundary-node growth with partition count (BNS-GCN) and the
/// received-row fraction (SA) — are *measured* on scaled-down proxy graphs
/// with the real partitioners/exchange plans, fitted as power laws, and
/// extrapolated to the paper's dataset sizes. Hardware behaviour comes from
/// the same machine/kernel/collective models the functional simulator uses.
///
/// Where the paper reports a hard failure (OOM, partitioner timeout) we gate
/// the series on the *paper-reported* status and record it verbatim; see
/// `paper_reported_status`.

#include <optional>
#include <string>
#include <vector>

#include "graph/datasets.hpp"
#include "graph/graph.hpp"
#include "sim/machine.hpp"

namespace plexus::base {

/// Structural curves measured on a proxy and extrapolated as power laws.
struct StructuralCurves {
  // BNS-GCN: total nodes incl. boundary / N  ==  1 + a * parts^b (capped).
  double boundary_a = 0.0;
  double boundary_b = 0.0;
  // SA: received remote-row fraction per rank = min(1, a * parts^b).
  double sa_recv_a = 0.0;
  double sa_recv_b = 0.0;

  double expansion(int parts) const;      ///< >= 1
  double sa_recv_fraction(int parts) const;  ///< in [0, 1]
};

/// Measure the curves by partitioning the proxy at several part counts.
/// NOTE: raw proxy curves over-estimate boundary fractions at full scale
/// (small parts are nearly all boundary); use `calibrated_curves` for the
/// full-size models.
StructuralCurves measure_structural_curves(const graph::Graph& proxy,
                                           const std::vector<int>& part_counts,
                                           std::uint64_t seed);

/// Full-scale curves: the boundary-growth law is anchored to the paper's own
/// measurements for products-14M (total nodes incl. boundary: 18M at 32 parts
/// and 22M at 256 parts => expansion = 1 + 0.077 * G^0.35), and transferred to
/// other datasets by their cut difficulty relative to products-14M, measured
/// with the same partitioner on same-size proxies. The SA exchange fraction
/// is proxy-measured (it is a property of the column support, far less
/// scale-sensitive).
StructuralCurves calibrated_curves(const graph::DatasetInfo& info, std::uint64_t seed);

/// Per-epoch time components at full dataset scale.
struct BaselineEpoch {
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;
  double total() const { return compute_seconds + comm_seconds; }
};

/// BNS-GCN (boundary rate 1.0) epoch time: local SpMM/GEMM on the expanded
/// subgraph + per-layer halo all-to-all (forward and backward) + dW
/// all-reduce. The all-to-all carries the topology distance penalty that
/// produces the section 7.1 scaling cliff.
BaselineEpoch bnsgcn_epoch(const sim::Machine& m, const graph::DatasetInfo& info, int gpus,
                           const StructuralCurves& curves, std::int64_t hidden = 128,
                           int layers = 3);

/// CAGNET-SA epoch time: 1D stages with index-targeted feature exchange.
/// `nnz_imbalance` >= 1 inflates the straggler's compute (uniform block rows
/// without GVB are imbalanced on power-law graphs; GVB sets it to ~1).
BaselineEpoch sa_epoch(const sim::Machine& m, const graph::DatasetInfo& info, int gpus,
                       const StructuralCurves& curves, double nnz_imbalance,
                       std::int64_t hidden = 128, int layers = 3);

/// Plexus epoch time at the best predicted 3D configuration.
BaselineEpoch plexus_epoch(const sim::Machine& m, const graph::DatasetInfo& info, int gpus,
                           std::int64_t hidden = 128, int layers = 3);

/// Failures the paper reports for a framework/dataset(/scale): "OOM",
/// "partition timeout (>5h)", "job timeout". Returns nullopt when the paper
/// ran the point successfully.
std::optional<std::string> paper_reported_status(const std::string& framework,
                                                 const std::string& dataset, int gpus);

}  // namespace plexus::base
