#pragma once
/// \file layer.hpp
/// One distributed GCN layer: the forward pass of Algorithm 1 and backward
/// pass of Algorithm 2, generalised to every layer through the role rotation
/// (roles.hpp). Includes the two kernel-level optimisations of section 5:
/// blocked aggregation with pipelined per-block all-reduce (5.2) and the
/// reversed-order dL/dW GEMM (5.3).
///
/// A layer owns its weight shard (the (Din/Q x Dout/P) block, flat-sharded
/// across the R-parallel group) and that shard's Adam state. All simulated
/// kernel time is charged onto the rank's clock; collectives charge and
/// synchronise through the communicator.

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/adjacency_store.hpp"
#include "core/grid.hpp"
#include "core/preprocess.hpp"
#include "core/roles.hpp"
#include "core/shard.hpp"
#include "dense/matrix.hpp"
#include "dense/optim.hpp"
#include "sim/cluster.hpp"

namespace plexus::core {

class ShardStream;

/// Strategy for the blocked aggregation collectives (forward H all-reduce
/// over P, backward dF all-reduce / reduce-scatter over R).
enum class Aggregation {
  /// Ring collectives over the full dense row block — the paper's scheme.
  Dense,
  /// Selective exchange: per block, only the rows the local CSR shard's
  /// nonzeros touch travel (packed sparse all-to-all to the chunk owners +
  /// canonical-order fold; hidden-layer aggregation re-gathers the reduced
  /// chunks with a dense all-gather). Losses stay bitwise-identical to Dense;
  /// only bytes-on-the-wire and the cost-model time change. Falls back to
  /// Dense on single-member groups.
  Sparse,
  /// Per layer and direction, pick Dense or Sparse from the measured nnz
  /// support density per block (cost model comparison; identical decision on
  /// every group member).
  Auto,
};

/// Strategy name ("dense", "sparse", "auto") for logs and CLI flags. Thin
/// wrapper over the util::EnumNames registry at the bottom of this header.
const char* aggregation_name(Aggregation a);

/// Parse a strategy name (case-insensitive). Returns false on unknown names.
bool aggregation_from_string(std::string_view s, Aggregation& out);

/// The PLEXUS_AGG environment variable (`dense` | `sparse` | `auto`), else
/// Dense. Resolved by TrainOptions; PlexusOptions itself defaults to Dense so
/// directly-constructed layers are unaffected by the environment.
Aggregation default_aggregation();

/// PLEXUS_AGG as an *optional* override: the parsed value when the variable
/// is set (and well-formed), std::nullopt otherwise. This is the
/// TrainOptions::aggregation default — set means "override the model's
/// aggregation", unset means "inherit model.options.aggregation" (see
/// core::resolve_options).
std::optional<Aggregation> env_aggregation();

/// Tunables of the parallel algorithm (paper section 5).
struct PlexusOptions {
  int agg_row_blocks = 1;       ///< >1 enables blocked aggregation (section 5.2)
  bool gemm_dw_tuning = false;  ///< reversed dL/dW multiplication order (section 5.3)
  /// Software-pipeline depth of blocked aggregation: while a block's SpMM
  /// runs, up to `pipeline_depth - 1` per-block collectives may be in flight
  /// on the comm channels. 1 = fully blocking (wait immediately after post);
  /// 2 = the classic one-block lookahead of section 5.2. 0 (the default) =
  /// adaptive: each layer picks its own depth from the perf model (per-block
  /// SpMM time vs per-block ring time — comm::choose_pipeline_depth),
  /// separately for the forward and backward aggregations. Losses are
  /// bitwise-identical for any depth — only the exposed comm time changes,
  /// and the adaptive choice exposes no more than any fixed depth.
  int pipeline_depth = 0;
  /// Streaming epochs only: number of block loads the prefetch thread keeps
  /// in flight ahead of the consuming SpMM. 0 (the default) = adaptive — the
  /// perf model balances per-block SpMM time against per-block disk time
  /// (comm::choose_pipeline_depth over sim::Machine::disk_bw), clamped so the
  /// in-flight windows stay inside rss_budget_bytes. Like pipeline_depth a
  /// pure scheduling knob: losses are bitwise-identical for any depth.
  int prefetch_depth = 0;
  /// Streaming epochs only: RSS budget (bytes) the block cache and prefetch
  /// window planner honour. < 0 = unbounded.
  std::int64_t rss_budget_bytes = -1;
  /// Aggregation strategy (dense ring vs sparsity-aware selective exchange).
  Aggregation aggregation = Aggregation::Dense;
  dense::AdamConfig adam;
};

/// How DistGcnLayer::backward applies the final R-group collective to the
/// partial dF_in block (section 3.2): fused into the blocked dF SpMM pipeline
/// as per-block all-reduces (layers > 0), fused as per-block reduce-scatters
/// onto the caller's row-major-resharded gradient slice (layer 0 with
/// trainable features), or left to the caller entirely.
enum class FinalReduce { None, AllReduce, ReduceScatter };

/// Per-rank accumulated simulated kernel time, by category. The io fields
/// are *wall-clock* streaming accounting (exposed block-load wait and bytes
/// actually pulled from disk) — they are never charged onto the simulated
/// clock, so they do not contribute to total().
struct KernelTimers {
  double spmm = 0.0;
  double gemm = 0.0;
  double elementwise = 0.0;
  double io_exposed = 0.0;       ///< wall seconds a streamed SpMM waited on IO
  std::int64_t io_bytes = 0;     ///< bytes streamed from disk (cache misses)
  double total() const { return spmm + gemm + elementwise; }
};

class DistGcnLayer {
 public:
  /// `padded_nodes` is the dataset's padded node count (the only dataset
  /// fact a layer needs — rows shard as padded_nodes / extent).
  ///
  /// Pass either `adj` (resident shard: the classic path) or, for the
  /// out-of-core streaming epoch, adj == nullptr plus a ShardStream and the
  /// layer's LayerStreamPlan — then every aggregation block is loaded from
  /// disk through the stream's prefetch pipeline instead of read from the
  /// shard, with bitwise-identical results. Streaming requires
  /// Aggregation::Dense (the selective exchange needs the resident nnz
  /// structure up front).
  DistGcnLayer(std::int64_t padded_nodes, const Grid3D& grid, int rank, int layer_index,
               int num_layers, std::int64_t in_dim_padded, std::int64_t out_dim_padded,
               std::int64_t in_dim_valid, std::int64_t out_dim_valid, const AdjacencyShard* adj,
               const PlexusOptions& opts, std::uint64_t seed, ShardStream* stream = nullptr,
               const LayerStreamPlan* stream_plan = nullptr);

  /// Forward: f_in is the (N/P x Din/Q) input block (layer 0's flat-sharded
  /// features must be gathered by the caller). Applies ReLU unless `last`.
  /// `epoch_seed` feeds the per-kernel variability model.
  dense::Matrix forward(sim::RankContext& ctx, const dense::Matrix& f_in, bool last,
                        std::uint64_t epoch_seed, KernelTimers& timers);

  /// Backward: df_out is the gradient w.r.t. this layer's output (same block
  /// layout as the forward output, replicated over Q). The final R-group
  /// collective over the partial dF_in block is applied per `final_reduce`,
  /// pipelined against the blocked dF = SpMM(A^T, dH) (the backward mirror of
  /// section 5.2):
  ///  * FinalReduce::AllReduce — returns the *reduced* dF_in block.
  ///  * FinalReduce::ReduceScatter — row blocks are aligned to the R extent
  ///    and each block is reduce-scattered onto `grad_slice` (the caller's
  ///    row-major-resharded flat gradient slice, layer 0 / section 3.2);
  ///    returns an empty matrix.
  ///  * FinalReduce::None — returns the *partial* dF_in; the caller applies
  ///    whatever collective it needs.
  /// Stores dW internally; its reduce-scatter is posted asynchronously and
  /// retired in apply_grad().
  dense::Matrix backward(sim::RankContext& ctx, const dense::Matrix& df_out, bool last,
                         KernelTimers& timers, FinalReduce final_reduce = FinalReduce::None,
                         std::span<float> grad_slice = {});

  /// Adam step on the local weight slice using the gradient from backward().
  /// Waits for the asynchronous dW reduce-scatter posted there.
  void apply_grad(sim::RankContext& ctx, KernelTimers& timers);

  const LayerRoles& roles() const { return roles_; }
  bool streaming() const { return stream_ != nullptr; }
  comm::GroupId r_group() const { return r_group_; }
  std::int64_t weight_slice_size() const { return static_cast<std::int64_t>(w_slice_.size()); }

  /// Gathered weight block (tests): (Din/Q x Dout/P).
  dense::Matrix gather_weight_block(sim::RankContext& ctx);

  /// This rank's flat weight slice and its optimizer state (checkpointing).
  std::span<const float> weight_slice() const { return w_slice_; }
  const dense::Adam& optimizer() const { return adam_; }

  /// Overwrite the weight slice + Adam state (checkpoint restore). Span
  /// sizes must match weight_slice_size().
  void restore_state(std::span<const float> w, std::span<const float> m,
                     std::span<const float> v, std::int64_t adam_t);

 private:
  /// Post the R-group all-gather assembling the (Din/Q x Dout/P) weight block
  /// into `w_block`; the caller waits the handle before reading it.
  comm::CommHandle igathered_weights(sim::RankContext& ctx, dense::Matrix& w_block);
  dense::Matrix gathered_weights(sim::RankContext& ctx);

  /// Pipeline depth for this layer's blocked aggregation: the fixed
  /// PlexusOptions value, or (pipeline_depth == 0) the perf-model choice from
  /// the actual per-block SpMM times and this group's ring parameters —
  /// computed once per (direction, collective) and cached. Purely a local
  /// scheduling decision: ranks need not agree on it.
  int resolve_depth(sim::RankContext& ctx, const sparse::Csr& a,
                    const std::vector<std::int64_t>& bounds, std::int64_t dense_rows,
                    comm::GroupId gid, comm::Collective op, int* cache);

  /// Streaming twin of resolve_depth: the shard is not resident, so the
  /// per-block SpMM time comes from the stream plan's uniform nnz estimate.
  /// Still a purely local scheduling decision.
  int resolve_depth_streamed(sim::RankContext& ctx, const std::vector<std::int64_t>& bounds,
                             std::int64_t dense_rows, comm::GroupId gid, comm::Collective op,
                             int* cache);

  /// In-flight block loads the streaming loops keep posted: the fixed
  /// PlexusOptions::prefetch_depth, or (0 = adaptive) the perf-model balance
  /// of per-block SpMM time against per-block disk time, clamped to the RSS
  /// budget. Cached per direction.
  int resolve_prefetch_depth(sim::RankContext& ctx, const std::vector<std::int64_t>& bounds,
                             std::int64_t dense_rows, int* cache);

  /// One aggregation block of the sparse selective-exchange plan. The block's
  /// rows are split into `group size` equal chunks, chunk c owned by member c;
  /// at steady state only the packed float payloads move.
  struct SparseBlockPlan {
    std::int64_t b0 = 0, b1 = 0;  ///< row bounds (b1 - b0 divisible by G)
    /// My support rows in [b0, b1) (block-local, ascending): rows with nnz in
    /// my CSR shard. Ascending order means the packed send buffer is packed
    /// by destination chunk automatically.
    std::vector<std::int32_t> send_rows;
    std::vector<std::int64_t> send_counts;  ///< elements to each member (rows x Din/Q)
    std::vector<std::int64_t> recv_counts;  ///< elements from each member
    /// Per source member: the chunk-local rows of *my* chunk that member
    /// contributes, aligned with its packed payload (exchanged at plan build).
    std::vector<std::vector<std::int32_t>> src_rows;
    // Persistent per-block staging (handles of different blocks are in
    // flight concurrently, so the buffers cannot be shared).
    std::vector<float> send_buf;   ///< my packed support rows
    std::vector<float> recv_buf;   ///< peers' contributions to my chunk
    std::vector<float> chunk_buf;  ///< my reduced chunk (all-gather input)
  };

  /// Lazily-built per-direction plan. Building runs collectives on the
  /// group (support-count all-gather, depth max-reduce, per-block row-list
  /// exchange), so it happens in SPMD lockstep at the first forward/backward.
  struct SparsePlan {
    bool built = false;
    bool sparse = false;   ///< decision: false = dense fallback
    bool scatter = false;  ///< built for the reduce-scatter direction
    int depth = 1;         ///< group-uniform pipeline depth for this plan
    std::vector<std::int64_t> bounds;  ///< G-aligned row-block bounds
    std::vector<SparseBlockPlan> blocks;
  };

  /// Build `plan` for aggregating `rows` output rows of `a` over group `gid`
  /// (`G` members): scan per-block support, gather support counts (the Auto
  /// decision input), and — when sparse wins — exchange per-block row lists
  /// and size the staging buffers.
  void build_sparse_plan(sim::RankContext& ctx, SparsePlan& plan, const sparse::Csr& a,
                        std::int64_t rows, std::int64_t dense_rows, int G,
                        comm::GroupId gid, bool scatter);

  /// Fold the received contributions of `blk` into its reduced chunk in
  /// canonical member order. `out` — `chunk_buf` for the all-reduce
  /// direction, the caller's grad-slice chunk for scatter — is zero-prefilled
  /// here first.
  void fold_sparse_chunk(const SparseBlockPlan& blk, std::span<float> out) const;

  const Grid3D* grid_;
  const AdjacencyShard* adj_;
  ShardStream* stream_ = nullptr;            ///< streaming mode: block loader
  const LayerStreamPlan* splan_ = nullptr;   ///< streaming mode: shard window
  PlexusOptions opts_;
  int layer_;
  LayerRoles roles_;

  // Axis extents and this rank's coordinates along the role axes.
  int ext_p_, ext_q_, ext_r_;
  int coord_p_, coord_q_, coord_r_;
  comm::GroupId p_group_, q_group_, r_group_;

  // Padded block dims.
  std::int64_t rows_r_;   ///< N'/R: output rows
  std::int64_t rows_p_;   ///< N'/P: input rows
  std::int64_t din_q_;    ///< Din'/Q
  std::int64_t dout_p_;   ///< Dout'/P

  // Weight slice (1/R of the (Din/Q x Dout/P) block, flattened) + Adam.
  std::vector<float> w_slice_;
  std::vector<float> dw_slice_;
  dense::Adam adam_;

  // Saved forward state.
  dense::Matrix h_;      ///< aggregated H block (N'/R x Din'/Q)
  dense::Matrix q_pre_;  ///< pre-activation combination output

  // In-flight backward state: the full dW block must stay alive until its
  // reduce-scatter (posted in backward, hidden behind the remaining backward
  // compute) is retired in apply_grad.
  dense::Matrix dw_block_;
  comm::CommHandle dw_handle_;

  // Cached adaptive pipeline depths (0 = not yet computed); the machine,
  // shards and links are fixed for the layer's lifetime.
  int fwd_depth_ = 0;
  int bwd_depth_ = 0;

  // Cached adaptive prefetch depths of the streaming IO pipeline.
  int fwd_io_depth_ = 0;
  int bwd_io_depth_ = 0;

  // Sparse selective-aggregation plans, one per direction (the nnz structure
  // and groups are fixed for the layer's lifetime).
  SparsePlan fwd_sparse_;
  SparsePlan bwd_sparse_;
};

}  // namespace plexus::core

/// Registry entry (util/enum_names.hpp): the one source of truth for
/// aggregation-strategy names.
template <>
struct plexus::util::EnumNames<plexus::core::Aggregation> {
  static constexpr const char* kind = "aggregation";
  static constexpr EnumEntry<plexus::core::Aggregation> table[] = {
      {plexus::core::Aggregation::Dense, "dense"},
      {plexus::core::Aggregation::Sparse, "sparse"},
      {plexus::core::Aggregation::Auto, "auto"},
  };
};
