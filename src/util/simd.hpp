#pragma once
/// \file simd.hpp
/// Runtime-dispatched SIMD row kernels for the training hot loops.
///
/// Three implementations of every kernel — portable scalar, AVX2 and
/// AVX-512F — compiled side by side in one TU via per-function target
/// attributes and selected **once** per process from `PLEXUS_SIMD`
/// (`auto|avx512|avx2|scalar`, default auto = best the CPU supports,
/// logged at first use). All targets are **bitwise-identical** by
/// construction: kernels vectorize over the feature dimension j, so each
/// output element sees exactly the serial sequence of roundings
/// (`c[j] + v * b[j]` as one multiply and one add — never an FMA, and the
/// whole tree compiles with `-ffp-contract=off` so the scalar reference
/// cannot silently contract either). The tail that does not fill a vector
/// is handled with masked lanes (AVX-512) or scalar ops (AVX2), so any
/// feature width matches `spmm_rows_serial` exactly. `PLEXUS_SIMD` is
/// therefore a pure performance knob with no observable numeric effect.
///
/// The table of a *specific* target is also exposed (`kernels(target)`)
/// so tests can pin every supported target against the scalar reference
/// and benches can measure `speedup_vs_serial` without re-execing under a
/// different environment.
///
/// bf16 helpers (round-to-nearest-even pack, widening unpack, fused
/// unpack-accumulate in fp32) live here too: the comm layer uses them for
/// the `PLEXUS_WIRE=bf16` wire format (see docs/COMM.md).

#include <cstdint>

namespace plexus::simd {

enum class Target { Scalar = 0, Avx2 = 1, Avx512 = 2 };

/// Human-readable name ("scalar", "avx2", "avx512").
const char* target_name(Target t);

/// True when the running CPU can execute `t` (Scalar always can).
bool target_supported(Target t);

/// The dispatch decision, resolved once per process: PLEXUS_SIMD when set
/// (falling back, with a warning, to the best supported target if the CPU
/// cannot run the requested one), else the best supported target. Logged
/// at Info on first call.
Target active_target();

/// Kernel table of one target. All function pointers are non-null; every
/// target's results are bitwise-identical to the Scalar entry.
struct Kernels {
  /// SpMM rows [r0, r1): C[r,:] (+)= sum_k va[k] * B[ci[k],:], row pointers
  /// `rp`, leading dimensions in elements. `accumulate` false zero-fills
  /// each output row first.
  void (*spmm_rows)(const std::int64_t* rp, const std::int32_t* ci, const float* va,
                    const float* b, std::int64_t ldb, float* c, std::int64_t ldc, std::int64_t r0,
                    std::int64_t r1, std::int64_t n, bool accumulate);
  /// GEMM accumulate tile: C[i,:] += alpha * A[i,kk] * B[kk,:] for
  /// i in [i0, i1), kk in [k0, k1), preserving the `alpha * a == 0` row
  /// skip of the serial kernel (a skipped term adds nothing, not +0.0).
  void (*gemm_tile)(const float* a, std::int64_t lda, const float* b, std::int64_t ldb, float* c,
                    std::int64_t ldc, std::int64_t i0, std::int64_t i1, std::int64_t k0,
                    std::int64_t k1, std::int64_t n, float alpha);
  /// y[i] = x[i] > 0 ? x[i] : 0.
  void (*relu)(const float* x, float* y, std::int64_t n);
  /// dx[i] = q[i] > 0 ? dy[i] : 0.
  void (*relu_backward)(const float* q, const float* dy, float* dx, std::int64_t n);
  /// One Adam update over n parameters; bc1/bc2 are the precomputed bias
  /// corrections 1 - beta^t.
  void (*adam_step)(float* p, const float* g, float* m, float* v, std::int64_t n, float beta1,
                    float beta2, float lr, float eps, float weight_decay, float bc1, float bc2);
};

/// Table of a specific target. PLEXUS_CHECKs that the CPU supports it.
const Kernels& kernels(Target t);

/// Table of `active_target()` — what the library hot paths call.
const Kernels& active_kernels();

// ---------------------------------------------------------------------------
// bf16 (top 16 bits of fp32) wire-format helpers.

/// Round-to-nearest-even truncation fp32 -> bf16. NaN stays NaN (quietened,
/// sign preserved); +-0 and +-inf are exact; any value whose mantissa fits
/// 7 bits round-trips exactly.
std::uint16_t bf16_from_f32(float f);

/// Widening bf16 -> fp32 (exact: bf16 values are a subset of fp32).
float f32_from_bf16(std::uint16_t h);

void bf16_pack(const float* src, std::uint16_t* dst, std::int64_t n);
void bf16_unpack(const std::uint16_t* src, float* dst, std::int64_t n);
/// dst[i] = f32(src[i]) — the reduction-assign hook of the comm layer.
void bf16_assign_f32(float* dst, const std::uint16_t* src, std::int64_t n);
/// dst[i] += f32(src[i]) — accumulation stays in fp32.
void bf16_accumulate_f32(float* dst, const std::uint16_t* src, std::int64_t n);

}  // namespace plexus::simd
