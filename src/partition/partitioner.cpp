#include "partition/partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace plexus::part {

std::vector<std::int64_t> Partitioning::part_sizes() const {
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(num_parts), 0);
  for (const auto a : assignment) sizes[static_cast<std::size_t>(a)]++;
  return sizes;
}

Partitioning random_partition(std::int64_t num_nodes, int parts, std::uint64_t seed) {
  PLEXUS_CHECK(parts >= 1, "parts must be positive");
  Partitioning p;
  p.num_parts = parts;
  p.assignment.resize(static_cast<std::size_t>(num_nodes));
  util::CounterRng rng(util::hash_combine(seed, 0x9a27));
  for (std::int64_t v = 0; v < num_nodes; ++v) {
    p.assignment[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(
        rng.u64_at(static_cast<std::uint64_t>(v)) % static_cast<std::uint64_t>(parts));
  }
  return p;
}

Partitioning fennel_partition(const sparse::Csr& adj, int parts, std::uint64_t seed, int passes,
                              double gamma, double slack) {
  PLEXUS_CHECK(adj.rows() == adj.cols(), "fennel: square adjacency required");
  PLEXUS_CHECK(parts >= 1 && passes >= 1, "fennel: bad params");
  const std::int64_t n = adj.rows();
  const std::int64_t m = adj.nnz();

  Partitioning p;
  p.num_parts = parts;
  p.assignment.assign(static_cast<std::size_t>(n), -1);
  if (parts == 1) {
    std::fill(p.assignment.begin(), p.assignment.end(), 0);
    return p;
  }

  // Fennel's alpha balances the cut term against the size penalty.
  const double alpha = std::sqrt(static_cast<double>(parts)) * static_cast<double>(m) /
                       std::pow(static_cast<double>(n), gamma);
  const auto cap = static_cast<std::int64_t>(
      slack * static_cast<double>(n) / static_cast<double>(parts)) + 1;

  std::vector<std::int64_t> sizes(static_cast<std::size_t>(parts), 0);
  std::vector<double> neighbour_count(static_cast<std::size_t>(parts), 0.0);
  const auto rp = adj.row_ptr();
  const auto ci = adj.col_idx();

  // Stream in a deterministic shuffled order (natural order would seed all
  // early communities into part 0).
  const auto order = util::random_permutation(n, util::hash_combine(seed, 0xfe77e1));

  for (int pass = 0; pass < passes; ++pass) {
    for (const auto v : order) {
      // Remove v's current assignment (refinement passes).
      const auto cur = p.assignment[static_cast<std::size_t>(v)];
      if (cur >= 0) sizes[static_cast<std::size_t>(cur)]--;

      std::fill(neighbour_count.begin(), neighbour_count.end(), 0.0);
      for (std::int64_t k = rp[static_cast<std::size_t>(v)];
           k < rp[static_cast<std::size_t>(v) + 1]; ++k) {
        const auto u = ci[static_cast<std::size_t>(k)];
        const auto pu = p.assignment[static_cast<std::size_t>(u)];
        if (pu >= 0) neighbour_count[static_cast<std::size_t>(pu)] += 1.0;
      }
      int best = 0;
      double best_score = -1e300;
      for (int i = 0; i < parts; ++i) {
        if (sizes[static_cast<std::size_t>(i)] >= cap) continue;
        const double score =
            neighbour_count[static_cast<std::size_t>(i)] -
            alpha * gamma * std::pow(static_cast<double>(sizes[static_cast<std::size_t>(i)]),
                                     gamma - 1.0);
        if (score > best_score) {
          best_score = score;
          best = i;
        }
      }
      p.assignment[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(best);
      sizes[static_cast<std::size_t>(best)]++;
    }
  }
  return p;
}

Partitioning nnz_balanced_partition(const sparse::Csr& adj, int parts) {
  PLEXUS_CHECK(parts >= 1, "parts must be positive");
  const std::int64_t n = adj.rows();
  const std::int64_t target = (adj.nnz() + parts - 1) / parts;
  Partitioning p;
  p.num_parts = parts;
  p.assignment.resize(static_cast<std::size_t>(n));
  std::int64_t acc = 0;
  int cur = 0;
  for (std::int64_t v = 0; v < n; ++v) {
    p.assignment[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(cur);
    acc += adj.row_nnz(v);
    if (acc >= target && cur + 1 < parts) {
      acc = 0;
      ++cur;
    }
  }
  return p;
}

std::int64_t edge_cut(const sparse::Csr& adj, const Partitioning& p) {
  std::int64_t cut = 0;
  const auto rp = adj.row_ptr();
  const auto ci = adj.col_idx();
  for (std::int64_t v = 0; v < adj.rows(); ++v) {
    for (std::int64_t k = rp[static_cast<std::size_t>(v)];
         k < rp[static_cast<std::size_t>(v) + 1]; ++k) {
      const auto u = ci[static_cast<std::size_t>(k)];
      if (p.assignment[static_cast<std::size_t>(v)] != p.assignment[static_cast<std::size_t>(u)]) {
        ++cut;
      }
    }
  }
  return cut / 2;  // symmetric adjacency counts each edge twice
}

BoundaryStats boundary_stats(const sparse::Csr& adj, const Partitioning& p) {
  BoundaryStats s;
  s.owned.assign(static_cast<std::size_t>(p.num_parts), 0);
  s.boundary.assign(static_cast<std::size_t>(p.num_parts), 0);
  for (const auto a : p.assignment) s.owned[static_cast<std::size_t>(a)]++;

  // A node u is a halo node of part i iff part(u) != i and u has a neighbour
  // in part i (symmetric adjacency). Count each (u, part) pair once with a
  // per-part stamp keyed by the current node: O(nnz).
  const auto rp = adj.row_ptr();
  const auto ci = adj.col_idx();
  std::vector<std::int64_t> stamp(static_cast<std::size_t>(p.num_parts), -1);
  for (std::int64_t u = 0; u < adj.rows(); ++u) {
    const auto pu = p.assignment[static_cast<std::size_t>(u)];
    for (std::int64_t k = rp[static_cast<std::size_t>(u)];
         k < rp[static_cast<std::size_t>(u) + 1]; ++k) {
      const auto v = ci[static_cast<std::size_t>(k)];
      const auto pv = p.assignment[static_cast<std::size_t>(v)];
      if (pv != pu && stamp[static_cast<std::size_t>(pv)] != u) {
        stamp[static_cast<std::size_t>(pv)] = u;
        s.boundary[static_cast<std::size_t>(pv)]++;
      }
    }
  }
  s.total_with_boundary = 0;
  for (int i = 0; i < p.num_parts; ++i) {
    s.total_with_boundary += s.owned[static_cast<std::size_t>(i)] +
                             s.boundary[static_cast<std::size_t>(i)];
  }
  return s;
}

}  // namespace plexus::part
