// Checkpoint save/restore (core/checkpoint.hpp + loader/checkpoint.hpp):
// resume reproduces an uninterrupted run bitwise, and the model.plx reader
// fails loudly on every corruption mode the dataset loaders guard against.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "loader/checkpoint.hpp"

namespace pc = plexus::core;
namespace pg = plexus::graph;
namespace pio = plexus::io;

namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("plexus_checkpoint_test_" + std::to_string(::getpid()));
    g_ = pg::make_test_graph(192, 6.0, 8, 4, 3);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  pc::TrainOptions options(int epochs) const {
    pc::TrainOptions opt;
    opt.grid = {2, 1, 2};
    opt.model.hidden_dims = {16, 16};
    opt.epochs = epochs;
    return opt;
  }

  std::filesystem::path dir_;
  pg::Graph g_;
};

}  // namespace

TEST_F(CheckpointTest, ResumeReproducesUninterruptedRunBitwise) {
  // Reference: 5 epochs straight through, no checkpointing.
  const auto straight = pc::train_plexus(g_, options(5));

  // Interrupted: 2 epochs + checkpoint, then resume to 5.
  auto first = options(2);
  first.checkpoint_dir = dir_.string();
  const auto head = pc::train_plexus(g_, first);
  EXPECT_EQ(head.first_epoch, 0);
  ASSERT_EQ(head.epochs.size(), 2u);

  const auto tail = pc::resume_plexus(dir_.string(), options(5));
  EXPECT_EQ(tail.first_epoch, 2);
  ASSERT_EQ(tail.epochs.size(), 3u);

  // Bitwise: epoch seeds key on the absolute epoch index and the checkpoint
  // round-trips every weight/moment exactly, so losses and accuracies must
  // be EQ, not NEAR.
  for (std::size_t e = 0; e < head.epochs.size(); ++e) {
    EXPECT_EQ(head.epochs[e].loss, straight.epochs[e].loss) << "epoch " << e;
  }
  for (std::size_t e = 0; e < tail.epochs.size(); ++e) {
    EXPECT_EQ(tail.epochs[e].loss, straight.epochs[e + 2].loss) << "epoch " << e + 2;
    EXPECT_EQ(tail.epochs[e].train_accuracy, straight.epochs[e + 2].train_accuracy);
  }
}

TEST_F(CheckpointTest, ModelStateRoundTrip) {
  auto opt = options(2);
  opt.checkpoint_dir = dir_.string();
  pc::train_plexus(g_, opt);

  const auto s = pc::load_model_state(dir_.string());
  EXPECT_EQ(s.hidden_dims, (std::vector<std::int64_t>{16, 16}));
  EXPECT_EQ(s.num_layers(), 3);
  EXPECT_EQ(s.pad_multiple, 4);
  EXPECT_EQ(s.epochs_completed, 2);
  EXPECT_EQ(s.preprocess_seed, 7u);
  for (const auto& l : s.layers) {
    ASSERT_EQ(l.w.size(), static_cast<std::size_t>(l.rows * l.cols));
    ASSERT_EQ(l.m.size(), l.w.size());
    ASSERT_EQ(l.v.size(), l.w.size());
    EXPECT_EQ(l.adam_t, 2);
  }
  EXPECT_EQ(s.feat_m.size(), static_cast<std::size_t>(s.feat_rows * s.feat_cols));

  // Writing the state back out reproduces it exactly.
  const auto dir2 = dir_ / "rewrite";
  pio::write_model_state(dir2.string(), s);
  const auto s2 = pio::read_model_state(dir2.string());
  EXPECT_EQ(s2.layers[0].w, s.layers[0].w);
  EXPECT_EQ(s2.feat_v, s.feat_v);
  EXPECT_EQ(s2.epochs_completed, s.epochs_completed);
}

TEST_F(CheckpointTest, CheckpointDatasetIsAValidDataset) {
  auto opt = options(2);
  opt.checkpoint_dir = dir_.string();
  pc::train_plexus(g_, opt);

  const auto ds = pc::load_checkpoint_dataset(dir_.string());
  EXPECT_EQ(ds.num_classes, 4);
  EXPECT_EQ(ds.padded_nodes % 4, 0);
  EXPECT_EQ(ds.features.rows(), ds.padded_nodes);
}

TEST_F(CheckpointTest, MissingModelStateThrows) {
  EXPECT_THROW(pc::load_model_state("/nonexistent/plexus_ckpt"), std::runtime_error);
}

TEST_F(CheckpointTest, TruncatedModelStateThrows) {
  auto opt = options(1);
  opt.checkpoint_dir = dir_.string();
  pc::train_plexus(g_, opt);

  const auto path = dir_ / "model.plx";
  const auto size = std::filesystem::file_size(path);
  ASSERT_GT(size, 64u);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(pc::load_model_state(dir_.string()), std::runtime_error);
}

TEST_F(CheckpointTest, CorruptMagicThrows) {
  auto opt = options(1);
  opt.checkpoint_dir = dir_.string();
  pc::train_plexus(g_, opt);

  const auto path = dir_ / "model.plx";
  std::FILE* f = std::fopen(path.string().c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const std::uint64_t garbage = 0xdeadbeefdeadbeefULL;
  ASSERT_EQ(std::fwrite(&garbage, sizeof(garbage), 1, f), 1u);
  std::fclose(f);
  try {
    pc::load_model_state(dir_.string());
    FAIL() << "corrupt magic accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos) << e.what();
  }
}

TEST_F(CheckpointTest, ShortWriteSurfacesAtClose) {
  // Same /dev/full trick as the dataset writers: buffered writes succeed
  // into the stdio buffer and only fail at the checked close.
  if (!std::filesystem::exists("/dev/full")) GTEST_SKIP() << "no /dev/full on this platform";
  auto opt = options(1);
  opt.checkpoint_dir = dir_.string();
  pc::train_plexus(g_, opt);
  const auto s = pc::load_model_state(dir_.string());

  const auto wdir = dir_ / "full_disk";
  std::filesystem::create_directories(wdir);
  std::filesystem::create_symlink("/dev/full", wdir / "model.plx");
  EXPECT_THROW(pio::write_model_state(wdir.string(), s), std::runtime_error);
}

TEST_F(CheckpointTest, ResumeRejectsMismatchedGrid) {
  auto opt = options(2);
  opt.checkpoint_dir = dir_.string();
  pc::train_plexus(g_, opt);

  auto wrong = options(4);
  wrong.grid = {2, 1, 1};  // volume 2 != checkpoint pad_multiple 4
  EXPECT_THROW(pc::resume_plexus(dir_.string(), wrong), std::runtime_error);
}
