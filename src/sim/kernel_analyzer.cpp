#include "sim/kernel_analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/kernels.hpp"

namespace plexus::sim {

namespace {

/// Small set-associative LRU cache of 32-byte sectors.
class SectorCache {
 public:
  SectorCache(double capacity_bytes, int ways = 16) : ways_(ways) {
    const auto lines = static_cast<std::int64_t>(capacity_bytes / kSectorBytes);
    sets_ = std::max<std::int64_t>(1, lines / ways);
    tags_.assign(static_cast<std::size_t>(sets_ * ways_), -1);
    ages_.assign(static_cast<std::size_t>(sets_ * ways_), 0);
  }

  /// Returns true on hit; inserts on miss.
  bool access(std::int64_t sector_id) {
    const std::int64_t set = sector_id % sets_;
    const std::size_t base = static_cast<std::size_t>(set * ways_);
    ++tick_;
    std::size_t victim = base;
    for (int w = 0; w < ways_; ++w) {
      const std::size_t slot = base + static_cast<std::size_t>(w);
      if (tags_[slot] == sector_id) {
        ages_[slot] = tick_;
        return true;
      }
      if (ages_[slot] < ages_[victim]) victim = slot;
    }
    tags_[victim] = sector_id;
    ages_[victim] = tick_;
    return false;
  }

  static constexpr double kSectorBytes = 32.0;

 private:
  std::int64_t sets_;
  int ways_;
  std::vector<std::int64_t> tags_;
  std::vector<std::int64_t> ages_;
  std::int64_t tick_ = 0;
};

}  // namespace

KernelMetrics analyze_spmm(const Machine& m, const sparse::Csr& a, std::int64_t dense_cols) {
  KernelMetrics out;
  const std::int64_t nnz = a.nnz();
  // nnz-splitting row-split kernel: ~96 nonzeros (3 warps) per thread block.
  constexpr std::int64_t kNnzPerBlock = 96;
  out.grid_size = (nnz + kNnzPerBlock - 1) / kNnzPerBlock;

  const double row_bytes = 4.0 * static_cast<double>(dense_cols);
  const double sectors_per_access = std::ceil(row_bytes / SectorCache::kSectorBytes);
  // Ideal sectors if the warp's loads were perfectly dense/aligned; the excess
  // is Nsight's "uncoalesced global access" signal. Narrow rows burn most of a
  // 32B sector per request; wide rows only waste the ragged tail.
  const double wasted_bytes_per_access =
      sectors_per_access * SectorCache::kSectorBytes - row_bytes;

  SectorCache cache(m.l2_bytes);
  std::int64_t sector_requests = 0;
  std::int64_t sector_hits = 0;

  // Walk the CSR (sampling rows for very large shards keeps this O(10M)).
  const std::int64_t max_samples = 8'000'000;
  const std::int64_t stride = std::max<std::int64_t>(1, nnz / max_samples);
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  std::int64_t walked = 0;
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    for (std::int64_t k = rp[static_cast<std::size_t>(r)]; k < rp[static_cast<std::size_t>(r) + 1];
         k += stride) {
      const std::int64_t c = ci[static_cast<std::size_t>(k)];
      const auto first_sector = static_cast<std::int64_t>(
          static_cast<double>(c) * row_bytes / SectorCache::kSectorBytes);
      for (std::int64_t s = 0; s < static_cast<std::int64_t>(sectors_per_access); ++s) {
        ++sector_requests;
        if (cache.access(first_sector + s)) ++sector_hits;
      }
      ++walked;
    }
  }
  const double scale = walked > 0 ? static_cast<double>(nnz) / static_cast<double>(walked) : 0.0;

  out.uncoalesced_sectors = static_cast<std::int64_t>(
      scale * static_cast<double>(walked) * wasted_bytes_per_access / SectorCache::kSectorBytes);
  out.l2_hit_rate = sector_requests > 0
                        ? static_cast<double>(sector_hits) / static_cast<double>(sector_requests)
                        : 0.0;

  SpmmShape shape{nnz, a.rows(), a.cols(), dense_cols};
  out.time_seconds = spmm_time(m, shape);

  // Achieved bandwidths vs peaks. All traffic (dense-operand requests, CSR
  // stream, output writes) passes through L2; DRAM only sees the misses plus
  // the streaming CSR/output data.
  const double total_sector_bytes =
      scale * static_cast<double>(sector_requests) * SectorCache::kSectorBytes;
  const double stream_bytes = 8.0 * static_cast<double>(nnz) +
                              4.0 * static_cast<double>(a.rows()) * static_cast<double>(dense_cols);
  const double l2_bytes_served = total_sector_bytes + stream_bytes;
  const double dram_bytes = total_sector_bytes * (1.0 - out.l2_hit_rate) + stream_bytes;
  const double l2_peak_bw = 4.0 * m.mem_bw;  // on-chip ~4x HBM
  if (out.time_seconds > 0.0) {
    out.l2_throughput_pct =
        std::min(98.0, 100.0 * (l2_bytes_served / out.time_seconds) / l2_peak_bw);
    out.dram_throughput_pct = std::min(98.0, 100.0 * (dram_bytes / out.time_seconds) / m.mem_bw);
  }
  return out;
}

}  // namespace plexus::sim
