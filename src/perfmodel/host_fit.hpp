#pragma once
/// \file host_fit.hpp
/// One-shot calibration of the perf model's compute constants from the
/// *measured* host kernels (the `perfmodel_fit` path of ROADMAP item 4).
///
/// The machine models in sim/machine.hpp carry published GPU hardware
/// numbers; the host kernels behind the simulator were calibrated against
/// their scalar-era throughput. With the runtime-dispatched SIMD kernels
/// (util/simd.hpp) the real peak-FLOP and per-byte rates moved by integer
/// factors, so planning decisions that compare compute time against wire
/// time — perf::choose_pipeline_depth, perf::choose_sparse_aggregation —
/// would be fed stale ratios if the constants were left alone.
///
/// `measure_host_kernels()` times the vectorized GEMM (all three transpose
/// modes), the SpMM row kernel on a random graph, and a streaming-copy
/// bandwidth probe, all single-threaded on the active SIMD target;
/// `fit_host_machine()` folds the measurements into a sim::Machine whose
/// compute constants are the measured rates (network parameters are
/// inherited from the reference machine — the host has no NICs to probe).
/// Nothing in the default training path calls this: the default machine
/// stays Machine::perlmutter_a100(), so fp32 epoch lines are untouched.
/// bench/perfmodel_fit_section41.cpp surfaces the fit next to the paper's
/// section-4.1 regression.

#include <string>

#include "sim/machine.hpp"

namespace plexus::perf {

/// Measured single-thread host kernel rates on the active SIMD target.
struct HostCalibration {
  std::string simd;              ///< simd::target_name(simd::active_target())
  double gemm_nn_flops = 0.0;    ///< fp32 flop/s, C = A B
  double gemm_nt_flops = 0.0;    ///< ... C = A B^T
  double gemm_tn_flops = 0.0;    ///< ... C = A^T B (slowest mode)
  double spmm_flops = 0.0;       ///< fp32 flop/s of the CSR row kernel
  double stream_bytes = 0.0;     ///< streaming read+write bytes/s
};

/// Run the probes (fractions of a second total: warm-up plus min-of-three
/// timed repetitions per kernel, like the micro-bench baselines).
HostCalibration measure_host_kernels();

/// A sim::Machine with the measured compute constants: peak_flops is the NN
/// GEMM rate (so gemm_eff_nn == 1 by construction), the NT/TN efficiencies
/// and spmm_efficiency are the measured ratios, mem_bw is the stream rate,
/// and spmm_noise is zeroed (the probes are deterministic wall-clock
/// medians, not a noisy population). Network parameters copy `reference`.
sim::Machine fit_host_machine(const HostCalibration& c,
                              const sim::Machine& reference = sim::Machine::perlmutter_a100());

}  // namespace plexus::perf
