// Node classification on a citation-network proxy (the workload class of
// ogbn-papers100M): trains with each permutation scheme and reports loss,
// accuracy, shard balance, and simulated epoch time — showing why the double
// permutation is the default (same convergence, better balance, faster epoch).
#include <cstdio>

#include "core/preprocess.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"
#include "util/table.hpp"

int main() {
  using plexus::util::Table;
  namespace pc = plexus::core;

  const auto g = plexus::graph::make_proxy(plexus::graph::dataset_info("ogbn-papers100M"),
                                           8000, /*seed=*/4);
  std::printf("citation proxy: %lld nodes, %lld edges, %lld classes\n",
              static_cast<long long>(g.num_nodes), static_cast<long long>(g.num_edges()),
              static_cast<long long>(g.num_classes));

  Table t({"Scheme", "8x8 max/mean nnz", "final loss", "val acc", "sim epoch (ms)"});
  for (const auto scheme : {pc::PermutationScheme::None, pc::PermutationScheme::Single,
                            pc::PermutationScheme::Double}) {
    pc::TrainOptions opt;
    opt.grid = {2, 2, 4};
    opt.machine = &plexus::sim::Machine::perlmutter_a100();
    opt.scheme = scheme;
    opt.model.hidden_dims = {64, 64};
    opt.model.options.adam.lr = 0.01f;
    opt.epochs = 20;
    opt.evaluate_validation = true;
    const auto result = plexus::core::train_plexus(g, opt);

    const double imbalance = pc::scheme_imbalance(g, scheme, 8, 8, opt.preprocess_seed);
    t.add_row({pc::scheme_name(scheme), Table::fmt(imbalance, 3),
               Table::fmt(result.epochs.back().loss, 4), Table::fmt(result.val_accuracy, 3),
               Table::fmt(result.avg_epoch_seconds(2) * 1e3, 3)});
  }
  t.print();
  std::printf("\nconvergence is scheme-independent (no approximations); the double permutation\n"
              "balances shards, removing the straggler that natural hub ordering creates.\n");
  return 0;
}
