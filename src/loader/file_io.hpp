#pragma once
/// \file file_io.hpp
/// Shared low-level binary file plumbing for the .plx formats (sharded
/// dataset blocks, checkpoint model state): the RAII stdio handle with a
/// checked close, and the pod/array read-write helpers with their uniform
/// failure messages. Internal to loader/ — the public surfaces are
/// shard_io.hpp and checkpoint.hpp.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "loader/file_hooks.hpp"  // checked_fread: the fault-injection seam
#include "loader/shard_io.hpp"    // LoadStats
#include "util/error.hpp"

namespace plexus::io {

/// Every .plx file of this repo starts with this magic ("PLXUS" + format
/// version). Bump the version when any on-disk layout changes — readers
/// reject mismatches instead of misinterpreting bytes.
inline constexpr std::uint64_t kPlxMagic = 0x504c585553'0002ULL;

/// RAII stdio handle. `fclose` is where buffered write errors surface (a
/// short flush on a full disk fails the close, not the fwrite), so write
/// scopes must end with the checked close(); the destructor is the
/// best-effort fallback for read files and for unwinding past an earlier
/// error, where a throw would terminate.
class File {
 public:
  File(std::FILE* f, std::string path) : f_(f), path_(std::move(path)) {}
  File(File&& o) noexcept : f_(std::exchange(o.f_, nullptr)), path_(std::move(o.path_)) {}
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  File& operator=(File&&) = delete;
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }

  std::FILE* get() const { return f_; }

  /// Flush + close, surfacing deferred write errors via PLEXUS_CHECK.
  void close() {
    if (f_ == nullptr) return;
    std::FILE* f = std::exchange(f_, nullptr);
    PLEXUS_CHECK(std::fclose(f) == 0, "close failed (buffered write error?) for " + path_);
  }

 private:
  std::FILE* f_ = nullptr;
  std::string path_;
};

inline File open_file(const std::string& path, const char* mode) {
  File f(std::fopen(path.c_str(), mode), path);
  PLEXUS_CHECK(f.get() != nullptr, "cannot open " + path);
  return f;
}

template <typename T>
void write_pod(std::FILE* f, const T& v) {
  PLEXUS_CHECK(std::fwrite(&v, sizeof(T), 1, f) == 1, "write failed");
}

template <typename T>
void write_array(std::FILE* f, const T* data, std::size_t count) {
  if (count == 0) return;
  PLEXUS_CHECK(std::fwrite(data, sizeof(T), count, f) == count, "write failed");
}

template <typename T>
T read_pod(std::FILE* f, LoadStats* stats) {
  T v{};
  PLEXUS_CHECK(checked_fread(&v, sizeof(T), 1, f) == 1, "read failed");
  if (stats != nullptr) stats->bytes_read += static_cast<std::int64_t>(sizeof(T));
  return v;
}

template <typename T>
std::vector<T> read_array(std::FILE* f, std::size_t count, LoadStats* stats) {
  std::vector<T> v(count);
  if (count > 0) {
    PLEXUS_CHECK(checked_fread(v.data(), sizeof(T), count, f) == count, "read failed");
  }
  if (stats != nullptr) {
    stats->bytes_read += static_cast<std::int64_t>(count * sizeof(T));
    stats->peak_host_bytes =
        std::max(stats->peak_host_bytes, static_cast<std::int64_t>(count * sizeof(T)));
  }
  return v;
}

}  // namespace plexus::io
