#pragma once
/// \file thread_pool.hpp
/// Intra-rank threaded kernel engine: a persistent worker pool plus a
/// deterministic, statically chunked `parallel_for`.
///
/// The simulator runs one std::thread per simulated GPU rank; inside a rank,
/// the host kernels (SpMM, GEMM, elementwise ops) were serial. This engine
/// parallelises those kernels across a per-rank thread budget without
/// changing results:
///
///  * **Determinism.** The loop range is cut into chunks whose boundaries
///    depend only on (range, grain) — or, when `grain == 0`, on the thread
///    budget — never on scheduling. Each output row/element is owned by
///    exactly one chunk, so kernels whose chunks write disjoint output are
///    bitwise-identical for any thread count. Reductions stay deterministic
///    by passing an explicit `grain` (a thread-count-independent chunk grid)
///    and combining per-chunk partials in chunk-index order on the caller.
///  * **Budgets, not globals.** Every thread carries its own budget
///    (`set_intra_rank_threads`); `sim::run_cluster` divides the hardware
///    concurrency across simulated ranks so an 8-rank run does not
///    oversubscribe. A fresh thread defaults to `PLEXUS_THREADS` (if set)
///    or 1, so serial entry points stay serial unless asked.
///  * **Nesting is safe.** A `parallel_for` issued from inside a running
///    body executes inline (pool workers carry a budget of 1), so kernels
///    may be composed freely from rank threads.
///
/// Exceptions thrown by a body are captured and the first one is rethrown on
/// the calling thread after all workers finish the job; output written by the
/// failed job is unspecified.

#include <cstdint>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace plexus::util {

/// Body of a chunked parallel loop: called once per non-empty chunk with the
/// chunk index and the chunk's half-open sub-range of [begin, end).
using ChunkBody = std::function<void(std::int64_t chunk, std::int64_t begin, std::int64_t end)>;
/// Chunk-oblivious body: just the half-open sub-range.
using RangeBody = std::function<void(std::int64_t begin, std::int64_t end)>;

/// Fixed-size pool of `num_threads - 1` workers; the calling thread acts as
/// executor 0 of every job. Chunks are assigned statically round-robin
/// (chunk c runs on executor c % num_threads).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// True while a job issued by the owning thread is in flight (owner-thread
  /// view; used to reject unsafe teardown from inside a body).
  bool busy() const { return running_; }

  /// Runs `body` over [begin, end). `grain > 0` cuts chunks of that size
  /// (last chunk short); `grain == 0` cuts one balanced chunk per thread.
  /// Must be called from the owning thread; a nested call from inside a body
  /// on that thread runs inline over the same chunk grid.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const ChunkBody& body);

 private:
  void worker_loop(int executor);
  void run_chunks(int executor);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t job_epoch_ = 0;
  int active_ = 0;     ///< workers still executing the current job
  bool stop_ = false;
  bool running_ = false;  ///< owner-thread reentrancy guard (owner reads/writes only)

  // Current job; written by the owner under mutex_ before workers are woken.
  const ChunkBody* body_ = nullptr;
  std::int64_t begin_ = 0;
  std::int64_t end_ = 0;
  std::int64_t grain_ = 0;
  std::int64_t num_chunks_ = 0;
  std::exception_ptr error_;
};

/// max(1, std::thread::hardware_concurrency()).
int hardware_threads();

/// Parsed value of the PLEXUS_THREADS environment variable (the process-wide
/// compute-thread budget), or 0 when unset/invalid.
int env_thread_override();

/// The calling thread's intra-rank thread budget. First use on a fresh thread
/// resolves to PLEXUS_THREADS when set, else 1.
int intra_rank_threads();

/// Sets the calling thread's budget (clamped to >= 1). The lazily built pool
/// is torn down and rebuilt on the next parallel loop if the size changed.
void set_intra_rank_threads(int n);

/// Number of chunks `parallel_for_grain(0, n, grain, ...)` will produce.
std::int64_t parallel_chunk_count(std::int64_t n, std::int64_t grain);

/// Estimated scalar-op count below which a loop is not worth a pool dispatch
/// (the wake/join handshake costs microseconds). The one cutoff every kernel
/// shares — tune here, not per call site.
inline constexpr std::int64_t kSerialWorkCutoff = std::int64_t{1} << 16;

/// Chunked parallel loop on the calling thread's engine (see ThreadPool).
/// Serial (budget 1) execution walks the identical chunk grid in index order,
/// so grain-fixed reductions match the threaded result bitwise.
void parallel_for_grain(std::int64_t begin, std::int64_t end, std::int64_t grain,
                        const ChunkBody& body);

/// Convenience wrapper: balanced per-thread chunks, chunk-oblivious body.
/// `work_estimate` is the loop's total scalar-op count when the caller can
/// estimate it; below kSerialWorkCutoff the body runs inline as one range.
/// -1 (unknown) always dispatches.
void parallel_for(std::int64_t begin, std::int64_t end, const RangeBody& body,
                  std::int64_t work_estimate = -1);

/// RAII budget override for benches and tests.
class ScopedIntraRankThreads {
 public:
  explicit ScopedIntraRankThreads(int n) : prev_(intra_rank_threads()) {
    set_intra_rank_threads(n);
  }
  ~ScopedIntraRankThreads() { set_intra_rank_threads(prev_); }
  ScopedIntraRankThreads(const ScopedIntraRankThreads&) = delete;
  ScopedIntraRankThreads& operator=(const ScopedIntraRankThreads&) = delete;

 private:
  int prev_;
};

}  // namespace plexus::util
