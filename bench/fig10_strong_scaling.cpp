// Figure 10: strong scaling of Plexus on all six datasets, on Perlmutter
// (GPUs) and Frontier (GCDs). Epoch times come from the unified performance
// model at the predicted-best 3D configuration per point; a functional
// cluster-simulation cross-check at 16 ranks validates the model's absolute
// scale on the proxies.
#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "perfmodel/perfmodel.hpp"
#include "sim/machine.hpp"
#include "util/table.hpp"

namespace {

using plexus::util::Table;
namespace pp = plexus::perf;
namespace pg = plexus::graph;

struct Range {
  const char* dataset;
  int min_gpus;
  int max_gpus;
};

void machine_table(const plexus::sim::Machine& m, const char* unit,
                   const std::vector<Range>& ranges, int global_max) {
  std::printf("\n-- Strong scaling on all datasets (%s), time per epoch (ms) --\n",
              m.name.c_str());
  std::vector<std::string> headers{std::string("#") + unit};
  for (const auto& r : ranges) headers.push_back(r.dataset);
  Table t(headers);
  for (int gpus = 4; gpus <= global_max; gpus *= 2) {
    std::vector<std::string> row{std::to_string(gpus)};
    for (const auto& r : ranges) {
      if (gpus < r.min_gpus || gpus > r.max_gpus) {
        row.push_back("-");
        continue;
      }
      const auto w = pp::WorkloadStats::from_dataset(pg::dataset_info(r.dataset));
      const auto grid = pp::best_configuration(m, w, gpus);
      row.push_back(plexus::bench::ms(pp::predict_epoch(m, w, grid).total(), 1));
    }
    t.add_row(row);
  }
  t.print();

  // Best configurations chosen by the model at the largest scale per dataset.
  std::printf("model-selected configs at max scale: ");
  for (const auto& r : ranges) {
    const auto w = pp::WorkloadStats::from_dataset(pg::dataset_info(r.dataset));
    std::printf("%s:%s  ", r.dataset,
                pp::grid_to_string(pp::best_configuration(m, w, r.max_gpus)).c_str());
  }
  std::printf("\n");
}

void functional_cross_check() {
  namespace pc = plexus::core;
  std::printf("\n-- functional cross-check (16 simulated ranks, proxies) --\n");
  Table t({"Dataset proxy", "Functional sim (ms)", "Model prediction (ms)"});
  const auto& m = plexus::sim::Machine::perlmutter_a100();
  for (const char* name : {"Reddit", "ogbn-products"}) {
    const auto g = plexus::bench::bench_proxy(name, 4000);
    pc::TrainOptions opt;
    opt.grid = {2, 4, 2};
    opt.machine = &m;
    opt.model.hidden_dims = {128, 128};
    opt.epochs = 3;
    const auto res = pc::train_plexus(g, opt);

    pp::WorkloadStats w;
    w.num_nodes = g.num_nodes;
    w.num_nonzeros = g.num_edges() + g.num_nodes;
    w.layer_dims = {g.feature_dim(), 128, 128, g.num_classes};
    t.add_row({name, plexus::bench::ms(res.avg_epoch_seconds(1), 2),
               plexus::bench::ms(pp::predict_epoch(m, w, opt.grid).total(), 2)});
  }
  t.print();
}

}  // namespace

int main() {
  plexus::bench::banner("Figure 10: Plexus strong scaling on six datasets, both machines",
                        "Figure 10 (section 7.2)");

  const std::vector<Range> perlmutter_ranges = {
      {"Reddit", 4, 512},        {"ogbn-products", 4, 1024}, {"Isolate-3-8M", 16, 1024},
      {"products-14M", 8, 1024}, {"europe_osm", 16, 1024},   {"ogbn-papers100M", 64, 2048},
  };
  machine_table(plexus::sim::Machine::perlmutter_a100(), "GPUs", perlmutter_ranges, 2048);

  const std::vector<Range> frontier_ranges = {
      {"Reddit", 4, 512},        {"ogbn-products", 4, 1024}, {"Isolate-3-8M", 32, 2048},
      {"products-14M", 8, 2048}, {"europe_osm", 16, 1024},   {"ogbn-papers100M", 128, 2048},
  };
  machine_table(plexus::sim::Machine::frontier_mi250x_gcd(), "GCDs", frontier_ranges, 2048);

  functional_cross_check();

  std::printf(
      "\nexpected shapes (paper section 7.2): denser graphs (Reddit, Isolate) scale further "
      "than sparser ones (ogbn-products, europe_osm); Frontier scales better overall because "
      "its SpMM is ~10x slower, keeping runs compute-bound longer; papers100M reaches the "
      "largest scale reported for full-graph GNN training.\n");
  return 0;
}
