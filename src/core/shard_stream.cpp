#include "core/shard_stream.hpp"

#include <exception>
#include <utility>

#include "core/dataset_view.hpp"

namespace plexus::core {

ShardStream::ShardStream(const DatasetView& view) : view_(&view) {
  thread_ = std::thread([this] { worker(); });
}

ShardStream::~ShardStream() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::future<BlockLoad> ShardStream::post(int version, std::int64_t r0, std::int64_t r1,
                                         std::int64_t c0, std::int64_t c1, bool transpose) {
  Job job;
  job.version = version;
  job.r0 = r0;
  job.r1 = r1;
  job.c0 = c0;
  job.c1 = c1;
  job.transpose = transpose;
  auto fut = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(std::move(job));
  }
  cv_.notify_one();
  return fut;
}

void ShardStream::worker() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      // Drain queued jobs even after stop: an epoch that unwound on an
      // exception may abandon posted loads, and their promises must still
      // be completed (exceptionally or not) before the thread exits.
      if (jobs_.empty()) break;
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    try {
      BlockLoad bl;
      bl.csr = view_->adjacency_block_counted(job.version, job.r0, job.r1, job.c0, job.c1,
                                              &bl.bytes_read);
      if (job.transpose) bl.csr = bl.csr.transposed();
      job.promise.set_value(std::move(bl));
    } catch (...) {
      job.promise.set_exception(std::current_exception());
    }
  }
}

}  // namespace plexus::core
