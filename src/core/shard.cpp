#include "core/shard.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace plexus::core {

Slice uniform_slice(std::int64_t extent, int parts, int idx) {
  PLEXUS_CHECK(parts > 0 && idx >= 0 && idx < parts, "bad slice index");
  PLEXUS_CHECK(extent % parts == 0,
               "extent not divisible by parts; preprocessing must pad to the grid volume");
  const std::int64_t w = extent / parts;
  return {idx * w, (idx + 1) * w};
}

BlockShard matrix_shard(std::int64_t rows, std::int64_t cols, const Grid3D& grid,
                        const Coords& c, Axis row_axis, Axis col_axis) {
  BlockShard s;
  s.rows = uniform_slice(rows, grid.extent(row_axis), Grid3D::coord(c, row_axis));
  s.cols = uniform_slice(cols, grid.extent(col_axis), Grid3D::coord(c, col_axis));
  return s;
}

dense::Matrix extract_block(const dense::Matrix& global, const Slice& rows, const Slice& cols) {
  return global.block(rows.begin, rows.end, cols.begin, cols.end);
}

Slice flat_slice_range(std::int64_t total_elems, int parts, int idx) {
  return uniform_slice(total_elems, parts, idx);
}

std::vector<float> flat_slice(const dense::Matrix& block, int parts, int idx) {
  const Slice s = flat_slice_range(block.size(), parts, idx);
  const auto flat = block.flat();
  return {flat.begin() + s.begin, flat.begin() + s.end};
}

float weight_init_value(std::uint64_t seed, int layer, std::int64_t r, std::int64_t c,
                        std::int64_t valid_rows, std::int64_t valid_cols) {
  if (r >= valid_rows || c >= valid_cols) return 0.0f;
  const float limit =
      std::sqrt(6.0f / static_cast<float>(std::max<std::int64_t>(1, valid_rows + valid_cols)));
  const util::CounterRng rng(util::hash_combine(seed, 0xabcd0000ULL + static_cast<std::uint64_t>(layer)));
  return rng.uniform_at(static_cast<std::uint64_t>(r * valid_cols + c), -limit, limit);
}

dense::Matrix init_weight_block(std::uint64_t seed, int layer, std::int64_t row_off,
                                std::int64_t col_off, std::int64_t rows, std::int64_t cols,
                                std::int64_t valid_rows, std::int64_t valid_cols) {
  dense::Matrix out(rows, cols);
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      out.at(i, j) = weight_init_value(seed, layer, row_off + i, col_off + j, valid_rows,
                                       valid_cols);
    }
  }
  return out;
}

}  // namespace plexus::core
