#include "loader/shard_io.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "loader/file_io.hpp"
#include "sparse/coo.hpp"
#include "sparse/partition2d.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace plexus::io {

namespace {

constexpr std::uint64_t kMagic = kPlxMagic;

std::string adj_path(const std::string& dir, const std::string& prefix, int r, int c) {
  return adjacency_block_path(dir, prefix, r, c);
}
std::string feat_path(const std::string& dir, int r) {
  return dir + "/feat_" + std::to_string(r) + ".plx";
}

/// Read one adjacency block file: header + CSR arrays.
struct AdjBlock {
  std::int64_t row0 = 0;
  std::int64_t col0 = 0;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::int64_t> row_ptr;
  std::vector<std::int32_t> col_idx;
  std::vector<float> vals;
};

AdjBlock read_adj_block(const std::string& path, LoadStats* stats) {
  auto f = open_file(path, "rb");
  if (stats != nullptr) stats->files_opened++;
  PLEXUS_CHECK(read_pod<std::uint64_t>(f.get(), stats) == kMagic, "bad magic in " + path);
  AdjBlock b;
  b.row0 = read_pod<std::int64_t>(f.get(), stats);
  b.col0 = read_pod<std::int64_t>(f.get(), stats);
  b.rows = read_pod<std::int64_t>(f.get(), stats);
  b.cols = read_pod<std::int64_t>(f.get(), stats);
  const auto nnz = read_pod<std::int64_t>(f.get(), stats);
  b.row_ptr = read_array<std::int64_t>(f.get(), static_cast<std::size_t>(b.rows) + 1, stats);
  b.col_idx = read_array<std::int32_t>(f.get(), static_cast<std::size_t>(nnz), stats);
  b.vals = read_array<float>(f.get(), static_cast<std::size_t>(nnz), stats);
  return b;
}

}  // namespace

std::string adjacency_block_path(const std::string& dir, const std::string& prefix, int r,
                                 int c) {
  return dir + "/" + prefix + "_" + std::to_string(r) + "_" + std::to_string(c) + ".plx";
}

void write_adjacency_blocks(const std::string& dir, const std::string& prefix,
                            const sparse::Csr& adj, std::int32_t grid_rows,
                            std::int32_t grid_cols) {
  std::filesystem::create_directories(dir);
  const auto rb = sparse::block_bounds(adj.rows(), grid_rows);
  const auto cb = sparse::block_bounds(adj.cols(), grid_cols);
  for (int r = 0; r < grid_rows; ++r) {
    for (int c = 0; c < grid_cols; ++c) {
      const auto blk = adj.block(rb[static_cast<std::size_t>(r)], rb[static_cast<std::size_t>(r) + 1],
                                 cb[static_cast<std::size_t>(c)], cb[static_cast<std::size_t>(c) + 1]);
      auto f = open_file(adj_path(dir, prefix, r, c), "wb");
      write_pod(f.get(), kMagic);
      write_pod(f.get(), rb[static_cast<std::size_t>(r)]);
      write_pod(f.get(), cb[static_cast<std::size_t>(c)]);
      write_pod(f.get(), blk.rows());
      write_pod(f.get(), blk.cols());
      write_pod(f.get(), blk.nnz());
      write_array(f.get(), blk.row_ptr().data(), blk.row_ptr().size());
      write_array(f.get(), blk.col_idx().data(), blk.col_idx().size());
      write_array(f.get(), blk.vals().data(), blk.vals().size());
      f.close();
    }
  }
}

void write_sharded_dataset(const std::string& dir, const sparse::Csr& adj,
                           const dense::Matrix& features,
                           const std::vector<std::int32_t>& labels, std::int64_t num_classes,
                           std::int32_t grid_rows, std::int32_t grid_cols) {
  PLEXUS_CHECK(adj.rows() == adj.cols() && adj.rows() == features.rows(), "shape mismatch");
  std::filesystem::create_directories(dir);

  {
    auto f = open_file(dir + "/meta.plx", "wb");
    write_pod(f.get(), kMagic);
    write_pod(f.get(), adj.rows());
    write_pod(f.get(), features.cols());
    write_pod(f.get(), num_classes);
    write_pod(f.get(), grid_rows);
    write_pod(f.get(), grid_cols);
    write_pod(f.get(), adj.nnz());
    f.close();
  }
  {
    auto f = open_file(dir + "/labels.plx", "wb");
    write_pod(f.get(), kMagic);
    write_pod(f.get(), static_cast<std::int64_t>(labels.size()));
    write_array(f.get(), labels.data(), labels.size());
    f.close();
  }

  write_adjacency_blocks(dir, "adj", adj, grid_rows, grid_cols);

  const auto rb = sparse::block_bounds(adj.rows(), grid_rows);
  for (int r = 0; r < grid_rows; ++r) {
    const auto r0 = rb[static_cast<std::size_t>(r)];
    const auto r1 = rb[static_cast<std::size_t>(r) + 1];
    auto f = open_file(feat_path(dir, r), "wb");
    write_pod(f.get(), kMagic);
    write_pod(f.get(), r0);
    write_pod(f.get(), r1 - r0);
    write_pod(f.get(), features.cols());
    write_array(f.get(), features.row(r0), static_cast<std::size_t>((r1 - r0) * features.cols()));
    f.close();
  }
}

void write_plexus_meta(const std::string& dir, const PlexusShardMeta& m) {
  std::filesystem::create_directories(dir);
  auto f = open_file(dir + "/pmeta.plx", "wb");
  write_pod(f.get(), kMagic);
  write_pod(f.get(), m.valid_nodes);
  write_pod(f.get(), m.valid_feature_dim);
  write_pod(f.get(), m.train_total);
  write_pod(f.get(), m.scheme);
  write_pod(f.get(), m.adjacency_versions);
  f.close();
}

void write_masks(const std::string& dir, const ShardedMasks& masks) {
  PLEXUS_CHECK(masks.train.size() == masks.val.size() && masks.val.size() == masks.test.size(),
               "mask length mismatch");
  std::filesystem::create_directories(dir);
  auto f = open_file(dir + "/masks.plx", "wb");
  write_pod(f.get(), kMagic);
  write_pod(f.get(), static_cast<std::int64_t>(masks.train.size()));
  write_array(f.get(), masks.train.data(), masks.train.size());
  write_array(f.get(), masks.val.data(), masks.val.size());
  write_array(f.get(), masks.test.data(), masks.test.size());
  f.close();
}

ShardedMeta read_meta(const std::string& dir) {
  auto f = open_file(dir + "/meta.plx", "rb");
  PLEXUS_CHECK(read_pod<std::uint64_t>(f.get(), nullptr) == kMagic, "bad magic in meta");
  ShardedMeta m;
  m.num_nodes = read_pod<std::int64_t>(f.get(), nullptr);
  m.feature_dim = read_pod<std::int64_t>(f.get(), nullptr);
  m.num_classes = read_pod<std::int64_t>(f.get(), nullptr);
  m.grid_rows = read_pod<std::int32_t>(f.get(), nullptr);
  m.grid_cols = read_pod<std::int32_t>(f.get(), nullptr);
  m.adjacency_nnz = read_pod<std::int64_t>(f.get(), nullptr);
  return m;
}

PlexusShardMeta read_plexus_meta(const std::string& dir) {
  auto f = open_file(dir + "/pmeta.plx", "rb");
  PLEXUS_CHECK(read_pod<std::uint64_t>(f.get(), nullptr) == kMagic, "bad magic in pmeta");
  PlexusShardMeta m;
  m.valid_nodes = read_pod<std::int64_t>(f.get(), nullptr);
  m.valid_feature_dim = read_pod<std::int64_t>(f.get(), nullptr);
  m.train_total = read_pod<std::int64_t>(f.get(), nullptr);
  m.scheme = read_pod<std::int32_t>(f.get(), nullptr);
  m.adjacency_versions = read_pod<std::int32_t>(f.get(), nullptr);
  return m;
}

ShardedMasks load_masks(const std::string& dir) {
  auto f = open_file(dir + "/masks.plx", "rb");
  PLEXUS_CHECK(read_pod<std::uint64_t>(f.get(), nullptr) == kMagic, "bad magic in masks");
  const auto n = read_pod<std::int64_t>(f.get(), nullptr);
  ShardedMasks m;
  m.train = read_array<std::uint8_t>(f.get(), static_cast<std::size_t>(n), nullptr);
  m.val = read_array<std::uint8_t>(f.get(), static_cast<std::size_t>(n), nullptr);
  m.test = read_array<std::uint8_t>(f.get(), static_cast<std::size_t>(n), nullptr);
  return m;
}

sparse::Csr load_adjacency_block(const std::string& dir, std::int64_t r0, std::int64_t r1,
                                 std::int64_t c0, std::int64_t c1, LoadStats* stats,
                                 const std::string& prefix) {
  util::WallTimer timer;
  const auto meta = read_meta(dir);
  const auto rb = sparse::block_bounds(meta.num_nodes, meta.grid_rows);
  const auto cb = sparse::block_bounds(meta.num_nodes, meta.grid_cols);

  sparse::Coo coo;
  coo.num_rows = r1 - r0;
  coo.num_cols = c1 - c0;
  std::int64_t buffered = 0;
  for (int r = 0; r < meta.grid_rows; ++r) {
    if (rb[static_cast<std::size_t>(r) + 1] <= r0 || rb[static_cast<std::size_t>(r)] >= r1) continue;
    for (int c = 0; c < meta.grid_cols; ++c) {
      if (cb[static_cast<std::size_t>(c) + 1] <= c0 || cb[static_cast<std::size_t>(c)] >= c1) {
        continue;
      }
      const auto blk = read_adj_block(adj_path(dir, prefix, r, c), stats);
      buffered += static_cast<std::int64_t>(blk.col_idx.size() * 8 + blk.row_ptr.size() * 8);
      // Extract the intersection with the requested window.
      for (std::int64_t lr = 0; lr < blk.rows; ++lr) {
        const auto gr = blk.row0 + lr;
        if (gr < r0 || gr >= r1) continue;
        for (std::int64_t k = blk.row_ptr[static_cast<std::size_t>(lr)];
             k < blk.row_ptr[static_cast<std::size_t>(lr) + 1]; ++k) {
          const auto gc = blk.col0 + blk.col_idx[static_cast<std::size_t>(k)];
          if (gc < c0 || gc >= c1) continue;
          coo.push(gr - r0, gc - c0, blk.vals[static_cast<std::size_t>(k)]);
        }
      }
    }
  }
  if (stats != nullptr) {
    stats->peak_host_bytes = std::max(stats->peak_host_bytes, buffered);
    stats->seconds += timer.seconds();
  }
  return sparse::Csr::from_coo(coo, false);
}

dense::Matrix load_feature_block(const std::string& dir, std::int64_t r0, std::int64_t r1,
                                 std::int64_t c0, std::int64_t c1, LoadStats* stats) {
  util::WallTimer timer;
  const auto meta = read_meta(dir);
  const auto rb = sparse::block_bounds(meta.num_nodes, meta.grid_rows);
  dense::Matrix out(r1 - r0, c1 - c0);
  for (int r = 0; r < meta.grid_rows; ++r) {
    const auto b0 = rb[static_cast<std::size_t>(r)];
    const auto b1 = rb[static_cast<std::size_t>(r) + 1];
    if (b1 <= r0 || b0 >= r1) continue;
    auto f = open_file(feat_path(dir, r), "rb");
    if (stats != nullptr) stats->files_opened++;
    PLEXUS_CHECK(read_pod<std::uint64_t>(f.get(), stats) == kMagic, "bad magic");
    const auto row0 = read_pod<std::int64_t>(f.get(), stats);
    const auto rows = read_pod<std::int64_t>(f.get(), stats);
    const auto cols = read_pod<std::int64_t>(f.get(), stats);
    const auto data = read_array<float>(f.get(), static_cast<std::size_t>(rows * cols), stats);
    for (std::int64_t lr = 0; lr < rows; ++lr) {
      const auto gr = row0 + lr;
      if (gr < r0 || gr >= r1) continue;
      for (std::int64_t c = c0; c < std::min(c1, cols); ++c) {
        out.at(gr - r0, c - c0) = data[static_cast<std::size_t>(lr * cols + c)];
      }
    }
  }
  if (stats != nullptr) stats->seconds += timer.seconds();
  return out;
}

sparse::Csr load_adjacency_block_naive(const std::string& dir, std::int64_t r0, std::int64_t r1,
                                       std::int64_t c0, std::int64_t c1, LoadStats* stats,
                                       const std::string& prefix) {
  util::WallTimer timer;
  const auto meta = read_meta(dir);
  // Read every block, reassemble the full matrix, then slice — the "load the
  // whole dataset into CPU memory first" pattern of many GNN frameworks.
  sparse::Coo coo;
  coo.num_rows = meta.num_nodes;
  coo.num_cols = meta.num_nodes;
  for (int r = 0; r < meta.grid_rows; ++r) {
    for (int c = 0; c < meta.grid_cols; ++c) {
      const auto blk = read_adj_block(adj_path(dir, prefix, r, c), stats);
      for (std::int64_t lr = 0; lr < blk.rows; ++lr) {
        for (std::int64_t k = blk.row_ptr[static_cast<std::size_t>(lr)];
             k < blk.row_ptr[static_cast<std::size_t>(lr) + 1]; ++k) {
          coo.push(blk.row0 + lr, blk.col0 + blk.col_idx[static_cast<std::size_t>(k)],
                   blk.vals[static_cast<std::size_t>(k)]);
        }
      }
    }
  }
  if (stats != nullptr) {
    stats->peak_host_bytes =
        std::max(stats->peak_host_bytes, static_cast<std::int64_t>(coo.nnz() * 16));
  }
  const auto full = sparse::Csr::from_coo(coo, false);
  const auto out = full.block(r0, r1, c0, c1);
  if (stats != nullptr) stats->seconds += timer.seconds();
  return out;
}

std::vector<std::int32_t> load_labels(const std::string& dir) {
  auto f = open_file(dir + "/labels.plx", "rb");
  PLEXUS_CHECK(read_pod<std::uint64_t>(f.get(), nullptr) == kMagic, "bad magic in labels");
  const auto n = read_pod<std::int64_t>(f.get(), nullptr);
  return read_array<std::int32_t>(f.get(), static_cast<std::size_t>(n), nullptr);
}

}  // namespace plexus::io
