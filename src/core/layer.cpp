#include "core/layer.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <span>
#include <string>
#include <utility>

#include "core/shard_stream.hpp"
#include "dense/gemm.hpp"
#include "dense/ops.hpp"
#include "sim/kernels.hpp"
#include "sparse/partition2d.hpp"
#include "sparse/spmm.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace plexus::core {

namespace {

/// Retire the oldest in-flight per-block collectives until at most
/// `depth - 1` remain (depth 1 = fully blocking). Exposed comm time is
/// charged inside wait() from the handle's completion ordering.
void trim_pipeline(std::deque<comm::CommHandle>& inflight, int depth) {
  while (static_cast<int>(inflight.size()) >= depth) {
    inflight.front().wait();
    inflight.pop_front();
  }
}

void drain_pipeline(std::deque<comm::CommHandle>& inflight) {
  while (!inflight.empty()) {
    inflight.front().wait();
    inflight.pop_front();
  }
}

}  // namespace

const char* aggregation_name(Aggregation a) { return util::enum_name(a); }

bool aggregation_from_string(std::string_view s, Aggregation& out) {
  return util::enum_from_string(s, out);
}

Aggregation default_aggregation() {
  const char* s = std::getenv("PLEXUS_AGG");
  if (s == nullptr || *s == '\0') return Aggregation::Dense;
  Aggregation a = Aggregation::Dense;
  if (!aggregation_from_string(s, a)) return Aggregation::Dense;  // malformed: default
  return a;
}

std::optional<Aggregation> env_aggregation() {
  const char* s = std::getenv("PLEXUS_AGG");
  if (s == nullptr || *s == '\0') return std::nullopt;
  Aggregation a = Aggregation::Dense;
  if (!aggregation_from_string(s, a)) return std::nullopt;  // malformed: inherit
  return a;
}

DistGcnLayer::DistGcnLayer(std::int64_t padded_nodes, const Grid3D& grid, int rank,
                           int layer_index, int num_layers, std::int64_t in_dim_padded,
                           std::int64_t out_dim_padded, std::int64_t in_dim_valid,
                           std::int64_t out_dim_valid, const AdjacencyShard* adj,
                           const PlexusOptions& opts, std::uint64_t seed, ShardStream* stream,
                           const LayerStreamPlan* stream_plan)
    : grid_(&grid),
      adj_(adj),
      stream_(stream),
      splan_(stream_plan),
      opts_(opts),
      layer_(layer_index),
      roles_(roles_for_layer(layer_index)) {
  PLEXUS_CHECK(layer_index >= 0 && layer_index < num_layers, "bad layer index");
  const Coords c = grid.coords_of(rank);
  ext_p_ = grid.extent(roles_.p);
  ext_q_ = grid.extent(roles_.q);
  ext_r_ = grid.extent(roles_.r);
  coord_p_ = Grid3D::coord(c, roles_.p);
  coord_q_ = Grid3D::coord(c, roles_.q);
  coord_r_ = Grid3D::coord(c, roles_.r);
  p_group_ = grid.group_along(roles_.p, rank);
  q_group_ = grid.group_along(roles_.q, rank);
  r_group_ = grid.group_along(roles_.r, rank);

  rows_r_ = padded_nodes / ext_r_;
  rows_p_ = padded_nodes / ext_p_;
  din_q_ = in_dim_padded / ext_q_;
  dout_p_ = out_dim_padded / ext_p_;
  PLEXUS_CHECK(in_dim_padded % ext_q_ == 0 && out_dim_padded % ext_p_ == 0,
               "layer dims must be padded to the grid volume");
  if (adj_ != nullptr) {
    PLEXUS_CHECK(adj_->a.rows() == rows_r_ && adj_->a.cols() == rows_p_,
                 "adjacency shard does not match layer roles");
  } else {
    PLEXUS_CHECK(stream_ != nullptr && splan_ != nullptr,
                 "layer needs an adjacency shard or a stream plan");
    PLEXUS_CHECK(splan_->rows.size() == rows_r_ && splan_->cols.size() == rows_p_,
                 "stream plan does not match layer roles");
    // The selective exchange plans from the resident nnz structure, which a
    // streamed shard does not have — the model forces Dense when streaming.
    PLEXUS_CHECK(opts_.aggregation == Aggregation::Dense,
                 "streaming epochs require dense aggregation");
  }

  // W block (rows = Q slice of Din, cols = P slice of Dout), flat 1/R slice.
  const Slice wrows = uniform_slice(in_dim_padded, ext_q_, coord_q_);
  const Slice wcols = uniform_slice(out_dim_padded, ext_p_, coord_p_);
  const dense::Matrix w_block = init_weight_block(seed, layer_index, wrows.begin, wcols.begin,
                                                  wrows.size(), wcols.size(), in_dim_valid,
                                                  out_dim_valid);
  w_slice_ = flat_slice(w_block, ext_r_, coord_r_);
  dw_slice_.assign(w_slice_.size(), 0.0f);
  adam_ = dense::Adam(w_slice_.size(), opts.adam);
}

void DistGcnLayer::restore_state(std::span<const float> w, std::span<const float> m,
                                 std::span<const float> v, std::int64_t adam_t) {
  PLEXUS_CHECK(w.size() == w_slice_.size(), "restored weight slice size mismatch");
  std::copy(w.begin(), w.end(), w_slice_.begin());
  adam_.set_state(m, v, adam_t);
}

comm::CommHandle DistGcnLayer::igathered_weights(sim::RankContext& ctx, dense::Matrix& w_block) {
  w_block = dense::Matrix(din_q_, dout_p_);
  return ctx.comm.iall_gather<float>(r_group_, w_slice_, w_block.flat());
}

dense::Matrix DistGcnLayer::gathered_weights(sim::RankContext& ctx) {
  dense::Matrix w_block;
  igathered_weights(ctx, w_block).wait();
  return w_block;
}

dense::Matrix DistGcnLayer::gather_weight_block(sim::RankContext& ctx) {
  return gathered_weights(ctx);
}

int DistGcnLayer::resolve_depth(sim::RankContext& ctx, const sparse::Csr& a,
                                const std::vector<std::int64_t>& bounds,
                                std::int64_t dense_rows, comm::GroupId gid,
                                comm::Collective op, int* cache) {
  if (opts_.pipeline_depth > 0) return opts_.pipeline_depth;
  if (*cache > 0) return *cache;
  // Adaptive (pipeline_depth == 0): pick the depth from the exact per-block
  // costs — the fastest block's noise-free SpMM time (noise only slows blocks
  // down, so this lower-bounds the hiding window) against the largest block's
  // ring time on this group's links.
  const int nb = static_cast<int>(bounds.size()) - 1;
  double t_spmm_min = 0.0;
  std::int64_t max_rows = 0;
  bool any = false;
  for (int k = 0; k < nb; ++k) {
    const std::int64_t b0 = bounds[static_cast<std::size_t>(k)];
    const std::int64_t b1 = bounds[static_cast<std::size_t>(k) + 1];
    if (b0 == b1) continue;
    const sim::SpmmShape shape{a.range_nnz(b0, b1), b1 - b0, dense_rows, din_q_};
    const double t = sim::spmm_time(*ctx.machine, shape);
    t_spmm_min = any ? std::min(t_spmm_min, t) : t;
    max_rows = std::max(max_rows, b1 - b0);
    any = true;
  }
  const auto& g = ctx.comm.world().group(gid);
  // Price what the links actually carry: bf16 wire halves the per-element
  // volume, shrinking the hiding window and therefore the adaptive depth.
  const auto eb = static_cast<std::int64_t>(ctx.comm.wire_float_bytes());
  const double t_ring = comm::collective_time(op, eb * max_rows * din_q_, g.size(), g.link,
                                              g.a2a_distance_penalty);
  *cache = comm::choose_pipeline_depth(t_spmm_min, t_ring, nb);
  return *cache;
}

namespace {

/// Largest block length and nonempty block count of a bounds vector.
void bounds_shape(const std::vector<std::int64_t>& bounds, std::int64_t* max_rows,
                  int* nonempty) {
  *max_rows = 0;
  *nonempty = 0;
  for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
    const std::int64_t len = bounds[k + 1] - bounds[k];
    if (len == 0) continue;
    ++*nonempty;
    *max_rows = std::max(*max_rows, len);
  }
}

}  // namespace

int DistGcnLayer::resolve_depth_streamed(sim::RankContext& ctx,
                                         const std::vector<std::int64_t>& bounds,
                                         std::int64_t dense_rows, comm::GroupId gid,
                                         comm::Collective op, int* cache) {
  if (opts_.pipeline_depth > 0) return opts_.pipeline_depth;
  if (*cache > 0) return *cache;
  const int nb = static_cast<int>(bounds.size()) - 1;
  std::int64_t max_rows = 0;
  int nonempty = 0;
  bounds_shape(bounds, &max_rows, &nonempty);
  const std::int64_t est_nnz =
      std::max<std::int64_t>(1, splan_->est_nnz / std::max(1, nonempty));
  const sim::SpmmShape shape{est_nnz, std::max<std::int64_t>(1, max_rows), dense_rows, din_q_};
  const double t_spmm = sim::spmm_time(*ctx.machine, shape);
  const auto& g = ctx.comm.world().group(gid);
  const auto eb = static_cast<std::int64_t>(ctx.comm.wire_float_bytes());
  const double t_ring = comm::collective_time(op, eb * max_rows * din_q_, g.size(), g.link,
                                              g.a2a_distance_penalty);
  *cache = comm::choose_pipeline_depth(t_spmm, t_ring, nb);
  return *cache;
}

int DistGcnLayer::resolve_prefetch_depth(sim::RankContext& ctx,
                                         const std::vector<std::int64_t>& bounds,
                                         std::int64_t dense_rows, int* cache) {
  const int nb = static_cast<int>(bounds.size()) - 1;
  if (opts_.prefetch_depth > 0) return std::clamp(opts_.prefetch_depth, 1, std::max(1, nb));
  if (*cache > 0) return *cache;
  std::int64_t max_rows = 0;
  int nonempty = 0;
  bounds_shape(bounds, &max_rows, &nonempty);
  const std::int64_t est_nnz =
      std::max<std::int64_t>(1, splan_->est_nnz / std::max(1, nonempty));
  // On-disk bytes of one block window: col idx (i32) + value (f32) per
  // nonzero, plus the row-pointer run.
  const std::int64_t block_bytes = est_nnz * 8 + (max_rows + 1) * 8;
  const double t_disk = static_cast<double>(block_bytes) / ctx.machine->disk_bw;
  const sim::SpmmShape shape{est_nnz, std::max<std::int64_t>(1, max_rows), dense_rows, din_q_};
  const double t_spmm = sim::spmm_time(*ctx.machine, shape);
  std::int64_t depth = comm::choose_pipeline_depth(t_spmm, t_disk, nb);
  if (opts_.rss_budget_bytes >= 0) {
    // In-flight windows are pinned (they dodge the cache's trim), so the
    // prefetch window itself must fit the budget.
    depth = std::min(depth, std::max<std::int64_t>(1, opts_.rss_budget_bytes / block_bytes));
  }
  *cache = std::clamp(static_cast<int>(depth), 1, std::max(1, nb));
  return *cache;
}

void DistGcnLayer::build_sparse_plan(sim::RankContext& ctx, SparsePlan& plan,
                                     const sparse::Csr& a, std::int64_t rows,
                                     std::int64_t dense_rows, int G, comm::GroupId gid,
                                     bool scatter) {
  plan.built = true;
  plan.sparse = false;
  plan.scatter = scatter;
  plan.blocks.clear();
  if (G <= 1) return;  // nothing to exchange: dense fallback
  const int nb = std::max(1, opts_.agg_row_blocks);
  PLEXUS_CHECK(rows % G == 0, "sparse aggregation: rows not padded to the group");
  plan.bounds = sparse::block_bounds_aligned(rows, nb, G);
  const int nblk = static_cast<int>(plan.bounds.size()) - 1;

  // Support scan: which rows of each block my CSR shard actually touches.
  std::vector<std::vector<std::int32_t>> support(static_cast<std::size_t>(nblk));
  std::vector<std::int64_t> counts(static_cast<std::size_t>(nblk), 0);
  for (int k = 0; k < nblk; ++k) {
    const std::int64_t b0 = plan.bounds[static_cast<std::size_t>(k)];
    const std::int64_t b1 = plan.bounds[static_cast<std::size_t>(k) + 1];
    auto& s = support[static_cast<std::size_t>(k)];
    for (std::int64_t r = b0; r < b1; ++r) {
      if (a.row_nnz(r) > 0) s.push_back(static_cast<std::int32_t>(r - b0));
    }
    counts[static_cast<std::size_t>(k)] = static_cast<std::int64_t>(s.size());
  }

  // Gather every member's per-block support counts: the shared input for the
  // dense-vs-sparse decision (and the straggler term of the cost model), so
  // every member decides identically.
  std::vector<std::int64_t> all_counts(static_cast<std::size_t>(nblk) * static_cast<std::size_t>(G));
  ctx.comm.all_gather<std::int64_t>(gid, counts, all_counts);

  const auto& g = ctx.comm.world().group(gid);
  // Feature payloads are priced at their wire width (fp32 or bf16): the
  // dense-vs-sparse choice must compare what the links would really carry.
  const auto wire_eb = static_cast<std::int64_t>(ctx.comm.wire_float_bytes());
  double t_dense = 0.0, t_sparse = 0.0;
  std::int64_t max_support = 0, max_blk_rows = 0;
  int nonempty = 0;
  for (int k = 0; k < nblk; ++k) {
    const std::int64_t blk_rows =
        plan.bounds[static_cast<std::size_t>(k) + 1] - plan.bounds[static_cast<std::size_t>(k)];
    if (blk_rows == 0) continue;
    ++nonempty;
    std::int64_t s_max = 0;
    for (int m = 0; m < G; ++m) {
      s_max = std::max(s_max, all_counts[static_cast<std::size_t>(m) *
                                             static_cast<std::size_t>(nblk) +
                                         static_cast<std::size_t>(k)]);
    }
    const std::int64_t dense_bytes = blk_rows * din_q_ * wire_eb;
    const std::int64_t support_bytes = s_max * din_q_ * wire_eb;
    t_dense += comm::dense_aggregation_time(dense_bytes, scatter, G, g.link,
                                            g.a2a_distance_penalty);
    t_sparse += comm::sparse_aggregation_time(dense_bytes, support_bytes, scatter, G, g.link,
                                              g.a2a_distance_penalty);
    max_support = std::max(max_support, s_max);
    max_blk_rows = std::max(max_blk_rows, blk_rows);
  }
  if (nonempty == 0) return;
  if (opts_.aggregation == Aggregation::Auto && t_sparse >= t_dense) return;
  plan.sparse = true;

  // Group-uniform pipeline depth: the sparse loop interleaves two collective
  // stages on one group, so unlike the dense path every member must post the
  // same op sequence — resolve the adaptive choice to the group max.
  int depth = opts_.pipeline_depth;
  if (depth <= 0) {
    double t_spmm_min = 0.0;
    bool any = false;
    for (int k = 0; k < nblk; ++k) {
      const std::int64_t b0 = plan.bounds[static_cast<std::size_t>(k)];
      const std::int64_t b1 = plan.bounds[static_cast<std::size_t>(k) + 1];
      if (b0 == b1) continue;
      const sim::SpmmShape shape{a.range_nnz(b0, b1), b1 - b0, dense_rows, din_q_};
      const double t = sim::spmm_time(*ctx.machine, shape);
      t_spmm_min = any ? std::min(t_spmm_min, t) : t;
      any = true;
    }
    const double t_ring = comm::sparse_aggregation_time(
        max_blk_rows * din_q_ * wire_eb, max_support * din_q_ * wire_eb, scatter, G, g.link,
        g.a2a_distance_penalty);
    const int local = comm::choose_pipeline_depth(t_spmm_min, t_ring, nonempty);
    depth = static_cast<int>(ctx.comm.all_reduce_max_scalar(gid, static_cast<double>(local)));
  }
  plan.depth = std::max(1, depth);

  // Per-block row-list exchange + persistent staging. Each block's rows are
  // split into G equal chunks, chunk c owned by member c; the ascending
  // support list is naturally packed by destination chunk.
  plan.blocks.resize(static_cast<std::size_t>(nblk));
  for (int k = 0; k < nblk; ++k) {
    auto& blk = plan.blocks[static_cast<std::size_t>(k)];
    blk.b0 = plan.bounds[static_cast<std::size_t>(k)];
    blk.b1 = plan.bounds[static_cast<std::size_t>(k) + 1];
    if (blk.b0 == blk.b1) continue;
    const std::int64_t cr = (blk.b1 - blk.b0) / G;  // chunk rows
    blk.send_rows = std::move(support[static_cast<std::size_t>(k)]);
    std::vector<std::vector<std::int32_t>> to_owner(static_cast<std::size_t>(G));
    for (const auto r : blk.send_rows) {
      const auto c = static_cast<std::size_t>(r / cr);
      to_owner[c].push_back(static_cast<std::int32_t>(r - static_cast<std::int64_t>(c) * cr));
    }
    ctx.comm.all_to_all_v<std::int32_t>(gid, to_owner, blk.src_rows);
    blk.send_counts.resize(static_cast<std::size_t>(G));
    blk.recv_counts.resize(static_cast<std::size_t>(G));
    std::int64_t recv_total = 0;
    for (int m = 0; m < G; ++m) {
      blk.send_counts[static_cast<std::size_t>(m)] =
          static_cast<std::int64_t>(to_owner[static_cast<std::size_t>(m)].size()) * din_q_;
      blk.recv_counts[static_cast<std::size_t>(m)] =
          static_cast<std::int64_t>(blk.src_rows[static_cast<std::size_t>(m)].size()) * din_q_;
      recv_total += blk.recv_counts[static_cast<std::size_t>(m)];
    }
    blk.send_buf.resize(blk.send_rows.size() * static_cast<std::size_t>(din_q_));
    blk.recv_buf.resize(static_cast<std::size_t>(recv_total));
    if (!scatter) blk.chunk_buf.resize(static_cast<std::size_t>(cr * din_q_));
  }
}

void DistGcnLayer::fold_sparse_chunk(const SparseBlockPlan& blk, std::span<float> out) const {
  // Zero-prefill, then accumulate every contribution in canonical member
  // order — per element the same left-fold over (mostly +0.0) partials the
  // dense transports apply, so the reduced values match the dense collectives
  // bitwise.
  std::fill(out.begin(), out.end(), 0.0f);
  const float* src = blk.recv_buf.data();
  for (const auto& rows : blk.src_rows) {
    for (const auto r : rows) {
      float* dst = out.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(din_q_);
      for (std::int64_t d = 0; d < din_q_; ++d) dst[d] += src[d];
      src += din_q_;
    }
  }
}

dense::Matrix DistGcnLayer::forward(sim::RankContext& ctx, const dense::Matrix& f_in, bool last,
                                    std::uint64_t epoch_seed, KernelTimers& timers) {
  PLEXUS_CHECK(f_in.rows() == rows_p_ && f_in.cols() == din_q_, "forward input block shape");
  const sim::Machine& m = *ctx.machine;

  // ---- Step 1: aggregation H = SpMM(A, F), all-reduced over the P group.
  // Blocked aggregation (section 5.2) as a true software pipeline: block k's
  // all-reduce executes on the comm thread while later blocks' SpMMs run
  // here, with up to pipeline_depth - 1 collectives in flight. The exposed
  // communication charge falls out of each handle's completion ordering
  // against this rank's clock — there is no hand-fed overlap credit.
  //
  // The weight gather over R depends only on w_slice_, so it is posted before
  // the aggregation and retired just before the combination GEMM: on the sim
  // timeline it hides behind the SpMM blocks instead of charging full latency.
  h_ = dense::Matrix(rows_r_, din_q_);
  const int nb = std::max(1, opts_.agg_row_blocks);

  dense::Matrix w_block;
  comm::CommHandle w_gather = igathered_weights(ctx, w_block);

  // Sparse selective aggregation (lazily planned; Auto may fall back to
  // dense). The plan build runs its own collectives, so it happens here — in
  // SPMD lockstep at every member's first forward.
  if (opts_.aggregation != Aggregation::Dense && !fwd_sparse_.built) {
    build_sparse_plan(ctx, fwd_sparse_, adj_->a, rows_r_, rows_p_, ext_p_, p_group_,
                      /*scatter=*/false);
  }
  const bool sparse_agg = opts_.aggregation != Aggregation::Dense && fwd_sparse_.sparse;

  // The streamed path charges the block's own nnz (== range_nnz of the
  // assembled shard), so the sim cost — noise seed included — is identical
  // to the resident path's.
  auto charge_spmm_block = [&](std::int64_t nnz, std::int64_t b0, std::int64_t b1, int k) {
    const sim::SpmmShape shape{nnz, b1 - b0, rows_p_, din_q_};
    const std::uint64_t noise_seed = util::hash_combine(
        epoch_seed, util::hash_combine(static_cast<std::uint64_t>(layer_),
                                       util::hash_combine(static_cast<std::uint64_t>(ctx.rank()),
                                                          static_cast<std::uint64_t>(k))));
    const double t_block = sim::spmm_time(m, shape) * sim::spmm_noise_factor(m, shape, noise_seed);
    ctx.comm.charge_compute(t_block);
    timers.spmm += t_block;
  };

  if (stream_ != nullptr) {
    // Out-of-core aggregation (the streaming epoch): block loads are posted
    // as IO handles into their own pipeline deque, so disk reads (and any
    // cache misses behind them) overlap earlier blocks' SpMMs exactly like
    // the per-block collectives do. Only the wait that compute could not
    // cover lands in timers.io_exposed.
    const auto bounds = sparse::block_bounds(rows_r_, nb);
    const int depth = resolve_depth_streamed(ctx, bounds, rows_p_, p_group_,
                                             comm::Collective::AllReduce, &fwd_depth_);
    const int pf = resolve_prefetch_depth(ctx, bounds, rows_p_, &fwd_io_depth_);
    std::deque<std::pair<std::future<BlockLoad>, int>> loads;
    int next = 0;
    auto fill = [&] {
      while (static_cast<int>(loads.size()) < pf && next < nb) {
        const int k = next++;
        const std::int64_t b0 = bounds[static_cast<std::size_t>(k)];
        const std::int64_t b1 = bounds[static_cast<std::size_t>(k) + 1];
        if (b0 == b1) continue;
        loads.emplace_back(stream_->post(splan_->version, splan_->rows.begin + b0,
                                         splan_->rows.begin + b1, splan_->cols.begin,
                                         splan_->cols.end, /*transpose=*/false),
                           k);
      }
    };
    fill();
    std::deque<comm::CommHandle> inflight;
    while (!loads.empty()) {
      const int k = loads.front().second;
      util::WallTimer io_timer;
      BlockLoad bl = loads.front().first.get();
      timers.io_exposed += io_timer.seconds();
      timers.io_bytes += bl.bytes_read;
      loads.pop_front();
      fill();  // repost before computing, so the IO worker never idles
      const std::int64_t b0 = bounds[static_cast<std::size_t>(k)];
      const std::int64_t b1 = bounds[static_cast<std::size_t>(k) + 1];
      sparse::spmm_into_rows(bl.csr, f_in, h_, b0);
      charge_spmm_block(bl.csr.nnz(), b0, b1, k);
      std::span<float> rows{h_.row(b0), static_cast<std::size_t>((b1 - b0) * din_q_)};
      inflight.push_back(ctx.comm.iall_reduce_sum<float>(p_group_, rows));
      trim_pipeline(inflight, depth);
    }
    drain_pipeline(inflight);
  } else if (sparse_agg) {
    // Per block: SpMM, pack the support rows, sparse all-to-all to the chunk
    // owners; on retire, fold the received contributions into the reduced
    // chunk and re-gather the equal chunks with a dense all-gather. Two
    // pipelined stages, both trimmed to the plan's group-uniform depth.
    const auto& bounds = fwd_sparse_.bounds;
    const int nblk = static_cast<int>(bounds.size()) - 1;
    std::deque<std::pair<comm::CommHandle, int>> exchange;
    std::deque<comm::CommHandle> gathers;
    auto advance_exchange = [&]() {
      exchange.front().first.wait();
      auto& blk = fwd_sparse_.blocks[static_cast<std::size_t>(exchange.front().second)];
      fold_sparse_chunk(blk, blk.chunk_buf);
      std::span<float> rows{h_.row(blk.b0), static_cast<std::size_t>((blk.b1 - blk.b0) * din_q_)};
      gathers.push_back(ctx.comm.iall_gather<float>(
          p_group_, std::span<const float>(blk.chunk_buf), rows));
      exchange.pop_front();
    };
    for (int k = 0; k < nblk; ++k) {
      const std::int64_t b0 = bounds[static_cast<std::size_t>(k)];
      const std::int64_t b1 = bounds[static_cast<std::size_t>(k) + 1];
      if (b0 == b1) continue;  // bounds are grid-derived, identical on all members
      sparse::spmm_rows(adj_->a, f_in, h_, b0, b1);
      charge_spmm_block(adj_->a.range_nnz(b0, b1), b0, b1, k);
      auto& blk = fwd_sparse_.blocks[static_cast<std::size_t>(k)];
      float* sp = blk.send_buf.data();
      for (const auto r : blk.send_rows) {
        std::memcpy(sp, h_.row(b0 + r), static_cast<std::size_t>(din_q_) * sizeof(float));
        sp += din_q_;
      }
      exchange.emplace_back(
          ctx.comm.iall_to_all_v<float>(p_group_, std::span<const float>(blk.send_buf),
                                        blk.send_counts.data(), std::span<float>(blk.recv_buf),
                                        blk.recv_counts.data()),
          k);
      while (static_cast<int>(exchange.size()) >= fwd_sparse_.depth) advance_exchange();
      trim_pipeline(gathers, fwd_sparse_.depth);
    }
    while (!exchange.empty()) advance_exchange();
    drain_pipeline(gathers);
  } else {
    const auto bounds = sparse::block_bounds(rows_r_, nb);
    const int depth = resolve_depth(ctx, adj_->a, bounds, rows_p_, p_group_,
                                    comm::Collective::AllReduce, &fwd_depth_);
    std::deque<comm::CommHandle> inflight;
    for (int k = 0; k < nb; ++k) {
      const std::int64_t b0 = bounds[static_cast<std::size_t>(k)];
      const std::int64_t b1 = bounds[static_cast<std::size_t>(k) + 1];
      if (b0 == b1) continue;  // bounds are grid-derived, identical on all members
      sparse::spmm_rows(adj_->a, f_in, h_, b0, b1);
      charge_spmm_block(adj_->a.range_nnz(b0, b1), b0, b1, k);
      std::span<float> rows{h_.row(b0), static_cast<std::size_t>((b1 - b0) * din_q_)};
      inflight.push_back(ctx.comm.iall_reduce_sum<float>(p_group_, rows));
      trim_pipeline(inflight, depth);
    }
    drain_pipeline(inflight);
  }

  // ---- Step 2: combination Q = SGEMM(H, W), all-reduced over the Q group.
  w_gather.wait();
  q_pre_ = dense::matmul(h_, w_block);
  const double t_gemm = sim::gemm_time(m, rows_r_, dout_p_, din_q_, dense::Trans::N,
                                       dense::Trans::N);
  ctx.comm.charge_compute(t_gemm);
  timers.gemm += t_gemm;
  ctx.comm.all_reduce_sum<float>(q_group_, q_pre_.flat());

  // ---- Step 3: activation.
  if (last) return q_pre_;
  dense::Matrix f_out = dense::relu(q_pre_);
  const double t_act = sim::elementwise_time(m, q_pre_.size());
  ctx.comm.charge_compute(t_act);
  timers.elementwise += t_act;
  return f_out;
}

dense::Matrix DistGcnLayer::backward(sim::RankContext& ctx, const dense::Matrix& df_out,
                                     bool last, KernelTimers& timers, FinalReduce final_reduce,
                                     std::span<float> grad_slice) {
  PLEXUS_CHECK(df_out.rows() == rows_r_ && df_out.cols() == dout_p_, "backward input shape");
  const sim::Machine& m = *ctx.machine;

  // W is needed only for the dH GEMM: post the R-group gather now so it
  // overlaps relu' and the dW GEMM (a blocking gather here used to charge its
  // full latency every backward pass).
  dense::Matrix w_block;
  comm::CommHandle w_gather = igathered_weights(ctx, w_block);

  // dQ = dF_out (last layer: loss grad) or dF_out ⊙ relu'(Q) (eq. 2.4).
  dense::Matrix dq(rows_r_, dout_p_);
  if (last) {
    dq = df_out;
  } else {
    dense::relu_backward(q_pre_, df_out, dq);
    const double t = sim::elementwise_time(m, dq.size(), 3.0);
    ctx.comm.charge_compute(t);
    timers.elementwise += t;
  }

  // dW = H^T dQ (eq. 2.5), reduce-scattered over the R group (Alg. 2 line 3).
  // Section 5.3 tuning replaces the slow transpose-first GEMM by the reversed
  // order (SGEMM(dQ^T, H))^T, which dispatches in the fast mode. The
  // reduce-scatter result is not needed until apply_grad, so it is posted
  // asynchronously and hides behind the rest of the backward pass.
  if (opts_.gemm_dw_tuning) {
    dw_block_ = dense::matmul(dq, h_, dense::Trans::T, dense::Trans::N).transposed();
    const double t = sim::gemm_time(m, din_q_, dout_p_, rows_r_, dense::Trans::N, dense::Trans::T) +
                     sim::elementwise_time(m, dw_block_.size());
    ctx.comm.charge_compute(t);
    timers.gemm += t;
  } else {
    dw_block_ = dense::matmul(h_, dq, dense::Trans::T, dense::Trans::N);
    const double t = sim::gemm_time(m, din_q_, dout_p_, rows_r_, dense::Trans::T, dense::Trans::N);
    ctx.comm.charge_compute(t);
    timers.gemm += t;
  }
  dw_handle_ = ctx.comm.ireduce_scatter_sum<float>(r_group_, dw_block_.flat(), dw_slice_);

  // dH = dQ W^T (eq. 2.6), all-reduced over the P group (Alg. 2 lines 4-6).
  w_gather.wait();
  dense::Matrix dh = dense::matmul(dq, w_block, dense::Trans::N, dense::Trans::T);
  {
    const double t = sim::gemm_time(m, rows_r_, din_q_, dout_p_, dense::Trans::N, dense::Trans::T);
    ctx.comm.charge_compute(t);
    timers.gemm += t;
  }
  ctx.comm.all_reduce_sum<float>(p_group_, dh.flat());

  // dF = SpMM(A^T, dH) (eq. 2.7), blocked over output rows — the backward
  // mirror of section 5.2. The final R-group collective pipelines behind the
  // next block's SpMM: per-block all-reduces for the hidden layers, or (layer
  // 0 with trainable features) per-block reduce-scatters whose R-aligned row
  // blocks land directly on the caller's resharded flat gradient slice.
  dense::Matrix df_in(rows_p_, din_q_);
  const int nb = std::max(1, opts_.agg_row_blocks);
  const bool scatter = final_reduce == FinalReduce::ReduceScatter;
  if (scatter) {
    PLEXUS_CHECK(grad_slice.size() ==
                     static_cast<std::size_t>(rows_p_ / ext_r_ * din_q_),
                 "backward: grad_slice does not match the resharded feature slice");
  }

  // Sparse selective aggregation for the reducing directions (None has no
  // collective to sparsify). Lazily planned like the forward direction;
  // rebuilt if the caller switches the final-reduce shape.
  bool sparse_agg = false;
  if (final_reduce != FinalReduce::None && opts_.aggregation != Aggregation::Dense) {
    if (!bwd_sparse_.built || bwd_sparse_.scatter != scatter) {
      build_sparse_plan(ctx, bwd_sparse_, adj_->a_t, rows_p_, rows_r_, ext_r_, r_group_,
                        scatter);
    }
    sparse_agg = bwd_sparse_.sparse;
  }

  auto charge_spmm_block = [&](std::int64_t nnz, std::int64_t b0, std::int64_t b1) {
    const sim::SpmmShape shape{nnz, b1 - b0, rows_r_, din_q_};
    const double t = sim::spmm_time(m, shape);
    ctx.comm.charge_compute(t);
    timers.spmm += t;
  };

  if (stream_ != nullptr) {
    // Streamed dF: rows [b0, b1) of A^T are the column window [b0, b1) of A,
    // so the stream loads that window and transposes it on the IO worker —
    // the counting sort hides behind compute too. Bitwise-identical to rows
    // [b0, b1) of the resident transpose (same canonical source-row order).
    const auto bounds = scatter ? sparse::block_bounds_aligned(rows_p_, nb, ext_r_)
                                : sparse::block_bounds(rows_p_, nb);
    const int depth =
        final_reduce == FinalReduce::None
            ? 1
            : resolve_depth_streamed(ctx, bounds, rows_r_, r_group_,
                                     scatter ? comm::Collective::ReduceScatter
                                             : comm::Collective::AllReduce,
                                     &bwd_depth_);
    const int pf = resolve_prefetch_depth(ctx, bounds, rows_r_, &bwd_io_depth_);
    std::deque<std::pair<std::future<BlockLoad>, int>> loads;
    int next = 0;
    auto fill = [&] {
      while (static_cast<int>(loads.size()) < pf && next < nb) {
        const int k = next++;
        const std::int64_t b0 = bounds[static_cast<std::size_t>(k)];
        const std::int64_t b1 = bounds[static_cast<std::size_t>(k) + 1];
        if (b0 == b1) continue;
        loads.emplace_back(stream_->post(splan_->version, splan_->rows.begin,
                                         splan_->rows.end, splan_->cols.begin + b0,
                                         splan_->cols.begin + b1, /*transpose=*/true),
                           k);
      }
    };
    fill();
    std::deque<comm::CommHandle> inflight;
    while (!loads.empty()) {
      const int k = loads.front().second;
      util::WallTimer io_timer;
      BlockLoad bl = loads.front().first.get();
      timers.io_exposed += io_timer.seconds();
      timers.io_bytes += bl.bytes_read;
      loads.pop_front();
      fill();
      const std::int64_t b0 = bounds[static_cast<std::size_t>(k)];
      const std::int64_t b1 = bounds[static_cast<std::size_t>(k) + 1];
      sparse::spmm_into_rows(bl.csr, dh, df_in, b0);
      charge_spmm_block(bl.csr.nnz(), b0, b1);
      std::span<const float> rows{df_in.row(b0), static_cast<std::size_t>((b1 - b0) * din_q_)};
      if (final_reduce == FinalReduce::AllReduce) {
        std::span<float> inout{df_in.row(b0), rows.size()};
        inflight.push_back(ctx.comm.iall_reduce_sum<float>(r_group_, inout));
        trim_pipeline(inflight, depth);
      } else if (scatter) {
        std::span<float> out =
            grad_slice.subspan(static_cast<std::size_t>(b0 / ext_r_ * din_q_),
                               rows.size() / static_cast<std::size_t>(ext_r_));
        inflight.push_back(ctx.comm.ireduce_scatter_sum<float>(r_group_, rows, out));
        trim_pipeline(inflight, depth);
      }
    }
    drain_pipeline(inflight);
    if (scatter) return {};
    return df_in;
  }

  if (sparse_agg) {
    // Mirror of the forward sparse pipeline over the R group: SpMM, pack,
    // sparse all-to-all; on retire, fold into the reduced chunk. Hidden
    // layers re-gather the chunks into df_in; layer 0 folds directly onto
    // the caller's grad-slice chunk (the reduce-scatter's destination).
    const auto& bounds = bwd_sparse_.bounds;
    const int nblk = static_cast<int>(bounds.size()) - 1;
    std::deque<std::pair<comm::CommHandle, int>> exchange;
    std::deque<comm::CommHandle> gathers;
    auto advance_exchange = [&]() {
      exchange.front().first.wait();
      auto& blk = bwd_sparse_.blocks[static_cast<std::size_t>(exchange.front().second)];
      if (scatter) {
        const std::int64_t cr = (blk.b1 - blk.b0) / ext_r_;
        fold_sparse_chunk(blk,
                          grad_slice.subspan(static_cast<std::size_t>(blk.b0 / ext_r_ * din_q_),
                                             static_cast<std::size_t>(cr * din_q_)));
      } else {
        fold_sparse_chunk(blk, blk.chunk_buf);
        std::span<float> rows{df_in.row(blk.b0),
                              static_cast<std::size_t>((blk.b1 - blk.b0) * din_q_)};
        gathers.push_back(ctx.comm.iall_gather<float>(
            r_group_, std::span<const float>(blk.chunk_buf), rows));
      }
      exchange.pop_front();
    };
    for (int k = 0; k < nblk; ++k) {
      const std::int64_t b0 = bounds[static_cast<std::size_t>(k)];
      const std::int64_t b1 = bounds[static_cast<std::size_t>(k) + 1];
      if (b0 == b1) continue;
      sparse::spmm_rows(adj_->a_t, dh, df_in, b0, b1);
      charge_spmm_block(adj_->a_t.range_nnz(b0, b1), b0, b1);
      auto& blk = bwd_sparse_.blocks[static_cast<std::size_t>(k)];
      float* sp = blk.send_buf.data();
      for (const auto r : blk.send_rows) {
        std::memcpy(sp, df_in.row(b0 + r), static_cast<std::size_t>(din_q_) * sizeof(float));
        sp += din_q_;
      }
      exchange.emplace_back(
          ctx.comm.iall_to_all_v<float>(r_group_, std::span<const float>(blk.send_buf),
                                        blk.send_counts.data(), std::span<float>(blk.recv_buf),
                                        blk.recv_counts.data()),
          k);
      while (static_cast<int>(exchange.size()) >= bwd_sparse_.depth) advance_exchange();
      trim_pipeline(gathers, bwd_sparse_.depth);
    }
    while (!exchange.empty()) advance_exchange();
    drain_pipeline(gathers);
    if (scatter) return {};
    return df_in;
  }

  const auto bounds = scatter ? sparse::block_bounds_aligned(rows_p_, nb, ext_r_)
                              : sparse::block_bounds(rows_p_, nb);
  const int depth =
      final_reduce == FinalReduce::None
          ? 1
          : resolve_depth(ctx, adj_->a_t, bounds, rows_r_, r_group_,
                          scatter ? comm::Collective::ReduceScatter
                                  : comm::Collective::AllReduce,
                          &bwd_depth_);
  std::deque<comm::CommHandle> inflight;
  for (int k = 0; k < nb; ++k) {
    const std::int64_t b0 = bounds[static_cast<std::size_t>(k)];
    const std::int64_t b1 = bounds[static_cast<std::size_t>(k) + 1];
    if (b0 == b1) continue;
    sparse::spmm_rows(adj_->a_t, dh, df_in, b0, b1);
    charge_spmm_block(adj_->a_t.range_nnz(b0, b1), b0, b1);
    std::span<const float> rows{df_in.row(b0), static_cast<std::size_t>((b1 - b0) * din_q_)};
    if (final_reduce == FinalReduce::AllReduce) {
      std::span<float> inout{df_in.row(b0), rows.size()};
      inflight.push_back(ctx.comm.iall_reduce_sum<float>(r_group_, inout));
      trim_pipeline(inflight, depth);
    } else if (scatter) {
      std::span<float> out =
          grad_slice.subspan(static_cast<std::size_t>(b0 / ext_r_ * din_q_),
                             rows.size() / static_cast<std::size_t>(ext_r_));
      inflight.push_back(ctx.comm.ireduce_scatter_sum<float>(r_group_, rows, out));
      trim_pipeline(inflight, depth);
    }
  }
  drain_pipeline(inflight);
  if (scatter) return {};
  return df_in;
}

void DistGcnLayer::apply_grad(sim::RankContext& ctx, KernelTimers& timers) {
  // Retire the dW reduce-scatter posted in backward(); by now it has usually
  // been fully hidden behind the remaining backward compute.
  if (dw_handle_.valid()) dw_handle_.wait();
  adam_.step(w_slice_, dw_slice_);
  const double t = sim::elementwise_time(*ctx.machine, static_cast<std::int64_t>(w_slice_.size()),
                                         6.0);
  ctx.comm.charge_compute(t);
  timers.elementwise += t;
}

}  // namespace plexus::core
