#pragma once
/// \file cluster.hpp
/// SPMD launcher: runs one std::thread per simulated GPU rank.
///
/// Each rank receives a `RankContext` bundling its communicator, its simulated
/// clock and the machine model. The body executes the *real* distributed
/// algorithm; clocks accumulate modelled kernel/collective time. Exceptions
/// thrown by any rank are captured and rethrown on the launching thread
/// (other ranks would deadlock on their barriers otherwise — a thrown rank
/// aborts the whole cluster run, matching an MPI job abort).

#include <functional>

#include "comm/clock.hpp"
#include "comm/communicator.hpp"
#include "comm/world.hpp"
#include "sim/machine.hpp"

namespace plexus::sim {

struct RankContext {
  comm::Communicator comm;
  comm::SimClock clock;
  const Machine* machine = nullptr;

  int rank() const { return comm.rank(); }
};

using RankFn = std::function<void(RankContext&)>;

/// Run `fn` SPMD over all ranks of `world`. When `enable_clock` is false the
/// context's clock pointer inside the communicator is null (functional-only).
/// Throws the first rank exception encountered.
void run_cluster(comm::World& world, const Machine& machine, const RankFn& fn,
                 bool enable_clock = true);

}  // namespace plexus::sim
