// Figure 6: impact of the two section-5 kernel optimisations.
//  Left:  blocked aggregation on Isolate-3-8M, 16 and 32 GPUs (Perlmutter).
//         Full-scale analytic comparison (pipelined per-block all-reduce +
//         straggler variability model), plus a functional-simulation
//         demonstration that blocking cuts both mean epoch time and
//         epoch-to-epoch variability. Paper: 836.7 -> 535.6 ms (16 GPUs),
//         575.5 -> 452.8 ms (32 GPUs).
//  Right: dense-GEMM (dL/dW) mode tuning on products-14M, 512 and 1024 GCDs
//         (Frontier); paper: 291.0 -> 248.2 ms and 241.2 -> 198.7 ms with the
//         Grad_W GEMM going from ~45 ms to negligible.
#include <cmath>

#include "bench_common.hpp"
#include "comm/cost.hpp"
#include "core/roles.hpp"
#include "core/trainer.hpp"
#include "perfmodel/perfmodel.hpp"
#include "sim/kernels.hpp"
#include "sim/machine.hpp"
#include "sim/topology.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using plexus::util::Table;
namespace pc = plexus::core;
namespace pp = plexus::perf;
namespace psim = plexus::sim;

int extent_of(const psim::GridShape& g, pc::Axis a) {
  switch (a) {
    case pc::Axis::X: return g.x;
    case pc::Axis::Y: return g.y;
    case pc::Axis::Z: return g.z;
  }
  return 1;
}

/// Full-scale analytic model of one epoch with/without blocked aggregation.
/// Default: straggler-inflated SpMM (expected max of per-rank noise) followed
/// by the full H all-reduce. Blocked (nb blocks): block k's all-reduce
/// overlaps block k+1's SpMM, exposing only ~T_ar/nb, and per-block noise
/// averages out across blocks.
void blocked_left_analytic() {
  std::printf("\n-- Impact of blocked aggregation, full scale (Perlmutter, Isolate-3-8M) --\n");
  const auto& m = psim::Machine::perlmutter_a100();
  const auto& info = plexus::graph::dataset_info("Isolate-3-8M");
  const auto w = pp::WorkloadStats::from_dataset(info);
  const int nb = 16;

  Table t({"#GPUs", "Setting", "Comm (ms)", "Comp (ms)", "Total (ms)", "Paper total (ms)"});
  const struct {
    int gpus;
    const char* paper_default;
    const char* paper_blocked;
  } cases[] = {{16, "836.7", "535.6"}, {32, "575.5", "452.8"}};

  for (const auto& c : cases) {
    const auto grid = pp::best_configuration(m, w, c.gpus);
    const auto base = pp::predict_epoch(m, w, grid);
    double spmm_fwd_total = 0.0;
    double ar_h_total = 0.0;
    double straggler = 0.0;
    for (int l = 0; l < w.num_layers(); ++l) {
      const auto roles = pc::roles_for_layer(l);
      const auto ep = extent_of(grid, roles.p);
      const auto eq = extent_of(grid, roles.q);
      const auto er = extent_of(grid, roles.r);
      const auto din = std::max<std::int64_t>(1, w.layer_dims[static_cast<std::size_t>(l)] / eq);
      const psim::SpmmShape fwd{w.num_nonzeros / (static_cast<std::int64_t>(ep) * er),
                                w.num_nodes / er, w.num_nodes / ep, din};
      const double t_fwd = psim::spmm_time(m, fwd);
      spmm_fwd_total += t_fwd;
      // Expected straggler inflation: E[max over G ranks of U(0, amp)] ~
      // amp * G/(G+1); amplitude from the working-set spill model.
      const double amp = psim::spmm_noise_factor(m, fwd, /*seed=*/0) * 0.0 +
                         m.spmm_noise *
                             std::clamp((psim::spmm_working_set_bytes(fwd) +
                                         8.0 * static_cast<double>(fwd.nnz) - m.l2_bytes) /
                                            (4.0 * m.l2_bytes),
                                        0.0, 1.0);
      straggler += t_fwd * amp * static_cast<double>(c.gpus) / (c.gpus + 1.0);
      const auto link_p = psim::link_for_dim(m, grid, roles.p);
      ar_h_total += plexus::comm::collective_time(
          plexus::comm::Collective::AllReduce,
          static_cast<std::int64_t>(4.0 * (static_cast<double>(w.num_nodes) / er) *
                                    static_cast<double>(din)),
          ep, link_p);
    }
    // Default: full straggler + fully exposed all-reduce.
    const double comp = base.spmm_seconds + base.gemm_seconds;
    const double comm_default = base.comm_seconds + straggler;
    // Blocked: per-block noise averages (straggler / sqrt(nb)); the H
    // all-reduce hides behind the SpMM except the first/last block tails.
    const double hidden = std::min(ar_h_total * (1.0 - 1.0 / nb),
                                   spmm_fwd_total * (1.0 - 1.0 / nb));
    const double comm_blocked = base.comm_seconds - hidden + straggler / std::sqrt(nb);

    t.add_row({std::to_string(c.gpus) + " (" + pp::grid_to_string(grid) + ")", "Default",
               plexus::bench::ms(comm_default, 1), plexus::bench::ms(comp, 1),
               plexus::bench::ms(comm_default + comp, 1), c.paper_default});
    t.add_row({std::to_string(c.gpus), "Blocking", plexus::bench::ms(comm_blocked, 1),
               plexus::bench::ms(comp, 1), plexus::bench::ms(comm_blocked + comp, 1),
               c.paper_blocked});
  }
  t.print();
  plexus::bench::note("blocking hides the aggregation all-reduce behind per-block SpMMs and "
                      "averages per-kernel variability (straggler term) across blocks.");
}

/// Functional proxy demonstration: same machine but with a small L2 so the
/// proxy shards are in the variability regime, and latency-free links so the
/// exchange is bandwidth-bound as at full scale.
void blocked_left_functional() {
  std::printf("\n-- blocked aggregation, functional simulation (proxy, 16 ranks) --\n");
  psim::Machine m = psim::Machine::perlmutter_a100();
  m.l2_bytes = 64e3;
  m.alpha = 0.0;
  const auto g = plexus::bench::bench_proxy("Isolate-3-8M", 4000);

  Table t({"Setting", "Mean epoch (ms)", "Epoch stddev (ms)", "Losses identical"});
  std::vector<double> base_losses;
  for (const int blocks : {1, 16}) {
    pc::TrainOptions opt;
    opt.grid = {4, 2, 2};
    opt.machine = &m;
    opt.model.hidden_dims = {128, 128};
    opt.model.options.agg_row_blocks = blocks;
    opt.epochs = 8;
    const auto res = pc::train_plexus(g, opt);
    std::vector<double> times;
    for (const auto& e : res.epochs) times.push_back(e.epoch_seconds);
    const auto s = plexus::util::summarize(times);
    if (blocks == 1) base_losses = res.losses();
    const bool same = blocks == 1 || base_losses == res.losses();
    t.add_row({blocks == 1 ? "Default" : "Blocking (16)", plexus::bench::ms(s.mean, 3),
               plexus::bench::ms(s.stddev, 3), same ? "yes" : "NO"});
  }
  t.print();
}

void gemm_tuning_right() {
  namespace pd = plexus::dense;

  std::printf("\n-- Impact of dense matmul tuning (Frontier, products-14M) --\n");
  const auto& m = psim::Machine::frontier_mi250x_gcd();
  const auto& info = plexus::graph::dataset_info("products-14M");
  const auto w = pp::WorkloadStats::from_dataset(info);

  Table t({"#GCDs", "Setting", "Grad_W (ms)", "Other (ms)", "Total (ms)", "Paper total (ms)"});
  const struct {
    int gcds;
    const char* paper_default;
    const char* paper_tuned;
  } cases[] = {{512, "291.0", "248.2"}, {1024, "241.2", "198.7"}};

  for (const auto& c : cases) {
    const auto grid = pp::best_configuration(m, w, c.gcds);
    const auto epoch = pp::predict_epoch(m, w, grid);  // uses the tuned dW GEMM

    double dw_tn = 0.0;
    double dw_nt = 0.0;
    for (int l = 0; l < w.num_layers(); ++l) {
      const auto roles = pc::roles_for_layer(l);
      const auto din_q = std::max<std::int64_t>(
          1, w.layer_dims[static_cast<std::size_t>(l)] / extent_of(grid, roles.q));
      const auto dout_p = std::max<std::int64_t>(
          1, w.layer_dims[static_cast<std::size_t>(l) + 1] / extent_of(grid, roles.p));
      const auto rows_r = w.num_nodes / extent_of(grid, roles.r);
      dw_tn += psim::gemm_time(m, din_q, dout_p, rows_r, pd::Trans::T, pd::Trans::N);
      dw_nt += psim::gemm_time(m, din_q, dout_p, rows_r, pd::Trans::N, pd::Trans::T);
    }
    const double other = epoch.total() - dw_nt;
    t.add_row({std::to_string(c.gcds) + " (" + pp::grid_to_string(grid) + ")", "Default",
               plexus::bench::ms(dw_tn, 1), plexus::bench::ms(other, 1),
               plexus::bench::ms(other + dw_tn, 1), c.paper_default});
    t.add_row({std::to_string(c.gcds), "Tuning", plexus::bench::ms(dw_nt, 1),
               plexus::bench::ms(other, 1), plexus::bench::ms(other + dw_nt, 1), c.paper_tuned});
  }
  t.print();
  plexus::bench::note(
      "Default charges the pathological rocBLAS TN mode (section 5.3: ~45 ms Grad_W at 512 "
      "GCDs); Tuning reverses the multiplication order, making Grad_W negligible.");
}

}  // namespace

int main() {
  plexus::bench::banner("Figure 6: blocked aggregation (left) and GEMM tuning (right)",
                        "Figure 6 (sections 5.2 and 5.3)");
  blocked_left_analytic();
  blocked_left_functional();
  gemm_tuning_right();
  return 0;
}
