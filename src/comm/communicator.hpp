#pragma once
/// \file communicator.hpp
/// Per-rank communicator: NCCL/MPI-style collectives over shared memory.
///
/// Every simulated GPU thread owns one `Communicator`. Collectives move real
/// data between ranks (so the distributed algebra is exact) and synchronise
/// the ranks' simulated clocks to `max(member clocks) + T_collective`, where
/// T_collective comes from the ring cost model (comm/cost.hpp) with the
/// group's effective link parameters.
///
/// Synchronisation protocol per collective (all members must call together):
///   1. publish: write own buffer pointer + clock into the group's slots
///   2. barrier
///   3. read phase: read *other members'* published buffers; private writes ok
///   4. barrier
///   5. write phase: writes to own published buffer (if in-place op)
/// The trailing writes are ordered before any subsequent collective's reads by
/// that collective's first barrier (std::barrier has acquire/release
/// semantics), so back-to-back collectives are race-free.

#include <algorithm>
#include <array>
#include <cstring>
#include <span>
#include <vector>

#include "comm/clock.hpp"
#include "comm/cost.hpp"
#include "comm/world.hpp"
#include "util/error.hpp"

namespace plexus::comm {

/// Per-rank accounting of communication volume and simulated time.
struct CommStats {
  struct Entry {
    std::int64_t calls = 0;
    std::int64_t bytes = 0;
    double sim_seconds = 0.0;
  };
  std::array<Entry, 7> by_op{};

  Entry& entry(Collective op) { return by_op[static_cast<std::size_t>(op)]; }
  const Entry& entry(Collective op) const { return by_op[static_cast<std::size_t>(op)]; }

  double total_seconds() const {
    double t = 0.0;
    for (const auto& e : by_op) t += e.sim_seconds;
    return t;
  }
  std::int64_t total_bytes() const {
    std::int64_t b = 0;
    for (const auto& e : by_op) b += e.bytes;
    return b;
  }
  void reset() { by_op = {}; }
};

class Communicator {
 public:
  /// `clock` may be null (functional-only mode, no time simulation).
  Communicator(World& world, int rank, SimClock* clock = nullptr)
      : world_(&world), rank_(rank), clock_(clock) {
    PLEXUS_CHECK(rank >= 0 && rank < world.size(), "rank out of range");
  }

  int rank() const { return rank_; }
  int world_size() const { return world_->size(); }
  World& world() { return *world_; }
  SimClock* clock() { return clock_; }
  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }

  /// Advance this rank's clock by modelled local-kernel time.
  void charge_compute(double seconds) {
    if (clock_ != nullptr) clock_->advance(seconds);
  }

  void barrier(GroupId gid) {
    auto& g = world_->group(gid);
    const int pos = g.position_of(rank_);
    publish(g, pos, nullptr);
    g.barrier->arrive_and_wait();
    const double t = finish(g, Collective::Barrier, 0);
    g.barrier->arrive_and_wait();
    (void)t;
  }

  /// out[i * chunk .. ] = member i's `in`. `in.size()` must be equal across the
  /// group; `out.size() == in.size() * group size`.
  template <typename T>
  void all_gather(GroupId gid, std::span<const T> in, std::span<T> out) {
    auto& g = world_->group(gid);
    const int pos = g.position_of(rank_);
    PLEXUS_CHECK(out.size() == in.size() * static_cast<std::size_t>(g.size()),
                 "all_gather: bad output size");
    publish(g, pos, in.data());
    g.barrier->arrive_and_wait();
    for (int m = 0; m < g.size(); ++m) {
      const T* src = static_cast<const T*>(g.slots[static_cast<std::size_t>(m)]);
      std::memcpy(out.data() + static_cast<std::size_t>(m) * in.size(), src,
                  in.size() * sizeof(T));
    }
    finish(g, Collective::AllGather, static_cast<std::int64_t>(out.size() * sizeof(T)));
    g.barrier->arrive_and_wait();
  }

  /// Elementwise sum across the group, in place. `overlap_credit` (seconds)
  /// models communication/computation overlap: when the caller has issued this
  /// collective asynchronously behind `overlap_credit` seconds of independent
  /// compute (the blocked-aggregation pipeline of paper section 5.2), only the
  /// *exposed* time max(0, T - credit) is charged to the clocks.
  template <typename T>
  void all_reduce_sum(GroupId gid, std::span<T> inout, double overlap_credit = 0.0) {
    auto& g = world_->group(gid);
    const int pos = g.position_of(rank_);
    publish(g, pos, inout.data());
    g.barrier->arrive_and_wait();
    scratch_.resize(inout.size() * sizeof(T));
    T* tmp = reinterpret_cast<T*>(scratch_.data());
    std::memcpy(tmp, g.slots[0], inout.size() * sizeof(T));
    for (int m = 1; m < g.size(); ++m) {
      const T* src = static_cast<const T*>(g.slots[static_cast<std::size_t>(m)]);
      for (std::size_t i = 0; i < inout.size(); ++i) tmp[i] += src[i];
    }
    finish(g, Collective::AllReduce, static_cast<std::int64_t>(inout.size() * sizeof(T)),
           overlap_credit);
    g.barrier->arrive_and_wait();
    std::memcpy(inout.data(), tmp, inout.size() * sizeof(T));
  }

  /// Sum across the group, scattering chunk `pos` to member `pos`.
  /// `in.size() == out.size() * group size`; `out` must not alias `in`.
  template <typename T>
  void reduce_scatter_sum(GroupId gid, std::span<const T> in, std::span<T> out) {
    auto& g = world_->group(gid);
    const int pos = g.position_of(rank_);
    PLEXUS_CHECK(in.size() == out.size() * static_cast<std::size_t>(g.size()),
                 "reduce_scatter: bad sizes");
    publish(g, pos, in.data());
    g.barrier->arrive_and_wait();
    const std::size_t off = static_cast<std::size_t>(pos) * out.size();
    const T* first = static_cast<const T*>(g.slots[0]);
    std::memcpy(out.data(), first + off, out.size() * sizeof(T));
    for (int m = 1; m < g.size(); ++m) {
      const T* src = static_cast<const T*>(g.slots[static_cast<std::size_t>(m)]) + off;
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += src[i];
    }
    finish(g, Collective::ReduceScatter, static_cast<std::int64_t>(in.size() * sizeof(T)));
    g.barrier->arrive_and_wait();
  }

  /// Copy root's buffer to every member (root given as group position).
  template <typename T>
  void broadcast(GroupId gid, std::span<T> buf, int root_pos) {
    auto& g = world_->group(gid);
    const int pos = g.position_of(rank_);
    publish(g, pos, buf.data());
    g.barrier->arrive_and_wait();
    if (pos != root_pos) {
      const T* src = static_cast<const T*>(g.slots[static_cast<std::size_t>(root_pos)]);
      std::memcpy(buf.data(), src, buf.size() * sizeof(T));
    }
    finish(g, Collective::Broadcast, static_cast<std::int64_t>(buf.size() * sizeof(T)));
    g.barrier->arrive_and_wait();
  }

  /// Equal-chunk all-to-all: member m receives chunk `pos` of member m's `in`
  /// ... i.e. out[m*chunk ..] = in_m[pos*chunk ..].
  template <typename T>
  void all_to_all(GroupId gid, std::span<const T> in, std::span<T> out) {
    auto& g = world_->group(gid);
    const int pos = g.position_of(rank_);
    PLEXUS_CHECK(in.size() == out.size(), "all_to_all: sizes must match");
    PLEXUS_CHECK(in.size() % static_cast<std::size_t>(g.size()) == 0, "all_to_all: chunking");
    const std::size_t chunk = in.size() / static_cast<std::size_t>(g.size());
    publish(g, pos, in.data());
    g.barrier->arrive_and_wait();
    for (int m = 0; m < g.size(); ++m) {
      const T* src =
          static_cast<const T*>(g.slots[static_cast<std::size_t>(m)]) + static_cast<std::size_t>(pos) * chunk;
      std::memcpy(out.data() + static_cast<std::size_t>(m) * chunk, src, chunk * sizeof(T));
    }
    finish(g, Collective::AllToAll, static_cast<std::int64_t>(in.size() * sizeof(T)));
    g.barrier->arrive_and_wait();
  }

  /// Variable all-to-all: `send[m]` goes to member m; `recv[m]` receives from
  /// member m (resized by the call). Cost is charged on the maximum per-rank
  /// send volume (the straggler determines the exchange time).
  template <typename T>
  void all_to_all_v(GroupId gid, const std::vector<std::vector<T>>& send,
                    std::vector<std::vector<T>>& recv) {
    auto& g = world_->group(gid);
    const int pos = g.position_of(rank_);
    PLEXUS_CHECK(send.size() == static_cast<std::size_t>(g.size()), "all_to_all_v: send size");
    recv.assign(static_cast<std::size_t>(g.size()), {});
    std::int64_t my_bytes = 0;
    for (const auto& s : send) my_bytes += static_cast<std::int64_t>(s.size() * sizeof(T));
    aux_value(g, pos) = static_cast<double>(my_bytes);
    publish(g, pos, &send);
    g.barrier->arrive_and_wait();
    double max_bytes = 0.0;
    for (int m = 0; m < g.size(); ++m) {
      const auto* their_send =
          static_cast<const std::vector<std::vector<T>>*>(g.slots[static_cast<std::size_t>(m)]);
      recv[static_cast<std::size_t>(m)] = (*their_send)[static_cast<std::size_t>(pos)];
      max_bytes = std::max(max_bytes, aux_value(g, m));
    }
    finish(g, Collective::AllToAll, static_cast<std::int64_t>(max_bytes));
    g.barrier->arrive_and_wait();
  }

  /// Max of a scalar across the group (costed as a latency-only reduction).
  double all_reduce_max_scalar(GroupId gid, double value) {
    auto& g = world_->group(gid);
    const int pos = g.position_of(rank_);
    aux_value(g, pos) = value;
    publish(g, pos, nullptr);
    g.barrier->arrive_and_wait();
    double mx = value;
    for (int m = 0; m < g.size(); ++m) mx = std::max(mx, aux_value(g, m));
    finish(g, Collective::AllReduce, 8);
    g.barrier->arrive_and_wait();
    return mx;
  }

  /// Sum of a scalar across the group.
  double all_reduce_sum_scalar(GroupId gid, double value) {
    auto& g = world_->group(gid);
    const int pos = g.position_of(rank_);
    aux_value(g, pos) = value;
    publish(g, pos, nullptr);
    g.barrier->arrive_and_wait();
    double sum = 0.0;
    for (int m = 0; m < g.size(); ++m) sum += aux_value(g, m);
    finish(g, Collective::AllReduce, 8);
    g.barrier->arrive_and_wait();
    return sum;
  }

 private:
  /// Scalar-exchange slot for member `pos`: the second half of clock_slots
  /// (World::create_group sizes it to 2 * members).
  double& aux_value(GroupShared& g, int pos) {
    return g.clock_slots[static_cast<std::size_t>(g.size() + pos)];
  }

  void publish(GroupShared& g, int pos, const void* ptr) {
    ensure_aux_capacity(g);
    g.slots[static_cast<std::size_t>(pos)] = ptr;
    g.clock_slots[static_cast<std::size_t>(pos)] = clock_ != nullptr ? clock_->time() : 0.0;
  }

  void ensure_aux_capacity(GroupShared& g) {
    // clock_slots doubles as clock publication (first `size` entries) and
    // scalar exchange (next `size` entries). Grown once, single-threadedly, at
    // first use: World::create_group sizes it to 2 * size already; this is a
    // safety net for tests that build GroupShared manually.
    PLEXUS_CHECK(g.clock_slots.size() >= 2 * static_cast<std::size_t>(g.size()),
                 "group clock_slots under-sized");
  }

  /// Compute collective cost, record stats, and synchronise this rank's clock.
  /// Must be called in the read phase (between the two barriers).
  double finish(GroupShared& g, Collective op, std::int64_t bytes, double overlap_credit = 0.0) {
    const double full = collective_time(op, bytes, g.size(), g.link, g.a2a_distance_penalty);
    const double t = std::max(0.0, full - overlap_credit);
    auto& e = stats_.entry(op);
    e.calls += 1;
    e.bytes += bytes;
    e.sim_seconds += t;
    if (clock_ != nullptr) {
      double mx = 0.0;
      for (int m = 0; m < g.size(); ++m) {
        mx = std::max(mx, g.clock_slots[static_cast<std::size_t>(m)]);
      }
      clock_->set(mx + t);
    }
    return t;
  }

  World* world_;
  int rank_;
  SimClock* clock_;
  CommStats stats_;
  std::vector<unsigned char> scratch_;
};

}  // namespace plexus::comm
