#pragma once
/// \file gemm.hpp
/// Single-precision dense matrix multiply with NN/NT/TN/TT modes.
///
/// The paper's section 5.3 exploits the fact that BLAS GEMM performance differs
/// between transpose modes (TN/NT slower than NN on some platforms) and rewrites
/// dL/dW = SGEMM(H^T, dQ) as (SGEMM(dQ^T, H))^T. We expose explicit modes so the
/// machine model can charge mode-dependent cost while the functional result is
/// identical.

#include "dense/matrix.hpp"

namespace plexus::dense {

enum class Trans { N, T };

/// Number of logical rows of op(A).
std::int64_t op_rows(const Matrix& a, Trans t);
/// Number of logical cols of op(A).
std::int64_t op_cols(const Matrix& a, Trans t);

/// C = alpha * op(A) * op(B) + beta * C. C must be preshaped to
/// (op_rows(A), op_cols(B)). Cache-blocked i-k-j kernel.
void gemm(Trans ta, Trans tb, float alpha, const Matrix& a, const Matrix& b, float beta,
          Matrix& c);

/// Convenience: returns op(A) * op(B).
Matrix matmul(const Matrix& a, const Matrix& b, Trans ta = Trans::N, Trans tb = Trans::N);

}  // namespace plexus::dense
