#pragma once
/// \file arg_parser.hpp
/// Minimal `--key=value` command-line parser for the example/bench binaries.
///
/// Flags are registered up front with a value hint and help line; `parse`
/// then accepts `--key=value` (and bare `--key`, which stores "1" so boolean
/// switches work), handles `--help`, and collects everything else as
/// positionals — the pre-flag CLIs read those, so old invocations keep
/// working during the deprecation window. Unknown flags fail with a
/// did-you-mean suggestion (edit distance <= 2 against the registered
/// names). Values stay strings; callers convert with the checked helpers
/// here (built on util/parse.hpp) so a mistyped number prints usage instead
/// of training on a 0-sized axis.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace plexus::util {

class ArgParser {
 public:
  /// `prog` is argv[0] for the usage line; `summary` one line of what the
  /// binary does; `positional_hint` the legacy positional form (shown in
  /// usage as the deprecated alternative; empty = no positional form).
  ArgParser(std::string prog, std::string summary, std::string positional_hint = "");

  /// Register `--name=<hint>`. `def` is the value reported when the flag is
  /// absent; pass "" for flags whose absence the caller tests with is_set().
  void add_flag(std::string name, std::string hint, std::string help, std::string def = "");

  enum class Status {
    Ok,     ///< parsed; proceed
    Help,   ///< --help seen; caller prints usage() and exits 0
    Error,  ///< bad input; caller prints error() + usage() and exits nonzero
  };

  Status parse(int argc, char** argv);

  bool is_set(std::string_view name) const;
  /// Parsed value, or the registered default.
  const std::string& value(std::string_view name) const;
  /// Strict integer conversion of value(name); false on non-numeric input.
  bool value_int(std::string_view name, int& out) const;
  bool value_int64(std::string_view name, std::int64_t& out) const;

  /// Non-flag arguments in order (the deprecated positional form).
  const std::vector<std::string>& positionals() const { return positionals_; }

  std::string usage() const;
  const std::string& error() const { return error_; }

 private:
  struct Flag {
    std::string name;
    std::string hint;
    std::string help;
    std::string def;
    std::string parsed;
    bool set = false;
  };
  Flag* find(std::string_view name);
  const Flag* find(std::string_view name) const;
  /// Closest registered flag name within edit distance 2, or "".
  std::string suggest(std::string_view name) const;

  std::string prog_;
  std::string summary_;
  std::string positional_hint_;
  std::vector<Flag> flags_;
  std::vector<std::string> positionals_;
  std::string error_;
};

}  // namespace plexus::util
