#include "core/adjacency_store.hpp"

#include "core/shard.hpp"
#include "util/error.hpp"

namespace plexus::core {

AdjacencyStore::AdjacencyStore(const DatasetView& view, const Grid3D& grid, int rank,
                               int num_layers, bool streaming)
    : streaming_(streaming) {
  const Coords c = grid.coords_of(rank);
  if (streaming_) {
    // Out-of-core mode: record which window each layer would shard, but
    // leave the bytes on disk — the streaming epoch loads them block by
    // block through the ShardStream.
    const auto padded = static_cast<double>(view.padded_nodes());
    plans_.resize(static_cast<std::size_t>(num_layers));
    for (int l = 0; l < num_layers; ++l) {
      const LayerRoles roles = roles_for_layer(l);
      const auto blk = matrix_shard(view.padded_nodes(), view.padded_nodes(), grid, c,
                                    /*row_axis=*/roles.r, /*col_axis=*/roles.p);
      LayerStreamPlan plan;
      plan.version = view.scheme() == PermutationScheme::Double ? l % 2 : 0;
      plan.rows = blk.rows;
      plan.cols = blk.cols;
      plan.est_nnz = static_cast<std::int64_t>(
                         static_cast<double>(view.adjacency_nnz()) *
                         (static_cast<double>(blk.rows.size()) / padded) *
                         (static_cast<double>(blk.cols.size()) / padded)) +
                     1;
      plans_[static_cast<std::size_t>(l)] = plan;
    }
    return;
  }
  by_layer_.resize(static_cast<std::size_t>(num_layers));
  for (int l = 0; l < num_layers; ++l) {
    const int version = view.scheme() == PermutationScheme::Double ? l % 2 : 0;
    const int plane = l % 3;
    const auto key = std::make_pair(version, plane);
    auto it = shards_.find(key);
    if (it == shards_.end()) {
      const LayerRoles roles = roles_for_layer(l);
      const auto blk = matrix_shard(view.padded_nodes(), view.padded_nodes(), grid, c,
                                    /*row_axis=*/roles.r, /*col_axis=*/roles.p);
      auto shard = std::make_shared<AdjacencyShard>();
      shard->a = view.adjacency_block(version, blk.rows.begin, blk.rows.end, blk.cols.begin,
                                      blk.cols.end);
      shard->a_t = shard->a.transposed();
      it = shards_.emplace(key, std::move(shard)).first;
    }
    by_layer_[static_cast<std::size_t>(l)] = it->second;
  }
}

AdjacencyStore::AdjacencyStore(const PlexusDataset& dataset, const Grid3D& grid, int rank,
                               int num_layers)
    : AdjacencyStore(InMemoryDatasetView(dataset), grid, rank, num_layers) {}

const AdjacencyShard& AdjacencyStore::layer(int l) const {
  PLEXUS_CHECK(!streaming_, "AdjacencyStore::layer: no shards in streaming mode");
  PLEXUS_CHECK(l >= 0 && static_cast<std::size_t>(l) < by_layer_.size(), "bad layer");
  return *by_layer_[static_cast<std::size_t>(l)];
}

const LayerStreamPlan& AdjacencyStore::layer_stream(int l) const {
  PLEXUS_CHECK(streaming_, "AdjacencyStore::layer_stream: not in streaming mode");
  PLEXUS_CHECK(l >= 0 && static_cast<std::size_t>(l) < plans_.size(), "bad layer");
  return plans_[static_cast<std::size_t>(l)];
}

}  // namespace plexus::core
