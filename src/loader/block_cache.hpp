#pragma once
/// \file block_cache.hpp
/// LRU cache of mapped shard blocks, bounded by the training RSS budget
/// (TrainOptions::rss_budget_bytes / --rss-budget / PLEXUS_RSS_MB). The
/// cache is what turns "stream every block from disk" into "stream each
/// block once per eviction window": a streaming epoch touches the same
/// adjacency blocks every layer and every epoch, and whatever fits under
/// the budget stays mapped.
///
/// Pinning: the shared_ptr returned by get() doubles as a pin. trim never
/// drops a block something else still references, so a prefetch in flight
/// (or a window mid-SpMM) keeps its bytes even at budget 0; the entry is
/// reclaimed on the next trim after the last external reference dies.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "loader/mapped_block.hpp"

namespace plexus::io {

class BlockCache {
 public:
  /// budget_bytes >= 0 bounds resident (unpinned) bytes; 0 keeps nothing
  /// once callers drop their references. budget_bytes < 0 is unlimited.
  explicit BlockCache(std::int64_t budget_bytes) : budget_(budget_bytes) {}

  /// Fetch `path`, loading it (a miss) if absent. Thread-safe; the load
  /// itself runs outside the lock so rank threads stream concurrently.
  /// `miss_bytes`, when given, accumulates the bytes this call read from
  /// disk (0 on a hit) — the EpochStats::io_bytes_streamed feed.
  std::shared_ptr<const MappedBlock> get(const std::string& path,
                                         std::int64_t* miss_bytes = nullptr);

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t bytes_loaded = 0;         // total bytes read from disk
    std::int64_t evictions = 0;
    std::int64_t resident_bytes = 0;       // currently held by the cache
    std::int64_t peak_resident_bytes = 0;  // high-water mark after trimming
  };
  Stats stats() const;
  std::int64_t budget_bytes() const { return budget_; }

 private:
  struct Entry {
    std::string path;
    std::shared_ptr<const MappedBlock> block;
  };
  using LruList = std::list<Entry>;

  /// Drop least-recently-used unpinned entries until resident <= budget.
  void trim_locked();

  const std::int64_t budget_;
  mutable std::mutex mutex_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  Stats stats_;
};

}  // namespace plexus::io
