#include "util/simd.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/error.hpp"
#include "util/logging.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define PLEXUS_SIMD_X86 1
#include <immintrin.h>
#else
#define PLEXUS_SIMD_X86 0
#endif

// The scalar fallback is pinned non-vectorized on x86 so "scalar" means the
// same thing on every build (and `speedup_vs_serial` in micro_kernels measures
// SIMD against a true scalar loop, not whatever the autovectorizer produced
// for the baseline ISA). Elsewhere there is no vector target to compare
// against, so the compiler may do its best.
#if PLEXUS_SIMD_X86 && !defined(__clang__)
#define PLEXUS_SCALAR_ATTR __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define PLEXUS_SCALAR_ATTR
#endif

namespace plexus::simd {

namespace {

// ---------------------------------------------------------------------------
// Elementwise kernels. Plain loops cloned per target attribute: every
// operation is one correctly-rounded mul/add/div/sqrt per element, so any
// vectorization of the loop is bitwise-identical to the scalar run.

#define PLEXUS_DEFINE_ELEMENTWISE(SUFFIX, ATTR)                                                    \
  ATTR void relu_##SUFFIX(const float* x, float* y, std::int64_t n) {                              \
    for (std::int64_t i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;                         \
  }                                                                                                \
  ATTR void relu_backward_##SUFFIX(const float* q, const float* dy, float* dx, std::int64_t n) {   \
    for (std::int64_t i = 0; i < n; ++i) dx[i] = q[i] > 0.0f ? dy[i] : 0.0f;                       \
  }                                                                                                \
  ATTR void adam_step_##SUFFIX(float* p, const float* g, float* m, float* v, std::int64_t n,       \
                               float beta1, float beta2, float lr, float eps, float weight_decay,  \
                               float bc1, float bc2) {                                             \
    if (weight_decay != 0.0f) {                                                                    \
      for (std::int64_t i = 0; i < n; ++i) {                                                       \
        float gi = g[i];                                                                           \
        gi += weight_decay * p[i];                                                                 \
        m[i] = beta1 * m[i] + (1.0f - beta1) * gi;                                                 \
        v[i] = beta2 * v[i] + (1.0f - beta2) * gi * gi;                                            \
        const float mhat = m[i] / bc1;                                                             \
        const float vhat = v[i] / bc2;                                                             \
        p[i] -= lr * mhat / (std::sqrt(vhat) + eps);                                               \
      }                                                                                            \
    } else {                                                                                       \
      for (std::int64_t i = 0; i < n; ++i) {                                                       \
        const float gi = g[i];                                                                     \
        m[i] = beta1 * m[i] + (1.0f - beta1) * gi;                                                 \
        v[i] = beta2 * v[i] + (1.0f - beta2) * gi * gi;                                            \
        const float mhat = m[i] / bc1;                                                             \
        const float vhat = v[i] / bc2;                                                             \
        p[i] -= lr * mhat / (std::sqrt(vhat) + eps);                                               \
      }                                                                                            \
    }                                                                                              \
  }

PLEXUS_DEFINE_ELEMENTWISE(scalar, PLEXUS_SCALAR_ATTR)
#if PLEXUS_SIMD_X86
PLEXUS_DEFINE_ELEMENTWISE(avx2, __attribute__((target("avx2"))))
PLEXUS_DEFINE_ELEMENTWISE(avx512, __attribute__((target("avx512f"))))
#endif
#undef PLEXUS_DEFINE_ELEMENTWISE

// ---------------------------------------------------------------------------
// Row kernels: the axpy `c[j] += v * b[j]` over the feature dimension is the
// inner loop of both SpMM and the GEMM accumulate tile. The vector bodies use
// separate mul + add intrinsics (never FMA — one rounding per operation, same
// as the scalar expression) and handle the tail with scalar ops (AVX2) or a
// masked lane set (AVX-512), so every feature width is bitwise-identical to
// the serial reference.

PLEXUS_SCALAR_ATTR void spmm_rows_scalar(const std::int64_t* rp, const std::int32_t* ci,
                                         const float* va, const float* b, std::int64_t ldb,
                                         float* c, std::int64_t ldc, std::int64_t r0,
                                         std::int64_t r1, std::int64_t n, bool accumulate) {
  for (std::int64_t r = r0; r < r1; ++r) {
    float* crow = c + r * ldc;
    if (!accumulate) std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
    for (std::int64_t k = rp[r]; k < rp[r + 1]; ++k) {
      const float v = va[k];
      const float* brow = b + static_cast<std::int64_t>(ci[k]) * ldb;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
    }
  }
}

PLEXUS_SCALAR_ATTR void gemm_tile_scalar(const float* a, std::int64_t lda, const float* b,
                                         std::int64_t ldb, float* c, std::int64_t ldc,
                                         std::int64_t i0, std::int64_t i1, std::int64_t k0,
                                         std::int64_t k1, std::int64_t n, float alpha) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::int64_t kk = k0; kk < k1; ++kk) {
      const float av = alpha * arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * ldb;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

#if PLEXUS_SIMD_X86

__attribute__((target("avx2"))) void spmm_rows_avx2(const std::int64_t* rp,
                                                    const std::int32_t* ci, const float* va,
                                                    const float* b, std::int64_t ldb, float* c,
                                                    std::int64_t ldc, std::int64_t r0,
                                                    std::int64_t r1, std::int64_t n,
                                                    bool accumulate) {
  for (std::int64_t r = r0; r < r1; ++r) {
    float* crow = c + r * ldc;
    if (!accumulate) std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
    for (std::int64_t k = rp[r]; k < rp[r + 1]; ++k) {
      const float v = va[k];
      const float* brow = b + static_cast<std::int64_t>(ci[k]) * ldb;
      const __m256 vv = _mm256_set1_ps(v);
      std::int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        const __m256 bj = _mm256_loadu_ps(brow + j);
        const __m256 cj = _mm256_loadu_ps(crow + j);
        _mm256_storeu_ps(crow + j, _mm256_add_ps(cj, _mm256_mul_ps(vv, bj)));
      }
      for (; j < n; ++j) crow[j] += v * brow[j];
    }
  }
}

__attribute__((target("avx512f"))) void spmm_rows_avx512(const std::int64_t* rp,
                                                         const std::int32_t* ci, const float* va,
                                                         const float* b, std::int64_t ldb,
                                                         float* c, std::int64_t ldc,
                                                         std::int64_t r0, std::int64_t r1,
                                                         std::int64_t n, bool accumulate) {
  const std::int64_t full = n & ~static_cast<std::int64_t>(15);
  const __mmask16 tail =
      static_cast<__mmask16>((1u << static_cast<unsigned>(n - full)) - 1u);
  for (std::int64_t r = r0; r < r1; ++r) {
    float* crow = c + r * ldc;
    if (!accumulate) std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
    for (std::int64_t k = rp[r]; k < rp[r + 1]; ++k) {
      const float v = va[k];
      const float* brow = b + static_cast<std::int64_t>(ci[k]) * ldb;
      const __m512 vv = _mm512_set1_ps(v);
      std::int64_t j = 0;
      for (; j < full; j += 16) {
        const __m512 bj = _mm512_loadu_ps(brow + j);
        const __m512 cj = _mm512_loadu_ps(crow + j);
        _mm512_storeu_ps(crow + j, _mm512_add_ps(cj, _mm512_mul_ps(vv, bj)));
      }
      if (tail != 0) {
        const __m512 bj = _mm512_maskz_loadu_ps(tail, brow + j);
        const __m512 cj = _mm512_maskz_loadu_ps(tail, crow + j);
        _mm512_mask_storeu_ps(crow + j, tail, _mm512_add_ps(cj, _mm512_mul_ps(vv, bj)));
      }
    }
  }
}

__attribute__((target("avx2"))) void gemm_tile_avx2(const float* a, std::int64_t lda,
                                                    const float* b, std::int64_t ldb, float* c,
                                                    std::int64_t ldc, std::int64_t i0,
                                                    std::int64_t i1, std::int64_t k0,
                                                    std::int64_t k1, std::int64_t n,
                                                    float alpha) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::int64_t kk = k0; kk < k1; ++kk) {
      const float av = alpha * arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * ldb;
      const __m256 vv = _mm256_set1_ps(av);
      std::int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        const __m256 bj = _mm256_loadu_ps(brow + j);
        const __m256 cj = _mm256_loadu_ps(crow + j);
        _mm256_storeu_ps(crow + j, _mm256_add_ps(cj, _mm256_mul_ps(vv, bj)));
      }
      for (; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

__attribute__((target("avx512f"))) void gemm_tile_avx512(const float* a, std::int64_t lda,
                                                         const float* b, std::int64_t ldb,
                                                         float* c, std::int64_t ldc,
                                                         std::int64_t i0, std::int64_t i1,
                                                         std::int64_t k0, std::int64_t k1,
                                                         std::int64_t n, float alpha) {
  const std::int64_t full = n & ~static_cast<std::int64_t>(15);
  const __mmask16 tail =
      static_cast<__mmask16>((1u << static_cast<unsigned>(n - full)) - 1u);
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::int64_t kk = k0; kk < k1; ++kk) {
      const float av = alpha * arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * ldb;
      const __m512 vv = _mm512_set1_ps(av);
      std::int64_t j = 0;
      for (; j < full; j += 16) {
        const __m512 bj = _mm512_loadu_ps(brow + j);
        const __m512 cj = _mm512_loadu_ps(crow + j);
        _mm512_storeu_ps(crow + j, _mm512_add_ps(cj, _mm512_mul_ps(vv, bj)));
      }
      if (tail != 0) {
        const __m512 bj = _mm512_maskz_loadu_ps(tail, brow + j);
        const __m512 cj = _mm512_maskz_loadu_ps(tail, crow + j);
        _mm512_mask_storeu_ps(crow + j, tail, _mm512_add_ps(cj, _mm512_mul_ps(vv, bj)));
      }
    }
  }
}

#endif  // PLEXUS_SIMD_X86

constexpr Kernels kScalarKernels{spmm_rows_scalar, gemm_tile_scalar, relu_scalar,
                                 relu_backward_scalar, adam_step_scalar};
#if PLEXUS_SIMD_X86
constexpr Kernels kAvx2Kernels{spmm_rows_avx2, gemm_tile_avx2, relu_avx2, relu_backward_avx2,
                               adam_step_avx2};
constexpr Kernels kAvx512Kernels{spmm_rows_avx512, gemm_tile_avx512, relu_avx512,
                                 relu_backward_avx512, adam_step_avx512};
#endif

Target best_supported() {
  if (target_supported(Target::Avx512)) return Target::Avx512;
  if (target_supported(Target::Avx2)) return Target::Avx2;
  return Target::Scalar;
}

std::string lower(const char* s) {
  std::string v(s);
  for (char& ch : v) ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  return v;
}

Target resolve_active() {
  Target pick = best_supported();
  const char* env = std::getenv("PLEXUS_SIMD");
  bool forced = false;
  if (env != nullptr && *env != '\0') {
    const std::string v = lower(env);
    if (v == "auto") {
      // keep best_supported
    } else if (v == "avx512") {
      pick = Target::Avx512;
      forced = true;
    } else if (v == "avx2") {
      pick = Target::Avx2;
      forced = true;
    } else if (v == "scalar") {
      pick = Target::Scalar;
      forced = true;
    } else {
      PLEXUS_LOG(Warn) << "PLEXUS_SIMD=" << env
                       << " not recognized (auto|avx512|avx2|scalar); using auto";
    }
  }
  if (forced && !target_supported(pick)) {
    PLEXUS_LOG(Warn) << "PLEXUS_SIMD=" << env << " not supported by this CPU; falling back to "
                     << target_name(best_supported());
    pick = best_supported();
    forced = false;
  }
  PLEXUS_LOG(Info) << "SIMD target: " << target_name(pick)
                   << (forced ? " (forced via PLEXUS_SIMD)" : " (auto-detected)");
  return pick;
}

}  // namespace

const char* target_name(Target t) {
  switch (t) {
    case Target::Scalar: return "scalar";
    case Target::Avx2: return "avx2";
    case Target::Avx512: return "avx512";
  }
  return "?";
}

bool target_supported(Target t) {
  if (t == Target::Scalar) return true;
#if PLEXUS_SIMD_X86
  if (t == Target::Avx2) return __builtin_cpu_supports("avx2") != 0;
  if (t == Target::Avx512) return __builtin_cpu_supports("avx512f") != 0;
#endif
  return false;
}

Target active_target() {
  static const Target t = resolve_active();
  return t;
}

const Kernels& kernels(Target t) {
  PLEXUS_CHECK(target_supported(t),
               std::string("SIMD target not supported on this CPU: ") + target_name(t));
#if PLEXUS_SIMD_X86
  if (t == Target::Avx2) return kAvx2Kernels;
  if (t == Target::Avx512) return kAvx512Kernels;
#endif
  return kScalarKernels;
}

const Kernels& active_kernels() {
  static const Kernels& k = kernels(active_target());
  return k;
}

// ---------------------------------------------------------------------------
// bf16 wire format.

std::uint16_t bf16_from_f32(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  if ((u & 0x7fffffffu) > 0x7f800000u) {
    // NaN: truncate but force a nonzero mantissa so it stays NaN.
    return static_cast<std::uint16_t>((u >> 16) | 0x0040u);
  }
  // Round to nearest, ties to even on the truncated 16 bits.
  u += 0x7fffu + ((u >> 16) & 1u);
  return static_cast<std::uint16_t>(u >> 16);
}

float f32_from_bf16(std::uint16_t h) {
  const std::uint32_t u = static_cast<std::uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

void bf16_pack(const float* src, std::uint16_t* dst, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = bf16_from_f32(src[i]);
}

void bf16_unpack(const std::uint16_t* src, float* dst, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = f32_from_bf16(src[i]);
}

void bf16_assign_f32(float* dst, const std::uint16_t* src, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = f32_from_bf16(src[i]);
}

void bf16_accumulate_f32(float* dst, const std::uint16_t* src, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] += f32_from_bf16(src[i]);
}

}  // namespace plexus::simd
