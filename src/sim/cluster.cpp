#include "sim/cluster.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace plexus::sim {

int resolve_intra_rank_threads(int requested, int num_ranks) {
  if (requested > 0) return requested;
  const int env = util::env_thread_override();
  const int total = env > 0 ? env : util::hardware_threads();
  // A rank's comm channels share the rank's host-thread slice: when enabled,
  // one slot of the per-rank share is reserved for them so compute pools plus
  // comm threads stay near the process budget. One slot suffices for any
  // channel count — channels spend almost all their time blocked on group
  // barriers, so at most one per rank tends to be runnable at once.
  const int comm_reserved = comm::comm_thread_budget() > 0 ? 1 : 0;
  return std::max(1, total / std::max(1, num_ranks) - comm_reserved);
}

void run_cluster(comm::World& world, const Machine& machine, const RankFn& fn,
                 bool enable_clock, int intra_rank_threads, comm::Transport* transport) {
  const int size = world.size();
  const int threads_per_rank = resolve_intra_rank_threads(intra_rank_threads, size);
  comm::Transport& t =
      transport != nullptr ? *transport : comm::transport_for(comm::default_backend());
  PLEXUS_CHECK(t.uses_group_protocol(),
               "run_cluster simulates ranks as in-process threads; distributed "
               "transports need one process per rank");
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&, r] {
      // Each rank gets an equal slice of the host's compute threads; its
      // kernel pool lives and dies with this thread.
      util::set_intra_rank_threads(threads_per_rank);
      // Context is built inside the thread so the communicator's comm engine
      // is rank-local; the communicator references the context's own clock so
      // callers can inspect it after fn returns (guaranteed elision places
      // the Communicator in the aggregate directly — it is immovable).
      RankContext ctx{comm::Communicator(world, r, nullptr, &t), comm::SimClock{}, &machine};
      if (enable_clock) ctx.comm.set_clock(&ctx.clock);
      try {
        fn(ctx);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true);
        // A failed rank cannot keep its barrier obligations; the only safe
        // option is to abort the whole process if peers are already waiting.
        // We log and terminate the simulation via rethrow after join — but to
        // avoid deadlock we must not leave peers blocked. Ranks check `failed`
        // only between collectives, so tests construct inputs that fail on all
        // ranks symmetrically or before the first collective.
        PLEXUS_LOG(Error) << "rank " << r << " threw; cluster run aborting";
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void run_distributed_rank(comm::World& world, const Machine& machine, int my_rank,
                          const RankFn& fn, comm::Transport& transport, bool enable_clock,
                          int intra_rank_threads) {
  PLEXUS_CHECK(!transport.uses_group_protocol(),
               "run_distributed_rank drives one process per rank; in-process "
               "transports belong in run_cluster");
  PLEXUS_CHECK(!enable_clock || transport.supports_clock(),
               "this transport cannot carry a SimClock");
  util::set_intra_rank_threads(resolve_intra_rank_threads(intra_rank_threads, world.size()));
  RankContext ctx{comm::Communicator(world, my_rank, nullptr, &transport), comm::SimClock{},
                  &machine};
  if (enable_clock) ctx.comm.set_clock(&ctx.clock);
  fn(ctx);
}

}  // namespace plexus::sim
