// Section 4.1: fitting and cross-validating the 3-term computational model.
// The paper fits a linear regression on 67 measured runs and reports, over
// 1000 random 70/30 splits, train R^2 = 0.89 / RMSE = 16.8 ms and test
// R^2 = 0.79 / RMSE = 20.1 ms, with coefficients ~7.8e-4, 7.8e-10, -2.6e-10.
//
// Our "measured runs" are the detailed kernel model (roofline + cache
// residency + shape penalty + noise) evaluated across datasets x GPU counts x
// configurations — a strictly richer model than the 3-term regression, so the
// regression's fit quality is a meaningful number, not a tautology.
#include "bench_common.hpp"
#include "core/roles.hpp"
#include "perfmodel/perfmodel.hpp"
#include "sim/kernels.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using plexus::util::Table;
  namespace pp = plexus::perf;
  namespace pg = plexus::graph;
  namespace psim = plexus::sim;

  plexus::bench::banner("Section 4.1: computational model fit and cross-validation",
                        "section 4.1 regression (R^2 / RMSE over 1000 splits)");
  const auto& m = psim::Machine::perlmutter_a100();

  std::vector<std::vector<double>> feats;
  std::vector<double> observed;
  plexus::util::SplitMix64 noise_rng(17);
  // The paper's 67 runs span medium datasets and GPU counts where epoch times
  // sit in the tens-to-hundreds of ms; mixing papers100M@8 (seconds) with
  // Reddit@512 (sub-ms) would ask one linear model to span 3 orders of
  // magnitude. We sample the same regime.
  for (const char* name : {"Reddit", "ogbn-products", "Isolate-3-8M", "products-14M"}) {
    const auto& info = pg::dataset_info(name);
    const auto w = pp::WorkloadStats::from_dataset(info);
    for (const int gpus : {32, 64, 128}) {
      for (const auto& grid : pp::enumerate_grids(gpus)) {
        // Y-extreme configurations shard feature columns below one element
        // per GPU; the paper's runs keep D/Gy >= 1 (D >= 100, Gy <= 64).
        if (grid.y > 64) continue;
        feats.push_back(pp::comp_model_features(w, grid));
        // Detailed per-layer SpMM times (fwd + bwd) with run-to-run noise.
        double t = 0.0;
        for (int l = 0; l < w.num_layers(); ++l) {
          const auto roles = plexus::core::roles_for_layer(l);
          auto ext = [&](plexus::core::Axis a) {
            switch (a) {
              case plexus::core::Axis::X: return grid.x;
              case plexus::core::Axis::Y: return grid.y;
              case plexus::core::Axis::Z: return grid.z;
            }
            return 1;
          };
          const auto din = std::max<std::int64_t>(
              1, w.layer_dims[static_cast<std::size_t>(l)] / ext(roles.q));
          const auto nnz = w.num_nonzeros / (ext(roles.r) * ext(roles.p));
          const psim::SpmmShape fwd{nnz, w.num_nodes / ext(roles.r),
                                    w.num_nodes / ext(roles.p), din};
          const psim::SpmmShape bwd{nnz, w.num_nodes / ext(roles.p),
                                    w.num_nodes / ext(roles.r), din};
          t += psim::spmm_time(m, fwd) + psim::spmm_time(m, bwd);
        }
        observed.push_back(t * (1.0 + 0.08 * (noise_rng.next_double() - 0.5)));
      }
    }
  }
  std::printf("data points: %zu (paper: 67 measured runs)\n", feats.size());

  const auto fitted = pp::fit_comp_model(feats, observed);
  std::printf("fitted coefficients: %.3e, %.3e, %.3e (paper: 7.8e-4, 7.8e-10, -2.6e-10)\n",
              fitted.coefficients[0], fitted.coefficients[1], fitted.coefficients[2]);

  const auto cv = pp::cross_validate_comp_model(feats, observed, 1000, 99);
  Table t({"Split", "R^2 (measured)", "R^2 (paper)", "RMSE ms (measured)", "RMSE ms (paper)"});
  t.add_row({"train (70%)", Table::fmt(cv.train_r2, 3), "0.89",
             Table::fmt(cv.train_rmse * 1e3, 1), "16.8"});
  t.add_row({"test (30%)", Table::fmt(cv.test_r2, 3), "0.79", Table::fmt(cv.test_rmse * 1e3, 1),
             "20.1"});
  t.print();
  return 0;
}
