/// \file transport_mpi.cpp
/// The MPI byte-transport (compiled only with -DPLEXUS_WITH_MPI=ON).
///
/// One process per rank. Each plexus `GroupShared` is lazily mapped onto an
/// MPI sub-communicator via `MPI_Comm_create_group` over the group's member
/// list (collective only over the members, so creation order follows the SPMD
/// posting order without involving non-members); the plexus World size must
/// equal `MPI_COMM_WORLD`'s size and plexus ranks are MPI ranks.
///
/// Each CommHandle maps onto one nonblocking MPI request:
///
///   iall_gather        -> MPI_Iallgatherv   (equal counts)
///   ireduce_scatter    -> MPI_Ireduce_scatter (equal recvcounts, MPI_SUM)
///   iall_reduce_sum    -> MPI_Iallreduce    (MPI_IN_PLACE)
///   broadcast          -> MPI_Ibcast
///   all_to_all         -> MPI_Ialltoallv    (equal counts)
///   all_to_all_v       -> MPI_Alltoall of counts + MPI_Ialltoallv payload
///   barrier            -> MPI_Ibarrier
///   scalar reductions  -> MPI_Iallreduce    (1 double, MPI_SUM / MPI_MAX)
///
/// The request is posted and completed on the op's executing thread (a comm
/// channel, or the posting thread in inline mode), so CommHandle
/// post/wait/test/drop keep their exact semantics: `test()` polls the
/// channel-side completion flag, `wait()` retires the op, dropping completes
/// but skips the accounting. With channel budgets > 0 multiple threads enter
/// MPI concurrently — initialise with MPI_THREAD_MULTIPLE, or run
/// `PLEXUS_COMM_THREADS=0` (inline) under MPI_THREAD_FUNNELED/SINGLE.
///
/// This backend is functional-only: there are no cross-process clock slots,
/// so Communicators must run without a SimClock and CommStats charge the
/// cost-model time per op (the `clock == nullptr` accounting path). Note
/// MPI reduction order is implementation-defined, so floating-point results
/// are *not* guaranteed bitwise-equal to the Sim/Local backends — the
/// conformance suite checks reductions to a tolerance and copies exactly.

#include <mpi.h>

#include <limits>
#include <mutex>
#include <unordered_map>

#include "comm/transport.hpp"
#include "util/error.hpp"

namespace plexus::comm {

namespace {

void mpi_check(int err, const char* what) {
  if (err == MPI_SUCCESS) return;
  char msg[MPI_MAX_ERROR_STRING + 1] = {0};
  int len = 0;
  MPI_Error_string(err, msg, &len);
  PLEXUS_CHECK(false, std::string(what) + ": " + msg);
}

/// MPI implementations may reject null buffer pointers even with zero counts
/// (the standard leaves it undefined); empty send lists and 0-row slabs are
/// legal plexus payloads, so substitute a dummy non-null pointer.
unsigned char g_zero_payload_dummy = 0;
const void* nn(const void* p) { return p != nullptr ? p : &g_zero_payload_dummy; }
void* nn(void* p) { return p != nullptr ? p : static_cast<void*>(&g_zero_payload_dummy); }

MPI_Datatype mpi_dtype(DType t) {
  switch (t) {
    case DType::F32: return MPI_FLOAT;
    case DType::F64: return MPI_DOUBLE;
    case DType::I32: return MPI_INT32_T;
    case DType::I64: return MPI_INT64_T;
    case DType::Bytes: return MPI_BYTE;
  }
  return MPI_BYTE;
}

class MpiTransport final : public Transport {
 public:
  ~MpiTransport() override {
    // Communicators leak deliberately: MPI_Finalize order vs static
    // destruction is unknowable, and freeing after finalize aborts.
  }

  Backend backend() const override { return Backend::Mpi; }
  const char* name() const override { return "mpi"; }
  bool uses_group_protocol() const override { return false; }

  void execute(GroupShared& g, const CollArgs& a, detail::CommOp& op) override {
    MPI_Comm comm = comm_for(g, a.gid);
    check_rank_identity(g, a);
    const int G = g.size();
    MPI_Request req = MPI_REQUEST_NULL;
    // MPI-3 counts and displacements are int: reject payloads whose per-chunk
    // size or whose largest displacement (G-1 chunks in) would overflow,
    // turning silent corruption into a clean error. (Large-count MPI-4
    // *_c variants are a follow-on.)
    const std::uint64_t chunk_bytes =
        static_cast<std::uint64_t>(a.count) * static_cast<std::uint64_t>(a.elem);
    PLEXUS_CHECK(chunk_bytes * static_cast<std::uint64_t>(G) <=
                     static_cast<std::uint64_t>(std::numeric_limits<int>::max()),
                 "MPI transport: payload exceeds MPI int counts/displacements");
    const auto n = static_cast<int>(a.count);
    const auto nb = static_cast<int>(chunk_bytes);
    switch (a.kind) {
      case Collective::Barrier:
        mpi_check(MPI_Ibarrier(comm, &req), "MPI_Ibarrier");
        break;
      case Collective::AllGather: {
        counts_.assign(static_cast<std::size_t>(G), nb);
        displs_.resize(static_cast<std::size_t>(G));
        for (int m = 0; m < G; ++m) displs_[static_cast<std::size_t>(m)] = m * nb;
        mpi_check(MPI_Iallgatherv(nn(a.send), nb, MPI_BYTE, nn(a.recv), counts_.data(),
                                  displs_.data(), MPI_BYTE, comm, &req),
                  "MPI_Iallgatherv");
        break;
      }
      case Collective::ReduceScatter: {
        counts_.assign(static_cast<std::size_t>(G), n);
        mpi_check(MPI_Ireduce_scatter(nn(a.send), nn(a.recv), counts_.data(),
                                      mpi_dtype(a.dtype), MPI_SUM, comm, &req),
                  "MPI_Ireduce_scatter");
        break;
      }
      case Collective::AllReduce: {
        if (a.scalar_op) {
          op.scalar = a.scalar_value;
          mpi_check(MPI_Iallreduce(MPI_IN_PLACE, &op.scalar, 1, MPI_DOUBLE,
                                   a.scalar_is_max ? MPI_MAX : MPI_SUM, comm, &req),
                    "MPI_Iallreduce(scalar)");
          break;
        }
        mpi_check(MPI_Iallreduce(MPI_IN_PLACE, nn(a.recv), n, mpi_dtype(a.dtype), MPI_SUM,
                                 comm, &req),
                  "MPI_Iallreduce");
        break;
      }
      case Collective::Broadcast:
        mpi_check(MPI_Ibcast(nn(a.recv), nb, MPI_BYTE, a.root, comm, &req), "MPI_Ibcast");
        break;
      case Collective::AllToAll: {
        if (a.send_counts != nullptr) {
          // Flat variable all-to-all: the caller owns the count exchange, so
          // both sides are known here — just size-check and post.
          std::vector<int> scounts(static_cast<std::size_t>(G)),
              sdispls(static_cast<std::size_t>(G));
          std::vector<int> rcounts(static_cast<std::size_t>(G)),
              rdispls(static_cast<std::size_t>(G));
          std::int64_t soff = 0, roff = 0, my_send = 0;
          for (int m = 0; m < G; ++m) {
            const std::int64_t sb = a.send_counts[m] * static_cast<std::int64_t>(a.elem);
            const std::int64_t rb = a.recv_counts[m] * static_cast<std::int64_t>(a.elem);
            scounts[static_cast<std::size_t>(m)] = static_cast<int>(sb);
            rcounts[static_cast<std::size_t>(m)] = static_cast<int>(rb);
            sdispls[static_cast<std::size_t>(m)] = static_cast<int>(soff);
            rdispls[static_cast<std::size_t>(m)] = static_cast<int>(roff);
            soff += sb;
            roff += rb;
            my_send += sb;
          }
          PLEXUS_CHECK(soff <= std::numeric_limits<int>::max() &&
                           roff <= std::numeric_limits<int>::max(),
                       "MPI transport: iall_to_all_v payload exceeds MPI int counts");
          mpi_check(MPI_Ialltoallv(nn(a.send), scounts.data(), sdispls.data(), MPI_BYTE,
                                   nn(a.recv), rcounts.data(), rdispls.data(), MPI_BYTE,
                                   comm, &req),
                    "MPI_Ialltoallv");
          mpi_check(MPI_Wait(&req, MPI_STATUS_IGNORE), "MPI_Wait");
          // The straggler defines the exchange: cost the maximum per-member
          // total send volume, like the in-process protocol's aux exchange.
          std::int64_t max_total = my_send;
          mpi_check(MPI_Allreduce(MPI_IN_PLACE, &max_total, 1, MPI_INT64_T, MPI_MAX, comm),
                    "MPI_Allreduce(max bytes)");
          op.bytes = max_total;
          finish(g, op);
          return;
        }
        counts_.assign(static_cast<std::size_t>(G), nb);
        displs_.resize(static_cast<std::size_t>(G));
        for (int m = 0; m < G; ++m) displs_[static_cast<std::size_t>(m)] = m * nb;
        mpi_check(MPI_Ialltoallv(nn(a.send), counts_.data(), displs_.data(), MPI_BYTE,
                                 nn(a.recv), counts_.data(), displs_.data(), MPI_BYTE,
                                 comm, &req),
                  "MPI_Ialltoallv");
        break;
      }
      case Collective::Send:
        PLEXUS_CHECK(false, "point-to-point is accounting-only");
    }
    mpi_check(MPI_Wait(&req, MPI_STATUS_IGNORE), "MPI_Wait");
    finish(g, op);
  }

  void alltoallv(GroupShared& g, const CollArgs& a,
                 const std::vector<std::span<const unsigned char>>& send,
                 std::vector<std::vector<unsigned char>>& recv,
                 detail::CommOp& op) override {
    MPI_Comm comm = comm_for(g, a.gid);
    check_rank_identity(g, a);
    const int G = g.size();
    // Exchange per-member byte counts, then the payload.
    std::vector<std::int64_t> send_counts(static_cast<std::size_t>(G));
    std::vector<std::int64_t> recv_counts(static_cast<std::size_t>(G));
    std::int64_t my_total = 0;
    for (int m = 0; m < G; ++m) {
      send_counts[static_cast<std::size_t>(m)] =
          static_cast<std::int64_t>(send[static_cast<std::size_t>(m)].size());
      my_total += send_counts[static_cast<std::size_t>(m)];
    }
    mpi_check(MPI_Alltoall(send_counts.data(), 1, MPI_INT64_T, recv_counts.data(), 1,
                           MPI_INT64_T, comm),
              "MPI_Alltoall(counts)");
    std::vector<int> scounts(static_cast<std::size_t>(G)), sdispls(static_cast<std::size_t>(G));
    std::vector<int> rcounts(static_cast<std::size_t>(G)), rdispls(static_cast<std::size_t>(G));
    std::int64_t soff64 = 0, roff64 = 0;
    for (int m = 0; m < G; ++m) {
      soff64 += send_counts[static_cast<std::size_t>(m)];
      roff64 += recv_counts[static_cast<std::size_t>(m)];
    }
    PLEXUS_CHECK(soff64 <= std::numeric_limits<int>::max() &&
                     roff64 <= std::numeric_limits<int>::max(),
                 "MPI transport: all_to_all_v payload exceeds MPI int counts");
    int soff = 0, roff = 0;
    for (int m = 0; m < G; ++m) {
      scounts[static_cast<std::size_t>(m)] =
          static_cast<int>(send_counts[static_cast<std::size_t>(m)]);
      rcounts[static_cast<std::size_t>(m)] =
          static_cast<int>(recv_counts[static_cast<std::size_t>(m)]);
      sdispls[static_cast<std::size_t>(m)] = soff;
      rdispls[static_cast<std::size_t>(m)] = roff;
      soff += scounts[static_cast<std::size_t>(m)];
      roff += rcounts[static_cast<std::size_t>(m)];
    }
    std::vector<unsigned char> send_flat(static_cast<std::size_t>(soff));
    for (int m = 0; m < G; ++m) {
      const auto& s = send[static_cast<std::size_t>(m)];
      if (!s.empty()) {
        std::copy(s.begin(), s.end(),
                  send_flat.begin() + sdispls[static_cast<std::size_t>(m)]);
      }
    }
    std::vector<unsigned char> recv_flat(static_cast<std::size_t>(roff));
    MPI_Request req = MPI_REQUEST_NULL;
    mpi_check(MPI_Ialltoallv(nn(send_flat.data()), scounts.data(), sdispls.data(), MPI_BYTE,
                             nn(recv_flat.data()), rcounts.data(), rdispls.data(), MPI_BYTE,
                             comm, &req),
              "MPI_Ialltoallv");
    mpi_check(MPI_Wait(&req, MPI_STATUS_IGNORE), "MPI_Wait");
    recv.assign(static_cast<std::size_t>(G), {});
    for (int m = 0; m < G; ++m) {
      recv[static_cast<std::size_t>(m)].assign(
          recv_flat.begin() + rdispls[static_cast<std::size_t>(m)],
          recv_flat.begin() + rdispls[static_cast<std::size_t>(m)] +
              rcounts[static_cast<std::size_t>(m)]);
    }
    // The straggler defines the exchange: cost the maximum per-member total.
    std::int64_t max_total = my_total;
    mpi_check(MPI_Allreduce(MPI_IN_PLACE, &max_total, 1, MPI_INT64_T, MPI_MAX, comm),
              "MPI_Allreduce(max bytes)");
    op.bytes = max_total;
    finish(g, op);
  }

 private:
  /// The whole mapping assumes plexus rank == MPI rank: `a.pos` places data
  /// by plexus position while MPI places it by process rank. Reject the
  /// mismatch instead of scattering chunks into the wrong slots.
  static void check_rank_identity(const GroupShared& g, const CollArgs& a) {
    int world_rank = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &world_rank);
    PLEXUS_CHECK(g.members[static_cast<std::size_t>(a.pos)] == world_rank,
                 "MPI transport: plexus rank must equal the MPI rank");
  }

  /// Cost-model completion for the functional-only accounting path.
  static void finish(const GroupShared& g, detail::CommOp& op) {
    op.full_seconds =
        collective_time(op.op, op.bytes, g.size(), g.link, g.a2a_distance_penalty);
    op.wire_bytes = wire_bytes(op.op, op.bytes, g.size());
    op.done_clock = op.posted_clock + op.full_seconds;
  }

  MPI_Comm comm_for(GroupShared& g, GroupId gid) {
    int initialized = 0;
    MPI_Initialized(&initialized);
    PLEXUS_CHECK(initialized != 0, "MPI backend: call MPI_Init first");
    {
      std::lock_guard<std::mutex> lock(m_);
      const auto it = comms_.find(gid);
      if (it != comms_.end()) return it->second;
    }
    // Create outside the cache lock: MPI_Comm_create_group is collective over
    // the member set, and members may be creating different groups
    // concurrently on different channels.
    int world_rank = -1, world_size = 0;
    MPI_Comm_rank(MPI_COMM_WORLD, &world_rank);
    MPI_Comm_size(MPI_COMM_WORLD, &world_size);
    PLEXUS_CHECK(world_size >= g.size(), "plexus group larger than MPI world");
    PLEXUS_CHECK(g.position_of(world_rank) >= 0, "rank not in group");
    MPI_Group world_group = MPI_GROUP_NULL;
    MPI_Group sub_group = MPI_GROUP_NULL;
    mpi_check(MPI_Comm_group(MPI_COMM_WORLD, &world_group), "MPI_Comm_group");
    mpi_check(MPI_Group_incl(world_group, g.size(), g.members.data(), &sub_group),
              "MPI_Group_incl");
    MPI_Comm sub = MPI_COMM_NULL;
    mpi_check(MPI_Comm_create_group(MPI_COMM_WORLD, sub_group, /*tag=*/gid, &sub),
              "MPI_Comm_create_group");
    MPI_Group_free(&sub_group);
    MPI_Group_free(&world_group);
    std::lock_guard<std::mutex> lock(m_);
    const auto [it, inserted] = comms_.emplace(gid, sub);
    if (!inserted) MPI_Comm_free(&sub);  // lost a (same-thread-impossible) race
    return it->second;
  }

  std::mutex m_;
  std::unordered_map<GroupId, MPI_Comm> comms_;
  // Reused count/displacement scratch. One MpiTransport is shared by every
  // channel thread, so these must be per-thread to stay race-free.
  static thread_local std::vector<int> counts_;
  static thread_local std::vector<int> displs_;
};

thread_local std::vector<int> MpiTransport::counts_;
thread_local std::vector<int> MpiTransport::displs_;

}  // namespace

namespace detail {

Transport& mpi_transport() {
  static MpiTransport t;
  return t;
}

}  // namespace detail

}  // namespace plexus::comm
