#pragma once
/// \file kernels.hpp
/// Analytic GPU kernel time models used to advance the simulated clocks.
///
/// The SpMM model is a roofline (compute vs. HBM traffic) with an explicit
/// tall-skinny shape penalty: when the dense operand has a huge common
/// dimension and few columns, the row-split kernel launches many small blocks
/// with uncoalesced requests (paper Table 2); modelled as a multiplicative
/// factor growing with sqrt(common/cols). Per-epoch variability for working
/// sets far beyond L2 (section 5.2's motivation for blocked aggregation) is
/// exposed via `spmm_noise_factor`.

#include <cstdint>

#include "dense/gemm.hpp"
#include "sim/machine.hpp"

namespace plexus::sim {

struct SpmmShape {
  std::int64_t nnz = 0;     ///< nonzeros of the sparse shard
  std::int64_t rows = 0;    ///< rows of the sparse shard (output rows)
  std::int64_t common = 0;  ///< cols of sparse == rows of dense operand
  std::int64_t cols = 0;    ///< cols of the dense operand
};

/// Deterministic mean execution time of one SpMM.
double spmm_time(const Machine& m, const SpmmShape& s);

/// Multiplicative noise factor in [1, 1 + amplitude] for a given epoch/block;
/// amplitude ramps from 0 (working set <= L2) to machine.spmm_noise (working
/// set >> L2). Deterministic in (seed) so runs are reproducible.
double spmm_noise_factor(const Machine& m, const SpmmShape& s, std::uint64_t seed);

/// DRAM working set of the SpMM's dense operand (bytes).
double spmm_working_set_bytes(const SpmmShape& s);

/// GEMM time for op(A)[m x k] * op(B)[k x n].
double gemm_time(const Machine& m, std::int64_t rows, std::int64_t cols, std::int64_t inner,
                 dense::Trans ta, dense::Trans tb);

/// Memory-bound elementwise op over `elems` fp32 values (`touches` r/w passes).
double elementwise_time(const Machine& m, std::int64_t elems, double touches = 2.0);

}  // namespace plexus::sim
