#include "core/model.hpp"

#include <algorithm>
#include <span>

#include "core/shard.hpp"
#include "sim/kernels.hpp"
#include "sparse/partition2d.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace plexus::core {

namespace {

std::int64_t round_up(std::int64_t v, std::int64_t multiple) {
  return (v + multiple - 1) / multiple * multiple;
}

}  // namespace

DistGcn::DistGcn(sim::RankContext& ctx, const DatasetView& view, const Grid3D& grid, GcnSpec spec)
    : view_(&view), grid_(&grid), spec_(std::move(spec)) {
  const int L = spec_.num_layers();
  const std::int64_t volume = grid.size();

  // Valid layer dims: [D, hidden..., C]; padded to the grid volume.
  std::vector<std::int64_t> valid_dims;
  valid_dims.push_back(view.feature_dim());
  for (const auto h : spec_.hidden_dims) valid_dims.push_back(h);
  valid_dims.push_back(view.num_classes());
  padded_dims_.clear();
  for (const auto d : valid_dims) padded_dims_.push_back(round_up(d, volume));
  PLEXUS_CHECK(padded_dims_[0] == view.padded_feature_dim(),
               "dataset must be preprocessed with the same pad multiple as the grid volume");

  adj_store_ = std::make_unique<AdjacencyStore>(view, grid, ctx.rank(), L);
  for (int l = 0; l < L; ++l) {
    layers_.push_back(std::make_unique<DistGcnLayer>(
        view.padded_nodes(), grid, ctx.rank(), l, L, padded_dims_[static_cast<std::size_t>(l)],
        padded_dims_[static_cast<std::size_t>(l) + 1], valid_dims[static_cast<std::size_t>(l)],
        valid_dims[static_cast<std::size_t>(l) + 1], &adj_store_->layer(l), spec_.options,
        spec_.seed));
  }

  // Input feature shard: block (rows along P0, cols along Q0), sharded 1/R0
  // across R0 because the trainable embeddings carry Adam state (section
  // 3.1). The slice is resharded row-major against the R0-aligned aggregation
  // row blocks (see model.hpp) so the layer-0 gradient reduce-scatter and the
  // input gather both run per block and join the software pipeline.
  const LayerRoles r0 = roles_for_layer(0);
  const Coords c = grid.coords_of(ctx.rank());
  const auto blk = matrix_shard(view.padded_nodes(), padded_dims_[0], grid, c, r0.p, r0.q);
  f_block_rows_ = blk.rows.size();
  f_block_cols_ = blk.cols.size();
  const dense::Matrix f_block =
      view.feature_block(blk.rows.begin, blk.rows.end, blk.cols.begin, blk.cols.end);
  f_r_ext_ = grid.extent(r0.r);
  f_r_coord_ = Grid3D::coord(c, r0.r);
  const int nb = std::max(1, spec_.options.agg_row_blocks);
  f_bounds_ = sparse::block_bounds_aligned(f_block_rows_, nb, f_r_ext_);
  f_slice_.reserve(static_cast<std::size_t>(f_block_rows_ / f_r_ext_ * f_block_cols_));
  for (std::size_t k = 0; k + 1 < f_bounds_.size(); ++k) {
    const std::int64_t len = f_bounds_[k + 1] - f_bounds_[k];
    const std::int64_t sub = len / f_r_ext_;
    const std::int64_t r0_row = f_bounds_[k] + f_r_coord_ * sub;
    const float* src = f_block.row(r0_row);
    f_slice_.insert(f_slice_.end(), src, src + sub * f_block_cols_);
  }
  df_slice_.assign(f_slice_.size(), 0.0f);
  f_adam_ = dense::Adam(f_slice_.size(), spec_.options.adam);
}

DistGcn::DistGcn(sim::RankContext& ctx, std::unique_ptr<DatasetView> view, const Grid3D& grid,
                 GcnSpec spec)
    : DistGcn(ctx, *view, grid, std::move(spec)) {
  owned_view_ = std::move(view);
}

DistGcn::DistGcn(sim::RankContext& ctx, const PlexusDataset& ds, const Grid3D& grid, GcnSpec spec)
    : DistGcn(ctx, std::make_unique<InMemoryDatasetView>(ds), grid, std::move(spec)) {}

dense::Matrix DistGcn::gather_input_features(sim::RankContext& ctx) {
  // One all-gather per aggregation row block: member m's sub-slice of block k
  // lands exactly on rows [b0 + m*len/R0, b0 + (m+1)*len/R0) — the reshard
  // layout — so the gathers reassemble the row-major block in place. Posting
  // all blocks before waiting pipelines them on the R0 ring.
  dense::Matrix block(f_block_rows_, f_block_cols_);
  const auto gid = layers_[0]->r_group();
  std::vector<comm::CommHandle> inflight;
  inflight.reserve(f_bounds_.size());
  std::size_t off = 0;
  for (std::size_t k = 0; k + 1 < f_bounds_.size(); ++k) {
    const std::int64_t b0 = f_bounds_[k];
    const std::int64_t len = f_bounds_[k + 1] - b0;
    if (len == 0) continue;  // bounds are grid-derived, identical on all members
    const std::size_t n = static_cast<std::size_t>(len / f_r_ext_ * f_block_cols_);
    std::span<const float> in{f_slice_.data() + off, n};
    std::span<float> out{block.row(b0), static_cast<std::size_t>(len * f_block_cols_)};
    inflight.push_back(ctx.comm.iall_gather<float>(gid, in, out));
    off += n;
  }
  for (auto& h : inflight) h.wait();
  return block;
}

dense::Matrix DistGcn::forward_all(sim::RankContext& ctx, std::uint64_t epoch_seed,
                                   KernelTimers& timers) {
  // Alg. 1 line 3: layer 0 all-gathers the flat-sharded features across Z (R0);
  // later layers receive full blocks from the previous layer (section 3.2).
  dense::Matrix f = gather_input_features(ctx);
  const int L = spec_.num_layers();
  for (int l = 0; l < L; ++l) {
    f = layers_[static_cast<std::size_t>(l)]->forward(ctx, f, /*last=*/l == L - 1, epoch_seed,
                                                      timers);
  }
  return f;
}

EpochStats DistGcn::train_epoch(sim::RankContext& ctx, int epoch) {
  const double t0 = ctx.clock.time();
  const double comm0 = ctx.comm.stats().total_seconds();
  const double hidden0 = ctx.comm.stats().total_hidden_seconds();
  const std::int64_t wire0 = ctx.comm.stats().total_wire_bytes();
  KernelTimers timers;
  const std::uint64_t epoch_seed = util::hash_combine(spec_.seed, 0xe90c000 + epoch);
  const int L = spec_.num_layers();

  const dense::Matrix logits = forward_all(ctx, epoch_seed, timers);

  LossResult loss = distributed_softmax_ce(ctx, *grid_, L - 1, *view_, logits,
                                           view_->mask(Split::Train),
                                           static_cast<double>(view_->train_total()));

  // Backward sweep (Alg. 2 per layer). Between layers the partial dF_in is
  // all-reduced over that layer's R group — fused into the layer's blocked
  // dF SpMM so the per-block collective pipelines behind compute; at layer 0
  // it is reduce-scattered per block onto the resharded trainable feature
  // slices instead (section 3.2), riding the same pipeline.
  dense::Matrix df = std::move(loss.dlogits);
  for (int l = L - 1; l >= 0; --l) {
    auto& layer = *layers_[static_cast<std::size_t>(l)];
    const FinalReduce mode = l > 0 ? FinalReduce::AllReduce
                                   : (spec_.train_input_features ? FinalReduce::ReduceScatter
                                                                 : FinalReduce::None);
    dense::Matrix df_partial =
        layer.backward(ctx, df, /*last=*/l == L - 1, timers, mode, df_slice_);
    if (l > 0) df = std::move(df_partial);  // already reduced over the layer's R group
  }

  // Optimizer step.
  for (auto& layer : layers_) layer->apply_grad(ctx, timers);
  if (spec_.train_input_features) {
    f_adam_.step(f_slice_, df_slice_);
    const double t = sim::elementwise_time(*ctx.machine,
                                           static_cast<std::int64_t>(f_slice_.size()), 6.0);
    ctx.comm.charge_compute(t);
    timers.elementwise += t;
  }

  EpochStats s;
  s.loss = loss.loss;
  s.train_accuracy = loss.accuracy;
  s.epoch_seconds = ctx.clock.time() - t0;
  s.spmm_seconds = timers.spmm;
  s.gemm_seconds = timers.gemm;
  s.elementwise_seconds = timers.elementwise;
  s.comm_seconds = ctx.comm.stats().total_seconds() - comm0;
  s.hidden_comm_seconds = ctx.comm.stats().total_hidden_seconds() - hidden0;
  s.comm_wire_bytes = static_cast<double>(ctx.comm.stats().total_wire_bytes() - wire0);
  return s;
}

dense::Matrix DistGcn::forward_logits(sim::RankContext& ctx) {
  KernelTimers timers;
  return forward_all(ctx, /*epoch_seed=*/0, timers);
}

double DistGcn::evaluate(sim::RankContext& ctx, const std::vector<std::uint8_t>& mask) {
  KernelTimers timers;
  const dense::Matrix logits = forward_all(ctx, /*epoch_seed=*/0, timers);
  const LossResult r = distributed_softmax_ce(ctx, *grid_, spec_.num_layers() - 1, *view_, logits,
                                              mask, static_cast<double>(view_->train_total()),
                                              /*want_grad=*/false);
  return r.accuracy;
}

}  // namespace plexus::core
