// Tests for graph generators, dataset registry, proxies, labels and masks.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "sparse/partition2d.hpp"

namespace pg = plexus::graph;
namespace ps = plexus::sparse;

namespace {

/// Edge list must be symmetric, deduplicated and self-loop free.
void expect_valid_edge_structure(const ps::Coo& edges) {
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  for (std::int64_t i = 0; i < edges.nnz(); ++i) {
    const auto r = edges.rows[static_cast<std::size_t>(i)];
    const auto c = static_cast<std::int64_t>(edges.cols[static_cast<std::size_t>(i)]);
    EXPECT_NE(r, c) << "self loop";
    EXPECT_TRUE(seen.insert({r, c}).second) << "duplicate edge " << r << "->" << c;
  }
  for (const auto& [r, c] : seen) {
    EXPECT_TRUE(seen.count({c, r})) << "missing reverse edge " << c << "->" << r;
  }
}

}  // namespace

TEST(Generators, RmatBasicStructure) {
  const auto coo = pg::rmat(8, 500, 0.57, 0.19, 0.19, 0.05, 1);
  EXPECT_EQ(coo.num_rows, 256);
  expect_valid_edge_structure(coo);
  EXPECT_GT(coo.nnz(), 800);  // ~2x 500 directed, minus collisions
}

TEST(Generators, RmatIsDeterministic) {
  const auto a = pg::rmat(7, 200, 0.57, 0.19, 0.19, 0.05, 9);
  const auto b = pg::rmat(7, 200, 0.57, 0.19, 0.19, 0.05, 9);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.cols, b.cols);
}

TEST(Generators, RmatIsSkewed) {
  // Power-law head: max degree far above mean.
  const auto coo = pg::rmat(10, 4000, 0.57, 0.19, 0.19, 0.05, 3);
  std::vector<std::int64_t> deg(1024, 0);
  for (std::int64_t i = 0; i < coo.nnz(); ++i) {
    deg[static_cast<std::size_t>(coo.rows[static_cast<std::size_t>(i)])]++;
  }
  const auto mx = *std::max_element(deg.begin(), deg.end());
  const double mean = static_cast<double>(coo.nnz()) / 1024.0;
  EXPECT_GT(static_cast<double>(mx), 5.0 * mean);
}

TEST(Generators, CommunityGraphLocality) {
  const auto coo = pg::community_graph(1000, 50, 12.0, 0.8, 4);
  expect_valid_edge_structure(coo);
  // Most edges should be short-range (inside a contiguous community).
  std::int64_t local = 0;
  for (std::int64_t i = 0; i < coo.nnz(); ++i) {
    const auto d = std::abs(coo.rows[static_cast<std::size_t>(i)] -
                            static_cast<std::int64_t>(coo.cols[static_cast<std::size_t>(i)]));
    if (d <= 80) ++local;
  }
  EXPECT_GT(static_cast<double>(local) / static_cast<double>(coo.nnz()), 0.5);
}

TEST(Generators, RoadNetworkNearDiagonal) {
  const auto coo = pg::road_network(32, 32, 0.55, 0.01, 5);
  expect_valid_edge_structure(coo);
  // Lattice adjacency with row-major ids concentrates nnz near the diagonal:
  // the paper's original-ordering imbalance (Table 3, 7.70 for europe_osm).
  const auto s = ps::grid_imbalance(ps::Csr::from_coo(coo, false), 8, 8);
  EXPECT_GT(s.max_over_mean, 4.0);
}

TEST(Generators, ErdosRenyiDegreeConcentration) {
  const auto coo = pg::erdos_renyi(500, 2500, 6);
  expect_valid_edge_structure(coo);
  EXPECT_NEAR(static_cast<double>(coo.nnz()), 5000.0, 500.0);
}

TEST(Datasets, RegistryMatchesTable4) {
  const auto& all = pg::paper_datasets();
  ASSERT_EQ(all.size(), 6u);
  const auto& papers = pg::dataset_info("ogbn-papers100M");
  EXPECT_EQ(papers.num_nodes, 111'059'956);
  EXPECT_EQ(papers.num_edges, 1'615'685'872);
  EXPECT_EQ(papers.num_classes, 172);
  const auto& reddit = pg::dataset_info("Reddit");
  EXPECT_EQ(reddit.feature_dim, 602);
  EXPECT_THROW(pg::dataset_info("nope"), std::runtime_error);
}

TEST(Datasets, ProxyPreservesShape) {
  const auto& info = pg::dataset_info("ogbn-products");
  const auto g = pg::make_proxy(info, 4000, 7);
  g.validate();
  EXPECT_GE(g.num_nodes, 4000);
  EXPECT_LE(g.num_nodes, 8192);
  EXPECT_EQ(g.features.cols(), info.feature_dim);
  EXPECT_EQ(g.num_classes, info.num_classes);
  // Average degree within 2x of the real dataset's.
  const double deg = static_cast<double>(g.num_edges()) / static_cast<double>(g.num_nodes) / 2.0;
  EXPECT_GT(deg, info.avg_degree() * 0.4);
  EXPECT_LT(deg, info.avg_degree() * 2.5);
}

TEST(Datasets, RoadProxyUsesLattice) {
  const auto g = pg::make_proxy(pg::dataset_info("europe_osm"), 10000, 8);
  g.validate();
  const double deg = 2.0 * static_cast<double>(g.num_edges()) / 2.0 /
                     static_cast<double>(g.num_nodes);
  EXPECT_LT(deg, 4.0);  // road networks are very sparse
}

TEST(Datasets, TestGraphIsUsable) {
  const auto g = pg::make_test_graph(200, 8.0, 16, 4, 11);
  g.validate();
  EXPECT_EQ(g.num_classes, 4);
  EXPECT_GT(g.train_count(), 80);
}

TEST(Graph, DegreeBasedLabelsInRange) {
  const std::vector<std::int64_t> degrees{0, 1, 5, 100, 100000};
  const auto labels = pg::degree_based_labels(degrees, 8, 3);
  for (const auto l : labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 8);
  }
}

TEST(Graph, SplitMasksPartition) {
  std::vector<std::uint8_t> tr;
  std::vector<std::uint8_t> va;
  std::vector<std::uint8_t> te;
  pg::make_split_masks(1000, 0.6, 0.2, 13, tr, va, te);
  std::int64_t ntr = 0;
  std::int64_t nva = 0;
  for (std::int64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(tr[static_cast<std::size_t>(i)] + va[static_cast<std::size_t>(i)] +
                  te[static_cast<std::size_t>(i)],
              1);
    ntr += tr[static_cast<std::size_t>(i)];
    nva += va[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(static_cast<double>(ntr), 600.0, 60.0);
  EXPECT_NEAR(static_cast<double>(nva), 200.0, 50.0);
}

TEST(Graph, FeaturesCarryLabelSignal) {
  const std::vector<std::int32_t> labels{0, 1, 2, 3};
  const auto f = pg::synthetic_features(4, 8, labels, 2.0f, 5);
  for (std::int64_t i = 0; i < 4; ++i) {
    // The label coordinate should stand out above the noise floor of 1.
    EXPECT_GT(f.at(i, labels[static_cast<std::size_t>(i)] % 8), 0.9f);
  }
}

TEST(Graph, AdjacencyIsSymmetricPattern) {
  const auto g = pg::make_test_graph(100, 6.0, 8, 3, 17);
  const auto a = g.adjacency();
  const auto at = a.transposed();
  EXPECT_TRUE(ps::Csr::equal(a, at));
}
