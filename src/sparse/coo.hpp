#pragma once
/// \file coo.hpp
/// Coordinate-format sparse matrix (edge list with values). The construction
/// format produced by graph generators and consumed by Csr::from_coo.

#include <cstdint>
#include <vector>

namespace plexus::sparse {

struct Coo {
  std::int64_t num_rows = 0;
  std::int64_t num_cols = 0;
  std::vector<std::int64_t> rows;
  std::vector<std::int32_t> cols;
  std::vector<float> vals;

  std::int64_t nnz() const { return static_cast<std::int64_t>(rows.size()); }

  void push(std::int64_t r, std::int64_t c, float v) {
    rows.push_back(r);
    cols.push_back(static_cast<std::int32_t>(c));
    vals.push_back(v);
  }
};

}  // namespace plexus::sparse
