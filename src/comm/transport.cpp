#include "comm/transport.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/error.hpp"

namespace plexus::comm {

void Transport::move(GroupShared&, const CollArgs&) {
  PLEXUS_CHECK(false, "transport does not implement in-process movement");
}

void Transport::finalize(GroupShared&, const CollArgs&) {}

void Transport::execute(GroupShared&, const CollArgs&, detail::CommOp&) {
  PLEXUS_CHECK(false, "transport does not implement whole-op execution");
}

void Transport::alltoallv(GroupShared&, const CollArgs&,
                          const std::vector<std::span<const unsigned char>>&,
                          std::vector<std::vector<unsigned char>>&, detail::CommOp&) {
  PLEXUS_CHECK(false, "transport does not implement all_to_all_v");
}

namespace {

/// The historic shared-slot movement: peers read each other's published
/// buffers directly. Kept bit-for-bit identical to the pre-transport
/// Communicator loops — same memcpy pattern, same canonical (member 0..G-1)
/// float summation order — so every existing determinism test pins it.
class SimTransport final : public Transport {
 public:
  Backend backend() const override { return Backend::Sim; }
  const char* name() const override { return "sim"; }

  void move(GroupShared& g, const CollArgs& a) override {
    const std::size_t nb = a.count * a.elem;  // per-member chunk in bytes
    switch (a.kind) {
      case Collective::AllGather: {
        if (nb == 0) return;
        auto* dst = static_cast<unsigned char*>(a.recv);
        for (int m = 0; m < g.size(); ++m) {
          std::memcpy(dst + static_cast<std::size_t>(m) * nb,
                      g.slots[static_cast<std::size_t>(m)], nb);
        }
        return;
      }
      case Collective::ReduceScatter: {
        if (nb == 0) return;
        const std::size_t off = static_cast<std::size_t>(a.pos) * nb;
        const auto* first = static_cast<const unsigned char*>(g.slots[0]);
        detail::assign_chunk(a, a.recv, first + off);
        for (int m = 1; m < g.size(); ++m) {
          const auto* src =
              static_cast<const unsigned char*>(g.slots[static_cast<std::size_t>(m)]) + off;
          a.accumulate(a.recv, src, a.count);
        }
        return;
      }
      case Collective::AllReduce: {
        if (nb == 0) return;
        auto& scratch = detail::op_scratch();
        scratch.resize(a.count * a.accumulator_elem());
        detail::assign_chunk(a, scratch.data(), g.slots[0]);
        for (int m = 1; m < g.size(); ++m) {
          a.accumulate(scratch.data(), g.slots[static_cast<std::size_t>(m)], a.count);
        }
        return;  // copy-back happens in finalize(), after the completion barrier
      }
      case Collective::Broadcast: {
        if (a.pos != a.root && nb > 0) {
          std::memcpy(a.recv, g.slots[static_cast<std::size_t>(a.root)], nb);
        }
        return;
      }
      case Collective::AllToAll: {
        if (a.send_counts != nullptr) {
          detail::flat_alltoallv_move(g, a, /*rotated=*/false);
          return;
        }
        if (nb == 0) return;
        auto* dst = static_cast<unsigned char*>(a.recv);
        for (int m = 0; m < g.size(); ++m) {
          const auto* src =
              static_cast<const unsigned char*>(g.slots[static_cast<std::size_t>(m)]) +
              static_cast<std::size_t>(a.pos) * nb;
          std::memcpy(dst + static_cast<std::size_t>(m) * nb, src, nb);
        }
        return;
      }
      case Collective::Barrier:
      case Collective::Send:
        return;
    }
  }

  void finalize(GroupShared&, const CollArgs& a) override {
    if (a.kind != Collective::AllReduce) return;
    if (a.count * a.elem == 0) return;
    // The in-place result: peers read the original buffer during the read
    // phase, so the reduced scratch lands only after the completion barrier.
    std::memcpy(a.recv, detail::op_scratch().data(), a.count * a.accumulator_elem());
  }
};

}  // namespace

namespace detail {

void flat_alltoallv_move(GroupShared& g, const CollArgs& a, bool rotated) {
  const int G = g.size();
  // Publish my per-destination counts so every peer can locate its chunk
  // inside my packed send buffer; g.slots[m] already holds member m's send
  // pointer from the protocol's publish step.
  g.xfer_slots[static_cast<std::size_t>(a.pos)] = a.send_counts;
  g.barrier->arrive_and_wait();
  std::vector<std::int64_t> rdispl(static_cast<std::size_t>(G) + 1, 0);
  for (int m = 0; m < G; ++m) {
    rdispl[static_cast<std::size_t>(m) + 1] = rdispl[static_cast<std::size_t>(m)] +
                                              a.recv_counts[m];
  }
  auto* dst = static_cast<unsigned char*>(a.recv);
  for (int s = 0; s < G; ++s) {
    const int m = rotated ? (a.pos + s) % G : s;
    const auto* their_counts =
        static_cast<const std::int64_t*>(g.xfer_slots[static_cast<std::size_t>(m)]);
    std::int64_t src_off = 0;
    for (int j = 0; j < a.pos; ++j) src_off += their_counts[j];
    const std::int64_t n = their_counts[a.pos];
    PLEXUS_CHECK(n == a.recv_counts[m], "iall_to_all_v: send/recv counts inconsistent");
    if (n == 0) continue;  // empty chunk: source pointer may be null, never touch it
    const auto* src = static_cast<const unsigned char*>(g.slots[static_cast<std::size_t>(m)]) +
                      static_cast<std::size_t>(src_off) * a.elem;
    std::memcpy(dst + static_cast<std::size_t>(rdispl[static_cast<std::size_t>(m)]) * a.elem,
                src, static_cast<std::size_t>(n) * a.elem);
  }
  // No trailing barrier: the protocol's completion barrier seals these reads
  // before any member's next op republishes the slots.
}

Transport& sim_transport() {
  static SimTransport t;
  return t;
}

}  // namespace detail

const char* backend_name(Backend b) { return util::enum_name(b); }

bool backend_from_string(std::string_view s, Backend& out) {
  return util::enum_from_string(s, out);
}

std::string backend_choices() {
  std::string s;
  for (const auto& e : util::EnumNames<Backend>::table) {
    if (e.value == Backend::Mpi && !mpi_transport_available()) continue;
    if (!s.empty()) s += " | ";
    s += e.name;
  }
  return s;
}

namespace {

/// -1 = follow PLEXUS_BACKEND, else the Backend value of the override.
std::atomic<int> g_backend_override{-1};

Backend env_backend() {
  const char* s = std::getenv("PLEXUS_BACKEND");
  if (s == nullptr || *s == '\0') return Backend::Sim;
  Backend b = Backend::Sim;
  if (!backend_from_string(s, b)) return Backend::Sim;  // malformed: default
  return b;
}

}  // namespace

Backend default_backend() {
  const int v = g_backend_override.load(std::memory_order_relaxed);
  return v >= 0 ? static_cast<Backend>(v) : env_backend();
}

void set_default_backend(Backend b) {
  g_backend_override.store(static_cast<int>(b), std::memory_order_relaxed);
}

void reset_default_backend() { g_backend_override.store(-1, std::memory_order_relaxed); }

ScopedBackend::ScopedBackend(Backend b)
    : had_override_(g_backend_override.load(std::memory_order_relaxed) >= 0),
      prev_(default_backend()) {
  set_default_backend(b);
}

ScopedBackend::~ScopedBackend() {
  if (had_override_) {
    set_default_backend(prev_);
  } else {
    reset_default_backend();
  }
}

const char* wire_precision_name(WirePrecision w) { return util::enum_name(w); }

bool wire_precision_from_string(std::string_view s, WirePrecision& out) {
  return util::enum_from_string(s, out);
}

namespace {

/// -1 = follow PLEXUS_WIRE, else the WirePrecision value of the override.
std::atomic<int> g_wire_override{-1};

WirePrecision env_wire_precision() {
  const char* s = std::getenv("PLEXUS_WIRE");
  if (s == nullptr || *s == '\0') return WirePrecision::Fp32;
  WirePrecision w = WirePrecision::Fp32;
  if (!wire_precision_from_string(s, w)) return WirePrecision::Fp32;  // malformed: default
  return w;
}

}  // namespace

WirePrecision default_wire_precision() {
  const int v = g_wire_override.load(std::memory_order_relaxed);
  return v >= 0 ? static_cast<WirePrecision>(v) : env_wire_precision();
}

void set_default_wire_precision(WirePrecision w) {
  g_wire_override.store(static_cast<int>(w), std::memory_order_relaxed);
}

void reset_default_wire_precision() { g_wire_override.store(-1, std::memory_order_relaxed); }

ScopedWirePrecision::ScopedWirePrecision(WirePrecision w)
    : had_override_(g_wire_override.load(std::memory_order_relaxed) >= 0),
      prev_(default_wire_precision()) {
  set_default_wire_precision(w);
}

ScopedWirePrecision::~ScopedWirePrecision() {
  if (had_override_) {
    set_default_wire_precision(prev_);
  } else {
    reset_default_wire_precision();
  }
}

Transport& transport_for(Backend b) {
  switch (b) {
    case Backend::Sim: return detail::sim_transport();
    case Backend::Local: return detail::local_transport();
    case Backend::Mpi:
#ifdef PLEXUS_WITH_MPI
      return detail::mpi_transport();
#else
      PLEXUS_CHECK(false, "MPI backend requested but built without PLEXUS_WITH_MPI");
#endif
  }
  PLEXUS_CHECK(false, "unknown backend");
  return detail::sim_transport();
}

bool mpi_transport_available() {
#ifdef PLEXUS_WITH_MPI
  return true;
#else
  return false;
#endif
}

#ifndef PLEXUS_WITH_MPI
// One-process-per-rank runtime hooks (implemented in transport_mpi.cpp when
// the backend is compiled in). Erroring stubs keep the examples linkable.
MpiRuntime mpi_runtime_init(int*, char***) {
  PLEXUS_CHECK(false, "mpi_runtime_init: built without PLEXUS_WITH_MPI");
  return {};
}

void mpi_runtime_barrier() {
  PLEXUS_CHECK(false, "mpi_runtime_barrier: built without PLEXUS_WITH_MPI");
}

void mpi_runtime_finalize() {
  PLEXUS_CHECK(false, "mpi_runtime_finalize: built without PLEXUS_WITH_MPI");
}
#endif

}  // namespace plexus::comm
