#include "graph/datasets.hpp"

#include <cmath>

#include "graph/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace plexus::graph {

const std::vector<DatasetInfo>& paper_datasets() {
  // Table 4 of the paper, verbatim.
  static const std::vector<DatasetInfo> kDatasets = {
      {"Reddit", 232'965, 57'307'946, 114'848'857, 602, 41, GraphClass::Social},
      {"ogbn-products", 2'449'029, 61'859'140, 126'167'053, 100, 47, GraphClass::CoPurchase},
      {"Isolate-3-8M", 8'745'542, 654'620'251, 1'317'986'044, 128, 32, GraphClass::ProteinSim},
      {"products-14M", 14'249'639, 115'394'635, 245'036'907, 128, 32, GraphClass::CoPurchase},
      {"europe_osm", 50'912'018, 54'054'660, 159'021'338, 128, 32, GraphClass::RoadNetwork},
      {"ogbn-papers100M", 111'059'956, 1'615'685'872, 1'726'745'828, 100, 172,
       GraphClass::Citation},
  };
  return kDatasets;
}

const DatasetInfo& dataset_info(const std::string& name) {
  for (const auto& d : paper_datasets()) {
    if (d.name == name) return d;
  }
  PLEXUS_CHECK(false, "unknown dataset: " + name);
  __builtin_unreachable();
}

namespace {

Graph finalize_graph(std::string name, sparse::Coo edges, std::int64_t feature_dim,
                     std::int64_t num_classes, float label_signal, std::uint64_t seed) {
  Graph g;
  g.name = std::move(name);
  g.num_nodes = edges.num_rows;
  g.num_classes = num_classes;
  g.edges = std::move(edges);

  std::vector<std::int64_t> deg(static_cast<std::size_t>(g.num_nodes), 0);
  for (std::int64_t i = 0; i < g.edges.nnz(); ++i) {
    deg[static_cast<std::size_t>(g.edges.rows[static_cast<std::size_t>(i)])]++;
  }
  g.labels = degree_based_labels(deg, num_classes, seed);
  g.features = synthetic_features(g.num_nodes, feature_dim, g.labels, label_signal, seed);
  make_split_masks(g.num_nodes, 0.6, 0.2, seed, g.train_mask, g.val_mask, g.test_mask);
  return g;
}

}  // namespace

Graph make_proxy(const DatasetInfo& info, std::int64_t target_nodes, std::uint64_t seed) {
  PLEXUS_CHECK(target_nodes >= 64, "proxy too small");
  const double avg_deg = info.avg_degree();
  sparse::Coo edges;
  switch (info.kind) {
    case GraphClass::Social:
    case GraphClass::CoPurchase:
    case GraphClass::Citation: {
      // Power-law Kronecker; denser graphs get a more skewed partition matrix.
      const int scale = static_cast<int>(std::ceil(std::log2(static_cast<double>(target_nodes))));
      const auto n = std::int64_t{1} << scale;
      const auto target_edges =
          static_cast<std::int64_t>(static_cast<double>(n) * avg_deg / 2.0);
      const double a = info.kind == GraphClass::Social ? 0.55 : 0.57;
      edges = rmat(scale, target_edges, a, 0.19, 0.19, 1.0 - a - 0.38, seed);
      break;
    }
    case GraphClass::ProteinSim: {
      // HipMCL isolates: dense clusters of a few hundred proteins.
      const std::int64_t comm = std::max<std::int64_t>(32, target_nodes / 256);
      edges = community_graph(target_nodes, comm, avg_deg, 0.8, seed);
      break;
    }
    case GraphClass::RoadNetwork: {
      const auto side = static_cast<std::int64_t>(std::sqrt(static_cast<double>(target_nodes)));
      // Lattice has <= 2 directed edges per node per direction; keep_prob tuned
      // so the symmetrised average degree matches the dataset (~2 * E / N).
      const double keep = std::min(1.0, avg_deg / 2.0);
      edges = road_network(side, side, keep, 0.01, seed);
      break;
    }
  }
  return finalize_graph(info.name + "-proxy", std::move(edges), info.feature_dim,
                        info.num_classes, /*label_signal=*/0.5f, seed);
}

Graph make_test_graph(std::int64_t num_nodes, double avg_degree, std::int64_t feature_dim,
                      std::int64_t num_classes, std::uint64_t seed) {
  const auto target_edges =
      static_cast<std::int64_t>(static_cast<double>(num_nodes) * avg_degree / 2.0);
  sparse::Coo edges = erdos_renyi(num_nodes, target_edges, seed);
  return finalize_graph("test-graph", std::move(edges), feature_dim, num_classes,
                        /*label_signal=*/1.0f, seed);
}

}  // namespace plexus::graph
