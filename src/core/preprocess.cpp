#include "core/preprocess.hpp"

#include <algorithm>

#include "sparse/partition2d.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace plexus::core {

const char* scheme_name(PermutationScheme s) {
  switch (s) {
    case PermutationScheme::None: return "original";
    case PermutationScheme::Single: return "single-permutation";
    case PermutationScheme::Double: return "double-permutation";
  }
  return "?";
}

bool scheme_from_string(std::string_view s, PermutationScheme& out) {
  return util::enum_from_string(s, out);
}

namespace {

std::int64_t round_up(std::int64_t v, std::int64_t multiple) {
  return (v + multiple - 1) / multiple * multiple;
}

}  // namespace

PlexusDataset preprocess_graph(const graph::Graph& g, PermutationScheme scheme, int num_layers,
                               std::int64_t pad_multiple, std::uint64_t seed) {
  PLEXUS_CHECK(num_layers >= 1, "need at least one layer");
  PLEXUS_CHECK(pad_multiple >= 1, "pad_multiple must be positive");

  PlexusDataset out;
  out.scheme = scheme;
  out.num_nodes = g.num_nodes;
  out.padded_nodes = round_up(g.num_nodes, pad_multiple);
  out.feature_dim = g.feature_dim();
  out.padded_feature_dim = round_up(g.feature_dim(), pad_multiple);
  out.num_classes = g.num_classes;
  out.train_total = g.train_count();

  // Normalised adjacency at padded size (padded tail has no entries).
  sparse::Coo padded_edges = g.edges;
  padded_edges.num_rows = out.padded_nodes;
  padded_edges.num_cols = out.padded_nodes;
  const sparse::Csr normalized =
      sparse::normalize_adjacency(sparse::Csr::from_coo(padded_edges, false), g.num_nodes);

  // Permutations over the padded index space: padding rows scatter uniformly,
  // which keeps per-shard *active* row counts balanced too.
  std::vector<std::int64_t> p_r;
  std::vector<std::int64_t> p_c;
  switch (scheme) {
    case PermutationScheme::None:
      p_r = util::identity_permutation(out.padded_nodes);
      p_c = p_r;
      break;
    case PermutationScheme::Single:
      p_r = util::random_permutation(out.padded_nodes, util::hash_combine(seed, 1));
      p_c = p_r;
      break;
    case PermutationScheme::Double:
      p_r = util::random_permutation(out.padded_nodes, util::hash_combine(seed, 1));
      p_c = util::random_permutation(out.padded_nodes, util::hash_combine(seed, 2));
      break;
  }

  out.adj_even = normalized.permuted(p_r, p_c);  // P_r A~ P_c^T  (eq. 5.3)
  if (scheme == PermutationScheme::Double) {
    out.adj_odd = normalized.permuted(p_c, p_r);  // P_c A~ P_r^T (eq. 5.4)
  } else {
    out.adj_odd = out.adj_even;
  }

  // Features live in the input (column) permutation: layer 0 computes
  // (P_r A P_c^T)(P_c F) per eq. 5.3.
  out.features = dense::Matrix(out.padded_nodes, out.padded_feature_dim);
  for (std::int64_t u = 0; u < g.num_nodes; ++u) {
    const auto dst = p_c[static_cast<std::size_t>(u)];
    std::copy(g.features.row(u), g.features.row(u) + g.feature_dim(), out.features.row(dst));
  }

  // The final layer's output rows are ordered by P_r when (L-1) is even,
  // else by P_c; labels and masks must match that ordering.
  const auto& p_out = (num_layers - 1) % 2 == 0 ? p_r : p_c;
  out.labels.assign(static_cast<std::size_t>(out.padded_nodes), 0);
  out.train_mask.assign(static_cast<std::size_t>(out.padded_nodes), 0);
  out.val_mask.assign(static_cast<std::size_t>(out.padded_nodes), 0);
  out.test_mask.assign(static_cast<std::size_t>(out.padded_nodes), 0);
  for (std::int64_t u = 0; u < g.num_nodes; ++u) {
    const auto dst = static_cast<std::size_t>(p_out[static_cast<std::size_t>(u)]);
    out.labels[dst] = g.labels[static_cast<std::size_t>(u)];
    out.train_mask[dst] = g.train_mask[static_cast<std::size_t>(u)];
    out.val_mask[dst] = g.val_mask[static_cast<std::size_t>(u)];
    out.test_mask[dst] = g.test_mask[static_cast<std::size_t>(u)];
  }
  return out;
}

double scheme_imbalance(const graph::Graph& g, PermutationScheme scheme, std::int64_t grid_rows,
                        std::int64_t grid_cols, std::uint64_t seed) {
  const auto ds = preprocess_graph(g, scheme, /*num_layers=*/1,
                                   /*pad_multiple=*/grid_rows * grid_cols, seed);
  return sparse::grid_imbalance(ds.adj_even, grid_rows, grid_cols).max_over_mean;
}

}  // namespace plexus::core
