#pragma once
/// \file checkpoint.hpp
/// On-disk model state for checkpoint save/restore (`model.plx`).
///
/// A checkpoint directory is a sharded dataset directory (shard_io.hpp:
/// adjacency block files, feature row blocks holding the *current trained*
/// input features, labels, masks, meta) plus this one extra file carrying
/// everything the dataset files cannot: the model spec, the per-layer weight
/// matrices and optimizer moments, the feature optimizer moments, the
/// preprocess seed/scheme (from which the permutations regenerate
/// deterministically) and the epoch counter. Everything is stored at the
/// *global padded* shape in canonical row-major layout, so any grid — or a
/// serial server — can re-slice it; restoring on the same grid reproduces
/// training bitwise (tests/test_checkpoint.cpp).
///
/// Same conventions as the dataset files: kPlxMagic header, fixed-width
/// little-endian PODs, checked short-read/short-write paths.

#include <cstdint>
#include <string>
#include <vector>

#include "dense/optim.hpp"

namespace plexus::io {

/// One layer's persisted state: the full logical (in_dim_padded x
/// out_dim_padded) weight matrix plus same-shape Adam moments.
struct LayerState {
  std::int64_t rows = 0;  ///< in_dim_padded
  std::int64_t cols = 0;  ///< out_dim_padded
  std::vector<float> w;   ///< rows * cols, row-major
  std::vector<float> m;   ///< Adam first moment
  std::vector<float> v;   ///< Adam second moment
  std::int64_t adam_t = 0;
};

/// Contents of `model.plx`. The trained input features themselves live in
/// the checkpoint's feature block files (they *are* the dataset features of
/// a resumed run); only their optimizer moments ride here.
struct ModelState {
  // --- model spec (core::GcnSpec, flattened to POD scalars) ---
  std::vector<std::int64_t> hidden_dims;
  std::uint64_t model_seed = 42;
  std::uint8_t train_input_features = 1;
  // Resolved core::PlexusOptions the model was trained with.
  std::int32_t agg_row_blocks = 1;
  std::uint8_t gemm_dw_tuning = 0;
  std::int32_t pipeline_depth = 0;
  std::int32_t aggregation = 0;  ///< core::Aggregation as int
  dense::AdamConfig adam;
  // --- preprocessing identity (permutations regenerate from these) ---
  std::int32_t scheme = 2;  ///< core::PermutationScheme as int
  std::uint64_t preprocess_seed = 7;
  std::int64_t pad_multiple = 1;
  // --- progress ---
  std::int64_t epochs_completed = 0;
  // --- trainable-feature optimizer state, global padded shape ---
  std::int64_t feat_rows = 0;  ///< padded_nodes
  std::int64_t feat_cols = 0;  ///< padded_feature_dim
  std::vector<float> feat_m;
  std::vector<float> feat_v;
  std::int64_t feat_t = 0;
  // --- per-layer state ---
  std::vector<LayerState> layers;

  int num_layers() const { return static_cast<int>(layers.size()); }
};

/// Write `dir`/model.plx (directory is created if needed). Throws on any
/// short write, including the deferred full-disk flush at close.
void write_model_state(const std::string& dir, const ModelState& s);

/// Read `dir`/model.plx. Throws on missing file, bad magic, truncation,
/// trailing bytes, or inconsistent internal sizes.
ModelState read_model_state(const std::string& dir);

}  // namespace plexus::io
