// Planning a billion-edge full-graph training run (the paper's headline
// scenario): for ogbn-papers100M (1.6B edges) at 512-2048 GPUs on both
// machines, pick the best 3D configuration, predict the epoch breakdown, and
// estimate the per-GPU memory footprint that makes full-graph training
// feasible at this scale. Finishes with a sharded-file write/load round trip
// on a proxy, the workflow a real deployment would use (section 5.4).
//
// --run-proxy upgrades the demo to the full out-of-core pipeline: generate a
// scale-N RMAT proxy straight to sharded block files (graph::rmat_to_shards,
// never holding the graph in memory), then train streaming epochs out of the
// directory under a fixed --rss-budget — the block cache's peak residency is
// reported against the budget and the total on-disk adjacency bytes.
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/dataset_view.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "graph/rmat_shards.hpp"
#include "loader/shard_io.hpp"
#include "perfmodel/perfmodel.hpp"
#include "sim/machine.hpp"
#include "sparse/csr.hpp"
#include "util/arg_parser.hpp"
#include "util/table.hpp"

namespace {

int fail(const plexus::util::ArgParser& args, const std::string& what) {
  std::fprintf(stderr, "billion_edge_planner: %s\n%s", what.c_str(), args.usage().c_str());
  return 1;
}

/// The planning table + sharded round-trip demo (the original, flagless run).
int plan() {
  using plexus::util::Table;
  namespace pp = plexus::perf;

  const auto& info = plexus::graph::dataset_info("ogbn-papers100M");
  const auto w = pp::WorkloadStats::from_dataset(info);
  std::printf("planning full-graph training of %s: %lld nodes, %lld edges\n", info.name.c_str(),
              static_cast<long long>(info.num_nodes), static_cast<long long>(info.num_edges));

  Table t({"Machine", "#GPUs", "Config", "SpMM (ms)", "Comm (ms)", "Total (ms)",
           "Mem/GPU (GB)"});
  for (const auto* m :
       {&plexus::sim::Machine::perlmutter_a100(), &plexus::sim::Machine::frontier_mi250x_gcd()}) {
    for (const int gpus : {512, 1024, 2048}) {
      const auto grid = pp::best_configuration(*m, w, gpus);
      const auto e = pp::predict_epoch(*m, w, grid);
      t.add_row({m->name, std::to_string(gpus), pp::grid_to_string(grid),
                 Table::fmt(e.spmm_seconds * 1e3, 1), Table::fmt(e.comm_seconds * 1e3, 1),
                 Table::fmt(e.total() * 1e3, 1),
                 Table::fmt(pp::estimate_per_gpu_bytes(w, grid) / 1e9, 2)});
    }
  }
  t.print();
  std::printf("\n(40 GB A100s need >= 512 GPUs for the full graph — the paper uses 80 GB nodes "
              "for its 64/128-GPU papers100M points.)\n");

  // Deployment workflow: write the (proxy) dataset as 2D shard files once,
  // then each rank loads only its window (section 5.4).
  const auto proxy = plexus::graph::make_proxy(info, 30'000, 11);
  const auto adj = plexus::sparse::normalize_adjacency(proxy.adjacency(), proxy.num_nodes);
  const auto dir = std::filesystem::temp_directory_path() / "plexus_planner_demo";
  std::filesystem::remove_all(dir);
  plexus::io::write_sharded_dataset(dir.string(), adj, proxy.features, proxy.labels,
                                    proxy.num_classes, 8, 8);
  plexus::io::LoadStats stats;
  const auto shard = plexus::io::load_adjacency_block(dir.string(), 0, adj.rows() / 8, 0,
                                                      adj.cols() / 8, &stats);
  std::printf("\nsharded-file round trip (proxy): rank 0 loaded its %lld x %lld window "
              "(%lld nnz) reading %.1f%% of the dataset bytes\n",
              static_cast<long long>(shard.rows()), static_cast<long long>(shard.cols()),
              static_cast<long long>(shard.nnz()),
              100.0 * static_cast<double>(stats.bytes_read) /
                  static_cast<double>(12 * adj.nnz() + 4 * proxy.features.size()));
  std::filesystem::remove_all(dir);
  return 0;
}

/// --run-proxy: generate a scale-N RMAT proxy to disk and train streaming
/// epochs out of it under the RSS budget. The proof-of-feasibility run for
/// "graphs bigger than memory": the budgeted block cache, not the graph size,
/// bounds resident adjacency bytes.
int run_proxy(int scale, std::int64_t rss_budget_mb, int epochs, const std::string& keep_dir) {
  namespace pg = plexus::graph;
  const auto& info = pg::dataset_info("ogbn-papers100M");
  const std::int64_t nodes = std::int64_t{1} << scale;

  plexus::core::TrainOptions opt;
  opt.grid = {2, 2, 1};
  opt.model.hidden_dims = {64};
  opt.model.options.agg_row_blocks = 8;
  opt.epochs = epochs;
  opt.rss_budget_bytes = rss_budget_mb << 20;
  const int volume = opt.grid.size();

  auto spec = pg::proxy_shards_spec(info, nodes, /*seed=*/1);
  spec.scheme = static_cast<int>(opt.scheme);
  spec.num_layers = opt.model.num_layers();
  spec.pad_multiple = volume;
  spec.preprocess_seed = opt.preprocess_seed;
  spec.parts = volume;

  const std::string dir =
      keep_dir.empty()
          ? (std::filesystem::temp_directory_path() /
             ("plexus_proxy_scale" + std::to_string(scale))).string()
          : keep_dir;
  std::printf("generating scale-%d proxy (%lld nodes) straight to shards in %s ...\n", scale,
              static_cast<long long>(nodes), dir.c_str());
  const auto r = pg::rmat_to_shards(dir, spec);
  std::printf("  %lld edges, %lld nnz per version, %.1f MB on disk "
              "(peak generation buffer %.1f MB)\n",
              static_cast<long long>(r.num_edges), static_cast<long long>(r.adjacency_nnz),
              static_cast<double>(r.bytes_written) / 1e6,
              static_cast<double>(r.peak_buffer_bytes) / 1e6);

  // Both adjacency versions with transposes would be resident in-memory; the
  // streamed run holds at most the budget.
  const double adj_bytes = 2.0 * (static_cast<double>(r.adjacency_nnz) * 12.0 +
                                  static_cast<double>(r.padded_nodes + 1) * 8.0);
  std::printf("training %d streaming epochs under a %lld MB block-cache budget "
              "(resident adjacency would be %.1f MB)\n",
              epochs, static_cast<long long>(rss_budget_mb), adj_bytes / 1e6);

  // Train through a named budgeted view (instead of train_plexus_streaming)
  // so the cache high-water mark is still readable after the run.
  const plexus::core::ShardedDatasetView view(dir, opt.rss_budget_bytes);
  plexus::core::TrainOptions sopt = opt;
  sopt.aggregation = plexus::core::Aggregation::Dense;
  const auto result = plexus::core::train_plexus(view, sopt);

  double io_bytes = 0.0;
  double io_s = 0.0;
  for (std::size_t e = 0; e < result.epochs.size(); ++e) {
    const auto& s = result.epochs[e];
    io_bytes += s.io_bytes_streamed;
    io_s += s.io_exposed_seconds;
    std::printf("epoch %2zu  loss %.4f  acc %.3f  sim %.2f ms  streamed %.1f MB  "
                "exposed io %.1f ms\n",
                e + 1, s.loss, s.train_accuracy, s.epoch_seconds * 1e3,
                s.io_bytes_streamed / 1e6, s.io_exposed_seconds * 1e3);
  }
  const auto cs = view.cache_stats();
  std::printf("streamed %.1f MB total, %.1f ms exposed IO; cache peak %.1f MiB / budget "
              "%lld MiB (%s), %lld hits / %lld misses / %lld evictions\n",
              io_bytes / 1e6, io_s * 1e3,
              static_cast<double>(cs.peak_resident_bytes) / (1 << 20),
              static_cast<long long>(rss_budget_mb),
              cs.peak_resident_bytes <= (rss_budget_mb << 20) ? "within budget" : "OVER BUDGET",
              static_cast<long long>(cs.hits), static_cast<long long>(cs.misses),
              static_cast<long long>(cs.evictions));
  if (keep_dir.empty()) std::filesystem::remove_all(dir);
  return cs.peak_resident_bytes <= (rss_budget_mb << 20) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using plexus::util::ArgParser;
  ArgParser args("billion_edge_planner",
                 "Plan billion-edge full-graph training; --run-proxy streams a generated "
                 "proxy from disk under an RSS budget.",
                 "");
  args.add_flag("run-proxy", "", "generate a proxy to shards and train out-of-core", "");
  args.add_flag("scale", "n", "proxy scale: log2(#nodes)", "24");
  args.add_flag("rss-budget", "MB", "streaming block-cache budget in MB", "256");
  args.add_flag("epochs", "n", "streaming epochs to train", "2");
  args.add_flag("dir", "path", "keep the generated shard directory here (default: tmp, removed)");

  switch (args.parse(argc, argv)) {
    case ArgParser::Status::Help: std::fputs(args.usage().c_str(), stdout); return 0;
    case ArgParser::Status::Error:
      std::fprintf(stderr, "billion_edge_planner: %s\n%s", args.error().c_str(),
                   args.usage().c_str());
      return 1;
    case ArgParser::Status::Ok: break;
  }
  if (!args.is_set("run-proxy")) return plan();

  int scale = 0;
  if (!args.value_int("scale", scale) || scale < 10 || scale > 30) {
    return fail(args, "bad --scale '" + args.value("scale") + "' (expected 10..30)");
  }
  std::int64_t budget_mb = 0;
  if (!args.value_int64("rss-budget", budget_mb) || budget_mb < 1) {
    return fail(args, "bad --rss-budget '" + args.value("rss-budget") + "'");
  }
  int epochs = 0;
  if (!args.value_int("epochs", epochs) || epochs < 1) {
    return fail(args, "bad --epochs '" + args.value("epochs") + "'");
  }
  return run_proxy(scale, budget_mb, epochs, std::string(args.value("dir")));
}
