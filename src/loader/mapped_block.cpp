#include "loader/mapped_block.hpp"

#include <cstdio>
#include <cstdlib>

#include "loader/file_hooks.hpp"
#include "loader/file_io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PLEXUS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace plexus::io {
namespace {

bool use_mmap() {
#if defined(PLEXUS_HAVE_MMAP)
  // Fault injection must see every byte the streaming path consumes, so an
  // installed hook forces the stdio fallback (a short read cannot be
  // injected into a page fault). PLEXUS_NO_MMAP exercises the portable
  // path on mmap-capable hosts.
  if (file_hooks_active()) return false;
  const char* env = std::getenv("PLEXUS_NO_MMAP");
  if (env != nullptr && *env != '\0' && *env != '0') return false;
  return true;
#else
  return false;
#endif
}

}  // namespace

std::shared_ptr<const MappedBlock> MappedBlock::open(const std::string& path) {
  std::shared_ptr<MappedBlock> block(new MappedBlock());
  block->path_ = path;
#if defined(PLEXUS_HAVE_MMAP)
  if (use_mmap()) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    PLEXUS_CHECK(fd >= 0, "cannot open " + path);
    struct stat st{};
    const bool stat_ok = ::fstat(fd, &st) == 0;
    if (!stat_ok) ::close(fd);
    PLEXUS_CHECK(stat_ok, "cannot stat " + path);
    const auto len = static_cast<std::size_t>(st.st_size);
    if (len == 0) {
      ::close(fd);
      return block;
    }
    void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping holds its own reference
    PLEXUS_CHECK(map != MAP_FAILED, "mmap failed for " + path);
#if defined(MADV_WILLNEED)
    ::madvise(map, len, MADV_WILLNEED);  // the prefetch thread reads it next
#endif
    block->map_ = map;
    block->map_len_ = len;
    block->data_ = static_cast<const std::byte*>(map);
    block->size_ = len;
    return block;
  }
#endif
  // Portable fallback: pull the whole file through the hookable stdio path.
  File f = open_file(path, "rb");
  PLEXUS_CHECK(std::fseek(f.get(), 0, SEEK_END) == 0, "cannot seek in " + path);
  const long end = std::ftell(f.get());
  PLEXUS_CHECK(end >= 0, "cannot size " + path);
  std::rewind(f.get());
  const auto len = static_cast<std::size_t>(end);
  if (len > 0) {
    block->heap_.resize((len + sizeof(std::uint64_t) - 1) / sizeof(std::uint64_t));
    PLEXUS_CHECK(checked_fread(block->heap_.data(), 1, len, f.get()) == len,
                 "short read in " + path);
    block->data_ = reinterpret_cast<const std::byte*>(block->heap_.data());
    block->size_ = len;
  }
  return block;
}

MappedBlock::~MappedBlock() {
#if defined(PLEXUS_HAVE_MMAP)
  if (map_ != nullptr) ::munmap(map_, map_len_);
#endif
}

}  // namespace plexus::io
