#pragma once
/// \file partition2d.hpp
/// Uniform 2D block decomposition of a sparse matrix and its load-imbalance
/// statistics. The paper's Table 3 reports max/mean nonzeros over the 8x8 block
/// grid of europe_osm under the original ordering, a single permutation, and
/// the double-permutation scheme.

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace plexus::sparse {

/// Uniform block boundaries: splits `extent` into `parts` ranges. `extent`
/// must be divisible by `parts` for shard use; stats tolerate ragged tails.
std::vector<std::int64_t> block_bounds(std::int64_t extent, std::int64_t parts);

/// Like block_bounds, but every boundary (and therefore every block length)
/// is a multiple of `align`. Requires `extent % align == 0`. Used where row
/// blocks must subdivide evenly across a process group — e.g. the per-block
/// reduce-scatter of the layer-0 feature gradient, whose chunks must align
/// with the row-major resharded trainable-feature slices (core/model.cpp).
/// When extent/align < parts the trailing blocks are empty, matching
/// block_bounds' behaviour for small extents.
std::vector<std::int64_t> block_bounds_aligned(std::int64_t extent, std::int64_t parts,
                                               std::int64_t align);

/// nnz of each block in an R x C uniform grid decomposition, row-major order.
std::vector<std::int64_t> grid_nnz(const Csr& a, std::int64_t grid_rows, std::int64_t grid_cols);

struct ImbalanceStats {
  double max_over_mean = 0.0;
  std::int64_t max_nnz = 0;
  std::int64_t min_nnz = 0;
  double mean_nnz = 0.0;
};

/// Table 3 metric over an R x C grid.
ImbalanceStats grid_imbalance(const Csr& a, std::int64_t grid_rows, std::int64_t grid_cols);

}  // namespace plexus::sparse
