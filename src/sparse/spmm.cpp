#include "sparse/spmm.hpp"

#include "util/error.hpp"

namespace plexus::sparse {

void spmm_rows(const Csr& a, const dense::Matrix& b, dense::Matrix& c, std::int64_t r0,
               std::int64_t r1) {
  PLEXUS_CHECK(a.cols() == b.rows(), "spmm: inner dimension mismatch");
  PLEXUS_CHECK(c.rows() == a.rows() && c.cols() == b.cols(), "spmm: output shape mismatch");
  PLEXUS_CHECK(0 <= r0 && r0 <= r1 && r1 <= a.rows(), "spmm_rows: bad row range");
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.vals();
  const std::int64_t n = b.cols();
  for (std::int64_t r = r0; r < r1; ++r) {
    float* crow = c.row(r);
    for (std::int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
    for (std::int64_t k = rp[static_cast<std::size_t>(r)]; k < rp[static_cast<std::size_t>(r) + 1];
         ++k) {
      const float v = va[static_cast<std::size_t>(k)];
      const float* brow = b.row(ci[static_cast<std::size_t>(k)]);
      for (std::int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
    }
  }
}

void spmm(const Csr& a, const dense::Matrix& b, dense::Matrix& c) {
  spmm_rows(a, b, c, 0, a.rows());
}

dense::Matrix spmm(const Csr& a, const dense::Matrix& b) {
  dense::Matrix c(a.rows(), b.cols());
  spmm(a, b, c);
  return c;
}

void spmm_accumulate(const Csr& a, const dense::Matrix& b, dense::Matrix& c) {
  PLEXUS_CHECK(a.cols() == b.rows(), "spmm_accumulate: inner dimension mismatch");
  PLEXUS_CHECK(c.rows() == a.rows() && c.cols() == b.cols(), "spmm_accumulate: output shape");
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.vals();
  const std::int64_t n = b.cols();
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    float* crow = c.row(r);
    for (std::int64_t k = rp[static_cast<std::size_t>(r)]; k < rp[static_cast<std::size_t>(r) + 1];
         ++k) {
      const float v = va[static_cast<std::size_t>(k)];
      const float* brow = b.row(ci[static_cast<std::size_t>(k)]);
      for (std::int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
    }
  }
}

std::int64_t spmm_flops(const Csr& a, std::int64_t dense_cols) {
  return 2 * a.nnz() * dense_cols;
}

}  // namespace plexus::sparse
