#!/usr/bin/env python3
"""CI perf-smoke gate for the pipelined aggregation path.

Reads a google-benchmark JSON report from bench/micro_collectives and asserts

  1. the pipelined blocked-aggregation schedule exposes strictly less
     simulated communication time than the fully blocking baseline, by at
     least the checked-in margin, and
  2. the perf-model adaptive pipeline depth (depth arg 0) exposes no more
     simulated communication time than the *best* fixed depth in the sweep.

Thresholds live in tools/perf_smoke_thresholds.json. The gated counters
(sim_exposed_comm_s / sim_hidden_comm_s) are derived from post-time clocks and
the ring cost model — fully deterministic, so the gate is runner-independent.
On failure every violated threshold is printed with a value-vs-limit diff.

The micro_collectives report additionally carries the bf16 wire-format
gate: with PLEXUS_WIRE-style bf16 payloads the trainer's wire bytes must
drop to at most `wire_bytes_max_ratio` of the fp32 run (deterministic byte
accounting; the measured ratio is exactly 0.5 on all-float workloads).

It can also gate the SIMD kernel dispatch: pass --kernels-report=PATH with
a bench/micro_kernels JSON report (--benchmark_filter to include
SimdVsScalar) and the `simd_speedup` section is checked — the active
target's `speedup_vs_serial` against the pinned scalar kernel table must
clear the per-benchmark floor. Those are wall-clock ratios, so the floors
are far below measured values; they catch the vectorized path silently
losing to (or dispatching to) the scalar fallback.

And it can gate the serving stack: pass --serve-report=PATH with a
bench/micro_serve JSON report and the serve section of the thresholds file
is checked (minimum sustained QPS, maximum p99 latency, nothing rejected).
Serve numbers are wall-clock, so those margins are deliberately loose —
the gate catches order-of-magnitude regressions and outright breakage, not
percent-level drift.

Finally it can gate the out-of-core streaming path: pass
--streaming-report=PATH with a bench/micro_streaming JSON report and the
`streaming` thresholds section is checked — losses bitwise-equal between the
blocking and prefetched runs, the block-cache peak within the RSS budget,
a real volume of bytes streamed, and the fixed-depth pipelined prefetch
schedule exposing no more wall-clock IO than the blocking baseline (skipped
when the baseline itself is too fast to measure — warm-page-cache runners).

Usage: perf_smoke_check.py [micro_collectives.json] [thresholds.json]
                           [--kernels-report=micro_kernels.json]
                           [--serve-report=micro_serve.json]
                           [--streaming-report=micro_streaming.json]
"""
import json
import os
import sys

# Deterministic counters still cross the JSON text round-trip; allow one ulp
# worth of slack so "equal to the best fixed depth" never flakes.
EPS = 1e-12


def load_counters(report_path):
    with open(report_path) as f:
        report = json.load(f)
    counters = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        counters[b["name"]] = b
    return counters


def get_counter(counters, name, key, failures):
    bench = counters.get(name)
    if bench is None:
        failures.append(f"benchmark missing from report: {name}")
        return None
    value = bench.get(key)
    if value is None:
        failures.append(f"{name}: counter {key} missing from report")
    return value


def fmt_us(seconds):
    return f"{seconds * 1e6:.2f}us"


def check_pipelined_vs_blocking(counters, thresholds, failures):
    max_ratio = thresholds["pipelined_vs_blocking_max_ratio"]
    for pair in thresholds["pairs"]:
        base_name, piped_name = pair["baseline"], pair["pipelined"]
        base = get_counter(counters, base_name, "sim_exposed_comm_s", failures)
        piped = get_counter(counters, piped_name, "sim_exposed_comm_s", failures)
        hidden = get_counter(counters, piped_name, "sim_hidden_comm_s", failures)
        if base is None or piped is None or hidden is None:
            continue
        ratio = piped / base if base > 0 else float("inf")
        ok = piped < base and ratio <= max_ratio and hidden > 0
        print(
            f"[{'OK' if ok else 'FAIL'}] {piped_name}: exposed {fmt_us(piped)} vs blocking "
            f"{fmt_us(base)} (ratio {ratio:.3f}, limit {max_ratio}); hidden {fmt_us(hidden)}"
        )
        if not ok:
            failures.append(
                f"{piped_name}: exposed {fmt_us(piped)} not below blocking {fmt_us(base)} by "
                f"the required margin (ratio {ratio:.3f} > limit {max_ratio}"
                f", diff {fmt_us(piped - base * max_ratio)} over)"
                + ("" if hidden > 0 else "; and no hidden time at all")
            )


def check_adaptive_vs_best_fixed(counters, thresholds, failures):
    max_ratio = thresholds.get("adaptive_vs_best_fixed_max_ratio")
    groups = thresholds.get("adaptive", [])
    if max_ratio is None or not groups:
        return
    for group in groups:
        adaptive_name = group["adaptive"]
        adaptive = get_counter(counters, adaptive_name, "sim_exposed_comm_s", failures)
        fixed = {}
        for name in group["fixed"]:
            v = get_counter(counters, name, "sim_exposed_comm_s", failures)
            if v is not None:
                fixed[name] = v
        if adaptive is None or len(fixed) != len(group["fixed"]):
            continue
        best_name, best = min(fixed.items(), key=lambda kv: kv[1])
        limit = best * max_ratio + EPS
        ok = adaptive <= limit
        depth = counters[adaptive_name].get("adaptive_depth")
        depth_str = f", chose depth {depth:.0f}" if depth is not None else ""
        print(
            f"[{'OK' if ok else 'FAIL'}] {adaptive_name}: exposed {fmt_us(adaptive)} vs best "
            f"fixed {best_name} {fmt_us(best)} (limit ratio {max_ratio}{depth_str})"
        )
        if not ok:
            per_depth = ", ".join(f"{n}={fmt_us(v)}" for n, v in sorted(fixed.items()))
            failures.append(
                f"{adaptive_name}: adaptive exposed {fmt_us(adaptive)} exceeds limit "
                f"{fmt_us(limit)} ({fmt_us(adaptive - limit)} over; fixed sweep: {per_depth})"
            )


def fmt_mb(b):
    return f"{b:.2f}MB"


def check_sparse_bytes(counters, thresholds, failures):
    max_ratio = thresholds.get("sparse_bytes_max_ratio")
    names = thresholds.get("sparse_bytes", [])
    if max_ratio is None or not names:
        return
    for name in names:
        ratio = get_counter(counters, name, "sparse_bytes_ratio", failures)
        dense_mb = get_counter(counters, name, "dense_wire_mb", failures)
        sparse_mb = get_counter(counters, name, "sparse_wire_mb", failures)
        if ratio is None or dense_mb is None or sparse_mb is None:
            continue
        ok = dense_mb > 0 and ratio <= max_ratio
        print(
            f"[{'OK' if ok else 'FAIL'}] {name}: sparse {fmt_mb(sparse_mb)} vs dense "
            f"{fmt_mb(dense_mb)} wire bytes (ratio {ratio:.3f}, limit {max_ratio})"
        )
        if not ok:
            failures.append(
                f"{name}: sparse aggregation wire bytes {fmt_mb(sparse_mb)} not below dense "
                f"{fmt_mb(dense_mb)} by the required margin (ratio {ratio:.3f} > "
                f"limit {max_ratio})"
            )


def check_wire_bytes(counters, thresholds, failures):
    max_ratio = thresholds.get("wire_bytes_max_ratio")
    names = thresholds.get("wire_bytes", [])
    if max_ratio is None or not names:
        return
    for name in names:
        ratio = get_counter(counters, name, "wire_bytes_ratio", failures)
        fp32_mb = get_counter(counters, name, "fp32_wire_mb", failures)
        bf16_mb = get_counter(counters, name, "bf16_wire_mb", failures)
        if ratio is None or fp32_mb is None or bf16_mb is None:
            continue
        ok = fp32_mb > 0 and ratio <= max_ratio
        print(
            f"[{'OK' if ok else 'FAIL'}] {name}: bf16 {fmt_mb(bf16_mb)} vs fp32 "
            f"{fmt_mb(fp32_mb)} wire bytes (ratio {ratio:.3f}, limit {max_ratio})"
        )
        if not ok:
            failures.append(
                f"{name}: bf16 wire bytes {fmt_mb(bf16_mb)} not below fp32 {fmt_mb(fp32_mb)} by "
                f"the required margin (ratio {ratio:.3f} > limit {max_ratio})"
            )


def check_simd_speedup(counters, thresholds, failures):
    gates = thresholds.get("simd_speedup", [])
    if not gates:
        failures.append("thresholds file has no 'simd_speedup' section")
        return
    for gate in gates:
        name = gate["benchmark"]
        speedup = get_counter(counters, name, "speedup_vs_serial", failures)
        if speedup is None:
            continue
        target = counters[name].get("label", "")
        ok = speedup >= gate["min_speedup"]
        print(
            f"[{'OK' if ok else 'FAIL'}] {name}: {speedup:.2f}x vs pinned scalar kernels "
            f"(min {gate['min_speedup']}x{', target ' + target if target else ''})"
        )
        if not ok:
            failures.append(
                f"{name}: SIMD speedup {speedup:.2f}x below the {gate['min_speedup']}x floor "
                f"({'target ' + target if target else 'unknown target'})"
            )


def check_serve(counters, thresholds, failures):
    serve = thresholds.get("serve")
    if serve is None:
        failures.append("thresholds file has no 'serve' section")
        return
    name = serve["benchmark"]
    qps = get_counter(counters, name, "qps", failures)
    p99 = get_counter(counters, name, "p99_us", failures)
    rejected = get_counter(counters, name, "rejected", failures)
    if qps is None or p99 is None or rejected is None:
        return
    ok = qps >= serve["min_qps"] and p99 <= serve["max_p99_us"] and rejected == 0
    print(
        f"[{'OK' if ok else 'FAIL'}] {name}: {qps:.0f} QPS (min {serve['min_qps']:.0f}), "
        f"p99 {p99:.1f}us (max {serve['max_p99_us']:.0f}us), {rejected:.0f} rejected"
    )
    if not ok:
        failures.append(
            f"{name}: QPS {qps:.0f} / p99 {p99:.1f}us / rejected {rejected:.0f} violates "
            f"(min_qps {serve['min_qps']}, max_p99_us {serve['max_p99_us']}, rejected == 0)"
        )


def check_streaming(counters, thresholds, failures):
    gate = thresholds.get("streaming")
    if gate is None:
        failures.append("thresholds file has no 'streaming' section")
        return
    name = gate["benchmark"]
    pipelined = get_counter(counters, name, "io_exposed_s_pipelined", failures)
    blocking = get_counter(counters, name, "io_exposed_s_blocking", failures)
    streamed = get_counter(counters, name, "bytes_streamed_mb", failures)
    peak = get_counter(counters, name, "peak_cache_mb", failures)
    budget = get_counter(counters, name, "budget_mb", failures)
    equal = get_counter(counters, name, "losses_bitwise_equal", failures)
    if None in (pipelined, blocking, streamed, peak, budget, equal):
        return
    # Exposed IO is wall-clock; on a warm page cache the blocking baseline can
    # be too fast for the overlap comparison to mean anything — then only the
    # deterministic invariants (budget, bytes, bitwise losses) are gated. The
    # gated prefetch run uses a fixed deep depth (the report's prefetch_depth
    # counter); the adaptive run is reported but not gated, because the perf
    # model prices IO at raw disk bandwidth and may legitimately choose a
    # shallow depth on a page-cached tmpdir.
    floor = gate.get("min_measurable_io_s", 0.0)
    overlap_ok = blocking <= floor or pipelined <= blocking * gate["max_io_exposed_ratio"] + EPS
    ok = (
        overlap_ok
        and streamed >= gate["min_bytes_streamed_mb"]
        and peak <= budget
        and equal == 1
    )
    print(
        f"[{'OK' if ok else 'FAIL'}] {name}: exposed IO {pipelined * 1e3:.1f}ms pipelined vs "
        f"{blocking * 1e3:.1f}ms blocking (limit ratio {gate['max_io_exposed_ratio']}), "
        f"{streamed:.1f}MB streamed, cache peak {peak:.2f}MB / budget {budget:.0f}MB, "
        f"losses {'bitwise-equal' if equal == 1 else 'DIVERGED'}"
    )
    if not ok:
        details = []
        if not overlap_ok:
            details.append(
                f"pipelined exposed IO {pipelined * 1e3:.1f}ms exceeds blocking "
                f"{blocking * 1e3:.1f}ms * {gate['max_io_exposed_ratio']}"
            )
        if streamed < gate["min_bytes_streamed_mb"]:
            details.append(
                f"only {streamed:.1f}MB streamed (min {gate['min_bytes_streamed_mb']}MB)"
            )
        if peak > budget:
            details.append(f"cache peak {peak:.2f}MB over the {budget:.0f}MB budget")
        if equal != 1:
            details.append("blocking and prefetched losses diverged")
        failures.append(f"{name}: " + "; ".join(details))


def main():
    serve_report = None
    kernels_report = None
    streaming_report = None
    positionals = []
    for arg in sys.argv[1:]:
        if arg.startswith("--serve-report="):
            serve_report = arg.split("=", 1)[1]
        elif arg.startswith("--kernels-report="):
            kernels_report = arg.split("=", 1)[1]
        elif arg.startswith("--streaming-report="):
            streaming_report = arg.split("=", 1)[1]
        else:
            positionals.append(arg)
    if (
        not positionals
        and serve_report is None
        and kernels_report is None
        and streaming_report is None
    ):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    thresholds_path = (
        positionals[1]
        if len(positionals) > 1
        else os.path.join(os.path.dirname(os.path.abspath(__file__)), "perf_smoke_thresholds.json")
    )
    with open(thresholds_path) as f:
        thresholds = json.load(f)

    failures = []
    if positionals:
        counters = load_counters(positionals[0])
        check_pipelined_vs_blocking(counters, thresholds, failures)
        check_adaptive_vs_best_fixed(counters, thresholds, failures)
        check_sparse_bytes(counters, thresholds, failures)
        check_wire_bytes(counters, thresholds, failures)
    if kernels_report is not None:
        check_simd_speedup(load_counters(kernels_report), thresholds, failures)
    if serve_report is not None:
        check_serve(load_counters(serve_report), thresholds, failures)
    if streaming_report is not None:
        check_streaming(load_counters(streaming_report), thresholds, failures)

    if failures:
        print(f"\nperf-smoke FAILED ({len(failures)} threshold(s) violated):", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        return 1
    checked = []
    if positionals:
        checked.append(
            "pipelining hides communication, the adaptive depth matches or beats every "
            "fixed depth, sparse aggregation moves fewer bytes, and bf16 halves the wire"
        )
    if kernels_report is not None:
        checked.append("the SIMD kernels beat the pinned scalar fallback")
    if serve_report is not None:
        checked.append("the serving stack sustains the gated QPS within the p99 latency cap")
    if streaming_report is not None:
        checked.append(
            "streaming epochs stay under the RSS budget with bitwise losses and "
            "prefetch hides the IO"
        )
    print(f"\nperf-smoke passed: {'; '.join(checked)}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
