// Tests for machine models, kernel time models, topology (eq. 4.6), and the
// Nsight-style kernel analyzer (Table 2 mechanism).
#include <gtest/gtest.h>

#include "graph/datasets.hpp"
#include "sim/kernel_analyzer.hpp"
#include "sim/kernels.hpp"
#include "sim/machine.hpp"
#include "sim/topology.hpp"
#include "util/rng.hpp"

namespace psim = plexus::sim;
namespace pd = plexus::dense;

TEST(Machine, PresetsAreSane) {
  const auto& p = psim::Machine::perlmutter_a100();
  const auto& f = psim::Machine::frontier_mi250x_gcd();
  EXPECT_EQ(p.gpus_per_node, 4);
  EXPECT_EQ(f.gpus_per_node, 8);
  EXPECT_NEAR(p.peak_flops, 19.5e12, 1e9);   // section 6.1
  EXPECT_NEAR(f.peak_flops, 23.9e12, 1e11);  // 47.9 Tflop/s MI250X / 2 GCDs
  // ROCm SpMM an order of magnitude slower (section 7.2).
  EXPECT_LT(f.spmm_efficiency, p.spmm_efficiency / 5.0);
}

TEST(Kernels, SpmmTimeScalesWithWork) {
  const auto& m = psim::Machine::perlmutter_a100();
  const psim::SpmmShape small{1'000'000, 100'000, 100'000, 128};
  psim::SpmmShape big = small;
  big.nnz *= 4;
  EXPECT_GT(psim::spmm_time(m, big), psim::spmm_time(m, small) * 1.5);
}

TEST(Kernels, TallSkinnyPenalty) {
  // The U-vs-V experiment (Table 2): equal FLOPs, config V has a 64x larger
  // common dimension and 64x narrower dense operand, and must be much slower.
  const auto& m = psim::Machine::perlmutter_a100();
  const std::int64_t nnz_total = 126'000'000;
  const std::int64_t n = 2'449'029;
  // Per-GPU shards: U holds 1/64 of the nonzeros with the full 100 columns;
  // V holds all nonzeros with 100/64 -> 2 columns. Equal per-GPU FLOPs.
  const psim::SpmmShape u{nnz_total / 64, n, n / 64, 100};
  const psim::SpmmShape v{nnz_total, n, n, 2};
  const double tu = psim::spmm_time(m, u);
  const double tv = psim::spmm_time(m, v);
  EXPECT_GT(tv / tu, 4.0);   // paper observed ~8x
  EXPECT_LT(tv / tu, 30.0);
}

TEST(Kernels, FrontierSpmmSlower) {
  const psim::SpmmShape s{10'000'000, 500'000, 500'000, 128};
  const double tp = psim::spmm_time(psim::Machine::perlmutter_a100(), s);
  const double tf = psim::spmm_time(psim::Machine::frontier_mi250x_gcd(), s);
  EXPECT_GT(tf, 4.0 * tp);
}

TEST(Kernels, NoiseRampsWithWorkingSet) {
  const auto& m = psim::Machine::perlmutter_a100();
  const psim::SpmmShape tiny{1000, 1000, 1000, 8};
  const psim::SpmmShape huge{200'000'000, 5'000'000, 5'000'000, 128};
  double max_tiny = 0.0;
  double max_huge = 0.0;
  for (std::uint64_t s = 0; s < 64; ++s) {
    max_tiny = std::max(max_tiny, psim::spmm_noise_factor(m, tiny, s) - 1.0);
    max_huge = std::max(max_huge, psim::spmm_noise_factor(m, huge, s) - 1.0);
  }
  EXPECT_LT(max_tiny, 0.01);
  EXPECT_GT(max_huge, 0.15);
  // Deterministic per seed.
  EXPECT_EQ(psim::spmm_noise_factor(m, huge, 7), psim::spmm_noise_factor(m, huge, 7));
}

TEST(Kernels, GemmTransposePenaltyOnFrontier) {
  const auto& f = psim::Machine::frontier_mi250x_gcd();
  const double nn = psim::gemm_time(f, 4096, 4096, 4096, pd::Trans::N, pd::Trans::N);
  const double tn = psim::gemm_time(f, 4096, 4096, 4096, pd::Trans::T, pd::Trans::N);
  EXPECT_GT(tn, 10.0 * nn);  // section 5.3's pathological TN mode
  const auto& p = psim::Machine::perlmutter_a100();
  const double nn_p = psim::gemm_time(p, 4096, 4096, 4096, pd::Trans::N, pd::Trans::N);
  const double tn_p = psim::gemm_time(p, 4096, 4096, 4096, pd::Trans::T, pd::Trans::N);
  EXPECT_LT(tn_p, 2.0 * nn_p);  // mild on A100
}

TEST(Topology, Eq46EffectiveBandwidth) {
  const auto& m = psim::Machine::perlmutter_a100();  // 4 GPUs/node
  // Whole grid within a node: everything intra.
  psim::GridShape small{2, 2, 1};
  EXPECT_EQ(psim::link_for_dim(m, small, psim::Dim::Y).bandwidth, m.beta_intra);
  EXPECT_EQ(psim::link_for_dim(m, small, psim::Dim::X).bandwidth, m.beta_intra);

  // Gy = 4 fills the node; X and Z groups cross nodes with NIC contention
  // min(G_node, inner).
  psim::GridShape g{4, 4, 2};
  EXPECT_EQ(psim::link_for_dim(m, g, psim::Dim::Y).bandwidth, m.beta_intra);
  EXPECT_EQ(psim::link_for_dim(m, g, psim::Dim::X).bandwidth, m.beta_inter / 4.0);
  EXPECT_EQ(psim::link_for_dim(m, g, psim::Dim::Z).bandwidth, m.beta_inter / 4.0);

  // Y larger than a node: inter-node without contention divisor.
  psim::GridShape tall{1, 8, 1};
  EXPECT_EQ(psim::link_for_dim(m, tall, psim::Dim::Y).bandwidth, m.beta_inter);
}

TEST(Topology, A2aPenaltyGrowsWithNodes) {
  const auto& m = psim::Machine::perlmutter_a100();
  EXPECT_EQ(psim::a2a_distance_penalty(m, 4), 1.0);
  const double p64 = psim::a2a_distance_penalty(m, 64);
  const double p256 = psim::a2a_distance_penalty(m, 256);
  EXPECT_GT(p64, 1.0);
  EXPECT_GT(p256, p64);
}

TEST(KernelAnalyzer, TallSkinnyConfigDegrades) {
  // Proxy-scale version of Table 2: config U (common dim sharded by 64) vs
  // config V (dense cols sharded by 64). Equal FLOPs.
  const auto& m = psim::Machine::perlmutter_a100();
  const auto g = plexus::graph::make_proxy(plexus::graph::dataset_info("ogbn-products"),
                                           60'000, 21);
  // Plexus shards a *permuted* adjacency (section 5.1); without it, the RMAT
  // hub columns would all land in the first column block.
  const auto perm = plexus::util::random_permutation(g.num_nodes, 77);
  const auto a = g.adjacency().permuted(perm, perm);
  const auto u_shard = a.block(0, a.rows(), 0, a.cols() / 64);

  const auto mu = psim::analyze_spmm(m, u_shard, 100);
  const auto mv = psim::analyze_spmm(m, a, 2);

  // V launches ~64x more blocks (proportional to its nnz / common dimension).
  EXPECT_GT(static_cast<double>(mv.grid_size), 20.0 * static_cast<double>(mu.grid_size));
  // V's narrow rows waste most of each 32B sector.
  EXPECT_GT(mv.uncoalesced_sectors, 10 * mu.uncoalesced_sectors);
  // And its achieved DRAM throughput fraction collapses.
  EXPECT_LT(mv.dram_throughput_pct, mu.dram_throughput_pct);
}

TEST(KernelAnalyzer, GridSizeFormula) {
  const auto g = plexus::graph::make_test_graph(512, 8.0, 8, 4, 3);
  const auto a = g.adjacency();
  const auto metrics = psim::analyze_spmm(psim::Machine::perlmutter_a100(), a, 16);
  EXPECT_EQ(metrics.grid_size, (a.nnz() + 95) / 96);
}
