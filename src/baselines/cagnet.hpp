#pragma once
/// \file cagnet.hpp
/// CAGNET baseline (Tripathy, Yelick, Buluç, SC'20) and its sparsity-aware
/// refinement "SA" (Mukhopadhyay et al., ICPP'24) — 1D tensor-parallel
/// full-graph GCN training, reimplemented from the papers.
///
/// The adjacency and features are partitioned into block rows. Aggregation
/// H_i = sum_j A_ij F_j runs in stages:
///  * vanilla CAGNET: broadcast each full F_j block to everyone;
///  * SA (sparsity-aware): rank j sends rank i only the feature rows that
///    A_ij actually references — the paper's key communication reduction.
/// Weights are replicated with a gradient all-reduce (as in CAGNET). SA+GVB
/// runs SA on a nonzero-balanced (GVB-like) block-row partition instead of
/// the uniform one.

#include <cstdint>
#include <vector>

#include "core/model.hpp"
#include "dense/optim.hpp"
#include "graph/graph.hpp"
#include "sim/machine.hpp"

namespace plexus::base {

struct CagnetOptions {
  int parts = 4;
  const sim::Machine* machine = &sim::Machine::perlmutter_a100();
  std::vector<std::int64_t> hidden_dims = {128, 128};
  dense::AdamConfig adam;
  bool sparsity_aware = true;   ///< SA exchange (index-targeted) vs full broadcast
  bool gvb_partition = false;   ///< nonzero-balanced block rows (SA+GVB)
  std::uint64_t seed = 42;
  int epochs = 10;
};

struct CagnetResult {
  std::vector<core::EpochStats> epochs;
  /// Average fraction of remote feature rows each rank receives per layer
  /// (the SA communication-volume metric; 1.0 for vanilla broadcast).
  double received_row_fraction = 0.0;
  std::vector<double> losses() const;
  double avg_epoch_seconds(int skip = 2) const;
};

CagnetResult train_cagnet(const graph::Graph& g, const CagnetOptions& opt);

}  // namespace plexus::base
