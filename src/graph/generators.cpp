#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace plexus::graph {

namespace {

/// Key for the dedup set; undirected edges stored with min endpoint first.
std::uint64_t edge_key(std::int64_t u, std::int64_t v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
}

/// Convert a set of undirected edges into a symmetric COO (both directions).
sparse::Coo to_symmetric_coo(std::int64_t num_nodes,
                             const std::vector<std::pair<std::int64_t, std::int64_t>>& edges) {
  sparse::Coo coo;
  coo.num_rows = num_nodes;
  coo.num_cols = num_nodes;
  coo.rows.reserve(edges.size() * 2);
  coo.cols.reserve(edges.size() * 2);
  coo.vals.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    coo.push(u, v, 1.0f);
    coo.push(v, u, 1.0f);
  }
  return coo;
}

}  // namespace

sparse::Coo rmat(int scale, std::int64_t target_edges, double a, double b, double c, double d,
                 std::uint64_t seed) {
  PLEXUS_CHECK(scale >= 1 && scale < 31, "rmat scale out of range");
  PLEXUS_CHECK(std::abs(a + b + c + d - 1.0) < 1e-9, "rmat probabilities must sum to 1");
  const std::int64_t n = std::int64_t{1} << scale;
  util::SplitMix64 rng(util::hash_combine(seed, 0x27a7));

  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(target_edges) * 2);
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  edges.reserve(static_cast<std::size_t>(target_edges));

  const std::int64_t max_attempts = target_edges * 8;
  std::int64_t attempts = 0;
  while (static_cast<std::int64_t>(edges.size()) < target_edges && attempts < max_attempts) {
    ++attempts;
    std::int64_t u = 0;
    std::int64_t v = 0;
    for (int level = 0; level < scale; ++level) {
      const double r = rng.next_double();
      // Quadrant choice with light noise so the recursion doesn't self-repeat.
      const double aa = a + 0.05 * (rng.next_double() - 0.5);
      const double bb = b;
      const double cc = c;
      u <<= 1;
      v <<= 1;
      if (r < aa) {
        // top-left
      } else if (r < aa + bb) {
        v |= 1;
      } else if (r < aa + bb + cc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) edges.emplace_back(u, v);
  }
  return to_symmetric_coo(n, edges);
}

sparse::Coo community_graph(std::int64_t num_nodes, std::int64_t community_size,
                            double avg_degree, double p_in, std::uint64_t seed) {
  PLEXUS_CHECK(num_nodes > 1 && community_size > 1, "community_graph sizes");
  util::SplitMix64 rng(util::hash_combine(seed, 0xc0330));

  // Contiguous community boundaries with +-50% size jitter.
  std::vector<std::int64_t> starts{0};
  while (starts.back() < num_nodes) {
    const auto sz = static_cast<std::int64_t>(
        static_cast<double>(community_size) * (0.5 + rng.next_double()));
    starts.push_back(std::min(num_nodes, starts.back() + std::max<std::int64_t>(2, sz)));
  }
  const std::int64_t num_comms = static_cast<std::int64_t>(starts.size()) - 1;

  auto community_of = [&](std::int64_t node) {
    const auto it = std::upper_bound(starts.begin(), starts.end(), node);
    return static_cast<std::int64_t>(it - starts.begin()) - 1;
  };

  const auto target_edges =
      static_cast<std::int64_t>(static_cast<double>(num_nodes) * avg_degree / 2.0);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(target_edges) * 2);
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  edges.reserve(static_cast<std::size_t>(target_edges));

  const std::int64_t max_attempts = target_edges * 8;
  std::int64_t attempts = 0;
  while (static_cast<std::int64_t>(edges.size()) < target_edges && attempts < max_attempts) {
    ++attempts;
    const auto u = static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(num_nodes)));
    std::int64_t v;
    if (rng.next_double() < p_in) {
      const std::int64_t comm = community_of(u);
      const std::int64_t lo = starts[static_cast<std::size_t>(comm)];
      const std::int64_t hi = starts[static_cast<std::size_t>(comm) + 1];
      v = lo + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(hi - lo)));
    } else if (rng.next_double() < 0.3) {
      // Mild preferential attachment: reuse an endpoint of an existing edge.
      if (edges.empty()) continue;
      const auto& e = edges[static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(edges.size())))];
      v = rng.next_double() < 0.5 ? e.first : e.second;
    } else {
      v = static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(num_nodes)));
    }
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) edges.emplace_back(u, v);
  }
  (void)num_comms;
  return to_symmetric_coo(num_nodes, edges);
}

sparse::Coo road_network(std::int64_t width, std::int64_t height, double keep_prob,
                         double shortcut_frac, std::uint64_t seed) {
  PLEXUS_CHECK(width > 1 && height > 1, "road_network dims");
  const std::int64_t n = width * height;
  util::SplitMix64 rng(util::hash_combine(seed, 0x20ad));

  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  edges.reserve(static_cast<std::size_t>(static_cast<double>(2 * n) * keep_prob));
  for (std::int64_t y = 0; y < height; ++y) {
    for (std::int64_t x = 0; x < width; ++x) {
      const std::int64_t node = y * width + x;
      if (x + 1 < width && rng.next_double() < keep_prob) edges.emplace_back(node, node + 1);
      if (y + 1 < height && rng.next_double() < keep_prob) edges.emplace_back(node, node + width);
    }
  }
  const auto num_shortcuts = static_cast<std::int64_t>(static_cast<double>(n) * shortcut_frac);
  std::unordered_set<std::uint64_t> seen;
  for (const auto& [u, v] : edges) seen.insert(edge_key(u, v));
  for (std::int64_t i = 0; i < num_shortcuts; ++i) {
    const auto u = static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) edges.emplace_back(u, v);
  }
  return to_symmetric_coo(n, edges);
}

sparse::Coo erdos_renyi(std::int64_t num_nodes, std::int64_t target_edges, std::uint64_t seed) {
  PLEXUS_CHECK(num_nodes > 1, "erdos_renyi size");
  util::SplitMix64 rng(util::hash_combine(seed, 0xe12d05));
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  const std::int64_t max_attempts = target_edges * 10;
  std::int64_t attempts = 0;
  while (static_cast<std::int64_t>(edges.size()) < target_edges && attempts < max_attempts) {
    ++attempts;
    const auto u = static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(num_nodes)));
    const auto v = static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(num_nodes)));
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) edges.emplace_back(u, v);
  }
  return to_symmetric_coo(num_nodes, edges);
}

}  // namespace plexus::graph
