#pragma once
/// \file world.hpp
/// Shared state of the simulated cluster: the rank set and all process groups.
///
/// Mirrors the MPI model: a `World` of G ranks, and process groups (sub-
/// communicators) created *before* the SPMD region starts (group creation is
/// not thread-safe by design — matching the collective-creation requirement of
/// MPI_Comm_create / NCCL communicator init, which Plexus performs once when
/// arranging GPUs into the 3D virtual grid).
///
/// Each group carries `LinkParams` (effective ring bandwidth + latency) so that
/// collectives advance the simulated clocks by the paper's eq. 4.5/4.6 costs.

#include <barrier>
#include <cstdint>
#include <memory>
#include <vector>

#include "comm/cost.hpp"
#include "util/error.hpp"

namespace plexus::comm {

using GroupId = int;

/// Shared per-group state. `slots` hold pointers published by members during a
/// collective; `clock_slots` carry their simulated clocks for synchronisation.
/// All mutable protocol state is per-group (guarded by the group's own op
/// barriers), so collectives on *different* groups may execute concurrently
/// on per-group comm channels without any cross-group synchronisation.
struct GroupShared {
  std::vector<int> members;  ///< global ranks, ascending
  LinkParams link;
  double a2a_distance_penalty = 1.0;
  std::unique_ptr<std::barrier<>> barrier;
  std::vector<const void*> slots;
  /// Secondary per-member pointer slots for transports that must reach a
  /// peer's *destination* or staging buffer mid-op (the Local transport's
  /// ring schedules). Written and read only between the op's protocol
  /// barriers, bracketed by the transport's own extra barrier rounds.
  std::vector<const void*> xfer_slots;
  std::vector<double> clock_slots;
  /// Comm-channel routing class. Line groups of the 3D grid are tagged with
  /// their *family* (X = 0, Y = 1, Z = 2) so a rank's own three line groups
  /// never share a channel (budget permitting); -1 = untagged, route by
  /// GroupId as before. See channel_route().
  int channel_hint = -1;
  /// Sim instant until which this group's ring links are occupied by the
  /// latest collective. Serialises overlapping (pipelined) collectives on the
  /// same group: a collective starts no earlier than this horizon. Written by
  /// group member 0 in each op's read phase, read by members when publishing
  /// the next op — the two accesses are separated by the op barriers.
  double link_busy_until = 0.0;

  int size() const { return static_cast<int>(members.size()); }

  int position_of(int rank) const {
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i] == rank) return static_cast<int>(i);
    }
    PLEXUS_CHECK(false, "rank not in group");
    return -1;
  }
};

/// Comm-channel routing key of a group (topology-aware when tagged): the
/// group's channel_hint — its X/Y/Z line family — when set, else the GroupId.
/// Ops whose keys are congruent mod the channel budget share one channel per
/// rank and serialise; family tagging guarantees a rank's own three line
/// groups land on three distinct keys, so with a budget >= 3 they never
/// collide (the old `GroupId mod budget` routing could map two of them onto
/// one channel and forfeit their real-time overlap).
inline int channel_route(const GroupShared& g, GroupId gid) {
  return g.channel_hint >= 0 ? g.channel_hint : static_cast<int>(gid);
}

class World {
 public:
  explicit World(int size);

  int size() const { return size_; }

  /// Group 0: all ranks, default link parameters.
  GroupId world_group() const { return 0; }

  /// Number of groups created so far (GroupIds are dense: [0, group_count)).
  /// GroupIds double as comm-channel routing keys (see comm/handle.hpp).
  int group_count() const { return static_cast<int>(groups_.size()); }

  /// Create a process group. NOT thread-safe: call before the SPMD region.
  /// `channel_hint` >= 0 tags the group with a comm-channel routing class
  /// (the 3D grid uses the line family, X = 0 / Y = 1 / Z = 2); -1 keeps the
  /// GroupId-based routing. See channel_route().
  GroupId create_group(std::vector<int> members, LinkParams link = {},
                       double a2a_distance_penalty = 1.0, int channel_hint = -1);

  /// Zero every group's link-busy horizon. Required when reusing a World for
  /// a fresh simulation session whose SimClocks restart at 0 — otherwise the
  /// first collective books the stale horizon as exposed time. NOT
  /// thread-safe: call between SPMD regions.
  void reset_link_time();

  GroupShared& group(GroupId id) {
    PLEXUS_CHECK(id >= 0 && static_cast<std::size_t>(id) < groups_.size(), "bad group id");
    return *groups_[static_cast<std::size_t>(id)];
  }

 private:
  int size_;
  std::vector<std::unique_ptr<GroupShared>> groups_;
};

}  // namespace plexus::comm
