#include "util/arg_parser.hpp"

#include <algorithm>

#include "util/parse.hpp"

namespace plexus::util {

namespace {

/// Classic DP edit distance, small strings only (flag names).
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

ArgParser::ArgParser(std::string prog, std::string summary, std::string positional_hint)
    : prog_(std::move(prog)),
      summary_(std::move(summary)),
      positional_hint_(std::move(positional_hint)) {}

void ArgParser::add_flag(std::string name, std::string hint, std::string help, std::string def) {
  flags_.push_back({std::move(name), std::move(hint), std::move(help), std::move(def), "", false});
}

ArgParser::Flag* ArgParser::find(std::string_view name) {
  for (auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const ArgParser::Flag* ArgParser::find(std::string_view name) const {
  return const_cast<ArgParser*>(this)->find(name);
}

std::string ArgParser::suggest(std::string_view name) const {
  std::size_t best = 3;  // only suggest within edit distance 2
  std::string hit;
  for (const auto& f : flags_) {
    const std::size_t d = edit_distance(name, f.name);
    if (d < best) {
      best = d;
      hit = f.name;
    }
  }
  return hit;
}

ArgParser::Status ArgParser::parse(int argc, char** argv) {
  positionals_.clear();
  error_.clear();
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.emplace_back(arg);
      continue;
    }
    std::string_view body = arg.substr(2);
    std::string_view val;
    const auto eq = body.find('=');
    const bool has_value = eq != std::string_view::npos;
    if (has_value) {
      val = body.substr(eq + 1);
      body = body.substr(0, eq);
    }
    if (body == "help") return Status::Help;
    Flag* f = find(body);
    if (f == nullptr) {
      error_ = "unknown flag --" + std::string(body);
      const std::string s = suggest(body);
      if (!s.empty()) error_ += " (did you mean --" + s + "?)";
      return Status::Error;
    }
    f->parsed = has_value ? std::string(val) : "1";
    f->set = true;
  }
  return Status::Ok;
}

bool ArgParser::is_set(std::string_view name) const {
  const Flag* f = find(name);
  return f != nullptr && f->set;
}

const std::string& ArgParser::value(std::string_view name) const {
  static const std::string empty;
  const Flag* f = find(name);
  if (f == nullptr) return empty;
  return f->set ? f->parsed : f->def;
}

bool ArgParser::value_int(std::string_view name, int& out) const {
  return parse_int(value(name), out);
}

bool ArgParser::value_int64(std::string_view name, std::int64_t& out) const {
  return parse_int64(value(name), out);
}

std::string ArgParser::usage() const {
  std::string s = "usage: " + prog_;
  for (const auto& f : flags_) s += " [--" + f.name + "=" + f.hint + "]";
  s += "\n  " + summary_ + "\n";
  std::size_t width = 0;
  for (const auto& f : flags_) width = std::max(width, f.name.size() + f.hint.size() + 3);
  for (const auto& f : flags_) {
    const std::string head = "--" + f.name + "=" + f.hint;
    s += "  " + head + std::string(width + 2 - head.size(), ' ') + f.help;
    if (!f.def.empty()) s += " (default " + f.def + ")";
    s += "\n";
  }
  if (!positional_hint_.empty()) {
    s += "  deprecated positional form: " + prog_ + " " + positional_hint_ + "\n";
  }
  return s;
}

}  // namespace plexus::util
