#include "comm/world.hpp"

#include <algorithm>

namespace plexus::comm {

World::World(int size) : size_(size) {
  PLEXUS_CHECK(size > 0, "world size must be positive");
  std::vector<int> all(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) all[static_cast<std::size_t>(i)] = i;
  create_group(std::move(all));
}

GroupId World::create_group(std::vector<int> members, LinkParams link,
                            double a2a_distance_penalty, int channel_hint) {
  PLEXUS_CHECK(!members.empty(), "empty group");
  std::sort(members.begin(), members.end());
  for (std::size_t i = 0; i < members.size(); ++i) {
    PLEXUS_CHECK(members[i] >= 0 && members[i] < size_, "group member out of range");
    PLEXUS_CHECK(i == 0 || members[i] != members[i - 1], "duplicate group member");
  }
  auto g = std::make_unique<GroupShared>();
  g->members = std::move(members);
  g->link = link;
  g->a2a_distance_penalty = a2a_distance_penalty;
  g->channel_hint = channel_hint;
  g->barrier = std::make_unique<std::barrier<>>(static_cast<std::ptrdiff_t>(g->members.size()));
  g->slots.assign(g->members.size(), nullptr);
  g->xfer_slots.assign(g->members.size(), nullptr);
  // First `size` entries publish member clocks; the next `size` entries carry
  // scalar exchange values (see Communicator::aux_value).
  g->clock_slots.assign(2 * g->members.size(), 0.0);
  groups_.push_back(std::move(g));
  return static_cast<GroupId>(groups_.size() - 1);
}

void World::reset_link_time() {
  for (auto& g : groups_) g->link_busy_until = 0.0;
}

}  // namespace plexus::comm
