#include "core/grid.hpp"

#include "util/error.hpp"

namespace plexus::core {

Grid3D::Grid3D(comm::World& world, sim::GridShape shape, const sim::Machine& machine)
    : shape_(shape), world_group_(world.world_group()) {
  PLEXUS_CHECK(shape.size() == world.size(), "grid does not match world size");

  const auto link_x = sim::link_for_dim(machine, shape, sim::Dim::X);
  const auto link_y = sim::link_for_dim(machine, shape, sim::Dim::Y);
  const auto link_z = sim::link_for_dim(machine, shape, sim::Dim::Z);

  x_groups_.resize(static_cast<std::size_t>(shape.y * shape.z));
  y_groups_.resize(static_cast<std::size_t>(shape.x * shape.z));
  z_groups_.resize(static_cast<std::size_t>(shape.x * shape.y));

  // Line groups are tagged with their family (X = 0, Y = 1, Z = 2) as the
  // comm-channel routing class: a rank's own three line groups then always
  // map to distinct channels (budget permitting), so its X-, Y- and Z-line
  // collectives overlap in real time instead of queueing on one channel.
  for (int z = 0; z < shape.z; ++z) {
    for (int y = 0; y < shape.y; ++y) {
      std::vector<int> members;
      for (int x = 0; x < shape.x; ++x) members.push_back(rank_of({x, y, z}));
      x_groups_[static_cast<std::size_t>(y + shape.y * z)] =
          world.create_group(members, link_x, 1.0, /*channel_hint=*/0);
    }
  }
  for (int z = 0; z < shape.z; ++z) {
    for (int x = 0; x < shape.x; ++x) {
      std::vector<int> members;
      for (int y = 0; y < shape.y; ++y) members.push_back(rank_of({x, y, z}));
      y_groups_[static_cast<std::size_t>(x + shape.x * z)] =
          world.create_group(members, link_y, 1.0, /*channel_hint=*/1);
    }
  }
  for (int x = 0; x < shape.x; ++x) {
    for (int y = 0; y < shape.y; ++y) {
      std::vector<int> members;
      for (int z = 0; z < shape.z; ++z) members.push_back(rank_of({x, y, z}));
      z_groups_[static_cast<std::size_t>(y + shape.y * x)] =
          world.create_group(members, link_z, 1.0, /*channel_hint=*/2);
    }
  }
}

int Grid3D::extent(Axis a) const {
  switch (a) {
    case Axis::X: return shape_.x;
    case Axis::Y: return shape_.y;
    case Axis::Z: return shape_.z;
  }
  return 1;
}

Coords Grid3D::coords_of(int rank) const {
  PLEXUS_CHECK(rank >= 0 && rank < size(), "rank out of grid");
  Coords c;
  c.y = rank % shape_.y;
  c.x = (rank / shape_.y) % shape_.x;
  c.z = rank / (shape_.y * shape_.x);
  return c;
}

int Grid3D::rank_of(const Coords& c) const {
  return c.y + shape_.y * (c.x + shape_.x * c.z);
}

int Grid3D::coord(const Coords& c, Axis a) {
  switch (a) {
    case Axis::X: return c.x;
    case Axis::Y: return c.y;
    case Axis::Z: return c.z;
  }
  return 0;
}

comm::GroupId Grid3D::group_along(Axis axis, int rank) const {
  const Coords c = coords_of(rank);
  switch (axis) {
    case Axis::X: return x_groups_[static_cast<std::size_t>(c.y + shape_.y * c.z)];
    case Axis::Y: return y_groups_[static_cast<std::size_t>(c.x + shape_.x * c.z)];
    case Axis::Z: return z_groups_[static_cast<std::size_t>(c.y + shape_.y * c.x)];
  }
  PLEXUS_CHECK(false, "bad axis");
  return -1;
}

}  // namespace plexus::core
