#include "baselines/cagnet.hpp"

#include <algorithm>

#include "comm/world.hpp"
#include "core/shard.hpp"
#include "dense/gemm.hpp"
#include "dense/ops.hpp"
#include "partition/partitioner.hpp"
#include "sim/cluster.hpp"
#include "sim/kernels.hpp"
#include "sim/topology.hpp"
#include "sparse/partition2d.hpp"
#include "sparse/spmm.hpp"
#include "util/error.hpp"

namespace plexus::base {

std::vector<double> CagnetResult::losses() const {
  std::vector<double> out;
  out.reserve(epochs.size());
  for (const auto& e : epochs) out.push_back(e.loss);
  return out;
}

double CagnetResult::avg_epoch_seconds(int skip) const {
  if (epochs.empty()) return 0.0;
  const auto start = std::min<std::size_t>(static_cast<std::size_t>(skip), epochs.size() - 1);
  double sum = 0.0;
  for (std::size_t i = start; i < epochs.size(); ++i) sum += epochs[i].epoch_seconds;
  return sum / static_cast<double>(epochs.size() - start);
}

namespace {

/// Stage blocks of the 1D algorithm for one rank pair: A_ij with columns
/// compacted to the referenced-row list, plus its transpose for backward.
struct StageBlock {
  sparse::Csr a;    ///< rows_i x |needed|
  sparse::Csr a_t;  ///< |needed| x rows_i
};

struct ExchangePlan {
  std::vector<std::int64_t> bounds;  ///< block-row boundaries, size parts+1
  /// needed[i][j]: rows of block j (local ids) that rank i's A_ij references.
  std::vector<std::vector<std::vector<std::int32_t>>> needed;
  /// blocks[i][j]: compacted stage blocks for rank i.
  std::vector<std::vector<StageBlock>> blocks;
  double received_row_fraction = 0.0;
};

ExchangePlan build_plan(const sparse::Csr& a_norm, int parts, bool sparsity_aware,
                        bool gvb_partition) {
  ExchangePlan plan;
  const std::int64_t n = a_norm.rows();
  if (gvb_partition) {
    const auto p = part::nnz_balanced_partition(a_norm, parts);
    // Contiguous by construction: recover boundaries from the assignment.
    plan.bounds.assign(static_cast<std::size_t>(parts) + 1, n);
    plan.bounds[0] = 0;
    for (std::int64_t v = 1; v < n; ++v) {
      const auto prev = p.assignment[static_cast<std::size_t>(v - 1)];
      const auto cur = p.assignment[static_cast<std::size_t>(v)];
      for (int b = prev + 1; b <= cur; ++b) plan.bounds[static_cast<std::size_t>(b)] = v;
    }
  } else {
    plan.bounds = sparse::block_bounds(n, parts);
  }

  plan.needed.resize(static_cast<std::size_t>(parts));
  plan.blocks.resize(static_cast<std::size_t>(parts));
  double received_rows = 0.0;
  for (int i = 0; i < parts; ++i) {
    const auto r0 = plan.bounds[static_cast<std::size_t>(i)];
    const auto r1 = plan.bounds[static_cast<std::size_t>(i) + 1];
    const sparse::Csr a_i = a_norm.row_slice(r0, r1);
    plan.needed[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(parts));
    plan.blocks[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(parts));
    for (int j = 0; j < parts; ++j) {
      const auto c0 = plan.bounds[static_cast<std::size_t>(j)];
      const auto c1 = plan.bounds[static_cast<std::size_t>(j) + 1];
      auto& needed = plan.needed[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      if (sparsity_aware) {
        for (const auto c : a_i.referenced_cols(c0, c1)) {
          needed.push_back(static_cast<std::int32_t>(c - c0));
        }
      } else {
        needed.resize(static_cast<std::size_t>(c1 - c0));
        for (std::int64_t k = 0; k < c1 - c0; ++k) needed[static_cast<std::size_t>(k)] =
            static_cast<std::int32_t>(k);
      }
      if (j != i) received_rows += static_cast<double>(needed.size());

      // Compacted block: columns renumbered to positions in `needed`.
      const sparse::Csr full_block = a_i.block(0, r1 - r0, c0, c1);
      sparse::Coo coo;
      coo.num_rows = full_block.rows();
      coo.num_cols = static_cast<std::int64_t>(needed.size());
      const auto rp = full_block.row_ptr();
      const auto ci = full_block.col_idx();
      const auto va = full_block.vals();
      for (std::int64_t r = 0; r < full_block.rows(); ++r) {
        for (std::int64_t k = rp[static_cast<std::size_t>(r)];
             k < rp[static_cast<std::size_t>(r) + 1]; ++k) {
          const auto c = ci[static_cast<std::size_t>(k)];
          const auto it = std::lower_bound(needed.begin(), needed.end(), c);
          PLEXUS_CHECK(it != needed.end() && *it == c, "column missing from needed list");
          coo.push(r, it - needed.begin(), va[static_cast<std::size_t>(k)]);
        }
      }
      auto& blk = plan.blocks[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      blk.a = sparse::Csr::from_coo(coo, false);
      blk.a_t = blk.a.transposed();
    }
  }
  plan.received_row_fraction = received_rows / (static_cast<double>(n) * parts);
  return plan;
}

}  // namespace

CagnetResult train_cagnet(const graph::Graph& g, const CagnetOptions& opt) {
  PLEXUS_CHECK(opt.parts >= 1, "parts must be positive");
  const sparse::Csr a_norm = sparse::normalize_adjacency(g.adjacency(), g.num_nodes);
  const ExchangePlan plan = build_plan(a_norm, opt.parts, opt.sparsity_aware, opt.gvb_partition);

  CagnetResult result;
  result.received_row_fraction = plan.received_row_fraction;
  result.epochs.resize(static_cast<std::size_t>(opt.epochs));

  comm::World world(opt.parts);
  auto& wg = world.group(world.world_group());
  wg.link = sim::link_for_flat_group(*opt.machine, opt.parts);
  wg.a2a_distance_penalty = sim::a2a_distance_penalty(*opt.machine, opt.parts);

  const double norm = static_cast<double>(g.train_count());
  const int L = static_cast<int>(opt.hidden_dims.size()) + 1;

  sim::run_cluster(world, *opt.machine, [&](sim::RankContext& ctx) {
    const int me = ctx.rank();
    const auto r0 = plan.bounds[static_cast<std::size_t>(me)];
    const auto r1 = plan.bounds[static_cast<std::size_t>(me) + 1];
    const std::int64_t rows = r1 - r0;
    const sim::Machine& m = *ctx.machine;

    std::vector<std::int64_t> dims;
    dims.push_back(g.feature_dim());
    for (const auto h : opt.hidden_dims) dims.push_back(h);
    dims.push_back(g.num_classes);

    dense::Matrix features = g.features.block(r0, r1, 0, g.feature_dim());
    std::vector<std::int32_t> labels(g.labels.begin() + r0, g.labels.begin() + r1);
    std::vector<std::uint8_t> mask(g.train_mask.begin() + r0, g.train_mask.begin() + r1);
    std::vector<dense::Matrix> weights;
    std::vector<dense::Adam> w_adams;
    for (int l = 0; l < L; ++l) {
      weights.push_back(core::init_weight_block(opt.seed, l, 0, 0,
                                                dims[static_cast<std::size_t>(l)],
                                                dims[static_cast<std::size_t>(l) + 1],
                                                dims[static_cast<std::size_t>(l)],
                                                dims[static_cast<std::size_t>(l) + 1]));
      w_adams.emplace_back(static_cast<std::size_t>(weights.back().size()), opt.adam);
    }
    dense::Adam f_adam(static_cast<std::size_t>(features.size()), opt.adam);

    // Distributed SpMM H_me = sum_j A_mej F_j with index-targeted exchange.
    auto aggregate = [&](const dense::Matrix& f, core::KernelTimers& timers) {
      std::vector<std::vector<float>> send(static_cast<std::size_t>(opt.parts));
      const std::int64_t d = f.cols();
      for (int q = 0; q < opt.parts; ++q) {
        const auto& idx = plan.needed[static_cast<std::size_t>(q)][static_cast<std::size_t>(me)];
        auto& buf = send[static_cast<std::size_t>(q)];
        buf.reserve(idx.size() * static_cast<std::size_t>(d));
        for (const auto r : idx) buf.insert(buf.end(), f.row(r), f.row(r) + d);
      }
      std::vector<std::vector<float>> recv;
      ctx.comm.all_to_all_v<float>(world.world_group(), send, recv);
      dense::Matrix h(rows, d);
      for (int j = 0; j < opt.parts; ++j) {
        const auto& blk =
            plan.blocks[static_cast<std::size_t>(me)][static_cast<std::size_t>(j)];
        if (blk.a.nnz() == 0) continue;
        dense::Matrix fj(blk.a.cols(), d);
        std::copy(recv[static_cast<std::size_t>(j)].begin(),
                  recv[static_cast<std::size_t>(j)].end(), fj.data());
        sparse::spmm_accumulate(blk.a, fj, h);
        const sim::SpmmShape shape{blk.a.nnz(), rows, blk.a.cols(), d};
        const double t = sim::spmm_time(m, shape);
        ctx.comm.charge_compute(t);
        timers.spmm += t;
      }
      return h;
    };

    // Backward scatter dF_j += A_mej^T dH_me with the reverse exchange.
    auto scatter_grads = [&](const dense::Matrix& dh, core::KernelTimers& timers) {
      const std::int64_t d = dh.cols();
      std::vector<std::vector<float>> send(static_cast<std::size_t>(opt.parts));
      for (int j = 0; j < opt.parts; ++j) {
        const auto& blk =
            plan.blocks[static_cast<std::size_t>(me)][static_cast<std::size_t>(j)];
        dense::Matrix part_grad = sparse::spmm(blk.a_t, dh);
        const sim::SpmmShape shape{blk.a_t.nnz(), blk.a_t.rows(), rows, d};
        const double t = sim::spmm_time(m, shape);
        ctx.comm.charge_compute(t);
        timers.spmm += t;
        auto& buf = send[static_cast<std::size_t>(j)];
        buf.assign(part_grad.data(), part_grad.data() + part_grad.size());
      }
      std::vector<std::vector<float>> recv;
      ctx.comm.all_to_all_v<float>(world.world_group(), send, recv);
      dense::Matrix df(rows, d);
      for (int q = 0; q < opt.parts; ++q) {
        const auto& idx = plan.needed[static_cast<std::size_t>(q)][static_cast<std::size_t>(me)];
        const auto& buf = recv[static_cast<std::size_t>(q)];
        PLEXUS_CHECK(buf.size() == idx.size() * static_cast<std::size_t>(d), "grad recv size");
        for (std::size_t i = 0; i < idx.size(); ++i) {
          float* dst = df.row(idx[i]);
          const float* src = buf.data() + i * static_cast<std::size_t>(d);
          for (std::int64_t k = 0; k < d; ++k) dst[k] += src[k];
        }
      }
      return df;
    };

    for (int epoch = 0; epoch < opt.epochs; ++epoch) {
      const double t0 = ctx.clock.time();
      core::KernelTimers timers;

      std::vector<dense::Matrix> h_save(static_cast<std::size_t>(L));
      std::vector<dense::Matrix> q_save(static_cast<std::size_t>(L));
      dense::Matrix f = features;
      for (int l = 0; l < L; ++l) {
        dense::Matrix h = aggregate(f, timers);
        dense::Matrix q = dense::matmul(h, weights[static_cast<std::size_t>(l)]);
        const double t = sim::gemm_time(m, h.rows(), q.cols(), h.cols(), dense::Trans::N,
                                        dense::Trans::N);
        ctx.comm.charge_compute(t);
        timers.gemm += t;
        h_save[static_cast<std::size_t>(l)] = std::move(h);
        if (l < L - 1) f = dense::relu(q);
        q_save[static_cast<std::size_t>(l)] = std::move(q);
      }

      const auto& logits = q_save[static_cast<std::size_t>(L - 1)];
      dense::Matrix dlogits(logits.rows(), logits.cols());
      const auto ce = dense::softmax_cross_entropy(logits, labels, mask, norm, &dlogits);
      const double loss_total = ctx.comm.all_reduce_sum_scalar(world.world_group(), ce.loss_sum);
      const double count_total =
          ctx.comm.all_reduce_sum_scalar(world.world_group(), static_cast<double>(ce.count));
      const double correct_total =
          ctx.comm.all_reduce_sum_scalar(world.world_group(), static_cast<double>(ce.correct));

      dense::Matrix dq = std::move(dlogits);
      for (int l = L - 1; l >= 0; --l) {
        const auto& h = h_save[static_cast<std::size_t>(l)];
        dense::Matrix dw = dense::matmul(h, dq, dense::Trans::T, dense::Trans::N);
        const double tg = sim::gemm_time(m, dw.rows(), dw.cols(), h.rows(), dense::Trans::T,
                                         dense::Trans::N);
        ctx.comm.charge_compute(tg);
        timers.gemm += tg;
        ctx.comm.all_reduce_sum<float>(world.world_group(), dw.flat());
        dense::Matrix dh = dense::matmul(dq, weights[static_cast<std::size_t>(l)],
                                         dense::Trans::N, dense::Trans::T);
        dense::Matrix df = scatter_grads(dh, timers);
        w_adams[static_cast<std::size_t>(l)].step(weights[static_cast<std::size_t>(l)].flat(),
                                                  dw.flat());
        if (l > 0) {
          dense::Matrix next_dq(df.rows(), df.cols());
          dense::relu_backward(q_save[static_cast<std::size_t>(l - 1)], df, next_dq);
          dq = std::move(next_dq);
        } else {
          f_adam.step(features.flat(), df.flat());
        }
      }

      core::EpochStats s;
      s.loss = count_total > 0 ? loss_total / count_total : 0.0;
      s.train_accuracy = count_total > 0 ? correct_total / count_total : 0.0;
      s.epoch_seconds = ctx.clock.time() - t0;
      s.spmm_seconds = timers.spmm;
      s.gemm_seconds = timers.gemm;
      s.epoch_seconds = ctx.comm.all_reduce_max_scalar(world.world_group(), s.epoch_seconds);
      s.spmm_seconds = ctx.comm.all_reduce_max_scalar(world.world_group(), s.spmm_seconds);
      s.gemm_seconds = ctx.comm.all_reduce_max_scalar(world.world_group(), s.gemm_seconds);
      if (ctx.rank() == 0) result.epochs[static_cast<std::size_t>(epoch)] = s;
    }
  });
  return result;
}

}  // namespace plexus::base
