#include "core/model.hpp"

#include <algorithm>
#include <span>

#include "core/shard.hpp"
#include "sim/kernels.hpp"
#include "sparse/partition2d.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace plexus::core {

namespace {

std::int64_t round_up(std::int64_t v, std::int64_t multiple) {
  return (v + multiple - 1) / multiple * multiple;
}

}  // namespace

DistGcn::DistGcn(sim::RankContext& ctx, const DatasetView& view, const Grid3D& grid, GcnSpec spec)
    : view_(&view), grid_(&grid), rank_(ctx.rank()), spec_(std::move(spec)) {
  const int L = spec_.num_layers();
  const std::int64_t volume = grid.size();

  // Valid layer dims: [D, hidden..., C]; padded to the grid volume.
  std::vector<std::int64_t> valid_dims;
  valid_dims.push_back(view.feature_dim());
  for (const auto h : spec_.hidden_dims) valid_dims.push_back(h);
  valid_dims.push_back(view.num_classes());
  padded_dims_.clear();
  for (const auto d : valid_dims) padded_dims_.push_back(round_up(d, volume));
  PLEXUS_CHECK(padded_dims_[0] == view.padded_feature_dim(),
               "dataset must be preprocessed with the same pad multiple as the grid volume");

  // Out-of-core mode: a budgeted sharded view streams adjacency blocks from
  // disk instead of materialising shards. Streaming is a pure scheduling /
  // memory knob — every arithmetic result is bitwise-identical to resident
  // mode — but it requires dense aggregation (the sparse strategy needs the
  // whole shard resident to plan its row sets).
  const bool streaming = view.streaming();
  if (streaming) {
    PLEXUS_CHECK(spec_.options.aggregation == Aggregation::Dense,
                 "streaming epochs require dense aggregation");
    stream_ = std::make_unique<ShardStream>(view);
  }

  adj_store_ = std::make_unique<AdjacencyStore>(view, grid, ctx.rank(), L, streaming);
  for (int l = 0; l < L; ++l) {
    layers_.push_back(std::make_unique<DistGcnLayer>(
        view.padded_nodes(), grid, ctx.rank(), l, L, padded_dims_[static_cast<std::size_t>(l)],
        padded_dims_[static_cast<std::size_t>(l) + 1], valid_dims[static_cast<std::size_t>(l)],
        valid_dims[static_cast<std::size_t>(l) + 1],
        streaming ? nullptr : &adj_store_->layer(l), spec_.options, spec_.seed, stream_.get(),
        streaming ? &adj_store_->layer_stream(l) : nullptr));
  }

  // Input feature shard: block (rows along P0, cols along Q0), sharded 1/R0
  // across R0 because the trainable embeddings carry Adam state (section
  // 3.1). The slice is resharded row-major against the R0-aligned aggregation
  // row blocks (see model.hpp) so the layer-0 gradient reduce-scatter and the
  // input gather both run per block and join the software pipeline.
  const LayerRoles r0 = roles_for_layer(0);
  const Coords c = grid.coords_of(ctx.rank());
  const auto blk = matrix_shard(view.padded_nodes(), padded_dims_[0], grid, c, r0.p, r0.q);
  f_block_rows_ = blk.rows.size();
  f_block_cols_ = blk.cols.size();
  const dense::Matrix f_block =
      view.feature_block(blk.rows.begin, blk.rows.end, blk.cols.begin, blk.cols.end);
  f_r_ext_ = grid.extent(r0.r);
  f_r_coord_ = Grid3D::coord(c, r0.r);
  const int nb = std::max(1, spec_.options.agg_row_blocks);
  f_bounds_ = sparse::block_bounds_aligned(f_block_rows_, nb, f_r_ext_);
  f_slice_.reserve(static_cast<std::size_t>(f_block_rows_ / f_r_ext_ * f_block_cols_));
  for (std::size_t k = 0; k + 1 < f_bounds_.size(); ++k) {
    const std::int64_t len = f_bounds_[k + 1] - f_bounds_[k];
    const std::int64_t sub = len / f_r_ext_;
    const std::int64_t r0_row = f_bounds_[k] + f_r_coord_ * sub;
    const float* src = f_block.row(r0_row);
    f_slice_.insert(f_slice_.end(), src, src + sub * f_block_cols_);
  }
  df_slice_.assign(f_slice_.size(), 0.0f);
  f_adam_ = dense::Adam(f_slice_.size(), spec_.options.adam);
}

DistGcn::DistGcn(sim::RankContext& ctx, std::unique_ptr<DatasetView> view, const Grid3D& grid,
                 GcnSpec spec)
    : DistGcn(ctx, *view, grid, std::move(spec)) {
  owned_view_ = std::move(view);
}

DistGcn::DistGcn(sim::RankContext& ctx, const PlexusDataset& ds, const Grid3D& grid, GcnSpec spec)
    : DistGcn(ctx, std::make_unique<InMemoryDatasetView>(ds), grid, std::move(spec)) {}

dense::Matrix DistGcn::gather_input_features(sim::RankContext& ctx) {
  // One all-gather per aggregation row block: member m's sub-slice of block k
  // lands exactly on rows [b0 + m*len/R0, b0 + (m+1)*len/R0) — the reshard
  // layout — so the gathers reassemble the row-major block in place. Posting
  // all blocks before waiting pipelines them on the R0 ring.
  dense::Matrix block(f_block_rows_, f_block_cols_);
  const auto gid = layers_[0]->r_group();
  std::vector<comm::CommHandle> inflight;
  inflight.reserve(f_bounds_.size());
  std::size_t off = 0;
  for (std::size_t k = 0; k + 1 < f_bounds_.size(); ++k) {
    const std::int64_t b0 = f_bounds_[k];
    const std::int64_t len = f_bounds_[k + 1] - b0;
    if (len == 0) continue;  // bounds are grid-derived, identical on all members
    const std::size_t n = static_cast<std::size_t>(len / f_r_ext_ * f_block_cols_);
    std::span<const float> in{f_slice_.data() + off, n};
    std::span<float> out{block.row(b0), static_cast<std::size_t>(len * f_block_cols_)};
    inflight.push_back(ctx.comm.iall_gather<float>(gid, in, out));
    off += n;
  }
  for (auto& h : inflight) h.wait();
  return block;
}

dense::Matrix DistGcn::forward_all(sim::RankContext& ctx, std::uint64_t epoch_seed,
                                   KernelTimers& timers) {
  // Alg. 1 line 3: layer 0 all-gathers the flat-sharded features across Z (R0);
  // later layers receive full blocks from the previous layer (section 3.2).
  dense::Matrix f = gather_input_features(ctx);
  const int L = spec_.num_layers();
  for (int l = 0; l < L; ++l) {
    f = layers_[static_cast<std::size_t>(l)]->forward(ctx, f, /*last=*/l == L - 1, epoch_seed,
                                                      timers);
  }
  return f;
}

EpochStats DistGcn::train_epoch(sim::RankContext& ctx, int epoch) {
  const double t0 = ctx.clock.time();
  const double comm0 = ctx.comm.stats().total_seconds();
  const double hidden0 = ctx.comm.stats().total_hidden_seconds();
  const std::int64_t wire0 = ctx.comm.stats().total_wire_bytes();
  KernelTimers timers;
  const std::uint64_t epoch_seed = util::hash_combine(spec_.seed, 0xe90c000 + epoch);
  const int L = spec_.num_layers();

  const dense::Matrix logits = forward_all(ctx, epoch_seed, timers);

  LossResult loss = distributed_softmax_ce(ctx, *grid_, L - 1, *view_, logits,
                                           view_->mask(Split::Train),
                                           static_cast<double>(view_->train_total()));

  // Backward sweep (Alg. 2 per layer). Between layers the partial dF_in is
  // all-reduced over that layer's R group — fused into the layer's blocked
  // dF SpMM so the per-block collective pipelines behind compute; at layer 0
  // it is reduce-scattered per block onto the resharded trainable feature
  // slices instead (section 3.2), riding the same pipeline.
  dense::Matrix df = std::move(loss.dlogits);
  for (int l = L - 1; l >= 0; --l) {
    auto& layer = *layers_[static_cast<std::size_t>(l)];
    const FinalReduce mode = l > 0 ? FinalReduce::AllReduce
                                   : (spec_.train_input_features ? FinalReduce::ReduceScatter
                                                                 : FinalReduce::None);
    dense::Matrix df_partial =
        layer.backward(ctx, df, /*last=*/l == L - 1, timers, mode, df_slice_);
    if (l > 0) df = std::move(df_partial);  // already reduced over the layer's R group
  }

  // Optimizer step.
  for (auto& layer : layers_) layer->apply_grad(ctx, timers);
  if (spec_.train_input_features) {
    f_adam_.step(f_slice_, df_slice_);
    const double t = sim::elementwise_time(*ctx.machine,
                                           static_cast<std::int64_t>(f_slice_.size()), 6.0);
    ctx.comm.charge_compute(t);
    timers.elementwise += t;
  }

  EpochStats s;
  s.loss = loss.loss;
  s.train_accuracy = loss.accuracy;
  s.epoch_seconds = ctx.clock.time() - t0;
  s.spmm_seconds = timers.spmm;
  s.gemm_seconds = timers.gemm;
  s.elementwise_seconds = timers.elementwise;
  s.comm_seconds = ctx.comm.stats().total_seconds() - comm0;
  s.hidden_comm_seconds = ctx.comm.stats().total_hidden_seconds() - hidden0;
  s.comm_wire_bytes = static_cast<double>(ctx.comm.stats().total_wire_bytes() - wire0);
  s.io_exposed_seconds = timers.io_exposed;
  s.io_bytes_streamed = static_cast<double>(timers.io_bytes);
  return s;
}

CheckpointData DistGcn::gather_state(sim::RankContext& ctx) {
  const Grid3D& grid = *grid_;
  const comm::GroupId wg = grid.world_group();
  const int world = grid.size();
  const int L = spec_.num_layers();

  CheckpointData out;
  io::ModelState& s = out.model;
  s.hidden_dims = spec_.hidden_dims;
  s.model_seed = spec_.seed;
  s.train_input_features = spec_.train_input_features ? 1 : 0;
  s.agg_row_blocks = spec_.options.agg_row_blocks;
  s.gemm_dw_tuning = spec_.options.gemm_dw_tuning ? 1 : 0;
  s.pipeline_depth = spec_.options.pipeline_depth;
  s.aggregation = static_cast<std::int32_t>(spec_.options.aggregation);
  s.adam = spec_.options.adam;

  // Per-layer weights + Adam moments. Every rank holds an equal-size flat
  // slice (dims are padded to the grid volume), so one world-group all-gather
  // per buffer suffices; each rank then re-scatters every member's slice into
  // the global row-major matrix using that member's (deterministic) layout —
  // the (q, p, r) coordinates tile the matrix exactly once.
  for (int l = 0; l < L; ++l) {
    auto& layer = *layers_[static_cast<std::size_t>(l)];
    const std::int64_t rows = padded_dims_[static_cast<std::size_t>(l)];
    const std::int64_t cols = padded_dims_[static_cast<std::size_t>(l) + 1];
    io::LayerState ls;
    ls.rows = rows;
    ls.cols = cols;
    ls.adam_t = layer.optimizer().t();  // identical on all ranks
    const std::size_t total = static_cast<std::size_t>(rows * cols);
    ls.w.assign(total, 0.0f);
    ls.m.assign(total, 0.0f);
    ls.v.assign(total, 0.0f);

    const std::size_t slice = layer.weight_slice().size();
    std::vector<float> gw(slice * static_cast<std::size_t>(world));
    std::vector<float> gm(gw.size());
    std::vector<float> gv(gw.size());
    ctx.comm.all_gather<float>(wg, layer.weight_slice(), gw);
    ctx.comm.all_gather<float>(wg, layer.optimizer().m(), gm);
    ctx.comm.all_gather<float>(wg, layer.optimizer().v(), gv);

    const LayerRoles& roles = layer.roles();
    for (int r = 0; r < world; ++r) {
      const Coords c = grid.coords_of(r);
      const Slice wr = uniform_slice(rows, grid.extent(roles.q), Grid3D::coord(c, roles.q));
      const Slice wc = uniform_slice(cols, grid.extent(roles.p), Grid3D::coord(c, roles.p));
      const Slice fs =
          flat_slice_range(wr.size() * wc.size(), grid.extent(roles.r), Grid3D::coord(c, roles.r));
      PLEXUS_CHECK(static_cast<std::size_t>(fs.size()) == slice,
                   "gather_state: weight slice size mismatch");
      const std::size_t base = static_cast<std::size_t>(r) * slice;
      for (std::int64_t i = 0; i < fs.size(); ++i) {
        const std::int64_t flat = fs.begin + i;
        const std::size_t dst = static_cast<std::size_t>(
            (wr.begin + flat / wc.size()) * cols + wc.begin + flat % wc.size());
        ls.w[dst] = gw[base + static_cast<std::size_t>(i)];
        ls.m[dst] = gm[base + static_cast<std::size_t>(i)];
        ls.v[dst] = gv[base + static_cast<std::size_t>(i)];
      }
    }
    s.layers.push_back(std::move(ls));
  }

  // Trainable features + their Adam moments: same gather-then-re-scatter,
  // but through the layer-0 reshard layout (matrix_shard block, R0-aligned
  // aggregation row blocks, r-th sub-range of each block — mirrors the ctor).
  s.feat_rows = view_->padded_nodes();
  s.feat_cols = padded_dims_[0];
  s.feat_t = f_adam_.t();
  out.features = dense::Matrix(s.feat_rows, s.feat_cols);
  const std::size_t ftotal = static_cast<std::size_t>(s.feat_rows * s.feat_cols);
  s.feat_m.assign(ftotal, 0.0f);
  s.feat_v.assign(ftotal, 0.0f);

  const std::size_t fslice = f_slice_.size();
  std::vector<float> gf(fslice * static_cast<std::size_t>(world));
  std::vector<float> gfm(gf.size());
  std::vector<float> gfv(gf.size());
  ctx.comm.all_gather<float>(wg, f_slice_, gf);
  ctx.comm.all_gather<float>(wg, f_adam_.m(), gfm);
  ctx.comm.all_gather<float>(wg, f_adam_.v(), gfv);

  const LayerRoles r0 = roles_for_layer(0);
  const int nb = std::max(1, spec_.options.agg_row_blocks);
  for (int r = 0; r < world; ++r) {
    const Coords c = grid.coords_of(r);
    const auto blk = matrix_shard(s.feat_rows, s.feat_cols, grid, c, r0.p, r0.q);
    const int ext_r = grid.extent(r0.r);
    const int rc = Grid3D::coord(c, r0.r);
    const auto bounds = sparse::block_bounds_aligned(blk.rows.size(), nb, ext_r);
    const std::int64_t bcols = blk.cols.size();
    std::size_t off = static_cast<std::size_t>(r) * fslice;
    for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
      const std::int64_t sub = (bounds[k + 1] - bounds[k]) / ext_r;
      for (std::int64_t i = 0; i < sub; ++i) {
        const std::int64_t grow = blk.rows.begin + bounds[k] + rc * sub + i;
        const std::size_t dst = static_cast<std::size_t>(grow * s.feat_cols + blk.cols.begin);
        std::copy_n(gf.data() + off, bcols, out.features.row(grow) + blk.cols.begin);
        std::copy_n(gfm.data() + off, bcols, s.feat_m.data() + dst);
        std::copy_n(gfv.data() + off, bcols, s.feat_v.data() + dst);
        off += static_cast<std::size_t>(bcols);
      }
    }
    PLEXUS_CHECK(off == static_cast<std::size_t>(r + 1) * fslice,
                 "gather_state: feature slice size mismatch");
  }
  return out;
}

void DistGcn::restore_state(const io::ModelState& s) {
  const Grid3D& grid = *grid_;
  const int L = spec_.num_layers();
  PLEXUS_CHECK(s.num_layers() == L && s.hidden_dims == spec_.hidden_dims,
               "restore_state: checkpoint model shape does not match this model");
  PLEXUS_CHECK(s.feat_rows == view_->padded_nodes() && s.feat_cols == padded_dims_[0],
               "restore_state: checkpoint feature shape does not match the dataset");
  const Coords c = grid.coords_of(rank_);

  for (int l = 0; l < L; ++l) {
    auto& layer = *layers_[static_cast<std::size_t>(l)];
    const io::LayerState& ls = s.layers[static_cast<std::size_t>(l)];
    PLEXUS_CHECK(ls.rows == padded_dims_[static_cast<std::size_t>(l)] &&
                     ls.cols == padded_dims_[static_cast<std::size_t>(l) + 1],
                 "restore_state: layer dims do not match");
    const LayerRoles& roles = layer.roles();
    const Slice wr = uniform_slice(ls.rows, grid.extent(roles.q), Grid3D::coord(c, roles.q));
    const Slice wc = uniform_slice(ls.cols, grid.extent(roles.p), Grid3D::coord(c, roles.p));
    const Slice fs =
        flat_slice_range(wr.size() * wc.size(), grid.extent(roles.r), Grid3D::coord(c, roles.r));
    std::vector<float> w(static_cast<std::size_t>(fs.size()));
    std::vector<float> m(w.size());
    std::vector<float> v(w.size());
    for (std::int64_t i = 0; i < fs.size(); ++i) {
      const std::int64_t flat = fs.begin + i;
      const std::size_t src = static_cast<std::size_t>(
          (wr.begin + flat / wc.size()) * ls.cols + wc.begin + flat % wc.size());
      w[static_cast<std::size_t>(i)] = ls.w[src];
      m[static_cast<std::size_t>(i)] = ls.m[src];
      v[static_cast<std::size_t>(i)] = ls.v[src];
    }
    layer.restore_state(w, m, v, ls.adam_t);
  }

  // Feature Adam moments, re-sliced through the ctor's reshard layout. The
  // features themselves were already loaded from the view (the checkpoint's
  // feature blocks are the trained embeddings).
  std::vector<float> fm(f_slice_.size());
  std::vector<float> fv(f_slice_.size());
  const LayerRoles r0 = roles_for_layer(0);
  const auto blk = matrix_shard(s.feat_rows, s.feat_cols, grid, c, r0.p, r0.q);
  std::size_t off = 0;
  for (std::size_t k = 0; k + 1 < f_bounds_.size(); ++k) {
    const std::int64_t sub = (f_bounds_[k + 1] - f_bounds_[k]) / f_r_ext_;
    for (std::int64_t i = 0; i < sub; ++i) {
      const std::int64_t grow = blk.rows.begin + f_bounds_[k] + f_r_coord_ * sub + i;
      const std::size_t src = static_cast<std::size_t>(grow * s.feat_cols + blk.cols.begin);
      std::copy_n(s.feat_m.data() + src, f_block_cols_, fm.data() + off);
      std::copy_n(s.feat_v.data() + src, f_block_cols_, fv.data() + off);
      off += static_cast<std::size_t>(f_block_cols_);
    }
  }
  PLEXUS_CHECK(off == f_slice_.size(), "restore_state: feature slice size mismatch");
  f_adam_.set_state(fm, fv, s.feat_t);
}

dense::Matrix DistGcn::forward_logits(sim::RankContext& ctx) {
  KernelTimers timers;
  return forward_all(ctx, /*epoch_seed=*/0, timers);
}

double DistGcn::evaluate(sim::RankContext& ctx, const std::vector<std::uint8_t>& mask) {
  KernelTimers timers;
  const dense::Matrix logits = forward_all(ctx, /*epoch_seed=*/0, timers);
  const LossResult r = distributed_softmax_ce(ctx, *grid_, spec_.num_layers() - 1, *view_, logits,
                                              mask, static_cast<double>(view_->train_total()),
                                              /*want_grad=*/false);
  return r.accuracy;
}

}  // namespace plexus::core
