// Tests for the simulated-cluster communicator: collective semantics across
// group shapes, clock synchronisation, and concurrent disjoint groups.
#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/cost.hpp"
#include "comm/world.hpp"
#include "sim/cluster.hpp"
#include "sim/machine.hpp"

namespace pc = plexus::comm;
namespace psim = plexus::sim;

namespace {

/// Run `fn` SPMD on a fresh world of `size` ranks (optionally pre-creating
/// groups via `setup`).
void spmd(int size, const std::function<void(psim::RankContext&)>& fn,
          const std::function<void(pc::World&)>& setup = {}) {
  pc::World world(size);
  if (setup) setup(world);
  psim::run_cluster(world, psim::Machine::test_machine(), fn);
}

}  // namespace

class GroupSizes : public ::testing::TestWithParam<int> {};

TEST_P(GroupSizes, AllGatherCollectsInRankOrder) {
  const int g = GetParam();
  spmd(g, [g](psim::RankContext& ctx) {
    const std::vector<float> in{static_cast<float>(ctx.rank()),
                                static_cast<float>(ctx.rank()) + 0.5f};
    std::vector<float> out(static_cast<std::size_t>(2 * g), -1.0f);
    ctx.comm.all_gather<float>(ctx.comm.world().world_group(), in, out);
    for (int m = 0; m < g; ++m) {
      EXPECT_EQ(out[static_cast<std::size_t>(2 * m)], static_cast<float>(m));
      EXPECT_EQ(out[static_cast<std::size_t>(2 * m + 1)], static_cast<float>(m) + 0.5f);
    }
  });
}

TEST_P(GroupSizes, AllReduceSums) {
  const int g = GetParam();
  spmd(g, [g](psim::RankContext& ctx) {
    std::vector<float> buf{static_cast<float>(ctx.rank() + 1), 1.0f};
    ctx.comm.all_reduce_sum<float>(ctx.comm.world().world_group(), buf);
    EXPECT_EQ(buf[0], static_cast<float>(g * (g + 1) / 2));
    EXPECT_EQ(buf[1], static_cast<float>(g));
  });
}

TEST_P(GroupSizes, ReduceScatterSumsOwnChunk) {
  const int g = GetParam();
  spmd(g, [g](psim::RankContext& ctx) {
    // in[m * 2 + j] = rank contribution for member m.
    std::vector<float> in(static_cast<std::size_t>(2 * g));
    for (int m = 0; m < g; ++m) {
      in[static_cast<std::size_t>(2 * m)] = static_cast<float>(m);
      in[static_cast<std::size_t>(2 * m) + 1] = static_cast<float>(ctx.rank());
    }
    std::vector<float> out(2);
    ctx.comm.reduce_scatter_sum<float>(ctx.comm.world().world_group(), in, out);
    EXPECT_EQ(out[0], static_cast<float>(ctx.rank() * g));
    EXPECT_EQ(out[1], static_cast<float>(g * (g - 1) / 2));
  });
}

TEST_P(GroupSizes, ReduceScatterIsAllReduceThenSlice) {
  const int g = GetParam();
  spmd(g, [g](psim::RankContext& ctx) {
    std::vector<float> in(static_cast<std::size_t>(3 * g));
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<float>(ctx.rank()) + 0.1f * static_cast<float>(i);
    }
    auto copy = in;
    std::vector<float> out(3);
    ctx.comm.reduce_scatter_sum<float>(ctx.comm.world().world_group(), in, out);
    ctx.comm.all_reduce_sum<float>(ctx.comm.world().world_group(), copy);
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(out[static_cast<std::size_t>(j)],
                  copy[static_cast<std::size_t>(ctx.rank() * 3 + j)], 1e-5f);
    }
  });
}

TEST_P(GroupSizes, BroadcastFromEveryRoot) {
  const int g = GetParam();
  spmd(g, [g](psim::RankContext& ctx) {
    for (int root = 0; root < g; ++root) {
      std::vector<float> buf{ctx.rank() == root ? 42.0f + static_cast<float>(root) : -1.0f};
      ctx.comm.broadcast<float>(ctx.comm.world().world_group(), buf, root);
      EXPECT_EQ(buf[0], 42.0f + static_cast<float>(root));
    }
  });
}

TEST_P(GroupSizes, AllToAllTransposesChunks) {
  const int g = GetParam();
  spmd(g, [g](psim::RankContext& ctx) {
    std::vector<float> in(static_cast<std::size_t>(g));
    for (int m = 0; m < g; ++m) {
      in[static_cast<std::size_t>(m)] = static_cast<float>(ctx.rank() * 100 + m);
    }
    std::vector<float> out(static_cast<std::size_t>(g));
    ctx.comm.all_to_all<float>(ctx.comm.world().world_group(), in, out);
    for (int m = 0; m < g; ++m) {
      EXPECT_EQ(out[static_cast<std::size_t>(m)], static_cast<float>(m * 100 + ctx.rank()));
    }
  });
}

TEST_P(GroupSizes, AllToAllV) {
  const int g = GetParam();
  spmd(g, [g](psim::RankContext& ctx) {
    // Rank r sends r+1 copies of value (r*10 + m) to member m.
    std::vector<std::vector<float>> send(static_cast<std::size_t>(g));
    for (int m = 0; m < g; ++m) {
      send[static_cast<std::size_t>(m)].assign(static_cast<std::size_t>(ctx.rank() + 1),
                                               static_cast<float>(ctx.rank() * 10 + m));
    }
    std::vector<std::vector<float>> recv;
    ctx.comm.all_to_all_v<float>(ctx.comm.world().world_group(), send, recv);
    for (int m = 0; m < g; ++m) {
      ASSERT_EQ(recv[static_cast<std::size_t>(m)].size(), static_cast<std::size_t>(m + 1));
      for (const float v : recv[static_cast<std::size_t>(m)]) {
        EXPECT_EQ(v, static_cast<float>(m * 10 + ctx.rank()));
      }
    }
  });
}

TEST_P(GroupSizes, ScalarReductions) {
  const int g = GetParam();
  spmd(g, [g](psim::RankContext& ctx) {
    const double mx =
        ctx.comm.all_reduce_max_scalar(ctx.comm.world().world_group(), ctx.rank() * 1.5);
    EXPECT_DOUBLE_EQ(mx, (g - 1) * 1.5);
    const double sum =
        ctx.comm.all_reduce_sum_scalar(ctx.comm.world().world_group(), 1.0 + ctx.rank());
    EXPECT_DOUBLE_EQ(sum, g * (g + 1) / 2.0);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, GroupSizes, ::testing::Values(1, 2, 3, 4, 8));

TEST(Comm, SubgroupCollectivesAreIndependent) {
  // Two disjoint groups of 2 within a world of 4 run concurrently.
  spmd(
      4,
      [](psim::RankContext& ctx) {
        const pc::GroupId gid = ctx.rank() < 2 ? 1 : 2;
        std::vector<float> buf{static_cast<float>(ctx.rank())};
        ctx.comm.all_reduce_sum<float>(gid, buf);
        if (ctx.rank() < 2) {
          EXPECT_EQ(buf[0], 1.0f);  // 0 + 1
        } else {
          EXPECT_EQ(buf[0], 5.0f);  // 2 + 3
        }
      },
      [](pc::World& w) {
        w.create_group({0, 1});
        w.create_group({2, 3});
      });
}

TEST(Comm, NonContiguousGroupUsesPositions) {
  spmd(
      4,
      [](psim::RankContext& ctx) {
        if (ctx.rank() == 1 || ctx.rank() == 3) return;  // not in group
        std::vector<float> in{static_cast<float>(ctx.rank())};
        std::vector<float> out(2);
        ctx.comm.all_gather<float>(1, in, out);
        EXPECT_EQ(out[0], 0.0f);  // member positions ordered by global rank
        EXPECT_EQ(out[1], 2.0f);
      },
      [](pc::World& w) { w.create_group({0, 2}); });
}

TEST(Comm, ClockSynchronisesToStragglerPlusCollectiveTime) {
  spmd(2, [](psim::RankContext& ctx) {
    // Rank 1 is a straggler by 1.0 simulated seconds.
    if (ctx.rank() == 1) ctx.comm.charge_compute(1.0);
    std::vector<float> buf{1.0f};
    ctx.comm.all_reduce_sum<float>(ctx.comm.world().world_group(), buf);
    const auto& g = ctx.comm.world().group(0);
    const double t_coll = pc::collective_time(pc::Collective::AllReduce, 4, 2, g.link);
    EXPECT_NEAR(ctx.clock.time(), 1.0 + t_coll, 1e-12);
  });
}

TEST(Comm, StatsAccumulateBytesAndCalls) {
  spmd(2, [](psim::RankContext& ctx) {
    std::vector<float> buf(16, 1.0f);
    ctx.comm.all_reduce_sum<float>(ctx.comm.world().world_group(), buf);
    ctx.comm.all_reduce_sum<float>(ctx.comm.world().world_group(), buf);
    const auto& e = ctx.comm.stats().entry(pc::Collective::AllReduce);
    EXPECT_EQ(e.calls, 2);
    EXPECT_EQ(e.bytes, 2 * 16 * 4);
    EXPECT_GT(e.sim_seconds, 0.0);
  });
}

TEST(Comm, CollectiveTimeModelShapes) {
  pc::LinkParams link;
  link.bandwidth = 100e9;
  link.latency = 0.0;
  // eq 4.5: all-reduce of M bytes across G ranks = 2 (G-1)/G M / beta.
  const double t = pc::collective_time(pc::Collective::AllReduce, 1'000'000, 4, link);
  EXPECT_NEAR(t, 2.0 * 0.75 * 1e6 / 100e9, 1e-15);
  // All-gather is half an all-reduce.
  const double tg = pc::collective_time(pc::Collective::AllGather, 1'000'000, 4, link);
  EXPECT_NEAR(tg, t / 2.0, 1e-15);
  // Single-rank groups are free.
  EXPECT_EQ(pc::collective_time(pc::Collective::AllReduce, 1'000'000, 1, link), 0.0);
  // All-to-all distance penalty scales the bandwidth term.
  const double ta1 = pc::collective_time(pc::Collective::AllToAll, 1'000'000, 4, link, 1.0);
  const double ta2 = pc::collective_time(pc::Collective::AllToAll, 1'000'000, 4, link, 2.0);
  EXPECT_NEAR(ta2, 2.0 * ta1, 1e-15);
}

TEST(Comm, WorldValidation) {
  pc::World w(4);
  EXPECT_THROW(w.create_group({}), std::runtime_error);
  EXPECT_THROW(w.create_group({0, 0}), std::runtime_error);
  EXPECT_THROW(w.create_group({5}), std::runtime_error);
  EXPECT_THROW(w.group(99), std::runtime_error);
}

TEST(Cluster, PropagatesExceptions) {
  pc::World world(2);
  EXPECT_THROW(psim::run_cluster(world, psim::Machine::test_machine(),
                                 [](psim::RankContext&) { throw std::runtime_error("boom"); }),
               std::runtime_error);
}
