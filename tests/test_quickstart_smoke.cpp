// End-to-end smoke test: runs the examples/quickstart binary (path injected by
// CMake as PLEXUS_QUICKSTART_BIN), parses its per-epoch loss table, and
// asserts the loss trajectory is finite and decreasing. This guards the public
// train_plexus entry point — preprocessing, 8 rank threads, collectives, and
// the optimiser — not just library internals.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#ifndef PLEXUS_QUICKSTART_BIN
#error "PLEXUS_QUICKSTART_BIN must be defined by the build"
#endif

namespace {

struct QuickstartRun {
  int exit_code = -1;
  std::string output;
  std::vector<double> losses;  // per-epoch, in printed order
};

QuickstartRun run_quickstart() {
  QuickstartRun run;
  // Merge stderr so a crash message shows up in the failure output.
  const std::string cmd = std::string(PLEXUS_QUICKSTART_BIN) + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    run.output += buf;
    // Epoch rows look like: "    1  1.9876   0.312      12.345      6.789"
    unsigned long epoch = 0;
    double loss = 0.0;
    if (std::sscanf(buf, " %lu %lf", &epoch, &loss) == 2 && epoch >= 1) {
      run.losses.push_back(loss);
    }
  }
  run.exit_code = pclose(pipe);
  return run;
}

}  // namespace

TEST(QuickstartSmoke, TrainsWithFiniteDecreasingLoss) {
  const QuickstartRun run = run_quickstart();
  ASSERT_EQ(run.exit_code, 0) << "quickstart exited non-zero; output:\n" << run.output;
  ASSERT_GE(run.losses.size(), 5u) << "expected per-epoch loss rows; output:\n" << run.output;

  for (std::size_t i = 0; i < run.losses.size(); ++i) {
    EXPECT_TRUE(std::isfinite(run.losses[i])) << "epoch " << i + 1 << " loss not finite";
    EXPECT_GT(run.losses[i], 0.0) << "cross-entropy must be positive";
  }
  // Training must make real progress: final loss well below the initial one.
  EXPECT_LT(run.losses.back(), 0.8 * run.losses.front())
      << "loss did not decrease; output:\n"
      << run.output;
  // And the trajectory should be broadly monotone: no epoch may blow up past
  // the initial loss once training has started.
  for (std::size_t i = 1; i < run.losses.size(); ++i) {
    EXPECT_LT(run.losses[i], run.losses.front() * 1.05)
        << "loss spiked at epoch " << i + 1 << "; output:\n"
        << run.output;
  }
  // The run must also report a sane validation accuracy line.
  EXPECT_NE(run.output.find("validation accuracy"), std::string::npos);
}
