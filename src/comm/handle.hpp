#pragma once
/// \file handle.hpp
/// Nonblocking-collective plumbing: the shared op record, the `CommHandle`
/// a caller polls/waits on, and the per-rank `CommEngine` channel threads.
///
/// Every collective — blocking or not — is represented by one `detail::CommOp`
/// and executed by exactly one thread per rank: one of the rank's comm
/// *channels* when `comm_thread_budget() > 0` (the default), or the posting
/// thread itself in inline mode (`PLEXUS_COMM_THREADS=0`). Ops are routed to
/// channels by their group's `channel_route` key — the group's X/Y/Z line
/// *family* when the 3D grid tagged it (`GroupShared::channel_hint`), else
/// the `GroupId` — taken mod the budget. Family routing is topology-aware: a
/// rank's own three line groups always land on three distinct keys, so with
/// a channel budget >= 3 they never collide on one channel, which the old
/// plain `GroupId mod budget` routing could not guarantee. Ops on the same
/// group always run strictly in post order — the per-group barrier protocol
/// of communicator.hpp stays matched across ranks exactly as in the
/// blocking-only design — while ops on groups mapped to *different* channels
/// execute concurrently in real time (disjoint X-/Y-/Z-line collectives
/// overlap on the wall clock the way the sim cost model already lets them
/// overlap in simulated time). SPMD programs must post collectives on a group
/// in the same order on every member, the same rule MPI imposes on
/// nonblocking collectives; additionally, cross-group posting order must be
/// consistent across ranks for groups that share a channel (with one channel
/// — the old single-FIFO behaviour — that means all groups).
///
/// The bytes an op moves travel through the Communicator's selected
/// `Transport` (comm/transport.hpp); the op record, channels and handle
/// semantics here are backend-independent.
///
/// Sim-time semantics (see communicator.hpp for the full contract): an op
/// records the poster's clock at post time and, during execution, derives its
/// completion instant `done_clock` from all members' post clocks, the group's
/// link-busy horizon and the ring cost model. The *caller* charges clocks and
/// stats at `wait()`; channel threads never touch the rank clock.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "comm/cost.hpp"

namespace plexus::comm {

class Communicator;

namespace detail {

/// Shared state of one in-flight collective. The execute closure runs the full
/// barrier protocol (publish / read phase / trailing writes) on the executing
/// thread; completion fields are visible to the poster only after `finished`
/// is observed through the mutex.
struct CommOp {
  std::function<void(CommOp&)> execute;

  Collective op = Collective::Barrier;
  std::int64_t bytes = 0;
  int channel = 0;             ///< routing key (group's line family, else GroupId)
  bool accounted = true;       ///< false for user ops (icall): no stats/clock
  bool clocked = false;        ///< posting Communicator carries a SimClock
  double posted_clock = 0.0;   ///< poster's sim clock at post time

  // Filled by execute (read phase):
  double full_seconds = 0.0;   ///< cost-model duration of the collective
  double done_clock = 0.0;     ///< sim instant the collective completes
  std::int64_t wire_bytes = 0; ///< bytes the links actually carried (cost.hpp)
  double scalar = 0.0;         ///< result of scalar reductions
  std::exception_ptr error;    ///< first exception thrown by execute

  // Completion handshake + retire-once bookkeeping (retired is poster-only).
  std::mutex m;
  std::condition_variable cv;
  bool finished = false;
  bool retired = false;

  void mark_finished() {
    {
      std::lock_guard<std::mutex> lock(m);
      finished = true;
    }
    cv.notify_all();
  }
  void wait_finished() {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return finished; });
  }
  bool poll_finished() {
    std::lock_guard<std::mutex> lock(m);
    return finished;
  }
};

/// Per-executing-thread accumulation scratch for in-place reductions. Each
/// channel thread (and each posting thread in inline mode) owns its own
/// buffer, so concurrent ops on different channels never race on scratch.
std::vector<unsigned char>& op_scratch();

}  // namespace detail

/// Handle to an in-flight collective, in the spirit of MPI_Request.
///
/// ## Lifecycle
///
/// A handle's op passes through four states:
///
///  1. **posted** — the `i*` entry point built the op record (post-time clock
///     snapshot, byte count, routing key) and enqueued it on its channel (or
///     ran it inline). The caller may compute freely; the buffers named in
///     the call belong to the op until it is waited or dropped.
///  2. **in flight** — a channel thread is executing the op: for in-process
///     transports, the group barrier protocol plus the transport's byte
///     movement; for the MPI transport, the posted `MPI_I*` request being
///     progressed to completion. `test()` polls this state without blocking
///     and never charges time.
///  3. **complete** — the executing thread published the completion fields
///     (`done_clock`, `full_seconds`, scalar result, or error) and signalled
///     `finished`. Data buffers now hold the collective's result, but no
///     accounting has happened yet.
///  4. **retired or dropped** — terminal, reached exactly once:
///     * `wait()` blocks until complete, then *retires* the op: it charges
///       the **exposed** tail (the part of the transfer not hidden behind
///       recorded compute) onto the rank clock and `CommStats`, records the
///       timeline spans, and returns the scalar result (0 for data
///       collectives). Exceptions thrown on the executing thread are
///       rethrown here, once. A second `wait()` returns the cached scalar
///       and charges nothing.
///     * Destroying an un-waited handle *drops* the op: the destructor
///       blocks until the op has executed (keeping the group barriers
///       matched — the collective itself is never cancelled) but charges no
///       sim time and no stats, like `MPI_Request_free`: the caller gives up
///       on the accounting, not on the collective. Any pending error dies
///       with the op record.
///
/// A handle must not outlive its Communicator. Move-only.
class CommHandle {
 public:
  CommHandle() = default;
  CommHandle(CommHandle&& other) noexcept
      : op_(std::move(other.op_)), owner_(other.owner_) {
    other.owner_ = nullptr;
  }
  CommHandle& operator=(CommHandle&& other) noexcept {
    if (this != &other) {
      release();
      op_ = std::move(other.op_);
      owner_ = other.owner_;
      other.owner_ = nullptr;
    }
    return *this;
  }
  CommHandle(const CommHandle&) = delete;
  CommHandle& operator=(const CommHandle&) = delete;
  ~CommHandle() { release(); }

  bool valid() const { return op_ != nullptr; }

  /// True once the comm thread has finished executing the op (wait() will not
  /// block). Never charges time.
  bool test() { return op_ != nullptr && op_->poll_finished(); }

  /// Defined in communicator.hpp (needs the Communicator definition).
  double wait();

 private:
  friend class Communicator;
  CommHandle(std::shared_ptr<detail::CommOp> op, Communicator* owner)
      : op_(std::move(op)), owner_(owner) {}

  /// Defined in communicator.hpp: completing (not cancelling) keeps the
  /// barrier protocol matched, then tells the owner the op was abandoned so
  /// its stall-interval bookkeeping stays exact. Any pending error dies with
  /// the op record.
  void release();

  std::shared_ptr<detail::CommOp> op_;
  Communicator* owner_ = nullptr;
};

/// Per-rank comm channels: op k executes on channel `op->channel mod
/// channel_count`, strictly in post order *within* a channel; ops routed to
/// different channels run concurrently. Channel workers are spawned lazily on
/// first use and run with an intra-rank kernel budget of 1 so the data
/// movement they perform never spawns a compute pool of its own.
class CommEngine {
 public:
  /// `channels` is clamped below at 1 (the single-FIFO behaviour).
  explicit CommEngine(int channels);
  ~CommEngine();  ///< drains every channel queue, then joins the workers
  CommEngine(const CommEngine&) = delete;
  CommEngine& operator=(const CommEngine&) = delete;

  void post(std::shared_ptr<detail::CommOp> op);

  int channel_count() const { return static_cast<int>(channels_.size()); }

  /// Execute an op on the calling thread (inline mode / comm budget 0).
  static void run_inline(detail::CommOp& op);

 private:
  struct Channel {
    std::mutex m;
    std::condition_variable cv;
    std::deque<std::shared_ptr<detail::CommOp>> queue;
    bool stop = false;
    std::thread worker;  ///< spawned on the channel's first post
  };

  void loop(Channel& ch);

  std::vector<std::unique_ptr<Channel>> channels_;
};

/// Comm channel budget per rank. Resolution order: the value set by
/// `set_comm_thread_budget`, else the PLEXUS_COMM_THREADS environment
/// variable, else 1. 0 means inline mode: collectives execute on the posting
/// thread at post time (no real overlap, no extra threads) — the sim-time
/// math is identical, only real concurrency is lost. 1 is the single-FIFO
/// comm thread; values > 1 cap the number of concurrent per-group channels
/// (ops on GroupIds congruent mod the budget share a channel and serialise).
/// Simulated clocks, stats and losses are bitwise-identical for any value.
int comm_thread_budget();

/// Process-wide override (clamped to [0, 8]); -1 restores the environment
/// default. Takes effect for Communicators constructed afterwards.
void set_comm_thread_budget(int n);

/// The raw override state: -1 when the environment governs, else the value
/// passed to set_comm_thread_budget. Lets scoped overrides restore
/// "follow the environment" rather than pinning the resolved number.
int comm_thread_override();

/// RAII budget override for tests and benches.
class ScopedCommThreads {
 public:
  explicit ScopedCommThreads(int n) : prev_(comm_thread_override()) {
    set_comm_thread_budget(n);
  }
  ~ScopedCommThreads() { set_comm_thread_budget(prev_); }
  ScopedCommThreads(const ScopedCommThreads&) = delete;
  ScopedCommThreads& operator=(const ScopedCommThreads&) = delete;

 private:
  int prev_;
};

}  // namespace plexus::comm
