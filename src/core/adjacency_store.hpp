#pragma once
/// \file adjacency_store.hpp
/// Per-rank adjacency shards for every layer (paper section 3.2 + 5.1).
///
/// Layer l needs the adjacency *version* (l mod 2: P_r-rows vs P_c-rows under
/// double permutation) sharded on the *plane* given by its roles (rows along
/// axis R_l, cols along axis P_l; the plane cycles with period 3). Distinct
/// (version, plane) combinations are built once and shared between layers —
/// min(3, L) shards without double permutation, min(6, 2L) with it. Each shard
/// is stored together with its transpose (the backward pass computes
/// SpMM(A^T, dH), eq. 2.7).

#include <map>
#include <memory>

#include "core/dataset_view.hpp"
#include "core/grid.hpp"
#include "core/preprocess.hpp"
#include "core/roles.hpp"
#include "core/shard.hpp"
#include "sparse/csr.hpp"

namespace plexus::core {

struct AdjacencyShard {
  sparse::Csr a;    ///< (N/R x N/P) block of the layer's adjacency version
  sparse::Csr a_t;  ///< its transpose, for the backward SpMM
};

/// Streaming-mode stand-in for AdjacencyShard: the window coordinates of the
/// shard layer l *would* materialise, plus a planner nnz estimate. The
/// streaming layer posts block loads against these coordinates instead of
/// holding the CSR resident.
struct LayerStreamPlan {
  int version = 0;          ///< adjacency version (l % 2 under Double)
  Slice rows;               ///< shard rows in padded global coordinates
  Slice cols;               ///< shard cols in padded global coordinates
  std::int64_t est_nnz = 0; ///< uniform-density estimate of the shard's nnz
};

class AdjacencyStore {
 public:
  /// Extracts this rank's shards for layers [0, num_layers). Pure reads of
  /// the view: safe to run concurrently on all ranks when the view is (the
  /// shared in-memory dataset is; per-rank sharded views trivially are).
  /// With `streaming` set no shard is materialised — only the per-layer
  /// LayerStreamPlan coordinates are computed, and layer() must not be used.
  AdjacencyStore(const DatasetView& view, const Grid3D& grid, int rank, int num_layers,
                 bool streaming = false);

  /// Convenience for in-process callers holding a raw PlexusDataset.
  AdjacencyStore(const PlexusDataset& dataset, const Grid3D& grid, int rank, int num_layers);

  const AdjacencyShard& layer(int l) const;

  bool streaming() const { return streaming_; }
  const LayerStreamPlan& layer_stream(int l) const;

  /// Number of distinct shards stored (tested against min(3,L)/min(6,2L)).
  std::size_t unique_shards() const { return shards_.size(); }

 private:
  bool streaming_ = false;
  std::map<std::pair<int, int>, std::shared_ptr<AdjacencyShard>> shards_;  // (version, plane)
  std::vector<std::shared_ptr<AdjacencyShard>> by_layer_;
  std::vector<LayerStreamPlan> plans_;
};

}  // namespace plexus::core
