#pragma once
/// \file roles.hpp
/// Per-layer axis roles of the 3D tensor-parallel algorithm (paper section
/// 3.1-3.2, Figures 2-4).
///
/// Layer 0 distributes:           generalised roles:
///   A  over the ZX-plane           A     (rows = R, cols = P), replicated over Q
///   F  over the XY-plane (+Z)      F_in  (rows = P, cols = Q) [+ flat-shard R at layer 0]
///   W  over the YX-plane (+Z)      W     (rows = Q, cols = P), flat-sharded over R
///   SpMM all-reduce over X         all-reduce over P
///   GEMM all-reduce over Y         all-reduce over Q
///   F_out over the ZX-plane        F_out (rows = R, cols = P), replicated over Q
///
/// The output of layer l is the input of layer l+1, which forces the role
/// rotation (P,Q,R) -> (R,P,Q): layers cycle through three adjacency
/// shardings — ZX-plane, YZ-plane, XY-plane — so only min(3, L) unique
/// adjacency shards are ever stored (section 3.2).

#include "sim/topology.hpp"

namespace plexus::core {

using Axis = sim::Dim;

struct LayerRoles {
  Axis p;  ///< F_in row axis == A col axis == SpMM-reduce axis
  Axis q;  ///< F_in col axis == W row axis == GEMM-reduce axis
  Axis r;  ///< A row axis == H/F_out row axis == extra-shard axis for W (and F at layer 0)
};

/// Roles of layer `layer`: (X,Y,Z) rotated by (P,Q,R) -> (R,P,Q) per layer.
constexpr LayerRoles roles_for_layer(int layer) {
  switch (layer % 3) {
    case 0: return {Axis::X, Axis::Y, Axis::Z};
    case 1: return {Axis::Z, Axis::X, Axis::Y};
    default: return {Axis::Y, Axis::Z, Axis::X};
  }
}

constexpr const char* axis_name(Axis a) {
  switch (a) {
    case Axis::X: return "X";
    case Axis::Y: return "Y";
    case Axis::Z: return "Z";
  }
  return "?";
}

}  // namespace plexus::core
