// google-benchmark micro-suite for the host kernels backing the simulator:
// SpMM (square vs tall-skinny dense operand), GEMM transpose modes, CSR
// transforms, and the intra-rank thread-count sweeps. These measure *this
// machine's* kernels (wall time), not the simulated GPUs.
//
// The thread sweeps (BM_SpmmRmatThreads / BM_GemmThreads) run the threaded
// engine at 1/2/4/8 threads on an RMAT power-law graph and report
// `speedup_vs_serial`, the ratio against a one-shot measurement of the
// single-threaded reference worker on the same operands. Select just the
// sweep with --benchmark_filter=Threads; shrink the graph on small machines
// with PLEXUS_BENCH_RMAT_SCALE (default 18).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "bench_common.hpp"
#include "dense/gemm.hpp"
#include "graph/generators.hpp"
#include "sparse/csr.hpp"
#include "sparse/spmm.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace {

plexus::sparse::Csr make_adj(std::int64_t nodes, double degree) {
  const auto coo =
      plexus::graph::erdos_renyi(nodes, static_cast<std::int64_t>(nodes * degree / 2), 3);
  return plexus::sparse::Csr::from_coo(coo, false);
}

plexus::dense::Matrix make_dense(std::int64_t r, std::int64_t c) {
  plexus::util::CounterRng rng(5);
  plexus::dense::Matrix m(r, c);
  for (std::int64_t i = 0; i < m.size(); ++i) {
    m.flat()[static_cast<std::size_t>(i)] = rng.uniform_at(static_cast<std::uint64_t>(i), -1, 1);
  }
  return m;
}

void BM_Spmm(benchmark::State& state) {
  const auto nodes = state.range(0);
  const auto cols = state.range(1);
  const auto a = make_adj(nodes, 16.0);
  const auto b = make_dense(nodes, cols);
  plexus::dense::Matrix c(nodes, cols);
  for (auto _ : state) {
    plexus::sparse::spmm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * cols * 2);
}
BENCHMARK(BM_Spmm)->Args({4096, 128})->Args({4096, 8})->Args({16384, 32});

void BM_GemmModes(benchmark::State& state) {
  const auto n = state.range(0);
  const auto ta = state.range(1) != 0 ? plexus::dense::Trans::T : plexus::dense::Trans::N;
  const auto a = make_dense(n, n);
  const auto b = make_dense(n, n);
  plexus::dense::Matrix c(n, n);
  for (auto _ : state) {
    plexus::dense::gemm(ta, plexus::dense::Trans::N, 1.0f, a, b, 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmModes)->Args({256, 0})->Args({256, 1});

int bench_rmat_scale() { return plexus::bench::rmat_scale(/*default_scale=*/18); }

/// The thread-sweep workload: an RMAT power-law graph (hub rows stress the
/// nnz-balanced partition) with a 64-wide dense operand. Built once.
const plexus::sparse::Csr& rmat_adj() {
  static const plexus::sparse::Csr a = [] {
    const int scale = bench_rmat_scale();
    const std::int64_t nodes = std::int64_t{1} << scale;
    const auto coo = plexus::graph::rmat(scale, nodes * 8, 0.57, 0.19, 0.19, 0.05, 7);
    return plexus::sparse::Csr::from_coo(coo, false);
  }();
  return a;
}

const plexus::dense::Matrix& rmat_dense() {
  static const plexus::dense::Matrix b = make_dense(rmat_adj().cols(), 64);
  return b;
}

/// Wall time of the single-threaded reference worker on the sweep operands —
/// the denominator of every speedup_vs_serial counter. One warm-up run
/// (first-touch of B/C, cache fill), then the min of three timed repetitions.
double serial_spmm_seconds() {
  static const double secs = [] {
    const auto& a = rmat_adj();
    const auto& b = rmat_dense();
    plexus::dense::Matrix c(a.rows(), b.cols());
    plexus::sparse::spmm_rows_serial(a, b, c, 0, a.rows());
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      plexus::sparse::spmm_rows_serial(a, b, c, 0, a.rows());
      benchmark::DoNotOptimize(c.data());
      best = std::min(
          best, std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
    }
    return best;
  }();
  return secs;
}

void BM_SpmmRmatThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto& a = rmat_adj();
  const auto& b = rmat_dense();
  plexus::dense::Matrix c(a.rows(), b.cols());
  const double serial = serial_spmm_seconds();
  plexus::util::ScopedIntraRankThreads scope(threads);
  // Best single iteration, so the ratio is min-vs-min with the serial side.
  double best_iter = std::numeric_limits<double>::infinity();
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    plexus::sparse::spmm(a, b, c);
    benchmark::DoNotOptimize(c.data());
    best_iter = std::min(
        best_iter, std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * b.cols() * 2);
  if (best_iter > 0.0 && std::isfinite(best_iter)) {
    state.counters["speedup_vs_serial"] = serial / best_iter;
  }
}
BENCHMARK(BM_SpmmRmatThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

constexpr std::int64_t kGemmSweepN = 384;

/// Serial GEMM baseline on the sweep operands, measured once (warm-up plus
/// min of three repetitions), like serial_spmm_seconds().
double serial_gemm_seconds() {
  static const double secs = [] {
    const auto a = make_dense(kGemmSweepN, kGemmSweepN);
    const auto b = make_dense(kGemmSweepN, kGemmSweepN);
    plexus::dense::Matrix c(kGemmSweepN, kGemmSweepN);
    plexus::util::ScopedIntraRankThreads scope(1);
    plexus::dense::gemm(plexus::dense::Trans::N, plexus::dense::Trans::N, 1.0f, a, b, 0.0f, c);
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      plexus::dense::gemm(plexus::dense::Trans::N, plexus::dense::Trans::N, 1.0f, a, b, 0.0f, c);
      best = std::min(
          best, std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
    }
    return best;
  }();
  return secs;
}

void BM_GemmThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::int64_t n = kGemmSweepN;
  const auto a = make_dense(n, n);
  const auto b = make_dense(n, n);
  plexus::dense::Matrix c(n, n);
  const double serial = serial_gemm_seconds();

  plexus::util::ScopedIntraRankThreads scope(threads);
  double best_iter = std::numeric_limits<double>::infinity();
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    plexus::dense::gemm(plexus::dense::Trans::N, plexus::dense::Trans::N, 1.0f, a, b, 0.0f, c);
    benchmark::DoNotOptimize(c.data());
    best_iter = std::min(
        best_iter, std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  if (best_iter > 0.0 && std::isfinite(best_iter)) {
    state.counters["speedup_vs_serial"] = serial / best_iter;
  }
}
BENCHMARK(BM_GemmThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// SIMD-vs-scalar kernel speedups, gated by CI's perf-smoke job. The
// denominator is the *pinned* scalar table — kernels(Target::Scalar), the
// same code PLEXUS_SIMD=scalar would dispatch to — measured in-process on
// the identical operands, so no re-exec under a different environment is
// needed and the ratio isolates vectorization (both sides single-threaded,
// both compiled with -ffp-contract=off, bitwise-identical outputs).

/// Min-of-three wall time of one full-matrix call of `k`'s SpMM row kernel
/// on the RMAT sweep operands (one warm-up call first).
double spmm_kernel_seconds(const plexus::simd::Kernels& k, plexus::dense::Matrix& c) {
  const auto& a = rmat_adj();
  const auto& b = rmat_dense();
  const auto run = [&] {
    k.spmm_rows(a.row_ptr().data(), a.col_idx().data(), a.vals().data(), b.data(), b.cols(),
                c.data(), c.cols(), 0, a.rows(), b.cols(), /*accumulate=*/false);
  };
  run();
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    benchmark::DoNotOptimize(c.data());
    best = std::min(
        best, std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
  return best;
}

void BM_SpmmSimdVsScalar(benchmark::State& state) {
  const auto& a = rmat_adj();
  plexus::dense::Matrix c(a.rows(), rmat_dense().cols());
  const double scalar =
      spmm_kernel_seconds(plexus::simd::kernels(plexus::simd::Target::Scalar), c);
  double active = std::numeric_limits<double>::infinity();
  for (auto _ : state) {
    active = std::min(active, spmm_kernel_seconds(plexus::simd::active_kernels(), c));
  }
  state.SetLabel(plexus::simd::target_name(plexus::simd::active_target()));
  state.SetItemsProcessed(state.iterations() * a.nnz() * rmat_dense().cols() * 2);
  if (active > 0.0 && std::isfinite(active)) {
    state.counters["speedup_vs_serial"] = scalar / active;
  }
}
BENCHMARK(BM_SpmmSimdVsScalar)->Unit(benchmark::kMillisecond)->Iterations(1);

/// Min-of-three wall time of one full-range GEMM accumulate tile of `k` on
/// the kGemmSweepN operands.
double gemm_kernel_seconds(const plexus::simd::Kernels& k, const plexus::dense::Matrix& a,
                           const plexus::dense::Matrix& b, plexus::dense::Matrix& c) {
  const std::int64_t n = kGemmSweepN;
  const auto run = [&] {
    k.gemm_tile(a.data(), n, b.data(), n, c.data(), n, 0, n, 0, n, n, 1.0f);
  };
  run();
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    benchmark::DoNotOptimize(c.data());
    best = std::min(
        best, std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
  return best;
}

void BM_GemmSimdVsScalar(benchmark::State& state) {
  const auto a = make_dense(kGemmSweepN, kGemmSweepN);
  const auto b = make_dense(kGemmSweepN, kGemmSweepN);
  plexus::dense::Matrix c(kGemmSweepN, kGemmSweepN);
  const double scalar =
      gemm_kernel_seconds(plexus::simd::kernels(plexus::simd::Target::Scalar), a, b, c);
  double active = std::numeric_limits<double>::infinity();
  for (auto _ : state) {
    active = std::min(active, gemm_kernel_seconds(plexus::simd::active_kernels(), a, b, c));
  }
  state.SetLabel(plexus::simd::target_name(plexus::simd::active_target()));
  state.SetItemsProcessed(state.iterations() * 2 * kGemmSweepN * kGemmSweepN * kGemmSweepN);
  if (active > 0.0 && std::isfinite(active)) {
    state.counters["speedup_vs_serial"] = scalar / active;
  }
}
BENCHMARK(BM_GemmSimdVsScalar)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_CsrTranspose(benchmark::State& state) {
  const auto a = make_adj(state.range(0), 16.0);
  for (auto _ : state) {
    auto t = a.transposed();
    benchmark::DoNotOptimize(t.nnz());
  }
}
BENCHMARK(BM_CsrTranspose)->Arg(8192);

void BM_CsrPermute(benchmark::State& state) {
  const auto a = make_adj(state.range(0), 16.0);
  const auto p = plexus::util::random_permutation(a.rows(), 9);
  for (auto _ : state) {
    auto b = a.permuted(p, p);
    benchmark::DoNotOptimize(b.nnz());
  }
}
BENCHMARK(BM_CsrPermute)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
