#include "perfmodel/perfmodel.hpp"

#include <algorithm>
#include <cmath>

#include "comm/cost.hpp"
#include "core/roles.hpp"
#include "sim/kernels.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace plexus::perf {

using core::Axis;
using core::LayerRoles;
using core::roles_for_layer;

WorkloadStats WorkloadStats::from_dataset(const graph::DatasetInfo& info, std::int64_t hidden,
                                          int num_layers) {
  WorkloadStats w;
  w.num_nodes = info.num_nodes;
  w.num_nonzeros = info.num_nonzeros;
  w.layer_dims.push_back(info.feature_dim);
  for (int l = 1; l < num_layers; ++l) w.layer_dims.push_back(hidden);
  w.layer_dims.push_back(info.num_classes);
  return w;
}

namespace {

int extent(const sim::GridShape& g, Axis a) {
  switch (a) {
    case Axis::X: return g.x;
    case Axis::Y: return g.y;
    case Axis::Z: return g.z;
  }
  return 1;
}

}  // namespace

std::vector<double> comp_model_features(const WorkloadStats& w, const sim::GridShape& g) {
  // eq. 4.4 summed across layers. flops_cost = NNZ * Din; fwd_penalty =
  // (N / G_P) * (G_Q / Din); bwd_penalty = (N / G_R) * (G_Q / Din).
  double f0 = 0.0;
  double f1 = 0.0;
  double f2 = 0.0;
  const double n = static_cast<double>(w.num_nodes);
  const double nnz = static_cast<double>(w.num_nonzeros);
  for (int l = 0; l < w.num_layers(); ++l) {
    const LayerRoles roles = roles_for_layer(l);
    const double din = static_cast<double>(w.layer_dims[static_cast<std::size_t>(l)]);
    const double ep = extent(g, roles.p);
    const double eq = extent(g, roles.q);
    const double er = extent(g, roles.r);
    const double flops_cost = nnz * din;
    const double fwd_penalty = (n / ep) * (eq / din);
    const double bwd_penalty = (n / er) * (eq / din);
    const double root = std::sqrt(flops_cost);
    f0 += root;
    f1 += root * fwd_penalty;
    f2 += root * bwd_penalty;
  }
  return {f0, f1, f2};
}

double FittedCompModel::predict(const WorkloadStats& w, const sim::GridShape& g) const {
  const auto f = comp_model_features(w, g);
  PLEXUS_CHECK(coefficients.size() == f.size(), "model not fitted");
  double v = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) v += coefficients[i] * f[i];
  return v;
}

FittedCompModel fit_comp_model(const std::vector<std::vector<double>>& features,
                               const std::vector<double>& observed_seconds) {
  FittedCompModel m;
  m.coefficients = util::linear_regression(features, observed_seconds, /*add_intercept=*/false);
  const auto pred = util::linear_predict(features, m.coefficients, false);
  m.train_r2 = util::r_squared(observed_seconds, pred);
  m.train_rmse = util::rmse(observed_seconds, pred);
  return m;
}

ValidationSummary cross_validate_comp_model(const std::vector<std::vector<double>>& features,
                                            const std::vector<double>& observed_seconds,
                                            int iterations, std::uint64_t seed) {
  PLEXUS_CHECK(features.size() >= 10, "need enough samples to cross-validate");
  ValidationSummary sum;
  util::SplitMix64 rng(seed);
  int valid_iters = 0;
  for (int it = 0; it < iterations; ++it) {
    std::vector<std::vector<double>> xtr;
    std::vector<std::vector<double>> xte;
    std::vector<double> ytr;
    std::vector<double> yte;
    for (std::size_t i = 0; i < features.size(); ++i) {
      if (rng.next_double() < 0.7) {
        xtr.push_back(features[i]);
        ytr.push_back(observed_seconds[i]);
      } else {
        xte.push_back(features[i]);
        yte.push_back(observed_seconds[i]);
      }
    }
    if (xtr.size() < 4 || xte.size() < 4) continue;
    const auto beta = util::linear_regression(xtr, ytr, false);
    const auto ptr = util::linear_predict(xtr, beta, false);
    const auto pte = util::linear_predict(xte, beta, false);
    sum.train_r2 += util::r_squared(ytr, ptr);
    sum.test_r2 += util::r_squared(yte, pte);
    sum.train_rmse += util::rmse(ytr, ptr);
    sum.test_rmse += util::rmse(yte, pte);
    ++valid_iters;
  }
  PLEXUS_CHECK(valid_iters > 0, "no valid cross-validation splits");
  const double inv = 1.0 / static_cast<double>(valid_iters);
  sum.train_r2 *= inv;
  sum.test_r2 *= inv;
  sum.train_rmse *= inv;
  sum.test_rmse *= inv;
  return sum;
}

EpochPrediction predict_epoch(const sim::Machine& machine, const WorkloadStats& w,
                              const sim::GridShape& g) {
  EpochPrediction out;
  const double n = static_cast<double>(w.num_nodes);
  const double nnz = static_cast<double>(w.num_nonzeros);

  for (int l = 0; l < w.num_layers(); ++l) {
    const LayerRoles roles = roles_for_layer(l);
    const double ep = extent(g, roles.p);
    const double eq = extent(g, roles.q);
    const double er = extent(g, roles.r);
    const double din = static_cast<double>(w.layer_dims[static_cast<std::size_t>(l)]);
    const double dout = static_cast<double>(w.layer_dims[static_cast<std::size_t>(l) + 1]);
    const double din_q = std::max(1.0, din / eq);
    const double dout_p = std::max(1.0, dout / ep);
    const auto nnz_shard = static_cast<std::int64_t>(nnz / (er * ep));

    // SpMM: forward H = A F, backward dF = A^T dH. Double permutation makes
    // per-shard nonzeros near-uniform (Table 3), so NNZ/(R*P) per shard.
    const sim::SpmmShape fwd{nnz_shard, static_cast<std::int64_t>(n / er),
                             static_cast<std::int64_t>(n / ep),
                             static_cast<std::int64_t>(din_q)};
    const sim::SpmmShape bwd{nnz_shard, static_cast<std::int64_t>(n / ep),
                             static_cast<std::int64_t>(n / er),
                             static_cast<std::int64_t>(din_q)};
    out.spmm_seconds += sim::spmm_time(machine, fwd) + sim::spmm_time(machine, bwd);

    // Dense GEMMs (small next to SpMM; the paper's unified model neglects
    // them, we keep them for completeness). dW uses the tuned fast mode.
    out.gemm_seconds += sim::gemm_time(machine, static_cast<std::int64_t>(n / er),
                                       static_cast<std::int64_t>(dout_p),
                                       static_cast<std::int64_t>(din_q), dense::Trans::N,
                                       dense::Trans::N);
    out.gemm_seconds += sim::gemm_time(machine, static_cast<std::int64_t>(din_q),
                                       static_cast<std::int64_t>(dout_p),
                                       static_cast<std::int64_t>(n / er), dense::Trans::N,
                                       dense::Trans::T);
    out.gemm_seconds += sim::gemm_time(machine, static_cast<std::int64_t>(n / er),
                                       static_cast<std::int64_t>(din_q),
                                       static_cast<std::int64_t>(dout_p), dense::Trans::N,
                                       dense::Trans::T);

    // Collectives (eq. 4.5 with the eq. 4.6 effective links).
    const auto link_p = sim::link_for_dim(machine, g, roles.p);
    const auto link_q = sim::link_for_dim(machine, g, roles.q);
    const auto link_r = sim::link_for_dim(machine, g, roles.r);
    const int gp = static_cast<int>(ep);
    const int gq = static_cast<int>(eq);
    const int gr = static_cast<int>(er);
    auto t = [&](comm::Collective op, double bytes, int size, const comm::LinkParams& link) {
      return comm::collective_time(op, static_cast<std::int64_t>(bytes), size, link);
    };
    const double bytes_h = 4.0 * (n / er) * din_q;
    const double bytes_q = 4.0 * (n / er) * dout_p;
    const double bytes_w = 4.0 * din_q * dout_p;
    const double bytes_f = 4.0 * (n / ep) * din_q;

    // Forward: (layer 0) all-gather F over R; all-reduce H over P; all-gather
    // W over R; all-reduce Q over Q.
    if (l == 0) out.comm_seconds += t(comm::Collective::AllGather, bytes_f, gr, link_r);
    out.comm_seconds += t(comm::Collective::AllReduce, bytes_h, gp, link_p);
    out.comm_seconds += t(comm::Collective::AllGather, bytes_w, gr, link_r);
    out.comm_seconds += t(comm::Collective::AllReduce, bytes_q, gq, link_q);
    // Backward: reduce-scatter dW over R; all-gather W over R; all-reduce dH
    // over P; reduce-scatter (layer 0) / all-reduce dF over R.
    out.comm_seconds += t(comm::Collective::ReduceScatter, bytes_w, gr, link_r);
    out.comm_seconds += t(comm::Collective::AllGather, bytes_w, gr, link_r);
    out.comm_seconds += t(comm::Collective::AllReduce, bytes_h, gp, link_p);
    out.comm_seconds += t(l == 0 ? comm::Collective::ReduceScatter : comm::Collective::AllReduce,
                          bytes_f, gr, link_r);
  }
  return out;
}

int choose_pipeline_depth(const sim::Machine& machine, const WorkloadStats& w,
                          const sim::GridShape& g, int layer, int agg_row_blocks,
                          int wire_elem_bytes) {
  PLEXUS_CHECK(layer >= 0 && layer < w.num_layers(), "choose_pipeline_depth: bad layer");
  PLEXUS_CHECK(wire_elem_bytes > 0, "choose_pipeline_depth: bad wire element size");
  const LayerRoles roles = roles_for_layer(layer);
  const double ep = extent(g, roles.p);
  const double eq = extent(g, roles.q);
  const double er = extent(g, roles.r);
  const double n = static_cast<double>(w.num_nodes);
  const double nnz = static_cast<double>(w.num_nonzeros);
  const double din = static_cast<double>(w.layer_dims[static_cast<std::size_t>(layer)]);
  const double din_q = std::max(1.0, din / eq);
  const int nb = std::max(1, agg_row_blocks);

  // Average per-block forward-aggregation SpMM on this layer's shard.
  const sim::SpmmShape block{static_cast<std::int64_t>(nnz / (er * ep)) / nb,
                             static_cast<std::int64_t>(n / er) / nb,
                             static_cast<std::int64_t>(n / ep),
                             static_cast<std::int64_t>(din_q)};
  const double t_spmm = sim::spmm_time(machine, block);
  // Per-block ring time of the H all-reduce over the P group (eq. 4.5/4.6).
  const auto link_p = sim::link_for_dim(machine, g, roles.p);
  const double block_bytes = static_cast<double>(wire_elem_bytes) * (n / er) / nb * din_q;
  const double t_ring = comm::collective_time(
      comm::Collective::AllReduce, static_cast<std::int64_t>(block_bytes),
      static_cast<int>(ep), link_p);
  return comm::choose_pipeline_depth(t_spmm, t_ring, nb);
}

int choose_prefetch_depth(const sim::Machine& machine, std::int64_t block_bytes,
                          double block_spmm_seconds, int num_blocks,
                          std::int64_t rss_budget_bytes) {
  PLEXUS_CHECK(block_bytes >= 0, "choose_prefetch_depth: bad block size");
  const int nb = std::max(1, num_blocks);
  const double t_disk =
      static_cast<double>(block_bytes) / std::max(1.0, machine.disk_bw);
  int depth = comm::choose_pipeline_depth(block_spmm_seconds, t_disk, nb);
  if (rss_budget_bytes >= 0 && block_bytes > 0) {
    depth = std::min<int>(depth,
                          std::max<std::int64_t>(1, rss_budget_bytes / block_bytes));
  }
  return std::clamp(depth, 1, nb);
}

double estimate_per_gpu_bytes(const WorkloadStats& w, const sim::GridShape& g,
                              int adjacency_versions, double elem_bytes) {
  PLEXUS_CHECK(adjacency_versions >= 1, "estimate_per_gpu_bytes: bad version count");
  const double n = static_cast<double>(w.num_nodes);
  const double nnz = static_cast<double>(w.num_nonzeros);
  const double gpus = static_cast<double>(g.x) * g.y * g.z;

  // Adjacency: one shard per distinct plane in use (planes cycle mod 3), per
  // version, stored with its transpose. CSR = col_idx (4B) + vals (elem) per
  // nonzero, row_ptr (8B) per row.
  double adjacency = 0.0;
  const int planes = std::min(3, w.num_layers());
  for (int l = 0; l < planes; ++l) {
    const LayerRoles roles = roles_for_layer(l);
    const double er = extent(g, roles.r);
    const double ep = extent(g, roles.p);
    const double shard_nnz = nnz / (er * ep);
    const double csr = shard_nnz * (4.0 + elem_bytes) + (n / er + 1.0) * 8.0;
    adjacency += static_cast<double>(adjacency_versions) * 2.0 * csr;
  }

  // Activations + gradients: H, dH, the forward stash and the aggregation
  // scratch — 4 live (N * dim / gpus) blocks over the layer dim sum.
  double dim_sum = 0.0;
  for (const auto d : w.layer_dims) dim_sum += static_cast<double>(d);
  const double activations = 4.0 * n * dim_sum / gpus * elem_bytes;

  // Trainable features plus their two Adam moments.
  const double features =
      3.0 * n * static_cast<double>(w.layer_dims.front()) / gpus * elem_bytes;

  return adjacency + activations + features;
}

bool choose_sparse_aggregation(const sim::Machine& machine, const WorkloadStats& w,
                               const sim::GridShape& g, int layer, int agg_row_blocks,
                               bool backward, int wire_elem_bytes) {
  PLEXUS_CHECK(layer >= 0 && layer < w.num_layers(), "choose_sparse_aggregation: bad layer");
  PLEXUS_CHECK(wire_elem_bytes > 0, "choose_sparse_aggregation: bad wire element size");
  const LayerRoles roles = roles_for_layer(layer);
  const double ep = extent(g, roles.p);
  const double eq = extent(g, roles.q);
  const double er = extent(g, roles.r);
  const double n = static_cast<double>(w.num_nodes);
  const double nnz = static_cast<double>(w.num_nonzeros);
  const double din_q =
      std::max(1.0, static_cast<double>(w.layer_dims[static_cast<std::size_t>(layer)]) / eq);
  const int nb = std::max(1, agg_row_blocks);

  // Forward aggregates the (N/R)-row H block over P; backward aggregates the
  // (N/P)-row dF block over R. The shard holds NNZ/(R*P) nonzeros either way.
  const double group = backward ? er : ep;
  const double rows = backward ? n / ep : n / er;
  const auto link = sim::link_for_dim(machine, g, backward ? roles.r : roles.p);
  if (group <= 1.0) return false;

  // Expected nonzeros per shard row, and the Poisson estimate of the support
  // density (fraction of rows with at least one nonzero — the rows sparse
  // aggregation actually ships).
  const double deg = nnz / (er * ep) / std::max(1.0, rows);
  const double density = std::min(1.0, 1.0 - std::exp(-deg));

  const double eb = static_cast<double>(wire_elem_bytes);
  const auto block_bytes = static_cast<std::int64_t>(eb * (rows / nb) * din_q);
  const auto support_bytes = static_cast<std::int64_t>(eb * (rows / nb) * density * din_q);
  const bool scatter = backward && layer == 0;
  const double t_dense =
      comm::dense_aggregation_time(block_bytes, scatter, static_cast<int>(group), link);
  const double t_sparse = comm::sparse_aggregation_time(block_bytes, support_bytes, scatter,
                                                        static_cast<int>(group), link);
  return t_sparse < t_dense;
}

std::vector<sim::GridShape> enumerate_grids(int gpus) {
  std::vector<sim::GridShape> out;
  for (int x = 1; x <= gpus; ++x) {
    if (gpus % x != 0) continue;
    const int yz = gpus / x;
    for (int y = 1; y <= yz; ++y) {
      if (yz % y != 0) continue;
      out.push_back({x, y, yz / y});
    }
  }
  return out;
}

int grid_dimensionality(const sim::GridShape& g) {
  return (g.x > 1 ? 1 : 0) + (g.y > 1 ? 1 : 0) + (g.z > 1 ? 1 : 0);
}

std::vector<RankedConfig> rank_configurations(const sim::Machine& machine,
                                              const WorkloadStats& w, int gpus) {
  std::vector<RankedConfig> out;
  for (const auto& g : enumerate_grids(gpus)) {
    out.push_back({g, predict_epoch(machine, w, g)});
  }
  std::sort(out.begin(), out.end(), [](const RankedConfig& a, const RankedConfig& b) {
    return a.prediction.total() < b.prediction.total();
  });
  return out;
}

sim::GridShape best_configuration(const sim::Machine& machine, const WorkloadStats& w,
                                  int gpus) {
  const auto ranked = rank_configurations(machine, w, gpus);
  PLEXUS_CHECK(!ranked.empty(), "no configurations");
  return ranked.front().grid;
}

std::string grid_to_string(const sim::GridShape& g) {
  // Built with append rather than operator+ chaining: GCC 12's -Wrestrict
  // false-positives on `const char* + std::string&&` chains (GCC PR 105329).
  std::string s = "X";
  s += std::to_string(g.x);
  s += "Y";
  s += std::to_string(g.y);
  s += "Z";
  s += std::to_string(g.z);
  return s;
}

}  // namespace plexus::perf
