// Determinism guarantees of the threaded kernel + comm engines at the
// training level: the same seed and grid must give bitwise-identical
// train_plexus losses across repeated runs, across intra-rank thread budgets,
// across blocked-aggregation pipeline depths, and across comm-thread modes.
// Every kernel's output rows are owned by exactly one chunk, the loss
// reduction uses a thread-count-independent chunk grid, and the pipelined
// per-block all-reduces sum in fixed member order over disjoint row ranges —
// so no tolerance is needed anywhere.
#include <gtest/gtest.h>

#include <vector>

#include "comm/handle.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"

namespace pc = plexus::core;
namespace pg = plexus::graph;
namespace psim = plexus::sim;

namespace {

// Sized so the per-rank SpMM/GEMM shards and the 512-row loss slice exceed
// the kernels' small-work cutoffs — the threaded paths must actually run for
// the cross-budget comparison to mean anything.
pc::TrainOptions small_options() {
  pc::TrainOptions opt;
  opt.grid = {2, 1, 1};
  opt.machine = &psim::Machine::test_machine();
  opt.model.hidden_dims = {16};
  opt.epochs = 3;
  return opt;
}

std::vector<double> losses_with_threads(const pg::Graph& g, int intra_rank_threads) {
  pc::TrainOptions opt = small_options();
  opt.intra_rank_threads = intra_rank_threads;
  return pc::train_plexus(g, opt).losses();
}

}  // namespace

TEST(Determinism, RepeatedRunsAreBitwiseIdentical) {
  const pg::Graph g = pg::make_test_graph(1024, 8.0, 32, 4, /*seed=*/3);
  const auto a = losses_with_threads(g, 2);
  const auto b = losses_with_threads(g, 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    EXPECT_EQ(a[e], b[e]) << "epoch " << e;  // bitwise, no tolerance
  }
}

TEST(Determinism, LossesIdenticalAcrossThreadBudgets) {
  const pg::Graph g = pg::make_test_graph(1024, 8.0, 32, 4, /*seed=*/3);
  const auto serial = losses_with_threads(g, 1);
  ASSERT_EQ(serial.size(), 3u);
  EXPECT_TRUE(serial.front() > 0.0);
  for (const int threads : {2, 4}) {
    const auto threaded = losses_with_threads(g, threads);
    ASSERT_EQ(threaded.size(), serial.size());
    for (std::size_t e = 0; e < serial.size(); ++e) {
      EXPECT_EQ(threaded[e], serial[e]) << "threads=" << threads << " epoch " << e;
    }
  }
}

TEST(Determinism, LossesIdenticalAcrossPipelineDepthsAndThreads) {
  // The paper's headline claim is that pipelining changes only the schedule:
  // losses must be bitwise-identical between the fully blocking path
  // (depth 1) and any pipelined depth, for any thread budget.
  const pg::Graph g = pg::make_test_graph(1024, 8.0, 32, 4, /*seed=*/3);
  pc::TrainOptions base = small_options();
  base.grid = {2, 2, 1};
  base.model.options.agg_row_blocks = 4;
  base.pipeline_depth = 1;
  base.intra_rank_threads = 1;
  const auto blocking = pc::train_plexus(g, base).losses();
  ASSERT_EQ(blocking.size(), 3u);
  for (const int depth : {2, 4, 0}) {  // 0 = adaptive per-layer depth
    for (const int threads : {1, 2}) {
      pc::TrainOptions opt = base;
      opt.pipeline_depth = depth;
      opt.intra_rank_threads = threads;
      const auto piped = pc::train_plexus(g, opt).losses();
      ASSERT_EQ(piped.size(), blocking.size());
      for (std::size_t e = 0; e < blocking.size(); ++e) {
        EXPECT_EQ(piped[e], blocking[e]) << "depth=" << depth << " threads=" << threads
                                         << " epoch " << e;  // bitwise
      }
    }
  }
}

TEST(Determinism, LossesIdenticalAcrossCommChannelCounts) {
  // Inline mode (PLEXUS_COMM_THREADS=0) executes collectives on the posting
  // thread; the single-FIFO comm thread (1) and concurrent per-group channels
  // (2, 4) must not change a single bit — the data math and the sim-time math
  // are both independent of real execution order. A 2x2 grid gives each rank
  // collectives on several distinct line groups, so channels really differ.
  const pg::Graph g = pg::make_test_graph(1024, 8.0, 32, 4, /*seed=*/3);
  pc::TrainOptions opt = small_options();
  opt.grid = {2, 2, 1};
  opt.model.options.agg_row_blocks = 4;
  opt.pipeline_depth = 4;
  std::vector<double> reference;
  {
    plexus::comm::ScopedCommThreads scoped(1);
    reference = pc::train_plexus(g, opt).losses();
  }
  ASSERT_EQ(reference.size(), 3u);
  for (const int budget : {0, 2, 4}) {
    plexus::comm::ScopedCommThreads scoped(budget);
    const auto losses = pc::train_plexus(g, opt).losses();
    ASSERT_EQ(losses.size(), reference.size());
    for (std::size_t e = 0; e < losses.size(); ++e) {
      EXPECT_EQ(losses[e], reference[e]) << "budget=" << budget << " epoch " << e;
    }
  }
}

TEST(Determinism, AutoBudgetMatchesExplicitBudgets) {
  // intra_rank_threads = 0 resolves from the environment/hardware; whatever
  // it picks must not change the math.
  const pg::Graph g = pg::make_test_graph(72, 5.0, 12, 3, /*seed=*/9);
  const auto fixed = losses_with_threads(g, 1);
  const auto autod = losses_with_threads(g, 0);
  ASSERT_EQ(autod.size(), fixed.size());
  for (std::size_t e = 0; e < fixed.size(); ++e) {
    EXPECT_EQ(autod[e], fixed[e]) << "epoch " << e;
  }
}
