#pragma once
/// \file datasets.hpp
/// Registry of the six evaluation datasets (paper Table 4) and construction of
/// scaled-down synthetic *proxies*.
///
/// The real datasets (Reddit, OGB, HipMCL, SuiteSparse) are not redistributable
/// here and exceed this machine, so each entry records the paper's exact
/// statistics (used verbatim by the analytic performance model for full-scale
/// results) plus a structural class that selects a generator for functional
/// runs at reduced scale. Proxies preserve average degree and ordering
/// locality, which is what the paper's load-balance and scaling phenomena
/// depend on.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace plexus::graph {

enum class GraphClass {
  Social,         ///< Reddit: dense community structure
  CoPurchase,     ///< ogbn-products / products-14M: power-law
  Citation,       ///< ogbn-papers100M: power-law, sparse
  ProteinSim,     ///< Isolate-3-8M: dense overlapping clusters
  RoadNetwork,    ///< europe_osm: near-lattice, huge diameter
};

struct DatasetInfo {
  std::string name;
  std::int64_t num_nodes = 0;
  std::int64_t num_edges = 0;     ///< directed edge count as reported
  std::int64_t num_nonzeros = 0;  ///< nnz of the preprocessed adjacency
  std::int64_t feature_dim = 0;
  std::int64_t num_classes = 0;
  GraphClass kind = GraphClass::Social;

  double avg_degree() const {
    return static_cast<double>(num_edges) / static_cast<double>(num_nodes);
  }
  double nnz_per_node() const {
    return static_cast<double>(num_nonzeros) / static_cast<double>(num_nodes);
  }
};

/// The six Table 4 datasets in paper order.
const std::vector<DatasetInfo>& paper_datasets();

/// Lookup by name; throws if unknown.
const DatasetInfo& dataset_info(const std::string& name);

/// Build a synthetic proxy graph for `info` with about `target_nodes` nodes
/// (generator granularity may round this), matching average degree, feature
/// dim, class count, and ordering locality. Labels follow the paper's recipe
/// for datasets without provided labels (degree-distribution based).
Graph make_proxy(const DatasetInfo& info, std::int64_t target_nodes, std::uint64_t seed);

/// Small deterministic random graph for unit tests (features carry a label
/// signal so short training runs show loss decrease).
Graph make_test_graph(std::int64_t num_nodes, double avg_degree, std::int64_t feature_dim,
                      std::int64_t num_classes, std::uint64_t seed);

}  // namespace plexus::graph
