/// \file transport_mpi.cpp
/// The MPI byte-transport (compiled only with -DPLEXUS_WITH_MPI=ON).
///
/// One process per rank. Each plexus `GroupShared` is lazily mapped onto an
/// MPI sub-communicator via `MPI_Comm_create_group` over the group's member
/// list (collective only over the members, so creation order follows the SPMD
/// posting order without involving non-members); the plexus World size must
/// equal `MPI_COMM_WORLD`'s size and plexus ranks are MPI ranks. The members
/// list is passed to `MPI_Group_incl` in group-position order, so a member's
/// sub-communicator rank equals its plexus group position — the property the
/// gathers below rely on.
///
/// Collective mapping:
///
///   iall_gather        -> MPI_Iallgatherv  (equal counts, exact copies)
///   broadcast          -> MPI_Ibcast
///   all_to_all         -> MPI_Ialltoallv   (equal counts)
///   all_to_all_v       -> MPI_Alltoall of counts + MPI_Ialltoallv payload
///   barrier            -> MPI_Ibarrier
///   ireduce_scatter    -> MPI_Allgather of the full inputs + canonical fold
///   iall_reduce_sum    -> MPI_Allgather of the contributions + canonical fold
///   scalar reductions  -> MPI_Allgather of one double + canonical fold
///
/// Reductions deliberately avoid `MPI_SUM`: MPI leaves the reduction order
/// implementation-defined, while the transport conformance contract requires
/// contributions folded with `CollArgs::accumulate` in canonical member order
/// (member 0, 1, …, G−1 — exactly what SimTransport::move does). Gathering
/// every contribution and folding locally costs extra wire volume but makes
/// float results bitwise-identical to the in-process backends, which is what
/// lets `mpirun`ed training gate its losses against the `local` backend.
///
/// The request is posted and completed on the op's executing thread (a comm
/// channel, or the posting thread in inline mode), so CommHandle
/// post/wait/test/drop keep their exact semantics: `test()` polls the
/// channel-side completion flag, `wait()` retires the op, dropping completes
/// but skips the accounting. With channel budgets > 0 multiple threads enter
/// MPI concurrently — initialise with MPI_THREAD_MULTIPLE (mpi_runtime_init
/// does, and downgrades the budget when the library grants less).
///
/// Sim clocks work cross-process by piggybacking one fused
/// `MPI_Allreduce(MPI_MAX, {posted clock, payload bytes})` on every clocked
/// op. That is all the completion math needs: `done = max(link busy horizon,
/// max member post clock) + T_ring(bytes)`. Each process keeps its own copy
/// of the group's `link_busy_until`, but the written value is group-uniform
/// (max of group-uniform inputs) and ops on one group execute in SPMD posting
/// order, so the copies stay equal by induction — the same argument the
/// in-process protocol makes for member 0's single copy. Unclocked
/// Communicators skip the fused allreduce entirely and charge cost-model
/// time per op, as before.

#include <mpi.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "comm/transport.hpp"
#include "util/error.hpp"

namespace plexus::comm {

namespace {

void mpi_check(int err, const char* what) {
  if (err == MPI_SUCCESS) return;
  char msg[MPI_MAX_ERROR_STRING + 1] = {0};
  int len = 0;
  MPI_Error_string(err, msg, &len);
  PLEXUS_CHECK(false, std::string(what) + ": " + msg);
}

/// MPI implementations may reject null buffer pointers even with zero counts
/// (the standard leaves it undefined); empty send lists and 0-row slabs are
/// legal plexus payloads, so substitute a dummy non-null pointer.
unsigned char g_zero_payload_dummy = 0;
const void* nn(const void* p) { return p != nullptr ? p : &g_zero_payload_dummy; }
void* nn(void* p) { return p != nullptr ? p : static_cast<void*>(&g_zero_payload_dummy); }

class MpiTransport final : public Transport {
 public:
  ~MpiTransport() override {
    // Communicators leak deliberately: MPI_Finalize order vs static
    // destruction is unknowable, and freeing after finalize aborts.
  }

  Backend backend() const override { return Backend::Mpi; }
  const char* name() const override { return "mpi"; }
  bool uses_group_protocol() const override { return false; }
  bool supports_clock() const override { return true; }

  void execute(GroupShared& g, const CollArgs& a, detail::CommOp& op) override {
    MPI_Comm comm = comm_for(g, a.gid);
    check_rank_identity(g, a);
    const int G = g.size();
    MPI_Request req = MPI_REQUEST_NULL;
    // MPI-3 counts and displacements are int: reject payloads whose per-chunk
    // size or whose largest displacement (G-1 chunks in) would overflow,
    // turning silent corruption into a clean error. (Large-count MPI-4
    // *_c variants are a follow-on.)
    const std::uint64_t chunk_bytes =
        static_cast<std::uint64_t>(a.count) * static_cast<std::uint64_t>(a.elem);
    PLEXUS_CHECK(chunk_bytes * static_cast<std::uint64_t>(G) <=
                     static_cast<std::uint64_t>(std::numeric_limits<int>::max()),
                 "MPI transport: payload exceeds MPI int counts/displacements");
    const auto nb = static_cast<int>(chunk_bytes);
    switch (a.kind) {
      case Collective::Barrier: {
        const double max_posted = clock_sync(comm, op, op.bytes);
        mpi_check(MPI_Ibarrier(comm, &req), "MPI_Ibarrier");
        mpi_check(MPI_Wait(&req, MPI_STATUS_IGNORE), "MPI_Wait");
        finish(g, op, max_posted);
        return;
      }
      case Collective::AllGather: {
        const double max_posted = clock_sync(comm, op, op.bytes);
        counts_.assign(static_cast<std::size_t>(G), nb);
        displs_.resize(static_cast<std::size_t>(G));
        for (int m = 0; m < G; ++m) displs_[static_cast<std::size_t>(m)] = m * nb;
        mpi_check(MPI_Iallgatherv(nn(a.send), nb, MPI_BYTE, nn(a.recv), counts_.data(),
                                  displs_.data(), MPI_BYTE, comm, &req),
                  "MPI_Iallgatherv");
        mpi_check(MPI_Wait(&req, MPI_STATUS_IGNORE), "MPI_Wait");
        finish(g, op, max_posted);
        return;
      }
      case Collective::ReduceScatter: {
        // Gather every member's full input, then fold this member's chunk in
        // canonical order — bitwise-identical to SimTransport's read phase.
        const double max_posted = clock_sync(comm, op, op.bytes);
        const std::uint64_t full = chunk_bytes * static_cast<std::uint64_t>(G);
        PLEXUS_CHECK(full * static_cast<std::uint64_t>(G) <=
                         static_cast<std::uint64_t>(std::numeric_limits<int>::max()),
                     "MPI transport: reduce_scatter gather exceeds MPI int counts");
        auto& buf = gather_buf_;
        buf.resize(full * static_cast<std::uint64_t>(G));
        mpi_check(MPI_Allgather(nn(a.send), static_cast<int>(full), MPI_BYTE, nn(buf.data()),
                                static_cast<int>(full), MPI_BYTE, comm),
                  "MPI_Allgather(reduce_scatter)");
        if (chunk_bytes > 0) {
          const std::uint64_t off = static_cast<std::uint64_t>(a.pos) * chunk_bytes;
          detail::assign_chunk(a, a.recv, buf.data() + off);
          for (int m = 1; m < G; ++m) {
            a.accumulate(a.recv, buf.data() + static_cast<std::uint64_t>(m) * full + off,
                         a.count);
          }
        }
        finish(g, op, max_posted);
        return;
      }
      case Collective::AllReduce: {
        const double max_posted = clock_sync(comm, op, op.bytes);
        if (a.scalar_op) {
          // Same left-fold as the in-process aux-slot exchange.
          scalars_.resize(static_cast<std::size_t>(G));
          mpi_check(MPI_Allgather(&a.scalar_value, 1, MPI_DOUBLE, scalars_.data(), 1,
                                  MPI_DOUBLE, comm),
                    "MPI_Allgather(scalar)");
          double acc = a.scalar_is_max ? a.scalar_value : 0.0;
          for (int m = 0; m < G; ++m) {
            const double v = scalars_[static_cast<std::size_t>(m)];
            acc = a.scalar_is_max ? std::max(acc, v) : acc + v;
          }
          op.scalar = acc;
          finish(g, op, max_posted);
          return;
        }
        // Gather every member's *published* contribution (the packed wire
        // buffer under a compressed wire format, else the in-place buffer),
        // fold member 0 first then 1..G-1 — SimTransport's scratch fold,
        // verbatim.
        auto& buf = gather_buf_;
        buf.resize(chunk_bytes * static_cast<std::uint64_t>(G));
        const void* contrib = a.send != nullptr ? a.send : a.recv;
        mpi_check(MPI_Allgather(nn(contrib), nb, MPI_BYTE, nn(buf.data()), nb, MPI_BYTE, comm),
                  "MPI_Allgather(all_reduce)");
        if (chunk_bytes > 0) {
          detail::assign_chunk(a, a.recv, buf.data());
          for (int m = 1; m < G; ++m) {
            a.accumulate(a.recv, buf.data() + static_cast<std::uint64_t>(m) * chunk_bytes,
                         a.count);
          }
        }
        finish(g, op, max_posted);
        return;
      }
      case Collective::Broadcast: {
        const double max_posted = clock_sync(comm, op, op.bytes);
        mpi_check(MPI_Ibcast(nn(a.recv), nb, MPI_BYTE, a.root, comm, &req), "MPI_Ibcast");
        mpi_check(MPI_Wait(&req, MPI_STATUS_IGNORE), "MPI_Wait");
        finish(g, op, max_posted);
        return;
      }
      case Collective::AllToAll: {
        if (a.send_counts != nullptr) {
          // Flat variable all-to-all: the caller owns the count exchange, so
          // both sides are known here — just size-check and post.
          std::vector<int> scounts(static_cast<std::size_t>(G)),
              sdispls(static_cast<std::size_t>(G));
          std::vector<int> rcounts(static_cast<std::size_t>(G)),
              rdispls(static_cast<std::size_t>(G));
          std::int64_t soff = 0, roff = 0, my_send = 0;
          for (int m = 0; m < G; ++m) {
            const std::int64_t sb = a.send_counts[m] * static_cast<std::int64_t>(a.elem);
            const std::int64_t rb = a.recv_counts[m] * static_cast<std::int64_t>(a.elem);
            scounts[static_cast<std::size_t>(m)] = static_cast<int>(sb);
            rcounts[static_cast<std::size_t>(m)] = static_cast<int>(rb);
            sdispls[static_cast<std::size_t>(m)] = static_cast<int>(soff);
            rdispls[static_cast<std::size_t>(m)] = static_cast<int>(roff);
            soff += sb;
            roff += rb;
            my_send += sb;
          }
          PLEXUS_CHECK(soff <= std::numeric_limits<int>::max() &&
                           roff <= std::numeric_limits<int>::max(),
                       "MPI transport: iall_to_all_v payload exceeds MPI int counts");
          const double max_posted = clock_sync(comm, op, my_send);
          mpi_check(MPI_Ialltoallv(nn(a.send), scounts.data(), sdispls.data(), MPI_BYTE,
                                   nn(a.recv), rcounts.data(), rdispls.data(), MPI_BYTE,
                                   comm, &req),
                    "MPI_Ialltoallv");
          mpi_check(MPI_Wait(&req, MPI_STATUS_IGNORE), "MPI_Wait");
          // The straggler defines the exchange: cost the maximum per-member
          // total send volume, like the in-process protocol's aux exchange.
          // Clocked ops already exchanged it through the fused allreduce.
          if (!op.clocked) {
            std::int64_t max_total = my_send;
            mpi_check(
                MPI_Allreduce(MPI_IN_PLACE, &max_total, 1, MPI_INT64_T, MPI_MAX, comm),
                "MPI_Allreduce(max bytes)");
            op.bytes = max_total;
          }
          finish(g, op, max_posted);
          return;
        }
        const double max_posted = clock_sync(comm, op, op.bytes);
        counts_.assign(static_cast<std::size_t>(G), nb);
        displs_.resize(static_cast<std::size_t>(G));
        for (int m = 0; m < G; ++m) displs_[static_cast<std::size_t>(m)] = m * nb;
        mpi_check(MPI_Ialltoallv(nn(a.send), counts_.data(), displs_.data(), MPI_BYTE,
                                 nn(a.recv), counts_.data(), displs_.data(), MPI_BYTE,
                                 comm, &req),
                  "MPI_Ialltoallv");
        mpi_check(MPI_Wait(&req, MPI_STATUS_IGNORE), "MPI_Wait");
        finish(g, op, max_posted);
        return;
      }
      case Collective::Send:
        PLEXUS_CHECK(false, "point-to-point is accounting-only");
    }
    PLEXUS_CHECK(false, "unknown collective");
  }

  void alltoallv(GroupShared& g, const CollArgs& a,
                 const std::vector<std::span<const unsigned char>>& send,
                 std::vector<std::vector<unsigned char>>& recv,
                 detail::CommOp& op) override {
    MPI_Comm comm = comm_for(g, a.gid);
    check_rank_identity(g, a);
    const int G = g.size();
    // Exchange per-member byte counts, then the payload.
    std::vector<std::int64_t> send_counts(static_cast<std::size_t>(G));
    std::vector<std::int64_t> recv_counts(static_cast<std::size_t>(G));
    std::int64_t my_total = 0;
    for (int m = 0; m < G; ++m) {
      send_counts[static_cast<std::size_t>(m)] =
          static_cast<std::int64_t>(send[static_cast<std::size_t>(m)].size());
      my_total += send_counts[static_cast<std::size_t>(m)];
    }
    const double max_posted = clock_sync(comm, op, my_total);
    mpi_check(MPI_Alltoall(send_counts.data(), 1, MPI_INT64_T, recv_counts.data(), 1,
                           MPI_INT64_T, comm),
              "MPI_Alltoall(counts)");
    std::vector<int> scounts(static_cast<std::size_t>(G)), sdispls(static_cast<std::size_t>(G));
    std::vector<int> rcounts(static_cast<std::size_t>(G)), rdispls(static_cast<std::size_t>(G));
    std::int64_t soff64 = 0, roff64 = 0;
    for (int m = 0; m < G; ++m) {
      soff64 += send_counts[static_cast<std::size_t>(m)];
      roff64 += recv_counts[static_cast<std::size_t>(m)];
    }
    PLEXUS_CHECK(soff64 <= std::numeric_limits<int>::max() &&
                     roff64 <= std::numeric_limits<int>::max(),
                 "MPI transport: all_to_all_v payload exceeds MPI int counts");
    int soff = 0, roff = 0;
    for (int m = 0; m < G; ++m) {
      scounts[static_cast<std::size_t>(m)] =
          static_cast<int>(send_counts[static_cast<std::size_t>(m)]);
      rcounts[static_cast<std::size_t>(m)] =
          static_cast<int>(recv_counts[static_cast<std::size_t>(m)]);
      sdispls[static_cast<std::size_t>(m)] = soff;
      rdispls[static_cast<std::size_t>(m)] = roff;
      soff += scounts[static_cast<std::size_t>(m)];
      roff += rcounts[static_cast<std::size_t>(m)];
    }
    std::vector<unsigned char> send_flat(static_cast<std::size_t>(soff));
    for (int m = 0; m < G; ++m) {
      const auto& s = send[static_cast<std::size_t>(m)];
      if (!s.empty()) {
        std::copy(s.begin(), s.end(),
                  send_flat.begin() + sdispls[static_cast<std::size_t>(m)]);
      }
    }
    std::vector<unsigned char> recv_flat(static_cast<std::size_t>(roff));
    MPI_Request req = MPI_REQUEST_NULL;
    mpi_check(MPI_Ialltoallv(nn(send_flat.data()), scounts.data(), sdispls.data(), MPI_BYTE,
                             nn(recv_flat.data()), rcounts.data(), rdispls.data(), MPI_BYTE,
                             comm, &req),
              "MPI_Ialltoallv");
    mpi_check(MPI_Wait(&req, MPI_STATUS_IGNORE), "MPI_Wait");
    recv.assign(static_cast<std::size_t>(G), {});
    for (int m = 0; m < G; ++m) {
      recv[static_cast<std::size_t>(m)].assign(
          recv_flat.begin() + rdispls[static_cast<std::size_t>(m)],
          recv_flat.begin() + rdispls[static_cast<std::size_t>(m)] +
              rcounts[static_cast<std::size_t>(m)]);
    }
    // The straggler defines the exchange: cost the maximum per-member total.
    // Clocked ops already exchanged it through the fused allreduce.
    if (!op.clocked) {
      std::int64_t max_total = my_total;
      mpi_check(MPI_Allreduce(MPI_IN_PLACE, &max_total, 1, MPI_INT64_T, MPI_MAX, comm),
                "MPI_Allreduce(max bytes)");
      op.bytes = max_total;
    }
    finish(g, op, max_posted);
  }

 private:
  /// The whole mapping assumes plexus rank == MPI rank: `a.pos` places data
  /// by plexus position while MPI places it by process rank. Reject the
  /// mismatch instead of scattering chunks into the wrong slots.
  static void check_rank_identity(const GroupShared& g, const CollArgs& a) {
    int world_rank = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &world_rank);
    PLEXUS_CHECK(g.members[static_cast<std::size_t>(a.pos)] == world_rank,
                 "MPI transport: plexus rank must equal the MPI rank");
  }

  /// Clocked ops piggyback one fused max-allreduce of {posted clock, payload
  /// bytes} on the collective. Both results are group-uniform: the clock max
  /// feeds the completion instant, the byte max prices variable exchanges by
  /// their straggler (for fixed-size collectives `my_bytes` is already
  /// uniform, so the second lane is a no-op). Unclocked ops skip the wire
  /// round-trip and keep the post-clock-only accounting.
  static double clock_sync(MPI_Comm comm, detail::CommOp& op, std::int64_t my_bytes) {
    if (!op.clocked) return op.posted_clock;
    double v[2] = {op.posted_clock, static_cast<double>(my_bytes)};
    mpi_check(MPI_Allreduce(MPI_IN_PLACE, v, 2, MPI_DOUBLE, MPI_MAX, comm),
              "MPI_Allreduce(clock sync)");
    op.bytes = static_cast<std::int64_t>(v[1]);
    return v[0];
  }

  /// Completion math. Clocked: the in-process `finish_read_phase` formula —
  /// start at max(group link-busy horizon, latest member post clock), add the
  /// ring cost, advance this process's copy of the horizon (group-uniform by
  /// induction, see file comment). Unclocked: cost-model time from the
  /// poster's (zero) clock, as before.
  static void finish(GroupShared& g, detail::CommOp& op, double max_posted) {
    op.full_seconds =
        collective_time(op.op, op.bytes, g.size(), g.link, g.a2a_distance_penalty);
    op.wire_bytes = wire_bytes(op.op, op.bytes, g.size());
    if (op.clocked) {
      const double start = std::max(g.link_busy_until, max_posted);
      op.done_clock = start + op.full_seconds;
      g.link_busy_until = op.done_clock;
    } else {
      op.done_clock = op.posted_clock + op.full_seconds;
    }
  }

  MPI_Comm comm_for(GroupShared& g, GroupId gid) {
    int initialized = 0;
    MPI_Initialized(&initialized);
    PLEXUS_CHECK(initialized != 0, "MPI backend: call MPI_Init first");
    {
      std::lock_guard<std::mutex> lock(m_);
      const auto it = comms_.find(gid);
      if (it != comms_.end()) return it->second;
    }
    // Create outside the cache lock: MPI_Comm_create_group is collective over
    // the member set, and members may be creating different groups
    // concurrently on different channels.
    int world_rank = -1, world_size = 0;
    MPI_Comm_rank(MPI_COMM_WORLD, &world_rank);
    MPI_Comm_size(MPI_COMM_WORLD, &world_size);
    PLEXUS_CHECK(world_size >= g.size(), "plexus group larger than MPI world");
    PLEXUS_CHECK(g.position_of(world_rank) >= 0, "rank not in group");
    MPI_Group world_group = MPI_GROUP_NULL;
    MPI_Group sub_group = MPI_GROUP_NULL;
    mpi_check(MPI_Comm_group(MPI_COMM_WORLD, &world_group), "MPI_Comm_group");
    mpi_check(MPI_Group_incl(world_group, g.size(), g.members.data(), &sub_group),
              "MPI_Group_incl");
    MPI_Comm sub = MPI_COMM_NULL;
    mpi_check(MPI_Comm_create_group(MPI_COMM_WORLD, sub_group, /*tag=*/gid, &sub),
              "MPI_Comm_create_group");
    MPI_Group_free(&sub_group);
    MPI_Group_free(&world_group);
    std::lock_guard<std::mutex> lock(m_);
    const auto [it, inserted] = comms_.emplace(gid, sub);
    if (!inserted) MPI_Comm_free(&sub);  // lost a (same-thread-impossible) race
    return it->second;
  }

  std::mutex m_;
  std::unordered_map<GroupId, MPI_Comm> comms_;
  // Reused count/displacement/gather scratch. One MpiTransport is shared by
  // every channel thread, so these must be per-thread to stay race-free.
  static thread_local std::vector<int> counts_;
  static thread_local std::vector<int> displs_;
  static thread_local std::vector<unsigned char> gather_buf_;
  static thread_local std::vector<double> scalars_;
};

thread_local std::vector<int> MpiTransport::counts_;
thread_local std::vector<int> MpiTransport::displs_;
thread_local std::vector<unsigned char> MpiTransport::gather_buf_;
thread_local std::vector<double> MpiTransport::scalars_;

}  // namespace

namespace detail {

Transport& mpi_transport() {
  static MpiTransport t;
  return t;
}

}  // namespace detail

MpiRuntime mpi_runtime_init(int* argc, char*** argv) {
  int initialized = 0;
  MPI_Initialized(&initialized);
  int provided = MPI_THREAD_SINGLE;
  if (initialized == 0) {
    mpi_check(MPI_Init_thread(argc, argv, MPI_THREAD_MULTIPLE, &provided),
              "MPI_Init_thread");
  } else {
    mpi_check(MPI_Query_thread(&provided), "MPI_Query_thread");
  }
  // Comm channels make MPI calls from their own threads. Under
  // MPI_THREAD_MULTIPLE any budget works; SERIALIZED tolerates exactly one
  // channel; anything less forces inline mode (posting thread does MPI).
  if (provided < MPI_THREAD_SERIALIZED) {
    set_comm_thread_budget(0);
  } else if (provided < MPI_THREAD_MULTIPLE && comm_thread_budget() > 1) {
    set_comm_thread_budget(1);
  }
  MpiRuntime rt;
  MPI_Comm_rank(MPI_COMM_WORLD, &rt.rank);
  MPI_Comm_size(MPI_COMM_WORLD, &rt.size);
  return rt;
}

void mpi_runtime_barrier() {
  mpi_check(MPI_Barrier(MPI_COMM_WORLD), "MPI_Barrier");
}

void mpi_runtime_finalize() {
  int initialized = 0, finalized = 0;
  MPI_Initialized(&initialized);
  MPI_Finalized(&finalized);
  if (initialized != 0 && finalized == 0) MPI_Finalize();
}

}  // namespace plexus::comm
