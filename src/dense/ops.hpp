#pragma once
/// \file ops.hpp
/// Elementwise / rowwise neural-network operations used by the GCN:
/// ReLU (+ gradient), masked softmax cross-entropy (+ gradient), accuracy.

#include <cstdint>
#include <vector>

#include "dense/matrix.hpp"

namespace plexus::dense {

/// out = max(x, 0), elementwise (out may alias x).
void relu(const Matrix& x, Matrix& out);
Matrix relu(const Matrix& x);

/// dx = dy * 1[pre_activation > 0], elementwise.
void relu_backward(const Matrix& pre_activation, const Matrix& dy, Matrix& dx);

/// Result of a masked softmax cross-entropy evaluation over a *row slice* of
/// the logits; losses/counts are sums so distributed shards can be all-reduced.
struct CrossEntropyResult {
  double loss_sum = 0.0;     ///< sum over masked rows of -log softmax[label]
  std::int64_t count = 0;    ///< number of masked rows in this slice
  std::int64_t correct = 0;  ///< argmax == label among masked rows
};

/// Computes masked softmax cross-entropy over `logits` (n x C). `labels[i]` is
/// the class for row i; rows with mask[i] == 0 contribute nothing and get zero
/// gradient. `grad` (same shape as logits) receives (softmax - onehot) / norm
/// for masked rows. `norm` is the *global* count of training rows so that
/// shard-local gradients sum to the serial gradient.
CrossEntropyResult softmax_cross_entropy(const Matrix& logits,
                                         const std::vector<std::int32_t>& labels,
                                         const std::vector<std::uint8_t>& mask, double norm,
                                         Matrix* grad);

}  // namespace plexus::dense
