// Table 4: details of the graph datasets used for experiments.
// Prints the registry (the paper's exact statistics, used by the full-scale
// performance models) and, for each dataset, the scaled synthetic proxy used
// for functional simulation, with its measured structural properties.
#include "bench_common.hpp"
#include "sparse/partition2d.hpp"
#include "util/table.hpp"

int main() {
  using plexus::util::Table;
  namespace pg = plexus::graph;

  plexus::bench::banner("Table 4: Details of graph datasets used for experiments",
                        "Table 4 (section 6.2)");

  Table t({"Dataset", "# Nodes", "# Edges", "# Non-zeros", "# Features", "# Classes"});
  for (const auto& d : pg::paper_datasets()) {
    t.add_row({d.name, Table::fmt_count(d.num_nodes), Table::fmt_count(d.num_edges),
               Table::fmt_count(d.num_nonzeros), Table::fmt_count(d.feature_dim),
               Table::fmt_count(d.num_classes)});
  }
  t.print();

  plexus::bench::note(
      "functional proxies (generator class + avg degree matched; DESIGN.md scale protocol):");
  Table p({"Proxy of", "Nodes", "Sym. edges", "Avg degree (real)", "Avg degree (proxy)",
           "8x8 max/mean nnz (natural order)"});
  for (const auto& d : pg::paper_datasets()) {
    const auto g = plexus::bench::bench_proxy(d.name, 8000);
    const auto imb = plexus::sparse::grid_imbalance(g.adjacency(), 8, 8);
    p.add_row({d.name, Table::fmt_count(g.num_nodes), Table::fmt_count(g.num_edges()),
               Table::fmt(d.avg_degree(), 2),
               Table::fmt(static_cast<double>(g.num_edges()) / 2.0 /
                              static_cast<double>(g.num_nodes), 2),
               Table::fmt(imb.max_over_mean, 2)});
  }
  p.print();
  return 0;
}
