#pragma once
/// \file logging.hpp
/// Minimal leveled logger. Thread-safe (single global mutex), writes to stderr.
/// Verbosity is controlled globally; benches default to `Info`, tests to `Warn`.

#include <mutex>
#include <sstream>
#include <string>

namespace plexus::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Set the global minimum level that is emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (used by the PLEXUS_LOG macro).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace plexus::util

#define PLEXUS_LOG(level) ::plexus::util::detail::LogLine(::plexus::util::LogLevel::level)
