#pragma once
/// \file parse.hpp
/// Strict whole-string integer parsing for CLI arguments. Unlike std::atoi /
/// std::atoll, these reject trailing garbage ("8x"), empty strings, overflow
/// and non-numeric input instead of silently returning 0 — a mistyped grid
/// dimension should print usage, not train on a 0-sized axis.

#include <charconv>
#include <cstdint>
#include <string_view>

namespace plexus::util {

/// Parse the *entire* string as a base-10 signed 64-bit integer. Returns
/// false (leaving `out` untouched) on empty input, leading/trailing
/// non-digits, or overflow. A single leading '-' is accepted.
inline bool parse_int64(std::string_view s, std::int64_t& out) {
  std::int64_t v = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, v, 10);
  if (ec != std::errc() || ptr != last || s.empty()) return false;
  out = v;
  return true;
}

/// Same, narrowed to int. Returns false when the value does not fit.
inline bool parse_int(std::string_view s, int& out) {
  std::int64_t v = 0;
  if (!parse_int64(s, v)) return false;
  if (v < static_cast<std::int64_t>(INT32_MIN) || v > static_cast<std::int64_t>(INT32_MAX)) {
    return false;
  }
  out = static_cast<int>(v);
  return true;
}

}  // namespace plexus::util
