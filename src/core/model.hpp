#pragma once
/// \file model.hpp
/// The per-rank distributed GCN: a stack of DistGcnLayers plus the trainable
/// input features (Plexus learns node embeddings, so layer 0's inputs carry
/// gradients and optimizer state and are flat-sharded across the R-group —
/// section 3.1). One train_epoch = forward, masked loss, backward, Adam.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/adjacency_store.hpp"
#include "core/checkpoint.hpp"
#include "core/grid.hpp"
#include "core/layer.hpp"
#include "core/loss.hpp"
#include "core/preprocess.hpp"
#include "core/shard_stream.hpp"
#include "dense/optim.hpp"
#include "sim/cluster.hpp"

namespace plexus::core {

/// Model hyper-parameters. `hidden_dims` are the widths between the input
/// features and the classes; 3 GCN layers with hidden 128 is the paper's
/// evaluation model (section 6.2).
struct GcnSpec {
  std::vector<std::int64_t> hidden_dims = {128, 128};
  PlexusOptions options;
  std::uint64_t seed = 42;
  bool train_input_features = true;

  int num_layers() const { return static_cast<int>(hidden_dims.size()) + 1; }
};

/// What one epoch reports (simulated times in seconds; maxima across ranks are
/// taken by the trainer).
struct EpochStats {
  double loss = 0.0;
  double train_accuracy = 0.0;
  double epoch_seconds = 0.0;  ///< simulated clock delta
  double spmm_seconds = 0.0;
  double gemm_seconds = 0.0;
  double elementwise_seconds = 0.0;
  /// Time this rank stalled at collective wait()s: ring transfer tails plus
  /// any straggler wait surfacing there (the standard "exposed communication"
  /// of a comm/comp breakdown; see comm/communicator.hpp).
  double comm_seconds = 0.0;
  /// Transfer time hidden behind compute by the pipelined aggregation /
  /// asynchronous gathers (see comm/communicator.hpp).
  double hidden_comm_seconds = 0.0;
  /// Bytes the simulated links actually carried for this rank's collectives
  /// (comm::wire_bytes per op, summed) — the counter the sparse aggregation
  /// strategy shrinks. The trainer max-reduces it like the timings.
  double comm_wire_bytes = 0.0;
  /// Streaming epochs only: *wall-clock* seconds this rank stalled waiting on
  /// block-load futures (exposed IO — everything the prefetch thread hid is
  /// excluded). Zero in resident mode. Max-reduced like the timings.
  double io_exposed_seconds = 0.0;
  /// Streaming epochs only: bytes of shard block files read from disk by this
  /// rank's prefetch thread this epoch. Zero in resident mode.
  double io_bytes_streamed = 0.0;
  double compute_seconds() const { return spmm_seconds + gemm_seconds + elementwise_seconds; }
  /// Everything the rank spent not computing (= epoch - local compute). The
  /// clock only advances through compute charges and exposed collective
  /// waits, so per epoch this equals comm_seconds up to collectives retired
  /// across the epoch boundary.
  double wait_seconds() const { return epoch_seconds - compute_seconds(); }
};

class DistGcn {
 public:
  /// Build the per-rank model from any DatasetView — the shared in-memory
  /// dataset (threaded clusters) or a rank-private ShardedDatasetView (one
  /// process per rank; only this rank's block files are ever opened). The
  /// view must outlive the model.
  DistGcn(sim::RankContext& ctx, const DatasetView& view, const Grid3D& grid, GcnSpec spec);

  /// Convenience for in-process callers holding a raw PlexusDataset (wraps it
  /// in an owned InMemoryDatasetView).
  DistGcn(sim::RankContext& ctx, const PlexusDataset& ds, const Grid3D& grid, GcnSpec spec);

  EpochStats train_epoch(sim::RankContext& ctx, int epoch);

  /// Forward-only accuracy on a mask (e.g. validation/test split).
  double evaluate(sim::RankContext& ctx, const std::vector<std::uint8_t>& mask);

  /// Forward pass returning this rank's logits block (tests / inference).
  dense::Matrix forward_logits(sim::RankContext& ctx);

  int num_layers() const { return spec_.num_layers(); }
  const std::vector<std::int64_t>& padded_dims() const { return padded_dims_; }

  /// Assemble the global model state for checkpointing: one world-group
  /// all-gather per sharded buffer (weights, Adam moments, features), then a
  /// deterministic local re-scatter of every rank's slice into the global
  /// matrices. SPMD — every rank must call it and gets an identical result;
  /// the caller picks one rank to write. The trainer-owned ModelState fields
  /// (scheme, preprocess_seed, pad_multiple, epochs_completed) are left at
  /// their defaults for the caller to fill.
  CheckpointData gather_state(sim::RankContext& ctx);

  /// Inverse of gather_state, purely local: re-extract this rank's weight and
  /// optimizer slices from the global state. The trained features themselves
  /// are NOT restored here — they arrive through the DatasetView the model was
  /// constructed over (a checkpoint directory's feature blocks); only their
  /// Adam moments ride in `s`.
  void restore_state(const io::ModelState& s);

 private:
  /// Delegation target of the PlexusDataset ctor: builds against *view, then
  /// takes ownership of it.
  DistGcn(sim::RankContext& ctx, std::unique_ptr<DatasetView> view, const Grid3D& grid,
          GcnSpec spec);

  dense::Matrix gather_input_features(sim::RankContext& ctx);
  dense::Matrix forward_all(sim::RankContext& ctx, std::uint64_t epoch_seed,
                            KernelTimers& timers);

  std::unique_ptr<DatasetView> owned_view_;  ///< set by the PlexusDataset ctor
  const DatasetView* view_;
  const Grid3D* grid_;
  int rank_ = 0;
  GcnSpec spec_;
  std::vector<std::int64_t> padded_dims_;  ///< per-layer in/out dims, size L+1
  std::unique_ptr<AdjacencyStore> adj_store_;
  /// Streaming views only: the per-rank IO worker that loads adjacency block
  /// windows for the layers' software pipelines. Null in resident mode.
  std::unique_ptr<ShardStream> stream_;
  std::vector<std::unique_ptr<DistGcnLayer>> layers_;

  // Trainable input features: a 1/R0 slice of the (N/P0 x D0/Q0) block,
  // resharded row-major against the blocked-aggregation row blocks: for each
  // aggregation block this rank owns the coord_r0-th sub-range of its rows.
  // This alignment lets the layer-0 feature-gradient reduce-scatter run
  // per block inside the backward software pipeline, and the input gather run
  // per block, instead of as one unblocked collective (with agg_row_blocks ==
  // 1 the layout degenerates to the old contiguous flat slice).
  std::vector<float> f_slice_;
  std::vector<float> df_slice_;
  dense::Adam f_adam_;
  std::int64_t f_block_rows_ = 0;
  std::int64_t f_block_cols_ = 0;
  std::vector<std::int64_t> f_bounds_;  ///< R0-aligned aggregation row blocks
  int f_r_ext_ = 1;                     ///< R0 extent (reshard parts)
  int f_r_coord_ = 0;                   ///< this rank's R0 coordinate
};

}  // namespace plexus::core
