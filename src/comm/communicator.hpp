#pragma once
/// \file communicator.hpp
/// Per-rank communicator: NCCL/MPI-style collectives with pluggable
/// byte-transport backends.
///
/// Every simulated GPU thread owns one `Communicator`. Collectives move real
/// data between ranks (so the distributed algebra is exact) and synchronise
/// the ranks' simulated clocks; the cost of a collective comes from the ring
/// cost model (comm/cost.hpp) with the group's effective link parameters.
///
/// The communicator is the **cost / accounting layer**. *How the payload
/// bytes travel* is delegated to a `Transport` (comm/transport.hpp): the Sim
/// backend reads peers' published buffers directly, the Local backend runs
/// real ring/staged schedules between the rank threads, and the optional MPI
/// backend maps each op onto a nonblocking MPI request on a per-group
/// sub-communicator. Everything in this file — post-time clocks, link-busy
/// horizons, exposed/hidden attribution, stats, timeline — is
/// backend-invariant for the in-process transports: clocks, stats and losses
/// are bitwise-identical under Sim and Local.
///
/// ## Nonblocking execution model
///
/// Every collective is one op executed by exactly one thread per rank — one
/// of the rank's comm channels (comm/handle.hpp), routed by GroupId, or the
/// posting thread in inline mode. The `i*` entry points return a
/// `CommHandle`; the blocking entry points are `i*` + immediate `wait()`.
/// Per rank, ops on the *same group* run strictly in post order, so SPMD
/// programs must post collectives on a group in the same order on every
/// member (the MPI nonblocking-collective rule). Ops on groups routed to
/// different channels execute concurrently in real time — the sim-time math
/// below never depended on execution order, so clocks, stats and data are
/// bitwise-identical for any channel count.
///
/// Synchronisation protocol per op (executed on the op's channel thread):
///   1. publish: write own buffer pointer + *post-time* clock into the
///      group's slots; snapshot the group's link-busy horizon
///   2. barrier
///   3. read phase: read *other members'* published buffers; private writes
///      ok; derive the op's sim completion instant (below)
///   4. barrier
///   5. write phase: writes to own published buffer (if in-place op)
/// The trailing writes are ordered before any subsequent op's reads by that
/// op's first barrier (std::barrier has acquire/release semantics), so
/// back-to-back collectives on a group are race-free. All mutable shared
/// state of the protocol lives in the op's own GroupShared, so collectives on
/// different groups may execute concurrently without synchronisation.
///
/// ## Exposed vs hidden time
///
/// An op posted when the rank's clock reads `t_post` completes at
///
///   done = max(link_busy_horizon, max over members of their post clocks)
///          + T_collective
///
/// where the link-busy horizon serialises overlapping collectives on the same
/// group's ring (two in-flight all-reduces share the links; the second starts
/// when the first finishes). Disjoint groups have disjoint rings, so their
/// in-flight ops overlap freely in simulated time. Nothing is charged until
/// `wait()`: if the caller waits at clock `t_wait`, only the *exposed* tail
/// `max(0, done - t_wait)` advances the clock and lands in
/// `CommStats::Entry::sim_seconds`; the part of the transfer interval
/// `[done - T_collective, done]` during which this rank was actually
/// computing is recorded as `hidden_seconds` (queueing behind an earlier
/// collective and stalls spent waiting on *other* handles are neither — they
/// are ordinary schedule slack). Hidden time is derived from the rank's
/// recorded compute busy-intervals, so the attribution is exact for *any*
/// wait order — out-of-order waits charge exactly what FIFO waits charge in
/// total (this stall-interval tracking replaces the old compute-since-post
/// cap, which could credit compute performed after an op's sim completion).
/// Everything is derived from post-time clock values and the deterministic
/// cost model, so sim results are independent of real scheduling.

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "comm/clock.hpp"
#include "comm/cost.hpp"
#include "comm/handle.hpp"
#include "comm/timeline.hpp"
#include "comm/transport.hpp"
#include "comm/world.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace plexus::comm {

/// Per-rank accounting of communication volume and simulated time.
struct CommStats {
  struct Entry {
    std::int64_t calls = 0;
    std::int64_t bytes = 0;       ///< logical buffer volume per call (cost-model M)
    std::int64_t wire_bytes = 0;  ///< bytes the links actually carried (cost.hpp)
    double sim_seconds = 0.0;     ///< exposed time charged onto the rank clock
    double hidden_seconds = 0.0;  ///< transfer time overlapped by compute
  };
  std::array<Entry, 7> by_op{};

  Entry& entry(Collective op) { return by_op[static_cast<std::size_t>(op)]; }
  const Entry& entry(Collective op) const { return by_op[static_cast<std::size_t>(op)]; }

  double total_seconds() const {
    double t = 0.0;
    for (const auto& e : by_op) t += e.sim_seconds;
    return t;
  }
  double total_hidden_seconds() const {
    double t = 0.0;
    for (const auto& e : by_op) t += e.hidden_seconds;
    return t;
  }
  std::int64_t total_bytes() const {
    std::int64_t b = 0;
    for (const auto& e : by_op) b += e.bytes;
    return b;
  }
  std::int64_t total_wire_bytes() const {
    std::int64_t b = 0;
    for (const auto& e : by_op) b += e.wire_bytes;
    return b;
  }
  void reset() { by_op = {}; }
};

namespace detail {

/// Publish this member's buffer + post-time clock; returns the link-busy
/// horizon snapshot. Safe before the first barrier: the previous op's
/// horizon write happened in its read phase, sealed by its second barrier.
inline double publish(GroupShared& g, int pos, const void* ptr, double posted_clock) {
  PLEXUS_CHECK(g.clock_slots.size() >= 2 * static_cast<std::size_t>(g.size()),
               "group clock_slots under-sized");
  const double floor = g.link_busy_until;
  g.slots[static_cast<std::size_t>(pos)] = ptr;
  g.clock_slots[static_cast<std::size_t>(pos)] = posted_clock;
  return floor;
}

/// Scalar-exchange slot for member `pos`: the second half of clock_slots
/// (World::create_group sizes it to 2 * members).
inline double& aux_value(GroupShared& g, int pos) {
  return g.clock_slots[static_cast<std::size_t>(g.size() + pos)];
}

/// Derive the op's completion instant from the members' post clocks, the
/// link-busy snapshot and the cost model. Must run in the read phase (between
/// the barriers); every member computes the same value, member 0 records it
/// as the group's new link-busy horizon.
inline void finish_read_phase(GroupShared& g, int pos, double busy_floor, CommOp& op) {
  double start = busy_floor;
  for (int m = 0; m < g.size(); ++m) {
    start = std::max(start, g.clock_slots[static_cast<std::size_t>(m)]);
  }
  op.full_seconds =
      collective_time(op.op, op.bytes, g.size(), g.link, g.a2a_distance_penalty);
  op.wire_bytes = wire_bytes(op.op, op.bytes, g.size());
  op.done_clock = start + op.full_seconds;
  if (pos == 0) g.link_busy_until = op.done_clock;
}

/// Elementwise `acc[i] += src[i]` over `n` elements of T — the one reduction
/// kernel every transport applies, in canonical member order (0, 1, …, G-1),
/// so reductions are bitwise-identical across backends.
template <typename T>
void accumulate_sum(void* acc, const void* src, std::size_t n) {
  T* a = static_cast<T*>(acc);
  const T* s = static_cast<const T*>(src);
  for (std::size_t i = 0; i < n; ++i) a[i] += s[i];
}

/// CollArgs-shaped wrappers over the bf16 wire helpers (util/simd.hpp):
/// bf16 wire contributions folded into a fp32 accumulator, so precision is
/// lost exactly once per contribution (at the sender's pack), never in the
/// summation itself.
inline void assign_bf16_f32(void* acc, const void* src, std::size_t n) {
  simd::bf16_assign_f32(static_cast<float*>(acc), static_cast<const std::uint16_t*>(src),
                        static_cast<std::int64_t>(n));
}

inline void accumulate_bf16_f32(void* acc, const void* src, std::size_t n) {
  simd::bf16_accumulate_f32(static_cast<float*>(acc), static_cast<const std::uint16_t*>(src),
                            static_cast<std::int64_t>(n));
}

}  // namespace detail

class Communicator {
 public:
  /// `clock` may be null (functional-only mode, no time simulation).
  /// `transport` selects the byte-movement backend; null resolves
  /// `transport_for(default_backend())` (the PLEXUS_BACKEND environment
  /// variable, else Sim). A distributed (non-protocol) transport may carry a
  /// clock only when it opts in via `Transport::supports_clock()` (the MPI
  /// backend piggybacks the post-clock exchange on each collective); without
  /// a clock, stats charge the cost-model time per op.
  Communicator(World& world, int rank, SimClock* clock = nullptr,
               Transport* transport = nullptr)
      : world_(&world), rank_(rank), clock_(clock),
        transport_(transport != nullptr ? transport : &transport_for(default_backend())),
        wire_(default_wire_precision()), channel_budget_(comm_thread_budget()) {
    PLEXUS_CHECK(rank >= 0 && rank < world.size(), "rank out of range");
    PLEXUS_CHECK(clock == nullptr || transport_->supports_clock(),
                 "this transport cannot carry a SimClock");
  }

  /// Immovable: outstanding CommHandles point back at this object, so a move
  /// would silently strand their accounting. Attach a clock with set_clock()
  /// instead of rebuilding.
  Communicator(Communicator&&) = delete;
  Communicator& operator=(Communicator&&) = delete;

  /// Attach the simulated clock. Must be called before the first op
  /// (accounting starts from a clean slate).
  void set_clock(SimClock* clock) {
    PLEXUS_CHECK(!posted_any_, "set_clock: must precede the first collective");
    PLEXUS_CHECK(clock == nullptr || transport_->supports_clock(),
                 "this transport cannot carry a SimClock");
    clock_ = clock;
  }

  /// Select the wire format for fp32 collective payloads (transport.hpp).
  /// Like set_clock, must precede the first op: mixing wire formats inside
  /// one SPMD program would deadlock the count/byte exchanges.
  void set_wire_precision(WirePrecision w) {
    PLEXUS_CHECK(!posted_any_, "set_wire_precision: must precede the first collective");
    wire_ = w;
  }
  WirePrecision wire_precision() const { return wire_; }

  /// Bytes one fp32 payload element occupies on this rank's wire — the
  /// planning input for pipeline-depth / aggregation choices (they must
  /// price what the links actually carry, not the in-memory width).
  std::size_t wire_float_bytes() const { return wire_elem_size(wire_); }

  Transport& transport() const { return *transport_; }
  Backend backend() const { return transport_->backend(); }

  int rank() const { return rank_; }
  int world_size() const { return world_->size(); }
  World& world() { return *world_; }
  SimClock* clock() { return clock_; }
  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }
  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }

  /// Advance this rank's clock by modelled local-kernel time. The busy
  /// interval is recorded so collective waits can attribute hidden time
  /// exactly (see the header comment).
  void charge_compute(double seconds) {
    if (seconds <= 0.0 || clock_ == nullptr) return;
    const double t0 = clock_->time();
    clock_->advance(seconds);
    if (!compute_spans_.empty() && compute_spans_.back().second == t0) {
      compute_spans_.back().second = t0 + seconds;  // contiguous: extend
    } else {
      compute_spans_.emplace_back(t0, t0 + seconds);
      prune_compute_spans();
    }
    timeline_.record(TimelineSpan::Kind::Compute, Collective::Barrier, t0, t0 + seconds);
  }

  // ---------------------------------------------------------------------
  // Nonblocking collectives. Buffers must stay valid (and the written parts
  // untouched by the caller) until the handle is waited or dropped.
  // ---------------------------------------------------------------------

  /// Elementwise sum across the group, in place over `inout`.
  template <typename T>
  CommHandle iall_reduce_sum(GroupId gid, std::span<T> inout) {
    CollArgs a;
    a.kind = Collective::AllReduce;
    a.gid = gid;
    a.recv = inout.data();
    a.elem = sizeof(T);
    a.count = inout.size();
    a.dtype = dtype_of<T>();
    a.accumulate = &detail::accumulate_sum<T>;
    if constexpr (std::is_same_v<T, float>) {
      if (wire_ == WirePrecision::Bf16) {
        // Publish a bf16-packed copy of the contribution; every member folds
        // the G wire chunks in canonical order into its own fp32 buffer, so
        // the result is still group-uniform.
        a.elem = sizeof(std::uint16_t);
        a.acc_elem = sizeof(float);
        a.assign = &detail::assign_bf16_f32;
        a.accumulate = &detail::accumulate_bf16_f32;
        auto wire = std::make_shared<std::vector<std::uint16_t>>();
        const float* src = inout.data();
        const std::size_t n = inout.size();
        return post_wire_op(
            a, static_cast<std::int64_t>(n * sizeof(std::uint16_t)),
            [wire, src, n](CollArgs& aw) {
              wire->resize(n);
              simd::bf16_pack(src, wire->data(), static_cast<std::int64_t>(n));
              aw.send = wire->data();
            },
            [] {});
      }
    }
    return post_collective(a, static_cast<std::int64_t>(inout.size() * sizeof(T)));
  }

  /// out[i * chunk ..] = member i's `in`. `in.size()` must be equal across the
  /// group; `out.size() == in.size() * group size`.
  template <typename T>
  CommHandle iall_gather(GroupId gid, std::span<const T> in, std::span<T> out) {
    auto& g = world_->group(gid);
    PLEXUS_CHECK(out.size() == in.size() * static_cast<std::size_t>(g.size()),
                 "all_gather: bad output size");
    CollArgs a;
    a.kind = Collective::AllGather;
    a.gid = gid;
    a.send = in.data();
    a.recv = out.data();
    a.elem = sizeof(T);
    a.count = in.size();
    a.dtype = dtype_of<T>();
    if constexpr (std::is_same_v<T, float>) {
      if (wire_ == WirePrecision::Bf16) {
        a.elem = sizeof(std::uint16_t);
        auto ws = std::make_shared<std::vector<std::uint16_t>>();
        auto wr = std::make_shared<std::vector<std::uint16_t>>();
        const float* src = in.data();
        const std::size_t sn = in.size();
        return post_wire_op(
            a, static_cast<std::int64_t>(out.size() * sizeof(std::uint16_t)),
            [ws, wr, src, sn, rn = out.size()](CollArgs& aw) {
              ws->resize(sn);
              simd::bf16_pack(src, ws->data(), static_cast<std::int64_t>(sn));
              wr->resize(rn);
              aw.send = ws->data();
              aw.recv = wr->data();
            },
            [wr, out] {
              simd::bf16_unpack(wr->data(), out.data(), static_cast<std::int64_t>(out.size()));
            });
      }
    }
    return post_collective(a, static_cast<std::int64_t>(out.size() * sizeof(T)));
  }

  /// Sum across the group, scattering chunk `pos` to member `pos`.
  /// `in.size() == out.size() * group size`; `out` must not alias `in`.
  template <typename T>
  CommHandle ireduce_scatter_sum(GroupId gid, std::span<const T> in, std::span<T> out) {
    auto& g = world_->group(gid);
    PLEXUS_CHECK(in.size() == out.size() * static_cast<std::size_t>(g.size()),
                 "reduce_scatter: bad sizes");
    CollArgs a;
    a.kind = Collective::ReduceScatter;
    a.gid = gid;
    a.send = in.data();
    a.recv = out.data();
    a.elem = sizeof(T);
    a.count = out.size();
    a.dtype = dtype_of<T>();
    a.accumulate = &detail::accumulate_sum<T>;
    if constexpr (std::is_same_v<T, float>) {
      if (wire_ == WirePrecision::Bf16) {
        a.elem = sizeof(std::uint16_t);
        a.acc_elem = sizeof(float);
        a.assign = &detail::assign_bf16_f32;
        a.accumulate = &detail::accumulate_bf16_f32;
        auto wire = std::make_shared<std::vector<std::uint16_t>>();
        const float* src = in.data();
        const std::size_t sn = in.size();
        return post_wire_op(
            a, static_cast<std::int64_t>(in.size() * sizeof(std::uint16_t)),
            [wire, src, sn](CollArgs& aw) {
              wire->resize(sn);
              simd::bf16_pack(src, wire->data(), static_cast<std::int64_t>(sn));
              aw.send = wire->data();
            },
            [] {});
      }
    }
    return post_collective(a, static_cast<std::int64_t>(in.size() * sizeof(T)));
  }

  /// Flat variable all-to-all: `send` holds the payload packed by destination
  /// member (`send_counts[m]` elements to member m, in member order); `recv`
  /// receives chunks packed by source member (`recv_counts[m]` elements from
  /// member m). The counts arrays — `group size` entries each, valid until the
  /// handle is waited or dropped — must be globally consistent:
  /// `recv_counts[m]` here equals member m's `send_counts[my pos]` (the
  /// caller owns the count exchange; the sparse aggregation plan derives both
  /// sides from the shared nnz structure). Cost is charged on the straggler's
  /// total send volume, like `all_to_all_v`.
  template <typename T>
  CommHandle iall_to_all_v(GroupId gid, std::span<const T> send,
                           const std::int64_t* send_counts, std::span<T> recv,
                           const std::int64_t* recv_counts) {
    auto& g = world_->group(gid);
    CollArgs a;
    a.kind = Collective::AllToAll;
    a.gid = gid;
    a.pos = g.position_of(rank_);
    a.send = send.data();
    a.recv = recv.data();
    a.elem = sizeof(T);
    a.dtype = dtype_of<T>();
    a.send_counts = send_counts;
    a.recv_counts = recv_counts;
    std::int64_t my_elems = 0;
    std::int64_t recv_elems = 0;
    for (int m = 0; m < g.size(); ++m) {
      my_elems += send_counts[m];
      recv_elems += recv_counts[m];
    }
    PLEXUS_CHECK(send.size() == static_cast<std::size_t>(my_elems),
                 "iall_to_all_v: send buffer does not match send_counts");
    PLEXUS_CHECK(recv.size() == static_cast<std::size_t>(recv_elems),
                 "iall_to_all_v: recv buffer does not match recv_counts");
    if constexpr (std::is_same_v<T, float>) {
      if (wire_ == WirePrecision::Bf16) {
        // Same straggler protocol as below, but the packed chunks travel as
        // bf16: the counts stay element counts, only `elem` (and therefore
        // every displacement and the costed byte volume) narrows.
        a.elem = sizeof(std::uint16_t);
        const std::int64_t my_wire_bytes =
            my_elems * static_cast<std::int64_t>(sizeof(std::uint16_t));
        auto ws = std::make_shared<std::vector<std::uint16_t>>();
        auto wr = std::make_shared<std::vector<std::uint16_t>>();
        const float* sptr = send.data();
        const std::size_t sn = send.size();
        const std::span<float> out = recv;
        std::function<void(CollArgs&)> setup = [ws, wr, sptr, sn,
                                                rn = recv.size()](CollArgs& aw) {
          ws->resize(sn);
          simd::bf16_pack(sptr, ws->data(), static_cast<std::int64_t>(sn));
          wr->resize(rn);
          aw.send = ws->data();
          aw.recv = wr->data();
        };
        std::function<void()> teardown = [wr, out] {
          simd::bf16_unpack(wr->data(), out.data(), static_cast<std::int64_t>(out.size()));
        };
        Transport* t = transport_;
        if (!t->uses_group_protocol()) {
          return post_op(Collective::AllToAll, gid, my_wire_bytes,
                         [&g, a, t, setup = std::move(setup),
                          teardown = std::move(teardown)](detail::CommOp& op) mutable {
                           setup(a);
                           t->execute(g, a, op);
                           teardown();
                         });
        }
        return post_op(Collective::AllToAll, gid, /*bytes=*/0,
                       [&g, a, t, my_wire_bytes, setup = std::move(setup),
                        teardown = std::move(teardown)](detail::CommOp& op) mutable {
                         setup(a);
                         detail::aux_value(g, a.pos) = static_cast<double>(my_wire_bytes);
                         const double floor =
                             detail::publish(g, a.pos, a.send, op.posted_clock);
                         g.barrier->arrive_and_wait();
                         double max_bytes = 0.0;
                         for (int m = 0; m < g.size(); ++m) {
                           max_bytes = std::max(max_bytes, detail::aux_value(g, m));
                         }
                         op.bytes = static_cast<std::int64_t>(max_bytes);
                         t->move(g, a);
                         detail::finish_read_phase(g, a.pos, floor, op);
                         g.barrier->arrive_and_wait();
                         t->finalize(g, a);
                         teardown();
                       });
      }
    }
    const std::int64_t my_bytes = my_elems * static_cast<std::int64_t>(sizeof(T));
    Transport* t = transport_;
    if (!t->uses_group_protocol()) {
      return post_op(Collective::AllToAll, gid, my_bytes,
                     [&g, a, t](detail::CommOp& op) { t->execute(g, a, op); });
    }
    // Same protocol shape as all_to_all_v: exchange the straggler's send
    // volume through the aux slots so op.bytes (and thus the cost model) is
    // group-uniform, then let the transport move the packed chunks.
    return post_op(Collective::AllToAll, gid, /*bytes=*/0,
                   [&g, a, t, my_bytes](detail::CommOp& op) {
                     detail::aux_value(g, a.pos) = static_cast<double>(my_bytes);
                     const double floor = detail::publish(g, a.pos, a.send, op.posted_clock);
                     g.barrier->arrive_and_wait();
                     double max_bytes = 0.0;
                     for (int m = 0; m < g.size(); ++m) {
                       max_bytes = std::max(max_bytes, detail::aux_value(g, m));
                     }
                     op.bytes = static_cast<std::int64_t>(max_bytes);
                     t->move(g, a);
                     detail::finish_read_phase(g, a.pos, floor, op);
                     g.barrier->arrive_and_wait();
                     t->finalize(g, a);
                   });
  }

  /// Run `fn` on the world group's channel, ordered with this rank's
  /// world-group collectives. No sim time or stats are charged; exceptions
  /// propagate at wait(). Useful for asynchronous host-side staging and for
  /// testing channel behaviour.
  CommHandle icall(std::function<void()> fn) {
    auto op = std::make_shared<detail::CommOp>();
    op->accounted = false;
    op->channel = world_->world_group();
    op->posted_clock = clock_ != nullptr ? clock_->time() : 0.0;
    op->done_clock = op->posted_clock;
    op->execute = [body = std::move(fn)](detail::CommOp&) { body(); };
    dispatch(op);
    return CommHandle(std::move(op), this);
  }

  // ---------------------------------------------------------------------
  // Blocking collectives: post + immediate wait through the same path.
  // ---------------------------------------------------------------------

  void barrier(GroupId gid) {
    CollArgs a;
    a.kind = Collective::Barrier;
    a.gid = gid;
    post_collective(a, 0).wait();
  }

  template <typename T>
  void all_gather(GroupId gid, std::span<const T> in, std::span<T> out) {
    iall_gather<T>(gid, in, out).wait();
  }

  template <typename T>
  void all_reduce_sum(GroupId gid, std::span<T> inout) {
    iall_reduce_sum<T>(gid, inout).wait();
  }

  template <typename T>
  void reduce_scatter_sum(GroupId gid, std::span<const T> in, std::span<T> out) {
    ireduce_scatter_sum<T>(gid, in, out).wait();
  }

  /// Copy root's buffer to every member (root given as group position).
  template <typename T>
  void broadcast(GroupId gid, std::span<T> buf, int root_pos) {
    CollArgs a;
    a.kind = Collective::Broadcast;
    a.gid = gid;
    a.recv = buf.data();
    a.elem = sizeof(T);
    a.count = buf.size();
    a.root = root_pos;
    a.dtype = dtype_of<T>();
    if constexpr (std::is_same_v<T, float>) {
      if (wire_ == WirePrecision::Bf16) {
        // The root packs into the wire buffer; *every* member — the root
        // included — widens the wire buffer back, so replicated state stays
        // bitwise-identical across the group (a root that kept its exact
        // fp32 copy would silently diverge from its peers).
        a.elem = sizeof(std::uint16_t);
        auto wire = std::make_shared<std::vector<std::uint16_t>>();
        const std::span<float> out = buf;
        post_wire_op(
            a, static_cast<std::int64_t>(buf.size() * sizeof(std::uint16_t)),
            [wire, out](CollArgs& aw) {
              wire->resize(out.size());
              if (aw.pos == aw.root) {
                simd::bf16_pack(out.data(), wire->data(),
                                static_cast<std::int64_t>(out.size()));
              }
              aw.recv = wire->data();
            },
            [wire, out] {
              simd::bf16_unpack(wire->data(), out.data(),
                                static_cast<std::int64_t>(out.size()));
            })
            .wait();
        return;
      }
    }
    post_collective(a, static_cast<std::int64_t>(buf.size() * sizeof(T))).wait();
  }

  /// Equal-chunk all-to-all: member m receives chunk `pos` of member m's `in`
  /// ... i.e. out[m*chunk ..] = in_m[pos*chunk ..].
  template <typename T>
  void all_to_all(GroupId gid, std::span<const T> in, std::span<T> out) {
    auto& g = world_->group(gid);
    PLEXUS_CHECK(in.size() == out.size(), "all_to_all: sizes must match");
    PLEXUS_CHECK(in.size() % static_cast<std::size_t>(g.size()) == 0, "all_to_all: chunking");
    CollArgs a;
    a.kind = Collective::AllToAll;
    a.gid = gid;
    a.send = in.data();
    a.recv = out.data();
    a.elem = sizeof(T);
    a.count = in.size() / static_cast<std::size_t>(g.size());
    a.dtype = dtype_of<T>();
    if constexpr (std::is_same_v<T, float>) {
      if (wire_ == WirePrecision::Bf16) {
        a.elem = sizeof(std::uint16_t);
        auto ws = std::make_shared<std::vector<std::uint16_t>>();
        auto wr = std::make_shared<std::vector<std::uint16_t>>();
        const float* src = in.data();
        const std::size_t sn = in.size();
        post_wire_op(
            a, static_cast<std::int64_t>(in.size() * sizeof(std::uint16_t)),
            [ws, wr, src, sn, rn = out.size()](CollArgs& aw) {
              ws->resize(sn);
              simd::bf16_pack(src, ws->data(), static_cast<std::int64_t>(sn));
              wr->resize(rn);
              aw.send = ws->data();
              aw.recv = wr->data();
            },
            [wr, out] {
              simd::bf16_unpack(wr->data(), out.data(), static_cast<std::int64_t>(out.size()));
            })
            .wait();
        return;
      }
    }
    post_collective(a, static_cast<std::int64_t>(in.size() * sizeof(T))).wait();
  }

  /// Variable all-to-all: `send[m]` goes to member m; `recv[m]` receives from
  /// member m (resized by the call). Cost is charged on the maximum per-rank
  /// send volume (the straggler determines the exchange time).
  template <typename T>
  void all_to_all_v(GroupId gid, const std::vector<std::vector<T>>& send,
                    std::vector<std::vector<T>>& recv) {
    auto& g = world_->group(gid);
    const int pos = g.position_of(rank_);
    PLEXUS_CHECK(send.size() == static_cast<std::size_t>(g.size()), "all_to_all_v: send size");
    if (!transport_->uses_group_protocol()) {
      // Distributed backends exchange flat byte buffers (the transport runs
      // the count exchange + MPI_Ialltoallv); repack into the typed vectors.
      std::vector<std::span<const unsigned char>> send_bytes(send.size());
      for (std::size_t m = 0; m < send.size(); ++m) {
        send_bytes[m] = {reinterpret_cast<const unsigned char*>(send[m].data()),
                         send[m].size() * sizeof(T)};
      }
      std::vector<std::vector<unsigned char>> recv_bytes;
      CollArgs a;
      a.kind = Collective::AllToAll;
      a.gid = gid;
      a.pos = pos;
      a.elem = sizeof(T);
      Transport* t = transport_;
      post_op(Collective::AllToAll, gid, /*bytes=*/0,
              [&g, a, t, &send_bytes, &recv_bytes](detail::CommOp& op) {
                t->alltoallv(g, a, send_bytes, recv_bytes, op);
              })
          .wait();  // blocking: the referenced buffers outlive the op
      recv.assign(static_cast<std::size_t>(g.size()), {});
      for (std::size_t m = 0; m < recv_bytes.size(); ++m) {
        PLEXUS_CHECK(recv_bytes[m].size() % sizeof(T) == 0, "all_to_all_v: ragged payload");
        recv[m].resize(recv_bytes[m].size() / sizeof(T));
        if (!recv_bytes[m].empty()) {
          std::memcpy(recv[m].data(), recv_bytes[m].data(), recv_bytes[m].size());
        }
      }
      return;
    }
    recv.assign(static_cast<std::size_t>(g.size()), {});
    std::int64_t my_bytes = 0;
    for (const auto& s : send) my_bytes += static_cast<std::int64_t>(s.size() * sizeof(T));
    const auto* send_ptr = &send;
    auto* recv_ptr = &recv;
    post_op(Collective::AllToAll, gid, /*bytes=*/0,
            [&g, pos, send_ptr, recv_ptr, my_bytes](detail::CommOp& op) {
              detail::aux_value(g, pos) = static_cast<double>(my_bytes);
              const double floor = detail::publish(g, pos, send_ptr, op.posted_clock);
              g.barrier->arrive_and_wait();
              double max_bytes = 0.0;
              for (int m = 0; m < g.size(); ++m) {
                const auto* their_send = static_cast<const std::vector<std::vector<T>>*>(
                    g.slots[static_cast<std::size_t>(m)]);
                (*recv_ptr)[static_cast<std::size_t>(m)] =
                    (*their_send)[static_cast<std::size_t>(pos)];
                max_bytes = std::max(max_bytes, detail::aux_value(g, m));
              }
              op.bytes = static_cast<std::int64_t>(max_bytes);
              detail::finish_read_phase(g, pos, floor, op);
              g.barrier->arrive_and_wait();
            })
        .wait();
  }

  /// Max of a scalar across the group (costed as a latency-only reduction).
  double all_reduce_max_scalar(GroupId gid, double value) {
    return scalar_reduce(gid, value, /*is_max=*/true);
  }

  /// Sum of a scalar across the group.
  double all_reduce_sum_scalar(GroupId gid, double value) {
    return scalar_reduce(gid, value, /*is_max=*/false);
  }

 private:
  friend class CommHandle;

  double scalar_reduce(GroupId gid, double value, bool is_max) {
    auto& g = world_->group(gid);
    const int pos = g.position_of(rank_);
    if (!transport_->uses_group_protocol()) {
      CollArgs a;
      a.kind = Collective::AllReduce;
      a.gid = gid;
      a.pos = pos;
      a.scalar_op = true;
      a.scalar_is_max = is_max;
      a.scalar_value = value;
      Transport* t = transport_;
      return post_op(Collective::AllReduce, gid, 8,
                     [&g, a, t](detail::CommOp& op) { t->execute(g, a, op); })
          .wait();
    }
    return post_op(Collective::AllReduce, gid, 8, [&g, pos, value, is_max](detail::CommOp& op) {
             detail::aux_value(g, pos) = value;
             const double floor = detail::publish(g, pos, nullptr, op.posted_clock);
             g.barrier->arrive_and_wait();
             double acc = is_max ? value : 0.0;
             for (int m = 0; m < g.size(); ++m) {
               const double v = detail::aux_value(g, m);
               acc = is_max ? std::max(acc, v) : acc + v;
             }
             op.scalar = acc;
             detail::finish_read_phase(g, pos, floor, op);
             g.barrier->arrive_and_wait();
           })
        .wait();
  }

  /// Route one data collective through the selected transport. For
  /// in-process (protocol) transports the execute closure runs the shared
  /// barrier protocol — publish clocks+buffer, transport movement, completion
  /// derivation, trailing writes — so the accounting is transport-invariant.
  /// Non-protocol transports own the whole op (they fill the completion
  /// fields from the cost model themselves).
  CommHandle post_collective(CollArgs a, std::int64_t bytes) {
    auto& g = world_->group(a.gid);
    a.pos = g.position_of(rank_);
    Transport* t = transport_;
    if (!t->uses_group_protocol()) {
      return post_op(a.kind, a.gid, bytes,
                     [&g, a, t](detail::CommOp& op) { t->execute(g, a, op); });
    }
    return post_op(a.kind, a.gid, bytes, [&g, a, t](detail::CommOp& op) {
      const void* pub = a.send != nullptr ? a.send : static_cast<const void*>(a.recv);
      const double floor = detail::publish(g, a.pos, pub, op.posted_clock);
      g.barrier->arrive_and_wait();
      t->move(g, a);
      detail::finish_read_phase(g, a.pos, floor, op);
      g.barrier->arrive_and_wait();
      t->finalize(g, a);
    });
  }

  /// post_collective for compressed-wire fp32 payloads. `setup` runs first
  /// on the op's executing thread — it packs this rank's contribution into
  /// staging owned by the closures and points the CollArgs at it, so the
  /// pack overlaps like the rest of the op on a comm channel — and
  /// `teardown` runs after the transport completes (widening received wire
  /// data back into the caller's fp32 buffers). The staging lives inside
  /// the op closure, so nonblocking handles can be waited from anywhere.
  CommHandle post_wire_op(CollArgs a, std::int64_t bytes, std::function<void(CollArgs&)> setup,
                          std::function<void()> teardown) {
    auto& g = world_->group(a.gid);
    a.pos = g.position_of(rank_);
    Transport* t = transport_;
    if (!t->uses_group_protocol()) {
      return post_op(a.kind, a.gid, bytes,
                     [&g, a, t, setup = std::move(setup),
                      teardown = std::move(teardown)](detail::CommOp& op) mutable {
                       setup(a);
                       t->execute(g, a, op);
                       teardown();
                     });
    }
    return post_op(a.kind, a.gid, bytes,
                   [&g, a, t, setup = std::move(setup),
                    teardown = std::move(teardown)](detail::CommOp& op) mutable {
                     setup(a);
                     const void* pub =
                         a.send != nullptr ? a.send : static_cast<const void*>(a.recv);
                     const double floor = detail::publish(g, a.pos, pub, op.posted_clock);
                     g.barrier->arrive_and_wait();
                     t->move(g, a);
                     detail::finish_read_phase(g, a.pos, floor, op);
                     g.barrier->arrive_and_wait();
                     t->finalize(g, a);
                     teardown();
                   });
  }

  /// The one accounting path every collective shares: build the op record,
  /// hand it to the op's channel (or execute inline), return the handle.
  /// `gid` must be the group the op runs on; the channel routing key is the
  /// group's channel_route (line family when tagged, else the GroupId).
  CommHandle post_op(Collective kind, GroupId gid, std::int64_t bytes,
                     std::function<void(detail::CommOp&)> body) {
    auto op = std::make_shared<detail::CommOp>();
    op->op = kind;
    op->bytes = bytes;
    op->channel = channel_route(world_->group(gid), gid);
    op->clocked = clock_ != nullptr;
    op->posted_clock = clock_ != nullptr ? clock_->time() : 0.0;
    op->execute = std::move(body);
    if (clock_ != nullptr) outstanding_posts_.insert(op->posted_clock);
    dispatch(op);
    return CommHandle(std::move(op), this);
  }

  void dispatch(const std::shared_ptr<detail::CommOp>& op) {
    posted_any_ = true;
    if (channel_budget_ > 0) {
      if (!engine_) engine_ = std::make_unique<CommEngine>(channel_budget_);
      engine_->post(op);
    } else {
      CommEngine::run_inline(*op);
    }
  }

  /// Total compute-busy time inside the sim interval [a, b]. compute_spans_
  /// is sorted and disjoint, so binary-search the first span ending after `a`
  /// and walk forward.
  double compute_overlap(double a, double b) const {
    if (b <= a) return 0.0;
    auto it = std::upper_bound(
        compute_spans_.begin(), compute_spans_.end(), a,
        [](double v, const std::pair<double, double>& s) { return v < s.second; });
    double acc = 0.0;
    for (; it != compute_spans_.end() && it->first < b; ++it) {
      acc += std::min(b, it->second) - std::max(a, it->first);
    }
    return acc;
  }

  /// Drop compute spans no future retire can reference: a transfer interval
  /// starts no earlier than its op's own post clock, so spans ending at or
  /// before the oldest outstanding post (or before "now" when nothing is
  /// outstanding) are dead. Amortised so the span list stays small over long
  /// trainings.
  void prune_compute_spans() {
    if (compute_spans_.size() < 64) return;
    const double floor = outstanding_posts_.empty()
                             ? std::numeric_limits<double>::infinity()
                             : *outstanding_posts_.begin();
    auto keep = std::find_if(
        compute_spans_.begin(), compute_spans_.end(),
        [floor](const std::pair<double, double>& s) { return s.second > floor; });
    compute_spans_.erase(compute_spans_.begin(), keep);
  }

  void forget_post(const detail::CommOp& op) {
    if (clock_ == nullptr) return;
    const auto it = outstanding_posts_.find(op.posted_clock);
    if (it != outstanding_posts_.end()) outstanding_posts_.erase(it);
  }

  /// Accounting for a dropped (never-waited) handle: no time, no stats, but
  /// the op must stop pinning the compute-span prune floor.
  void discard(detail::CommOp& op) {
    if (op.accounted) forget_post(op);
  }

  /// Charge the finished op onto this rank's clock/stats (caller thread only).
  /// Returns the scalar result.
  double retire(detail::CommOp& op) {
    if (op.error) {
      std::exception_ptr e = op.error;
      op.error = nullptr;
      std::rethrow_exception(e);
    }
    if (!op.accounted) return op.scalar;
    forget_post(op);
    auto& e = stats_.entry(op.op);
    e.calls += 1;
    e.bytes += op.bytes;
    e.wire_bytes += op.wire_bytes;
    if (clock_ == nullptr) {
      // Functional-only mode: no overlap semantics; charge the cost-model
      // time per op (done_clock carries the meaningless busy horizon here).
      e.sim_seconds += op.full_seconds;
      return op.scalar;
    }
    const double t_wait = clock_->time();
    const double exposed = std::max(0.0, op.done_clock - t_wait);
    // Hidden = the part of the transfer interval [done - T, done] this rank
    // spent computing, measured against the recorded busy intervals. Exact
    // for any wait order: clock advances caused by waiting on *other*
    // handles are not busy intervals, and compute charged after this op's
    // sim completion lies outside the transfer interval, so neither is ever
    // credited (the old compute-since-post cap could credit the latter under
    // out-of-order waits). Exposed can exceed full_seconds (straggler +
    // link-queue wait surfaces at a blocking wait()); hidden + exposed never
    // exceeds full_seconds because busy intervals end at t_wait.
    const double hidden = compute_overlap(op.done_clock - op.full_seconds, op.done_clock);
    e.sim_seconds += exposed;
    e.hidden_seconds += hidden;
    if (op.done_clock > clock_->time()) clock_->set(op.done_clock);
    timeline_.record(TimelineSpan::Kind::CommInFlight, op.op, op.posted_clock, op.done_clock);
    timeline_.record(TimelineSpan::Kind::CommExposed, op.op, t_wait, op.done_clock);
    return op.scalar;
  }

  World* world_;
  int rank_;
  SimClock* clock_;
  Transport* transport_;  ///< byte-movement backend (never null)
  WirePrecision wire_;    ///< fp32 payload wire format (transport.hpp)
  CommStats stats_;
  Timeline timeline_;
  /// Disjoint, sorted [t0, t1) intervals during which this rank charged
  /// compute — the ground truth for exact hidden-time attribution.
  std::vector<std::pair<double, double>> compute_spans_;
  /// Post clocks of accounted, not-yet-retired ops (prune floor).
  std::multiset<double> outstanding_posts_;
  int channel_budget_;       ///< snapshot of comm_thread_budget() at creation
  bool posted_any_ = false;  ///< any op dispatched (guards set_clock)
  std::unique_ptr<CommEngine> engine_;
};

inline double CommHandle::wait() {
  PLEXUS_CHECK(op_ != nullptr, "wait() on an empty CommHandle");
  op_->wait_finished();
  if (op_->retired) return op_->scalar;  // second wait: cached result, no charge
  op_->retired = true;
  return owner_->retire(*op_);
}

inline void CommHandle::release() {
  if (op_ && !op_->retired) {
    // Completing (not cancelling) keeps the barrier protocol matched; any
    // pending error dies with the op record.
    op_->wait_finished();
    op_->retired = true;
    if (owner_ != nullptr) owner_->discard(*op_);
  }
  op_.reset();
}

}  // namespace plexus::comm
