#pragma once
/// \file grid.hpp
/// The 3D virtual GPU grid (paper section 3.1): rank <-> (x, y, z) coordinate
/// mapping and the per-dimension process groups (X-, Y-, Z-parallel lines).
///
/// Ranks are packed Y-fastest (rank = y + Gy*x + Gy*Gx*z) so that the Y
/// dimension lands within a node first, then X, then Z — the packing priority
/// the paper's communication model assumes (section 4.2). Each line group gets
/// the effective link parameters of eq. 4.6 for the given machine.

#include <vector>

#include "comm/world.hpp"
#include "core/roles.hpp"
#include "sim/machine.hpp"
#include "sim/topology.hpp"

namespace plexus::core {

struct Coords {
  int x = 0;
  int y = 0;
  int z = 0;
};

class Grid3D {
 public:
  /// Creates all line process groups in `world`. `world.size()` must equal
  /// shape.size(). Not thread-safe: construct before the SPMD region.
  Grid3D(comm::World& world, sim::GridShape shape, const sim::Machine& machine);

  const sim::GridShape& shape() const { return shape_; }
  int size() const { return shape_.size(); }

  int extent(Axis a) const;
  Coords coords_of(int rank) const;
  int rank_of(const Coords& c) const;
  static int coord(const Coords& c, Axis a);

  /// Group of all ranks sharing this rank's other two coordinates, varying
  /// along `axis`. The rank's position inside the group equals its coordinate
  /// along `axis`.
  comm::GroupId group_along(Axis axis, int rank) const;

  comm::GroupId world_group() const { return world_group_; }

 private:
  sim::GridShape shape_;
  comm::GroupId world_group_;
  // Indexed by line id within each dimension's family.
  std::vector<comm::GroupId> x_groups_;  // (y, z) -> group, id = y + Gy*z
  std::vector<comm::GroupId> y_groups_;  // (x, z) -> group, id = x + Gx*z
  std::vector<comm::GroupId> z_groups_;  // (x, y) -> group, id = y + Gy*x
};

}  // namespace plexus::core
