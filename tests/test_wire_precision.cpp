// The bf16 wire format (comm/transport.hpp WirePrecision): an explicit
// non-bitwise opt-in that packs fp32 collective payloads to bf16 at the
// transport boundary and accumulates in fp32 on fold. Contracts under test:
//   * the fp32 default is untouched — runs with the knob left alone are
//     bitwise-identical to runs that set it to Fp32 explicitly;
//   * bf16 halves the float wire bytes (<= 0.55x gate, matching CI's
//     perf-smoke threshold) while losses stay close to fp32;
//   * Sim and Local transports remain bitwise-identical to EACH OTHER under
//     bf16 — the conformance contract is wire-format-independent;
//   * group-level semantics survive the rounding: broadcast and all-gather
//     deliver identical buffers on every member (the root's own copy
//     included), and bf16-exact values cross the wire exactly;
//   * ScopedWirePrecision restores the process default.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/world.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/cluster.hpp"
#include "sim/machine.hpp"

namespace pc = plexus::core;
namespace pm = plexus::comm;
namespace pg = plexus::graph;
namespace psim = plexus::sim;

namespace {

pc::TrainOptions wire_options(pm::WirePrecision wire) {
  pc::TrainOptions opt;
  opt.grid = {2, 1, 2};
  opt.machine = &psim::Machine::test_machine();
  opt.model.hidden_dims = {16};
  opt.epochs = 3;
  opt.wire = wire;
  return opt;
}

const pg::Graph& wire_graph() {
  static const pg::Graph g = pg::make_test_graph(1024, 8.0, 32, 4, /*seed=*/3);
  return g;
}

}  // namespace

TEST(WirePrecision, NamesAndElementSizes) {
  EXPECT_STREQ(pm::wire_precision_name(pm::WirePrecision::Fp32), "fp32");
  EXPECT_STREQ(pm::wire_precision_name(pm::WirePrecision::Bf16), "bf16");
  EXPECT_EQ(pm::wire_elem_size(pm::WirePrecision::Fp32), 4u);
  EXPECT_EQ(pm::wire_elem_size(pm::WirePrecision::Bf16), 2u);
  pm::WirePrecision w = pm::WirePrecision::Fp32;
  EXPECT_TRUE(pm::wire_precision_from_string("bf16", w));
  EXPECT_EQ(w, pm::WirePrecision::Bf16);
  EXPECT_FALSE(pm::wire_precision_from_string("fp16", w));
}

TEST(WirePrecision, ScopedOverrideRestoresProcessDefault) {
  const pm::WirePrecision before = pm::default_wire_precision();
  {
    pm::ScopedWirePrecision scope(pm::WirePrecision::Bf16);
    EXPECT_EQ(pm::default_wire_precision(), pm::WirePrecision::Bf16);
    {
      pm::ScopedWirePrecision inner(pm::WirePrecision::Fp32);
      EXPECT_EQ(pm::default_wire_precision(), pm::WirePrecision::Fp32);
    }
    EXPECT_EQ(pm::default_wire_precision(), pm::WirePrecision::Bf16);
  }
  EXPECT_EQ(pm::default_wire_precision(), before);
}

TEST(WirePrecision, Fp32DefaultIsBitwiseUnaffectedByTheKnobExisting) {
  // Even with the process default flipped to bf16, TrainOptions::wire = Fp32
  // must reproduce the plain default run bit for bit.
  const auto baseline = pc::train_plexus(wire_graph(), wire_options(pm::WirePrecision::Fp32));
  pm::ScopedWirePrecision scope(pm::WirePrecision::Bf16);
  const auto pinned = pc::train_plexus(wire_graph(), wire_options(pm::WirePrecision::Fp32));
  ASSERT_EQ(baseline.epochs.size(), pinned.epochs.size());
  for (std::size_t e = 0; e < baseline.epochs.size(); ++e) {
    EXPECT_EQ(baseline.epochs[e].loss, pinned.epochs[e].loss) << e;  // bitwise
    EXPECT_EQ(baseline.epochs[e].comm_wire_bytes, pinned.epochs[e].comm_wire_bytes) << e;
  }
}

TEST(WirePrecision, Bf16HalvesFloatWireBytesAndLossesStayClose) {
  const auto fp32 = pc::train_plexus(wire_graph(), wire_options(pm::WirePrecision::Fp32));
  const auto bf16 = pc::train_plexus(wire_graph(), wire_options(pm::WirePrecision::Bf16));
  ASSERT_EQ(fp32.epochs.size(), bf16.epochs.size());
  for (std::size_t e = 0; e < fp32.epochs.size(); ++e) {
    ASSERT_GT(fp32.epochs[e].comm_wire_bytes, 0.0);
    // The CI gate: <= 0.55x. This workload's collectives are all-float, so
    // the measured ratio is exactly 0.5.
    EXPECT_LE(bf16.epochs[e].comm_wire_bytes, 0.55 * fp32.epochs[e].comm_wire_bytes) << e;
    ASSERT_TRUE(std::isfinite(bf16.epochs[e].loss)) << e;
    EXPECT_NEAR(bf16.epochs[e].loss, fp32.epochs[e].loss,
                0.02 * std::fabs(fp32.epochs[e].loss))
        << e;
  }
  // Training still learns under the rounded wire.
  EXPECT_LT(bf16.epochs.back().loss, bf16.epochs.front().loss);
}

TEST(WirePrecision, Bf16SimAndLocalTransportsStayBitwiseIdentical) {
  auto opt = wire_options(pm::WirePrecision::Bf16);
  opt.backend = pm::Backend::Sim;
  const auto sim = pc::train_plexus(wire_graph(), opt);
  opt.backend = pm::Backend::Local;
  const auto local = pc::train_plexus(wire_graph(), opt);
  ASSERT_EQ(sim.epochs.size(), local.epochs.size());
  for (std::size_t e = 0; e < sim.epochs.size(); ++e) {
    EXPECT_EQ(sim.epochs[e].loss, local.epochs[e].loss) << e;  // bitwise
    EXPECT_EQ(sim.epochs[e].comm_wire_bytes, local.epochs[e].comm_wire_bytes) << e;
  }
}

TEST(WirePrecision, CollectivesAgreeAcrossMembersUnderBf16) {
  constexpr int kRanks = 4;
  constexpr std::size_t kElems = 23;  // odd: exercises pack/unpack tails
  std::vector<std::vector<float>> bcast(kRanks), gathered(kRanks), reduced(kRanks);
  plexus::comm::World world(kRanks);
  psim::run_cluster(
      world, psim::Machine::test_machine(),
      [&](psim::RankContext& ctx) {
        ctx.comm.set_wire_precision(pm::WirePrecision::Bf16);
        const auto wg = ctx.comm.world().world_group();
        // Values exactly representable in bf16: they must cross unchanged.
        std::vector<float> buf(kElems);
        for (std::size_t i = 0; i < kElems; ++i) {
          buf[i] = 0.25f * static_cast<float>(i) * (ctx.rank() == 1 ? 1.0f : -2.0f);
        }
        ctx.comm.broadcast<float>(wg, buf, /*root=*/1);
        bcast[static_cast<std::size_t>(ctx.rank())] = buf;

        std::vector<float> mine(kElems, 1.5f + static_cast<float>(ctx.rank()));
        std::vector<float> all(kElems * kRanks);
        ctx.comm.all_gather<float>(wg, mine, all);
        gathered[static_cast<std::size_t>(ctx.rank())] = all;

        std::vector<float> sum(kElems, 0.5f);  // 4 * 0.5 = 2.0, bf16-exact
        ctx.comm.all_reduce_sum<float>(wg, sum);
        reduced[static_cast<std::size_t>(ctx.rank())] = sum;
      },
      /*enable_clock=*/false);
  for (int r = 0; r < kRanks; ++r) {
    for (std::size_t i = 0; i < kElems; ++i) {
      // Broadcast: every member (root included) holds the root's values.
      EXPECT_EQ(bcast[static_cast<std::size_t>(r)][i], 0.25f * static_cast<float>(i)) << r;
      EXPECT_EQ(reduced[static_cast<std::size_t>(r)][i], 2.0f) << r;
    }
    EXPECT_EQ(gathered[static_cast<std::size_t>(r)], gathered[0]) << r;
    for (int src = 0; src < kRanks; ++src) {
      EXPECT_EQ(gathered[static_cast<std::size_t>(r)][static_cast<std::size_t>(src) * kElems],
                1.5f + static_cast<float>(src))
          << r;
    }
  }
}
