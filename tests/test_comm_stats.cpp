// CommStats accounting tests: per-collective byte/call totals and
// total_seconds() must match the ring cost model (comm/cost.hpp) exactly —
// the trainer's comm/compute breakdown (paper fig. 9) is built from these.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/cost.hpp"
#include "comm/world.hpp"

namespace pc = plexus::comm;

namespace {

/// Run `body(rank)` on one thread per rank, MPI-style.
void spmd(int ranks, const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) threads.emplace_back(body, r);
  for (auto& t : threads) t.join();
}

}  // namespace

TEST(CommStats, TwoRankAllReduceMatchesRingModel) {
  pc::LinkParams link;
  link.bandwidth = 50e9;
  link.latency = 2e-6;

  pc::World world(2);
  const pc::GroupId g = world.create_group({0, 1}, link);

  constexpr std::size_t kElems = 1024;
  const std::int64_t bytes = static_cast<std::int64_t>(kElems * sizeof(float));

  std::vector<pc::CommStats> stats(2);
  spmd(2, [&](int rank) {
    pc::SimClock clock;
    pc::Communicator comm(world, rank, &clock);
    std::vector<float> buf(kElems, rank == 0 ? 1.0f : 2.0f);
    comm.all_reduce_sum<float>(g, {buf.data(), buf.size()});
    for (float v : buf) ASSERT_EQ(v, 3.0f);
    stats[static_cast<std::size_t>(rank)] = comm.stats();
  });

  const double expected =
      pc::collective_time(pc::Collective::AllReduce, bytes, /*group_size=*/2, link);
  // Ring all-reduce on 2 ranks: 2 * (1/2) * M/beta + 2 * 1 * alpha.
  EXPECT_DOUBLE_EQ(expected, bytes / link.bandwidth + 2.0 * link.latency);

  for (int r = 0; r < 2; ++r) {
    const auto& s = stats[static_cast<std::size_t>(r)];
    const auto& e = s.entry(pc::Collective::AllReduce);
    EXPECT_EQ(e.calls, 1) << "rank " << r;
    EXPECT_EQ(e.bytes, bytes) << "rank " << r;
    EXPECT_DOUBLE_EQ(e.sim_seconds, expected) << "rank " << r;
    EXPECT_DOUBLE_EQ(s.total_seconds(), expected) << "rank " << r;
    EXPECT_EQ(s.total_bytes(), bytes) << "rank " << r;
    // No other collective may have been charged.
    EXPECT_EQ(s.entry(pc::Collective::AllGather).calls, 0);
    EXPECT_EQ(s.entry(pc::Collective::Broadcast).calls, 0);
  }
}

TEST(CommStats, AccumulatesAcrossCallsAndOps) {
  pc::LinkParams link;
  link.bandwidth = 10e9;
  link.latency = 1e-6;

  pc::World world(2);
  const pc::GroupId g = world.create_group({0, 1}, link);

  constexpr std::size_t kElems = 256;
  const std::int64_t ar_bytes = static_cast<std::int64_t>(kElems * sizeof(float));
  const std::int64_t ag_bytes = 2 * ar_bytes;  // all-gather charges the full out buffer

  std::vector<pc::CommStats> stats(2);
  spmd(2, [&](int rank) {
    pc::SimClock clock;
    pc::Communicator comm(world, rank, &clock);
    std::vector<float> buf(kElems, 1.0f);
    std::vector<float> gathered(2 * kElems);
    comm.all_reduce_sum<float>(g, {buf.data(), buf.size()});
    comm.all_reduce_sum<float>(g, {buf.data(), buf.size()});
    comm.all_gather<float>(g, {buf.data(), buf.size()}, {gathered.data(), gathered.size()});
    stats[static_cast<std::size_t>(rank)] = comm.stats();
  });

  const double t_ar = pc::collective_time(pc::Collective::AllReduce, ar_bytes, 2, link);
  const double t_ag = pc::collective_time(pc::Collective::AllGather, ag_bytes, 2, link);
  for (const auto& s : stats) {
    EXPECT_EQ(s.entry(pc::Collective::AllReduce).calls, 2);
    EXPECT_EQ(s.entry(pc::Collective::AllReduce).bytes, 2 * ar_bytes);
    EXPECT_EQ(s.entry(pc::Collective::AllGather).calls, 1);
    EXPECT_EQ(s.entry(pc::Collective::AllGather).bytes, ag_bytes);
    EXPECT_DOUBLE_EQ(s.total_seconds(), 2.0 * t_ar + t_ag);
    EXPECT_EQ(s.total_bytes(), 2 * ar_bytes + ag_bytes);
  }
}

TEST(CommStats, OverlapSplitsExposedAndHiddenTime) {
  // The overlap accounting is measured, not hand-fed: a collective posted
  // asynchronously and waited after `credit` seconds of compute charges only
  // the exposed tail; the covered part lands in hidden_seconds.
  pc::LinkParams link;
  link.bandwidth = 10e9;
  link.latency = 1e-6;
  pc::World world(2);
  const pc::GroupId g = world.create_group({0, 1}, link);

  constexpr std::size_t kElems = 4096;
  const std::int64_t bytes = static_cast<std::int64_t>(kElems * sizeof(float));
  const double full = pc::collective_time(pc::Collective::AllReduce, bytes, 2, link);
  const double credit = full * 0.25;

  std::vector<pc::CommStats> stats(2);
  spmd(2, [&](int rank) {
    pc::SimClock clock;
    pc::Communicator comm(world, rank, &clock);
    std::vector<float> buf(kElems, 1.0f);
    auto h = comm.iall_reduce_sum<float>(g, {buf.data(), buf.size()});
    comm.charge_compute(credit);  // independent compute behind the collective
    h.wait();
    stats[static_cast<std::size_t>(rank)] = comm.stats();
  });
  for (const auto& s : stats) {
    // Bytes are the full logical volume; only the exposed time is charged.
    const auto& e = s.entry(pc::Collective::AllReduce);
    EXPECT_EQ(e.bytes, bytes);
    EXPECT_DOUBLE_EQ(s.total_seconds(), full - credit);
    EXPECT_DOUBLE_EQ(e.hidden_seconds, credit);
    EXPECT_DOUBLE_EQ(s.total_hidden_seconds(), credit);
  }
}

TEST(CommStats, ResetClearsEverything) {
  pc::CommStats s;
  auto& e = s.entry(pc::Collective::AllToAll);
  e.calls = 3;
  e.bytes = 999;
  e.sim_seconds = 1.5;
  e.hidden_seconds = 0.5;
  EXPECT_GT(s.total_seconds(), 0.0);
  EXPECT_GT(s.total_hidden_seconds(), 0.0);
  s.reset();
  EXPECT_EQ(s.total_bytes(), 0);
  EXPECT_DOUBLE_EQ(s.total_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(s.total_hidden_seconds(), 0.0);
  EXPECT_EQ(s.entry(pc::Collective::AllToAll).calls, 0);
}
