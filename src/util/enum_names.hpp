#pragma once
/// \file enum_names.hpp
/// One string<->enum registry for every user-facing enum (CLI flags, env
/// vars, checkpoint headers).
///
/// Each enum declares a single table next to its definition by specializing
/// `EnumNames<E>`:
///
///   template <>
///   struct plexus::util::EnumNames<comm::Backend> {
///     static constexpr const char* kind = "backend";
///     static constexpr EnumEntry<comm::Backend> table[] = {
///         {comm::Backend::Sim, "sim"}, {comm::Backend::Local, "local"}, ...};
///   };
///
/// and gets `enum_name` / `enum_from_string` (case-insensitive) /
/// `enum_choices` / the uniform `enum_error` message for free. The table is
/// the one source of truth: to_string(from_string(x)) == x holds for every
/// listed name by construction (property-tested in test_util).
///
/// Availability filtering (e.g. "mpi" only in PLEXUS_WITH_MPI builds) is a
/// runtime question the static table cannot answer; callers with such
/// constraints pass their own choices string to `enum_error`.

#include <string>
#include <string_view>

namespace plexus::util {

template <typename E>
struct EnumEntry {
  E value;
  const char* name;
};

/// Specialize per enum with `kind` (for error messages) and `table`.
template <typename E>
struct EnumNames;

/// Canonical name of `v`, or "?" for values outside the table.
template <typename E>
constexpr const char* enum_name(E v) {
  for (const auto& e : EnumNames<E>::table) {
    if (e.value == v) return e.name;
  }
  return "?";
}

inline bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto lo = [](char c) {
      return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
    };
    if (lo(a[i]) != lo(b[i])) return false;
  }
  return true;
}

/// Case-insensitive lookup. Returns false (leaving `out` untouched) for
/// names not in the table.
template <typename E>
bool enum_from_string(std::string_view s, E& out) {
  for (const auto& e : EnumNames<E>::table) {
    if (iequals(s, e.name)) {
      out = e.value;
      return true;
    }
  }
  return false;
}

/// "a | b | c" — every name in table order.
template <typename E>
std::string enum_choices() {
  std::string s;
  for (const auto& e : EnumNames<E>::table) {
    if (!s.empty()) s += " | ";
    s += e.name;
  }
  return s;
}

/// The uniform parse-failure message: "unknown <kind> 'got' (expected a | b)".
/// `choices` overrides the table listing when availability is
/// build/runtime-dependent (comm::backend_choices()).
template <typename E>
std::string enum_error(std::string_view got, std::string_view choices = {}) {
  std::string s = "unknown ";
  s += EnumNames<E>::kind;
  s += " '";
  s += got;
  s += "' (expected ";
  s += choices.empty() ? enum_choices<E>() : std::string(choices);
  s += ")";
  return s;
}

}  // namespace plexus::util
