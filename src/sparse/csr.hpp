#pragma once
/// \file csr.hpp
/// Compressed sparse row matrix (fp32 values, 32-bit column indices).
///
/// This is the storage format for adjacency shards. All structural transforms
/// the paper relies on live here: transposition (backward-pass SpMM uses A^T),
/// row/column permutation (section 5.1's single/double permutation schemes),
/// block extraction (2D sharding onto the 3D GPU grid), self-loop insertion and
/// symmetric degree normalisation (section 2.1 preprocessing).

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/coo.hpp"

namespace plexus::sparse {

class Csr {
 public:
  Csr() = default;
  Csr(std::int64_t rows, std::int64_t cols);

  static Csr from_coo(const Coo& coo, bool sum_duplicates = true);

  std::int64_t rows() const { return num_rows_; }
  std::int64_t cols() const { return num_cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(col_idx_.size()); }

  std::span<const std::int64_t> row_ptr() const { return {row_ptr_.data(), row_ptr_.size()}; }
  std::span<const std::int32_t> col_idx() const { return {col_idx_.data(), col_idx_.size()}; }
  std::span<const float> vals() const { return {vals_.data(), vals_.size()}; }
  std::span<float> vals_mut() { return {vals_.data(), vals_.size()}; }

  std::int64_t row_nnz(std::int64_t r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

  /// nnz of the row range [r0, r1) — the per-block work estimate of blocked
  /// aggregation (section 5.2); O(1) from the row pointer.
  std::int64_t range_nnz(std::int64_t r0, std::int64_t r1) const {
    return row_ptr_[static_cast<std::size_t>(r1)] - row_ptr_[static_cast<std::size_t>(r0)];
  }

  /// B with B[row_map[u], col_map[v]] = A[u, v]; i.e. B = P_r A P_c^T where the
  /// permutation maps old index -> new index.
  Csr permuted(std::span<const std::int64_t> row_map, std::span<const std::int64_t> col_map) const;

  /// Transposed copy (counting sort; O(nnz)).
  Csr transposed() const;

  /// Sub-block rows [r0, r1) x cols [c0, c1), re-indexed to local coordinates.
  Csr block(std::int64_t r0, std::int64_t r1, std::int64_t c0, std::int64_t c1) const;

  /// Restriction to rows [r0, r1) keeping the full column space (local row ids).
  Csr row_slice(std::int64_t r0, std::int64_t r1) const;

  /// nnz inside the sub-block without materialising it.
  std::int64_t block_nnz(std::int64_t r0, std::int64_t r1, std::int64_t c0, std::int64_t c1) const;

  /// Per-row set of referenced columns in [c0, c1) — used by the sparsity-aware
  /// (CAGNET SA) baseline to compute which remote feature rows are needed.
  std::vector<std::int32_t> referenced_cols(std::int64_t c0, std::int64_t c1) const;

  /// Dense (rows x cols) copy; tests only.
  std::vector<float> to_dense() const;

  /// True if structurally equal (same pattern and values).
  static bool equal(const Csr& a, const Csr& b, float tol = 0.0f);

  /// Construction helper used by from_coo / readers: takes ownership of arrays.
  static Csr from_parts(std::int64_t rows, std::int64_t cols, std::vector<std::int64_t> row_ptr,
                        std::vector<std::int32_t> col_idx, std::vector<float> vals);

 private:
  std::int64_t num_rows_ = 0;
  std::int64_t num_cols_ = 0;
  std::vector<std::int64_t> row_ptr_;  // size num_rows_ + 1
  std::vector<std::int32_t> col_idx_;  // size nnz
  std::vector<float> vals_;            // size nnz
};

/// \brief GCN preprocessing (section 2.1): given a square adjacency A restricted
/// to `active_nodes` (rows/cols < active_nodes get self-loops; padded tail stays
/// empty), returns D^{-1/2} (A + I) D^{-1/2} where D is the degree of (A + I).
Csr normalize_adjacency(const Csr& a, std::int64_t active_nodes);

/// Symmetrise: returns max(A, A^T) pattern union with value 1.0 entries
/// (generators may emit directed edges; GCN aggregation wants both directions).
Coo symmetrize_edges(const Coo& directed, bool include_reverse = true);

}  // namespace plexus::sparse
