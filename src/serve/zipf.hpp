#pragma once
/// \file zipf.hpp
/// Zipfian request sampler for the serving benchmarks: node popularity in
/// real inference traffic is heavy-tailed, and a Zipf(s) mix is the standard
/// stand-in (hot nodes hit the head, the long tail exercises the cold path).
///
/// Implementation: the inverse-power weights 1/(i+1)^s are prefix-summed
/// into a CDF once (O(n)); each draw is a SplitMix64 uniform plus a binary
/// search (O(log n)). Deterministic for a fixed (n, s, seed).

#include <algorithm>
#include <cstdint>
#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace plexus::serve {

class ZipfSampler {
 public:
  /// Ranks [0, n) with P(i) proportional to 1/(i+1)^exponent. exponent = 0
  /// degenerates to uniform; ~1 is the classic web-traffic shape.
  ZipfSampler(std::int64_t n, double exponent, std::uint64_t seed)
      : rng_(seed) {
    PLEXUS_CHECK(n > 0, "ZipfSampler: need a positive universe");
    PLEXUS_CHECK(exponent >= 0.0, "ZipfSampler: exponent must be non-negative");
    cdf_.resize(static_cast<std::size_t>(n));
    double acc = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[static_cast<std::size_t>(i)] = acc;
    }
    for (auto& c : cdf_) c /= acc;
  }

  /// Next rank in [0, n). Rank 0 is the most popular.
  std::int64_t next() {
    const double u = rng_.next_double();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? static_cast<std::int64_t>(cdf_.size()) - 1
                            : static_cast<std::int64_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
  util::SplitMix64 rng_;
};

}  // namespace plexus::serve
