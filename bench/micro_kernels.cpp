// google-benchmark micro-suite for the host kernels backing the simulator:
// SpMM (square vs tall-skinny dense operand), GEMM transpose modes, CSR
// transforms. These measure *this machine's* kernels (wall time), not the
// simulated GPUs.
#include <benchmark/benchmark.h>

#include "dense/gemm.hpp"
#include "graph/generators.hpp"
#include "sparse/csr.hpp"
#include "sparse/spmm.hpp"
#include "util/rng.hpp"

namespace {

plexus::sparse::Csr make_adj(std::int64_t nodes, double degree) {
  const auto coo =
      plexus::graph::erdos_renyi(nodes, static_cast<std::int64_t>(nodes * degree / 2), 3);
  return plexus::sparse::Csr::from_coo(coo, false);
}

plexus::dense::Matrix make_dense(std::int64_t r, std::int64_t c) {
  plexus::util::CounterRng rng(5);
  plexus::dense::Matrix m(r, c);
  for (std::int64_t i = 0; i < m.size(); ++i) {
    m.flat()[static_cast<std::size_t>(i)] = rng.uniform_at(static_cast<std::uint64_t>(i), -1, 1);
  }
  return m;
}

void BM_Spmm(benchmark::State& state) {
  const auto nodes = state.range(0);
  const auto cols = state.range(1);
  const auto a = make_adj(nodes, 16.0);
  const auto b = make_dense(nodes, cols);
  plexus::dense::Matrix c(nodes, cols);
  for (auto _ : state) {
    plexus::sparse::spmm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * cols * 2);
}
BENCHMARK(BM_Spmm)->Args({4096, 128})->Args({4096, 8})->Args({16384, 32});

void BM_GemmModes(benchmark::State& state) {
  const auto n = state.range(0);
  const auto ta = state.range(1) != 0 ? plexus::dense::Trans::T : plexus::dense::Trans::N;
  const auto a = make_dense(n, n);
  const auto b = make_dense(n, n);
  plexus::dense::Matrix c(n, n);
  for (auto _ : state) {
    plexus::dense::gemm(ta, plexus::dense::Trans::N, 1.0f, a, b, 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmModes)->Args({256, 0})->Args({256, 1});

void BM_CsrTranspose(benchmark::State& state) {
  const auto a = make_adj(state.range(0), 16.0);
  for (auto _ : state) {
    auto t = a.transposed();
    benchmark::DoNotOptimize(t.nnz());
  }
}
BENCHMARK(BM_CsrTranspose)->Arg(8192);

void BM_CsrPermute(benchmark::State& state) {
  const auto a = make_adj(state.range(0), 16.0);
  const auto p = plexus::util::random_permutation(a.rows(), 9);
  for (auto _ : state) {
    auto b = a.permuted(p, p);
    benchmark::DoNotOptimize(b.nnz());
  }
}
BENCHMARK(BM_CsrPermute)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
