// google-benchmark micro-suite for the shared-memory collectives: wall-time
// throughput of the communication layer itself, plus the simulated-clock
// pipelined-vs-blocking sweep that CI's perf-smoke job gates on (the
// `sim_*` counters are deterministic: they come from post-time clocks and
// the ring cost model, not from wall time).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "comm/communicator.hpp"
#include "comm/handle.hpp"
#include "comm/world.hpp"
#include "core/trainer.hpp"
#include "dense/matrix.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "sim/cluster.hpp"
#include "sim/kernels.hpp"
#include "sim/machine.hpp"
#include "sparse/csr.hpp"
#include "sparse/partition2d.hpp"
#include "sparse/spmm.hpp"
#include "util/rng.hpp"

namespace {

void BM_AllReduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto elems = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    plexus::comm::World world(ranks);
    plexus::sim::run_cluster(
        world, plexus::sim::Machine::test_machine(),
        [&](plexus::sim::RankContext& ctx) {
          std::vector<float> buf(elems, 1.0f);
          for (int i = 0; i < 8; ++i) {
            ctx.comm.all_reduce_sum<float>(ctx.comm.world().world_group(), buf);
          }
          benchmark::DoNotOptimize(buf[0]);
        },
        /*enable_clock=*/false);
  }
  state.SetBytesProcessed(state.iterations() * 8 * static_cast<std::int64_t>(elems) * 4 * ranks);
}
BENCHMARK(BM_AllReduce)->Args({4, 1 << 14})->Args({8, 1 << 14})->Unit(benchmark::kMillisecond);

// Same op stream with the comm engine disabled: isolates the post/wait
// thread-handoff overhead of the nonblocking path.
void BM_AllReduceInlineMode(benchmark::State& state) {
  plexus::comm::ScopedCommThreads scoped(0);
  const int ranks = static_cast<int>(state.range(0));
  const auto elems = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    plexus::comm::World world(ranks);
    plexus::sim::run_cluster(
        world, plexus::sim::Machine::test_machine(),
        [&](plexus::sim::RankContext& ctx) {
          std::vector<float> buf(elems, 1.0f);
          for (int i = 0; i < 8; ++i) {
            ctx.comm.all_reduce_sum<float>(ctx.comm.world().world_group(), buf);
          }
          benchmark::DoNotOptimize(buf[0]);
        },
        /*enable_clock=*/false);
  }
  state.SetBytesProcessed(state.iterations() * 8 * static_cast<std::int64_t>(elems) * 4 * ranks);
}
BENCHMARK(BM_AllReduceInlineMode)->Args({4, 1 << 14})->Unit(benchmark::kMillisecond);

void BM_AllGather(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto elems = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    plexus::comm::World world(ranks);
    plexus::sim::run_cluster(
        world, plexus::sim::Machine::test_machine(),
        [&](plexus::sim::RankContext& ctx) {
          std::vector<float> in(elems, 1.0f);
          std::vector<float> out(elems * static_cast<std::size_t>(ranks));
          for (int i = 0; i < 8; ++i) {
            ctx.comm.all_gather<float>(ctx.comm.world().world_group(), in, out);
          }
          benchmark::DoNotOptimize(out[0]);
        },
        /*enable_clock=*/false);
  }
  state.SetBytesProcessed(state.iterations() * 8 * static_cast<std::int64_t>(elems) * 4 * ranks);
}
BENCHMARK(BM_AllGather)->Args({4, 1 << 14})->Args({8, 1 << 14})->Unit(benchmark::kMillisecond);

// Byte-transport backend sweep: the same collective mix under the Sim
// (shared-slot direct reads) and Local (ring / staged movement) transports.
// Results are bitwise-identical by the conformance contract — this measures
// the wall-clock cost of really moving the bytes hop by hop.
void BM_TransportBackends(benchmark::State& state) {
  const auto backend =
      state.range(0) == 0 ? plexus::comm::Backend::Sim : plexus::comm::Backend::Local;
  const int ranks = static_cast<int>(state.range(1));
  const auto elems = static_cast<std::size_t>(state.range(2));
  plexus::comm::ScopedBackend scoped(backend);
  state.SetLabel(plexus::comm::backend_name(backend));
  for (auto _ : state) {
    plexus::comm::World world(ranks);
    plexus::sim::run_cluster(
        world, plexus::sim::Machine::test_machine(),
        [&](plexus::sim::RankContext& ctx) {
          const auto wg = ctx.comm.world().world_group();
          std::vector<float> buf(elems, 1.0f);
          std::vector<float> in(elems, 2.0f);
          std::vector<float> gathered(elems * static_cast<std::size_t>(ranks));
          std::vector<float> chunk(elems / static_cast<std::size_t>(ranks));
          for (int i = 0; i < 4; ++i) {
            ctx.comm.all_reduce_sum<float>(wg, buf);
            ctx.comm.all_gather<float>(wg, in, gathered);
            ctx.comm.reduce_scatter_sum<float>(wg, in, chunk);
            ctx.comm.broadcast<float>(wg, buf, i % ranks);
          }
          benchmark::DoNotOptimize(buf[0]);
          benchmark::DoNotOptimize(chunk.data());
        },
        /*enable_clock=*/false);
  }
  state.SetBytesProcessed(state.iterations() * 4 * 4 * static_cast<std::int64_t>(elems) * 4 *
                          ranks);
}
BENCHMARK(BM_TransportBackends)
    ->Args({0, 4, 1 << 14})
    ->Args({1, 4, 1 << 14})
    ->Args({0, 8, 1 << 14})
    ->Args({1, 8, 1 << 14})
    ->Unit(benchmark::kMillisecond);

int rmat_scale() { return plexus::bench::rmat_scale(/*default_scale=*/14); }

/// Blocked aggregation over a power-law RMAT shard on the simulated clock:
/// `kBlocks` row blocks, each a real SpMM (charged via the machine's SpMM
/// model) followed by a real per-block all-reduce, run at pipeline depth
/// `state.range(1)` (1 = fully blocking — the schedule the retired
/// overlap_credit heuristic used to approximate; 0 = adaptive: the depth the
/// perf model picks from per-block SpMM vs ring time, reported in the
/// `adaptive_depth` counter). The `sim_*` counters report the straggler
/// rank's exposed/hidden communication seconds; they are deterministic
/// (post-time clocks + ring cost model, zero machine noise), so CI's
/// perf-smoke job gates on exposed(depth 4) < exposed(depth 1) and on
/// exposed(adaptive) <= the best fixed depth.
void BM_BlockedAggregation(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  int depth = static_cast<int>(state.range(1));
  constexpr int kBlocks = 8;
  constexpr std::int64_t kCols = 64;

  const std::int64_t nodes = std::int64_t{1} << rmat_scale();
  static const plexus::sparse::Csr adj = plexus::sparse::Csr::from_coo(
      plexus::graph::rmat(rmat_scale(), nodes * 8, 0.57, 0.19, 0.19, 0.05, /*seed=*/42), false);
  static const plexus::dense::Matrix feats = [nodes] {
    plexus::dense::Matrix f(nodes, kCols);
    plexus::util::CounterRng rng(7);
    for (std::int64_t i = 0; i < f.size(); ++i) {
      f.flat()[static_cast<std::size_t>(i)] =
          rng.uniform_at(static_cast<std::uint64_t>(i), -1, 1);
    }
    return f;
  }();

  if (depth == 0) {
    // Adaptive: the same rule DistGcnLayer applies to its local shard —
    // fastest block's SpMM time vs the (uniform) per-block ring time.
    const auto bounds = plexus::sparse::block_bounds(adj.rows(), kBlocks);
    plexus::comm::World probe(ranks);
    double t_spmm_min = 0.0;
    for (int k = 0; k < kBlocks; ++k) {
      const std::int64_t b0 = bounds[static_cast<std::size_t>(k)];
      const std::int64_t b1 = bounds[static_cast<std::size_t>(k) + 1];
      const plexus::sim::SpmmShape shape{adj.range_nnz(b0, b1), b1 - b0, adj.cols(), kCols};
      const double t = plexus::sim::spmm_time(plexus::sim::Machine::test_machine(), shape);
      t_spmm_min = k == 0 ? t : std::min(t_spmm_min, t);
    }
    const std::int64_t block_bytes = 4 * (bounds[1] - bounds[0]) * kCols;
    const double t_ring = plexus::comm::collective_time(
        plexus::comm::Collective::AllReduce, block_bytes, ranks, probe.group(0).link);
    depth = plexus::comm::choose_pipeline_depth(t_spmm_min, t_ring, kBlocks);
    state.counters["adaptive_depth"] =
        benchmark::Counter(static_cast<double>(depth), benchmark::Counter::kDefaults);
  }

  double exposed = 0.0, hidden = 0.0, total = 0.0;
  for (auto _ : state) {
    plexus::comm::World world(ranks);
    std::vector<double> rank_exposed(static_cast<std::size_t>(ranks), 0.0);
    std::vector<double> rank_hidden(static_cast<std::size_t>(ranks), 0.0);
    std::vector<double> rank_clock(static_cast<std::size_t>(ranks), 0.0);
    plexus::sim::run_cluster(
        world, plexus::sim::Machine::test_machine(),
        [&](plexus::sim::RankContext& ctx) {
          const auto gid = ctx.comm.world().world_group();
          const auto bounds = plexus::sparse::block_bounds(adj.rows(), kBlocks);
          plexus::dense::Matrix h(adj.rows(), kCols);
          std::deque<plexus::comm::CommHandle> inflight;
          for (int k = 0; k < kBlocks; ++k) {
            const std::int64_t b0 = bounds[static_cast<std::size_t>(k)];
            const std::int64_t b1 = bounds[static_cast<std::size_t>(k) + 1];
            plexus::sparse::spmm_rows(adj, feats, h, b0, b1);
            const plexus::sim::SpmmShape shape{adj.range_nnz(b0, b1), b1 - b0, adj.cols(), kCols};
            ctx.comm.charge_compute(plexus::sim::spmm_time(*ctx.machine, shape));
            std::span<float> blk{h.row(b0), static_cast<std::size_t>((b1 - b0) * kCols)};
            inflight.push_back(ctx.comm.iall_reduce_sum<float>(gid, blk));
            while (static_cast<int>(inflight.size()) >= depth) {
              inflight.front().wait();
              inflight.pop_front();
            }
          }
          while (!inflight.empty()) {
            inflight.front().wait();
            inflight.pop_front();
          }
          benchmark::DoNotOptimize(h.data());
          rank_exposed[static_cast<std::size_t>(ctx.rank())] =
              ctx.comm.stats().total_seconds();
          rank_hidden[static_cast<std::size_t>(ctx.rank())] =
              ctx.comm.stats().total_hidden_seconds();
          rank_clock[static_cast<std::size_t>(ctx.rank())] = ctx.clock.time();
        },
        /*enable_clock=*/true);
    exposed = *std::max_element(rank_exposed.begin(), rank_exposed.end());
    hidden = *std::max_element(rank_hidden.begin(), rank_hidden.end());
    total = *std::max_element(rank_clock.begin(), rank_clock.end());
  }
  state.counters["sim_exposed_comm_s"] =
      benchmark::Counter(exposed, benchmark::Counter::kDefaults);
  state.counters["sim_hidden_comm_s"] = benchmark::Counter(hidden, benchmark::Counter::kDefaults);
  state.counters["sim_total_s"] = benchmark::Counter(total, benchmark::Counter::kDefaults);
}
BENCHMARK(BM_BlockedAggregation)
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({4, 0})  // adaptive
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({8, 0})  // adaptive
    ->Unit(benchmark::kMillisecond);

/// Sparse-vs-dense aggregation wire bytes on a low-density RMAT graph,
/// through the full trainer (the deliverable the `sparse` strategy ships:
/// fewer bytes on the simulated links for the same bitwise losses). Runs one
/// steady-state epoch per strategy — epoch 0 pays the one-time sparse plan
/// build and is excluded — and reports `sparse_bytes_ratio` =
/// sparse wire bytes / dense wire bytes, which CI's perf-smoke job gates
/// below a threshold. Uses max(PLEXUS_BENCH_RMAT_SCALE, 16): at scale 16+
/// with average degree ~4 most aggregation rows have no local nonzeros on a
/// multi-rank P group. Deterministic (post-time byte accounting, fixed
/// seeds), hence Iterations(1).
void BM_BlockedAggregationSparseBytes(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int scale = std::max(rmat_scale(), 16);
  static const plexus::graph::Graph g = [scale] {
    const std::int64_t nodes = std::int64_t{1} << scale;
    plexus::graph::Graph built;
    built.name = "rmat-lowdensity";
    built.num_nodes = nodes;
    built.num_classes = 8;
    built.edges = plexus::graph::rmat(scale, nodes * 2, 0.57, 0.19, 0.19, 0.05, /*seed=*/42);
    built.features = plexus::dense::Matrix(nodes, 32);
    plexus::util::CounterRng rng(11);
    for (std::int64_t i = 0; i < built.features.size(); ++i) {
      built.features.flat()[static_cast<std::size_t>(i)] =
          rng.uniform_at(static_cast<std::uint64_t>(i), -1, 1);
    }
    built.labels.resize(static_cast<std::size_t>(nodes));
    for (std::int64_t v = 0; v < nodes; ++v) {
      built.labels[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(v % 8);
    }
    built.train_mask.assign(static_cast<std::size_t>(nodes), 1);
    built.val_mask.assign(static_cast<std::size_t>(nodes), 0);
    built.test_mask.assign(static_cast<std::size_t>(nodes), 0);
    return built;
  }();

  double dense_bytes = 0.0, sparse_bytes = 0.0;
  for (auto _ : state) {
    plexus::core::TrainOptions opt;
    opt.grid = {ranks, 1, 1};  // layer-0 forward aggregates over a P group of `ranks`
    opt.machine = &plexus::sim::Machine::test_machine();
    opt.model.hidden_dims = {32};
    opt.model.options.agg_row_blocks = 8;
    opt.epochs = 2;
    opt.aggregation = plexus::core::Aggregation::Dense;
    const auto dense = plexus::core::train_plexus(g, opt);
    opt.aggregation = plexus::core::Aggregation::Sparse;
    const auto sparse = plexus::core::train_plexus(g, opt);
    dense_bytes = dense.epochs.back().comm_wire_bytes;
    sparse_bytes = sparse.epochs.back().comm_wire_bytes;
  }
  state.counters["dense_wire_mb"] =
      benchmark::Counter(dense_bytes / 1e6, benchmark::Counter::kDefaults);
  state.counters["sparse_wire_mb"] =
      benchmark::Counter(sparse_bytes / 1e6, benchmark::Counter::kDefaults);
  state.counters["sparse_bytes_ratio"] =
      benchmark::Counter(dense_bytes > 0.0 ? sparse_bytes / dense_bytes : 1.0,
                         benchmark::Counter::kDefaults);
}
BENCHMARK(BM_BlockedAggregationSparseBytes)
    ->Args({4})
    ->Args({8})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// Float wire bytes of a short training run under the bf16 wire format vs
/// the fp32 default, through the full trainer (same graph, same grid, same
/// seeds — only TrainOptions::wire differs). Reports `wire_bytes_ratio` =
/// bf16 wire bytes / fp32 wire bytes, which CI's perf-smoke job gates at
/// <= 0.55 (the measured value is exactly 0.5: every payload this workload
/// ships is fp32 and packs 2 bytes/float on the wire). Deterministic
/// (post-time byte accounting), hence Iterations(1).
void BM_Bf16WireBytes(benchmark::State& state) {
  static const plexus::graph::Graph g = [] {
    constexpr int kScale = 12;
    const std::int64_t nodes = std::int64_t{1} << kScale;
    plexus::graph::Graph built;
    built.name = "rmat-bf16wire";
    built.num_nodes = nodes;
    built.num_classes = 8;
    built.edges = plexus::graph::rmat(kScale, nodes * 4, 0.57, 0.19, 0.19, 0.05, /*seed=*/42);
    built.features = plexus::dense::Matrix(nodes, 32);
    plexus::util::CounterRng rng(11);
    for (std::int64_t i = 0; i < built.features.size(); ++i) {
      built.features.flat()[static_cast<std::size_t>(i)] =
          rng.uniform_at(static_cast<std::uint64_t>(i), -1, 1);
    }
    built.labels.resize(static_cast<std::size_t>(nodes));
    for (std::int64_t v = 0; v < nodes; ++v) {
      built.labels[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(v % 8);
    }
    built.train_mask.assign(static_cast<std::size_t>(nodes), 1);
    built.val_mask.assign(static_cast<std::size_t>(nodes), 0);
    built.test_mask.assign(static_cast<std::size_t>(nodes), 0);
    return built;
  }();

  double fp32_bytes = 0.0, bf16_bytes = 0.0;
  for (auto _ : state) {
    plexus::core::TrainOptions opt;
    opt.grid = {2, 1, 2};
    opt.machine = &plexus::sim::Machine::test_machine();
    opt.model.hidden_dims = {32};
    opt.epochs = 2;
    opt.wire = plexus::comm::WirePrecision::Fp32;
    const auto fp32 = plexus::core::train_plexus(g, opt);
    opt.wire = plexus::comm::WirePrecision::Bf16;
    const auto bf16 = plexus::core::train_plexus(g, opt);
    fp32_bytes = fp32.epochs.back().comm_wire_bytes;
    bf16_bytes = bf16.epochs.back().comm_wire_bytes;
  }
  state.counters["fp32_wire_mb"] =
      benchmark::Counter(fp32_bytes / 1e6, benchmark::Counter::kDefaults);
  state.counters["bf16_wire_mb"] =
      benchmark::Counter(bf16_bytes / 1e6, benchmark::Counter::kDefaults);
  state.counters["wire_bytes_ratio"] =
      benchmark::Counter(fp32_bytes > 0.0 ? bf16_bytes / fp32_bytes : 1.0,
                         benchmark::Counter::kDefaults);
}
BENCHMARK(BM_Bf16WireBytes)->Unit(benchmark::kMillisecond)->Iterations(1);

/// Wall-clock effect of per-group comm channels: a 2x2 grid where every rank
/// posts one all-reduce on its *row* line and one on its *column* line
/// (GroupIds 1-4), then waits both. With one channel the two collectives
/// serialise on the rank's single comm thread; with a budget of 4 every line
/// group gets its own channel and the row/column collectives really execute
/// concurrently. `state.range(0)` is the channel budget.
void BM_DisjointGroupChannels(benchmark::State& state) {
  plexus::comm::ScopedCommThreads scoped(static_cast<int>(state.range(0)));
  const auto elems = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    plexus::comm::World world(4);
    const auto row0 = world.create_group({0, 1});
    const auto row1 = world.create_group({2, 3});
    const auto col0 = world.create_group({0, 2});
    const auto col1 = world.create_group({1, 3});
    plexus::sim::run_cluster(
        world, plexus::sim::Machine::test_machine(),
        [&](plexus::sim::RankContext& ctx) {
          const auto row = ctx.rank() < 2 ? row0 : row1;
          const auto col = ctx.rank() % 2 == 0 ? col0 : col1;
          std::vector<float> a(elems, 1.0f);
          std::vector<float> b(elems, 2.0f);
          for (int i = 0; i < 8; ++i) {
            auto hr = ctx.comm.iall_reduce_sum<float>(row, a);
            auto hc = ctx.comm.iall_reduce_sum<float>(col, b);
            hr.wait();
            hc.wait();
          }
          benchmark::DoNotOptimize(a[0]);
          benchmark::DoNotOptimize(b[0]);
        },
        /*enable_clock=*/false);
  }
  state.SetBytesProcessed(state.iterations() * 8 * 2 * static_cast<std::int64_t>(elems) * 4 * 4);
}
BENCHMARK(BM_DisjointGroupChannels)
    ->Args({1, 1 << 14})
    ->Args({4, 1 << 14})
    ->Unit(benchmark::kMillisecond);

/// Real wall-clock overlap: the comm engine reduces one buffer while the
/// posting thread sums another. Compares against the same work serialised.
void BM_IAllReduceComputeOverlap(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto elems = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    plexus::comm::World world(ranks);
    plexus::sim::run_cluster(
        world, plexus::sim::Machine::test_machine(),
        [&](plexus::sim::RankContext& ctx) {
          std::vector<float> comm_buf(elems, 1.0f);
          std::vector<float> local(elems, 2.0f);
          for (int i = 0; i < 8; ++i) {
            auto h = ctx.comm.iall_reduce_sum<float>(ctx.comm.world().world_group(), comm_buf);
            float acc = 0.0f;  // independent compute while the engine reduces
            for (const float v : local) acc += v;
            benchmark::DoNotOptimize(acc);
            h.wait();
          }
          benchmark::DoNotOptimize(comm_buf[0]);
        },
        /*enable_clock=*/false);
  }
  state.SetBytesProcessed(state.iterations() * 8 * static_cast<std::int64_t>(elems) * 4 * ranks);
}
BENCHMARK(BM_IAllReduceComputeOverlap)->Args({4, 1 << 14})->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
