// Planning a billion-edge full-graph training run (the paper's headline
// scenario): for ogbn-papers100M (1.6B edges) at 512-2048 GPUs on both
// machines, pick the best 3D configuration, predict the epoch breakdown, and
// estimate the per-GPU memory footprint that makes full-graph training
// feasible at this scale. Finishes with a sharded-file write/load round trip
// on a proxy, the workflow a real deployment would use (section 5.4).
#include <cstdio>
#include <filesystem>

#include "graph/datasets.hpp"
#include "loader/shard_io.hpp"
#include "perfmodel/perfmodel.hpp"
#include "sim/machine.hpp"
#include "sparse/csr.hpp"
#include "util/table.hpp"

namespace {

/// Rough per-GPU bytes: adjacency shards (3 planes x 2 permutations, CSR +
/// transpose), feature/activation blocks (fwd + bwd), weights + Adam.
double per_gpu_bytes(const plexus::perf::WorkloadStats& w, const plexus::sim::GridShape& g) {
  const double n = static_cast<double>(w.num_nodes);
  const double nnz = static_cast<double>(w.num_nonzeros);
  const double gpus = static_cast<double>(g.size());
  double dims_sum = 0.0;
  for (const auto d : w.layer_dims) dims_sum += static_cast<double>(d);
  const double adj = 6.0 * 2.0 * (nnz / gpus) * 12.0;           // shards + transposes
  const double acts = 4.0 * (n * dims_sum / gpus) * 4.0;        // H, Q, F, grads per layer
  const double feats = 4.0 * (n * static_cast<double>(w.layer_dims[0]) / gpus) * 4.0;  // +Adam
  return adj + acts + feats;
}

}  // namespace

int main() {
  using plexus::util::Table;
  namespace pp = plexus::perf;

  const auto& info = plexus::graph::dataset_info("ogbn-papers100M");
  const auto w = pp::WorkloadStats::from_dataset(info);
  std::printf("planning full-graph training of %s: %lld nodes, %lld edges\n", info.name.c_str(),
              static_cast<long long>(info.num_nodes), static_cast<long long>(info.num_edges));

  Table t({"Machine", "#GPUs", "Config", "SpMM (ms)", "Comm (ms)", "Total (ms)",
           "Mem/GPU (GB)"});
  for (const auto* m :
       {&plexus::sim::Machine::perlmutter_a100(), &plexus::sim::Machine::frontier_mi250x_gcd()}) {
    for (const int gpus : {512, 1024, 2048}) {
      const auto grid = pp::best_configuration(*m, w, gpus);
      const auto e = pp::predict_epoch(*m, w, grid);
      t.add_row({m->name, std::to_string(gpus), pp::grid_to_string(grid),
                 Table::fmt(e.spmm_seconds * 1e3, 1), Table::fmt(e.comm_seconds * 1e3, 1),
                 Table::fmt(e.total() * 1e3, 1),
                 Table::fmt(per_gpu_bytes(w, grid) / 1e9, 2)});
    }
  }
  t.print();
  std::printf("\n(40 GB A100s need >= 512 GPUs for the full graph — the paper uses 80 GB nodes "
              "for its 64/128-GPU papers100M points.)\n");

  // Deployment workflow: write the (proxy) dataset as 2D shard files once,
  // then each rank loads only its window (section 5.4).
  const auto proxy = plexus::graph::make_proxy(info, 30'000, 11);
  const auto adj = plexus::sparse::normalize_adjacency(proxy.adjacency(), proxy.num_nodes);
  const auto dir = std::filesystem::temp_directory_path() / "plexus_planner_demo";
  std::filesystem::remove_all(dir);
  plexus::io::write_sharded_dataset(dir.string(), adj, proxy.features, proxy.labels,
                                    proxy.num_classes, 8, 8);
  plexus::io::LoadStats stats;
  const auto shard = plexus::io::load_adjacency_block(dir.string(), 0, adj.rows() / 8, 0,
                                                      adj.cols() / 8, &stats);
  std::printf("\nsharded-file round trip (proxy): rank 0 loaded its %lld x %lld window "
              "(%lld nnz) reading %.1f%% of the dataset bytes\n",
              static_cast<long long>(shard.rows()), static_cast<long long>(shard.cols()),
              static_cast<long long>(shard.nnz()),
              100.0 * static_cast<double>(stats.bytes_read) /
                  static_cast<double>(12 * adj.nnz() + 4 * proxy.features.size()));
  std::filesystem::remove_all(dir);
  return 0;
}
