// Unit tests for dense: matrix container, GEMM transpose modes, NN ops, Adam.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "dense/gemm.hpp"
#include "dense/matrix.hpp"
#include "dense/ops.hpp"
#include "dense/optim.hpp"
#include "util/rng.hpp"

namespace pd = plexus::dense;

namespace {

pd::Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  plexus::util::CounterRng rng(seed);
  pd::Matrix m(r, c);
  for (std::int64_t i = 0; i < r; ++i) {
    for (std::int64_t j = 0; j < c; ++j) {
      m.at(i, j) = rng.uniform_at(static_cast<std::uint64_t>(i * c + j), -1.0f, 1.0f);
    }
  }
  return m;
}

/// Naive triple loop reference for op(A) * op(B).
pd::Matrix naive_matmul(const pd::Matrix& a, const pd::Matrix& b, pd::Trans ta, pd::Trans tb) {
  const auto m = pd::op_rows(a, ta);
  const auto k = pd::op_cols(a, ta);
  const auto n = pd::op_cols(b, tb);
  pd::Matrix c(m, n);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = ta == pd::Trans::N ? a.at(i, kk) : a.at(kk, i);
        const float bv = tb == pd::Trans::N ? b.at(kk, j) : b.at(j, kk);
        acc += av * bv;
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

}  // namespace

TEST(Matrix, BlockAndSetBlockRoundTrip) {
  const auto m = random_matrix(6, 5, 1);
  const auto blk = m.block(1, 4, 2, 5);
  EXPECT_EQ(blk.rows(), 3);
  EXPECT_EQ(blk.cols(), 3);
  EXPECT_EQ(blk.at(0, 0), m.at(1, 2));
  pd::Matrix copy(6, 5);
  copy.set_block(1, 2, blk);
  EXPECT_EQ(copy.at(3, 4), m.at(3, 4));
  EXPECT_EQ(copy.at(0, 0), 0.0f);
}

TEST(Matrix, TransposeInvolution) {
  const auto m = random_matrix(4, 7, 2);
  EXPECT_EQ(pd::Matrix::max_abs_diff(m.transposed().transposed(), m), 0.0f);
}

TEST(Matrix, GlorotDeterministicAcrossShardings) {
  // The (2, 3) element of the global matrix must be identical whether we
  // materialise the whole matrix or just the shard containing it.
  const auto full = pd::Matrix::glorot(8, 6, 77, 8, 6);
  const auto shard = pd::Matrix::glorot(4, 3, 77, 8, 6, /*row_off=*/2, /*col_off=*/3,
                                        /*global_cols=*/6);
  EXPECT_EQ(shard.at(0, 0), full.at(2, 3));
  EXPECT_EQ(shard.at(3, 2), full.at(5, 5));
}

TEST(Matrix, GlorotWithinLimit) {
  const auto m = pd::Matrix::glorot(20, 20, 3, 20, 20);
  const float limit = std::sqrt(6.0f / 40.0f);
  for (const float v : m.flat()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

using GemmCase = std::tuple<int, int, int, pd::Trans, pd::Trans>;

class GemmModes : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmModes, MatchesNaiveReference) {
  const auto [m, n, k, ta, tb] = GetParam();
  const auto a_rows = ta == pd::Trans::N ? m : k;
  const auto a_cols = ta == pd::Trans::N ? k : m;
  const auto b_rows = tb == pd::Trans::N ? k : n;
  const auto b_cols = tb == pd::Trans::N ? n : k;
  const auto a = random_matrix(a_rows, a_cols, 10);
  const auto b = random_matrix(b_rows, b_cols, 11);
  const auto got = pd::matmul(a, b, ta, tb);
  const auto want = naive_matmul(a, b, ta, tb);
  EXPECT_LT(pd::Matrix::max_abs_diff(got, want), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmModes,
    ::testing::Values(GemmCase{5, 7, 3, pd::Trans::N, pd::Trans::N},
                      GemmCase{5, 7, 3, pd::Trans::T, pd::Trans::N},
                      GemmCase{5, 7, 3, pd::Trans::N, pd::Trans::T},
                      GemmCase{5, 7, 3, pd::Trans::T, pd::Trans::T},
                      GemmCase{1, 1, 1, pd::Trans::N, pd::Trans::N},
                      GemmCase{64, 96, 130, pd::Trans::N, pd::Trans::N},
                      GemmCase{130, 32, 64, pd::Trans::T, pd::Trans::N},
                      GemmCase{17, 130, 65, pd::Trans::N, pd::Trans::T}));

TEST(Gemm, AlphaBetaAccumulate) {
  const auto a = random_matrix(4, 3, 20);
  const auto b = random_matrix(3, 5, 21);
  auto c = random_matrix(4, 5, 22);
  auto expect = c;
  const auto ab = naive_matmul(a, b, pd::Trans::N, pd::Trans::N);
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      expect.at(i, j) = 2.0f * ab.at(i, j) + 0.5f * expect.at(i, j);
    }
  }
  pd::gemm(pd::Trans::N, pd::Trans::N, 2.0f, a, b, 0.5f, c);
  EXPECT_LT(pd::Matrix::max_abs_diff(c, expect), 1e-4f);
}

TEST(Gemm, GradWReversedOrderEquivalence) {
  // Section 5.3 rewrite: SGEMM(H^T, dQ) == (SGEMM(dQ^T, H))^T.
  const auto h = random_matrix(9, 4, 30);
  const auto dq = random_matrix(9, 6, 31);
  const auto direct = pd::matmul(h, dq, pd::Trans::T, pd::Trans::N);
  const auto reversed = pd::matmul(dq, h, pd::Trans::T, pd::Trans::N).transposed();
  EXPECT_LT(pd::Matrix::max_abs_diff(direct, reversed), 1e-4f);
}

TEST(Ops, ReluForwardBackward) {
  pd::Matrix x(1, 4);
  x.at(0, 0) = -1.0f;
  x.at(0, 1) = 0.0f;
  x.at(0, 2) = 2.0f;
  x.at(0, 3) = -0.5f;
  const auto y = pd::relu(x);
  EXPECT_EQ(y.at(0, 0), 0.0f);
  EXPECT_EQ(y.at(0, 2), 2.0f);

  pd::Matrix dy(1, 4, 1.0f);
  pd::Matrix dx(1, 4);
  pd::relu_backward(x, dy, dx);
  EXPECT_EQ(dx.at(0, 0), 0.0f);
  EXPECT_EQ(dx.at(0, 1), 0.0f);  // gradient 0 at non-positive pre-activation
  EXPECT_EQ(dx.at(0, 2), 1.0f);
}

TEST(Ops, SoftmaxCrossEntropyValuesAndMask) {
  pd::Matrix logits(2, 3);
  logits.at(0, 0) = 1.0f;
  logits.at(0, 1) = 2.0f;
  logits.at(0, 2) = 3.0f;
  logits.at(1, 0) = 0.0f;
  logits.at(1, 1) = 0.0f;
  logits.at(1, 2) = 0.0f;
  const std::vector<std::int32_t> labels{2, 0};
  pd::Matrix grad(2, 3);

  // Only row 0 masked in.
  const auto res =
      pd::softmax_cross_entropy(logits, labels, {1, 0}, /*norm=*/1.0, &grad);
  EXPECT_EQ(res.count, 1);
  EXPECT_EQ(res.correct, 1);
  const double expected =
      -std::log(std::exp(3.0) / (std::exp(1.0) + std::exp(2.0) + std::exp(3.0)));
  EXPECT_NEAR(res.loss_sum, expected, 1e-5);
  EXPECT_EQ(grad.at(1, 0), 0.0f);  // masked row has zero gradient
}

TEST(Ops, SoftmaxCrossEntropyGradMatchesFiniteDifference) {
  auto logits = random_matrix(3, 4, 40);
  const std::vector<std::int32_t> labels{1, 3, 0};
  const std::vector<std::uint8_t> mask{1, 1, 1};
  pd::Matrix grad(3, 4);
  pd::softmax_cross_entropy(logits, labels, mask, /*norm=*/3.0, &grad);

  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      auto perturbed = logits;
      perturbed.at(i, j) += eps;
      const auto up = pd::softmax_cross_entropy(perturbed, labels, mask, 3.0, nullptr);
      perturbed.at(i, j) -= 2 * eps;
      const auto dn = pd::softmax_cross_entropy(perturbed, labels, mask, 3.0, nullptr);
      const double fd = (up.loss_sum - dn.loss_sum) / (2.0 * eps) / 3.0;
      EXPECT_NEAR(grad.at(i, j), fd, 2e-3) << "at (" << i << "," << j << ")";
    }
  }
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimise f(x) = sum (x - 3)^2 elementwise.
  std::vector<float> x(8, 0.0f);
  pd::AdamConfig cfg;
  cfg.lr = 0.1f;
  pd::Adam opt(x.size(), cfg);
  std::vector<float> g(8);
  for (int step = 0; step < 500; ++step) {
    for (std::size_t i = 0; i < x.size(); ++i) g[i] = 2.0f * (x[i] - 3.0f);
    opt.step(x, g);
  }
  for (const float v : x) EXPECT_NEAR(v, 3.0f, 1e-2f);
}

TEST(Adam, FirstStepIsSignedLearningRate) {
  // With bias correction, the first Adam step is ~ -lr * sign(g).
  std::vector<float> x{0.0f, 0.0f};
  pd::AdamConfig cfg;
  cfg.lr = 0.05f;
  pd::Adam opt(2, cfg);
  std::vector<float> g{0.3f, -2.0f};
  opt.step(x, g);
  EXPECT_NEAR(x[0], -0.05f, 1e-4f);
  EXPECT_NEAR(x[1], 0.05f, 1e-4f);
}

TEST(Adam, ShardedUpdateMatchesFullUpdate) {
  // Elementwise property the distributed validation relies on: updating two
  // halves with separate Adam instances equals updating the concatenation.
  std::vector<float> full{1.0f, -2.0f, 0.5f, 4.0f};
  std::vector<float> gfull{0.1f, 0.2f, -0.3f, 0.4f};
  pd::Adam opt_full(4, {});
  opt_full.step(full, gfull);

  std::vector<float> lo{1.0f, -2.0f};
  std::vector<float> hi{0.5f, 4.0f};
  pd::Adam opt_lo(2, {});
  pd::Adam opt_hi(2, {});
  opt_lo.step(lo, std::vector<float>{0.1f, 0.2f});
  opt_hi.step(hi, std::vector<float>{-0.3f, 0.4f});
  EXPECT_EQ(lo[0], full[0]);
  EXPECT_EQ(lo[1], full[1]);
  EXPECT_EQ(hi[0], full[2]);
  EXPECT_EQ(hi[1], full[3]);
}
