// Serving micro-benchmark: sustained QPS and latency percentiles of the
// serve/ inference stack (ServedModel cached logits + InferenceServer
// admission queue and batcher) under a Zipfian request mix.
//
//   ./build/bench/micro_serve                         # self-trains a checkpoint
//   ./build/bench/micro_serve --checkpoint=/tmp/ckpt  # reuse / create there
//   ./build/bench/micro_serve --out=micro_serve.json  # perf-smoke gate input
//
// Unlike micro_collectives/micro_kernels this harness does not need the
// Google Benchmark library — the measured quantities (wall-clock QPS,
// latency percentiles from the server's own counters) are produced by the
// serving stack itself, so the driver only has to run the load and write a
// google-benchmark-compatible JSON report that tools/perf_smoke_check.py
// already knows how to read.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "serve/inference_server.hpp"
#include "serve/served_model.hpp"
#include "serve/zipf.hpp"
#include "util/arg_parser.hpp"

namespace {

// Train a small proxy model and checkpoint it to `dir` (skipped when the
// directory already holds a model.plx, so repeated bench runs are cheap).
void ensure_checkpoint(const std::string& dir, std::int64_t nodes, int epochs) {
  if (std::FILE* f = std::fopen((dir + "/model.plx").c_str(), "rb")) {
    std::fclose(f);
    std::printf("reusing checkpoint %s\n", dir.c_str());
    return;
  }
  std::printf("training %d-epoch proxy checkpoint into %s ...\n", epochs, dir.c_str());
  const auto g = plexus::bench::bench_proxy("ogbn-products", nodes);
  plexus::core::TrainOptions opt;
  opt.grid = {2, 1, 2};
  opt.model.hidden_dims = {64, 64};
  opt.epochs = epochs;
  opt.checkpoint_dir = dir;
  plexus::core::train_plexus(g, opt);
}

struct ServeRun {
  double qps = 0.0;
  plexus::serve::ServeStats stats;
};

ServeRun run_load(const plexus::serve::ServedModel& model, std::int64_t queries, double zipf,
                  const plexus::serve::ServeOptions& sopt) {
  plexus::serve::InferenceServer server(model, sopt);
  plexus::serve::ZipfSampler sampler(model.num_nodes(), zipf, 0xbe7c5);
  std::vector<std::future<plexus::serve::Prediction>> futures;
  futures.reserve(static_cast<std::size_t>(queries));
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < queries; ++i) {
    auto fut = server.submit(sampler.next());
    if (fut.has_value()) futures.push_back(std::move(*fut));
  }
  for (auto& f : futures) f.get();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  server.stop();
  ServeRun run;
  run.stats = server.stats();
  run.qps = secs > 0 ? static_cast<double>(run.stats.served) / secs : 0.0;
  return run;
}

void write_report(const std::string& path, const ServeRun& run, std::int64_t queries,
                  double zipf) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_serve: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  // Minimal google-benchmark JSON shape: one non-aggregate benchmark entry
  // whose extra fields act as counters, matching what perf_smoke_check.py's
  // load_counters() expects.
  std::fprintf(f, "{\n  \"benchmarks\": [\n    {\n");
  std::fprintf(f, "      \"name\": \"BM_ServeZipf\",\n");
  std::fprintf(f, "      \"run_type\": \"iteration\",\n");
  std::fprintf(f, "      \"queries\": %lld,\n", static_cast<long long>(queries));
  std::fprintf(f, "      \"zipf\": %.4f,\n", zipf);
  std::fprintf(f, "      \"served\": %lld,\n", static_cast<long long>(run.stats.served));
  std::fprintf(f, "      \"rejected\": %lld,\n", static_cast<long long>(run.stats.rejected));
  std::fprintf(f, "      \"batches\": %lld,\n", static_cast<long long>(run.stats.batches));
  std::fprintf(f, "      \"qps\": %.3f,\n", run.qps);
  std::fprintf(f, "      \"mean_us\": %.3f,\n", run.stats.mean_latency_us);
  std::fprintf(f, "      \"p50_us\": %.3f,\n", run.stats.p50_latency_us);
  std::fprintf(f, "      \"p99_us\": %.3f\n", run.stats.p99_latency_us);
  std::fprintf(f, "    }\n  ]\n}\n");
  std::fclose(f);
  std::printf("report written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using plexus::util::ArgParser;
  ArgParser args("micro_serve", "Measure serving QPS and latency under a Zipfian query mix.");
  args.add_flag("checkpoint", "dir", "checkpoint directory (trained here if absent)",
                "micro_serve_ckpt");
  args.add_flag("nodes", "n", "proxy size when self-training", "600");
  args.add_flag("train-epochs", "n", "epochs when self-training", "3");
  args.add_flag("queries", "n", "Zipfian queries per measurement", "20000");
  args.add_flag("zipf", "s", "Zipf exponent of the request mix (0 = uniform)", "0.99");
  args.add_flag("max-batch", "n", "batcher batch bound", "64");
  args.add_flag("max-wait-us", "us", "batcher linger", "200");
  args.add_flag("out", "path", "write a google-benchmark JSON report here");

  switch (args.parse(argc, argv)) {
    case ArgParser::Status::Help: std::fputs(args.usage().c_str(), stdout); return 0;
    case ArgParser::Status::Error:
      std::fprintf(stderr, "micro_serve: %s\n%s", args.error().c_str(), args.usage().c_str());
      return 1;
    case ArgParser::Status::Ok: break;
  }
  std::int64_t nodes = 0, queries = 0, max_wait_us = 0;
  int train_epochs = 0, max_batch = 0;
  if (!args.value_int64("nodes", nodes) || nodes < 1 ||
      !args.value_int("train-epochs", train_epochs) || train_epochs < 1 ||
      !args.value_int64("queries", queries) || queries < 1 ||
      !args.value_int("max-batch", max_batch) || max_batch < 1 ||
      !args.value_int64("max-wait-us", max_wait_us) || max_wait_us < 0) {
    std::fprintf(stderr, "micro_serve: bad numeric option\n%s", args.usage().c_str());
    return 1;
  }
  double zipf = 0.0;
  try {
    zipf = std::stod(args.value("zipf"));
  } catch (...) {
    std::fprintf(stderr, "micro_serve: bad --zipf '%s'\n", args.value("zipf").c_str());
    return 1;
  }

  plexus::bench::banner("micro_serve: inference QPS / latency under Zipfian load",
                        "serving extension (not a paper figure)");
  const std::string dir = args.value("checkpoint");
  ensure_checkpoint(dir, nodes, train_epochs);

  const plexus::serve::ServedModel model(dir);
  std::printf("serving %lld nodes, %lld classes, %d layers\n",
              static_cast<long long>(model.num_nodes()),
              static_cast<long long>(model.num_classes()), model.num_layers());

  plexus::serve::ServeOptions sopt;
  sopt.max_batch = max_batch;
  sopt.max_wait_us = max_wait_us;
  // This is an open-loop throughput measurement: the submit loop runs far
  // ahead of the batcher, so admit the whole run instead of shedding load
  // (the admission bound is exercised by tests/test_serve.cpp, not here).
  sopt.max_queue = static_cast<int>(std::min<std::int64_t>(queries, 1 << 30));

  // Warm-up pass (thread pool spin-up, page-in), then the measured run.
  run_load(model, std::min<std::int64_t>(queries, 2000), zipf, sopt);
  const ServeRun run = run_load(model, queries, zipf, sopt);

  std::printf("\n%lld queries (zipf %.2f): %.0f QPS, latency mean %.1f us, p50 %.1f us, "
              "p99 %.1f us, %lld batches (max batch %lld, max queue depth %lld)\n",
              static_cast<long long>(run.stats.served), zipf, run.qps,
              run.stats.mean_latency_us, run.stats.p50_latency_us, run.stats.p99_latency_us,
              static_cast<long long>(run.stats.batches),
              static_cast<long long>(run.stats.max_batch_size),
              static_cast<long long>(run.stats.max_queue_depth));

  if (args.is_set("out")) write_report(args.value("out"), run, queries, zipf);
  return 0;
}
