#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace plexus::graph {

sparse::Csr Graph::adjacency() const { return sparse::Csr::from_coo(edges, false); }

std::vector<std::int64_t> Graph::degrees() const {
  std::vector<std::int64_t> deg(static_cast<std::size_t>(num_nodes), 0);
  for (std::int64_t i = 0; i < edges.nnz(); ++i) {
    deg[static_cast<std::size_t>(edges.rows[static_cast<std::size_t>(i)])]++;
  }
  return deg;
}

std::int64_t Graph::train_count() const {
  std::int64_t c = 0;
  for (const auto m : train_mask) c += m != 0 ? 1 : 0;
  return c;
}

void Graph::validate() const {
  PLEXUS_CHECK(features.rows() == num_nodes, "features rows != num_nodes");
  PLEXUS_CHECK(static_cast<std::int64_t>(labels.size()) == num_nodes, "labels size");
  PLEXUS_CHECK(static_cast<std::int64_t>(train_mask.size()) == num_nodes, "train_mask size");
  PLEXUS_CHECK(static_cast<std::int64_t>(val_mask.size()) == num_nodes, "val_mask size");
  PLEXUS_CHECK(static_cast<std::int64_t>(test_mask.size()) == num_nodes, "test_mask size");
  for (const auto l : labels) {
    PLEXUS_CHECK(l >= 0 && l < num_classes, "label out of range");
  }
  for (std::int64_t i = 0; i < edges.nnz(); ++i) {
    const auto r = edges.rows[static_cast<std::size_t>(i)];
    const auto c = edges.cols[static_cast<std::size_t>(i)];
    PLEXUS_CHECK(r >= 0 && r < num_nodes && c >= 0 && c < num_nodes, "edge out of range");
    PLEXUS_CHECK(r != c, "self loop in raw edge list");
  }
}

dense::Matrix synthetic_features(std::int64_t num_nodes, std::int64_t dim,
                                 const std::vector<std::int32_t>& labels, float label_signal,
                                 std::uint64_t seed) {
  util::CounterRng rng(util::hash_combine(seed, 0xfea7));
  dense::Matrix f(num_nodes, dim);
  for (std::int64_t i = 0; i < num_nodes; ++i) {
    float* row = f.row(i);
    for (std::int64_t k = 0; k < dim; ++k) {
      row[k] = rng.uniform_at(static_cast<std::uint64_t>(i * dim + k), -1.0f, 1.0f);
    }
    if (label_signal != 0.0f && !labels.empty()) {
      row[labels[static_cast<std::size_t>(i)] % dim] += label_signal;
    }
  }
  return f;
}

std::vector<std::int32_t> degree_based_labels(const std::vector<std::int64_t>& degrees,
                                              std::int64_t num_classes, std::uint64_t seed) {
  util::CounterRng rng(util::hash_combine(seed, 0x1abe1));
  std::vector<std::int32_t> labels(degrees.size());
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    const double jitter = rng.uniform_at(static_cast<std::uint64_t>(i)) * 1.5;
    const double v = std::log2(static_cast<double>(degrees[i]) + 1.0) + jitter;
    labels[i] = static_cast<std::int32_t>(
        std::min<std::int64_t>(num_classes - 1, static_cast<std::int64_t>(v)));
  }
  return labels;
}

void make_split_masks(std::int64_t num_nodes, double train_frac, double val_frac,
                      std::uint64_t seed, std::vector<std::uint8_t>& train,
                      std::vector<std::uint8_t>& val, std::vector<std::uint8_t>& test) {
  train.assign(static_cast<std::size_t>(num_nodes), 0);
  val.assign(static_cast<std::size_t>(num_nodes), 0);
  test.assign(static_cast<std::size_t>(num_nodes), 0);
  util::CounterRng rng(util::hash_combine(seed, 0x5117));
  for (std::int64_t i = 0; i < num_nodes; ++i) {
    const double u = rng.uniform_at(static_cast<std::uint64_t>(i));
    if (u < train_frac) {
      train[static_cast<std::size_t>(i)] = 1;
    } else if (u < train_frac + val_frac) {
      val[static_cast<std::size_t>(i)] = 1;
    } else {
      test[static_cast<std::size_t>(i)] = 1;
    }
  }
}

}  // namespace plexus::graph
