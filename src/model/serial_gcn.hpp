#pragma once
/// \file serial_gcn.hpp
/// Serial (single-device) reference GCN with trainable input features.
///
/// Plays the role PyTorch Geometric plays in the paper's Figure 7: the ground
/// truth that every 3D-parallel configuration must match. It shares the exact
/// deterministic initialisation (core/shard.hpp) and Adam implementation with
/// the distributed model, so loss curves agree to float reduction-order
/// tolerance.

#include <cstdint>
#include <vector>

#include "core/model.hpp"
#include "dense/matrix.hpp"
#include "graph/graph.hpp"

namespace plexus::ref {

struct SerialEpoch {
  double loss = 0.0;
  double train_accuracy = 0.0;
};

struct SerialResult {
  std::vector<SerialEpoch> epochs;
  double val_accuracy = 0.0;
  double test_accuracy = 0.0;
  std::vector<double> losses() const;
};

/// Train the reference model; `spec` matches the distributed GcnSpec (only
/// hidden_dims, adam config, seed and train_input_features are used).
SerialResult train_serial_gcn(const graph::Graph& g, const core::GcnSpec& spec, int epochs,
                              bool evaluate_splits = false);

/// Single forward pass returning logits (tests).
dense::Matrix serial_forward(const graph::Graph& g, const core::GcnSpec& spec);

/// Loss and analytic gradients at initialisation, without optimizer steps —
/// the target for finite-difference checks and for distributed-gradient
/// equivalence tests.
struct SerialGrads {
  double loss = 0.0;
  std::vector<dense::Matrix> dw;  ///< per layer
  dense::Matrix df;               ///< gradient w.r.t. input features
};
SerialGrads serial_loss_and_grads(const graph::Graph& g, const core::GcnSpec& spec);

}  // namespace plexus::ref
