#pragma once
/// \file dataset_view.hpp
/// Uniform block-windowed read access to a preprocessed dataset.
///
/// The model layers never need the whole graph — each rank touches one
/// adjacency window, one feature block and the (small, O(N)) label/mask
/// vectors. DatasetView is that contract, with two providers:
///
///  * `InMemoryDatasetView` — wraps a `PlexusDataset` already materialised in
///    this process (the threaded `run_cluster` path: one dataset shared by
///    every rank thread).
///  * `ShardedDatasetView` — backed by a directory of block files written by
///    `write_sharded_plexus_dataset`. Block requests open only the files
///    intersecting the window (loader/shard_io), so a one-process-per-rank
///    launch (the MPI backend) never materialises the full graph anywhere
///    but rank 0's preprocess step. `load_stats()` proves it.
///
/// Both providers hand out bitwise-identical blocks (the sharded round trip
/// is exact binary CSR/float IO), which is what lets `mpirun`ed training
/// gate its losses against the in-process backends.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/preprocess.hpp"
#include "dense/matrix.hpp"
#include "loader/block_cache.hpp"
#include "loader/shard_io.hpp"
#include "sparse/csr.hpp"

namespace plexus::core {

enum class Split { Train, Val, Test };

class DatasetView {
 public:
  virtual ~DatasetView() = default;

  std::int64_t num_nodes() const { return num_nodes_; }
  std::int64_t padded_nodes() const { return padded_nodes_; }
  std::int64_t feature_dim() const { return feature_dim_; }
  std::int64_t padded_feature_dim() const { return padded_feature_dim_; }
  std::int64_t num_classes() const { return num_classes_; }
  std::int64_t train_total() const { return train_total_; }
  PermutationScheme scheme() const { return scheme_; }

  /// Adjacency window [r0, r1) x [c0, c1) of one adjacency version: version
  /// 0 is adj_even (P_r A~ P_c^T), version 1 adj_odd (the Double scheme's
  /// alternate; the same matrix under None/Single). Layer l reads version
  /// l % 2.
  virtual sparse::Csr adjacency_block(int version, std::int64_t r0, std::int64_t r1,
                                      std::int64_t c0, std::int64_t c1) const = 0;

  /// Dense feature window [r0, r1) x [c0, c1) (padded coordinates).
  virtual dense::Matrix feature_block(std::int64_t r0, std::int64_t r1, std::int64_t c0,
                                      std::int64_t c1) const = 0;

  /// Labels / split masks over all padded nodes, in the output permutation.
  /// Small (O(N) scalars): every rank holds them whole; the sharding story
  /// is about the O(N^2)-ish adjacency and feature payloads.
  virtual const std::vector<std::int32_t>& labels() const = 0;
  virtual const std::vector<std::uint8_t>& mask(Split split) const = 0;

  /// True for a view whose adjacency is meant to be *streamed* every epoch
  /// (the out-of-core path) instead of materialised once per rank. A
  /// streaming view's adjacency reads must be thread-safe: the model runs
  /// them from per-rank ShardStream worker threads.
  virtual bool streaming() const { return false; }

  /// Total nnz of one adjacency version, when the provider knows it without
  /// reading the payload (0 otherwise). Feeds the streaming planner's
  /// per-block nnz estimate.
  virtual std::int64_t adjacency_nnz() const { return 0; }

  /// adjacency_block plus the bytes the request actually pulled from disk
  /// (0 for in-memory providers and for fully cache-resident windows) — the
  /// EpochStats::io_bytes_streamed feed.
  virtual sparse::Csr adjacency_block_counted(int version, std::int64_t r0, std::int64_t r1,
                                              std::int64_t c0, std::int64_t c1,
                                              std::int64_t* io_bytes) const {
    if (io_bytes != nullptr) *io_bytes = 0;
    return adjacency_block(version, r0, r1, c0, c1);
  }

 protected:
  std::int64_t num_nodes_ = 0;
  std::int64_t padded_nodes_ = 0;
  std::int64_t feature_dim_ = 0;
  std::int64_t padded_feature_dim_ = 0;
  std::int64_t num_classes_ = 0;
  std::int64_t train_total_ = 0;
  PermutationScheme scheme_ = PermutationScheme::Double;
};

/// View over a PlexusDataset held in this process. Non-owning: the dataset
/// must outlive the view.
class InMemoryDatasetView final : public DatasetView {
 public:
  explicit InMemoryDatasetView(const PlexusDataset& ds);

  sparse::Csr adjacency_block(int version, std::int64_t r0, std::int64_t r1, std::int64_t c0,
                              std::int64_t c1) const override;
  dense::Matrix feature_block(std::int64_t r0, std::int64_t r1, std::int64_t c0,
                              std::int64_t c1) const override;
  const std::vector<std::int32_t>& labels() const override;
  const std::vector<std::uint8_t>& mask(Split split) const override;
  std::int64_t adjacency_nnz() const override;

 private:
  const PlexusDataset* ds_;
};

/// View over a `write_sharded_plexus_dataset` directory. The constructor
/// reads only the metadata, labels and masks; adjacency/feature block
/// requests stream exactly the intersecting block files. One view per rank —
/// the accumulated `load_stats()` are not synchronised across threads.
///
/// The budgeted constructor turns the view into a *streaming* provider: one
/// view shared by every rank thread, adjacency windows served out of a
/// memory-mapped LRU BlockCache bounded by `rss_budget_bytes` (< 0 =
/// unlimited). The streamed read path is thread-safe and never touches
/// `load_stats()`; cache_stats() carries the accounting instead.
class ShardedDatasetView final : public DatasetView {
 public:
  explicit ShardedDatasetView(std::string dir);

  /// Streaming-mode view: adjacency windows go through a BlockCache holding
  /// at most `rss_budget_bytes` of unpinned block files. Produces windows
  /// bitwise-identical to the plain constructor's.
  ShardedDatasetView(std::string dir, std::int64_t rss_budget_bytes);

  sparse::Csr adjacency_block(int version, std::int64_t r0, std::int64_t r1, std::int64_t c0,
                              std::int64_t c1) const override;
  dense::Matrix feature_block(std::int64_t r0, std::int64_t r1, std::int64_t c0,
                              std::int64_t c1) const override;
  const std::vector<std::int32_t>& labels() const override;
  const std::vector<std::uint8_t>& mask(Split split) const override;

  bool streaming() const override { return cache_ != nullptr; }
  std::int64_t adjacency_nnz() const override { return adjacency_nnz_; }
  sparse::Csr adjacency_block_counted(int version, std::int64_t r0, std::int64_t r1,
                                      std::int64_t c0, std::int64_t c1,
                                      std::int64_t* io_bytes) const override;

  const std::string& dir() const { return dir_; }

  /// Bytes/files this view has streamed so far — the evidence that a rank
  /// loaded only its own shard's blocks. Not meaningful (and not written)
  /// in streaming mode; see cache_stats().
  const io::LoadStats& load_stats() const { return stats_; }

  /// Block-cache accounting of the streaming mode (all zeros otherwise).
  io::BlockCache::Stats cache_stats() const;

 private:
  /// Streamed equivalent of io::load_adjacency_block: same stripe walk,
  /// same COO emission order, blocks served from the cache.
  sparse::Csr streamed_adjacency_block(const std::string& prefix, std::int64_t r0,
                                       std::int64_t r1, std::int64_t c0, std::int64_t c1,
                                       std::int64_t* io_bytes) const;

  std::string dir_;
  std::int32_t adjacency_versions_ = 1;
  std::int32_t grid_rows_ = 0;
  std::int32_t grid_cols_ = 0;
  std::int64_t adjacency_nnz_ = 0;
  std::vector<std::int64_t> row_bounds_;
  std::vector<std::int64_t> col_bounds_;
  std::vector<std::int32_t> labels_;
  io::ShardedMasks masks_;
  std::unique_ptr<io::BlockCache> cache_;
  mutable io::LoadStats stats_;
};

/// Write `ds` into `dir` as a parts x parts block-file grid readable by
/// ShardedDatasetView: the primary adjacency under prefix "adj", the Double
/// scheme's odd version under "adjo", feature row blocks, labels, masks and
/// the two metadata files. `parts` must divide `padded_nodes`; pass the grid
/// volume so every rank's adjacency/feature window falls on block boundaries
/// (uniform_slice extents divide the volume, hence the block size).
void write_sharded_plexus_dataset(const std::string& dir, const PlexusDataset& ds, int parts);

}  // namespace plexus::core
