#include "core/trainer.hpp"

#include <mutex>

#include "comm/world.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace plexus::core {

double TrainResult::avg_epoch_seconds(int skip) const {
  if (epochs.empty()) return 0.0;
  const auto start = std::min<std::size_t>(static_cast<std::size_t>(skip), epochs.size() - 1);
  double sum = 0.0;
  for (std::size_t i = start; i < epochs.size(); ++i) sum += epochs[i].epoch_seconds;
  return sum / static_cast<double>(epochs.size() - start);
}

double TrainResult::avg_comm_seconds(int skip) const {
  if (epochs.empty()) return 0.0;
  const auto start = std::min<std::size_t>(static_cast<std::size_t>(skip), epochs.size() - 1);
  double sum = 0.0;
  for (std::size_t i = start; i < epochs.size(); ++i) sum += epochs[i].wait_seconds();
  return sum / static_cast<double>(epochs.size() - start);
}

double TrainResult::avg_compute_seconds(int skip) const {
  if (epochs.empty()) return 0.0;
  const auto start = std::min<std::size_t>(static_cast<std::size_t>(skip), epochs.size() - 1);
  double sum = 0.0;
  for (std::size_t i = start; i < epochs.size(); ++i) sum += epochs[i].compute_seconds();
  return sum / static_cast<double>(epochs.size() - start);
}

std::vector<double> TrainResult::losses() const {
  std::vector<double> out;
  out.reserve(epochs.size());
  for (const auto& e : epochs) out.push_back(e.loss);
  return out;
}

namespace {

/// Resolve the effective model spec from the options (depth / aggregation
/// overrides), shared by the threaded and one-process-per-rank drivers.
GcnSpec resolve_spec(const TrainOptions& opt) {
  GcnSpec spec = opt.model;
  if (opt.pipeline_depth >= 0) spec.options.pipeline_depth = opt.pipeline_depth;
  spec.options.aggregation = opt.aggregation;
  return spec;
}

/// The per-rank training body shared by train_plexus (threaded cluster;
/// `result` non-null on rank 0 only) and train_plexus_rank (one process per
/// rank; `result` non-null everywhere — the reduced stats agree on all
/// ranks, so every process records identical epoch lines).
void train_rank_body(sim::RankContext& ctx, const DatasetView& view, const Grid3D& grid,
                     const GcnSpec& spec, const TrainOptions& opt, TrainResult* result) {
  const bool trace = opt.trace_timeline && result != nullptr && ctx.rank() == 0;
  if (trace) ctx.comm.timeline().set_enabled(true);
  DistGcn model(ctx, view, grid, spec);
  const auto wg = grid.world_group();
  for (int e = 0; e < opt.epochs; ++e) {
    const EpochStats s = reduce_epoch_stats(ctx.comm, wg, model.train_epoch(ctx, e));
    if (result != nullptr) result->epochs[static_cast<std::size_t>(e)] = s;
  }
  if (opt.evaluate_validation) {
    const double acc = model.evaluate(ctx, view.mask(Split::Val));
    if (result != nullptr) result->val_accuracy = acc;
  }
  if (trace) {
    result->rank0_timeline = std::move(ctx.comm.timeline());  // comm is end-of-life here
  }
}

}  // namespace

EpochStats reduce_epoch_stats(comm::Communicator& comm, comm::GroupId wg, EpochStats s) {
  // Straggler-defining maxima. Loss/accuracy are identical on every rank
  // already (max of equals is the identity) — reducing them anyway makes the
  // agreement explicit and gives the distributed driver one code path.
  s.loss = comm.all_reduce_max_scalar(wg, s.loss);
  s.train_accuracy = comm.all_reduce_max_scalar(wg, s.train_accuracy);
  s.epoch_seconds = comm.all_reduce_max_scalar(wg, s.epoch_seconds);
  s.spmm_seconds = comm.all_reduce_max_scalar(wg, s.spmm_seconds);
  s.gemm_seconds = comm.all_reduce_max_scalar(wg, s.gemm_seconds);
  s.elementwise_seconds = comm.all_reduce_max_scalar(wg, s.elementwise_seconds);
  s.comm_seconds = comm.all_reduce_max_scalar(wg, s.comm_seconds);
  s.hidden_comm_seconds = comm.all_reduce_max_scalar(wg, s.hidden_comm_seconds);
  s.comm_wire_bytes = comm.all_reduce_max_scalar(wg, s.comm_wire_bytes);
  return s;
}

TrainResult train_plexus(const DatasetView& view, const TrainOptions& opt) {
  PLEXUS_CHECK(view.padded_nodes() % opt.grid.size() == 0,
               "dataset not padded for this grid volume");
  comm::World world(opt.grid.size());
  Grid3D grid(world, opt.grid, *opt.machine);

  TrainResult result;
  result.epochs.resize(static_cast<std::size_t>(opt.epochs));
  const GcnSpec spec = resolve_spec(opt);

  const auto rank_fn = [&](sim::RankContext& ctx) {
    train_rank_body(ctx, view, grid, spec, opt, ctx.rank() == 0 ? &result : nullptr);
  };
  sim::run_cluster(world, *opt.machine, rank_fn, /*enable_clock=*/true, opt.intra_rank_threads,
                   &comm::transport_for(opt.backend));
  return result;
}

TrainResult train_plexus(const PlexusDataset& ds, const TrainOptions& opt) {
  return train_plexus(InMemoryDatasetView(ds), opt);
}

TrainResult train_plexus_rank(const DatasetView& view, const TrainOptions& opt, int my_rank) {
  PLEXUS_CHECK(view.padded_nodes() % opt.grid.size() == 0,
               "dataset not padded for this grid volume");
  comm::Transport& transport = comm::transport_for(opt.backend);
  comm::World world(opt.grid.size());
  Grid3D grid(world, opt.grid, *opt.machine);

  TrainResult result;
  result.epochs.resize(static_cast<std::size_t>(opt.epochs));
  const GcnSpec spec = resolve_spec(opt);

  sim::run_distributed_rank(
      world, *opt.machine, my_rank,
      [&](sim::RankContext& ctx) { train_rank_body(ctx, view, grid, spec, opt, &result); },
      transport, /*enable_clock=*/true, opt.intra_rank_threads);
  return result;
}

TrainResult train_plexus(const graph::Graph& g, const TrainOptions& opt) {
  const PlexusDataset ds = preprocess_graph(g, opt.scheme, opt.model.num_layers(),
                                            /*pad_multiple=*/opt.grid.size(),
                                            opt.preprocess_seed);
  return train_plexus(ds, opt);
}

}  // namespace plexus::core
