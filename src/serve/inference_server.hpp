#pragma once
/// \file inference_server.hpp
/// Concurrent inference front-end over a ServedModel: a bounded admission
/// queue, a batcher thread, and per-request latency / queue-depth counters.
///
/// Callers from any thread `submit()` a node id and get a std::future back.
/// The batcher drains the queue in batches: it takes whatever is queued,
/// lingers up to `max_wait_us` for the batch to fill to `max_batch`, then
/// answers the whole batch against the model's cached logits (the per-batch
/// sweep runs through util::parallel_for, i.e. the same util::ThreadPool
/// engine the training kernels use — set PLEXUS_THREADS to give the batcher
/// a budget). Admission beyond `max_queue` pending requests is rejected
/// rather than queued, bounding tail latency under overload.
///
/// Counters: per-request latency (enqueue -> promise fulfilled) feeding
/// p50/p99/mean, served/rejected/batch counts, and the high-water queue
/// depth. `stats()` snapshots them at any time; `stats_table()` renders the
/// standard util::Table the CLI and bench print.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "serve/served_model.hpp"
#include "util/table.hpp"

namespace plexus::serve {

struct ServeOptions {
  int max_batch = 64;             ///< requests the batcher answers at once
  std::int64_t max_wait_us = 200; ///< linger for a fuller batch (microseconds)
  int max_queue = 4096;           ///< admission bound; beyond -> reject
};

/// Snapshot of the server's counters (percentiles computed on demand).
struct ServeStats {
  std::int64_t served = 0;
  std::int64_t rejected = 0;
  std::int64_t batches = 0;
  std::int64_t max_queue_depth = 0;  ///< high-water pending count at admission
  std::int64_t max_batch_size = 0;
  double mean_latency_us = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
};

class InferenceServer {
 public:
  /// The model must outlive the server. The batcher thread starts immediately.
  explicit InferenceServer(const ServedModel& model, ServeOptions opt = {});
  ~InferenceServer();
  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueue a classification request for an original node id. Returns
  /// std::nullopt when the admission queue is full (counted as rejected) or
  /// the server is stopping. Thread-safe.
  std::optional<std::future<Prediction>> submit(std::int64_t node);

  /// Drain the queue, answer everything pending, and join the batcher.
  /// Idempotent; also called by the destructor.
  void stop();

  ServeStats stats() const;
  /// The counters as a printable util::Table (one row per counter).
  util::Table stats_table() const;

 private:
  struct Request {
    std::int64_t node = 0;
    std::promise<Prediction> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void batcher_loop();
  void answer_batch(std::vector<Request>& batch);

  const ServedModel* model_;
  ServeOptions opt_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;

  mutable std::mutex stats_mutex_;
  std::vector<double> latencies_us_;
  std::int64_t rejected_ = 0;
  std::int64_t batches_ = 0;
  std::int64_t max_queue_depth_ = 0;
  std::int64_t max_batch_size_ = 0;

  std::thread batcher_;  ///< last member: starts after everything is built
};

}  // namespace plexus::serve
