#pragma once
/// \file bench_common.hpp
/// Shared helpers for the table/figure harnesses: proxy construction at
/// bench-friendly scale, formatting, and banner printing. Every harness
/// prints (a) the paper's reported numbers and (b) our measured/modelled
/// reproduction, so EXPERIMENTS.md can be cross-checked against the output.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/datasets.hpp"
#include "util/table.hpp"

namespace plexus::bench {

/// PLEXUS_BENCH_RMAT_SCALE (log2 nodes of the sweep graphs), or
/// `default_scale` when unset or outside [4, 26]. One parser for every bench
/// so the env var means the same thing everywhere; benches pick their own
/// default (micro_kernels 18, micro_collectives 14).
inline int rmat_scale(int default_scale) {
  const char* s = std::getenv("PLEXUS_BENCH_RMAT_SCALE");
  if (s != nullptr && *s != '\0') {
    const int v = std::atoi(s);
    if (v >= 4 && v <= 26) return v;
  }
  return default_scale;
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline void note(const std::string& text) { std::printf("note: %s\n", text.c_str()); }

/// Proxy scaled for functional simulation on this machine (see DESIGN.md
/// scale protocol): structure class and average degree of the real dataset,
/// at `target_nodes` scale.
inline graph::Graph bench_proxy(const std::string& dataset, std::int64_t target_nodes,
                                std::uint64_t seed = 0xbe7c4) {
  return graph::make_proxy(graph::dataset_info(dataset), target_nodes, seed);
}

inline std::string ms(double seconds, int digits = 1) {
  return util::Table::fmt(seconds * 1e3, digits);
}

inline std::string pct(double fraction, int digits = 1) {
  return util::Table::fmt(fraction * 100.0, digits) + "%";
}

}  // namespace plexus::bench
