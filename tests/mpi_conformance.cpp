// Transport conformance for the MPI backend (PLEXUS_WITH_MPI=ON), run as
//
//   mpirun -np 4 ./tests/mpi_conformance
//
// One process per rank. Every process derives the full schedule — group
// shapes, payloads, expected results — deterministically from (group,
// collective, member), so each collective's output is checked locally with
// no reference process. Copies (all-gather / broadcast / all-to-all /
// all_to_all_v) must match exactly; reductions must too, because the MPI
// transport never uses MPI_SUM (implementation-defined order) — it gathers
// every contribution and folds in canonical member order 0..G-1, exactly
// like the in-process backends. The CommHandle lifecycle (post / test /
// out-of-order wait / drop) and the stats accounting are exercised too,
// and an end-to-end block trains the full model over the MPI backend from a
// sharded dataset directory, gating its losses bitwise against the
// in-process Local backend.
//
// Exit code 0 on success; nonzero (aborting the mpirun) on any failure.

#include <mpi.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/transport.hpp"
#include "comm/world.hpp"
#include "core/dataset_view.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"

namespace pc = plexus::comm;

namespace {

int g_failures = 0;
int g_rank = -1;

void expect(bool ok, const std::string& what) {
  if (ok) return;
  ++g_failures;
  std::fprintf(stderr, "[mpi_conformance] rank %d FAILED: %s\n", g_rank, what.c_str());
}

void expect_near(float got, float want, const std::string& what) {
  const float tol = 1e-4f * (1.0f + std::fabs(want));
  expect(std::fabs(got - want) <= tol,
         what + " got=" + std::to_string(got) + " want=" + std::to_string(want));
}

/// Deterministic payload element for (group, collective kind, member, index).
float payload(int gid, int kind, int member_rank, std::size_t i) {
  const plexus::util::CounterRng rng(
      plexus::util::hash_combine(static_cast<std::uint64_t>(gid * 16 + kind),
                                 static_cast<std::uint64_t>(member_rank)));
  return rng.uniform_at(i, -2.0f, 2.0f);
}

void run_group(pc::Communicator& comm, pc::GroupId gid) {
  auto& g = comm.world().group(gid);
  const int G = g.size();
  bool member = false;
  for (const int m : g.members) member |= (m == g_rank);
  if (!member) return;
  const int pos = g.position_of(g_rank);
  const std::size_t n = 64 + static_cast<std::size_t>(gid) * 3;

  // all-gather: exact.
  std::vector<float> ag_in(n), ag_out(n * static_cast<std::size_t>(G));
  for (std::size_t i = 0; i < n; ++i) ag_in[i] = payload(gid, 0, g_rank, i);
  comm.all_gather<float>(gid, ag_in, ag_out);
  for (int m = 0; m < G; ++m) {
    for (std::size_t i = 0; i < n; ++i) {
      expect(ag_out[static_cast<std::size_t>(m) * n + i] == payload(gid, 0, g.members[m], i),
             "all_gather gid=" + std::to_string(gid) + " member " + std::to_string(m));
    }
  }

  // reduce-scatter: exact — the transport folds contributions in canonical
  // member order, which is precisely this loop.
  std::vector<float> rs_in(n * static_cast<std::size_t>(G)), rs_out(n);
  for (std::size_t i = 0; i < rs_in.size(); ++i) rs_in[i] = payload(gid, 1, g_rank, i);
  comm.reduce_scatter_sum<float>(gid, rs_in, rs_out);
  for (std::size_t i = 0; i < n; ++i) {
    float want = payload(gid, 1, g.members[0], static_cast<std::size_t>(pos) * n + i);
    for (int m = 1; m < G; ++m) {
      want += payload(gid, 1, g.members[m], static_cast<std::size_t>(pos) * n + i);
    }
    expect(rs_out[i] == want, "reduce_scatter gid=" + std::to_string(gid) + " i=" +
                                  std::to_string(i));
  }

  // all-reduce: exact, same canonical fold.
  std::vector<float> ar(n);
  for (std::size_t i = 0; i < n; ++i) ar[i] = payload(gid, 2, g_rank, i);
  comm.all_reduce_sum<float>(gid, ar);
  for (std::size_t i = 0; i < n; ++i) {
    float want = payload(gid, 2, g.members[0], i);
    for (int m = 1; m < G; ++m) want += payload(gid, 2, g.members[m], i);
    expect(ar[i] == want, "all_reduce gid=" + std::to_string(gid) + " i=" + std::to_string(i));
  }

  // broadcast from every root: exact.
  for (int root = 0; root < G; ++root) {
    std::vector<float> bc(n);
    for (std::size_t i = 0; i < n; ++i) {
      bc[i] = pos == root ? payload(gid, 3, g.members[root], i) : -1.0f;
    }
    comm.broadcast<float>(gid, bc, root);
    for (std::size_t i = 0; i < n; ++i) {
      expect(bc[i] == payload(gid, 3, g.members[root], i),
             "broadcast gid=" + std::to_string(gid) + " root " + std::to_string(root));
    }
  }

  // equal-chunk all-to-all: exact.
  std::vector<float> aa_in(n * static_cast<std::size_t>(G)),
      aa_out(n * static_cast<std::size_t>(G));
  for (std::size_t i = 0; i < aa_in.size(); ++i) aa_in[i] = payload(gid, 4, g_rank, i);
  comm.all_to_all<float>(gid, aa_in, aa_out);
  for (int m = 0; m < G; ++m) {
    for (std::size_t i = 0; i < n; ++i) {
      expect(aa_out[static_cast<std::size_t>(m) * n + i] ==
                 payload(gid, 4, g.members[m], static_cast<std::size_t>(pos) * n + i),
             "all_to_all gid=" + std::to_string(gid));
    }
  }

  // variable all-to-all: member p sends (p + 1) copies of a marker to each
  // member; exact.
  std::vector<std::vector<float>> send(static_cast<std::size_t>(G));
  for (int m = 0; m < G; ++m) {
    send[static_cast<std::size_t>(m)].assign(static_cast<std::size_t>(pos + 1),
                                             payload(gid, 5, g_rank, static_cast<std::size_t>(m)));
  }
  std::vector<std::vector<float>> recv;
  comm.all_to_all_v<float>(gid, send, recv);
  expect(recv.size() == static_cast<std::size_t>(G), "all_to_all_v shape");
  for (int m = 0; m < G; ++m) {
    expect(recv[static_cast<std::size_t>(m)].size() == static_cast<std::size_t>(m + 1),
           "all_to_all_v count from member " + std::to_string(m));
    for (const float v : recv[static_cast<std::size_t>(m)]) {
      expect(v == payload(gid, 5, g.members[m], static_cast<std::size_t>(pos)),
             "all_to_all_v payload gid=" + std::to_string(gid));
    }
  }

  // flat variable all-to-all (the sparse-aggregation exchange): counts from a
  // (src, dst) formula every process evaluates identically, including zero
  // pairs; exact.
  {
    const auto pair_count = [gid](int src, int dst) {
      return static_cast<std::int64_t>((src * 31 + dst * 17 + gid) % 4) * 3;
    };
    std::vector<std::int64_t> scnt(static_cast<std::size_t>(G)),
        rcnt(static_cast<std::size_t>(G));
    std::int64_t stot = 0, rtot = 0;
    for (int m = 0; m < G; ++m) {
      scnt[static_cast<std::size_t>(m)] = pair_count(pos, m);
      rcnt[static_cast<std::size_t>(m)] = pair_count(m, pos);
      stot += scnt[static_cast<std::size_t>(m)];
      rtot += rcnt[static_cast<std::size_t>(m)];
    }
    std::vector<float> v_in(static_cast<std::size_t>(stot)),
        v_out(static_cast<std::size_t>(rtot));
    for (std::size_t i = 0; i < v_in.size(); ++i) v_in[i] = payload(gid, 6, g_rank, i);
    comm.iall_to_all_v<float>(gid, v_in, scnt.data(), v_out, rcnt.data()).wait();
    std::int64_t roff = 0;
    for (int m = 0; m < G; ++m) {
      // Member m packs its chunks by destination position, so my chunk starts
      // after the counts it sends to positions < pos.
      std::int64_t soff = 0;
      for (int j = 0; j < pos; ++j) soff += pair_count(m, j);
      for (std::int64_t i = 0; i < rcnt[static_cast<std::size_t>(m)]; ++i) {
        expect(v_out[static_cast<std::size_t>(roff + i)] ==
                   payload(gid, 6, g.members[m], static_cast<std::size_t>(soff + i)),
               "flat iall_to_all_v gid=" + std::to_string(gid) + " from member " +
                   std::to_string(m));
      }
      roff += rcnt[static_cast<std::size_t>(m)];
    }
  }

  // zero-sized payloads: every collective and an all-zero-count flat exchange
  // must tolerate null/empty buffers (MPI may reject null pointers even with
  // zero counts — the transport substitutes a dummy address).
  {
    comm.all_gather<float>(gid, {}, {});
    comm.all_reduce_sum<float>(gid, {});
    comm.reduce_scatter_sum<float>(gid, {}, {});
    comm.broadcast<float>(gid, {}, /*root=*/0);
    comm.all_to_all<float>(gid, {}, {});
    std::vector<std::int64_t> zeros(static_cast<std::size_t>(G), 0);
    comm.iall_to_all_v<float>(gid, {}, zeros.data(), {}, zeros.data()).wait();
    // A live round after the degenerate ones proves the communicator survived.
    std::vector<float> one{1.0f};
    comm.all_reduce_sum<float>(gid, one);
    expect_near(one[0], static_cast<float>(G), "all_reduce after zero-sized ops");
  }

  // scalar reductions: both exact (the sum folds 0.0 + v_0 + ... + v_{G-1}
  // in member order on every backend).
  const double mx = comm.all_reduce_max_scalar(gid, static_cast<double>(g_rank));
  expect(mx == static_cast<double>(g.members.back()), "scalar max gid=" + std::to_string(gid));
  const double sum = comm.all_reduce_sum_scalar(gid, 1.5);
  double want_sum = 0.0;
  for (int m = 0; m < G; ++m) want_sum += 1.5;
  expect(sum == want_sum, "scalar sum gid=" + std::to_string(gid));

  comm.barrier(gid);
}

void run_handle_lifecycle(pc::Communicator& comm) {
  // Nonblocking post → test-poll → out-of-order wait, and drop-without-wait:
  // the CommHandle states map onto real MPI_I* requests here.
  const pc::GroupId wg = comm.world().world_group();
  const int G = comm.world().size();
  std::vector<float> a(32, 1.0f), b_in(8, static_cast<float>(g_rank)),
      b_out(8 * static_cast<std::size_t>(G));
  auto h1 = comm.iall_reduce_sum<float>(wg, a);
  auto h2 = comm.iall_gather<float>(wg, b_in, b_out);
  while (!h2.test()) {
  }
  h2.wait();  // out of post order
  h1.wait();
  for (const float v : a) expect_near(v, static_cast<float>(G), "lifecycle all_reduce");
  for (int m = 0; m < G; ++m) {
    expect(b_out[static_cast<std::size_t>(m) * 8] == static_cast<float>(m),
           "lifecycle all_gather");
  }

  // Dropped handle: the collective still completes on every member (the
  // matching posts stay matched), but no stats are charged.
  const auto calls_before = comm.stats().entry(pc::Collective::AllGather).calls;
  {
    auto dropped = comm.iall_gather<float>(wg, b_in, b_out);
    (void)dropped;  // destructor completes the op and discards the accounting
  }
  expect(comm.stats().entry(pc::Collective::AllGather).calls == calls_before,
         "dropped handle must not charge stats");

  // Functional-only accounting: cost-model time charged per waited op.
  expect(comm.stats().entry(pc::Collective::AllReduce).sim_seconds > 0.0,
         "functional-mode stats charge cost-model time");
}

/// End-to-end: the full trainer, one process per rank over the MPI backend,
/// fed from a sharded dataset directory rank 0 writes — the mpi_conformance
/// version of `mpirun plexus_train ... mpi`. Losses must be bitwise-identical
/// to the threaded in-process Local backend (identical data via exact binary
/// shard IO + canonical-order reductions + SPMD-identical schedules).
void run_end_to_end_training(int size) {
  namespace pcore = plexus::core;
  namespace psim = plexus::sim;
  psim::GridShape shape{size, 1, 1};
  if (size == 4) shape = {2, 2, 1};
  if (size == 8) shape = {2, 2, 2};

  const auto g = plexus::graph::make_test_graph(120, 6.0, 12, 4, 1234);
  pcore::TrainOptions opt;
  opt.grid = shape;
  opt.machine = &psim::Machine::test_machine();
  opt.model.hidden_dims = {12, 8};
  opt.model.options.agg_row_blocks = 4;
  opt.model.seed = 99;
  opt.epochs = 4;

  // Reference: the threaded in-process cluster over the Local backend —
  // every process derives it independently, no reference rank needed.
  opt.backend = pc::Backend::Local;
  const auto ref = pcore::train_plexus(g, opt);

  // Distributed run: rank 0 publishes the sharded layout, every rank streams
  // only its own shard's block files.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("plexus_mpi_conformance_shards_np" + std::to_string(size));
  if (g_rank == 0) {
    const auto ds = pcore::preprocess_graph(g, opt.scheme, opt.model.num_layers(),
                                            /*pad_multiple=*/shape.size(), opt.preprocess_seed);
    std::filesystem::remove_all(dir);  // stale leftovers from a killed run
    pcore::write_sharded_plexus_dataset(dir.string(), ds, shape.size());
  }
  MPI_Barrier(MPI_COMM_WORLD);
  pcore::ShardedDatasetView view(dir.string());
  opt.backend = pc::Backend::Mpi;
  const auto got = pcore::train_plexus_rank(view, opt, g_rank);

  expect(got.epochs.size() == ref.epochs.size(), "e2e epoch count");
  for (std::size_t i = 0; i < got.epochs.size() && i < ref.epochs.size(); ++i) {
    expect(std::memcmp(&got.epochs[i].loss, &ref.epochs[i].loss, sizeof(double)) == 0,
           "e2e loss epoch " + std::to_string(i) + " mpi=" + std::to_string(got.epochs[i].loss) +
               " local=" + std::to_string(ref.epochs[i].loss));
    expect(got.epochs[i].epoch_seconds > 0.0, "e2e sim clock epoch " + std::to_string(i));
  }
  expect(view.load_stats().files_opened > 0, "e2e shard IO happened");
  MPI_Barrier(MPI_COMM_WORLD);
  if (g_rank == 0) std::filesystem::remove_all(dir);
}

}  // namespace

int main(int argc, char** argv) {
  // Initialises MPI (requesting MPI_THREAD_MULTIPLE) and downgrades the comm
  // thread budget to whatever the runtime actually provides — the same hook
  // the plexus_train mpi driver uses.
  const pc::MpiRuntime rt = pc::mpi_runtime_init(&argc, &argv);
  g_rank = rt.rank;
  const int size = rt.size;

  {
    pc::World world(size);
    std::vector<pc::GroupId> gids{world.world_group()};
    if (size >= 2) {
      std::vector<int> evens, odds, halves;
      for (int r = 0; r < size; ++r) (r % 2 == 0 ? evens : odds).push_back(r);
      for (int r = 0; r < size / 2; ++r) halves.push_back(r);
      gids.push_back(world.create_group(evens));
      if (!odds.empty()) gids.push_back(world.create_group(odds));
      gids.push_back(world.create_group(halves));
      gids.push_back(world.create_group({0, size - 1}));
    }

    pc::Communicator comm(world, g_rank, /*clock=*/nullptr,
                          &pc::transport_for(pc::Backend::Mpi));
    for (const auto gid : gids) run_group(comm, gid);
    run_handle_lifecycle(comm);
    comm.barrier(world.world_group());
  }

  run_end_to_end_training(size);

  int total_failures = g_failures;
  MPI_Allreduce(MPI_IN_PLACE, &total_failures, 1, MPI_INT, MPI_SUM, MPI_COMM_WORLD);
  if (g_rank == 0) {
    std::printf("[mpi_conformance] %d ranks, %s (%d failure%s)\n", size,
                total_failures == 0 ? "PASS" : "FAIL", total_failures,
                total_failures == 1 ? "" : "s");
  }
  pc::mpi_runtime_finalize();
  return total_failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
