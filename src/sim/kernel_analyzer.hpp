#pragma once
/// \file kernel_analyzer.hpp
/// Nsight-Compute-style analysis of the row-split SpMM kernel (paper Table 2).
///
/// Reproduces the *mechanism* behind the paper's config-U vs config-V
/// comparison: a configuration that enlarges the common dimension while
/// narrowing the dense operand launches proportionally more blocks, issues
/// many small (uncoalesced) memory requests, and loses L2/DRAM throughput.
/// Metrics are computed by walking the actual CSR shard through a simulated
/// sectored LRU L2 cache.

#include <cstdint>

#include "sim/machine.hpp"
#include "sparse/csr.hpp"

namespace plexus::sim {

struct KernelMetrics {
  std::int64_t grid_size = 0;            ///< thread blocks launched (~ nnz / 96)
  std::int64_t uncoalesced_sectors = 0;  ///< excess 32B sectors beyond ideal
  double l2_hit_rate = 0.0;              ///< fraction of sector requests hit in L2
  double l2_throughput_pct = 0.0;        ///< achieved / peak L2 bandwidth
  double dram_throughput_pct = 0.0;      ///< achieved / peak DRAM bandwidth
  double time_seconds = 0.0;             ///< modelled kernel time
};

/// Analyze SpMM(a, B) where B is (a.cols() x dense_cols) row-major fp32.
KernelMetrics analyze_spmm(const Machine& m, const sparse::Csr& a, std::int64_t dense_cols);

}  // namespace plexus::sim
