#include "core/trainer.hpp"

#include <mutex>

#include "comm/world.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace plexus::core {

double TrainResult::avg_epoch_seconds(int skip) const {
  if (epochs.empty()) return 0.0;
  const auto start = std::min<std::size_t>(static_cast<std::size_t>(skip), epochs.size() - 1);
  double sum = 0.0;
  for (std::size_t i = start; i < epochs.size(); ++i) sum += epochs[i].epoch_seconds;
  return sum / static_cast<double>(epochs.size() - start);
}

double TrainResult::avg_comm_seconds(int skip) const {
  if (epochs.empty()) return 0.0;
  const auto start = std::min<std::size_t>(static_cast<std::size_t>(skip), epochs.size() - 1);
  double sum = 0.0;
  for (std::size_t i = start; i < epochs.size(); ++i) sum += epochs[i].wait_seconds();
  return sum / static_cast<double>(epochs.size() - start);
}

double TrainResult::avg_compute_seconds(int skip) const {
  if (epochs.empty()) return 0.0;
  const auto start = std::min<std::size_t>(static_cast<std::size_t>(skip), epochs.size() - 1);
  double sum = 0.0;
  for (std::size_t i = start; i < epochs.size(); ++i) sum += epochs[i].compute_seconds();
  return sum / static_cast<double>(epochs.size() - start);
}

std::vector<double> TrainResult::losses() const {
  std::vector<double> out;
  out.reserve(epochs.size());
  for (const auto& e : epochs) out.push_back(e.loss);
  return out;
}

TrainResult train_plexus(const PlexusDataset& ds, const TrainOptions& opt) {
  PLEXUS_CHECK(ds.padded_nodes % opt.grid.size() == 0,
               "dataset not padded for this grid volume");
  comm::World world(opt.grid.size());
  Grid3D grid(world, opt.grid, *opt.machine);

  TrainResult result;
  result.epochs.resize(static_cast<std::size_t>(opt.epochs));

  GcnSpec spec = opt.model;
  if (opt.pipeline_depth >= 0) spec.options.pipeline_depth = opt.pipeline_depth;
  spec.options.aggregation = opt.aggregation;

  const auto rank_fn = [&](sim::RankContext& ctx) {
    if (opt.trace_timeline && ctx.rank() == 0) ctx.comm.timeline().set_enabled(true);
    DistGcn model(ctx, ds, grid, spec);
    for (int e = 0; e < opt.epochs; ++e) {
      EpochStats s = model.train_epoch(ctx, e);
      // Aggregate straggler-defining maxima; every rank computes the same
      // values so rank 0 can record them.
      const auto wg = grid.world_group();
      s.epoch_seconds = ctx.comm.all_reduce_max_scalar(wg, s.epoch_seconds);
      s.spmm_seconds = ctx.comm.all_reduce_max_scalar(wg, s.spmm_seconds);
      s.gemm_seconds = ctx.comm.all_reduce_max_scalar(wg, s.gemm_seconds);
      s.elementwise_seconds = ctx.comm.all_reduce_max_scalar(wg, s.elementwise_seconds);
      s.comm_seconds = ctx.comm.all_reduce_max_scalar(wg, s.comm_seconds);
      s.hidden_comm_seconds = ctx.comm.all_reduce_max_scalar(wg, s.hidden_comm_seconds);
      s.comm_wire_bytes = ctx.comm.all_reduce_max_scalar(wg, s.comm_wire_bytes);
      if (ctx.rank() == 0) result.epochs[static_cast<std::size_t>(e)] = s;
    }
    if (opt.evaluate_validation) {
      const double acc = model.evaluate(ctx, ds.val_mask);
      if (ctx.rank() == 0) result.val_accuracy = acc;
    }
    if (opt.trace_timeline && ctx.rank() == 0) {
      result.rank0_timeline = std::move(ctx.comm.timeline());  // comm is end-of-life here
    }
  };
  sim::run_cluster(world, *opt.machine, rank_fn, /*enable_clock=*/true, opt.intra_rank_threads,
                   &comm::transport_for(opt.backend));
  return result;
}

TrainResult train_plexus(const graph::Graph& g, const TrainOptions& opt) {
  const PlexusDataset ds = preprocess_graph(g, opt.scheme, opt.model.num_layers(),
                                            /*pad_multiple=*/opt.grid.size(),
                                            opt.preprocess_seed);
  return train_plexus(ds, opt);
}

}  // namespace plexus::core
