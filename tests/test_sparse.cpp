// Unit + property tests for sparse: CSR transforms, SpMM, 2D block stats.
#include <gtest/gtest.h>

#include <cmath>

#include "dense/matrix.hpp"
#include "sparse/csr.hpp"
#include "sparse/partition2d.hpp"
#include "sparse/spmm.hpp"
#include "util/rng.hpp"

namespace ps = plexus::sparse;
namespace pd = plexus::dense;
namespace pu = plexus::util;

namespace {

ps::Coo random_coo(std::int64_t rows, std::int64_t cols, std::int64_t nnz, std::uint64_t seed) {
  pu::SplitMix64 rng(seed);
  ps::Coo coo;
  coo.num_rows = rows;
  coo.num_cols = cols;
  for (std::int64_t i = 0; i < nnz; ++i) {
    coo.push(static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(rows))),
             static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(cols))),
             rng.next_float() * 2.0f - 1.0f);
  }
  return coo;
}

pd::Matrix random_dense(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  pu::CounterRng rng(seed);
  pd::Matrix m(r, c);
  for (std::int64_t i = 0; i < r * c; ++i) {
    m.flat()[static_cast<std::size_t>(i)] = rng.uniform_at(static_cast<std::uint64_t>(i), -1, 1);
  }
  return m;
}

std::vector<float> dense_of(const ps::Csr& a) { return a.to_dense(); }

}  // namespace

TEST(Csr, FromCooSortsAndSums) {
  ps::Coo coo;
  coo.num_rows = 2;
  coo.num_cols = 3;
  coo.push(1, 2, 1.0f);
  coo.push(0, 1, 2.0f);
  coo.push(1, 2, 0.5f);  // duplicate -> summed
  coo.push(1, 0, 3.0f);
  const auto a = ps::Csr::from_coo(coo);
  EXPECT_EQ(a.nnz(), 3);
  const auto d = dense_of(a);
  EXPECT_EQ(d[0 * 3 + 1], 2.0f);
  EXPECT_EQ(d[1 * 3 + 0], 3.0f);
  EXPECT_EQ(d[1 * 3 + 2], 1.5f);
  // columns sorted within the row
  EXPECT_LT(a.col_idx()[1], a.col_idx()[2]);
}

TEST(Csr, FromCooPatternDedup) {
  ps::Coo coo;
  coo.num_rows = 1;
  coo.num_cols = 2;
  coo.push(0, 1, 1.0f);
  coo.push(0, 1, 1.0f);
  const auto a = ps::Csr::from_coo(coo, /*sum_duplicates=*/false);
  EXPECT_EQ(a.nnz(), 1);
  EXPECT_EQ(a.vals()[0], 1.0f);
}

TEST(Csr, TransposeMatchesDense) {
  const auto a = ps::Csr::from_coo(random_coo(7, 5, 20, 1));
  const auto at = a.transposed();
  const auto d = dense_of(a);
  const auto dt = dense_of(at);
  for (std::int64_t r = 0; r < 7; ++r) {
    for (std::int64_t c = 0; c < 5; ++c) {
      EXPECT_EQ(d[static_cast<std::size_t>(r * 5 + c)], dt[static_cast<std::size_t>(c * 7 + r)]);
    }
  }
}

TEST(Csr, TransposeInvolution) {
  const auto a = ps::Csr::from_coo(random_coo(12, 9, 40, 2));
  EXPECT_TRUE(ps::Csr::equal(a.transposed().transposed(), a));
}

TEST(Csr, PermutedMatchesDense) {
  const std::int64_t n = 8;
  const auto a = ps::Csr::from_coo(random_coo(n, n, 25, 3));
  const auto pr = pu::random_permutation(n, 11);
  const auto pc = pu::random_permutation(n, 12);
  const auto b = a.permuted(pr, pc);
  const auto da = dense_of(a);
  const auto db = dense_of(b);
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t c = 0; c < n; ++c) {
      EXPECT_EQ(db[static_cast<std::size_t>(pr[static_cast<std::size_t>(r)] * n +
                                            pc[static_cast<std::size_t>(c)])],
                da[static_cast<std::size_t>(r * n + c)]);
    }
  }
}

TEST(Csr, PermutedColumnsStaySorted) {
  const auto a = ps::Csr::from_coo(random_coo(30, 30, 200, 4));
  const auto p = pu::random_permutation(30, 5);
  const auto b = a.permuted(p, p);
  const auto rp = b.row_ptr();
  const auto ci = b.col_idx();
  for (std::int64_t r = 0; r < b.rows(); ++r) {
    for (std::int64_t k = rp[static_cast<std::size_t>(r)] + 1;
         k < rp[static_cast<std::size_t>(r) + 1]; ++k) {
      EXPECT_LT(ci[static_cast<std::size_t>(k - 1)], ci[static_cast<std::size_t>(k)]);
    }
  }
}

TEST(Csr, BlockExtractionMatchesDense) {
  const auto a = ps::Csr::from_coo(random_coo(10, 12, 60, 6));
  const auto blk = a.block(2, 7, 3, 9);
  EXPECT_EQ(blk.rows(), 5);
  EXPECT_EQ(blk.cols(), 6);
  const auto da = dense_of(a);
  const auto db = dense_of(blk);
  for (std::int64_t r = 0; r < 5; ++r) {
    for (std::int64_t c = 0; c < 6; ++c) {
      EXPECT_EQ(db[static_cast<std::size_t>(r * 6 + c)],
                da[static_cast<std::size_t>((r + 2) * 12 + (c + 3))]);
    }
  }
}

TEST(Csr, BlockNnzAgreesWithBlock) {
  const auto a = ps::Csr::from_coo(random_coo(16, 16, 80, 7));
  for (std::int64_t r0 = 0; r0 < 16; r0 += 8) {
    for (std::int64_t c0 = 0; c0 < 16; c0 += 4) {
      EXPECT_EQ(a.block_nnz(r0, r0 + 8, c0, c0 + 4), a.block(r0, r0 + 8, c0, c0 + 4).nnz());
    }
  }
}

TEST(Csr, ReferencedCols) {
  ps::Coo coo;
  coo.num_rows = 2;
  coo.num_cols = 10;
  coo.push(0, 3, 1.0f);
  coo.push(1, 3, 1.0f);
  coo.push(1, 7, 1.0f);
  const auto a = ps::Csr::from_coo(coo);
  const auto refs = a.referenced_cols(0, 10);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0], 3);
  EXPECT_EQ(refs[1], 7);
  EXPECT_TRUE(a.referenced_cols(4, 7).empty());
}

TEST(Csr, NormalizeAdjacencyRowSumsAndSelfLoops) {
  // Path graph 0-1-2: after D^-1/2 (A+I) D^-1/2, entries are known.
  ps::Coo coo;
  coo.num_rows = 3;
  coo.num_cols = 3;
  coo.push(0, 1, 1.0f);
  coo.push(1, 0, 1.0f);
  coo.push(1, 2, 1.0f);
  coo.push(2, 1, 1.0f);
  const auto a = ps::Csr::from_coo(coo);
  const auto norm = ps::normalize_adjacency(a, 3);
  const auto d = norm.to_dense();
  // degrees with self loop: d0 = 2, d1 = 3, d2 = 2.
  EXPECT_NEAR(d[0 * 3 + 0], 1.0 / 2.0, 1e-6);
  EXPECT_NEAR(d[0 * 3 + 1], 1.0 / std::sqrt(6.0), 1e-6);
  EXPECT_NEAR(d[1 * 3 + 1], 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(d[2 * 3 + 2], 1.0 / 2.0, 1e-6);
  // symmetric
  EXPECT_NEAR(d[1 * 3 + 0], d[0 * 3 + 1], 1e-7);
}

TEST(Csr, NormalizeAdjacencyPaddedTailStaysEmpty) {
  ps::Coo coo;
  coo.num_rows = 6;  // nodes 4, 5 are padding
  coo.num_cols = 6;
  coo.push(0, 1, 1.0f);
  coo.push(1, 0, 1.0f);
  const auto norm = ps::normalize_adjacency(ps::Csr::from_coo(coo), 4);
  EXPECT_EQ(norm.row_nnz(4), 0);
  EXPECT_EQ(norm.row_nnz(5), 0);
  EXPECT_EQ(norm.row_nnz(2), 1);  // isolated active node keeps its self loop
}

class SpmmShapes : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(SpmmShapes, MatchesDenseReference) {
  const auto [m, k, n, nnz] = GetParam();
  const auto a = ps::Csr::from_coo(random_coo(m, k, nnz, 17));
  const auto b = random_dense(k, n, 18);
  const auto c = ps::spmm(a, b);
  const auto da = a.to_dense();
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += da[static_cast<std::size_t>(i * k + kk)] * b.at(kk, j);
      }
      EXPECT_NEAR(c.at(i, j), acc, 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SpmmShapes,
                         ::testing::Values(std::tuple{4, 4, 4, 6}, std::tuple{1, 9, 3, 5},
                                           std::tuple{16, 8, 1, 30}, std::tuple{32, 64, 12, 300},
                                           std::tuple{8, 8, 8, 0}));

TEST(Spmm, RowRangeMatchesFull) {
  const auto a = ps::Csr::from_coo(random_coo(12, 10, 50, 20));
  const auto b = random_dense(10, 5, 21);
  const auto full = ps::spmm(a, b);
  pd::Matrix by_blocks(12, 5);
  ps::spmm_rows(a, b, by_blocks, 0, 4);
  ps::spmm_rows(a, b, by_blocks, 4, 9);
  ps::spmm_rows(a, b, by_blocks, 9, 12);
  EXPECT_EQ(pd::Matrix::max_abs_diff(full, by_blocks), 0.0f);
}

TEST(Spmm, FlopCount) {
  const auto a = ps::Csr::from_coo(random_coo(4, 4, 7, 22));
  EXPECT_EQ(ps::spmm_flops(a, 10), 2 * a.nnz() * 10);
}

TEST(Partition2d, BlockBounds) {
  const auto b = ps::block_bounds(10, 4);  // 3,3,2,2
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b[0], 0);
  EXPECT_EQ(b[1], 3);
  EXPECT_EQ(b[2], 6);
  EXPECT_EQ(b[3], 8);
  EXPECT_EQ(b[4], 10);
}

TEST(Partition2d, GridNnzSumsToTotal) {
  const auto a = ps::Csr::from_coo(random_coo(64, 64, 500, 23));
  const auto counts = ps::grid_nnz(a, 8, 8);
  std::int64_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(total, a.nnz());
}

TEST(Partition2d, GridNnzMatchesBlockNnz) {
  const auto a = ps::Csr::from_coo(random_coo(24, 24, 150, 24));
  const auto counts = ps::grid_nnz(a, 3, 4);
  const auto rb = ps::block_bounds(24, 3);
  const auto cb = ps::block_bounds(24, 4);
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(counts[static_cast<std::size_t>(i * 4 + j)],
                a.block_nnz(rb[static_cast<std::size_t>(i)], rb[static_cast<std::size_t>(i) + 1],
                            cb[static_cast<std::size_t>(j)], cb[static_cast<std::size_t>(j) + 1]));
    }
  }
}

TEST(Partition2d, DiagonalMatrixIsImbalanced) {
  // Block-diagonal pattern: all nnz in diagonal blocks => max/mean == grid dim.
  ps::Coo coo;
  coo.num_rows = 64;
  coo.num_cols = 64;
  for (std::int64_t i = 0; i < 64; ++i) coo.push(i, i, 1.0f);
  const auto s = ps::grid_imbalance(ps::Csr::from_coo(coo), 8, 8);
  EXPECT_NEAR(s.max_over_mean, 8.0, 1e-9);
  EXPECT_EQ(s.min_nnz, 0);
}
