#include "serve/inference_server.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace plexus::serve {

namespace {

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      std::llround(q * static_cast<double>(xs.size() - 1)));
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(idx), xs.end());
  return xs[idx];
}

}  // namespace

InferenceServer::InferenceServer(const ServedModel& model, ServeOptions opt)
    : model_(&model), opt_(opt) {
  PLEXUS_CHECK(opt_.max_batch >= 1 && opt_.max_queue >= 1 && opt_.max_wait_us >= 0,
               "InferenceServer: bad ServeOptions");
  batcher_ = std::thread(&InferenceServer::batcher_loop, this);
}

InferenceServer::~InferenceServer() { stop(); }

std::optional<std::future<Prediction>> InferenceServer::submit(std::int64_t node) {
  std::future<Prediction> fut;
  std::int64_t depth = 0;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (stopping_ || queue_.size() >= static_cast<std::size_t>(opt_.max_queue)) {
      depth = -1;  // reject
    } else {
      Request r;
      r.node = node;
      r.enqueued = std::chrono::steady_clock::now();
      fut = r.promise.get_future();
      queue_.push_back(std::move(r));
      depth = static_cast<std::int64_t>(queue_.size());
    }
  }
  // Counters under their own lock, never while holding the queue lock.
  {
    std::lock_guard<std::mutex> lk(stats_mutex_);
    if (depth < 0) {
      ++rejected_;
    } else {
      max_queue_depth_ = std::max(max_queue_depth_, depth);
    }
  }
  if (depth < 0) return std::nullopt;
  cv_.notify_all();
  return fut;
}

void InferenceServer::batcher_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      // Linger for a fuller batch — bounded by the oldest request's deadline.
      const auto deadline =
          queue_.front().enqueued + std::chrono::microseconds(opt_.max_wait_us);
      cv_.wait_until(lk, deadline, [&] {
        return stopping_ || queue_.size() >= static_cast<std::size_t>(opt_.max_batch);
      });
      const std::size_t n =
          std::min(queue_.size(), static_cast<std::size_t>(opt_.max_batch));
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    answer_batch(batch);
  }
}

void InferenceServer::answer_batch(std::vector<Request>& batch) {
  const auto n = static_cast<std::int64_t>(batch.size());
  std::vector<Prediction> results(batch.size());
  util::parallel_for(
      0, n,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          results[static_cast<std::size_t>(i)] =
              model_->predict(batch[static_cast<std::size_t>(i)].node);
        }
      },
      /*work_estimate=*/n * model_->num_classes());

  const auto now = std::chrono::steady_clock::now();
  std::vector<double> lats;
  lats.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(results[i]);
    lats.push_back(
        std::chrono::duration<double, std::micro>(now - batch[i].enqueued).count());
  }

  std::lock_guard<std::mutex> lk(stats_mutex_);
  latencies_us_.insert(latencies_us_.end(), lats.begin(), lats.end());
  ++batches_;
  max_batch_size_ = std::max(max_batch_size_, n);
}

void InferenceServer::stop() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
}

ServeStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lk(stats_mutex_);
  ServeStats s;
  s.served = static_cast<std::int64_t>(latencies_us_.size());
  s.rejected = rejected_;
  s.batches = batches_;
  s.max_queue_depth = max_queue_depth_;
  s.max_batch_size = max_batch_size_;
  s.mean_latency_us = util::summarize(latencies_us_).mean;
  s.p50_latency_us = percentile(latencies_us_, 0.50);
  s.p99_latency_us = percentile(latencies_us_, 0.99);
  return s;
}

util::Table InferenceServer::stats_table() const {
  const ServeStats s = stats();
  util::Table t({"counter", "value"});
  t.add_row({"served", util::Table::fmt_count(s.served)});
  t.add_row({"rejected", util::Table::fmt_count(s.rejected)});
  t.add_row({"batches", util::Table::fmt_count(s.batches)});
  t.add_row({"max queue depth", util::Table::fmt_count(s.max_queue_depth)});
  t.add_row({"max batch size", util::Table::fmt_count(s.max_batch_size)});
  t.add_row({"mean latency (us)", util::Table::fmt(s.mean_latency_us)});
  t.add_row({"p50 latency (us)", util::Table::fmt(s.p50_latency_us)});
  t.add_row({"p99 latency (us)", util::Table::fmt(s.p99_latency_us)});
  return t;
}

}  // namespace plexus::serve
