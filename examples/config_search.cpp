// Configuration search with the section-4 performance model: rank every 3D
// grid for a dataset and GPU budget, then functionally verify that the
// predicted-best configuration beats the predicted-worst on a proxy run.
//
//   ./build/examples/config_search --dataset=ogbn-products --gpus=64
//
// The old positional form `config_search [dataset] [gpus]` still works but is
// deprecated.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "perfmodel/perfmodel.hpp"
#include "sim/machine.hpp"
#include "util/arg_parser.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using plexus::util::ArgParser;
  using plexus::util::Table;
  namespace pp = plexus::perf;

  ArgParser args("config_search",
                 "Rank every 3D grid for a dataset and GPU budget with the performance model.",
                 "[dataset] [gpus]");
  args.add_flag("dataset", "name", "Table 4 dataset name", "ogbn-products");
  args.add_flag("gpus", "n", "GPU budget to enumerate grids for", "64");

  switch (args.parse(argc, argv)) {
    case ArgParser::Status::Help: std::fputs(args.usage().c_str(), stdout); return 0;
    case ArgParser::Status::Error:
      std::fprintf(stderr, "config_search: %s\n%s", args.error().c_str(), args.usage().c_str());
      return 1;
    case ArgParser::Status::Ok: break;
  }
  const auto& pos = args.positionals();
  if (!pos.empty()) {
    std::fprintf(stderr,
                 "config_search: note: positional arguments are deprecated; use --key=value "
                 "flags (--help)\n");
  }
  const std::string dataset =
      !pos.empty() && !args.is_set("dataset") ? pos[0] : args.value("dataset");
  const std::string gpus_arg =
      pos.size() > 1 && !args.is_set("gpus") ? pos[1] : args.value("gpus");
  int gpus = 0;
  if (!plexus::util::parse_int(gpus_arg, gpus) || gpus < 1) {
    std::fprintf(stderr, "config_search: bad GPU count '%s'\n%s", gpus_arg.c_str(),
                 args.usage().c_str());
    return 1;
  }

  const auto& info = plexus::graph::dataset_info(dataset);
  const auto& machine = plexus::sim::Machine::perlmutter_a100();
  const auto w = pp::WorkloadStats::from_dataset(info);

  std::printf("ranking %zu configurations of %d GPUs for %s (N=%lld, NNZ=%lld)\n\n",
              pp::enumerate_grids(gpus).size(), gpus, dataset.c_str(),
              static_cast<long long>(w.num_nodes), static_cast<long long>(w.num_nonzeros));

  const auto ranked = pp::rank_configurations(machine, w, gpus);
  Table t({"Rank", "Config", "Dim", "SpMM (ms)", "GEMM (ms)", "Comm (ms)", "Total (ms)"});
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (i >= 5 && i + 3 < ranked.size()) continue;  // head and tail only
    const auto& r = ranked[i];
    t.add_row({std::to_string(i + 1), pp::grid_to_string(r.grid),
               std::to_string(pp::grid_dimensionality(r.grid)) + "D",
               Table::fmt(r.prediction.spmm_seconds * 1e3, 2),
               Table::fmt(r.prediction.gemm_seconds * 1e3, 2),
               Table::fmt(r.prediction.comm_seconds * 1e3, 2),
               Table::fmt(r.prediction.total() * 1e3, 2)});
  }
  t.print();

  // Functional verification on a proxy: best vs worst predicted config.
  if (gpus <= 64) {
    const auto g = plexus::graph::make_proxy(info, 4000, 7);
    auto run = [&](const plexus::sim::GridShape& shape) {
      plexus::core::TrainOptions opt;
      opt.grid = shape;
      opt.machine = &machine;
      opt.model.hidden_dims = {64, 64};
      opt.epochs = 3;
      return plexus::core::train_plexus(g, opt).avg_epoch_seconds(1);
    };
    const double best = run(ranked.front().grid);
    const double worst = run(ranked.back().grid);
    std::printf("\nfunctional proxy check: predicted-best %s -> %.3f ms/epoch, "
                "predicted-worst %s -> %.3f ms/epoch (%.1fx apart)\n",
                pp::grid_to_string(ranked.front().grid).c_str(), best * 1e3,
                pp::grid_to_string(ranked.back().grid).c_str(), worst * 1e3, worst / best);
  }
  return 0;
}
