#include "dense/gemm.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace plexus::dense {

std::int64_t op_rows(const Matrix& a, Trans t) { return t == Trans::N ? a.rows() : a.cols(); }
std::int64_t op_cols(const Matrix& a, Trans t) { return t == Trans::N ? a.cols() : a.rows(); }

namespace {

/// Core kernel for C += alpha * A * B with A (m*k), B (k*n), both non-transposed,
/// blocked for L1/L2 residency. Operands that arrive transposed are materialised
/// by the caller; shard sizes in the simulator are small enough that the copy is
/// cheaper than a strided kernel. The row space is split across the intra-rank
/// engine; each output row keeps the serial i-k-j summation order, and the
/// runtime-dispatched SIMD tile (util/simd.hpp) vectorizes only over j, so
/// results are bitwise-identical for any thread count and any SIMD target.
void gemm_nn_accumulate(float alpha, const Matrix& a, const Matrix& b, Matrix& c) {
  const std::int64_t m = a.rows();
  const std::int64_t k = a.cols();
  const std::int64_t n = b.cols();
  constexpr std::int64_t kBlockI = 64;
  constexpr std::int64_t kBlockK = 128;
  const auto& kernels = simd::active_kernels();
  const auto row_range = [&](std::int64_t m0, std::int64_t m1) {
    for (std::int64_t i0 = m0; i0 < m1; i0 += kBlockI) {
      const std::int64_t i1 = std::min(m1, i0 + kBlockI);
      for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
        const std::int64_t k1 = std::min(k, k0 + kBlockK);
        kernels.gemm_tile(a.data(), a.cols(), b.data(), b.cols(), c.data(), c.cols(), i0, i1, k0,
                          k1, n, alpha);
      }
    }
  };
  util::parallel_for(0, m, row_range, /*work_estimate=*/m * k * n);
}

}  // namespace

void gemm(Trans ta, Trans tb, float alpha, const Matrix& a, const Matrix& b, float beta,
          Matrix& c) {
  const std::int64_t m = op_rows(a, ta);
  const std::int64_t k = op_cols(a, ta);
  const std::int64_t n = op_cols(b, tb);
  PLEXUS_CHECK(op_rows(b, tb) == k, "gemm: inner dimension mismatch");
  PLEXUS_CHECK(c.rows() == m && c.cols() == n, "gemm: output shape mismatch");

  if (beta == 0.0f) {
    c.zero();
  } else if (beta != 1.0f) {
    for (float& v : c.flat()) v *= beta;
  }

  const Matrix* a_eff = &a;
  const Matrix* b_eff = &b;
  Matrix a_t;
  Matrix b_t;
  if (ta == Trans::T) {
    a_t = a.transposed();
    a_eff = &a_t;
  }
  if (tb == Trans::T) {
    b_t = b.transposed();
    b_eff = &b_t;
  }
  gemm_nn_accumulate(alpha, *a_eff, *b_eff, c);
}

Matrix matmul(const Matrix& a, const Matrix& b, Trans ta, Trans tb) {
  Matrix c(op_rows(a, ta), op_cols(b, tb));
  gemm(ta, tb, 1.0f, a, b, 0.0f, c);
  return c;
}

}  // namespace plexus::dense
