#pragma once
/// \file mapped_block.hpp
/// Memory-mapped .plx shard block files for the out-of-core streaming epoch.
/// A MappedBlock is one block file held read-only in memory — mmap with a
/// MADV_WILLNEED hint where the platform has it, a plain (hookable) stdio
/// read everywhere else. Blocks are immutable once opened and reference
/// counted: the shared_ptr a caller holds is also the BlockCache's pin, so
/// an in-flight prefetch can never be unmapped underneath the SpMM that is
/// about to consume it.
///
/// ByteReader is the sequential typed cursor the streaming loader parses
/// headers and arrays with; every advance is bounds-checked against the
/// file size captured at open, so a block truncated on disk surfaces as a
/// clean "truncated block file" error instead of a fault.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace plexus::io {

class MappedBlock {
 public:
  /// Open (and fully fault in, on the fallback path) one block file.
  /// mmap is skipped when FileHooks are installed or PLEXUS_NO_MMAP is set,
  /// so fault injection and the portable path cover the same consumers.
  static std::shared_ptr<const MappedBlock> open(const std::string& path);

  ~MappedBlock();
  MappedBlock(const MappedBlock&) = delete;
  MappedBlock& operator=(const MappedBlock&) = delete;

  std::span<const std::byte> bytes() const { return {data_, size_}; }
  std::int64_t size_bytes() const { return static_cast<std::int64_t>(size_); }
  const std::string& path() const { return path_; }
  bool mapped() const { return map_ != nullptr; }

 private:
  MappedBlock() = default;

  std::string path_;
  void* map_ = nullptr;  // mmap base, nullptr on the heap fallback
  std::size_t map_len_ = 0;
  std::vector<std::uint64_t> heap_;  // fallback storage, 8-byte aligned
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

class ByteReader {
 public:
  explicit ByteReader(const MappedBlock& block)
      : data_(block.bytes().data()), size_(block.bytes().size()), path_(&block.path()) {}

  template <typename T>
  T pod() {
    need(sizeof(T));
    T v{};
    std::memcpy(&v, data_ + off_, sizeof(T));
    off_ += sizeof(T);
    return v;
  }

  /// Zero-copy view of the next `count` elements. The .plx layouts keep
  /// every array aligned to its element size (48-byte header, then i64 /
  /// i32 / f32 runs), which the alignment check enforces.
  template <typename T>
  std::span<const T> array(std::size_t count) {
    need(count * sizeof(T));
    const std::byte* p = data_ + off_;
    PLEXUS_CHECK(reinterpret_cast<std::uintptr_t>(p) % alignof(T) == 0,
                 "misaligned array in " + *path_);
    off_ += count * sizeof(T);
    return {reinterpret_cast<const T*>(p), count};
  }

  std::size_t offset() const { return off_; }
  std::size_t remaining() const { return size_ - off_; }

 private:
  void need(std::size_t n) {
    PLEXUS_CHECK(n <= size_ - off_, "truncated block file " + *path_);
  }

  const std::byte* data_;
  std::size_t size_;
  std::size_t off_ = 0;
  const std::string* path_;
};

}  // namespace plexus::io
