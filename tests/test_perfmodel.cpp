// Tests for the section-4 performance model: features, regression fitting,
// epoch prediction, configuration enumeration and selection.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/datasets.hpp"
#include "perfmodel/perfmodel.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"

namespace pp = plexus::perf;
namespace pg = plexus::graph;
namespace psim = plexus::sim;

namespace {

pp::WorkloadStats products_stats() {
  return pp::WorkloadStats::from_dataset(pg::dataset_info("ogbn-products"));
}

}  // namespace

TEST(PerfModel, WorkloadFromDataset) {
  const auto w = products_stats();
  EXPECT_EQ(w.num_nodes, 2'449'029);
  EXPECT_EQ(w.num_nonzeros, 126'167'053);
  ASSERT_EQ(w.layer_dims.size(), 4u);  // D, 128, 128, C
  EXPECT_EQ(w.layer_dims[0], 100);
  EXPECT_EQ(w.layer_dims[3], 47);
  EXPECT_EQ(w.num_layers(), 3);
}

TEST(PerfModel, FeaturesFollowEq44) {
  // Single layer, grid (Gx, Gy, Gz) = (4, 2, 8): layer 0 roles P=X, Q=Y, R=Z.
  pp::WorkloadStats w;
  w.num_nodes = 1000;
  w.num_nonzeros = 50000;
  w.layer_dims = {10, 20};
  const auto f = pp::comp_model_features(w, {4, 2, 8});
  const double flops_cost = 50000.0 * 10.0;
  const double fwd = (1000.0 / 4.0) * (2.0 / 10.0);
  const double bwd = (1000.0 / 8.0) * (2.0 / 10.0);
  EXPECT_NEAR(f[0], std::sqrt(flops_cost), 1e-9);
  EXPECT_NEAR(f[1], std::sqrt(flops_cost) * fwd, 1e-9);
  EXPECT_NEAR(f[2], std::sqrt(flops_cost) * bwd, 1e-9);
}

TEST(PerfModel, FitRecoversSyntheticCoefficients) {
  // Build observations from known coefficients; the fit must recover them.
  const std::vector<double> truth{7.8e-4, 7.8e-10, 2.6e-10};
  std::vector<std::vector<double>> feats;
  std::vector<double> obs;
  for (const auto& info : pg::paper_datasets()) {
    const auto w = pp::WorkloadStats::from_dataset(info);
    for (const int gpus : {8, 64, 512}) {
      for (const auto& g : pp::enumerate_grids(gpus)) {
        const auto f = pp::comp_model_features(w, g);
        feats.push_back(f);
        obs.push_back(truth[0] * f[0] + truth[1] * f[1] + truth[2] * f[2]);
      }
    }
  }
  const auto model = pp::fit_comp_model(feats, obs);
  EXPECT_NEAR(model.coefficients[0], truth[0], 1e-10);
  EXPECT_NEAR(model.train_r2, 1.0, 1e-9);
  EXPECT_LT(model.train_rmse, 1e-9);
}

TEST(PerfModel, CrossValidationOnNoisyData) {
  plexus::util::SplitMix64 rng(3);
  std::vector<std::vector<double>> feats;
  std::vector<double> obs;
  const auto w = products_stats();
  for (const int gpus : {4, 8, 16, 32, 64, 128}) {
    for (const auto& g : pp::enumerate_grids(gpus)) {
      const auto f = pp::comp_model_features(w, g);
      const double clean = 1e-4 * f[0] + 1e-10 * f[1] + 5e-11 * f[2];
      feats.push_back(f);
      obs.push_back(clean * (1.0 + 0.1 * (rng.next_double() - 0.5)));
    }
  }
  const auto summary = pp::cross_validate_comp_model(feats, obs, 200, 11);
  EXPECT_GT(summary.train_r2, 0.7);
  EXPECT_GT(summary.test_r2, 0.5);
  EXPECT_GE(summary.train_r2, summary.test_r2 - 0.05);
}

TEST(PerfModel, EnumerateGrids) {
  const auto grids = pp::enumerate_grids(64);
  // Number of ordered factorizations of 64 = C(6+2,2) = 28.
  EXPECT_EQ(grids.size(), 28u);
  for (const auto& g : grids) EXPECT_EQ(g.x * g.y * g.z, 64);
  EXPECT_EQ(pp::enumerate_grids(1).size(), 1u);
}

TEST(PerfModel, Dimensionality) {
  EXPECT_EQ(pp::grid_dimensionality({64, 1, 1}), 1);
  EXPECT_EQ(pp::grid_dimensionality({8, 8, 1}), 2);
  EXPECT_EQ(pp::grid_dimensionality({4, 4, 4}), 3);
}

TEST(PerfModel, PredictionScalesDown) {
  const auto& m = psim::Machine::perlmutter_a100();
  const auto w = products_stats();
  const double t8 = pp::predict_epoch(m, w, pp::best_configuration(m, w, 8)).total();
  const double t64 = pp::predict_epoch(m, w, pp::best_configuration(m, w, 64)).total();
  EXPECT_LT(t64, t8);  // strong scaling at these sizes
}

TEST(PerfModel, BestConfigBeatsWorst) {
  const auto& m = psim::Machine::perlmutter_a100();
  const auto w = products_stats();
  const auto ranked = pp::rank_configurations(m, w, 64);
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_LE(ranked.front().prediction.total(), ranked.back().prediction.total());
  // Figure 5: 3D/2D configurations beat extreme 1D ones for ogbn-products@64.
  const auto& best = ranked.front().grid;
  EXPECT_GE(pp::grid_dimensionality(best), 2);
}

TEST(PerfModel, PureYConfigIsBad) {
  // Config V from Table 2 (all parallelism in Y) must rank poorly: it shards
  // only feature columns, leaving tall-skinny SpMMs and full-size all-reduces.
  const auto& m = psim::Machine::perlmutter_a100();
  const auto w = products_stats();
  const double t_y = pp::predict_epoch(m, w, {1, 64, 1}).total();
  const double t_best = pp::predict_epoch(m, w, pp::best_configuration(m, w, 64)).total();
  EXPECT_GT(t_y, 2.0 * t_best);
}

TEST(PerfModel, GridToString) {
  EXPECT_EQ(pp::grid_to_string({2, 8, 1}), "X2Y8Z1");
}

TEST(PerfModel, ChoosePipelineDepthTracksCommIntensity) {
  const auto& m = psim::Machine::perlmutter_a100();
  const auto w = products_stats();
  // Degenerate cases: nothing to pipeline.
  EXPECT_EQ(pp::choose_pipeline_depth(m, w, {8, 1, 1}, 0, 1), 1);
  EXPECT_EQ(pp::choose_pipeline_depth(m, w, {1, 8, 1}, 0, 8), 1);  // P extent 1: free ring
  // With a real P group the choice is a valid pipeline depth.
  const int d = pp::choose_pipeline_depth(m, w, {4, 2, 2}, 0, 8);
  EXPECT_GE(d, 2);
  EXPECT_LE(d, 8);
  // A machine with a far slower interconnect needs at least as much lookahead.
  psim::Machine slow = m;
  slow.beta_intra /= 64.0;
  slow.beta_inter /= 64.0;
  EXPECT_GE(pp::choose_pipeline_depth(slow, w, {4, 2, 2}, 0, 8), d);
  // Per-layer choices may differ (that is the point of the per-layer knob),
  // but every layer's choice is in range.
  for (int l = 0; l < w.num_layers(); ++l) {
    const int dl = pp::choose_pipeline_depth(m, w, {4, 2, 2}, l, 8);
    EXPECT_GE(dl, 1);
    EXPECT_LE(dl, 8);
  }
}

TEST(PerfModel, ChoosePrefetchDepth) {
  const auto& m = psim::Machine::perlmutter_a100();
  // One block: nothing to prefetch ahead of.
  EXPECT_EQ(pp::choose_prefetch_depth(m, 1 << 20, 1e-3, 1), 1);
  // A disk far slower than the SpMM wants lookahead.
  psim::Machine slow = m;
  slow.disk_bw = 1.0e8;  // 100 MB/s: ~10ms per 1 MB block vs 0.1ms of compute
  const int deep = pp::choose_prefetch_depth(slow, 1 << 20, 1e-4, 8);
  EXPECT_GE(deep, 2);
  EXPECT_LE(deep, 8);
  // The RSS budget clamps in-flight blocks: two blocks' worth caps at 2.
  EXPECT_EQ(pp::choose_prefetch_depth(slow, 1 << 20, 1e-4, 8, (1 << 20) * 2),
            std::min(deep, 2));
  // A budget below one block still posts one load at a time.
  EXPECT_EQ(pp::choose_prefetch_depth(slow, 1 << 20, 1e-4, 8, 1), 1);
  // Always within [1, num_blocks] regardless of the cost ratio.
  for (const int nb : {1, 3, 8, 64}) {
    for (const double spmm : {1e-6, 1e-3, 1.0}) {
      const int d = pp::choose_prefetch_depth(m, 4 << 20, spmm, nb);
      EXPECT_GE(d, 1);
      EXPECT_LE(d, nb);
    }
  }
}

TEST(PerfModel, EstimatePerGpuBytesPinnedValue) {
  // Tiny single-layer workload on one GPU: every term is computable by hand.
  pp::WorkloadStats w;
  w.num_nodes = 100;
  w.num_nonzeros = 1000;
  w.layer_dims = {8, 4};  // one layer, so one plane in use
  // CSR shard = nnz*(4+4) + (rows+1)*8; two versions, each with transpose.
  const double adjacency = 2.0 * 2.0 * (1000.0 * 8.0 + 101.0 * 8.0);
  const double activations = 4.0 * 100.0 * (8.0 + 4.0) * 4.0;
  const double features = 3.0 * 100.0 * 8.0 * 4.0;
  EXPECT_NEAR(pp::estimate_per_gpu_bytes(w, {1, 1, 1}), adjacency + activations + features,
              1e-6);
  // A single adjacency version halves exactly the adjacency term.
  EXPECT_NEAR(pp::estimate_per_gpu_bytes(w, {1, 1, 1}, /*adjacency_versions=*/1),
              adjacency / 2.0 + activations + features, 1e-6);
}

TEST(PerfModel, EstimatePerGpuBytesShrinksWithMoreGpus) {
  const auto w = products_stats();
  const double b64 = pp::estimate_per_gpu_bytes(w, {4, 4, 4});
  const double b512 = pp::estimate_per_gpu_bytes(w, {8, 8, 8});
  EXPECT_GT(b64, b512);
  EXPECT_GT(b512, 0.0);
  // More versions can only cost more memory.
  EXPECT_LT(pp::estimate_per_gpu_bytes(w, {4, 4, 4}, 1), pp::estimate_per_gpu_bytes(w, {4, 4, 4}, 2));
}
