// Randomized property tests for the SpMM kernels (sparse/spmm.hpp):
//   - spmm agrees with a dense triple-loop reference on random CSR inputs
//   - spmm_rows over a partition of the row space stitches to the full spmm
//     (the blocked-aggregation invariant of paper section 5.2)
//   - spmm_accumulate is additive: C0 + sum_i A_i*B == accumulate over stages
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "dense/matrix.hpp"
#include "sparse/csr.hpp"
#include "sparse/spmm.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ps = plexus::sparse;
namespace pd = plexus::dense;
namespace pu = plexus::util;

namespace {

ps::Csr random_csr(std::int64_t rows, std::int64_t cols, std::int64_t nnz, std::uint64_t seed) {
  pu::SplitMix64 rng(seed);
  ps::Coo coo;
  coo.num_rows = rows;
  coo.num_cols = cols;
  for (std::int64_t i = 0; i < nnz; ++i) {
    coo.push(static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(rows))),
             static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(cols))),
             rng.next_float() * 2.0f - 1.0f);
  }
  return ps::Csr::from_coo(coo);
}

pd::Matrix random_dense(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  pu::CounterRng rng(seed);
  pd::Matrix m(r, c);
  for (std::int64_t i = 0; i < r * c; ++i) {
    m.flat()[static_cast<std::size_t>(i)] = rng.uniform_at(static_cast<std::uint64_t>(i), -1, 1);
  }
  return m;
}

/// Dense reference: C = dense(A) * B computed in double precision.
pd::Matrix dense_reference(const ps::Csr& a, const pd::Matrix& b) {
  const std::vector<float> ad = a.to_dense();
  pd::Matrix c(a.rows(), b.cols());
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    for (std::int64_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(ad[static_cast<std::size_t>(i * a.cols() + k)]) *
               static_cast<double>(b.at(k, j));
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

}  // namespace

TEST(SpmmProperties, MatchesDenseReferenceRandomized) {
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    const std::int64_t m = 17 + static_cast<std::int64_t>(trial) * 13;
    const std::int64_t k = 23 + static_cast<std::int64_t>(trial) * 7;
    const std::int64_t n = 5 + static_cast<std::int64_t>(trial) * 3;
    const ps::Csr a = random_csr(m, k, m * 4, 1000 + trial);
    const pd::Matrix b = random_dense(k, n, 2000 + trial);
    const pd::Matrix c = ps::spmm(a, b);
    const pd::Matrix ref = dense_reference(a, b);
    EXPECT_LT(pd::Matrix::max_abs_diff(c, ref), 1e-4f) << "trial " << trial;
  }
}

TEST(SpmmProperties, EmptyAndDenseExtremes) {
  // All-zero pattern: result is exactly zero.
  ps::Coo empty;
  empty.num_rows = 9;
  empty.num_cols = 11;
  const ps::Csr a0 = ps::Csr::from_coo(empty);
  const pd::Matrix b = random_dense(11, 6, 42);
  const pd::Matrix c0 = ps::spmm(a0, b);
  for (float v : c0.flat()) EXPECT_EQ(v, 0.0f);

  // Fully dense pattern: still matches the reference.
  ps::Coo full;
  full.num_rows = 8;
  full.num_cols = 11;
  pu::CounterRng rng(7);
  for (std::int64_t r = 0; r < 8; ++r) {
    for (std::int64_t c = 0; c < 11; ++c) {
      full.push(r, c, rng.uniform_at(static_cast<std::uint64_t>(r * 11 + c), -1.0f, 1.0f));
    }
  }
  const ps::Csr a1 = ps::Csr::from_coo(full);
  EXPECT_LT(pd::Matrix::max_abs_diff(ps::spmm(a1, b), dense_reference(a1, b)), 1e-4f);
}

TEST(SpmmProperties, RowRangesStitchToFullProduct) {
  const ps::Csr a = random_csr(64, 40, 300, 3);
  const pd::Matrix b = random_dense(40, 9, 4);
  const pd::Matrix full = ps::spmm(a, b);

  // Partition the row space into uneven blocks (including an empty range) and
  // stitch the per-block results back together.
  const std::int64_t splits[] = {0, 5, 5, 21, 50, 64};
  pd::Matrix stitched(a.rows(), b.cols());
  for (std::size_t i = 0; i + 1 < std::size(splits); ++i) {
    ps::spmm_rows(a, b, stitched, splits[i], splits[i + 1]);
  }
  EXPECT_EQ(pd::Matrix::max_abs_diff(stitched, full), 0.0f)
      << "union of row ranges must equal the one-shot kernel bit-for-bit";
}

TEST(SpmmProperties, AccumulateIsAdditive) {
  const std::int64_t k = 30, n = 7, m = 25;
  const ps::Csr a1 = random_csr(m, k, 120, 11);
  const ps::Csr a2 = random_csr(m, k, 90, 12);
  const pd::Matrix b = random_dense(k, n, 13);

  // C = C0; C += A1*B; C += A2*B  must equal  C0 + spmm(A1,B) + spmm(A2,B).
  pd::Matrix c = random_dense(m, n, 14);
  pd::Matrix expected = c;
  ps::spmm_accumulate(a1, b, c);
  ps::spmm_accumulate(a2, b, c);

  const pd::Matrix p1 = ps::spmm(a1, b);
  const pd::Matrix p2 = ps::spmm(a2, b);
  for (std::int64_t i = 0; i < m * n; ++i) {
    expected.flat()[static_cast<std::size_t>(i)] +=
        p1.flat()[static_cast<std::size_t>(i)] + p2.flat()[static_cast<std::size_t>(i)];
  }
  EXPECT_LT(pd::Matrix::max_abs_diff(c, expected), 1e-5f);
}

TEST(SpmmProperties, FlopCount) {
  const ps::Csr a = random_csr(20, 20, 55, 5);
  EXPECT_EQ(ps::spmm_flops(a, 16), 2 * a.nnz() * 16);
}

TEST(SpmmProperties, ThreadedMatchesSerialWorkerBitwise) {
  // The nnz-balanced parallel path must reproduce the single-threaded
  // reference worker exactly, for any thread budget: every output row is
  // computed by one chunk with the serial per-row summation order. Sized
  // above the small-work cutoff so the pool path actually runs.
  const ps::Csr a = random_csr(600, 300, 9000, 21);
  const pd::Matrix b = random_dense(300, 16, 22);
  pd::Matrix serial(a.rows(), b.cols());
  ps::spmm_rows_serial(a, b, serial, 0, a.rows());

  for (const int threads : {2, 4, 8}) {
    pu::ScopedIntraRankThreads scope(threads);
    const pd::Matrix c = ps::spmm(a, b);
    EXPECT_EQ(pd::Matrix::max_abs_diff(c, serial), 0.0f) << "threads=" << threads;
  }
}

TEST(SpmmProperties, ThreadedAccumulateMatchesSerialWorkerBitwise) {
  const ps::Csr a = random_csr(500, 200, 8000, 23);
  const pd::Matrix b = random_dense(200, 16, 24);
  const pd::Matrix c0 = random_dense(500, 16, 25);

  pd::Matrix serial = c0;
  ps::spmm_rows_serial(a, b, serial, 0, a.rows(), /*accumulate=*/true);

  for (const int threads : {2, 4, 8}) {
    pu::ScopedIntraRankThreads scope(threads);
    pd::Matrix c = c0;
    ps::spmm_accumulate(a, b, c);
    EXPECT_EQ(pd::Matrix::max_abs_diff(c, serial), 0.0f) << "threads=" << threads;
  }
}

TEST(SpmmProperties, SerialWorkerZeroFillVsAccumulateFlag) {
  // The shared row-range worker: accumulate=false must zero-fill (ignore
  // prior C contents); accumulate=true must add on top of them.
  const ps::Csr a = random_csr(40, 30, 200, 26);
  const pd::Matrix b = random_dense(30, 6, 27);
  const pd::Matrix prior = random_dense(40, 6, 28);

  pd::Matrix overwrite = prior;
  ps::spmm_rows_serial(a, b, overwrite, 0, a.rows(), /*accumulate=*/false);
  EXPECT_EQ(pd::Matrix::max_abs_diff(overwrite, ps::spmm(a, b)), 0.0f);

  // accumulate=true folds the products into the prior value as it goes, so
  // it matches prior + overwrite only up to float re-association.
  pd::Matrix accum = prior;
  ps::spmm_rows_serial(a, b, accum, 0, a.rows(), /*accumulate=*/true);
  for (std::int64_t i = 0; i < accum.size(); ++i) {
    EXPECT_NEAR(accum.flat()[static_cast<std::size_t>(i)],
                prior.flat()[static_cast<std::size_t>(i)] +
                    overwrite.flat()[static_cast<std::size_t>(i)],
                1e-5f);
  }
}
