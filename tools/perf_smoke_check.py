#!/usr/bin/env python3
"""CI perf-smoke gate for the pipelined aggregation path.

Reads a google-benchmark JSON report from bench/micro_collectives and asserts
that the pipelined blocked-aggregation schedule exposes strictly less
simulated communication time than the fully blocking baseline, by at least
the checked-in margin (tools/perf_smoke_thresholds.json). The gated counters
(sim_exposed_comm_s / sim_hidden_comm_s) are derived from post-time clocks and
the ring cost model — fully deterministic, so the gate is runner-independent.

Usage: perf_smoke_check.py <micro_collectives.json> [thresholds.json]
"""
import json
import os
import sys


def load_counters(report_path):
    with open(report_path) as f:
        report = json.load(f)
    counters = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        counters[b["name"]] = b
    return counters


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    report_path = sys.argv[1]
    thresholds_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(os.path.abspath(__file__)), "perf_smoke_thresholds.json")
    )
    with open(thresholds_path) as f:
        thresholds = json.load(f)
    counters = load_counters(report_path)

    max_ratio = thresholds["pipelined_vs_blocking_max_ratio"]
    failures = []
    for pair in thresholds["pairs"]:
        base_name, piped_name = pair["baseline"], pair["pipelined"]
        missing = [n for n in (base_name, piped_name) if n not in counters]
        if missing:
            failures.append(f"benchmark(s) missing from report: {', '.join(missing)}")
            continue
        base = counters[base_name].get("sim_exposed_comm_s")
        piped = counters[piped_name].get("sim_exposed_comm_s")
        hidden = counters[piped_name].get("sim_hidden_comm_s")
        if base is None or piped is None or hidden is None:
            failures.append(f"{piped_name}: sim_* counters missing from report")
            continue
        ratio = piped / base if base > 0 else float("inf")
        verdict = "OK" if (piped < base and ratio <= max_ratio and hidden > 0) else "FAIL"
        print(
            f"[{verdict}] {piped_name}: exposed {piped * 1e6:.1f}us vs blocking "
            f"{base * 1e6:.1f}us (ratio {ratio:.3f}, limit {max_ratio}); "
            f"hidden {hidden * 1e6:.1f}us"
        )
        if verdict == "FAIL":
            failures.append(
                f"{piped_name}: pipelined exposed comm not below blocking baseline by the "
                f"required margin (ratio {ratio:.3f} > {max_ratio}) or no hidden time"
            )

    if failures:
        print("\nperf-smoke FAILED:", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        return 1
    print("\nperf-smoke passed: pipelined aggregation hides communication as required.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
