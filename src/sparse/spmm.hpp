#pragma once
/// \file spmm.hpp
/// Sparse x dense matrix multiplication (the aggregation kernel, eq. 2.1/2.7).
///
/// Row-split CSR kernel, mirroring the GPU row-splitting scheme of Yang et al.
/// that the paper's computation model (section 4.1) reasons about. A row-range
/// variant supports the blocked-aggregation optimisation (section 5.2), where
/// the sparse shard is processed in row blocks with per-block all-reduce.
///
/// All entry points run on the calling thread's intra-rank engine
/// (util/thread_pool.hpp): the row space is cut into nnz-balanced ranges, one
/// per thread. Each output row is owned by exactly one range, so results are
/// bitwise-identical to the serial kernel for any thread count.

#include "dense/matrix.hpp"
#include "sparse/csr.hpp"

namespace plexus::sparse {

/// C = A * B, where A is (m x k) CSR and B is (k x n) dense. C must be (m x n).
void spmm(const Csr& a, const dense::Matrix& b, dense::Matrix& c);

/// Row-range variant: computes rows [r0, r1) of A * B into rows [r0, r1) of C.
void spmm_rows(const Csr& a, const dense::Matrix& b, dense::Matrix& c, std::int64_t r0,
               std::int64_t r1);

/// Single-threaded reference worker shared by all entry points: rows [r0, r1)
/// of A * B into C, zero-filling each output row first, or accumulating into
/// it when `accumulate` is set. Kept public as the baseline the threaded
/// paths are tested (and benchmarked) against.
void spmm_rows_serial(const Csr& a, const dense::Matrix& b, dense::Matrix& c, std::int64_t r0,
                      std::int64_t r1, bool accumulate = false);

/// Window variant for streamed shards: A is a *block* of some larger matrix
/// (its row 0 corresponds to global row `out_r0`); computes all of A * B into
/// rows [out_r0, out_r0 + A.rows()) of C. Bitwise-identical to spmm_rows over
/// the assembled matrix, since each output row's accumulation order is the
/// row's own nonzero order either way.
void spmm_into_rows(const Csr& a, const dense::Matrix& b, dense::Matrix& c, std::int64_t out_r0);

/// Convenience allocation wrapper.
dense::Matrix spmm(const Csr& a, const dense::Matrix& b);

/// C += A * B (used by stage-accumulating distributed SpMM algorithms such as
/// CAGNET's 1D/1.5D, which sum per-stage partial products).
void spmm_accumulate(const Csr& a, const dense::Matrix& b, dense::Matrix& c);

/// FLOP count of spmm(a, b): 2 * nnz * n.
std::int64_t spmm_flops(const Csr& a, std::int64_t dense_cols);

}  // namespace plexus::sparse
