#include "partition/halo.hpp"

#include <algorithm>
#include <unordered_map>

#include "sparse/coo.hpp"
#include "util/error.hpp"

namespace plexus::part {

std::vector<PartSubgraph> build_halo_plans(const sparse::Csr& a_norm, const Partitioning& p) {
  PLEXUS_CHECK(a_norm.rows() == a_norm.cols(), "square adjacency required");
  PLEXUS_CHECK(static_cast<std::int64_t>(p.assignment.size()) == a_norm.rows(),
               "partitioning does not match adjacency");
  const int parts = p.num_parts;
  const std::int64_t n = a_norm.rows();

  std::vector<PartSubgraph> plans(static_cast<std::size_t>(parts));
  // Owned lists (ascending by construction) and global -> local owned index.
  std::vector<std::int32_t> local_idx(static_cast<std::size_t>(n), -1);
  for (std::int64_t v = 0; v < n; ++v) {
    auto& plan = plans[static_cast<std::size_t>(p.assignment[static_cast<std::size_t>(v)])];
    local_idx[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(plan.owned.size());
    plan.owned.push_back(v);
  }

  const auto rp = a_norm.row_ptr();
  const auto ci = a_norm.col_idx();
  const auto va = a_norm.vals();

  for (int i = 0; i < parts; ++i) {
    auto& plan = plans[static_cast<std::size_t>(i)];
    // Halo set: distinct out-of-part neighbours, ascending.
    std::vector<std::int64_t> halo;
    for (const auto v : plan.owned) {
      for (std::int64_t k = rp[static_cast<std::size_t>(v)];
           k < rp[static_cast<std::size_t>(v) + 1]; ++k) {
        const auto u = static_cast<std::int64_t>(ci[static_cast<std::size_t>(k)]);
        if (p.assignment[static_cast<std::size_t>(u)] != i) halo.push_back(u);
      }
    }
    std::sort(halo.begin(), halo.end());
    halo.erase(std::unique(halo.begin(), halo.end()), halo.end());
    plan.halo = std::move(halo);

    std::unordered_map<std::int64_t, std::int32_t> halo_pos;
    halo_pos.reserve(plan.halo.size());
    for (std::size_t h = 0; h < plan.halo.size(); ++h) {
      halo_pos[plan.halo[h]] = static_cast<std::int32_t>(h);
    }

    // Local adjacency in [owned | halo] column space.
    sparse::Coo coo;
    coo.num_rows = plan.num_owned();
    coo.num_cols = plan.num_owned() + plan.num_halo();
    for (std::size_t r = 0; r < plan.owned.size(); ++r) {
      const auto v = plan.owned[r];
      for (std::int64_t k = rp[static_cast<std::size_t>(v)];
           k < rp[static_cast<std::size_t>(v) + 1]; ++k) {
        const auto u = static_cast<std::int64_t>(ci[static_cast<std::size_t>(k)]);
        std::int64_t col;
        if (p.assignment[static_cast<std::size_t>(u)] == i) {
          col = local_idx[static_cast<std::size_t>(u)];
        } else {
          col = plan.num_owned() + halo_pos.at(u);
        }
        coo.push(static_cast<std::int64_t>(r), col, va[static_cast<std::size_t>(k)]);
      }
    }
    plan.local_adj = sparse::Csr::from_coo(coo, false);
    plan.send_rows.resize(static_cast<std::size_t>(parts));
    plan.recv_halo.resize(static_cast<std::size_t>(parts));
  }

  // Exchange plans: iterate each part's halo (ascending); the owner's send
  // list and the receiver's slot list are built in the same order.
  for (int i = 0; i < parts; ++i) {
    auto& plan = plans[static_cast<std::size_t>(i)];
    for (std::size_t h = 0; h < plan.halo.size(); ++h) {
      const auto g = plan.halo[h];
      const auto owner = p.assignment[static_cast<std::size_t>(g)];
      plans[static_cast<std::size_t>(owner)].send_rows[static_cast<std::size_t>(i)].push_back(
          local_idx[static_cast<std::size_t>(g)]);
      plan.recv_halo[static_cast<std::size_t>(owner)].push_back(static_cast<std::int32_t>(h));
    }
  }
  return plans;
}

}  // namespace plexus::part
