#include "core/dataset_view.hpp"

#include <utility>

#include "core/shard.hpp"
#include "util/error.hpp"

namespace plexus::core {

InMemoryDatasetView::InMemoryDatasetView(const PlexusDataset& ds) : ds_(&ds) {
  num_nodes_ = ds.num_nodes;
  padded_nodes_ = ds.padded_nodes;
  feature_dim_ = ds.feature_dim;
  padded_feature_dim_ = ds.padded_feature_dim;
  num_classes_ = ds.num_classes;
  train_total_ = ds.train_total;
  scheme_ = ds.scheme;
}

sparse::Csr InMemoryDatasetView::adjacency_block(int version, std::int64_t r0, std::int64_t r1,
                                                std::int64_t c0, std::int64_t c1) const {
  const sparse::Csr& a = version % 2 == 0 ? ds_->adj_even : ds_->adj_odd;
  return a.block(r0, r1, c0, c1);
}

dense::Matrix InMemoryDatasetView::feature_block(std::int64_t r0, std::int64_t r1,
                                                std::int64_t c0, std::int64_t c1) const {
  return extract_block(ds_->features, Slice{r0, r1}, Slice{c0, c1});
}

const std::vector<std::int32_t>& InMemoryDatasetView::labels() const { return ds_->labels; }

const std::vector<std::uint8_t>& InMemoryDatasetView::mask(Split split) const {
  switch (split) {
    case Split::Train: return ds_->train_mask;
    case Split::Val: return ds_->val_mask;
    case Split::Test: return ds_->test_mask;
  }
  return ds_->train_mask;
}

ShardedDatasetView::ShardedDatasetView(std::string dir) : dir_(std::move(dir)) {
  const io::ShardedMeta meta = io::read_meta(dir_);
  const io::PlexusShardMeta pm = io::read_plexus_meta(dir_);
  padded_nodes_ = meta.num_nodes;
  padded_feature_dim_ = meta.feature_dim;
  num_classes_ = meta.num_classes;
  num_nodes_ = pm.valid_nodes;
  feature_dim_ = pm.valid_feature_dim;
  train_total_ = pm.train_total;
  scheme_ = static_cast<PermutationScheme>(pm.scheme);
  adjacency_versions_ = pm.adjacency_versions;
  PLEXUS_CHECK(num_nodes_ <= padded_nodes_ && feature_dim_ <= padded_feature_dim_,
               "sharded dataset: inconsistent metadata in " + dir_);
  labels_ = io::load_labels(dir_);
  masks_ = io::load_masks(dir_);
  PLEXUS_CHECK(static_cast<std::int64_t>(labels_.size()) == padded_nodes_ &&
                   static_cast<std::int64_t>(masks_.train.size()) == padded_nodes_,
               "sharded dataset: labels/masks do not cover the padded nodes");
}

sparse::Csr ShardedDatasetView::adjacency_block(int version, std::int64_t r0, std::int64_t r1,
                                               std::int64_t c0, std::int64_t c1) const {
  const bool odd = version % 2 != 0 && adjacency_versions_ > 1;
  return io::load_adjacency_block(dir_, r0, r1, c0, c1, &stats_, odd ? "adjo" : "adj");
}

dense::Matrix ShardedDatasetView::feature_block(std::int64_t r0, std::int64_t r1,
                                               std::int64_t c0, std::int64_t c1) const {
  return io::load_feature_block(dir_, r0, r1, c0, c1, &stats_);
}

const std::vector<std::int32_t>& ShardedDatasetView::labels() const { return labels_; }

const std::vector<std::uint8_t>& ShardedDatasetView::mask(Split split) const {
  switch (split) {
    case Split::Train: return masks_.train;
    case Split::Val: return masks_.val;
    case Split::Test: return masks_.test;
  }
  return masks_.train;
}

void write_sharded_plexus_dataset(const std::string& dir, const PlexusDataset& ds, int parts) {
  PLEXUS_CHECK(parts > 0 && ds.padded_nodes % parts == 0,
               "write_sharded_plexus_dataset: parts must divide padded_nodes (pass the grid "
               "volume the dataset was padded for)");
  io::write_sharded_dataset(dir, ds.adj_even, ds.features, ds.labels, ds.num_classes,
                            parts, parts);
  const bool two_versions = ds.scheme == PermutationScheme::Double;
  if (two_versions) io::write_adjacency_blocks(dir, "adjo", ds.adj_odd, parts, parts);
  io::write_masks(dir, io::ShardedMasks{ds.train_mask, ds.val_mask, ds.test_mask});
  io::PlexusShardMeta pm;
  pm.valid_nodes = ds.num_nodes;
  pm.valid_feature_dim = ds.feature_dim;
  pm.train_total = ds.train_total;
  pm.scheme = static_cast<std::int32_t>(ds.scheme);
  pm.adjacency_versions = two_versions ? 2 : 1;
  io::write_plexus_meta(dir, pm);
}

}  // namespace plexus::core
