#pragma once
/// \file served_model.hpp
/// A trained Plexus model loaded from a checkpoint directory for inference.
///
/// Serving full-graph GCN node classification has a property training does
/// not: the graph is fixed, so every node's logits can be computed ONCE — a
/// single serial forward pass over the checkpoint's trained features and
/// global weight matrices — and every query after that is an O(num_classes)
/// argmax against the cached logits. ServedModel does exactly that at load
/// time and then answers `predict` lookups concurrently (all state is
/// immutable after construction; const methods are thread-safe).
///
/// Queries address nodes by their ORIGINAL graph id. The preprocessing
/// permutations regenerate deterministically from the checkpointed
/// (scheme, preprocess_seed, num_layers), giving the original-id → logits-row
/// map; the argmax runs over the valid classes only (padded weight columns
/// are zero, so padded-class logits could otherwise shadow negative real
/// logits).

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset_view.hpp"
#include "core/preprocess.hpp"
#include "dense/matrix.hpp"
#include "loader/checkpoint.hpp"

namespace plexus::serve {

struct Prediction {
  std::int32_t label = 0;  ///< argmax class
  float score = 0.0f;      ///< its logit
};

class ServedModel {
 public:
  /// Load `checkpoint_dir` (a core::save_checkpoint directory) and run the
  /// one-time full-graph forward pass.
  explicit ServedModel(const std::string& checkpoint_dir);

  std::int64_t num_nodes() const { return ds_.num_nodes; }
  std::int64_t num_classes() const { return ds_.num_classes; }
  int num_layers() const { return state_.num_layers(); }
  const io::ModelState& state() const { return state_; }

  /// Classify one node (original graph id in [0, num_nodes())). Thread-safe.
  Prediction predict(std::int64_t node) const;

  /// Ground-truth label of a node (original id) — test/reporting convenience.
  std::int32_t label(std::int64_t node) const;
  /// True when the node is in the given split.
  bool in_split(std::int64_t node, core::Split split) const;

  /// Cached activation of layer `l` (layer output block, padded shape);
  /// activations(num_layers() - 1) are the logits.
  const dense::Matrix& activations(int l) const;
  const dense::Matrix& logits() const;

  /// The logits row a node's outputs live in (the regenerated output
  /// permutation) — exposed for tests that compare against training.
  std::int64_t logits_row(std::int64_t node) const;

 private:
  io::ModelState state_;
  core::PlexusDataset ds_;
  std::vector<dense::Matrix> acts_;   ///< one per layer, last = logits
  std::vector<std::int64_t> p_out_;   ///< original id -> output row
};

}  // namespace plexus::serve
