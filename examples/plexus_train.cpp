// Command-line training driver — the "plexus run" entry point a downstream
// user would script:
//
//   ./build/examples/plexus_train --dataset=ogbn-products --nodes=8000
//       --grid=4x2x2 --epochs=10 --backend=local --agg=sparse
//   ./build/examples/plexus_train --gpus=16        # perf model picks the grid
//   ./build/examples/plexus_train --checkpoint=/tmp/ckpt --checkpoint-every=2
//   ./build/examples/plexus_train --resume=/tmp/ckpt --epochs=10
//
// dataset: any Table 4 name (a scaled proxy is generated at --nodes scale).
// --gpus asks the performance model for the best grid at that GPU budget
// (section 4.3). --backend picks the byte transport (sim | local, plus mpi in
// PLEXUS_WITH_MPI builds; default: PLEXUS_BACKEND, else sim) — losses are
// bitwise-identical across all of them. The mpi backend runs one process per
// rank: launch under `mpirun -np <volume>`; rank 0 preprocesses and writes a
// sharded dataset directory (PLEXUS_SHARD_DIR, default under /tmp), every
// rank then streams only its own shard's block files (see docs/COMM.md).
// --agg picks the aggregation strategy (dense | sparse | auto; default:
// PLEXUS_AGG, else the model's) — losses are bitwise-identical, wire bytes
// differ. --wire picks the collective wire format (fp32 | bf16; default:
// PLEXUS_WIRE, else fp32) — bf16 halves the float wire volume but is an
// explicit numeric change (losses close, not bitwise; docs/COMM.md).
// --checkpoint writes a restorable checkpoint directory (final epoch
// always, every k-th epoch with --checkpoint-every=k); --resume continues a
// checkpointed run bitwise (see docs/SERVING.md).
//
// Out-of-core streaming (docs/ARCHITECTURE.md): --write-shards=DIR generates
// the proxy dataset straight to a sharded block-file directory without ever
// materialising the graph in memory (graph::rmat_to_shards) and exits;
// --stream-dir=DIR then trains out of that directory, streaming adjacency
// blocks through an LRU cache bounded by --rss-budget=MB (default:
// PLEXUS_RSS_MB, else unbounded) with an IO prefetch pipeline of
// --prefetch-depth blocks (default: adaptive). Epoch losses are
// bitwise-identical to the in-memory run over the same proxy.
//
// The old positional form `plexus_train [dataset] [nodes] [gx] [gy] [gz]
// [epochs] [backend] [agg]` (gx=0 = model-chosen gy-GPU grid) still works but
// is deprecated.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/dataset_view.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "graph/rmat_shards.hpp"
#include "perfmodel/perfmodel.hpp"
#include "sim/machine.hpp"
#include "util/arg_parser.hpp"
#include "util/enum_names.hpp"
#include "util/parse.hpp"
#include "util/simd.hpp"

namespace {

/// Parse "XxYxZ" (e.g. "4x2x2").
bool parse_grid(const std::string& s, int& gx, int& gy, int& gz) {
  const auto a = s.find('x');
  const auto b = a == std::string::npos ? std::string::npos : s.find('x', a + 1);
  if (b == std::string::npos) return false;
  return plexus::util::parse_int(s.substr(0, a), gx) &&
         plexus::util::parse_int(s.substr(a + 1, b - a - 1), gy) &&
         plexus::util::parse_int(s.substr(b + 1), gz) && gx >= 0 && gy >= 1 && gz >= 1;
}

int fail(const plexus::util::ArgParser& args, const std::string& what) {
  std::fprintf(stderr, "plexus_train: %s\n%s", what.c_str(), args.usage().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using plexus::util::ArgParser;
  ArgParser args("plexus_train", "Train the Plexus 3D-parallel GCN on a proxy dataset.",
                 "[dataset] [nodes] [gx] [gy] [gz] [epochs] [backend] [agg]");
  args.add_flag("dataset", "name", "Table 4 dataset (proxy generated at --nodes scale)",
                "ogbn-products");
  args.add_flag("nodes", "n", "proxy node count", "4000");
  args.add_flag("grid", "XxYxZ", "3D grid shape", "2x2x2");
  args.add_flag("gpus", "n", "let the performance model pick the best n-GPU grid");
  args.add_flag("epochs", "n", "total training epochs", "10");
  args.add_flag("backend", "name",
                "byte transport: " + plexus::comm::backend_choices() +
                    " (default: PLEXUS_BACKEND, else sim)");
  args.add_flag("agg", "name",
                "aggregation: " + plexus::util::enum_choices<plexus::core::Aggregation>() +
                    " (default: PLEXUS_AGG, else the model's)");
  args.add_flag("wire", "name",
                "fp32 wire format: " +
                    plexus::util::enum_choices<plexus::comm::WirePrecision>() +
                    " (default: PLEXUS_WIRE, else fp32; bf16 is not bitwise)");
  args.add_flag("checkpoint", "dir", "write a checkpoint directory (final epoch; see -every)");
  args.add_flag("checkpoint-every", "k", "also checkpoint every k-th epoch", "0");
  args.add_flag("resume", "dir", "resume from a checkpoint directory (bitwise continuation)");
  args.add_flag("write-shards", "dir",
                "generate the proxy straight to a sharded dataset directory and exit "
                "(out-of-core; bitwise-equal to preprocessing in memory)");
  args.add_flag("stream-dir", "dir",
                "train out-of-core from a sharded dataset directory (losses bitwise-equal "
                "to the in-memory run)");
  args.add_flag("rss-budget", "MB",
                "streaming block-cache budget in MB (default: PLEXUS_RSS_MB, else unbounded)");
  args.add_flag("prefetch-depth", "n",
                "streaming IO prefetch depth (default: adaptive from the perf model)");

  switch (args.parse(argc, argv)) {
    case ArgParser::Status::Help: std::fputs(args.usage().c_str(), stdout); return 0;
    case ArgParser::Status::Error:
      std::fprintf(stderr, "plexus_train: %s\n%s", args.error().c_str(), args.usage().c_str());
      return 1;
    case ArgParser::Status::Ok: break;
  }

  // Deprecated positional form: fills any value its matching flag didn't set.
  const auto& pos = args.positionals();
  if (!pos.empty()) {
    std::fprintf(stderr,
                 "plexus_train: note: positional arguments are deprecated; use --key=value "
                 "flags (--help)\n");
  }
  const auto positional_or = [&](std::size_t i, std::string_view flag) {
    return i < pos.size() && !args.is_set(flag) ? pos[i] : std::string(args.value(flag));
  };

  const std::string dataset = positional_or(0, "dataset");
  std::int64_t nodes = 0;
  if (!plexus::util::parse_int64(positional_or(1, "nodes"), nodes) || nodes < 1) {
    return fail(args, "bad node count '" + positional_or(1, "nodes") + "'");
  }
  int gx = 2, gy = 2, gz = 2;
  if (pos.size() > 2 && !args.is_set("grid")) {
    // Legacy split grid args: [gx] [gy] [gz]; gx=0 = model-chosen gy-GPU grid.
    if (!plexus::util::parse_int(pos[2], gx) || gx < 0) {
      return fail(args, "bad grid dimension gx '" + pos[2] + "'");
    }
    if (pos.size() > 3 && (!plexus::util::parse_int(pos[3], gy) || gy < 1)) {
      return fail(args, "bad grid dimension gy '" + pos[3] + "'");
    }
    if (pos.size() > 4 && (!plexus::util::parse_int(pos[4], gz) || gz < 1)) {
      return fail(args, "bad grid dimension gz '" + pos[4] + "'");
    }
  } else if (!parse_grid(args.value("grid"), gx, gy, gz)) {
    return fail(args, "bad --grid '" + args.value("grid") + "' (expected XxYxZ)");
  }
  int gpu_budget = 0;  // > 0: ask the perf model
  if (args.is_set("gpus") && (!args.value_int("gpus", gpu_budget) || gpu_budget < 1)) {
    return fail(args, "bad --gpus '" + args.value("gpus") + "'");
  }
  if (gx == 0) gpu_budget = gy;  // legacy spelling of the same request
  int epochs = 0;
  if (!plexus::util::parse_int(positional_or(5, "epochs"), epochs) || epochs < 1) {
    return fail(args, "bad epoch count '" + positional_or(5, "epochs") + "'");
  }
  auto backend = plexus::comm::default_backend();
  const std::string backend_arg = positional_or(6, "backend");
  if (!backend_arg.empty() && !plexus::comm::backend_from_string(backend_arg, backend)) {
    return fail(args, plexus::util::enum_error<plexus::comm::Backend>(
                          backend_arg, plexus::comm::backend_choices()));
  }
  auto agg = plexus::core::env_aggregation();
  const std::string agg_arg = positional_or(7, "agg");
  if (!agg_arg.empty()) {
    plexus::core::Aggregation a = plexus::core::Aggregation::Dense;
    if (!plexus::core::aggregation_from_string(agg_arg, a)) {
      return fail(args, plexus::util::enum_error<plexus::core::Aggregation>(agg_arg));
    }
    agg = a;
  }
  auto wire = plexus::comm::default_wire_precision();
  if (args.is_set("wire") &&
      !plexus::comm::wire_precision_from_string(args.value("wire"), wire)) {
    return fail(args,
                plexus::util::enum_error<plexus::comm::WirePrecision>(args.value("wire")));
  }
  const std::string checkpoint_dir = args.value("checkpoint");
  int checkpoint_every = 0;
  if (!args.value_int("checkpoint-every", checkpoint_every) || checkpoint_every < 0) {
    return fail(args, "bad --checkpoint-every '" + args.value("checkpoint-every") + "'");
  }
  const std::string resume_dir = args.value("resume");
  const std::string write_shards_dir = args.value("write-shards");
  const std::string stream_dir = args.value("stream-dir");
  std::int64_t rss_budget_mb = -1;
  if (args.is_set("rss-budget") &&
      (!args.value_int64("rss-budget", rss_budget_mb) || rss_budget_mb < 0)) {
    return fail(args, "bad --rss-budget '" + args.value("rss-budget") + "'");
  }
  int prefetch_depth = -1;
  if (args.is_set("prefetch-depth") &&
      (!args.value_int("prefetch-depth", prefetch_depth) || prefetch_depth < 1)) {
    return fail(args, "bad --prefetch-depth '" + args.value("prefetch-depth") + "'");
  }

  const bool distributed = backend == plexus::comm::Backend::Mpi;
  if (distributed && !plexus::comm::mpi_transport_available()) {
    std::fprintf(stderr,
                 "this build has no mpi backend (expected %s); rebuild with "
                 "-DPLEXUS_WITH_MPI=ON\n",
                 plexus::comm::backend_choices().c_str());
    return 1;
  }

  plexus::comm::MpiRuntime rt;  // rank 0 / size 1 unless the mpi backend is up
  if (distributed) rt = plexus::comm::mpi_runtime_init(&argc, &argv);

  const auto& info = plexus::graph::dataset_info(dataset);
  const auto& machine = plexus::sim::Machine::perlmutter_a100();

  if (gpu_budget > 0) {
    // Model-selected configuration for a GPU budget (section 4.3). The choice
    // is deterministic, so under mpirun every rank selects the same grid
    // without communicating.
    const auto w = plexus::perf::WorkloadStats::from_dataset(info);
    const auto best = plexus::perf::best_configuration(machine, w, gpu_budget);
    gx = best.x;
    gz = best.z;
    gy = best.y;
    if (rt.rank == 0) {
      std::printf("performance model selected %s\n",
                  plexus::perf::grid_to_string(best).c_str());
    }
  }
  const int volume = gx * gy * gz;
  if (distributed && rt.size != volume) {
    if (rt.rank == 0) {
      std::fprintf(stderr,
                   "mpi backend needs one process per rank: launched %d processes for a "
                   "%dx%dx%d grid (%d ranks)\n",
                   rt.size, gx, gy, gz, volume);
    }
    plexus::comm::mpi_runtime_finalize();
    return 1;
  }

  plexus::core::TrainOptions opt;
  opt.grid = {gx, gy, gz};
  opt.machine = &machine;
  opt.model.hidden_dims = {128, 128};
  opt.model.options.agg_row_blocks = 8;
  opt.epochs = epochs;
  opt.evaluate_validation = true;
  opt.backend = backend;
  opt.aggregation = agg;
  opt.wire = wire;
  opt.checkpoint_dir = checkpoint_dir;
  opt.checkpoint_every = checkpoint_every;
  if (rss_budget_mb >= 0) opt.rss_budget_bytes = rss_budget_mb << 20;
  if (prefetch_depth > 0) opt.prefetch_depth = prefetch_depth;

  if (!write_shards_dir.empty()) {
    if (distributed) {
      std::fprintf(stderr, "--write-shards generates on one process; run it without --backend=mpi\n");
      return 1;
    }
    // Same proxy + preprocess parameters the in-memory path uses, so the
    // directory is byte-identical to preprocessing make_proxy(...) in memory
    // and the streamed losses gate bitwise against the in-memory run.
    auto spec = plexus::graph::proxy_shards_spec(info, nodes, /*seed=*/1);
    spec.scheme = static_cast<int>(opt.scheme);
    spec.num_layers = opt.model.num_layers();
    spec.pad_multiple = volume;
    spec.preprocess_seed = opt.preprocess_seed;
    spec.parts = volume;
    const auto r = plexus::graph::rmat_to_shards(write_shards_dir, spec);
    std::printf(
        "wrote sharded %s proxy to %s: %lld nodes (%lld padded), %lld edges, %lld nnz per "
        "version, %.1f MB on disk, %.1f MB peak buffer\n",
        dataset.c_str(), write_shards_dir.c_str(), static_cast<long long>(r.num_nodes),
        static_cast<long long>(r.padded_nodes), static_cast<long long>(r.num_edges),
        static_cast<long long>(r.adjacency_nnz), static_cast<double>(r.bytes_written) / 1e6,
        static_cast<double>(r.peak_buffer_bytes) / 1e6);
    return 0;
  }

  const char* agg_label =
      agg.has_value() ? plexus::core::aggregation_name(*agg) : "model default";
  const char* wire_label = plexus::comm::wire_precision_name(wire);
  const char* simd_label = plexus::simd::target_name(plexus::simd::active_target());

  plexus::core::TrainResult result;
  if (!resume_dir.empty()) {
    if (rt.rank == 0) {
      std::printf(
          "resuming from %s on a %dx%dx%d grid, %d total epochs, %s transport, %s wire, "
          "%s simd\n",
          resume_dir.c_str(), gx, gy, gz, epochs, plexus::comm::backend_name(backend),
          wire_label, simd_label);
    }
    result = distributed ? plexus::core::resume_plexus_rank(resume_dir, opt, rt.rank)
                         : plexus::core::resume_plexus(resume_dir, opt);
  } else if (!stream_dir.empty()) {
    if (distributed) {
      std::fprintf(stderr,
                   "--stream-dir runs the threaded cluster; the mpi backend already streams "
                   "per-rank shards (drop --backend=mpi)\n");
      return 1;
    }
    std::printf(
        "streaming %s out-of-core on a %dx%dx%d grid, %d epochs, budget %s, "
        "%s transport, dense aggregation, %s wire, %s simd\n",
        stream_dir.c_str(), gx, gy, gz, epochs,
        rss_budget_mb >= 0 ? (std::to_string(rss_budget_mb) + " MB").c_str() : "unbounded",
        plexus::comm::backend_name(backend), wire_label, simd_label);
    result = plexus::core::train_plexus_streaming(stream_dir, opt);
  } else if (!distributed) {
    const auto g = plexus::graph::make_proxy(info, nodes, /*seed=*/1);
    std::printf(
        "training %s proxy (%lld nodes, %lld edges) on a %dx%dx%d grid, %d epochs, "
        "%s transport, %s aggregation, %s wire, %s simd\n",
        dataset.c_str(), static_cast<long long>(g.num_nodes),
        static_cast<long long>(g.num_edges()), gx, gy, gz, epochs,
        plexus::comm::backend_name(backend), agg_label, wire_label, simd_label);
    result = plexus::core::train_plexus(g, opt);
  } else {
    // Rank 0 preprocesses once and writes the sharded block-file layout; the
    // barrier publishes it, then every rank (rank 0 included) streams only
    // the block files its own shard windows intersect.
    const char* env_dir = std::getenv("PLEXUS_SHARD_DIR");
    const std::string dir =
        env_dir != nullptr && *env_dir != '\0'
            ? std::string(env_dir)
            : (std::filesystem::temp_directory_path() /
               ("plexus_shards_" + dataset + "_" + std::to_string(nodes) + "_" +
                std::to_string(gx) + "x" + std::to_string(gy) + "x" + std::to_string(gz)))
                  .string();
    if (rt.rank == 0) {
      const auto g = plexus::graph::make_proxy(info, nodes, /*seed=*/1);
      std::printf(
          "training %s proxy (%lld nodes, %lld edges) on a %dx%dx%d grid, %d epochs, "
          "%s transport, %s aggregation, %s wire, %s simd\n",
          dataset.c_str(), static_cast<long long>(g.num_nodes),
          static_cast<long long>(g.num_edges()), gx, gy, gz, epochs,
          plexus::comm::backend_name(backend), agg_label, wire_label, simd_label);
      const auto ds = plexus::core::preprocess_graph(g, opt.scheme, opt.model.num_layers(),
                                                     /*pad_multiple=*/volume,
                                                     opt.preprocess_seed);
      plexus::core::write_sharded_plexus_dataset(dir, ds, volume);
      std::printf("rank 0 wrote sharded dataset to %s\n", dir.c_str());
    }
    plexus::comm::mpi_runtime_barrier();
    plexus::core::ShardedDatasetView view(dir);
    result = plexus::core::train_plexus_rank(view, opt, rt.rank);
    if (rt.rank == 0) {
      const auto& st = view.load_stats();
      std::printf("rank 0 streamed %lld bytes from %lld block files (shard-local IO)\n",
                  static_cast<long long>(st.bytes_read), static_cast<long long>(st.files_opened));
    }
  }

  if (rt.rank == 0) {
    for (std::size_t e = 0; e < result.epochs.size(); ++e) {
      const auto& s = result.epochs[e];
      std::printf(
          "epoch %2zu  loss %.4f  acc %.3f  sim %.2f ms (spmm %.2f, gemm %.2f, comm %.2f)  "
          "wire %.2f MB\n",
          e + 1 + static_cast<std::size_t>(result.first_epoch), s.loss, s.train_accuracy,
          s.epoch_seconds * 1e3, s.spmm_seconds * 1e3, s.gemm_seconds * 1e3,
          s.wait_seconds() * 1e3, s.comm_wire_bytes / 1e6);
    }
    std::printf("validation accuracy %.3f | avg epoch %.2f ms on %s\n", result.val_accuracy,
                result.avg_epoch_seconds(2) * 1e3, machine.name.c_str());
    if (!stream_dir.empty()) {
      // After, not inside, the epoch lines: the streamed run's epoch lines
      // must diff clean against the in-memory run's (the CI loss gate).
      double io_bytes = 0.0;
      double io_s = 0.0;
      for (const auto& s : result.epochs) {
        io_bytes += s.io_bytes_streamed;
        io_s += s.io_exposed_seconds;
      }
      std::printf("streamed %.2f MB of adjacency blocks from disk, %.2f ms exposed IO "
                  "(wall clock)\n",
                  io_bytes / 1e6, io_s * 1e3);
    }
    if (!checkpoint_dir.empty()) {
      std::printf("checkpoint written to %s\n", checkpoint_dir.c_str());
    }
  }
  if (distributed) {
    plexus::comm::mpi_runtime_barrier();  // keep rank 0's output ahead of teardown
    plexus::comm::mpi_runtime_finalize();
  }
  return 0;
}
