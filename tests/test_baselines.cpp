// Tests for the baseline frameworks: BNS-GCN (boundary rate 1.0) and
// CAGNET/SA must match the serial reference; the scale-out cost models must
// reproduce the structural behaviours the paper describes.
#include <gtest/gtest.h>

#include "baselines/bnsgcn.hpp"
#include "baselines/cagnet.hpp"
#include "baselines/costmodels.hpp"
#include "graph/datasets.hpp"
#include "model/serial_gcn.hpp"
#include "sim/machine.hpp"

namespace pb = plexus::base;
namespace pg = plexus::graph;
namespace psim = plexus::sim;

namespace {

pg::Graph small_graph() { return pg::make_test_graph(150, 6.0, 12, 4, 77); }

plexus::core::GcnSpec matching_spec() {
  plexus::core::GcnSpec spec;
  spec.hidden_dims = {12, 8};
  spec.options.adam.lr = 0.02f;
  spec.seed = 31;
  return spec;
}

void expect_losses_close(const std::vector<double>& got, const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  double tol = 2e-3;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], tol) << "epoch " << i;
    tol *= 1.8;
  }
}

}  // namespace

class BaselineParts : public ::testing::TestWithParam<int> {};

TEST_P(BaselineParts, BnsGcnMatchesSerialAtFullBoundaryRate) {
  const auto g = small_graph();
  const auto spec = matching_spec();
  const auto serial = plexus::ref::train_serial_gcn(g, spec, 5);

  pb::BnsGcnOptions opt;
  opt.parts = GetParam();
  opt.machine = &psim::Machine::test_machine();
  opt.hidden_dims = spec.hidden_dims;
  opt.adam = spec.options.adam;
  opt.seed = spec.seed;
  opt.epochs = 5;
  const auto res = pb::train_bnsgcn(g, opt);
  expect_losses_close(res.losses(), serial.losses());
  EXPECT_GE(res.total_nodes_with_boundary, g.num_nodes);
}

TEST_P(BaselineParts, CagnetSaMatchesSerial) {
  const auto g = small_graph();
  const auto spec = matching_spec();
  const auto serial = plexus::ref::train_serial_gcn(g, spec, 5);

  pb::CagnetOptions opt;
  opt.parts = GetParam();
  opt.machine = &psim::Machine::test_machine();
  opt.hidden_dims = spec.hidden_dims;
  opt.adam = spec.options.adam;
  opt.seed = spec.seed;
  opt.epochs = 5;
  opt.sparsity_aware = true;
  const auto res = pb::train_cagnet(g, opt);
  expect_losses_close(res.losses(), serial.losses());
}

TEST_P(BaselineParts, CagnetVanillaMatchesSerial) {
  const auto g = small_graph();
  const auto spec = matching_spec();
  const auto serial = plexus::ref::train_serial_gcn(g, spec, 4);

  pb::CagnetOptions opt;
  opt.parts = GetParam();
  opt.machine = &psim::Machine::test_machine();
  opt.hidden_dims = spec.hidden_dims;
  opt.adam = spec.options.adam;
  opt.seed = spec.seed;
  opt.epochs = 4;
  opt.sparsity_aware = false;
  const auto res = pb::train_cagnet(g, opt);
  expect_losses_close(res.losses(), serial.losses());
}

INSTANTIATE_TEST_SUITE_P(Parts, BaselineParts, ::testing::Values(1, 2, 4, 6));

TEST(Baselines, SaGvbMatchesSerial) {
  const auto g = small_graph();
  const auto spec = matching_spec();
  const auto serial = plexus::ref::train_serial_gcn(g, spec, 4);
  pb::CagnetOptions opt;
  opt.parts = 4;
  opt.machine = &psim::Machine::test_machine();
  opt.hidden_dims = spec.hidden_dims;
  opt.adam = spec.options.adam;
  opt.seed = spec.seed;
  opt.epochs = 4;
  opt.gvb_partition = true;
  const auto res = pb::train_cagnet(g, opt);
  expect_losses_close(res.losses(), serial.losses());
}

TEST(Baselines, SaReducesCommunicationVolume) {
  // The sparsity-aware exchange must move fewer rows than the full broadcast
  // on a sparse graph (the ICPP'24 paper's core claim).
  const auto g = pg::make_proxy(pg::dataset_info("europe_osm"), 4000, 3);
  pb::CagnetOptions opt;
  opt.parts = 4;
  opt.machine = &psim::Machine::test_machine();
  opt.hidden_dims = {8};
  opt.epochs = 1;
  opt.sparsity_aware = true;
  const auto sa = pb::train_cagnet(g, opt);
  opt.sparsity_aware = false;
  const auto vanilla = pb::train_cagnet(g, opt);
  EXPECT_LT(sa.received_row_fraction, 0.3 * vanilla.received_row_fraction);
}

TEST(Baselines, BnsSamplingChangesButStillLearns) {
  const auto g = small_graph();
  pb::BnsGcnOptions opt;
  opt.parts = 4;
  opt.machine = &psim::Machine::test_machine();
  opt.hidden_dims = {12, 8};
  opt.adam.lr = 0.02f;
  opt.epochs = 20;
  opt.boundary_rate = 0.5;  // the actual BNS sampling regime
  const auto res = pb::train_bnsgcn(g, opt);
  EXPECT_LT(res.losses().back(), res.losses().front());
}

TEST(CostModels, StructuralCurvesBehave) {
  const auto proxy = pg::make_proxy(pg::dataset_info("products-14M"), 4000, 9);
  const auto curves = pb::measure_structural_curves(proxy, {2, 4, 8, 16}, 5);
  // Expansion grows with parts and exceeds 1.
  EXPECT_GT(curves.expansion(32), curves.expansion(8));
  EXPECT_GT(curves.expansion(8), 1.0);
  // SA received fraction is in (0, 1] and does not shrink fast.
  EXPECT_GT(curves.sa_recv_fraction(16), 0.0);
  EXPECT_LE(curves.sa_recv_fraction(1024), 1.0);
}

TEST(CostModels, BnsVsPlexusCrossover) {
  // Figure 8/9 shape on products-14M: BNS-GCN wins at small scale (fine-
  // grained halo traffic beats dense all-reduces), Plexus wins at large scale.
  const auto& m = psim::Machine::perlmutter_a100();
  const auto& info = pg::dataset_info("products-14M");
  const auto curves = pb::calibrated_curves(info, 5);

  const double bns_small = pb::bnsgcn_epoch(m, info, 16, curves).total();
  const double plx_small = pb::plexus_epoch(m, info, 16).total();
  const double bns_large = pb::bnsgcn_epoch(m, info, 512, curves).total();
  const double plx_large = pb::plexus_epoch(m, info, 512).total();
  EXPECT_LT(bns_small, plx_small);
  EXPECT_LT(plx_large, bns_large);
}

TEST(CostModels, PlexusScalesFurther) {
  const auto& m = psim::Machine::perlmutter_a100();
  const auto& info = pg::dataset_info("ogbn-papers100M");
  const double t256 = pb::plexus_epoch(m, info, 256).total();
  const double t1024 = pb::plexus_epoch(m, info, 1024).total();
  EXPECT_LT(t1024, t256);
}

TEST(CostModels, PaperReportedFailures) {
  EXPECT_TRUE(pb::paper_reported_status("SA", "Isolate-3-8M", 16).has_value());
  EXPECT_TRUE(pb::paper_reported_status("BNS-GCN", "ogbn-papers100M", 64).has_value());
  EXPECT_FALSE(pb::paper_reported_status("BNS-GCN", "Reddit", 16).has_value());
  EXPECT_FALSE(pb::paper_reported_status("Plexus", "ogbn-papers100M", 2048).has_value());
}
