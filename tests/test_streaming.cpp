// Out-of-core streaming epochs (ROADMAP item 2): the budgeted
// ShardedDatasetView + ShardStream path must be a pure memory/scheduling
// knob — bitwise-identical losses, accuracies and simulated clocks against
// the fully resident run — while holding the block cache under the RSS
// budget. Plus the LRU BlockCache unit contract and the loader fault-
// injection seam: short reads, EINTR interruptions and mid-epoch truncation
// must surface as clean diagnostics (or, for EINTR, not at all).
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "core/dataset_view.hpp"
#include "core/preprocess.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "loader/block_cache.hpp"
#include "loader/file_hooks.hpp"
#include "sim/machine.hpp"
#include "sparse/partition2d.hpp"

namespace fs = std::filesystem;
using namespace plexus;

namespace {

std::string fresh_dir(const std::string& tag) {
  const auto dir = (fs::temp_directory_path() / ("plexus_streaming_" + tag)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void write_file(const std::string& path, std::size_t bytes) {
  std::ofstream out(path, std::ios::binary);
  const std::string chunk(bytes, 'x');
  out.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
}

/// Small ogbn-products proxy preprocessed for a volume-4 grid, written as a
/// 4x4 shard directory — the shared dataset of the streaming tests.
core::PlexusDataset make_dataset(std::int64_t nodes = 4096) {
  const auto& info = graph::dataset_info("ogbn-products");
  const auto g = graph::make_proxy(info, nodes, /*seed=*/1);
  return core::preprocess_graph(g, core::PermutationScheme::Double, /*num_layers=*/2,
                                /*pad_multiple=*/4, /*seed=*/7);
}

std::string write_shards(const core::PlexusDataset& ds, const std::string& tag) {
  const auto dir = fresh_dir(tag);
  core::write_sharded_plexus_dataset(dir, ds, /*parts=*/4);
  return dir;
}

core::TrainOptions base_options() {
  core::TrainOptions opt;
  opt.grid = {2, 2, 1};
  opt.machine = &sim::Machine::test_machine();
  opt.model.hidden_dims = {16};
  opt.model.options.agg_row_blocks = 4;
  opt.epochs = 3;
  opt.aggregation = core::Aggregation::Dense;  // streaming forces dense; match it
  return opt;
}

void expect_csr_eq(const sparse::Csr& got, const sparse::Csr& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  ASSERT_EQ(got.nnz(), want.nnz());
  const auto grp = got.row_ptr();
  const auto wrp = want.row_ptr();
  for (std::size_t i = 0; i < wrp.size(); ++i) ASSERT_EQ(grp[i], wrp[i]) << "row_ptr[" << i << "]";
  const auto gci = got.col_idx();
  const auto wci = want.col_idx();
  const auto gv = got.vals();
  const auto wv = want.vals();
  for (std::size_t k = 0; k < wci.size(); ++k) {
    ASSERT_EQ(gci[k], wci[k]) << "col_idx[" << k << "]";
    ASSERT_EQ(gv[k], wv[k]) << "vals[" << k << "]";  // bitwise: same file bytes
  }
}

std::int64_t adjacency_bytes_on_disk(const std::string& dir) {
  std::int64_t total = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    const auto name = e.path().filename().string();
    if (name.rfind("adj", 0) == 0) total += static_cast<std::int64_t>(e.file_size());
  }
  return total;
}

}  // namespace

// ---------------------------------------------------------------------------
// BlockCache unit contract
// ---------------------------------------------------------------------------

TEST(BlockCache, LruEvictionOrder) {
  const auto dir = fresh_dir("lru");
  const auto a = dir + "/a.plx";
  const auto b = dir + "/b.plx";
  const auto c = dir + "/c.plx";
  write_file(a, 1000);
  write_file(b, 1000);
  write_file(c, 1000);

  io::BlockCache cache(2000);
  { auto p = cache.get(a); }
  { auto p = cache.get(b); }
  { auto p = cache.get(a); }  // touch a: b becomes least recently used
  { auto p = cache.get(c); }  // over budget: evicts b, not a
  auto s = cache.stats();
  EXPECT_EQ(s.misses, 3);
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.resident_bytes, 2000);
  EXPECT_EQ(s.peak_resident_bytes, 2000);  // trimmed before the peak is taken
  EXPECT_EQ(s.bytes_loaded, 3000);

  { auto p = cache.get(a); }  // survived the trim
  EXPECT_EQ(cache.stats().hits, 2);
  { auto p = cache.get(b); }  // was evicted: reload
  EXPECT_EQ(cache.stats().misses, 4);
}

TEST(BlockCache, PinnedBlocksSurviveBudgetZero) {
  const auto dir = fresh_dir("pin");
  const auto a = dir + "/a.plx";
  const auto b = dir + "/b.plx";
  const auto c = dir + "/c.plx";
  write_file(a, 1000);
  write_file(b, 1000);
  write_file(c, 1000);

  io::BlockCache cache(0);
  auto pin = cache.get(a);  // held across the whole test: never evictable
  EXPECT_EQ(cache.stats().resident_bytes, 1000);
  { auto p = cache.get(b); }  // dropped after the statement
  { auto p = cache.get(c); }  // miss triggers trim: b goes, pinned a stays
  auto s = cache.stats();
  EXPECT_GE(s.evictions, 1);
  { auto p = cache.get(a); }  // still resident, still this mapping
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(pin->size_bytes(), 1000);
}

TEST(BlockCache, BudgetZeroKeepsNothingUnpinned) {
  const auto dir = fresh_dir("zero");
  const auto a = dir + "/a.plx";
  const auto b = dir + "/b.plx";
  write_file(a, 1000);
  write_file(b, 1000);

  io::BlockCache cache(0);
  { auto p = cache.get(a); }  // pinned by the return value during its own trim
  { auto p = cache.get(b); }  // next miss reclaims the dropped a
  auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.resident_bytes, 1000);  // just b, awaiting the next trim
  { auto p = cache.get(a); }          // a was reclaimed: miss again
  EXPECT_EQ(cache.stats().misses, 3);
  EXPECT_EQ(cache.stats().hits, 0);
}

TEST(BlockCache, MissBytesAccumulate) {
  const auto dir = fresh_dir("bytes");
  const auto a = dir + "/a.plx";
  const auto b = dir + "/b.plx";
  write_file(a, 700);
  write_file(b, 300);

  io::BlockCache cache(-1);  // unlimited
  std::int64_t bytes = 0;
  { auto p = cache.get(a, &bytes); }
  EXPECT_EQ(bytes, 700);
  { auto p = cache.get(a, &bytes); }  // hit: adds nothing
  EXPECT_EQ(bytes, 700);
  { auto p = cache.get(b, &bytes); }  // accumulates, does not overwrite
  EXPECT_EQ(bytes, 1000);
  EXPECT_EQ(cache.stats().evictions, 0);
  EXPECT_EQ(cache.stats().resident_bytes, 1000);
}

// ---------------------------------------------------------------------------
// Budgeted view: bitwise window equality + IO accounting
// ---------------------------------------------------------------------------

TEST(Streaming, BudgetedViewMatchesPlainViewBitwise) {
  const auto ds = make_dataset();
  const auto dir = write_shards(ds, "view");
  const core::ShardedDatasetView plain(dir);
  const core::ShardedDatasetView budgeted(dir, /*rss_budget_bytes=*/64 << 20);
  ASSERT_TRUE(budgeted.streaming());
  ASSERT_FALSE(plain.streaming());
  EXPECT_EQ(budgeted.adjacency_nnz(), ds.adj_even.nnz());

  const std::int64_t n = plain.padded_nodes();
  const auto bounds = sparse::block_bounds(n, 3);  // misaligned with the 4x4 file grid
  for (const int version : {0, 1}) {
    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
      for (std::size_t j = 0; j + 1 < bounds.size(); ++j) {
        std::int64_t io_bytes = -1;
        const auto got = budgeted.adjacency_block_counted(version, bounds[i], bounds[i + 1],
                                                          bounds[j], bounds[j + 1], &io_bytes);
        const auto want = plain.adjacency_block(version, bounds[i], bounds[i + 1], bounds[j],
                                                bounds[j + 1]);
        ASSERT_GE(io_bytes, 0);
        expect_csr_eq(got, want);
      }
    }
  }
  // Everything fits under 64 MB: a repeat read is served from the cache and
  // reports zero bytes pulled from disk.
  std::int64_t again = 0;
  budgeted.adjacency_block_counted(0, 0, n, 0, n, &again);
  EXPECT_EQ(again, 0);
  const auto cs = budgeted.cache_stats();
  EXPECT_GT(cs.hits, 0);
  EXPECT_GT(cs.bytes_loaded, 0);
  EXPECT_EQ(cs.evictions, 0);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Streaming epochs: bitwise-equal training under a budget
// ---------------------------------------------------------------------------

TEST(Streaming, TrainMatchesInMemoryBitwise) {
  const auto ds = make_dataset();
  const auto dir = write_shards(ds, "train");
  auto opt = base_options();

  const auto resident = core::train_plexus(ds, opt);

  auto sopt = opt;
  sopt.rss_budget_bytes = 1 << 20;  // well below the on-disk adjacency bytes
  const auto streamed = core::train_plexus_streaming(dir, sopt);

  ASSERT_EQ(streamed.epochs.size(), resident.epochs.size());
  for (std::size_t e = 0; e < resident.epochs.size(); ++e) {
    SCOPED_TRACE(e);
    // Bitwise: streaming is a pure memory/scheduling knob. Even the
    // simulated clock matches — block loads charge the same SpMM shapes.
    EXPECT_EQ(streamed.epochs[e].loss, resident.epochs[e].loss);
    EXPECT_EQ(streamed.epochs[e].train_accuracy, resident.epochs[e].train_accuracy);
    EXPECT_EQ(streamed.epochs[e].epoch_seconds, resident.epochs[e].epoch_seconds);
    EXPECT_EQ(streamed.epochs[e].comm_wire_bytes, resident.epochs[e].comm_wire_bytes);
    // Resident mode never reports IO.
    EXPECT_EQ(resident.epochs[e].io_bytes_streamed, 0.0);
    EXPECT_EQ(resident.epochs[e].io_exposed_seconds, 0.0);
  }
  EXPECT_GT(streamed.epochs[0].io_bytes_streamed, 0.0);
  fs::remove_all(dir);
}

TEST(Streaming, PeakCacheRespectsBudget) {
  const auto ds = make_dataset();
  const auto dir = write_shards(ds, "budget");
  const std::int64_t budget = 1 << 20;
  ASSERT_GT(adjacency_bytes_on_disk(dir), budget) << "budget must force eviction";

  // Through a named view (train_plexus_streaming builds its own) so the cache
  // high-water mark is still readable after the run.
  const core::ShardedDatasetView view(dir, budget);
  auto opt = base_options();
  opt.epochs = 2;
  opt.rss_budget_bytes = budget;  // lets the layers clamp their prefetch depth
  const auto result = core::train_plexus(view, opt);

  const auto cs = view.cache_stats();
  EXPECT_GT(cs.peak_resident_bytes, 0);
  EXPECT_LE(cs.peak_resident_bytes, budget);
  EXPECT_GT(cs.evictions, 0);
  EXPECT_GT(result.epochs[0].io_bytes_streamed, 0.0);
  // Evictions force re-reads: the later epoch still streams from disk.
  EXPECT_GT(result.epochs[1].io_bytes_streamed, 0.0);
  fs::remove_all(dir);
}

TEST(Streaming, FixedPrefetchDepthIsStillBitwise) {
  const auto ds = make_dataset(2048);
  const auto dir = write_shards(ds, "depth");
  auto opt = base_options();
  opt.epochs = 2;

  const auto adaptive = core::train_plexus_streaming(dir, opt);
  auto fixed = opt;
  fixed.prefetch_depth = 1;  // fully serial IO
  const auto serial = core::train_plexus_streaming(dir, fixed);
  for (std::size_t e = 0; e < adaptive.epochs.size(); ++e) {
    EXPECT_EQ(adaptive.epochs[e].loss, serial.epochs[e].loss);
    EXPECT_EQ(adaptive.epochs[e].epoch_seconds, serial.epochs[e].epoch_seconds);
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Fault injection through the loader seam (single rank: a thrown epoch has
// no peers to strand in a collective)
// ---------------------------------------------------------------------------

namespace {

core::TrainOptions single_rank_options() {
  auto opt = base_options();
  opt.grid = {1, 1, 1};
  opt.epochs = 1;
  return opt;
}

}  // namespace

TEST(Streaming, ShortReadInPrefetchPathThrowsCleanly) {
  const auto ds = make_dataset(2048);
  const auto dir = write_shards(ds, "shortread");

  // The view is built unhooked (the mask file is also a size-1 byte read, and
  // the fault must land in the streaming path, not metadata loading). Every
  // block pull after this point goes through MappedBlock, whose stdio
  // fallback reads the whole file in one size==1 call — the only such read
  // left once construction is done. Installing any hook also disables mmap,
  // so the fault is actually reachable.
  const core::ShardedDatasetView view(dir, /*rss_budget_bytes=*/-1);
  std::atomic<long> faults{0};
  io::FileHooks hooks;
  hooks.fread = [&](void* dst, std::size_t size, std::size_t count, std::FILE* f) {
    if (size == 1 && count > 1) {
      ++faults;
      return std::fread(dst, size, count / 2, f);  // short read, no errno story
    }
    return std::fread(dst, size, count, f);
  };
  io::ScopedFileHooks guard(std::move(hooks));

  EXPECT_THROW(core::train_plexus(view, single_rank_options()), std::runtime_error);
  EXPECT_GT(faults.load(), 0);
  fs::remove_all(dir);
}

TEST(Streaming, EintrShortReadsAreRetriedTransparently) {
  const auto ds = make_dataset(2048);
  const auto dir = write_shards(ds, "eintr");
  const auto opt = single_rank_options();

  const auto clean = core::train_plexus_streaming(dir, opt);

  // Interrupt the first half of every multi-item read: a partial count with
  // the stream error flag set and errno == EINTR, exactly what a signal
  // during read(2) leaves behind. checked_fread must clear and resume, so
  // training completes bitwise-identically to the unhooked run.
  std::atomic<long> interruptions{0};
  io::FileHooks hooks;
  hooks.fread = [&](void* dst, std::size_t size, std::size_t count, std::FILE* f) {
    if (count > 1) {
      const std::size_t got = std::fread(dst, size, count / 2, f);
      const char junk = 0;
      std::fwrite(&junk, 1, 1, f);  // write to a read-only stream: error flag
      errno = EINTR;
      ++interruptions;
      return got;
    }
    return std::fread(dst, size, count, f);
  };
  core::TrainResult hooked;
  {
    io::ScopedFileHooks guard(std::move(hooks));
    hooked = core::train_plexus_streaming(dir, opt);
  }
  EXPECT_GT(interruptions.load(), 0);
  ASSERT_EQ(hooked.epochs.size(), clean.epochs.size());
  EXPECT_EQ(hooked.epochs[0].loss, clean.epochs[0].loss);
  EXPECT_EQ(hooked.epochs[0].train_accuracy, clean.epochs[0].train_accuracy);
  fs::remove_all(dir);
}

TEST(Streaming, MidEpochTruncationThrowsCleanly) {
  const auto ds = make_dataset(2048);
  const auto dir = write_shards(ds, "truncate");
  const auto opt = single_rank_options();

  // Healthy directory trains fine.
  EXPECT_NO_THROW(core::train_plexus_streaming(dir, opt));

  // Truncate one adjacency block file to half, as a dying disk / torn copy
  // would. A budget-0 view re-reads every window, so the next epoch must
  // surface the truncation as a clean error — not a crash or silent zeros.
  const auto victim = dir + "/adj_0_0.plx";
  ASSERT_TRUE(fs::exists(victim));
  fs::resize_file(victim, fs::file_size(victim) / 2);
  auto bopt = opt;
  bopt.rss_budget_bytes = 0;
  EXPECT_THROW(core::train_plexus_streaming(dir, bopt), std::runtime_error);
  fs::remove_all(dir);
}

TEST(Streaming, CorruptHeaderThrowsCleanly) {
  const auto ds = make_dataset(2048);
  const auto dir = write_shards(ds, "corrupt");

  // Stamp garbage over the nnz field of one block header (offset 40: magic,
  // row0, col0, rows, cols, then nnz). The streamed parser must reject it
  // instead of indexing out of bounds.
  const auto victim = dir + "/adj_0_0.plx";
  {
    std::FILE* f = std::fopen(victim.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const std::int64_t bogus = -7;
    std::fseek(f, 40, SEEK_SET);
    std::fwrite(&bogus, sizeof(bogus), 1, f);
    std::fclose(f);
  }
  EXPECT_THROW(core::train_plexus_streaming(dir, single_rank_options()), std::runtime_error);
  fs::remove_all(dir);
}
