#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace plexus::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> row) {
  PLEXUS_CHECK(row.size() == headers_.size(), "Table row width mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string Table::fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Table::fmt_count(long long v) {
  const bool neg = v < 0;
  unsigned long long u = neg ? static_cast<unsigned long long>(-v) : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(u);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace plexus::util
