#pragma once
/// \file rng.hpp
/// Deterministic random number generation.
///
/// Two flavours are provided:
///  * `SplitMix64` — a tiny, fast sequential PRNG for workload generation.
///  * counter-based hashing (`hash_u64`, `CounterRng`) — a *stateless* generator
///    where the i-th value is a pure function of (seed, counter). This is the
///    backbone of reproducibility across parallel configurations: weight element
///    (layer, i, j) and feature element (node, k) are derived from coordinates,
///    so a serial run and every 3D-sharded run initialise the *same* model.

#include <cstdint>
#include <vector>

namespace plexus::util {

/// splitmix64 step; also used as a high-quality 64-bit finalizer/hash.
constexpr std::uint64_t hash_u64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two 64-bit values into one hash (order-sensitive).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return hash_u64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Sequential PRNG (state-of-the-art quality for its size; Vigna 2015).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 0x853c49e6748fea9bULL) : state_(seed) {}

  std::uint64_t next_u64() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform float in [0, 1).
  float next_float() { return static_cast<float>(next_double()); }

  /// Uniform integer in [0, n) without modulo bias for the sizes we use.
  std::uint64_t next_below(std::uint64_t n) {
    return n == 0 ? 0 : next_u64() % n;
  }

 private:
  std::uint64_t state_;
};

/// Stateless counter-based generator: value(i) is a pure function of (seed, i).
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t u64_at(std::uint64_t counter) const {
    return hash_u64(hash_combine(seed_, counter));
  }
  /// Uniform double in [0,1) at the given counter.
  double uniform_at(std::uint64_t counter) const {
    return static_cast<double>(u64_at(counter) >> 11) * 0x1.0p-53;
  }
  /// Uniform float in [lo, hi) at the given counter.
  float uniform_at(std::uint64_t counter, float lo, float hi) const {
    return lo + (hi - lo) * static_cast<float>(uniform_at(counter));
  }

 private:
  std::uint64_t seed_;
};

/// Deterministic Fisher–Yates permutation of {0, ..., n-1}.
std::vector<std::int64_t> random_permutation(std::int64_t n, std::uint64_t seed);

/// Identity permutation of {0, ..., n-1}.
std::vector<std::int64_t> identity_permutation(std::int64_t n);

/// Inverse of a permutation: out[perm[i]] = i.
std::vector<std::int64_t> invert_permutation(const std::vector<std::int64_t>& perm);

/// True iff `perm` is a permutation of {0, ..., n-1}.
bool is_permutation(const std::vector<std::int64_t>& perm);

}  // namespace plexus::util
