#pragma once
/// \file optim.hpp
/// Adam optimizer over flat fp32 buffers.
///
/// Plexus makes the *input features trainable* (node embeddings) in addition to
/// layer weights, so both weight shards and feature shards carry Adam moments.
/// The update is strictly elementwise: as long as a distributed configuration
/// holds the same logical elements (in any sharding), its updates match the
/// serial reference bit-for-bit up to fp reduction order of the gradients.

#include <cstdint>
#include <span>
#include <vector>

namespace plexus::dense {

struct AdamConfig {
  float lr = 1e-2f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam {
 public:
  Adam() = default;
  Adam(std::size_t num_params, AdamConfig cfg);

  /// One Adam step: params -= update(grads). Spans must match num_params.
  void step(std::span<float> params, std::span<const float> grads);

  std::int64_t t() const { return t_; }
  const AdamConfig& config() const { return cfg_; }

  /// First/second-moment buffers, exposed for checkpointing: a restored
  /// optimizer must resume from the exact (m, v, t) it was saved with or the
  /// bias-corrected update diverges from the uninterrupted run.
  std::span<const float> m() const { return m_; }
  std::span<const float> v() const { return v_; }

  /// Overwrite the optimizer state (checkpoint restore). Spans must match
  /// num_params.
  void set_state(std::span<const float> m, std::span<const float> v, std::int64_t t);

 private:
  AdamConfig cfg_;
  std::vector<float> m_;
  std::vector<float> v_;
  std::int64_t t_ = 0;
};

}  // namespace plexus::dense
