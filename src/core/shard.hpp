#pragma once
/// \file shard.hpp
/// Shard geometry helpers: uniform 1D slices, 2D block shards addressed by
/// grid axes, flat (1/R) slices for the extra sharding of weights and input
/// features, and the deterministic weight initialisation shared by the serial
/// reference and every distributed configuration.

#include <cstdint>
#include <span>
#include <vector>

#include "core/grid.hpp"
#include "dense/matrix.hpp"

namespace plexus::core {

struct Slice {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t size() const { return end - begin; }
};

/// The idx-th of `parts` equal slices of [0, extent). Requires divisibility —
/// the preprocessing pads all extents to multiples of the grid volume.
Slice uniform_slice(std::int64_t extent, int parts, int idx);

/// Shard of a logical (rows x cols) matrix for the rank at `c`: rows split
/// along `row_axis`, cols along `col_axis`.
struct BlockShard {
  Slice rows;
  Slice cols;
};
BlockShard matrix_shard(std::int64_t rows, std::int64_t cols, const Grid3D& grid,
                        const Coords& c, Axis row_axis, Axis col_axis);

/// Dense copy of a global matrix's (rows x cols) sub-block.
dense::Matrix extract_block(const dense::Matrix& global, const Slice& rows, const Slice& cols);

/// The idx-th of `parts` equal slices of a row-major block's flat buffer (the
/// "further shard across the Z-parallel group" of weights / input features:
/// contiguous flat slices all-gather back into the row-major block).
std::vector<float> flat_slice(const dense::Matrix& block, int parts, int idx);
Slice flat_slice_range(std::int64_t total_elems, int parts, int idx);

/// Deterministic Glorot value of element (r, c) of layer `layer`'s weight
/// matrix with *active* shape (valid_rows x valid_cols). Elements in the
/// padded margin are zero — which keeps padded dimensions exactly inert (the
/// padded-math-equivalence argument in DESIGN.md). The value depends only on
/// (seed, layer, r, c, valid shape), never on padding or sharding.
float weight_init_value(std::uint64_t seed, int layer, std::int64_t r, std::int64_t c,
                        std::int64_t valid_rows, std::int64_t valid_cols);

/// Materialise the weight block [row_off, row_off+rows) x [col_off, col_off+cols)
/// of layer `layer` with active shape (valid_rows x valid_cols).
dense::Matrix init_weight_block(std::uint64_t seed, int layer, std::int64_t row_off,
                                std::int64_t col_off, std::int64_t rows, std::int64_t cols,
                                std::int64_t valid_rows, std::int64_t valid_cols);

}  // namespace plexus::core
