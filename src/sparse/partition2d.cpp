#include "sparse/partition2d.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace plexus::sparse {

std::vector<std::int64_t> block_bounds(std::int64_t extent, std::int64_t parts) {
  PLEXUS_CHECK(parts > 0, "block_bounds: parts must be positive");
  std::vector<std::int64_t> bounds(static_cast<std::size_t>(parts) + 1);
  const std::int64_t base = extent / parts;
  const std::int64_t rem = extent % parts;
  bounds[0] = 0;
  for (std::int64_t p = 0; p < parts; ++p) {
    bounds[static_cast<std::size_t>(p) + 1] =
        bounds[static_cast<std::size_t>(p)] + base + (p < rem ? 1 : 0);
  }
  return bounds;
}

std::vector<std::int64_t> block_bounds_aligned(std::int64_t extent, std::int64_t parts,
                                               std::int64_t align) {
  PLEXUS_CHECK(align > 0, "block_bounds_aligned: align must be positive");
  PLEXUS_CHECK(extent % align == 0, "block_bounds_aligned: extent not a multiple of align");
  auto bounds = block_bounds(extent / align, parts);
  for (auto& b : bounds) b *= align;
  return bounds;
}

std::vector<std::int64_t> grid_nnz(const Csr& a, std::int64_t grid_rows, std::int64_t grid_cols) {
  const auto rb = block_bounds(a.rows(), grid_rows);
  const auto cb = block_bounds(a.cols(), grid_cols);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(grid_rows * grid_cols), 0);

  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  // Single O(nnz) sweep: map each entry's column to its block via division when
  // blocks are uniform, else binary search.
  const bool uniform = (a.cols() % grid_cols) == 0;
  const std::int64_t cw = uniform ? a.cols() / grid_cols : 0;
  std::int64_t rblk = 0;
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    while (r >= rb[static_cast<std::size_t>(rblk) + 1]) ++rblk;
    for (std::int64_t k = rp[static_cast<std::size_t>(r)]; k < rp[static_cast<std::size_t>(r) + 1];
         ++k) {
      const std::int32_t c = ci[static_cast<std::size_t>(k)];
      std::int64_t cblk;
      if (uniform) {
        cblk = c / cw;
      } else {
        cblk = std::upper_bound(cb.begin(), cb.end(), static_cast<std::int64_t>(c)) - cb.begin() - 1;
      }
      counts[static_cast<std::size_t>(rblk * grid_cols + cblk)]++;
    }
  }
  return counts;
}

ImbalanceStats grid_imbalance(const Csr& a, std::int64_t grid_rows, std::int64_t grid_cols) {
  const auto counts = grid_nnz(a, grid_rows, grid_cols);
  ImbalanceStats s;
  s.max_nnz = *std::max_element(counts.begin(), counts.end());
  s.min_nnz = *std::min_element(counts.begin(), counts.end());
  std::int64_t total = 0;
  for (const auto c : counts) total += c;
  s.mean_nnz = static_cast<double>(total) / static_cast<double>(counts.size());
  s.max_over_mean = s.mean_nnz > 0.0 ? static_cast<double>(s.max_nnz) / s.mean_nnz : 0.0;
  return s;
}

}  // namespace plexus::sparse
