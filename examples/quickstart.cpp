// Quickstart: train a 3-layer GCN with Plexus's 3D-parallel algorithm on a
// small synthetic graph over 8 simulated GPUs, and print per-epoch loss and
// simulated timing.
//
//   ./build/examples/quickstart
//
// The same five calls work for any graph::Graph (see loader/shard_io.hpp for
// loading your own datasets from sharded files).
#include <cstdio>

#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"

int main() {
  // 1. A graph: 2,000 nodes, avg degree 8, 32 features, 8 classes.
  const plexus::graph::Graph g = plexus::graph::make_test_graph(2000, 8.0, 32, 8, /*seed=*/1);
  std::printf("graph: %lld nodes, %lld directed edges, %lld features, %lld classes\n",
              static_cast<long long>(g.num_nodes), static_cast<long long>(g.num_edges()),
              static_cast<long long>(g.feature_dim()), static_cast<long long>(g.num_classes));

  // 2. Training options: a 2x2x2 virtual GPU grid on the Perlmutter model,
  //    double permutation (the default load-balancing scheme), 15 epochs.
  plexus::core::TrainOptions opt;
  opt.grid = {2, 2, 2};
  opt.machine = &plexus::sim::Machine::perlmutter_a100();
  opt.model.hidden_dims = {64, 64};
  opt.model.options.adam.lr = 0.01f;
  opt.epochs = 15;
  opt.evaluate_validation = true;

  // 3. Train. Under the hood: preprocessing (padding, normalisation, double
  //    permutation), 8 rank threads with real collectives, Algorithm 1/2 per
  //    layer, and simulated clocks for timing.
  const plexus::core::TrainResult result = plexus::core::train_plexus(g, opt);

  // 4. Inspect.
  std::printf("\nepoch   loss    train-acc   sim-time(ms)  comm(ms)\n");
  for (std::size_t e = 0; e < result.epochs.size(); ++e) {
    const auto& s = result.epochs[e];
    std::printf("%5zu  %6.4f   %6.3f      %8.3f    %8.3f\n", e + 1, s.loss, s.train_accuracy,
                s.epoch_seconds * 1e3, s.wait_seconds() * 1e3);
  }
  std::printf("\nvalidation accuracy: %.3f\n", result.val_accuracy);
  std::printf("avg epoch (last 13): %.3f ms simulated on %s\n",
              result.avg_epoch_seconds(2) * 1e3, opt.machine->name.c_str());
  return 0;
}
