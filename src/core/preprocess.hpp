#pragma once
/// \file preprocess.hpp
/// One-time dataset preprocessing (paper sections 2.1 and 5.1):
///   1. pad the node count to a multiple of the grid volume (padded nodes have
///      no edges and are masked out of the loss — provably inert, see tests);
///   2. add self loops and symmetrically normalise the adjacency;
///   3. apply the permutation scheme: None, Single (P A P^T), or Double
///      (P_r A P_c^T alternating with P_c A P_r^T across layers) — the paper's
///      load-balancing scheme that replaces a graph partitioner;
///   4. permute features/labels/masks into the matching orders.
///
/// Unlike graph partitioning, this is grid-size independent (one preprocessing
/// per dataset, reusable for any GPU count) — the property section 5.1 calls
/// out as the advantage over METIS.

#include <cstdint>
#include <vector>

#include <string_view>

#include "dense/matrix.hpp"
#include "graph/graph.hpp"
#include "sparse/csr.hpp"
#include "util/enum_names.hpp"

namespace plexus::core {

enum class PermutationScheme {
  None,    ///< natural ordering (baseline for Table 3)
  Single,  ///< one permutation applied to rows and columns
  Double,  ///< distinct row/column permutations, alternating across layers
};

/// Long display name for tables/logs ("original", "single-permutation",
/// "double-permutation"). CLI flags and checkpoints use the registry names
/// ("none" | "single" | "double") below instead.
const char* scheme_name(PermutationScheme s);

/// Parse a registry name (case-insensitive). Returns false on unknown names.
bool scheme_from_string(std::string_view s, PermutationScheme& out);

struct PlexusDataset {
  std::int64_t num_nodes = 0;         ///< active nodes
  std::int64_t padded_nodes = 0;      ///< multiple of pad_multiple
  std::int64_t feature_dim = 0;       ///< active feature dim
  std::int64_t padded_feature_dim = 0;
  std::int64_t num_classes = 0;
  std::int64_t train_total = 0;       ///< global masked-row count for loss norm

  PermutationScheme scheme = PermutationScheme::Double;

  /// Normalised adjacency versions. Even layers use adj_even = P_r A~ P_c^T,
  /// odd layers adj_odd = P_c A~ P_r^T (equal objects under None/Single).
  sparse::Csr adj_even;
  sparse::Csr adj_odd;

  /// Features in the input permutation (rows ordered by P_c), padded.
  dense::Matrix features;

  /// Labels/masks in the *output* permutation of the final layer.
  std::vector<std::int32_t> labels;
  std::vector<std::uint8_t> train_mask;
  std::vector<std::uint8_t> val_mask;
  std::vector<std::uint8_t> test_mask;

  const sparse::Csr& adjacency_for_layer(int layer) const {
    return layer % 2 == 0 ? adj_even : adj_odd;
  }
};

/// Preprocess `g` for an L-layer GCN on grids whose volume divides
/// `pad_multiple`. `seed` fixes the permutations.
PlexusDataset preprocess_graph(const graph::Graph& g, PermutationScheme scheme, int num_layers,
                               std::int64_t pad_multiple, std::uint64_t seed);

/// Table 3 helper: max/mean nonzeros over a grid_rows x grid_cols decomposition
/// of the layer-0 adjacency under the given scheme.
double scheme_imbalance(const graph::Graph& g, PermutationScheme scheme, std::int64_t grid_rows,
                        std::int64_t grid_cols, std::uint64_t seed);

}  // namespace plexus::core

/// Registry entry (util/enum_names.hpp): CLI/checkpoint names of the scheme.
template <>
struct plexus::util::EnumNames<plexus::core::PermutationScheme> {
  static constexpr const char* kind = "permutation scheme";
  static constexpr EnumEntry<plexus::core::PermutationScheme> table[] = {
      {plexus::core::PermutationScheme::None, "none"},
      {plexus::core::PermutationScheme::Single, "single"},
      {plexus::core::PermutationScheme::Double, "double"},
  };
};
