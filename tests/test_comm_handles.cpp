// CommHandle lifecycle and nonblocking-collective semantics: overlap-derived
// exposed/hidden accounting (exact under any wait order via stall-interval
// tracking), link serialisation of in-flight collectives, concurrent
// per-group channels, wait-twice, drop-without-wait, comm-thread exception
// propagation, and inline-mode (PLEXUS_COMM_THREADS=0) equivalence of the
// sim-time math.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/cost.hpp"
#include "comm/handle.hpp"
#include "comm/world.hpp"
#include "sim/cluster.hpp"
#include "sim/machine.hpp"

namespace pc = plexus::comm;
namespace psim = plexus::sim;

namespace {

void spmd(int size, const std::function<void(psim::RankContext&)>& fn) {
  pc::World world(size);
  psim::run_cluster(world, psim::Machine::test_machine(), fn);
}

double allreduce_cost(pc::World& w, std::int64_t bytes, int group_size) {
  return pc::collective_time(pc::Collective::AllReduce, bytes, group_size, w.group(0).link);
}

}  // namespace

TEST(CommHandles, FullyHiddenCollectiveChargesNothing) {
  spmd(2, [](psim::RankContext& ctx) {
    std::vector<float> buf{static_cast<float>(ctx.rank() + 1), 1.0f};
    const double full = allreduce_cost(ctx.comm.world(), 8, 2);
    ASSERT_GT(full, 0.0);
    auto h = ctx.comm.iall_reduce_sum<float>(ctx.comm.world().world_group(), buf);
    ctx.comm.charge_compute(10.0 * full);  // compute strictly covers the op
    h.wait();
    EXPECT_EQ(buf[0], 3.0f);  // data moved — the sum really happened
    EXPECT_DOUBLE_EQ(ctx.comm.stats().total_seconds(), 0.0);
    EXPECT_DOUBLE_EQ(ctx.comm.stats().total_hidden_seconds(), full);
    EXPECT_DOUBLE_EQ(ctx.clock.time(), 10.0 * full);  // clock = compute only
  });
}

TEST(CommHandles, PartialOverlapChargesExposedTail) {
  spmd(2, [](psim::RankContext& ctx) {
    std::vector<float> buf(1024, 1.0f);
    const double full = allreduce_cost(ctx.comm.world(), 1024 * 4, 2);
    auto h = ctx.comm.iall_reduce_sum<float>(ctx.comm.world().world_group(), buf);
    ctx.comm.charge_compute(0.25 * full);
    h.wait();
    EXPECT_DOUBLE_EQ(ctx.comm.stats().total_seconds(), 0.75 * full);
    EXPECT_DOUBLE_EQ(ctx.comm.stats().total_hidden_seconds(), 0.25 * full);
    EXPECT_DOUBLE_EQ(ctx.clock.time(), full);  // ends when the collective does
  });
}

TEST(CommHandles, InFlightCollectivesSerialiseOnTheLink) {
  // Two all-reduces posted back-to-back share the group's ring: the second
  // starts when the first finishes, so waiting both exposes 2 * T.
  spmd(2, [](psim::RankContext& ctx) {
    std::vector<float> a(256, 1.0f);
    std::vector<float> b(256, 2.0f);
    const double full = allreduce_cost(ctx.comm.world(), 256 * 4, 2);
    auto ha = ctx.comm.iall_reduce_sum<float>(ctx.comm.world().world_group(), a);
    auto hb = ctx.comm.iall_reduce_sum<float>(ctx.comm.world().world_group(), b);
    ha.wait();
    hb.wait();
    EXPECT_DOUBLE_EQ(ctx.clock.time(), 2.0 * full);
    EXPECT_DOUBLE_EQ(ctx.comm.stats().total_seconds(), 2.0 * full);
    EXPECT_EQ(a[0], 2.0f);
    EXPECT_EQ(b[0], 4.0f);
  });
}

TEST(CommHandles, ClocklessModeChargesCostModelTimePerOp) {
  // Functional-only mode (no SimClock): stats must charge exactly the
  // cost-model time per op — not the cumulative link-busy horizon.
  pc::World world(2);
  pc::CommStats stats0;
  plexus::sim::run_cluster(
      world, psim::Machine::test_machine(),
      [&](psim::RankContext& ctx) {
        std::vector<float> buf(512, 1.0f);
        for (int i = 0; i < 3; ++i) {
          ctx.comm.all_reduce_sum<float>(ctx.comm.world().world_group(), buf);
        }
        if (ctx.rank() == 0) stats0 = ctx.comm.stats();
      },
      /*enable_clock=*/false);
  const double full = allreduce_cost(world, 512 * 4, 2);
  EXPECT_DOUBLE_EQ(stats0.total_seconds(), 3.0 * full);
  EXPECT_DOUBLE_EQ(stats0.total_hidden_seconds(), 0.0);
}

TEST(CommHandles, DisjointGroupsOverlapInSimTime) {
  // Two groups over the same ranks have independent link-busy horizons: ops
  // posted back-to-back on *different* groups overlap in simulated time (the
  // clock ends at max, not sum), unlike the same-group case above.
  pc::World world(2);
  const auto g1 = world.create_group({0, 1});
  const auto g2 = world.create_group({0, 1});
  psim::run_cluster(world, psim::Machine::test_machine(), [&](psim::RankContext& ctx) {
    ctx.comm.timeline().set_enabled(true);
    std::vector<float> a(256, 1.0f);
    std::vector<float> b(1024, 2.0f);
    const double full_a = allreduce_cost(ctx.comm.world(), 256 * 4, 2);
    const double full_b = allreduce_cost(ctx.comm.world(), 1024 * 4, 2);
    auto ha = ctx.comm.iall_reduce_sum<float>(g1, a);
    auto hb = ctx.comm.iall_reduce_sum<float>(g2, b);
    ha.wait();
    hb.wait();
    EXPECT_DOUBLE_EQ(ctx.clock.time(), std::max(full_a, full_b));  // not full_a + full_b
    EXPECT_EQ(a[0], 2.0f);
    EXPECT_EQ(b[0], 4.0f);
    // Both in-flight spans start at 0: they overlap on the sim timeline.
    using Kind = pc::TimelineSpan::Kind;
    int inflight_at_zero = 0;
    for (const auto& s : ctx.comm.timeline().spans()) {
      if (s.kind == Kind::CommInFlight && s.t0 == 0.0) ++inflight_at_zero;
    }
    EXPECT_EQ(inflight_at_zero, 2);
  });
}

TEST(CommHandles, ConcurrentChannelsMakeCrossGroupProgress) {
  // Rank 0 posts on g1 (members {0,1}) and then g2 (members {0,2}), but rank
  // 1 refuses to post its g1 op until rank 2 has *completed* the g2 op. With
  // the old single-FIFO comm thread rank 0's g2 op could never start (its
  // g1 op blocks the queue waiting for rank 1) — a deadlock. With per-group
  // channels (budget 2; gids 1 and 2 map to different channels) the g2 op
  // proceeds concurrently and the dependency resolves.
  pc::ScopedCommThreads scoped(2);
  pc::World world(3);
  const auto g1 = world.create_group({0, 1});
  const auto g2 = world.create_group({0, 2});
  std::atomic<bool> g2_done{false};
  psim::run_cluster(world, psim::Machine::test_machine(), [&](psim::RankContext& ctx) {
    std::vector<float> buf{static_cast<float>(ctx.rank() + 1)};
    if (ctx.rank() == 0) {
      auto h1 = ctx.comm.iall_reduce_sum<float>(g1, buf);
      std::vector<float> buf2{10.0f};
      auto h2 = ctx.comm.iall_reduce_sum<float>(g2, buf2);
      h2.wait();
      h1.wait();
      EXPECT_EQ(buf[0], 3.0f);    // 1 + 2 over {0,1}
      EXPECT_EQ(buf2[0], 13.0f);  // 10 + 3 over {0,2}
    } else if (ctx.rank() == 1) {
      while (!g2_done.load(std::memory_order_acquire)) std::this_thread::yield();
      ctx.comm.all_reduce_sum<float>(g1, buf);
      EXPECT_EQ(buf[0], 3.0f);
    } else {
      std::vector<float> buf2{3.0f};
      ctx.comm.all_reduce_sum<float>(g2, buf2);
      EXPECT_EQ(buf2[0], 13.0f);
      g2_done.store(true, std::memory_order_release);
    }
  });
}

TEST(CommHandles, OutOfOrderWaitMatchesFifoAccountingExactly) {
  // Stall-interval tracking makes hidden/exposed attribution independent of
  // wait order: the same post-and-compute schedule waited FIFO and waited
  // reversed must book identical totals (and the identical final clock).
  for (const int reversed : {0, 1}) {
    pc::World world(2);
    const auto g1 = world.create_group({0, 1});
    const auto g2 = world.create_group({0, 1});
    psim::run_cluster(world, psim::Machine::test_machine(), [&](psim::RankContext& ctx) {
      std::vector<float> a(512, 1.0f);
      std::vector<float> b(2048, 2.0f);
      const double full_a = allreduce_cost(ctx.comm.world(), 512 * 4, 2);
      auto ha = ctx.comm.iall_reduce_sum<float>(g1, a);
      auto hb = ctx.comm.iall_reduce_sum<float>(g2, b);
      ctx.comm.charge_compute(0.5 * full_a);  // partially covers both transfers
      if (reversed == 0) {
        ha.wait();
        hb.wait();
      } else {
        hb.wait();
        ha.wait();
      }
      const double full_b = allreduce_cost(ctx.comm.world(), 2048 * 4, 2);
      EXPECT_DOUBLE_EQ(ctx.clock.time(), std::max(full_a, full_b));
      EXPECT_DOUBLE_EQ(ctx.comm.stats().total_seconds(),
                       std::max(full_a, full_b) - 0.5 * full_a);
      // Each transfer interval starts at 0, so the same compute covers both.
      EXPECT_DOUBLE_EQ(ctx.comm.stats().total_hidden_seconds(), 2 * (0.5 * full_a));
    });
  }
}

TEST(CommHandles, ComputeAfterOpCompletionIsNeverHidden) {
  // The exactness the old compute-since-post cap lacked: compute charged
  // after an op's sim completion (here: after a wait on a *later-finishing*
  // op on another group advanced the clock past it) lies outside the
  // transfer interval and must not surface as hidden time.
  pc::World world(2);
  const auto g1 = world.create_group({0, 1});
  const auto g2 = world.create_group({0, 1});
  psim::run_cluster(world, psim::Machine::test_machine(), [&](psim::RankContext& ctx) {
    std::vector<float> a(256, 1.0f);
    std::vector<float> b(4096, 2.0f);  // much larger: finishes much later
    const double full_a = allreduce_cost(ctx.comm.world(), 256 * 4, 2);
    const double full_b = allreduce_cost(ctx.comm.world(), 4096 * 4, 2);
    ASSERT_GT(full_b, full_a);
    auto ha = ctx.comm.iall_reduce_sum<float>(g1, a);
    auto hb = ctx.comm.iall_reduce_sum<float>(g2, b);
    hb.wait();                          // clock -> full_b, past ha's completion
    ctx.comm.charge_compute(full_a);    // compute entirely after ha's transfer
    ha.wait();
    EXPECT_DOUBLE_EQ(ctx.comm.stats().total_hidden_seconds(), 0.0);
    EXPECT_DOUBLE_EQ(ctx.comm.stats().total_seconds(), full_b);
    EXPECT_DOUBLE_EQ(ctx.clock.time(), full_b + full_a);
  });
}

TEST(CommHandles, OutOfOrderWaitDoesNotFabricateHiddenTime) {
  // Waiting handles against post order: the clock advance caused by waiting
  // on a *later* op is wait-stall, not compute, and must not surface as
  // hidden time on the earlier op.
  spmd(2, [](psim::RankContext& ctx) {
    std::vector<float> a(256, 1.0f);
    std::vector<float> b(256, 2.0f);
    auto ha = ctx.comm.iall_reduce_sum<float>(ctx.comm.world().world_group(), a);
    auto hb = ctx.comm.iall_reduce_sum<float>(ctx.comm.world().world_group(), b);
    hb.wait();  // advances the clock past ha's completion
    ha.wait();
    EXPECT_DOUBLE_EQ(ctx.comm.stats().total_hidden_seconds(), 0.0);
    const double full = allreduce_cost(ctx.comm.world(), 256 * 4, 2);
    EXPECT_DOUBLE_EQ(ctx.comm.stats().total_seconds(), 2.0 * full);
  });
}

TEST(CommHandles, TestPollsWithoutCharging) {
  spmd(2, [](psim::RankContext& ctx) {
    std::vector<float> buf(64, 1.0f);
    auto h = ctx.comm.iall_reduce_sum<float>(ctx.comm.world().world_group(), buf);
    // Both ranks posted, so the op completes; poll until it does. test() must
    // never advance the clock or stats.
    while (!h.test()) {
    }
    EXPECT_DOUBLE_EQ(ctx.comm.stats().total_seconds(), 0.0);
    EXPECT_EQ(ctx.comm.stats().entry(pc::Collective::AllReduce).calls, 0);
    h.wait();
    EXPECT_EQ(ctx.comm.stats().entry(pc::Collective::AllReduce).calls, 1);
  });
}

TEST(CommHandles, WaitTwiceChargesOnceAndReturnsCachedScalar) {
  spmd(2, [](psim::RankContext& ctx) {
    std::vector<float> buf(128, 1.0f);
    auto h = ctx.comm.iall_reduce_sum<float>(ctx.comm.world().world_group(), buf);
    h.wait();
    const double t1 = ctx.clock.time();
    const auto calls1 = ctx.comm.stats().entry(pc::Collective::AllReduce).calls;
    h.wait();  // second wait: no-op
    EXPECT_DOUBLE_EQ(ctx.clock.time(), t1);
    EXPECT_EQ(ctx.comm.stats().entry(pc::Collective::AllReduce).calls, calls1);
  });
}

TEST(CommHandles, DropWithoutWaitCompletesDataButChargesNothing) {
  spmd(2, [](psim::RankContext& ctx) {
    std::vector<float> buf{static_cast<float>(ctx.rank() + 1)};
    {
      auto h = ctx.comm.iall_reduce_sum<float>(ctx.comm.world().world_group(), buf);
      // dropped un-waited: destructor completes the op (barriers stay matched)
    }
    EXPECT_EQ(buf[0], 3.0f);
    EXPECT_EQ(ctx.comm.stats().entry(pc::Collective::AllReduce).calls, 0);
    EXPECT_DOUBLE_EQ(ctx.clock.time(), 0.0);
    // The group is still usable afterwards.
    std::vector<float> again{1.0f};
    ctx.comm.all_reduce_sum<float>(ctx.comm.world().world_group(), again);
    EXPECT_EQ(again[0], 2.0f);
  });
}

TEST(CommHandles, ExceptionFromCommThreadPropagatesAtWait) {
  spmd(1, [](psim::RankContext& ctx) {
    auto h = ctx.comm.icall([] { throw std::runtime_error("comm-thread boom"); });
    EXPECT_THROW(h.wait(), std::runtime_error);
    // The error was consumed by the first wait; a second wait is benign.
    EXPECT_NO_THROW(h.wait());
    // The comm thread survived the exception and keeps processing ops.
    std::vector<float> buf{2.0f};
    ctx.comm.all_reduce_sum<float>(ctx.comm.world().world_group(), buf);
    EXPECT_EQ(buf[0], 2.0f);
  });
}

TEST(CommHandles, ExceptionOnDroppedHandleIsSwallowed) {
  spmd(1, [](psim::RankContext& ctx) {
    { auto h = ctx.comm.icall([] { throw std::runtime_error("dropped"); }); }
    std::vector<float> buf{1.0f};
    ctx.comm.all_reduce_sum<float>(ctx.comm.world().world_group(), buf);
    EXPECT_EQ(buf[0], 1.0f);
  });
}

TEST(CommHandles, IcallRunsInPostOrderWithCollectives) {
  spmd(1, [](psim::RankContext& ctx) {
    std::vector<int> order;
    auto h1 = ctx.comm.icall([&] { order.push_back(1); });
    auto h2 = ctx.comm.icall([&] { order.push_back(2); });
    auto h3 = ctx.comm.icall([&] { order.push_back(3); });
    h3.wait();  // FIFO engine: op 3 done implies 1 and 2 ran before it
    h1.wait();
    h2.wait();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
  });
}

TEST(CommHandles, PipelinedBlocksMatchBlockingBitwise) {
  // A miniature blocked aggregation: 4 row blocks, each all-reduced over the
  // group. Pipelined (post all, wait all) must produce bitwise the same sums
  // as blocking (post + wait each), and expose less simulated time when the
  // compute between posts covers part of the collectives.
  constexpr int kBlocks = 4;
  constexpr std::size_t kBlockElems = 512;
  std::vector<std::vector<float>> blocking(2), pipelined(2);
  std::vector<double> exposed_blocking(2), exposed_pipelined(2);

  for (int mode = 0; mode < 2; ++mode) {
    spmd(2, [&, mode](psim::RankContext& ctx) {
      std::vector<float> data(kBlocks * kBlockElems);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<float>(ctx.rank() + 1) * 0.25f + static_cast<float>(i % 37);
      }
      const double full = allreduce_cost(ctx.comm.world(), kBlockElems * 4, 2);
      std::vector<pc::CommHandle> handles;
      for (int k = 0; k < kBlocks; ++k) {
        ctx.comm.charge_compute(0.5 * full);  // the "SpMM" of block k
        std::span<float> blk{data.data() + static_cast<std::size_t>(k) * kBlockElems,
                             kBlockElems};
        auto h = ctx.comm.iall_reduce_sum<float>(ctx.comm.world().world_group(), blk);
        if (mode == 0) {
          h.wait();  // blocking schedule
        } else {
          handles.push_back(std::move(h));  // pipelined schedule
        }
      }
      for (auto& h : handles) h.wait();
      auto& out = mode == 0 ? blocking : pipelined;
      auto& exp = mode == 0 ? exposed_blocking : exposed_pipelined;
      out[static_cast<std::size_t>(ctx.rank())] = data;
      exp[static_cast<std::size_t>(ctx.rank())] = ctx.comm.stats().total_seconds();
    });
  }
  for (int r = 0; r < 2; ++r) {
    ASSERT_EQ(blocking[static_cast<std::size_t>(r)].size(),
              pipelined[static_cast<std::size_t>(r)].size());
    for (std::size_t i = 0; i < blocking[static_cast<std::size_t>(r)].size(); ++i) {
      EXPECT_EQ(blocking[static_cast<std::size_t>(r)][i], pipelined[static_cast<std::size_t>(r)][i])
          << "rank " << r << " elem " << i;  // bitwise
    }
    EXPECT_LT(exposed_pipelined[static_cast<std::size_t>(r)],
              exposed_blocking[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
}

TEST(CommHandles, SimTimeIsIdenticalForAnyChannelCount) {
  // The sim-time math is derived from post clocks + the cost model, never
  // from real execution order: inline mode (budget 0), the single-FIFO comm
  // thread (1) and concurrent per-group channels (2, 4) must produce
  // identical clocks and stats on a schedule that mixes two groups with
  // partially-hidden collectives.
  auto run = [](int budget, double* clock_out, pc::CommStats* stats_out) {
    pc::ScopedCommThreads scoped(budget);
    pc::World world(2);
    const auto g1 = world.create_group({0, 1});
    const auto g2 = world.create_group({0, 1});
    psim::run_cluster(world, psim::Machine::test_machine(), [&](psim::RankContext& ctx) {
      std::vector<float> buf(2048, 1.0f);
      std::vector<float> other(512, 2.0f);
      const double full = allreduce_cost(ctx.comm.world(), 2048 * 4, 2);
      auto h = ctx.comm.iall_reduce_sum<float>(g1, buf);
      auto h2 = ctx.comm.iall_reduce_sum<float>(g2, other);
      ctx.comm.charge_compute(0.5 * full);
      h.wait();
      h2.wait();
      ctx.comm.all_reduce_sum<float>(ctx.comm.world().world_group(), buf);
      if (ctx.rank() == 0) {
        *clock_out = ctx.clock.time();
        *stats_out = ctx.comm.stats();
      }
    });
  };
  double clock_ref = 0.0;
  pc::CommStats stats_ref;
  run(1, &clock_ref, &stats_ref);
  for (const int budget : {0, 2, 4}) {
    double clock = 0.0;
    pc::CommStats stats;
    run(budget, &clock, &stats);
    EXPECT_DOUBLE_EQ(clock, clock_ref) << "budget " << budget;
    EXPECT_DOUBLE_EQ(stats.total_seconds(), stats_ref.total_seconds()) << "budget " << budget;
    EXPECT_DOUBLE_EQ(stats.total_hidden_seconds(), stats_ref.total_hidden_seconds())
        << "budget " << budget;
    EXPECT_EQ(stats.total_bytes(), stats_ref.total_bytes()) << "budget " << budget;
  }
}

TEST(CommHandles, TimelineRecordsComputeInFlightAndExposedSpans) {
  spmd(2, [](psim::RankContext& ctx) {
    ctx.comm.timeline().set_enabled(true);
    std::vector<float> buf(4096, 1.0f);
    const double full = allreduce_cost(ctx.comm.world(), 4096 * 4, 2);
    auto h = ctx.comm.iall_reduce_sum<float>(ctx.comm.world().world_group(), buf);
    ctx.comm.charge_compute(0.5 * full);
    h.wait();
    const auto& tl = ctx.comm.timeline();
    using Kind = pc::TimelineSpan::Kind;
    EXPECT_DOUBLE_EQ(tl.total(Kind::Compute), 0.5 * full);
    EXPECT_DOUBLE_EQ(tl.total(Kind::CommInFlight), full);
    EXPECT_DOUBLE_EQ(tl.total(Kind::CommExposed), 0.5 * full);
  });
}

TEST(CommHandles, ScalarReductionsAndBlockingOpsShareTheHandlePath) {
  // Scalar reductions return through wait(); a straggler's clock still
  // dominates, exactly as in the blocking-only design.
  spmd(2, [](psim::RankContext& ctx) {
    if (ctx.rank() == 1) ctx.comm.charge_compute(2.0);
    const double mx =
        ctx.comm.all_reduce_max_scalar(ctx.comm.world().world_group(), 1.0 + ctx.rank());
    EXPECT_DOUBLE_EQ(mx, 2.0);
    const double t_coll =
        pc::collective_time(pc::Collective::AllReduce, 8, 2, ctx.comm.world().group(0).link);
    EXPECT_NEAR(ctx.clock.time(), 2.0 + t_coll, 1e-12);
  });
}

TEST(CommHandles, ResetLinkTimeAllowsWorldReuse) {
  // Reusing one World across sessions whose clocks restart at 0: without
  // reset_link_time() the stale link-busy horizon would be booked as exposed
  // time by the first collective of the second session.
  pc::World world(2);
  auto session = [&world]() {
    double clock0 = 0.0;
    psim::run_cluster(world, psim::Machine::test_machine(), [&](psim::RankContext& ctx) {
      std::vector<float> buf(1024, 1.0f);
      ctx.comm.all_reduce_sum<float>(ctx.comm.world().world_group(), buf);
      if (ctx.rank() == 0) clock0 = ctx.clock.time();
    });
    return clock0;
  };
  const double first = session();
  EXPECT_GT(first, 0.0);
  world.reset_link_time();
  EXPECT_DOUBLE_EQ(session(), first);  // fresh session, identical timing
}

TEST(PipelineDepth, RuleBalancesComputeAgainstRingTime) {
  // Nothing to pipeline: one block, or a free collective.
  EXPECT_EQ(pc::choose_pipeline_depth(1.0, 1.0, 1), 1);
  EXPECT_EQ(pc::choose_pipeline_depth(1.0, 0.0, 8), 1);
  // Compute-bound: one spare slot plus slack hides everything.
  EXPECT_EQ(pc::choose_pipeline_depth(1.0, 0.5, 8), 3);
  EXPECT_EQ(pc::choose_pipeline_depth(2.0, 0.01, 8), 3);
  // Comm-bound: lookahead grows with the ring/compute ratio.
  EXPECT_EQ(pc::choose_pipeline_depth(1.0, 2.5, 8), 5);
  EXPECT_EQ(pc::choose_pipeline_depth(1.0, 1.5, 8), 4);
  // Clamped to the block count and the hard cap.
  EXPECT_EQ(pc::choose_pipeline_depth(1.0, 3.0, 4), 4);
  EXPECT_EQ(pc::choose_pipeline_depth(0.001, 10.0, 64), 8);
  EXPECT_EQ(pc::choose_pipeline_depth(0.0, 1.0, 8), 8);  // no compute to hide behind
  // Monotone in the ratio.
  int prev = 0;
  for (const double ring : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    const int d = pc::choose_pipeline_depth(1.0, ring, 16);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(CommHandles, WaitOnEmptyHandleThrows) {
  pc::CommHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.test());
  EXPECT_THROW(h.wait(), std::runtime_error);
}
