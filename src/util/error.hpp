#pragma once
/// \file error.hpp
/// Lightweight runtime-check macros used across the library.
///
/// PLEXUS_CHECK(cond, msg) throws std::runtime_error with file/line context
/// when `cond` is false. Checks are always on (they guard distributed-algebra
/// invariants whose violation would silently corrupt training).

#include <sstream>
#include <stdexcept>
#include <string>

namespace plexus::util {

[[noreturn]] inline void check_failed(const char* file, int line, const char* expr,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "PLEXUS_CHECK failed at " << file << ":" << line << " (" << expr << ")";
  if (!msg.empty()) os << ": " << msg;
  throw std::runtime_error(os.str());
}

}  // namespace plexus::util

#define PLEXUS_CHECK(cond, ...)                                                      \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      ::plexus::util::check_failed(__FILE__, __LINE__, #cond, std::string{__VA_ARGS__}); \
    }                                                                                \
  } while (0)

#define PLEXUS_CHECK_EQ(a, b, ...)                                                   \
  do {                                                                               \
    if (!((a) == (b))) {                                                             \
      std::ostringstream os_;                                                        \
      os_ << std::string{__VA_ARGS__} << " [" << (a) << " != " << (b) << "]";        \
      ::plexus::util::check_failed(__FILE__, __LINE__, #a " == " #b, os_.str());     \
    }                                                                                \
  } while (0)
