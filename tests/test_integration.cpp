// End-to-end integration and property tests: full option combinations vs the
// serial reference, asymmetric grids, determinism, preprocessing algebra, and
// failure-path validation.
#include <gtest/gtest.h>

#include "baselines/bnsgcn.hpp"
#include "core/preprocess.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "model/serial_gcn.hpp"
#include "sim/machine.hpp"
#include "sparse/spmm.hpp"
#include "util/rng.hpp"

namespace pc = plexus::core;
namespace pg = plexus::graph;
namespace psim = plexus::sim;

namespace {

pg::Graph graph_200() { return pg::make_test_graph(200, 7.0, 10, 5, 2024); }

pc::GcnSpec spec_small() {
  pc::GcnSpec spec;
  spec.hidden_dims = {16, 8};
  spec.options.adam.lr = 0.02f;
  spec.seed = 5;
  return spec;
}

}  // namespace

TEST(Integration, AllOptimisationsTogetherMatchSerial) {
  // Double permutation + blocked aggregation + dW tuning, simultaneously.
  const auto g = graph_200();
  auto spec = spec_small();
  const auto serial = plexus::ref::train_serial_gcn(g, spec, 6);

  spec.options.agg_row_blocks = 4;
  spec.options.gemm_dw_tuning = true;
  pc::TrainOptions opt;
  opt.grid = {2, 2, 2};
  opt.machine = &psim::Machine::perlmutter_a100();
  opt.scheme = pc::PermutationScheme::Double;
  opt.model = spec;
  opt.epochs = 6;
  const auto res = pc::train_plexus(g, opt);
  double tol = 2e-3;
  for (std::size_t i = 0; i < res.epochs.size(); ++i) {
    EXPECT_NEAR(res.epochs[i].loss, serial.losses()[i], tol);
    tol *= 1.8;
  }
}

TEST(Integration, AsymmetricGridWithNonPowerOfTwoAxis) {
  const auto g = graph_200();
  const auto serial = plexus::ref::train_serial_gcn(g, spec_small(), 4);
  pc::TrainOptions opt;
  opt.grid = {3, 2, 2};  // 12 ranks, axis of 3
  opt.machine = &psim::Machine::test_machine();
  opt.model = spec_small();
  opt.epochs = 4;
  const auto res = pc::train_plexus(g, opt);
  double tol = 2e-3;
  for (std::size_t i = 0; i < res.epochs.size(); ++i) {
    EXPECT_NEAR(res.epochs[i].loss, serial.losses()[i], tol);
    tol *= 1.8;
  }
}

TEST(Integration, TrainingIsDeterministic) {
  const auto g = graph_200();
  pc::TrainOptions opt;
  opt.grid = {2, 2, 1};
  opt.machine = &psim::Machine::perlmutter_a100();
  opt.model = spec_small();
  opt.epochs = 4;
  const auto a = pc::train_plexus(g, opt);
  const auto b = pc::train_plexus(g, opt);
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.epochs[i].loss, b.epochs[i].loss);
    EXPECT_DOUBLE_EQ(a.epochs[i].epoch_seconds, b.epochs[i].epoch_seconds);
  }
}

TEST(Integration, DifferentSeedsGiveDifferentModels) {
  const auto g = graph_200();
  pc::TrainOptions opt;
  opt.grid = {2, 1, 1};
  opt.machine = &psim::Machine::test_machine();
  opt.model = spec_small();
  opt.epochs = 3;
  const auto a = pc::train_plexus(g, opt);
  opt.model.seed = 999;
  const auto b = pc::train_plexus(g, opt);
  EXPECT_NE(a.epochs.back().loss, b.epochs.back().loss);
}

TEST(Integration, FrontierClockSlowerThanPerlmutter) {
  // Same functional math, different machine model => slower simulated epochs.
  const auto g = graph_200();
  pc::TrainOptions opt;
  opt.grid = {2, 2, 1};
  opt.model = spec_small();
  opt.epochs = 3;
  opt.machine = &psim::Machine::perlmutter_a100();
  const auto p = pc::train_plexus(g, opt);
  opt.machine = &psim::Machine::frontier_mi250x_gcd();
  const auto f = pc::train_plexus(g, opt);
  EXPECT_EQ(p.epochs.back().loss, f.epochs.back().loss);  // identical math
  EXPECT_GT(f.epochs.back().spmm_seconds, p.epochs.back().spmm_seconds);
}

TEST(Integration, BlockedAggregationReducesExposedComm) {
  // On a bandwidth-bound configuration the pipelined all-reduce must lower
  // the exposed communication time without changing the computation.
  const auto g = pg::make_proxy(pg::dataset_info("Isolate-3-8M"), 2000, 3);
  psim::Machine m = psim::Machine::perlmutter_a100();
  m.alpha = 0.0;  // bandwidth-bound regime (large-message limit)
  pc::TrainOptions opt;
  opt.grid = {4, 2, 2};
  opt.machine = &m;
  opt.model.hidden_dims = {64, 64};
  opt.epochs = 3;
  const auto base = pc::train_plexus(g, opt);
  opt.model.options.agg_row_blocks = 8;
  const auto blocked = pc::train_plexus(g, opt);
  EXPECT_LT(blocked.avg_comm_seconds(1), base.avg_comm_seconds(1));
  EXPECT_NEAR(blocked.avg_compute_seconds(1), base.avg_compute_seconds(1),
              0.35 * base.avg_compute_seconds(1));
}

TEST(Integration, ValidationAccuracyBeatsChance) {
  const auto g = pg::make_test_graph(300, 8.0, 16, 4, 31);
  pc::TrainOptions opt;
  opt.grid = {2, 2, 1};
  opt.machine = &psim::Machine::test_machine();
  opt.model = spec_small();
  opt.model.options.adam.lr = 0.02f;
  opt.epochs = 40;
  opt.evaluate_validation = true;
  const auto res = pc::train_plexus(g, opt);
  EXPECT_GT(res.val_accuracy, 1.5 / 4.0);  // well above the 25% chance level
}

TEST(Integration, RejectsMismatchedPadding) {
  const auto g = graph_200();
  const auto ds = pc::preprocess_graph(g, pc::PermutationScheme::Double, 3, /*pad=*/4, 7);
  pc::TrainOptions opt;
  opt.grid = {3, 1, 1};  // 3 does not divide the padding of 4
  opt.machine = &psim::Machine::test_machine();
  opt.model = spec_small();
  opt.epochs = 1;
  EXPECT_THROW(pc::train_plexus(ds, opt), std::runtime_error);
}

TEST(PreprocessAlgebra, PermutedAdjacencyKeepsRowSums) {
  // P_r A P_c^T is a reordering: multiplying by the all-ones vector must give
  // the permuted row sums (conservation of aggregation mass).
  const auto g = graph_200();
  const auto ds = pc::preprocess_graph(g, pc::PermutationScheme::Double, 3, 8, 7);
  plexus::dense::Matrix ones(ds.padded_nodes, 1, 1.0f);
  const auto sums_even = plexus::sparse::spmm(ds.adj_even, ones);
  const auto sums_odd = plexus::sparse::spmm(ds.adj_odd, ones);
  // Sorted multisets of row sums must be identical across versions.
  std::vector<float> a(sums_even.data(), sums_even.data() + sums_even.size());
  std::vector<float> b(sums_odd.data(), sums_odd.data() + sums_odd.size());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-5f);
}

TEST(PreprocessAlgebra, SchemesAgreeOnLossTrajectory) {
  // Permutation must not change training *mathematically* — only fp order.
  const auto g = graph_200();
  std::vector<std::vector<double>> losses;
  for (const auto scheme : {pc::PermutationScheme::None, pc::PermutationScheme::Single,
                            pc::PermutationScheme::Double}) {
    pc::TrainOptions opt;
    opt.grid = {2, 2, 2};
    opt.machine = &psim::Machine::test_machine();
    opt.scheme = scheme;
    opt.model = spec_small();
    opt.epochs = 5;
    losses.push_back(pc::train_plexus(g, opt).losses());
  }
  for (std::size_t e = 0; e < losses[0].size(); ++e) {
    EXPECT_NEAR(losses[0][e], losses[1][e], 5e-3) << "epoch " << e;
    EXPECT_NEAR(losses[0][e], losses[2][e], 5e-3) << "epoch " << e;
  }
}

TEST(Integration, BnsAndPlexusAgreeWithEachOther) {
  // Two completely independent distributed implementations (3D tensor
  // parallelism vs partition parallelism) must produce the same training run.
  const auto g = graph_200();
  pc::TrainOptions popt;
  popt.grid = {2, 2, 1};
  popt.machine = &psim::Machine::test_machine();
  popt.model = spec_small();
  popt.epochs = 5;
  const auto plexus_run = pc::train_plexus(g, popt);

  plexus::base::BnsGcnOptions bopt;
  bopt.parts = 4;
  bopt.machine = &psim::Machine::test_machine();
  bopt.hidden_dims = popt.model.hidden_dims;
  bopt.adam = popt.model.options.adam;
  bopt.seed = popt.model.seed;
  bopt.epochs = 5;
  const auto bns_run = plexus::base::train_bnsgcn(g, bopt);

  double tol = 2e-3;
  for (std::size_t i = 0; i < plexus_run.epochs.size(); ++i) {
    EXPECT_NEAR(plexus_run.epochs[i].loss, bns_run.epochs[i].loss, tol);
    tol *= 1.8;
  }
}
