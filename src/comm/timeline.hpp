#pragma once
/// \file timeline.hpp
/// Per-rank simulated-time trace: compute spans, in-flight collective spans
/// and the exposed (clock-charged) tail of each collective.
///
/// Disabled by default (span storage is unbounded); enable it per rank for
/// breakdown harnesses (`TrainOptions::trace_timeline`, fig9_breakdown) or
/// comm micro-benches. All instants are simulated seconds on the owning
/// rank's clock. For one collective the trace carries up to two spans:
///
///   CommInFlight  [posted_clock, done_clock]  — the whole life of the op
///                                               (queueing + transfer)
///   CommExposed   [wait_clock,   done_clock]  — the part that stalled the
///                                               rank (absent when fully
///                                               hidden behind compute)
///
/// CommStats::hidden_seconds = transfer time minus exposed time (clamped at
/// zero), the quantity the paper's blocked aggregation (section 5.2)
/// maximises; link-queue delay counts as neither.

#include <iosfwd>
#include <string>
#include <vector>

#include "comm/cost.hpp"

namespace plexus::comm {

struct TimelineSpan {
  enum class Kind { Compute, CommInFlight, CommExposed };
  Kind kind = Kind::Compute;
  Collective op = Collective::Barrier;  ///< meaningful for comm spans only
  double t0 = 0.0;
  double t1 = 0.0;

  double seconds() const { return t1 - t0; }
};

class Timeline {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  void record(TimelineSpan::Kind kind, Collective op, double t0, double t1) {
    if (!enabled_ || t1 <= t0) return;
    spans_.push_back({kind, op, t0, t1});
  }

  const std::vector<TimelineSpan>& spans() const { return spans_; }
  void reset() { spans_.clear(); }

  double total(TimelineSpan::Kind kind) const {
    double t = 0.0;
    for (const auto& s : spans_) {
      if (s.kind == kind) t += s.seconds();
    }
    return t;
  }

 private:
  bool enabled_ = false;
  std::vector<TimelineSpan> spans_;
};

/// Serialise a timeline as Chrome-trace JSON (the `chrome://tracing` /
/// Perfetto "traceEvents" format) so simulated schedules are inspectable
/// visually. Spans become complete ("ph":"X") events in microseconds on three
/// named lanes of process `pid`: compute, comm in-flight, comm exposed; comm
/// events are named after their collective. `pid` lets multiple ranks share
/// one trace file.
void write_chrome_trace(const Timeline& timeline, std::ostream& os, int pid = 0);

/// Convenience: write_chrome_trace to `path` (overwrites). Throws
/// plexus::util errors on I/O failure.
void write_chrome_trace_file(const Timeline& timeline, const std::string& path, int pid = 0);

}  // namespace plexus::comm
