#include "baselines/costmodels.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "comm/cost.hpp"
#include "partition/partitioner.hpp"
#include "perfmodel/perfmodel.hpp"
#include "sim/kernels.hpp"
#include "sim/topology.hpp"
#include "sparse/partition2d.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace plexus::base {

double StructuralCurves::expansion(int parts) const {
  if (parts <= 1) return 1.0;
  const double extra = boundary_a * std::pow(static_cast<double>(parts), boundary_b);
  return 1.0 + std::min(extra, static_cast<double>(parts) - 1.0);
}

double StructuralCurves::sa_recv_fraction(int parts) const {
  if (parts <= 1) return 0.0;
  return std::min(1.0, sa_recv_a * std::pow(static_cast<double>(parts), sa_recv_b));
}

StructuralCurves measure_structural_curves(const graph::Graph& proxy,
                                           const std::vector<int>& part_counts,
                                           std::uint64_t seed) {
  PLEXUS_CHECK(part_counts.size() >= 2, "need >= 2 part counts to fit curves");
  const auto adj = proxy.adjacency();
  const double n = static_cast<double>(proxy.num_nodes);

  std::vector<double> xs;
  std::vector<double> exp_ys;
  std::vector<double> recv_ys;
  for (const int parts : part_counts) {
    PLEXUS_CHECK(parts >= 2, "part counts must be >= 2");
    const auto partn = part::fennel_partition(adj, parts, seed);
    const auto bs = part::boundary_stats(adj, partn);
    xs.push_back(static_cast<double>(parts));
    exp_ys.push_back(std::max(1e-6, bs.expansion_factor(proxy.num_nodes) - 1.0));

    // SA received fraction: remote rows referenced per uniform block row.
    const auto bounds = sparse::block_bounds(proxy.num_nodes, parts);
    double received = 0.0;
    for (int i = 0; i < parts; ++i) {
      const auto a_i = adj.row_slice(bounds[static_cast<std::size_t>(i)],
                                     bounds[static_cast<std::size_t>(i) + 1]);
      const auto refs = a_i.referenced_cols(0, proxy.num_nodes);
      // Remote = referenced outside own block.
      double remote = 0.0;
      for (const auto c : refs) {
        if (c < bounds[static_cast<std::size_t>(i)] ||
            c >= bounds[static_cast<std::size_t>(i) + 1]) {
          remote += 1.0;
        }
      }
      received += remote;
    }
    recv_ys.push_back(std::max(1e-6, received / (n * parts)));
  }

  StructuralCurves curves;
  std::tie(curves.boundary_a, curves.boundary_b) = util::fit_power_law(xs, exp_ys);
  std::tie(curves.sa_recv_a, curves.sa_recv_b) = util::fit_power_law(xs, recv_ys);
  return curves;
}

StructuralCurves calibrated_curves(const graph::DatasetInfo& info, std::uint64_t seed) {
  // Paper anchor (section 7.1): products-14M totals 18M nodes incl. boundary
  // at 32 parts and 22M at 256 parts; N = 14.25M:
  //   expansion(G) - 1 = 0.077 * G^0.35.
  constexpr double kAnchorA = 0.077;
  constexpr double kAnchorB = 0.35;
  constexpr std::int64_t kProxyNodes = 4000;
  constexpr int kProxyParts = 16;

  const auto proxy = graph::make_proxy(info, kProxyNodes, seed);
  const auto anchor_proxy = graph::make_proxy(graph::dataset_info("products-14M"), kProxyNodes,
                                              seed);
  auto cut_fraction = [&](const graph::Graph& g) {
    const auto adj = g.adjacency();
    const auto p = part::fennel_partition(adj, kProxyParts, seed);
    return static_cast<double>(part::edge_cut(adj, p)) /
           static_cast<double>(std::max<std::int64_t>(1, adj.nnz() / 2));
  };
  const double rel_difficulty = cut_fraction(proxy) / std::max(1e-9, cut_fraction(anchor_proxy));

  StructuralCurves curves = measure_structural_curves(proxy, {2, 4, 8, 16}, seed);
  curves.boundary_a = kAnchorA * rel_difficulty;
  curves.boundary_b = kAnchorB;
  return curves;
}

namespace {

/// Layer dims [D, hidden..., C] for the standard evaluation model.
std::vector<double> layer_dims(const graph::DatasetInfo& info, std::int64_t hidden, int layers) {
  std::vector<double> dims;
  dims.push_back(static_cast<double>(info.feature_dim));
  for (int l = 1; l < layers; ++l) dims.push_back(static_cast<double>(hidden));
  dims.push_back(static_cast<double>(info.num_classes));
  return dims;
}

}  // namespace

BaselineEpoch bnsgcn_epoch(const sim::Machine& m, const graph::DatasetInfo& info, int gpus,
                           const StructuralCurves& curves, std::int64_t hidden, int layers) {
  BaselineEpoch out;
  const double n = static_cast<double>(info.num_nodes);
  const double nnz = static_cast<double>(info.num_nonzeros);
  const double expansion = curves.expansion(gpus);
  // Per-part sizes: owned + halo rows; local nonzeros (all edges touching
  // owned rows, so NNZ/G independent of the cut).
  const double owned = n / gpus;
  const double with_halo = owned + n * (expansion - 1.0) / gpus;
  const auto nnz_local = static_cast<std::int64_t>(nnz / gpus);

  const auto link = sim::link_for_flat_group(m, gpus);
  const double a2a_pen = sim::a2a_distance_penalty(m, gpus);
  const auto dims = layer_dims(info, hidden, layers);

  for (int l = 0; l < layers; ++l) {
    const double din = dims[static_cast<std::size_t>(l)];
    const double dout = dims[static_cast<std::size_t>(l) + 1];
    // Forward + backward SpMM on the expanded local subgraph.
    const sim::SpmmShape fwd{nnz_local, static_cast<std::int64_t>(owned),
                             static_cast<std::int64_t>(with_halo), static_cast<std::int64_t>(din)};
    const sim::SpmmShape bwd{nnz_local, static_cast<std::int64_t>(with_halo),
                             static_cast<std::int64_t>(owned), static_cast<std::int64_t>(din)};
    out.compute_seconds += sim::spmm_time(m, fwd) + sim::spmm_time(m, bwd);
    out.compute_seconds +=
        sim::gemm_time(m, static_cast<std::int64_t>(owned), static_cast<std::int64_t>(dout),
                       static_cast<std::int64_t>(din), dense::Trans::N, dense::Trans::N) *
        3.0;  // forward + two backward GEMMs of similar size

    // Halo all-to-all, forward features + backward gradients.
    const double halo_bytes = 4.0 * (with_halo - owned) * din;
    out.comm_seconds += 2.0 * comm::collective_time(comm::Collective::AllToAll,
                                                    static_cast<std::int64_t>(halo_bytes), gpus,
                                                    link, a2a_pen);
    // Replicated-weight gradient all-reduce.
    out.comm_seconds += comm::collective_time(comm::Collective::AllReduce,
                                              static_cast<std::int64_t>(4.0 * din * dout), gpus,
                                              link);
  }
  return out;
}

BaselineEpoch sa_epoch(const sim::Machine& m, const graph::DatasetInfo& info, int gpus,
                       const StructuralCurves& curves, double nnz_imbalance, std::int64_t hidden,
                       int layers) {
  BaselineEpoch out;
  const double n = static_cast<double>(info.num_nodes);
  const double nnz = static_cast<double>(info.num_nonzeros);
  const double recv_frac = curves.sa_recv_fraction(gpus);
  const auto nnz_local = static_cast<std::int64_t>(nnz / gpus * nnz_imbalance);
  const auto link = sim::link_for_flat_group(m, gpus);
  const double a2a_pen = sim::a2a_distance_penalty(m, gpus);
  const auto dims = layer_dims(info, hidden, layers);

  for (int l = 0; l < layers; ++l) {
    const double din = dims[static_cast<std::size_t>(l)];
    const double dout = dims[static_cast<std::size_t>(l) + 1];
    const sim::SpmmShape fwd{nnz_local, static_cast<std::int64_t>(n / gpus),
                             static_cast<std::int64_t>(n), static_cast<std::int64_t>(din)};
    // 1D stages keep the full common dimension (the tall-skinny regime Plexus
    // avoids); forward + backward.
    out.compute_seconds += 2.0 * sim::spmm_time(m, fwd);
    out.compute_seconds +=
        sim::gemm_time(m, static_cast<std::int64_t>(n / gpus), static_cast<std::int64_t>(dout),
                       static_cast<std::int64_t>(din), dense::Trans::N, dense::Trans::N) *
        3.0;

    // Index-targeted feature exchange: recv_frac * N rows per rank, both ways.
    const double bytes = 4.0 * recv_frac * n * din;
    out.comm_seconds += 2.0 * comm::collective_time(comm::Collective::AllToAll,
                                                    static_cast<std::int64_t>(bytes), gpus, link,
                                                    a2a_pen);
    out.comm_seconds += comm::collective_time(comm::Collective::AllReduce,
                                              static_cast<std::int64_t>(4.0 * din * dout), gpus,
                                              link);
  }
  return out;
}

BaselineEpoch plexus_epoch(const sim::Machine& m, const graph::DatasetInfo& info, int gpus,
                           std::int64_t hidden, int layers) {
  const auto w = perf::WorkloadStats::from_dataset(info, hidden, layers);
  const auto ranked = perf::rank_configurations(m, w, gpus);
  PLEXUS_CHECK(!ranked.empty(), "no configurations");
  BaselineEpoch out;
  out.compute_seconds =
      ranked.front().prediction.spmm_seconds + ranked.front().prediction.gemm_seconds;
  out.comm_seconds = ranked.front().prediction.comm_seconds;
  return out;
}

std::optional<std::string> paper_reported_status(const std::string& framework,
                                                 const std::string& dataset, int gpus) {
  // Section 7.1's reported failures, verbatim.
  if (dataset == "ogbn-papers100M") {
    if (framework == "BNS-GCN") return "METIS partition timeout (>5h)";
    if (framework == "SA") return "OOM";
    if (framework == "SA+GVB") return "OOM (GVB partitioner, 32+ GPUs)";
  }
  if (dataset == "Isolate-3-8M") {
    if (framework == "SA" || framework == "SA+GVB") return "OOM";
  }
  if (dataset == "products-14M") {
    if (framework == "SA" && gpus >= 256) return "job timeout (20 min)";
    if (framework == "SA+GVB" && gpus >= 32) return "drastic slowdown reported";
  }
  return std::nullopt;
}

}  // namespace plexus::base
