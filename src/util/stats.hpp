#pragma once
/// \file stats.hpp
/// Small statistics toolkit: summaries, ordinary least squares (normal
/// equations), and regression quality metrics (R^2, RMSE). Used by the
/// performance model (section 4.1 of the paper fits a 3-term linear model and
/// reports train/test R^2 and RMSE over random splits).

#include <cstdint>
#include <vector>

namespace plexus::util {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

Summary summarize(const std::vector<double>& xs);

/// Ratio of max to mean; the paper's load-imbalance metric (Table 3).
double max_over_mean(const std::vector<double>& xs);

/// Ordinary least squares: fit y ~ X * beta (+ intercept if add_intercept).
/// X is row-major, n rows of k features. Returns beta of size k (+1 leading
/// intercept term when requested). Solves the normal equations with partial
/// pivoting; rank deficiency falls back to tiny ridge regularisation.
std::vector<double> linear_regression(const std::vector<std::vector<double>>& X,
                                      const std::vector<double>& y,
                                      bool add_intercept = false);

/// Predictions for a fitted model (same layout conventions as linear_regression).
std::vector<double> linear_predict(const std::vector<std::vector<double>>& X,
                                   const std::vector<double>& beta,
                                   bool has_intercept = false);

/// Coefficient of determination.
double r_squared(const std::vector<double>& y_true, const std::vector<double>& y_pred);

/// Root mean squared error.
double rmse(const std::vector<double>& y_true, const std::vector<double>& y_pred);

/// Solve a dense linear system A x = b (A row-major n*n) by Gaussian
/// elimination with partial pivoting. Throws on singular systems.
std::vector<double> solve_linear_system(std::vector<double> A, std::vector<double> b,
                                        std::size_t n);

/// Fit y = a * x^b by log-log least squares (x, y > 0 required).
/// Returns {a, b}. Used to extrapolate structural curves (e.g. boundary-node
/// growth with partition count) measured on scaled-down proxy graphs.
std::pair<double, double> fit_power_law(const std::vector<double>& x,
                                        const std::vector<double>& y);

}  // namespace plexus::util
