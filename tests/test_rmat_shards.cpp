// Property tests for graph::rmat_to_shards (ROADMAP item 2): the streamed,
// out-of-core generation path must produce a shard directory byte-identical
// to the in-memory reference pipeline
//
//   write_sharded_plexus_dataset(preprocess_graph(<rmat graph>, ...), parts)
//
// across scales, permutation schemes, grid sizes and spill-chunk sizes —
// including chunk sizes that split rows and blocks mid-stream. Byte equality
// of every .plx file is the strongest possible statement: any consumer
// (ShardedDatasetView, the streaming epoch, checkpoint resume) then behaves
// bitwise identically on either directory.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/dataset_view.hpp"
#include "core/preprocess.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/rmat_shards.hpp"

namespace fs = std::filesystem;
using namespace plexus;

namespace {

// Rebuild the exact in-memory graph rmat_to_shards is specified against:
// graph::rmat edges + the finalize_graph recipe (datasets.cpp) via its
// public pieces.
graph::Graph reference_graph(const graph::RmatShardsSpec& spec) {
  graph::Graph g;
  g.name = "rmat-ref";
  g.num_nodes = std::int64_t{1} << spec.scale;
  g.num_classes = spec.num_classes;
  g.edges = graph::rmat(spec.scale, spec.target_edges, spec.a, spec.b, spec.c, spec.d, spec.seed);
  const auto deg = g.degrees();
  g.labels = graph::degree_based_labels(deg, spec.num_classes, spec.seed);
  g.features =
      graph::synthetic_features(g.num_nodes, spec.feature_dim, g.labels, spec.label_signal,
                                spec.seed);
  graph::make_split_masks(g.num_nodes, 0.6, 0.2, spec.seed, g.train_mask, g.val_mask,
                          g.test_mask);
  return g;
}

std::string write_reference(const graph::Graph& g, const graph::RmatShardsSpec& spec,
                            const std::string& dir) {
  const auto ds = core::preprocess_graph(g, static_cast<core::PermutationScheme>(spec.scheme),
                                         spec.num_layers, spec.pad_multiple,
                                         spec.preprocess_seed);
  core::write_sharded_plexus_dataset(dir, ds, spec.parts);
  return dir;
}

std::map<std::string, std::vector<char>> read_dir(const std::string& dir) {
  std::map<std::string, std::vector<char>> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    files[entry.path().filename().string()] =
        std::vector<char>(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  return files;
}

void expect_dirs_identical(const std::string& got_dir, const std::string& want_dir) {
  const auto got = read_dir(got_dir);
  const auto want = read_dir(want_dir);
  ASSERT_EQ(got.size(), want.size()) << got_dir << " vs " << want_dir;
  for (const auto& [name, bytes] : want) {
    const auto it = got.find(name);
    ASSERT_NE(it, got.end()) << "missing file " << name;
    EXPECT_EQ(it->second.size(), bytes.size()) << name;
    EXPECT_TRUE(it->second == bytes) << "byte mismatch in " << name;
  }
}

std::string fresh_dir(const std::string& tag) {
  const auto dir = (fs::temp_directory_path() / ("plexus_rmat_shards_" + tag)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void run_case(const std::string& tag, const graph::RmatShardsSpec& spec) {
  SCOPED_TRACE(tag);
  const auto ref_dir = fresh_dir(tag + "_ref");
  const auto got_dir = fresh_dir(tag + "_got");
  write_reference(reference_graph(spec), spec, ref_dir);
  const auto result = graph::rmat_to_shards(got_dir, spec);
  EXPECT_EQ(result.num_nodes, std::int64_t{1} << spec.scale);
  EXPECT_GT(result.num_edges, 0);
  EXPECT_GT(result.adjacency_nnz, result.num_edges);
  EXPECT_GT(result.bytes_written, 0);
  EXPECT_FALSE(fs::exists(got_dir + "/.spill")) << "spill dir must be removed";
  expect_dirs_identical(got_dir, ref_dir);
  fs::remove_all(ref_dir);
  fs::remove_all(got_dir);
}

}  // namespace

// Scale 14, Double permutation, 2x2 grid, spill chunk 4097: the odd chunk
// size guarantees sorted-run boundaries fall mid-row and mid-block.
TEST(RmatShards, MatchesInMemoryScale14DoubleOddChunk) {
  graph::RmatShardsSpec spec;
  spec.scale = 14;
  spec.target_edges = (std::int64_t{1} << 14) * 4;
  spec.seed = 3;
  spec.feature_dim = 12;
  spec.num_classes = 7;
  spec.scheme = 2;
  spec.num_layers = 3;
  spec.pad_multiple = 8;
  spec.preprocess_seed = 11;
  spec.parts = 2;
  spec.chunk_edges = 4097;
  run_case("s14_double", spec);
}

// Scheme None keeps natural ordering and a single adjacency version; chunk
// 1009 exercises many tiny spill runs.
TEST(RmatShards, MatchesInMemoryScale14NoneTinyChunks) {
  graph::RmatShardsSpec spec;
  spec.scale = 14;
  spec.target_edges = (std::int64_t{1} << 14) * 3;
  spec.seed = 9;
  spec.feature_dim = 5;
  spec.num_classes = 4;
  spec.scheme = 0;
  spec.num_layers = 2;
  spec.pad_multiple = 1;
  spec.preprocess_seed = 7;
  spec.parts = 1;
  spec.chunk_edges = 1009;
  run_case("s14_none", spec);
}

// Single permutation, 4x4 grid, even-layer output permutation (num_layers 3).
TEST(RmatShards, MatchesInMemoryScale16Single) {
  graph::RmatShardsSpec spec;
  spec.scale = 16;
  spec.target_edges = (std::int64_t{1} << 16) * 4;
  spec.seed = 21;
  spec.feature_dim = 16;
  spec.num_classes = 10;
  spec.scheme = 1;
  spec.num_layers = 3;
  spec.pad_multiple = 16;
  spec.preprocess_seed = 5;
  spec.parts = 4;
  spec.chunk_edges = 1 << 16;
  run_case("s16_single", spec);
}

// proxy_shards_spec must reproduce make_proxy bit for bit: same generator
// parameters, label signal and finalize recipe.
TEST(RmatShards, ProxySpecMatchesMakeProxy) {
  const auto& info = graph::dataset_info("ogbn-products");
  const std::int64_t target_nodes = 16384;
  const std::uint64_t seed = 1234;
  auto spec = graph::proxy_shards_spec(info, target_nodes, seed);
  spec.scheme = 2;
  spec.num_layers = 3;
  spec.pad_multiple = 8;
  spec.preprocess_seed = 7;
  spec.parts = 2;
  spec.chunk_edges = 1 << 15;

  const auto ref_dir = fresh_dir("proxy_ref");
  const auto got_dir = fresh_dir("proxy_got");
  const auto g = graph::make_proxy(info, target_nodes, seed);
  write_reference(g, spec, ref_dir);
  graph::rmat_to_shards(got_dir, spec);
  expect_dirs_identical(got_dir, ref_dir);

  // The directory must load through the existing sharded view.
  core::ShardedDatasetView view(got_dir);
  EXPECT_EQ(view.num_nodes(), g.num_nodes);
  EXPECT_EQ(view.feature_dim(), info.feature_dim);
  fs::remove_all(ref_dir);
  fs::remove_all(got_dir);
}

// Scale 18: the size the CI streaming-smoke job trains at.
TEST(RmatShards, MatchesInMemoryScale18) {
  graph::RmatShardsSpec spec;
  spec.scale = 18;
  spec.target_edges = (std::int64_t{1} << 18) * 4;
  spec.seed = 2;
  spec.feature_dim = 8;
  spec.num_classes = 8;
  spec.scheme = 2;
  spec.num_layers = 3;
  spec.pad_multiple = 8;
  spec.preprocess_seed = 7;
  spec.parts = 4;
  spec.chunk_edges = 1 << 18;
  run_case("s18_double", spec);
}
