#pragma once
/// \file layer.hpp
/// One distributed GCN layer: the forward pass of Algorithm 1 and backward
/// pass of Algorithm 2, generalised to every layer through the role rotation
/// (roles.hpp). Includes the two kernel-level optimisations of section 5:
/// blocked aggregation with pipelined per-block all-reduce (5.2) and the
/// reversed-order dL/dW GEMM (5.3).
///
/// A layer owns its weight shard (the (Din/Q x Dout/P) block, flat-sharded
/// across the R-parallel group) and that shard's Adam state. All simulated
/// kernel time is charged onto the rank's clock; collectives charge and
/// synchronise through the communicator.

#include <cstdint>

#include "core/adjacency_store.hpp"
#include "core/grid.hpp"
#include "core/preprocess.hpp"
#include "core/roles.hpp"
#include "core/shard.hpp"
#include "dense/matrix.hpp"
#include "dense/optim.hpp"
#include "sim/cluster.hpp"

namespace plexus::core {

/// Tunables of the parallel algorithm (paper section 5).
struct PlexusOptions {
  int agg_row_blocks = 1;       ///< >1 enables blocked aggregation (section 5.2)
  bool gemm_dw_tuning = false;  ///< reversed dL/dW multiplication order (section 5.3)
  /// Software-pipeline depth of blocked aggregation: while a block's SpMM
  /// runs, up to `pipeline_depth - 1` per-block all-reduces may be in flight
  /// on the comm thread. 1 = fully blocking (wait immediately after post);
  /// 2 = the classic one-block lookahead of section 5.2. Losses are
  /// bitwise-identical for any depth — only the exposed comm time changes.
  int pipeline_depth = 2;
  dense::AdamConfig adam;
};

/// Per-rank accumulated simulated kernel time, by category.
struct KernelTimers {
  double spmm = 0.0;
  double gemm = 0.0;
  double elementwise = 0.0;
  double total() const { return spmm + gemm + elementwise; }
};

class DistGcnLayer {
 public:
  DistGcnLayer(const PlexusDataset& ds, const Grid3D& grid, int rank, int layer_index,
               int num_layers, std::int64_t in_dim_padded, std::int64_t out_dim_padded,
               std::int64_t in_dim_valid, std::int64_t out_dim_valid, const AdjacencyShard* adj,
               const PlexusOptions& opts, std::uint64_t seed);

  /// Forward: f_in is the (N/P x Din/Q) input block (layer 0's flat-sharded
  /// features must be gathered by the caller). Applies ReLU unless `last`.
  /// `epoch_seed` feeds the per-kernel variability model.
  dense::Matrix forward(sim::RankContext& ctx, const dense::Matrix& f_in, bool last,
                        std::uint64_t epoch_seed, KernelTimers& timers);

  /// Backward: df_out is the gradient w.r.t. this layer's output (same block
  /// layout as the forward output, replicated over Q). Returns the *partial*
  /// dF_in block (N/P x Din/Q). When `fuse_r_all_reduce` is set the layer
  /// itself applies the R-group all-reduce, pipelined against the blocked
  /// dF = SpMM(A^T, dH) (the backward mirror of section 5.2) — the returned
  /// block is then the *reduced* dF_in. Otherwise the caller applies the
  /// final R-group collective (reduce-scatter at layer 0 — the section 3.2
  /// distinction). Stores dW internally; its reduce-scatter is posted
  /// asynchronously and retired in apply_grad().
  dense::Matrix backward(sim::RankContext& ctx, const dense::Matrix& df_out, bool last,
                         KernelTimers& timers, bool fuse_r_all_reduce = false);

  /// Adam step on the local weight slice using the gradient from backward().
  /// Waits for the asynchronous dW reduce-scatter posted there.
  void apply_grad(sim::RankContext& ctx, KernelTimers& timers);

  const LayerRoles& roles() const { return roles_; }
  comm::GroupId r_group() const { return r_group_; }
  std::int64_t weight_slice_size() const { return static_cast<std::int64_t>(w_slice_.size()); }

  /// Gathered weight block (tests): (Din/Q x Dout/P).
  dense::Matrix gather_weight_block(sim::RankContext& ctx);

 private:
  /// Post the R-group all-gather assembling the (Din/Q x Dout/P) weight block
  /// into `w_block`; the caller waits the handle before reading it.
  comm::CommHandle igathered_weights(sim::RankContext& ctx, dense::Matrix& w_block);
  dense::Matrix gathered_weights(sim::RankContext& ctx);

  const PlexusDataset* ds_;
  const Grid3D* grid_;
  const AdjacencyShard* adj_;
  PlexusOptions opts_;
  int layer_;
  LayerRoles roles_;

  // Axis extents and this rank's coordinates along the role axes.
  int ext_p_, ext_q_, ext_r_;
  int coord_p_, coord_q_, coord_r_;
  comm::GroupId p_group_, q_group_, r_group_;

  // Padded block dims.
  std::int64_t rows_r_;   ///< N'/R: output rows
  std::int64_t rows_p_;   ///< N'/P: input rows
  std::int64_t din_q_;    ///< Din'/Q
  std::int64_t dout_p_;   ///< Dout'/P

  // Weight slice (1/R of the (Din/Q x Dout/P) block, flattened) + Adam.
  std::vector<float> w_slice_;
  std::vector<float> dw_slice_;
  dense::Adam adam_;

  // Saved forward state.
  dense::Matrix h_;      ///< aggregated H block (N'/R x Din'/Q)
  dense::Matrix q_pre_;  ///< pre-activation combination output

  // In-flight backward state: the full dW block must stay alive until its
  // reduce-scatter (posted in backward, hidden behind the remaining backward
  // compute) is retired in apply_grad.
  dense::Matrix dw_block_;
  comm::CommHandle dw_handle_;
};

}  // namespace plexus::core
