#pragma once
/// \file rmat_shards.hpp
/// Chunked RMAT generation straight to disk (ROADMAP item 2): generate,
/// normalise, permute and 2D-shard a power-law proxy graph without ever
/// materialising the full COO / CSR in memory. The output directory is
/// byte-identical to
///
///   write_sharded_plexus_dataset(preprocess_graph(make_proxy(...), ...))
///
/// at overlapping scales — the property the streaming-epoch loss gate rests
/// on — but peak memory is O(nodes) arrays (degrees, permutations, labels)
/// plus bounded sort chunks, never O(edges). Edge attempts replay the exact
/// `graph::rmat` RNG stream; duplicates are removed by external sort instead
/// of a hash set, keeping the accepted edge set bitwise identical.

#include <cstdint>
#include <string>

#include "graph/datasets.hpp"

namespace plexus::graph {

struct RmatShardsSpec {
  // Graph shape — the exact `rmat` generator parameters.
  int scale = 20;                  ///< log2(#nodes)
  std::int64_t target_edges = 0;   ///< unique undirected edges to accept
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  std::uint64_t seed = 1;
  std::int64_t feature_dim = 32;
  std::int64_t num_classes = 16;
  float label_signal = 0.5f;       ///< make_proxy uses 0.5

  // Preprocess knobs, mirroring core::preprocess_graph without pulling the
  // graph into memory. `scheme` carries core::PermutationScheme as an int
  // (0 none, 1 single, 2 double) so graph/ stays below core/ in the layering.
  int scheme = 2;
  int num_layers = 3;
  std::int64_t pad_multiple = 1;
  std::uint64_t preprocess_seed = 7;

  // Shard layout and out-of-core budgets.
  int parts = 1;                      ///< block-file grid is parts x parts
  std::int64_t chunk_edges = 1 << 22; ///< records buffered before spilling
  std::string tmp_dir;                ///< spill directory (default: dir/.spill)
};

/// Fill the graph-shape fields exactly the way make_proxy does for the
/// power-law classes (Social / CoPurchase / Citation), so streaming
/// generation reproduces `make_proxy(info, target_nodes, seed)` bit for bit.
/// Preprocess/shard fields keep their defaults — set them from TrainOptions.
RmatShardsSpec proxy_shards_spec(const DatasetInfo& info, std::int64_t target_nodes,
                                 std::uint64_t seed);

struct RmatShardsResult {
  std::int64_t num_nodes = 0;
  std::int64_t padded_nodes = 0;
  std::int64_t num_edges = 0;        ///< accepted undirected edges
  std::int64_t adjacency_nnz = 0;    ///< nnz of each normalised version
  std::int64_t bytes_written = 0;
  std::int64_t peak_buffer_bytes = 0;  ///< largest transient sort/block buffer
};

/// Generate the dataset into `dir` (created if needed). Spill files live in
/// spec.tmp_dir (default `dir`/.spill) and are removed before returning, so
/// the directory holds exactly the write_sharded_plexus_dataset file set.
RmatShardsResult rmat_to_shards(const std::string& dir, const RmatShardsSpec& spec);

}  // namespace plexus::graph
