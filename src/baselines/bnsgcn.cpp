#include "baselines/bnsgcn.hpp"

#include <algorithm>

#include "comm/world.hpp"
#include "core/shard.hpp"
#include "dense/gemm.hpp"
#include "dense/ops.hpp"
#include "partition/halo.hpp"
#include "partition/partitioner.hpp"
#include "sim/cluster.hpp"
#include "sim/kernels.hpp"
#include "sim/topology.hpp"
#include "sparse/spmm.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace plexus::base {

std::vector<double> BnsGcnResult::losses() const {
  std::vector<double> out;
  out.reserve(epochs.size());
  for (const auto& e : epochs) out.push_back(e.loss);
  return out;
}

double BnsGcnResult::avg_epoch_seconds(int skip) const {
  if (epochs.empty()) return 0.0;
  const auto start = std::min<std::size_t>(static_cast<std::size_t>(skip), epochs.size() - 1);
  double sum = 0.0;
  for (std::size_t i = start; i < epochs.size(); ++i) sum += epochs[i].epoch_seconds;
  return sum / static_cast<double>(epochs.size() - start);
}

namespace {

/// Per-rank training state for one partition.
struct RankState {
  const part::PartSubgraph* plan = nullptr;
  sparse::Csr adj_t;  ///< transpose of local_adj (backward)
  dense::Matrix features;
  std::vector<dense::Matrix> weights;
  std::vector<dense::Adam> w_adams;
  dense::Adam f_adam;
  std::vector<std::int32_t> labels;
  std::vector<std::uint8_t> train_mask;
  std::vector<std::int64_t> dims;
};

/// Exchange rows of `local` (owned-row matrix) according to the halo plan and
/// write them into rows [num_owned ...) of `assembled`. Charged as all-to-all.
void exchange_halo_forward(sim::RankContext& ctx, const part::PartSubgraph& plan,
                           const dense::Matrix& local, dense::Matrix& assembled,
                           const std::vector<std::uint8_t>& halo_live, double inv_rate) {
  const int parts = static_cast<int>(plan.send_rows.size());
  const std::int64_t d = local.cols();
  std::vector<std::vector<float>> send(static_cast<std::size_t>(parts));
  for (int q = 0; q < parts; ++q) {
    const auto& rows = plan.send_rows[static_cast<std::size_t>(q)];
    auto& buf = send[static_cast<std::size_t>(q)];
    buf.reserve(rows.size() * static_cast<std::size_t>(d));
    for (const auto r : rows) {
      buf.insert(buf.end(), local.row(r), local.row(r) + d);
    }
  }
  std::vector<std::vector<float>> recv;
  ctx.comm.all_to_all_v<float>(ctx.comm.world().world_group(), send, recv);
  for (int q = 0; q < parts; ++q) {
    const auto& slots = plan.recv_halo[static_cast<std::size_t>(q)];
    const auto& buf = recv[static_cast<std::size_t>(q)];
    PLEXUS_CHECK(buf.size() == slots.size() * static_cast<std::size_t>(d), "halo recv size");
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const std::int64_t row = plan.num_owned() + slots[i];
      if (halo_live.empty() || halo_live[static_cast<std::size_t>(slots[i])] != 0) {
        const float scale = halo_live.empty() ? 1.0f : static_cast<float>(inv_rate);
        float* dst = assembled.row(row);
        const float* src = buf.data() + i * static_cast<std::size_t>(d);
        for (std::int64_t j = 0; j < d; ++j) dst[j] = scale * src[j];
      }
      // dead halo rows stay zero (their edges are dropped this epoch)
    }
  }
}

/// Reverse exchange: halo-row gradients go back to their owners, which
/// accumulate them into their owned-row gradient matrix.
void exchange_halo_backward(sim::RankContext& ctx, const part::PartSubgraph& plan,
                            const dense::Matrix& dx, dense::Matrix& dlocal,
                            const std::vector<std::uint8_t>& halo_live, double inv_rate) {
  const int parts = static_cast<int>(plan.send_rows.size());
  const std::int64_t d = dx.cols();
  std::vector<std::vector<float>> send(static_cast<std::size_t>(parts));
  for (int q = 0; q < parts; ++q) {
    const auto& slots = plan.recv_halo[static_cast<std::size_t>(q)];
    auto& buf = send[static_cast<std::size_t>(q)];
    buf.reserve(slots.size() * static_cast<std::size_t>(d));
    for (const auto h : slots) {
      const float* src = dx.row(plan.num_owned() + h);
      if (halo_live.empty() || halo_live[static_cast<std::size_t>(h)] != 0) {
        const float scale = halo_live.empty() ? 1.0f : static_cast<float>(inv_rate);
        for (std::int64_t j = 0; j < d; ++j) buf.push_back(scale * src[j]);
      } else {
        buf.insert(buf.end(), static_cast<std::size_t>(d), 0.0f);
      }
    }
  }
  std::vector<std::vector<float>> recv;
  ctx.comm.all_to_all_v<float>(ctx.comm.world().world_group(), send, recv);
  for (int q = 0; q < parts; ++q) {
    const auto& rows = plan.send_rows[static_cast<std::size_t>(q)];
    const auto& buf = recv[static_cast<std::size_t>(q)];
    PLEXUS_CHECK(buf.size() == rows.size() * static_cast<std::size_t>(d), "halo grad recv size");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      float* dst = dlocal.row(rows[i]);
      const float* src = buf.data() + i * static_cast<std::size_t>(d);
      for (std::int64_t j = 0; j < d; ++j) dst[j] += src[j];
    }
  }
}

}  // namespace

BnsGcnResult train_bnsgcn(const graph::Graph& g, const BnsGcnOptions& opt) {
  PLEXUS_CHECK(opt.parts >= 1, "parts must be positive");
  PLEXUS_CHECK(opt.boundary_rate > 0.0 && opt.boundary_rate <= 1.0, "bad boundary rate");

  const sparse::Csr a_norm = sparse::normalize_adjacency(g.adjacency(), g.num_nodes);
  part::Partitioning partn;
  switch (opt.partitioner) {
    case PartitionerKind::Fennel:
      partn = part::fennel_partition(g.adjacency(), opt.parts, opt.seed);
      break;
    case PartitionerKind::Random:
      partn = part::random_partition(g.num_nodes, opt.parts, opt.seed);
      break;
    case PartitionerKind::NnzBalanced:
      partn = part::nnz_balanced_partition(g.adjacency(), opt.parts);
      break;
  }
  const auto plans = part::build_halo_plans(a_norm, partn);
  const auto bstats = part::boundary_stats(a_norm, partn);

  BnsGcnResult result;
  result.total_nodes_with_boundary = bstats.total_with_boundary;
  result.edge_cut = part::edge_cut(g.adjacency(), partn);
  result.epochs.resize(static_cast<std::size_t>(opt.epochs));

  comm::World world(opt.parts);
  // Partition parallelism exchanges over the flat world group; configure its
  // link + all-to-all distance penalty from the machine topology.
  auto& wg = world.group(world.world_group());
  wg.link = sim::link_for_flat_group(*opt.machine, opt.parts);
  wg.a2a_distance_penalty = sim::a2a_distance_penalty(*opt.machine, opt.parts);

  const double norm = static_cast<double>(g.train_count());
  const int L = static_cast<int>(opt.hidden_dims.size()) + 1;

  sim::run_cluster(world, *opt.machine, [&](sim::RankContext& ctx) {
    const auto& plan = plans[static_cast<std::size_t>(ctx.rank())];
    RankState st;
    st.plan = &plan;
    st.adj_t = plan.local_adj.transposed();
    st.dims.push_back(g.feature_dim());
    for (const auto h : opt.hidden_dims) st.dims.push_back(h);
    st.dims.push_back(g.num_classes);

    // Local features / labels / masks; replicated weights.
    st.features = dense::Matrix(plan.num_owned(), g.feature_dim());
    st.labels.resize(static_cast<std::size_t>(plan.num_owned()));
    st.train_mask.resize(static_cast<std::size_t>(plan.num_owned()));
    for (std::size_t i = 0; i < plan.owned.size(); ++i) {
      const auto v = plan.owned[i];
      std::copy(g.features.row(v), g.features.row(v) + g.feature_dim(),
                st.features.row(static_cast<std::int64_t>(i)));
      st.labels[i] = g.labels[static_cast<std::size_t>(v)];
      st.train_mask[i] = g.train_mask[static_cast<std::size_t>(v)];
    }
    for (int l = 0; l < L; ++l) {
      const auto din = st.dims[static_cast<std::size_t>(l)];
      const auto dout = st.dims[static_cast<std::size_t>(l) + 1];
      st.weights.push_back(core::init_weight_block(opt.seed, l, 0, 0, din, dout, din, dout));
      st.w_adams.emplace_back(static_cast<std::size_t>(din * dout), opt.adam);
    }
    st.f_adam = dense::Adam(static_cast<std::size_t>(st.features.size()), opt.adam);

    const sim::Machine& m = *ctx.machine;
    const std::int64_t cols_total = plan.num_owned() + plan.num_halo();

    for (int epoch = 0; epoch < opt.epochs; ++epoch) {
      const double t0 = ctx.clock.time();
      core::KernelTimers timers;

      // BNS sampling: each halo node is live with probability boundary_rate
      // this epoch (deterministic in (seed, epoch, node)); rate 1.0 => exact.
      std::vector<std::uint8_t> halo_live;
      double inv_rate = 1.0;
      if (opt.boundary_rate < 1.0) {
        halo_live.resize(plan.halo.size());
        util::CounterRng rng(util::hash_combine(opt.seed, 0xb0b + epoch));
        for (std::size_t h = 0; h < plan.halo.size(); ++h) {
          halo_live[h] =
              rng.uniform_at(static_cast<std::uint64_t>(plan.halo[h])) < opt.boundary_rate ? 1 : 0;
        }
        inv_rate = 1.0 / opt.boundary_rate;
      }

      // ---- Forward.
      std::vector<dense::Matrix> h_save(static_cast<std::size_t>(L));
      std::vector<dense::Matrix> q_save(static_cast<std::size_t>(L));
      dense::Matrix f = st.features;
      for (int l = 0; l < L; ++l) {
        dense::Matrix x(cols_total, f.cols());
        x.set_block(0, 0, f);
        exchange_halo_forward(ctx, plan, f, x, halo_live, inv_rate);
        dense::Matrix h = sparse::spmm(plan.local_adj, x);
        {
          const sim::SpmmShape shape{plan.local_adj.nnz(), plan.num_owned(), cols_total,
                                     f.cols()};
          const double t = sim::spmm_time(m, shape) *
                           sim::spmm_noise_factor(m, shape,
                                                  util::hash_combine(opt.seed,
                                                                     0xee00 + epoch * 31 + l));
          ctx.comm.charge_compute(t);
          timers.spmm += t;
        }
        dense::Matrix q = dense::matmul(h, st.weights[static_cast<std::size_t>(l)]);
        {
          const double t = sim::gemm_time(m, h.rows(), q.cols(), h.cols(), dense::Trans::N,
                                          dense::Trans::N);
          ctx.comm.charge_compute(t);
          timers.gemm += t;
        }
        h_save[static_cast<std::size_t>(l)] = std::move(h);
        if (l == L - 1) {
          q_save[static_cast<std::size_t>(l)] = std::move(q);
        } else {
          f = dense::relu(q);
          q_save[static_cast<std::size_t>(l)] = std::move(q);
        }
      }

      // ---- Loss on owned rows.
      const auto& logits = q_save[static_cast<std::size_t>(L - 1)];
      dense::Matrix dlogits(logits.rows(), logits.cols());
      const auto ce =
          dense::softmax_cross_entropy(logits, st.labels, st.train_mask, norm, &dlogits);
      const double loss_total =
          ctx.comm.all_reduce_sum_scalar(world.world_group(), ce.loss_sum);
      const double count_total = ctx.comm.all_reduce_sum_scalar(
          world.world_group(), static_cast<double>(ce.count));
      const double correct_total = ctx.comm.all_reduce_sum_scalar(
          world.world_group(), static_cast<double>(ce.correct));

      // ---- Backward.
      dense::Matrix dq = std::move(dlogits);
      for (int l = L - 1; l >= 0; --l) {
        const auto& h = h_save[static_cast<std::size_t>(l)];
        dense::Matrix dw = dense::matmul(h, dq, dense::Trans::T, dense::Trans::N);
        {
          const double t = sim::gemm_time(m, dw.rows(), dw.cols(), h.rows(), dense::Trans::T,
                                          dense::Trans::N);
          ctx.comm.charge_compute(t);
          timers.gemm += t;
        }
        ctx.comm.all_reduce_sum<float>(world.world_group(), dw.flat());
        dense::Matrix dh =
            dense::matmul(dq, st.weights[static_cast<std::size_t>(l)], dense::Trans::N,
                          dense::Trans::T);
        {
          const double t = sim::gemm_time(m, dh.rows(), dh.cols(), dq.cols(), dense::Trans::N,
                                          dense::Trans::T);
          ctx.comm.charge_compute(t);
          timers.gemm += t;
        }
        dense::Matrix dx = sparse::spmm(st.adj_t, dh);  // (owned+halo) x Din
        {
          const sim::SpmmShape shape{st.adj_t.nnz(), cols_total, plan.num_owned(), dh.cols()};
          const double t = sim::spmm_time(m, shape);
          ctx.comm.charge_compute(t);
          timers.spmm += t;
        }
        dense::Matrix df = dx.block(0, plan.num_owned(), 0, dx.cols());
        exchange_halo_backward(ctx, plan, dx, df, halo_live, inv_rate);

        st.w_adams[static_cast<std::size_t>(l)].step(
            st.weights[static_cast<std::size_t>(l)].flat(), dw.flat());
        if (l > 0) {
          dense::Matrix next_dq(df.rows(), df.cols());
          dense::relu_backward(q_save[static_cast<std::size_t>(l - 1)], df, next_dq);
          dq = std::move(next_dq);
        } else {
          st.f_adam.step(st.features.flat(), df.flat());
        }
      }

      core::EpochStats s;
      s.loss = count_total > 0 ? loss_total / count_total : 0.0;
      s.train_accuracy = count_total > 0 ? correct_total / count_total : 0.0;
      s.epoch_seconds = ctx.clock.time() - t0;
      s.spmm_seconds = timers.spmm;
      s.gemm_seconds = timers.gemm;
      s.elementwise_seconds = timers.elementwise;
      const auto wg2 = world.world_group();
      s.epoch_seconds = ctx.comm.all_reduce_max_scalar(wg2, s.epoch_seconds);
      s.spmm_seconds = ctx.comm.all_reduce_max_scalar(wg2, s.spmm_seconds);
      s.gemm_seconds = ctx.comm.all_reduce_max_scalar(wg2, s.gemm_seconds);
      if (ctx.rank() == 0) result.epochs[static_cast<std::size_t>(epoch)] = s;
    }
  });
  return result;
}

}  // namespace plexus::base
