#include "util/rng.hpp"

#include <numeric>

#include "util/error.hpp"

namespace plexus::util {

std::vector<std::int64_t> random_permutation(std::int64_t n, std::uint64_t seed) {
  PLEXUS_CHECK(n >= 0, "permutation size must be non-negative");
  std::vector<std::int64_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), std::int64_t{0});
  SplitMix64 rng(seed);
  for (std::int64_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

std::vector<std::int64_t> identity_permutation(std::int64_t n) {
  std::vector<std::int64_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), std::int64_t{0});
  return perm;
}

std::vector<std::int64_t> invert_permutation(const std::vector<std::int64_t>& perm) {
  std::vector<std::int64_t> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inv[static_cast<std::size_t>(perm[i])] = static_cast<std::int64_t>(i);
  }
  return inv;
}

bool is_permutation(const std::vector<std::int64_t>& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (const auto v : perm) {
    if (v < 0 || static_cast<std::size_t>(v) >= perm.size()) return false;
    if (seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

}  // namespace plexus::util
