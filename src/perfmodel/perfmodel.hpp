#pragma once
/// \file perfmodel.hpp
/// The Plexus performance model (paper section 4): predicts per-epoch SpMM,
/// GEMM and communication time for any 3D configuration, fits the 3-term
/// computational regression of section 4.1, and selects the best grid for a
/// GPU budget (section 4.3) — replacing exhaustive configuration search.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/datasets.hpp"
#include "sim/machine.hpp"
#include "sim/topology.hpp"

namespace plexus::perf {

/// Structural inputs of the model — exactly what section 4 uses: node count,
/// nonzeros of the (preprocessed) adjacency, and the layer dims.
struct WorkloadStats {
  std::int64_t num_nodes = 0;
  std::int64_t num_nonzeros = 0;
  std::vector<std::int64_t> layer_dims;  ///< [D_in, hidden..., classes]

  static WorkloadStats from_dataset(const graph::DatasetInfo& info,
                                    std::int64_t hidden = 128, int num_layers = 3);

  int num_layers() const { return static_cast<int>(layer_dims.size()) - 1; }
};

/// The three regression features of eq. 4.4, summed over layers (forward +
/// backward SpMM of each layer):
///   f0 = sqrt(flops_cost),  f1 = f0 * fwd_penalty,  f2 = f0 * bwd_penalty.
std::vector<double> comp_model_features(const WorkloadStats& w, const sim::GridShape& g);

/// Linear model fitted on (features -> observed SpMM seconds) pairs.
struct FittedCompModel {
  std::vector<double> coefficients;  ///< 3 coefficients, no intercept
  double train_r2 = 0.0;
  double train_rmse = 0.0;

  double predict(const WorkloadStats& w, const sim::GridShape& g) const;
};

FittedCompModel fit_comp_model(const std::vector<std::vector<double>>& features,
                               const std::vector<double>& observed_seconds);

/// Cross-validation summary over random 70/30 splits (section 4.1 reports an
/// average R^2 of 0.89/0.79 and RMSE of 16.8/20.1 ms over 1000 iterations).
struct ValidationSummary {
  double train_r2 = 0.0;
  double test_r2 = 0.0;
  double train_rmse = 0.0;
  double test_rmse = 0.0;
};
ValidationSummary cross_validate_comp_model(const std::vector<std::vector<double>>& features,
                                            const std::vector<double>& observed_seconds,
                                            int iterations, std::uint64_t seed);

/// Analytic (machine-model based) per-epoch time components for a
/// configuration. Used directly by the unified model; the fitted regression is
/// the section-4.1 alternative that works from measured runs.
struct EpochPrediction {
  double spmm_seconds = 0.0;
  double gemm_seconds = 0.0;
  double comm_seconds = 0.0;
  double total() const { return spmm_seconds + gemm_seconds + comm_seconds; }
};

/// Predict one training epoch (forward + backward, all layers) on `machine`.
EpochPrediction predict_epoch(const sim::Machine& machine, const WorkloadStats& w,
                              const sim::GridShape& g);

/// Per-layer software-pipeline depth for blocked aggregation (section 5.2),
/// chosen by balancing the layer's per-block SpMM time against the per-block
/// ring time of its P-group all-reduce (the section-4 cost model applied at
/// block granularity). This is the workload-level form wired through
/// `PlexusOptions::pipeline_depth == 0`; DistGcnLayer applies the same rule
/// (comm::choose_pipeline_depth) to its exact local shard costs. Returns 1
/// when there is nothing to pipeline (one block, or a 1-wide P group).
/// `wire_elem_bytes` is the per-float wire size of the collectives (4 for
/// fp32, 2 under the bf16 wire format — comm::wire_elem_size), so the
/// depth is planned against the bytes that actually hit the links.
int choose_pipeline_depth(const sim::Machine& machine, const WorkloadStats& w,
                          const sim::GridShape& g, int layer, int agg_row_blocks,
                          int wire_elem_bytes = 4);

/// Streaming-epoch IO prefetch depth (the out-of-core counterpart of
/// choose_pipeline_depth): how many adjacency block loads to keep posted to
/// the ShardStream ahead of the aggregation SpMM, chosen by balancing the
/// per-block sequential-read time (block_bytes / machine.disk_bw) against
/// the per-block SpMM time with the same pipelining rule
/// (comm::choose_pipeline_depth). `rss_budget_bytes >= 0` additionally clamps
/// the depth so the in-flight blocks alone cannot exceed the budget. Always
/// in [1, max(1, num_blocks)]. This is the workload-level form wired through
/// `PlexusOptions::prefetch_depth == 0`; DistGcnLayer applies the same rule
/// to its exact local shard estimates.
int choose_prefetch_depth(const sim::Machine& machine, std::int64_t block_bytes,
                          double block_spmm_seconds, int num_blocks,
                          std::int64_t rss_budget_bytes = -1);

/// Estimated peak per-GPU training bytes for a configuration — what the
/// billion-edge planner checks against device memory. Counts, per rank:
///   * the distinct adjacency shards actually materialised (one per unique
///     plane l % 3 in use, times `adjacency_versions` for the double
///     permutation, times 2 for the stored transpose), in CSR bytes
///     (nnz * (4 + elem) + (rows + 1) * 8 under the uniform-shard-density
///     assumption of section 5.1);
///   * activations + gradients: 4 live (N * dim / gpus) blocks per layer sum
///     (H, dH, plus the forward stash and the aggregation scratch);
///   * trainable input features with their two Adam moments (3x the flat
///     feature slice).
/// `elem_bytes` prices the dense element (4 = fp32). Streaming mode drops the
/// adjacency term to the BlockCache budget instead — this function prices the
/// fully resident mode.
double estimate_per_gpu_bytes(const WorkloadStats& w, const sim::GridShape& g,
                              int adjacency_versions = 2, double elem_bytes = 4.0);

/// Workload-level dense-vs-sparse choice for a layer's blocked aggregation
/// (the selective row exchange of core::Aggregation::Sparse). Estimates the
/// per-block support density from the average shard degree under the
/// double-permutation uniformity assumption — a row of the (N/R x N/P)
/// forward shard is touched with probability ~ 1 - exp(-deg/P) (Poisson) —
/// and compares comm::sparse_aggregation_time against
/// comm::dense_aggregation_time on the group's link. `backward` switches to
/// the dF aggregation over R (layer 0's backward is the reduce-scatter
/// direction). Returns true when sparse is predicted to win. This is the
/// workload-level form of the exact per-shard decision DistGcnLayer makes
/// under Aggregation::Auto from its measured support counts.
/// `wire_elem_bytes` as in choose_pipeline_depth: both the dense and the
/// sparse candidate are priced at the active wire format's per-float size.
bool choose_sparse_aggregation(const sim::Machine& machine, const WorkloadStats& w,
                               const sim::GridShape& g, int layer, int agg_row_blocks,
                               bool backward = false, int wire_elem_bytes = 4);

/// All factorisations x*y*z == gpus.
std::vector<sim::GridShape> enumerate_grids(int gpus);

/// Dimensionality of a configuration: number of axes > 1 (Figure 5 classifies
/// configurations as 1D / 2D / 3D).
int grid_dimensionality(const sim::GridShape& g);

struct RankedConfig {
  sim::GridShape grid;
  EpochPrediction prediction;
};

/// All configurations for `gpus`, sorted by predicted epoch time (best first).
std::vector<RankedConfig> rank_configurations(const sim::Machine& machine,
                                              const WorkloadStats& w, int gpus);

/// The section 4.3 API: the predicted-optimal 3D configuration.
sim::GridShape best_configuration(const sim::Machine& machine, const WorkloadStats& w, int gpus);

std::string grid_to_string(const sim::GridShape& g);

}  // namespace plexus::perf
