#include "sim/topology.hpp"

#include <algorithm>
#include <cmath>

namespace plexus::sim {

comm::LinkParams link_for_dim(const Machine& m, const GridShape& g, Dim dim) {
  // Product of dimensions packed faster than `dim` (packing priority Y, X, Z).
  int inner = 1;
  int extent = 1;
  switch (dim) {
    case Dim::Y:
      inner = 1;
      extent = g.y;
      break;
    case Dim::X:
      inner = g.y;
      extent = g.x;
      break;
    case Dim::Z:
      inner = g.y * g.x;
      extent = g.z;
      break;
  }
  comm::LinkParams link;
  link.latency = m.alpha;
  if (inner * extent <= m.gpus_per_node) {
    link.bandwidth = m.beta_intra;
  } else {
    const double contention = static_cast<double>(std::min(m.gpus_per_node, inner));
    link.bandwidth = m.beta_inter / contention;
  }
  return link;
}

double a2a_distance_penalty(const Machine& m, int group_size) {
  const int nodes = (group_size + m.gpus_per_node - 1) / m.gpus_per_node;
  if (nodes <= 1) return 1.0;
  return 1.0 + m.a2a_node_penalty * std::log2(static_cast<double>(nodes));
}

comm::LinkParams link_for_flat_group(const Machine& m, int group_size) {
  comm::LinkParams link;
  link.latency = m.alpha;
  link.a2a_peer_overhead = m.a2a_peer_overhead;
  if (group_size <= m.gpus_per_node) {
    link.bandwidth = m.beta_intra;
  } else {
    // All ranks of a node share its NIC aggregate during a flat exchange.
    link.bandwidth = m.beta_inter / std::min(m.gpus_per_node, group_size);
  }
  return link;
}

}  // namespace plexus::sim
